package syncstamp_test

import (
	"fmt"
	"time"

	"syncstamp"
)

// The headline use case: a client-server system where the vector size is
// the number of servers, independent of the number of clients.
func Example() {
	topo := syncstamp.ClientServer(2, 100)
	dec, _ := syncstamp.DecomposeServers(topo, []int{0, 1})
	s := syncstamp.NewStamper(dec)

	v1, _ := s.StampMessage(2, 0)  // client 2 -> server 0
	v2, _ := s.StampMessage(0, 50) // server 0 -> client 50 (depends on v1)
	v3, _ := s.StampMessage(3, 1)  // client 3 -> server 1 (independent)

	fmt.Println("components per timestamp:", dec.D())
	fmt.Println("m1 precedes m2:", syncstamp.Precedes(v1, v2))
	fmt.Println("m1 concurrent with m3:", syncstamp.Concurrent(v1, v3))
	// Output:
	// components per timestamp: 2
	// m1 precedes m2: true
	// m1 concurrent with m3: true
}

// Decompose picks a small edge decomposition for any topology; on trees the
// Figure 7 algorithm is provably optimal.
func ExampleDecompose() {
	topo := syncstamp.Tree(3, 2) // 13-process complete ternary tree
	dec := syncstamp.Decompose(topo)
	fmt.Printf("N=%d channels=%d d=%d\n", topo.N(), topo.M(), dec.D())
	// Output:
	// N=13 channels=12 d=3
}

// StampOffline uses dimension theory (Figure 9 of the paper): the vector
// size is the width of this particular computation's message poset.
func ExampleStampOffline() {
	topo := syncstamp.Star(6) // star computations are totally ordered
	tr := syncstamp.GenerateTrace(topo, 25, 1)
	res, _ := syncstamp.StampOffline(tr)
	fmt.Println("width:", res.Width)
	fmt.Println("bound ⌊N/2⌋:", 3)
	// Output:
	// width: 1
	// bound ⌊N/2⌋: 3
}

// Run executes real goroutines over rendezvous channels; the clocks ride on
// messages and acknowledgements exactly as in Figure 5.
func ExampleRun() {
	topo := syncstamp.NewTopology(2)
	topo.AddEdge(0, 1)
	dec := syncstamp.Decompose(topo)
	res, _ := syncstamp.Run(dec, []func(*syncstamp.Process) error{
		func(p *syncstamp.Process) error {
			_, err := p.Send(1, "ping")
			return err
		},
		func(p *syncstamp.Process) error {
			msg, err := p.Recv()
			if err == nil {
				fmt.Println("got", msg.Payload, "stamped", msg.Stamp)
			}
			return err
		},
	}, 10*time.Second)
	fmt.Println("messages:", res.Trace.NumMessages())
	// Output:
	// got ping stamped (1)
	// messages: 1
}

// GrowClient adds processes at runtime without changing the vector size —
// the paper's Section 3.3 scalability property.
func ExampleGrowClient() {
	topo := syncstamp.ClientServer(2, 1)
	dec, _ := syncstamp.DecomposeServers(topo, []int{0, 1})
	s := syncstamp.NewStamper(dec)
	before, _ := s.StampMessage(2, 0)

	grown, joined, _ := syncstamp.GrowClient(dec, []int{0, 1})
	_ = s.Extend(grown)
	after, _ := s.StampMessage(joined, 0)

	fmt.Println("new client id:", joined)
	fmt.Println("d still:", grown.D())
	fmt.Println("old stamp comparable:", syncstamp.Precedes(before, after))
	// Output:
	// new client id: 3
	// d still: 2
	// old stamp comparable: true
}
