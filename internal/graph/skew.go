package graph

import (
	"fmt"
	"math"
	"sort"
)

// Skew is a Zipf-like popularity distribution over n items, sampled by
// inverse CDF. Item i carries weight 1/(i+1)^theta, so item 0 is the most
// popular and theta steers the tail: theta 0 is uniform, theta around 1 is
// the classic web-workload skew. (math/rand's Zipf requires s > 1 and
// cannot express the uniform and mildly-skewed regimes load drivers sweep,
// hence this sampler.)
type Skew struct {
	cdf []float64
}

// NewSkew builds the distribution over n items with exponent theta >= 0.
func NewSkew(n int, theta float64) *Skew {
	if n <= 0 {
		panic(fmt.Sprintf("graph: skew over %d items", n))
	}
	if theta < 0 {
		panic(fmt.Sprintf("graph: negative skew exponent %v", theta))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // exact, despite rounding
	return &Skew{cdf: cdf}
}

// Pick maps a uniform u in [0,1) to an item by inverse CDF.
func (s *Skew) Pick(u float64) int {
	return sort.SearchFloat64s(s.cdf, u)
}
