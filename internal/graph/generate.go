package graph

import (
	"fmt"
	"math/rand"
)

// Complete returns the fully-connected topology K_n of Figure 2(a), in which
// every process can communicate directly with every other.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Star returns the star topology on n vertices rooted at center.
// Every other vertex is connected only to center.
func Star(n, center int) *Graph {
	g := New(n)
	g.checkVertex(center)
	for i := 0; i < n; i++ {
		if i != center {
			g.AddEdge(center, i)
		}
	}
	return g
}

// Triangle returns the 3-vertex triangle topology.
func Triangle() *Graph {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	return g
}

// Path returns the path P_n: 0-1-2-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle C_n. It panics for n < 3.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs at least 3 vertices, got %d", n))
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Grid returns the rows x cols grid graph with vertex r*cols+c at (r, c).
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices.
func Hypercube(dim int) *Graph {
	if dim < 0 || dim > 20 {
		panic(fmt.Sprintf("graph: hypercube dimension %d out of range [0,20]", dim))
	}
	n := 1 << uint(dim)
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			u := v ^ (1 << uint(b))
			if v < u {
				g.AddEdge(v, u)
			}
		}
	}
	return g
}

// ClientServer returns the client-server topology of Section 3.3: servers
// 0..servers-1, clients servers..servers+clients-1, where every client can
// communicate with every server and clients never talk to each other.
// Servers may also talk to each other when interServer is true.
func ClientServer(servers, clients int, interServer bool) *Graph {
	g := New(servers + clients)
	for c := 0; c < clients; c++ {
		for s := 0; s < servers; s++ {
			g.AddEdge(s, servers+c)
		}
	}
	if interServer {
		for a := 0; a < servers; a++ {
			for b := a + 1; b < servers; b++ {
				g.AddEdge(a, b)
			}
		}
	}
	return g
}

// BalancedTree returns the complete branching-ary tree of the given depth
// (depth 0 is a single root). Vertices are numbered in BFS order from the
// root at 0. Trees are the motivating topology of Figure 4.
func BalancedTree(branching, depth int) *Graph {
	if branching < 1 {
		panic(fmt.Sprintf("graph: branching factor %d < 1", branching))
	}
	n := 1
	level := 1
	for d := 0; d < depth; d++ {
		level *= branching
		n += level
	}
	g := New(n)
	for child := 1; child < n; child++ {
		parent := (child - 1) / branching
		g.AddEdge(parent, child)
	}
	return g
}

// DisjointTriangles returns t vertex-disjoint triangles on 3t vertices —
// the topology showing the β(G) ≤ 2α(G) bound is tight (Section 3.3).
func DisjointTriangles(t int) *Graph {
	g := New(3 * t)
	for i := 0; i < t; i++ {
		a, b, c := 3*i, 3*i+1, 3*i+2
		g.AddEdge(a, b)
		g.AddEdge(b, c)
		g.AddEdge(a, c)
	}
	return g
}

// RandomTree returns a uniformly random labeled tree on n vertices,
// generated from a random Prüfer sequence.
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	if n == 2 {
		g.AddEdge(0, 1)
		return g
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	for _, v := range prufer {
		for u := 0; u < n; u++ {
			if degree[u] == 1 {
				g.AddEdge(u, v)
				degree[u]--
				degree[v]--
				break
			}
		}
	}
	var last []int
	for u := 0; u < n; u++ {
		if degree[u] == 1 {
			last = append(last, u)
		}
	}
	g.AddEdge(last[0], last[1])
	return g
}

// RandomGnp returns an Erdős–Rényi random graph G(n, p).
func RandomGnp(n int, p float64, rng *rand.Rand) *Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: probability %v out of [0,1]", p))
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// RandomConnected returns a connected random graph on n vertices: a random
// spanning tree plus each remaining edge independently with probability p.
func RandomConnected(n int, p float64, rng *rand.Rand) *Graph {
	g := RandomTree(n, rng)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !g.HasEdge(i, j) && rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Figure2b returns an 11-vertex topology consistent with Figure 2(b) /
// Figure 8 of the paper (vertices a..k mapped to 0..10). The paper draws the
// graph without listing its edges; this reconstruction reproduces every
// property the text states: the decomposition algorithm of Figure 7 outputs
// a star in its first step, a triangle in its second, two stars in its
// third, then loops back and outputs the final star containing edge (j,k);
// the optimal edge decomposition has 4 stars and 1 triangle (size 5).
func Figure2b() *Graph {
	// a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10.
	//
	// Step-by-step behavior of the Figure 7 algorithm on this graph, exactly
	// matching the narration of Figure 8:
	//   step 1: a is the only degree-1 vertex -> star at b {(a,b),(b,c),(b,d)};
	//   step 2: (c,d,e) is now a triangle with degree(c)=degree(d)=2;
	//   step 3: (f,g) has the most adjacent edges -> star at g and star at f;
	//   loop:   only (j,k) remains, j has degree 1 -> star at k; done.
	// Output: 4 stars + 1 triangle = 5 groups, and the optimum is also 5
	// (the 5 pairwise vertex-disjoint edges (a,b),(c,d),(e,f),(g,h),(j,k)
	// force at least 5 groups), matching Figure 8(f).
	g := New(11)
	edges := [][2]int{
		{0, 1},         // a-b
		{1, 2}, {1, 3}, // b-c, b-d
		{2, 3}, {2, 4}, {3, 4}, // triangle c,d,e after b's star leaves
		{4, 5}, {4, 6}, // e-f, e-g
		{5, 6},         // f-g: the step-3 pick
		{5, 7}, {6, 7}, // f-h, g-h
		{5, 8}, {6, 8}, // f-i, g-i
		{5, 10}, {6, 9}, // f-k, g-j
		{9, 10}, // j-k: survives to the loop-back
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// Figure4Tree returns the 20-process tree of Figure 4, built so that its
// optimal edge decomposition is exactly 3 stars (E1, E2, E3): three star
// roots 0, 1, 2 with 0-1 and 1-2 internal edges and leaves divided among
// the roots.
func Figure4Tree() *Graph {
	g := New(20)
	// Root stars at 0, 1 and 2; 0-1 and 1-2 connect them.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	// Leaves 3..8 under 0, 9..13 under 1, 14..19 under 2.
	for v := 3; v <= 8; v++ {
		g.AddEdge(0, v)
	}
	for v := 9; v <= 13; v++ {
		g.AddEdge(1, v)
	}
	for v := 14; v <= 19; v++ {
		g.AddEdge(2, v)
	}
	return g
}
