package graph

import (
	"math/rand"
	"testing"
)

// TestSkewUniform: theta 0 must be uniform — every item lands within a few
// standard deviations of its expected share.
func TestSkewUniform(t *testing.T) {
	const n, draws = 10, 100000
	s := NewSkew(n, 0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Pick(rng.Float64())]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("item %d drawn %d times, want about %d", i, c, want)
		}
	}
}

// TestSkewOrdersPopularity: with theta 1 the head must dominate the tail,
// monotonically.
func TestSkewOrdersPopularity(t *testing.T) {
	const n, draws = 8, 200000
	s := NewSkew(n, 1)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Pick(rng.Float64())]++
	}
	for i := 1; i < n; i++ {
		if counts[i] >= counts[i-1] {
			t.Fatalf("item %d drawn %d times, item %d drawn %d — skew not monotone", i, counts[i], i-1, counts[i-1])
		}
	}
	// The Zipf head: item 0's share approximates 1/H_8 ≈ 0.37.
	if share := float64(counts[0]) / draws; share < 0.3 || share > 0.45 {
		t.Fatalf("head share %v, want about 0.37", share)
	}
}

// TestSkewEdges: u at the boundaries maps into range.
func TestSkewEdges(t *testing.T) {
	s := NewSkew(5, 1.2)
	if got := s.Pick(0); got != 0 {
		t.Fatalf("Pick(0) = %d, want 0", got)
	}
	if got := s.Pick(0.999999999); got < 0 || got > 4 {
		t.Fatalf("Pick(~1) = %d, out of range", got)
	}
}
