package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteText serializes g in a simple line-oriented format:
//
//	n <vertices>
//	e <u> <v>
//
// Lines beginning with '#' are comments. Edges appear in sorted order so the
// encoding is deterministic.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the format produced by WriteText.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "n":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate n line", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want \"n <count>\"", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", line, fields[1])
			}
			g = New(n)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before n line", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want \"e <u> <v>\"", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			if u == v {
				return nil, fmt.Errorf("graph: line %d: self-loop on %d", line, u)
			}
			if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
				return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range", line, u, v)
			}
			g.AddEdge(u, v)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing n line")
	}
	return g, nil
}

// DOT renders g in Graphviz format, optionally coloring edges by group.
// groupOf may be nil; when provided it maps an edge to a group index used to
// pick one of a fixed palette of colors (as in the paper's decomposition
// figures).
func DOT(g *Graph, name string, groupOf func(Edge) (int, bool)) string {
	palette := []string{
		"black", "red", "blue", "forestgreen", "orange",
		"purple", "brown", "deeppink", "cadetblue", "gold",
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", dotID(name))
	verts := make([]int, g.N())
	for i := range verts {
		verts[i] = i
	}
	sort.Ints(verts)
	for _, v := range verts {
		fmt.Fprintf(&b, "  %d;\n", v)
	}
	for _, e := range g.Edges() {
		attr := ""
		if groupOf != nil {
			if gi, ok := groupOf(e); ok {
				color := palette[gi%len(palette)]
				attr = fmt.Sprintf(" [color=%s, label=\"E%d\"]", color, gi+1)
			}
		}
		fmt.Fprintf(&b, "  %d -- %d%s;\n", e.U, e.V, attr)
	}
	b.WriteString("}\n")
	return b.String()
}

func dotID(s string) string {
	if s == "" {
		return "G"
	}
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
