package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 25; i++ {
		g := RandomGnp(1+rng.Intn(15), rng.Float64(), rng)
		var b strings.Builder
		if err := WriteText(&b, g); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		got, err := ReadText(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("ReadText: %v", err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Fatalf("round trip n=%d m=%d, want n=%d m=%d", got.N(), got.M(), g.N(), g.M())
		}
		for _, e := range g.Edges() {
			if !got.HasEdge(e.U, e.V) {
				t.Fatalf("round trip lost edge %v", e)
			}
		}
	}
}

func TestReadTextCommentsAndBlanks(t *testing.T) {
	in := "# topology\n\nn 3\n# an edge\ne 0 1\n\ne 1 2\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"missing n", "e 0 1\n"},
		{"no content", "# nothing\n"},
		{"duplicate n", "n 3\nn 4\n"},
		{"bad count", "n x\n"},
		{"negative count", "n -2\n"},
		{"bad edge arity", "n 3\ne 0\n"},
		{"bad edge number", "n 3\ne 0 q\n"},
		{"self loop", "n 3\ne 1 1\n"},
		{"out of range", "n 3\ne 0 5\n"},
		{"unknown directive", "n 3\nz 1 2\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("ReadText(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestDOTOutput(t *testing.T) {
	g := Triangle()
	out := DOT(g, "tri-1", func(e Edge) (int, bool) { return 0, true })
	for _, want := range []string{"graph tri_1 {", "0 -- 1", "1 -- 2", "0 -- 2", "E1", "color="} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	plain := DOT(g, "", nil)
	if !strings.Contains(plain, "graph G {") || strings.Contains(plain, "color=") {
		t.Fatalf("plain DOT wrong:\n%s", plain)
	}
}
