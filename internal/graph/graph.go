// Package graph implements the undirected communication topologies of
// Section 3.1 of the paper. A topology G = (V, E) has one vertex per process
// and an edge (Pi, Pj) whenever Pi and Pj may communicate directly. The edge
// decomposition machinery (internal/decomp) and the online timestamping
// algorithm (internal/core) are parameterized by these graphs.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between two process indices. Edges are stored
// in normalized form with U < V; use NewEdge to normalize.
type Edge struct {
	U, V int
}

// NewEdge returns the normalized edge between a and b.
// It panics if a == b (self-loops are not valid channels) or either is negative.
func NewEdge(a, b int) Edge {
	if a == b {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", a))
	}
	if a < 0 || b < 0 {
		panic(fmt.Sprintf("graph: negative vertex in edge (%d,%d)", a, b))
	}
	if a > b {
		a, b = b, a
	}
	return Edge{U: a, V: b}
}

// Other returns the endpoint of e that is not x.
// It panics if x is not an endpoint of e.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of %v", x, e))
}

// Has reports whether x is an endpoint of e.
func (e Edge) Has(x int) bool { return e.U == x || e.V == x }

// String renders the edge as "(u,v)".
func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is an undirected simple graph on vertices 0..n-1.
// The zero value is not usable; construct with New.
type Graph struct {
	n   int
	adj []map[int]bool
	m   int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	return &Graph{n: n, adj: adj}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

func (g *Graph) checkVertex(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// AddEdge inserts the undirected edge (a, b). Adding an existing edge is a
// no-op. It panics on self-loops or out-of-range vertices.
func (g *Graph) AddEdge(a, b int) {
	e := NewEdge(a, b)
	g.checkVertex(e.U)
	g.checkVertex(e.V)
	if g.adj[e.U][e.V] {
		return
	}
	g.adj[e.U][e.V] = true
	g.adj[e.V][e.U] = true
	g.m++
}

// RemoveEdge deletes the undirected edge (a, b) if present.
func (g *Graph) RemoveEdge(a, b int) {
	e := NewEdge(a, b)
	g.checkVertex(e.U)
	g.checkVertex(e.V)
	if !g.adj[e.U][e.V] {
		return
	}
	delete(g.adj[e.U], e.V)
	delete(g.adj[e.V], e.U)
	g.m--
}

// HasEdge reports whether (a, b) is an edge.
func (g *Graph) HasEdge(a, b int) bool {
	if a == b {
		return false
	}
	g.checkVertex(a)
	g.checkVertex(b)
	return g.adj[a][b]
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int {
	g.checkVertex(v)
	return len(g.adj[v])
}

// Neighbors returns the neighbors of v in increasing order.
func (g *Graph) Neighbors(v int) []int {
	g.checkVertex(v)
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Edges returns all edges in lexicographic order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

// IsStar reports whether the nonempty edge set of g forms a star, i.e. there
// is a vertex incident to every edge (Section 3.1). A single edge is a star
// (rooted at either endpoint). An empty edge set is not considered a star.
// The second return value is a root when the first is true.
func (g *Graph) IsStar() (int, bool) {
	edges := g.Edges()
	if len(edges) == 0 {
		return 0, false
	}
	for _, root := range []int{edges[0].U, edges[0].V} {
		ok := true
		for _, e := range edges {
			if !e.Has(root) {
				ok = false
				break
			}
		}
		if ok {
			return root, true
		}
	}
	return 0, false
}

// IsTriangle reports whether the edge set of g is exactly a triangle
// (Section 3.1: |E| = 3 and the edges form a 3-cycle). The returned triple
// lists the triangle's vertices in increasing order when true.
func (g *Graph) IsTriangle() ([3]int, bool) {
	edges := g.Edges()
	if len(edges) != 3 {
		return [3]int{}, false
	}
	verts := map[int]int{}
	for _, e := range edges {
		verts[e.U]++
		verts[e.V]++
	}
	if len(verts) != 3 {
		return [3]int{}, false
	}
	var tri []int
	for v, deg := range verts {
		if deg != 2 {
			return [3]int{}, false
		}
		tri = append(tri, v)
	}
	sort.Ints(tri)
	return [3]int{tri[0], tri[1], tri[2]}, true
}

// Triangles returns every triangle (x, y, z) with x < y < z.
func (g *Graph) Triangles() [][3]int {
	var out [][3]int
	for x := 0; x < g.n; x++ {
		nx := g.Neighbors(x)
		for i := 0; i < len(nx); i++ {
			y := nx[i]
			if y <= x {
				continue
			}
			for j := i + 1; j < len(nx); j++ {
				z := nx[j]
				if z <= y {
					continue
				}
				if g.adj[y][z] {
					out = append(out, [3]int{x, y, z})
				}
			}
		}
	}
	return out
}

// IsAcyclic reports whether g contains no cycle (i.e. g is a forest).
func (g *Graph) IsAcyclic() bool {
	parent := make([]int, g.n)
	visited := make([]bool, g.n)
	for i := range parent {
		parent[i] = -1
	}
	for s := 0; s < g.n; s++ {
		if visited[s] {
			continue
		}
		stack := []int{s}
		visited[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := range g.adj[u] {
				if v == parent[u] {
					continue
				}
				if visited[v] {
					return false
				}
				visited[v] = true
				parent[v] = u
				stack = append(stack, v)
			}
		}
	}
	return true
}

// Components returns the connected components of g, each as a sorted vertex
// slice, ordered by smallest member. Isolated vertices form singleton
// components.
func (g *Graph) Components() [][]int {
	visited := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if visited[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		visited[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for v := range g.adj[u] {
				if !visited[v] {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether g has at most one connected component that
// contains all vertices.
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	return len(g.Components()) == 1
}

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	best := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > best {
			best = d
		}
	}
	return best
}

// Subgraph returns the spanning subgraph of g containing only the given
// edges. Every edge must exist in g.
func (g *Graph) Subgraph(edges []Edge) *Graph {
	s := New(g.n)
	for _, e := range edges {
		if !g.HasEdge(e.U, e.V) {
			panic(fmt.Sprintf("graph: edge %v not in graph", e))
		}
		s.AddEdge(e.U, e.V)
	}
	return s
}

// String renders the graph as "n=5 m=4 edges=[(0,1) (0,2) ...]".
func (g *Graph) String() string {
	return fmt.Sprintf("n=%d m=%d edges=%v", g.n, g.m, g.Edges())
}
