package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEdgeNormalizes(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Fatalf("NewEdge(5,2) = %v, want (2,5)", e)
	}
}

func TestNewEdgeSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEdge(3,3) did not panic")
		}
	}()
	NewEdge(3, 3)
}

func TestEdgeOther(t *testing.T) {
	e := NewEdge(2, 7)
	if e.Other(2) != 7 || e.Other(7) != 2 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other(9) did not panic")
		}
	}()
	e.Other(9)
}

func TestAddRemoveEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate, reversed
	if g.M() != 1 {
		t.Fatalf("M() = %d, want 1 after duplicate add", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge should be symmetric")
	}
	g.RemoveEdge(1, 0)
	if g.M() != 0 || g.HasEdge(0, 1) {
		t.Fatal("RemoveEdge failed")
	}
	g.RemoveEdge(0, 1) // removing absent edge is a no-op
	if g.M() != 0 {
		t.Fatal("removing absent edge changed M")
	}
}

func TestDegreeNeighbors(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 0)
	g.AddEdge(2, 4)
	g.AddEdge(2, 1)
	if g.Degree(2) != 3 {
		t.Fatalf("Degree(2) = %d, want 3", g.Degree(2))
	}
	nb := g.Neighbors(2)
	want := []int{0, 1, 4}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
		}
	}
	if g.Degree(3) != 0 {
		t.Fatal("isolated vertex should have degree 0")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 2)
	g.AddEdge(1, 0)
	g.AddEdge(0, 3)
	edges := g.Edges()
	want := []Edge{{0, 1}, {0, 3}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges() = %v, want %v", edges, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Complete(4)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("mutating clone affected original")
	}
	if c.M() != g.M()-1 {
		t.Fatalf("clone M = %d, want %d", c.M(), g.M()-1)
	}
}

func TestIsStar(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"star5 at 0", Star(5, 0), true},
		{"star5 at 3", Star(5, 3), true},
		{"single edge", Path(2), true},
		{"path3", Path(3), true}, // 0-1-2 is a star rooted at 1
		{"path4", Path(4), false},
		{"triangle", Triangle(), false},
		{"empty", New(3), false},
		{"K4", Complete(4), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root, ok := tc.g.IsStar()
			if ok != tc.want {
				t.Fatalf("IsStar() = %v, want %v", ok, tc.want)
			}
			if ok {
				for _, e := range tc.g.Edges() {
					if !e.Has(root) {
						t.Fatalf("claimed root %d misses edge %v", root, e)
					}
				}
			}
		})
	}
}

func TestIsTriangle(t *testing.T) {
	tri, ok := Triangle().IsTriangle()
	if !ok || tri != [3]int{0, 1, 2} {
		t.Fatalf("Triangle().IsTriangle() = %v, %v", tri, ok)
	}
	if _, ok := Path(4).IsTriangle(); ok {
		t.Fatal("path4 is not a triangle")
	}
	if _, ok := Star(4, 0).IsTriangle(); ok {
		t.Fatal("star with 3 edges but no cycle is not a triangle")
	}
	// K4 restricted to a triangle's edges.
	g := New(4)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	tri, ok = g.IsTriangle()
	if !ok || tri != [3]int{1, 2, 3} {
		t.Fatalf("IsTriangle() = %v, %v, want (1,2,3)", tri, ok)
	}
}

func TestTriangles(t *testing.T) {
	if got := Complete(4).Triangles(); len(got) != 4 {
		t.Fatalf("K4 has %d triangles, want 4", len(got))
	}
	if got := Path(5).Triangles(); len(got) != 0 {
		t.Fatalf("path has %d triangles, want 0", len(got))
	}
	if got := DisjointTriangles(3).Triangles(); len(got) != 3 {
		t.Fatalf("3 disjoint triangles found %d, want 3", len(got))
	}
}

func TestIsAcyclic(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(5), true},
		{"path", Path(6), true},
		{"tree", BalancedTree(2, 3), true},
		{"figure4", Figure4Tree(), true},
		{"cycle", Cycle(4), false},
		{"triangle", Triangle(), false},
		{"K5", Complete(5), false},
		{"forest", func() *Graph { g := New(6); g.AddEdge(0, 1); g.AddEdge(2, 3); g.AddEdge(4, 5); return g }(), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.IsAcyclic(); got != tc.want {
				t.Fatalf("IsAcyclic() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4: %v", len(comps), comps)
	}
	if !g.IsConnected() == false {
		t.Fatal("disconnected graph reported connected")
	}
	if !Complete(5).IsConnected() {
		t.Fatal("K5 should be connected")
	}
	if !New(0).IsConnected() {
		t.Fatal("empty graph should be connected")
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"K5", Complete(5), 5, 10},
		{"star6", Star(6, 0), 6, 5},
		{"triangle", Triangle(), 3, 3},
		{"path5", Path(5), 5, 4},
		{"cycle5", Cycle(5), 5, 5},
		{"grid 3x4", Grid(3, 4), 12, 17},
		{"hypercube3", Hypercube(3), 8, 12},
		{"clientserver 2x5", ClientServer(2, 5, false), 7, 10},
		{"clientserver 3x4 +inter", ClientServer(3, 4, true), 7, 15},
		{"balancedtree 2,3", BalancedTree(2, 3), 15, 14},
		{"figure4tree", Figure4Tree(), 20, 19},
		{"disjointtriangles 4", DisjointTriangles(4), 12, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n || tc.g.M() != tc.m {
				t.Fatalf("got n=%d m=%d, want n=%d m=%d", tc.g.N(), tc.g.M(), tc.n, tc.m)
			}
		})
	}
}

func TestClientServerShape(t *testing.T) {
	g := ClientServer(3, 10, false)
	for c := 3; c < 13; c++ {
		for c2 := c + 1; c2 < 13; c2++ {
			if g.HasEdge(c, c2) {
				t.Fatalf("clients %d and %d should not be adjacent", c, c2)
			}
		}
		if g.Degree(c) != 3 {
			t.Fatalf("client %d degree = %d, want 3", c, g.Degree(c))
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 7, 20, 50} {
		g := RandomTree(n, rng)
		if g.N() != n {
			t.Fatalf("RandomTree(%d) has %d vertices", n, g.N())
		}
		wantM := n - 1
		if n == 0 || n == 1 {
			wantM = 0
		}
		if g.M() != wantM {
			t.Fatalf("RandomTree(%d) has %d edges, want %d", n, g.M(), wantM)
		}
		if !g.IsAcyclic() {
			t.Fatalf("RandomTree(%d) has a cycle", n)
		}
		if n > 0 && !g.IsConnected() {
			t.Fatalf("RandomTree(%d) is disconnected", n)
		}
	}
}

func TestRandomGnpExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if g := RandomGnp(6, 0, rng); g.M() != 0 {
		t.Fatalf("G(6,0) has %d edges", g.M())
	}
	if g := RandomGnp(6, 1, rng); g.M() != 15 {
		t.Fatalf("G(6,1) has %d edges, want 15", g.M())
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		g := RandomConnected(12, 0.2, rng)
		if !g.IsConnected() {
			t.Fatal("RandomConnected produced a disconnected graph")
		}
	}
}

func TestBalancedTreeStructure(t *testing.T) {
	g := BalancedTree(3, 2) // 1 + 3 + 9 = 13 vertices
	if g.N() != 13 || g.M() != 12 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 3 {
		t.Fatalf("root degree = %d, want 3", g.Degree(0))
	}
	if !g.IsAcyclic() || !g.IsConnected() {
		t.Fatal("balanced tree must be a connected acyclic graph")
	}
}

func TestSubgraph(t *testing.T) {
	g := Complete(4)
	s := g.Subgraph([]Edge{{0, 1}, {2, 3}})
	if s.M() != 2 || !s.HasEdge(0, 1) || !s.HasEdge(2, 3) || s.HasEdge(0, 2) {
		t.Fatalf("Subgraph = %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Subgraph with foreign edge did not panic")
		}
	}()
	Path(3).Subgraph([]Edge{{0, 2}})
}

func TestMaxDegree(t *testing.T) {
	if d := Star(8, 2).MaxDegree(); d != 7 {
		t.Fatalf("star max degree = %d, want 7", d)
	}
	if d := New(4).MaxDegree(); d != 0 {
		t.Fatalf("empty graph max degree = %d, want 0", d)
	}
}

// Property: handshake lemma — sum of degrees is twice the edge count.
func TestQuickHandshake(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGnp(2+rng.Intn(20), rng.Float64(), rng)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Edges() of a clone equals Edges() of the original.
func TestQuickCloneEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGnp(2+rng.Intn(15), rng.Float64(), rng)
		a, b := g.Edges(), g.Clone().Edges()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFigure2bShape(t *testing.T) {
	g := Figure2b()
	if g.N() != 11 {
		t.Fatalf("Figure2b has %d vertices, want 11", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("Figure2b should be connected")
	}
	if g.Degree(0) != 1 {
		t.Fatalf("vertex a must have degree 1 for the step-1 behavior, got %d", g.Degree(0))
	}
}
