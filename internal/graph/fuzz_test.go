package graph

import (
	"strings"
	"testing"
)

// FuzzReadText checks the graph parser never panics and that accepted
// graphs round-trip through WriteText.
func FuzzReadText(f *testing.F) {
	f.Add("n 3\ne 0 1\ne 1 2\n")
	f.Add("n 0\n")
	f.Add("e 0 1\n")
	f.Add("n 2\ne 0 0\n")
	f.Add("n 2\ne 0 5\n")
	f.Add("# c\nn 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadText(strings.NewReader(in))
		if err != nil {
			return
		}
		var b strings.Builder
		if err := WriteText(&b, g); err != nil {
			t.Fatalf("WriteText failed: %v", err)
		}
		back, err := ReadText(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatal("round trip changed the graph")
		}
	})
}
