package monitor_test

import (
	"fmt"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/monitor"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// Concurrent messages are detected from timestamps alone.
func ExampleConcurrentMessages() {
	tr := trace.Figure1()
	stamps, err := core.StampTrace(tr, decomp.Approximate(tr.Topology()))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	pairs := monitor.ConcurrentMessages(stamps)
	fmt.Println("first concurrent pair: m1 and m2:", pairs[0] == monitor.Pair{I: 0, J: 1})
	// Output:
	// first concurrent pair: m1 and m2: true
}

// Orphan detection for optimistic recovery: everything causally after the
// lost message must roll back too.
func ExampleOrphans() {
	tr := &trace.Trace{N: 3}
	tr.MustAppend(trace.Message(0, 1)) // m1: survives
	tr.MustAppend(trace.Message(1, 2)) // m2: lost
	tr.MustAppend(trace.Message(2, 0)) // m3: depends on m2 -> orphan
	stamps, err := core.StampTrace(tr, decomp.Approximate(graph.Complete(3)))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	orphans := monitor.Orphans(stamps, []vector.V{stamps[1]})
	fmt.Println("roll back messages:", orphans)
	// Output:
	// roll back messages: [1 2]
}
