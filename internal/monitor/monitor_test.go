package monitor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

func stampFigure1(t *testing.T) []vector.V {
	t.Helper()
	tr := trace.Figure1()
	stamps, err := core.StampTrace(tr, decomp.Approximate(tr.Topology()))
	if err != nil {
		t.Fatal(err)
	}
	return stamps
}

func TestConcurrentMessagesFigure1(t *testing.T) {
	stamps := stampFigure1(t)
	pairs := ConcurrentMessages(stamps)
	// m1 ‖ m2 is stated by the paper: pair (0, 1) must be present.
	found := false
	for _, p := range pairs {
		if p == (Pair{I: 0, J: 1}) {
			found = true
		}
		if p.I >= p.J {
			t.Fatalf("pair %v not normalized", p)
		}
	}
	if !found {
		t.Fatalf("m1 ‖ m2 not detected; pairs = %v", pairs)
	}
}

// Property: ConcurrentMessages agrees with the poset oracle.
func TestQuickConcurrentMessagesMatchOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(6), 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 1 + rng.Intn(30)}, rng)
		stamps, err := core.StampTrace(tr, decomp.Approximate(g))
		if err != nil {
			return false
		}
		p := order.MessagePoset(tr)
		want := map[Pair]bool{}
		for i := 0; i < p.N(); i++ {
			for j := i + 1; j < p.N(); j++ {
				if p.Concurrent(i, j) {
					want[Pair{I: i, J: j}] = true
				}
			}
		}
		got := ConcurrentMessages(stamps)
		if len(got) != len(want) {
			return false
		}
		for _, pr := range got {
			if !want[pr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathFigure1(t *testing.T) {
	// The paper: a synchronous chain of size 4 from m1 to m5 — and m6
	// extends it (m5 ▷ m6 via P1), so the critical path is at least 5.
	stamps := stampFigure1(t)
	length, chain := CriticalPath(stamps)
	if length < 4 {
		t.Fatalf("critical path %d < 4", length)
	}
	if len(chain) != length {
		t.Fatalf("witness chain %v does not match length %d", chain, length)
	}
	for k := 1; k < len(chain); k++ {
		if !vector.Less(stamps[chain[k-1]], stamps[chain[k]]) {
			t.Fatalf("witness not a chain at %d: %v", k, chain)
		}
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	l, chain := CriticalPath(nil)
	if l != 0 || chain != nil {
		t.Fatalf("empty critical path = %d, %v", l, chain)
	}
}

// Property: CriticalPath equals the longest chain computed by brute force
// over the poset.
func TestQuickCriticalPathMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(6), 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 1 + rng.Intn(20)}, rng)
		stamps, err := core.StampTrace(tr, decomp.Approximate(g))
		if err != nil {
			return false
		}
		p := order.MessagePoset(tr)
		// Longest chain by DP over topological order (indices are one).
		n := p.N()
		dp := make([]int, n)
		best := 0
		for i := 0; i < n; i++ {
			dp[i] = 1
			for j := 0; j < i; j++ {
				if p.Less(j, i) && dp[j]+1 > dp[i] {
					dp[i] = dp[j] + 1
				}
			}
			if dp[i] > best {
				best = dp[i]
			}
		}
		got, _ := CriticalPath(stamps)
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFindConflicts(t *testing.T) {
	// Two processes sync, then both touch resource "x" concurrently, then
	// one touches "y" alone.
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Internal(0)) // x
	tr.MustAppend(trace.Internal(1)) // x -> conflict with the first
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Internal(0)) // y, after the sync: no conflict
	st, err := core.StampAll(tr, decomp.Approximate(graph.Path(2)))
	if err != nil {
		t.Fatal(err)
	}
	conflicts, err := FindConflicts(st.Internal, []string{"x", "x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 || conflicts[0].A != 0 || conflicts[0].B != 1 || conflicts[0].Resource != "x" {
		t.Fatalf("conflicts = %v", conflicts)
	}
}

func TestFindConflictsLengthMismatch(t *testing.T) {
	if _, err := FindConflicts(make([]core.EventStamp, 2), []string{"x"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestConsistentCut(t *testing.T) {
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Internal(0)) // e0
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Internal(1)) // e1: e0 → e1
	tr.MustAppend(trace.Internal(0)) // e2: concurrent with e1
	st, err := core.StampAll(tr, decomp.Approximate(graph.Path(2)))
	if err != nil {
		t.Fatal(err)
	}
	e0, e1, e2 := st.Internal[0], st.Internal[1], st.Internal[2]
	if ConsistentCut([]core.EventStamp{e0, e1}) {
		t.Fatal("cut {e0, e1} is inconsistent (e0 → e1)")
	}
	if !ConsistentCut([]core.EventStamp{e1, e2}) {
		t.Fatal("cut {e1, e2} is consistent")
	}
	if !ConsistentCut(nil) {
		t.Fatal("empty cut is consistent")
	}
}

func TestOrphans(t *testing.T) {
	// P0-P1-P2 path; P1 participates in everything, so if P1 loses its
	// post-checkpoint messages, downstream messages are orphaned.
	tr := &trace.Trace{N: 3}
	tr.MustAppend(trace.Message(0, 1)) // m0: checkpointed
	tr.MustAppend(trace.Message(1, 2)) // m1: lost (P1 after checkpoint)
	tr.MustAppend(trace.Message(2, 1)) // m2: depends on m1 -> orphan
	tr.MustAppend(trace.Message(0, 1)) // m3: depends via P1 -> orphan
	stamps, err := core.StampTrace(tr, decomp.Approximate(graph.Path(3)))
	if err != nil {
		t.Fatal(err)
	}
	orphans := Orphans(stamps, []vector.V{stamps[1]})
	want := []int{1, 2, 3}
	if len(orphans) != len(want) {
		t.Fatalf("orphans = %v, want %v", orphans, want)
	}
	for i := range want {
		if orphans[i] != want[i] {
			t.Fatalf("orphans = %v, want %v", orphans, want)
		}
	}
	// m0 must survive.
	for _, o := range orphans {
		if o == 0 {
			t.Fatal("checkpointed message rolled back")
		}
	}
	if got := Orphans(stamps, nil); len(got) != 0 {
		t.Fatalf("no lost messages must yield no orphans, got %v", got)
	}
}

// Property: the orphan set equals the up-set of the lost messages in the
// poset (plus the lost messages themselves).
func TestQuickOrphansMatchUpSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(6), 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 2 + rng.Intn(25)}, rng)
		stamps, err := core.StampTrace(tr, decomp.Approximate(g))
		if err != nil {
			return false
		}
		p := order.MessagePoset(tr)
		lostIdx := rng.Intn(len(stamps))
		got := Orphans(stamps, []vector.V{stamps[lostIdx]})
		want := map[int]bool{lostIdx: true}
		for _, u := range p.UpSet(lostIdx) {
			want[u] = true
		}
		if len(got) != len(want) {
			return false
		}
		for _, o := range got {
			if !want[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the survivor set (complement of the orphan set) is downward
// closed in ↦ — the recovery line is always consistent.
func TestQuickSurvivorsDownwardClosed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(6), 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 2 + rng.Intn(30)}, rng)
		stamps, err := core.StampTrace(tr, decomp.Approximate(g))
		if err != nil {
			return false
		}
		// Lose a random subset of messages.
		var lost []vector.V
		for i := range stamps {
			if rng.Intn(4) == 0 {
				lost = append(lost, stamps[i])
			}
		}
		orphans := Orphans(stamps, lost)
		orphaned := map[int]bool{}
		for _, o := range orphans {
			orphaned[o] = true
		}
		p := order.MessagePoset(tr)
		for i := range stamps {
			if orphaned[i] {
				continue
			}
			for _, o := range orphans {
				if p.Less(o, i) {
					return false // survivor depends on an orphan
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	stamps := stampFigure1(t)
	s := Stats(stamps)
	if s.Messages != 6 {
		t.Fatalf("Messages = %d", s.Messages)
	}
	if s.ConcurrentPairs+s.OrderedPairs != 15 {
		t.Fatalf("pairs = %d + %d, want 15", s.ConcurrentPairs, s.OrderedPairs)
	}
	if s.ConcurrencyRatio <= 0 || s.ConcurrencyRatio >= 1 {
		t.Fatalf("ratio = %v", s.ConcurrencyRatio)
	}
	if s.CriticalPathLen < 4 {
		t.Fatalf("critical path = %d", s.CriticalPathLen)
	}
	empty := Stats(nil)
	if empty.Messages != 0 || empty.ConcurrencyRatio != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}
