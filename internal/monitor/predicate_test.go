package monitor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/trace"
)

// stampedInternal returns the internal-event stamps of tr grouped by
// process, in per-process order.
func stampedInternal(t testing.TB, tr *trace.Trace) [][]core.EventStamp {
	t.Helper()
	// Topology() contains exactly the used channels, so its decomposition
	// covers every message.
	st, err := core.StampAll(tr, decomp.Best(tr.Topology()))
	if err != nil {
		t.Fatal(err)
	}
	byProc := make([][]core.EventStamp, tr.N)
	for _, e := range st.Internal {
		byProc[e.Proc] = append(byProc[e.Proc], e)
	}
	return byProc
}

func TestConjunctiveFindsConcurrentCut(t *testing.T) {
	// P0 and P1 have concurrent internal events between two syncs.
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Internal(0))
	tr.MustAppend(trace.Internal(1))
	tr.MustAppend(trace.Message(0, 1))
	byProc := stampedInternal(t, tr)
	cut, ok, err := ConjunctivePredicate([][]core.EventStamp{byProc[0], byProc[1]})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !cut[0].ConcurrentWith(cut[1]) {
		t.Fatal("returned cut is not consistent")
	}
}

func TestConjunctiveNoCut(t *testing.T) {
	// All of P0's candidates precede all of P1's: P0's event is before the
	// sync, P1's after — and vice versa never happens.
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Internal(0))
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Internal(1))
	byProc := stampedInternal(t, tr)
	_, ok, err := ConjunctivePredicate([][]core.EventStamp{byProc[0], byProc[1]})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("found a cut where none exists")
	}
}

func TestConjunctiveEmptyCandidateList(t *testing.T) {
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Internal(0))
	byProc := stampedInternal(t, tr)
	_, ok, err := ConjunctivePredicate([][]core.EventStamp{byProc[0], nil})
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v, want no-cut without error", ok, err)
	}
}

func TestConjunctiveMixedProcessesRejected(t *testing.T) {
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Internal(0))
	tr.MustAppend(trace.Internal(1))
	byProc := stampedInternal(t, tr)
	mixed := []core.EventStamp{byProc[0][0], byProc[1][0]}
	if _, _, err := ConjunctivePredicate([][]core.EventStamp{mixed}); err == nil {
		t.Fatal("mixed-process candidate list accepted")
	}
}

// bruteCut searches all candidate combinations for a pairwise-concurrent
// selection.
func bruteCut(cands [][]core.EventStamp) bool {
	idx := make([]int, len(cands))
	for {
		ok := true
		for i := 0; i < len(cands) && ok; i++ {
			for j := 0; j < len(cands); j++ {
				if i == j {
					continue
				}
				if cands[i][idx[i]].HappenedBefore(cands[j][idx[j]]) {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
		// Next combination.
		k := 0
		for k < len(cands) {
			idx[k]++
			if idx[k] < len(cands[k]) {
				break
			}
			idx[k] = 0
			k++
		}
		if k == len(cands) {
			return false
		}
	}
}

// Property: the elimination algorithm agrees with brute force and any cut
// it returns is pairwise concurrent.
func TestQuickConjunctiveMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		g := graph.Complete(n)
		tr := trace.Generate(g, trace.GenOptions{
			Messages:     1 + rng.Intn(15),
			InternalProb: 0.5,
		}, rng)
		st, err := core.StampAll(tr, decomp.Best(g))
		if err != nil {
			return false
		}
		byProc := make([][]core.EventStamp, n)
		for _, e := range st.Internal {
			// Each internal event is a candidate with probability 1/2.
			if rng.Intn(2) == 0 {
				byProc[e.Proc] = append(byProc[e.Proc], e)
			}
		}
		// Use only processes with candidates (the caller's contract).
		var cands [][]core.EventStamp
		for _, c := range byProc {
			if len(c) > 0 {
				cands = append(cands, c)
			}
		}
		if len(cands) == 0 {
			return true
		}
		cut, ok, err := ConjunctivePredicate(cands)
		if err != nil {
			return false
		}
		if ok != bruteCut(cands) {
			return false
		}
		if ok {
			for i := range cut {
				for j := range cut {
					if i != j && cut[i].HappenedBefore(cut[j]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
