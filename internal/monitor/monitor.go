// Package monitor implements the applications the paper's introduction
// motivates for message/event timestamps: distributed monitoring (detecting
// concurrency and race-like conflicts for debuggers such as POET and XPVM),
// global-property evaluation (consistent cuts for predicate detection), and
// fault tolerance (orphan detection for optimistic recovery à la
// Strom–Yemini and Damani–Garg). Every function works purely on timestamps;
// no global state or extra communication is needed — that is the point of
// the timestamping machinery.
package monitor

import (
	"fmt"
	"sort"

	"syncstamp/internal/core"
	"syncstamp/internal/vector"
)

// Pair is an unordered pair of indices with I < J.
type Pair struct {
	I, J int
}

// ConcurrentMessages returns every pair of concurrent messages, identified
// from their timestamps alone (the visualization primitive of Section 1).
// Pairs are sorted lexicographically.
func ConcurrentMessages(stamps []vector.V) []Pair {
	var out []Pair
	for i := 0; i < len(stamps); i++ {
		for j := i + 1; j < len(stamps); j++ {
			if vector.Concurrent(stamps[i], stamps[j]) {
				out = append(out, Pair{I: i, J: j})
			}
		}
	}
	return out
}

// CriticalPath returns the length of the longest synchronous chain
// (m1 ↦ m2 ↦ ... ↦ mk) derivable from the timestamps, along with one
// witness chain of message indices. For profiling: the chain is the
// computation's critical path of rendezvous.
func CriticalPath(stamps []vector.V) (int, []int) {
	n := len(stamps)
	if n == 0 {
		return 0, nil
	}
	// Longest path in the DAG of stamp order; process in a topological
	// order obtained by sorting on the sum of components (any linear
	// extension of the stamp order works: v1 < v2 implies sum1 < sum2).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sum := func(v vector.V) int {
		s := 0
		for _, x := range v {
			s += x
		}
		return s
	}
	sort.Slice(idx, func(a, b int) bool { return sum(stamps[idx[a]]) < sum(stamps[idx[b]]) })
	longest := make([]int, n)
	prev := make([]int, n)
	for i := range prev {
		longest[i] = 1
		prev[i] = -1
	}
	for ai := 0; ai < n; ai++ {
		a := idx[ai]
		for bi := ai + 1; bi < n; bi++ {
			b := idx[bi]
			if vector.Less(stamps[a], stamps[b]) && longest[a]+1 > longest[b] {
				longest[b] = longest[a] + 1
				prev[b] = a
			}
		}
	}
	best := 0
	for i := 1; i < n; i++ {
		if longest[i] > longest[best] {
			best = i
		}
	}
	var chain []int
	for cur := best; cur != -1; cur = prev[cur] {
		chain = append(chain, cur)
	}
	for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
		chain[l], chain[r] = chain[r], chain[l]
	}
	return longest[best], chain
}

// Conflict is a pair of concurrent internal events touching the same
// resource — a data race in a monitoring sense.
type Conflict struct {
	A, B     int // indices into the events slice
	Resource string
}

// FindConflicts reports concurrent internal events that share a resource
// label, using only their Section 5 stamps. Events and resources must have
// equal length.
func FindConflicts(events []core.EventStamp, resources []string) ([]Conflict, error) {
	if len(events) != len(resources) {
		return nil, fmt.Errorf("monitor: %d events but %d resource labels", len(events), len(resources))
	}
	var out []Conflict
	for i := 0; i < len(events); i++ {
		for j := i + 1; j < len(events); j++ {
			if resources[i] != resources[j] {
				continue
			}
			if events[i].ConcurrentWith(events[j]) {
				out = append(out, Conflict{A: i, B: j, Resource: resources[i]})
			}
		}
	}
	return out, nil
}

// ConsistentCut reports whether the given internal events form a consistent
// cut: no event in the cut happened before another (they are pairwise
// concurrent), so they can be part of one global snapshot for predicate
// evaluation.
func ConsistentCut(events []core.EventStamp) bool {
	for i := 0; i < len(events); i++ {
		for j := 0; j < len(events); j++ {
			if i != j && events[i].HappenedBefore(events[j]) {
				return false
			}
		}
	}
	return true
}

// Orphans computes the orphan set for optimistic recovery: given the
// timestamps of all messages and the timestamps of the messages a failed
// process produced after its last checkpoint (the "lost" messages), a
// message is orphaned when its timestamp dominates a lost message's — it
// causally depends on rolled-back state and must be rolled back too.
// The failed process's own lost messages are orphans by definition; the
// result is the sorted set of message indices to undo.
func Orphans(stamps []vector.V, lost []vector.V) []int {
	orphan := make(map[int]bool)
	for i, s := range stamps {
		for _, l := range lost {
			if vector.Eq(l, s) || vector.Less(l, s) {
				orphan[i] = true
				break
			}
		}
	}
	out := make([]int, 0, len(orphan))
	for i := range orphan {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Statistics summarizes the concurrency structure of a stamped computation.
type Statistics struct {
	// Messages is the number of stamped messages.
	Messages int
	// ConcurrentPairs and OrderedPairs partition the unordered pairs.
	ConcurrentPairs, OrderedPairs int
	// ConcurrencyRatio is ConcurrentPairs / total pairs (0 for < 2 messages).
	ConcurrencyRatio float64
	// CriticalPathLen is the longest synchronous chain.
	CriticalPathLen int
}

// Stats computes summary statistics from message timestamps alone.
func Stats(stamps []vector.V) Statistics {
	s := Statistics{Messages: len(stamps)}
	for i := 0; i < len(stamps); i++ {
		for j := i + 1; j < len(stamps); j++ {
			if vector.Concurrent(stamps[i], stamps[j]) {
				s.ConcurrentPairs++
			} else {
				s.OrderedPairs++
			}
		}
	}
	if total := s.ConcurrentPairs + s.OrderedPairs; total > 0 {
		s.ConcurrencyRatio = float64(s.ConcurrentPairs) / float64(total)
	}
	s.CriticalPathLen, _ = CriticalPath(stamps)
	return s
}
