package monitor

import (
	"fmt"

	"syncstamp/internal/core"
)

// ConjunctivePredicate implements weak-conjunctive-predicate detection
// (Garg–Waldecker, the paper's global-property-evaluation citation [9]) on
// top of the Section 5 event stamps: given, per participating process, the
// ordered list of its internal events satisfying a local predicate, it finds
// one event per process such that all chosen events are pairwise concurrent
// — a consistent cut witnessing "possibly(∧ local predicates)" — or reports
// that none exists.
//
// The algorithm is the classic queue elimination: while some candidate e_i
// happened before another process's current candidate e_j, e_i can never
// form a consistent cut with e_j or any later event of that process (their
// order only grows), so e_i is eliminated. It runs in O(P² · E) stamp
// comparisons for P processes and E candidate events.
func ConjunctivePredicate(candidates [][]core.EventStamp) ([]core.EventStamp, bool, error) {
	p := len(candidates)
	for i, c := range candidates {
		if len(c) == 0 {
			return nil, false, nil // a process never satisfies its predicate
		}
		for k := 1; k < len(c); k++ {
			if c[k-1].Proc != c[k].Proc {
				return nil, false, fmt.Errorf("monitor: candidate list %d mixes processes %d and %d",
					i, c[k-1].Proc, c[k].Proc)
			}
		}
	}
	ptr := make([]int, p)
	for {
		advanced := false
		for i := 0; i < p && !advanced; i++ {
			for j := 0; j < p; j++ {
				if i == j {
					continue
				}
				ei := candidates[i][ptr[i]]
				ej := candidates[j][ptr[j]]
				if ei.HappenedBefore(ej) {
					ptr[i]++
					if ptr[i] >= len(candidates[i]) {
						return nil, false, nil
					}
					advanced = true
					break
				}
			}
		}
		if !advanced {
			cut := make([]core.EventStamp, p)
			for i := range cut {
				cut[i] = candidates[i][ptr[i]]
			}
			return cut, true, nil
		}
	}
}
