package monitor

import (
	"testing"

	"syncstamp/internal/core"
	"syncstamp/internal/vector"
)

// These tests pin the package's behavior on degenerate and malformed input:
// empty stamp sets, and stamps of mismatched dimension (which the vector
// order deems incomparable by definition — see vector.Compare). The monitor
// functions must stay total: no panics, no fabricated order.

func TestEmptyStampSets(t *testing.T) {
	if pairs := ConcurrentMessages(nil); len(pairs) != 0 {
		t.Errorf("ConcurrentMessages(nil) = %v, want none", pairs)
	}
	if length, chain := CriticalPath(nil); length != 0 || chain != nil {
		t.Errorf("CriticalPath(nil) = %d, %v, want 0, nil", length, chain)
	}
	s := Stats(nil)
	if s.Messages != 0 || s.ConcurrencyRatio != 0 || s.CriticalPathLen != 0 {
		t.Errorf("Stats(nil) = %+v, want zeros", s)
	}
	if got := Orphans(nil, []vector.V{{1, 0}}); len(got) != 0 {
		t.Errorf("Orphans(no stamps) = %v, want none", got)
	}
	if got := Orphans([]vector.V{{1, 0}}, nil); len(got) != 0 {
		t.Errorf("Orphans(no lost messages) = %v, want none", got)
	}
	if !ConsistentCut(nil) {
		t.Error("ConsistentCut(nil) = false; the empty cut is vacuously consistent")
	}
	conflicts, err := FindConflicts(nil, nil)
	if err != nil || len(conflicts) != 0 {
		t.Errorf("FindConflicts(nil, nil) = %v, %v, want none, nil", conflicts, err)
	}
}

func TestSingleMessageStats(t *testing.T) {
	s := Stats([]vector.V{{1, 1}})
	if s.Messages != 1 || s.ConcurrentPairs != 0 || s.OrderedPairs != 0 || s.ConcurrencyRatio != 0 {
		t.Errorf("Stats(one stamp) = %+v", s)
	}
	if s.CriticalPathLen != 1 {
		t.Errorf("critical path of one message = %d, want 1", s.CriticalPathLen)
	}
}

// TestMismatchedStampLengths: vectors of different dimension are
// incomparable by the length rule, so they read as concurrent everywhere and
// never extend a chain or orphan each other.
func TestMismatchedStampLengths(t *testing.T) {
	stamps := []vector.V{{2, 0}, {1, 1, 1}}
	pairs := ConcurrentMessages(stamps)
	if len(pairs) != 1 || pairs[0] != (Pair{I: 0, J: 1}) {
		t.Errorf("mismatched lengths should be concurrent: %v", pairs)
	}
	if length, _ := CriticalPath(stamps); length != 1 {
		t.Errorf("critical path over incomparable stamps = %d, want 1", length)
	}
	if got := Orphans(stamps, []vector.V{{1, 0}}); len(got) != 1 || got[0] != 0 {
		t.Errorf("Orphans with a mismatched-length stamp = %v, want [0]", got)
	}
	s := Stats(stamps)
	if s.ConcurrentPairs != 1 || s.OrderedPairs != 0 {
		t.Errorf("Stats over mismatched lengths = %+v", s)
	}
}

func TestFindConflictsMismatchedLabels(t *testing.T) {
	events := []core.EventStamp{
		{Proc: 0, Prev: vector.V{1, 0}, Succ: vector.V{2, 0}},
		{Proc: 1, Prev: vector.V{0, 1}, Succ: vector.V{0, 2}},
	}
	if _, err := FindConflicts(events, []string{"x"}); err == nil {
		t.Fatal("FindConflicts accepted 2 events with 1 resource label")
	}
	if _, err := FindConflicts(events[:1], []string{"x", "y"}); err == nil {
		t.Fatal("FindConflicts accepted 1 event with 2 resource labels")
	}
	// Equal lengths with no shared resource: total, no conflicts.
	conflicts, err := FindConflicts(events, []string{"x", "y"})
	if err != nil || len(conflicts) != 0 {
		t.Fatalf("FindConflicts distinct resources = %v, %v", conflicts, err)
	}
}

// TestConjunctiveDegenerate pins ConjunctivePredicate's edges: no
// participating processes yields the empty (vacuously consistent) cut, and
// any process with an empty candidate list means no cut at all.
func TestConjunctiveDegenerate(t *testing.T) {
	cut, ok, err := ConjunctivePredicate(nil)
	if err != nil || !ok || len(cut) != 0 {
		t.Errorf("ConjunctivePredicate(no processes) = %v, %v, %v; want empty cut, true, nil", cut, ok, err)
	}
	candidates := [][]core.EventStamp{
		{{Proc: 0, Prev: vector.V{1, 0}, Succ: vector.V{2, 0}}},
		{}, // process 1 never satisfies its predicate
	}
	cut, ok, err = ConjunctivePredicate(candidates)
	if err != nil || ok || cut != nil {
		t.Errorf("ConjunctivePredicate(empty list) = %v, %v, %v; want nil, false, nil", cut, ok, err)
	}
}
