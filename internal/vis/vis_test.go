package vis

import (
	"strings"
	"testing"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

func TestRenderFigure1(t *testing.T) {
	out := Render(trace.Figure1(), Options{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 4 process rows + 3 gap rows.
	if len(lines) != 8 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	for _, want := range []string{"P1", "P2", "P3", "P4", "m1", "m6", "*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// First op is P1 -> P2 (adjacent rows): sender star on P1's row,
	// arrowhead on P2's row.
	p1 := lines[1]
	p2 := lines[3]
	if !strings.Contains(p1, "*") {
		t.Fatalf("P1 row has no send marker: %q", p1)
	}
	if !strings.Contains(p2, "v") {
		t.Fatalf("P2 row has no receive marker: %q", p2)
	}
}

func TestRenderUpwardArrow(t *testing.T) {
	tr := &trace.Trace{N: 3}
	tr.MustAppend(trace.Message(2, 0)) // sender below receiver
	out := Render(tr, Options{})
	if !strings.Contains(out, "^") {
		t.Fatalf("upward message must use ^ head:\n%s", out)
	}
}

func TestRenderInternalAndStamps(t *testing.T) {
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Internal(0))
	tr.MustAppend(trace.Message(0, 1))
	st, err := core.StampAll(tr, decomp.Approximate(graph.Path(2)))
	if err != nil {
		t.Fatal(err)
	}
	out := Render(tr, Options{Stamps: st.Messages})
	if !strings.Contains(out, "o") {
		t.Fatalf("internal event marker missing:\n%s", out)
	}
	if !strings.Contains(out, "m1 = (1)") {
		t.Fatalf("stamp legend missing:\n%s", out)
	}
}

func TestRenderCustomNames(t *testing.T) {
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Message(0, 1))
	out := Render(tr, Options{Names: []string{"client", "server"}})
	if !strings.Contains(out, "client") || !strings.Contains(out, "server") {
		t.Fatalf("custom names missing:\n%s", out)
	}
}

func TestRenderSingleProcess(t *testing.T) {
	tr := &trace.Trace{N: 1}
	tr.MustAppend(trace.Internal(0))
	out := Render(tr, Options{})
	if !strings.Contains(out, "P1") || !strings.Contains(out, "o") {
		t.Fatalf("single-process render wrong:\n%s", out)
	}
}

func TestRenderMatrix(t *testing.T) {
	stamps := []vector.V{{1, 0}, {2, 0}, {0, 1}}
	out := RenderMatrix(stamps)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("matrix lines = %d:\n%s", len(lines), out)
	}
	// m1 < m2, m1 || m3.
	row1 := lines[1]
	if !strings.Contains(row1, ".") || !strings.Contains(row1, "<") || !strings.Contains(row1, "|") {
		t.Fatalf("row1 = %q", row1)
	}
	row2 := lines[2]
	if !strings.Contains(row2, ">") {
		t.Fatalf("row2 = %q", row2)
	}
}

func TestRenderBands(t *testing.T) {
	tr := &trace.Trace{N: 3}
	for k := 0; k < 9; k++ {
		tr.MustAppend(trace.Message(k%2, 2))
	}
	st, err := core.StampTrace(tr, decomp.Approximate(graph.Star(3, 2)))
	if err != nil {
		t.Fatal(err)
	}
	out := Render(tr, Options{MaxOpsPerBand: 4, Stamps: st})
	// Three bands of 4+4+1 ops, each with its own header row.
	if got := strings.Count(out, "P1 -"); got != 3 {
		t.Fatalf("expected 3 bands, got %d:\n%s", got, out)
	}
	// Global numbering: the last band's header carries m9.
	if !strings.Contains(out, "m9") {
		t.Fatalf("band numbering lost:\n%s", out)
	}
	// The legend appears once, at the end, for all messages.
	if got := strings.Count(out, "m9 = "); got != 1 {
		t.Fatalf("legend count = %d:\n%s", got, out)
	}
	// Short traces are unaffected by the option.
	short := &trace.Trace{N: 2}
	short.MustAppend(trace.Message(0, 1))
	a := Render(short, Options{MaxOpsPerBand: 100})
	b := Render(short, Options{})
	if a != b {
		t.Fatal("MaxOpsPerBand changed a short trace's rendering")
	}
}

func TestRenderZeroProcesses(t *testing.T) {
	out := Render(&trace.Trace{N: 0}, Options{})
	if !strings.Contains(out, "empty computation") {
		t.Fatalf("zero-process render = %q", out)
	}
}
