// Package vis renders synchronous computations as ASCII time diagrams with
// vertical message arrows — the canonical way to draw them (Section 2,
// Figure 1/Figure 6 of the paper) and the kind of visualization distributed
// debuggers such as POET and XPVM build from timestamps (Section 1).
package vis

import (
	"fmt"
	"strings"

	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// cellWidth is the number of columns each operation occupies.
const cellWidth = 4

// Options configures rendering.
type Options struct {
	// Stamps, when non-nil, adds a legend line per message with its vector
	// timestamp (indexed by message index).
	Stamps []vector.V
	// Names overrides process labels; defaults to P1..PN (the paper's
	// 1-indexed convention).
	Names []string
	// MaxOpsPerBand wraps long computations into stacked bands of at most
	// this many operations each (0 = no wrapping).
	MaxOpsPerBand int
}

// Render draws tr as a time diagram: one row per process, one column per
// operation; messages are vertical arrows from sender (*) to receiver
// (v or ^), internal events are 'o'. A header row labels message columns
// m1, m2, ...; long computations wrap into bands when MaxOpsPerBand is set.
func Render(tr *trace.Trace, opts Options) string {
	if tr.N == 0 {
		return "(empty computation)\n"
	}
	if opts.MaxOpsPerBand > 0 && len(tr.Ops) > opts.MaxOpsPerBand {
		return renderBands(tr, opts)
	}
	return renderOnce(tr, opts, 0)
}

// renderBands splits the operation sequence into chunks and stacks their
// diagrams, keeping global message numbering.
func renderBands(tr *trace.Trace, opts Options) string {
	var b strings.Builder
	inner := opts
	inner.MaxOpsPerBand = 0
	inner.Stamps = nil // the legend is printed once, at the end
	msgOffset := 0
	for start := 0; start < len(tr.Ops); start += opts.MaxOpsPerBand {
		end := start + opts.MaxOpsPerBand
		if end > len(tr.Ops) {
			end = len(tr.Ops)
		}
		band := &trace.Trace{N: tr.N, Ops: tr.Ops[start:end]}
		if start > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(renderOnce(band, inner, msgOffset))
		msgOffset += band.NumMessages()
	}
	if opts.Stamps != nil {
		b.WriteByte('\n')
		for i, s := range opts.Stamps {
			fmt.Fprintf(&b, "m%d = %s\n", i+1, s)
		}
	}
	return b.String()
}

// renderOnce draws a single band; msgOffset shifts the message labels.
func renderOnce(tr *trace.Trace, opts Options, msgOffset int) string {
	names := opts.Names
	if names == nil {
		names = make([]string, tr.N)
		for i := range names {
			names[i] = fmt.Sprintf("P%d", i+1)
		}
	}
	labelW := 0
	for _, n := range names {
		if len(n) > labelW {
			labelW = len(n)
		}
	}
	cols := len(tr.Ops)
	// grid[r][c] in (2*N−1) rows: even rows are process lines, odd rows are
	// the gaps used by long vertical arrows.
	rows := 2*tr.N - 1
	if rows < 1 {
		rows = 1
	}
	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = make([]rune, cols*cellWidth)
		for c := range grid[r] {
			if r%2 == 0 {
				grid[r][c] = '-'
			} else {
				grid[r][c] = ' '
			}
		}
	}
	header := make([]rune, cols*cellWidth)
	for i := range header {
		header[i] = ' '
	}

	msg := 0
	for c, op := range tr.Ops {
		mid := c*cellWidth + 1
		switch op.Kind {
		case trace.OpMessage:
			top, bot := op.From, op.To
			senderOnTop := true
			if top > bot {
				top, bot = bot, top
				senderOnTop = false
			}
			for r := 2*top + 1; r < 2*bot; r++ {
				grid[r][mid] = '|'
			}
			if senderOnTop {
				grid[2*top][mid] = '*'
				grid[2*bot][mid] = 'v'
			} else {
				grid[2*top][mid] = '^'
				grid[2*bot][mid] = '*'
			}
			label := []rune(fmt.Sprintf("m%d", msgOffset+msg+1))
			for k, ch := range label {
				if mid+k-0 < len(header) {
					header[mid+k] = ch
				}
			}
			msg++
		case trace.OpInternal:
			grid[2*op.Proc][mid] = 'o'
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%*s %s\n", labelW, "", string(header))
	for r := 0; r < rows; r++ {
		if r%2 == 0 {
			fmt.Fprintf(&b, "%-*s %s\n", labelW, names[r/2], string(grid[r]))
		} else {
			fmt.Fprintf(&b, "%*s %s\n", labelW, "", string(grid[r]))
		}
	}
	if opts.Stamps != nil {
		b.WriteByte('\n')
		for i, s := range opts.Stamps {
			fmt.Fprintf(&b, "m%d = %s\n", i+1, s)
		}
	}
	return b.String()
}

// RenderMatrix prints the precedence matrix of the messages under the given
// stamps: cell (i, j) is '<' when mi ↦ mj, '>' when mj ↦ mi, '|' when
// concurrent, '.' on the diagonal — the at-a-glance view a monitoring tool
// derives from timestamps alone.
func RenderMatrix(stamps []vector.V) string {
	n := len(stamps)
	var b strings.Builder
	b.WriteString("    ")
	for j := 0; j < n; j++ {
		fmt.Fprintf(&b, "m%-3d", j+1)
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "m%-3d", i+1)
		for j := 0; j < n; j++ {
			ch := "|"
			switch {
			case i == j:
				ch = "."
			case vector.Less(stamps[i], stamps[j]):
				ch = "<"
			case vector.Less(stamps[j], stamps[i]):
				ch = ">"
			}
			fmt.Fprintf(&b, "%-4s", ch)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
