package topospec

import (
	"strings"
	"testing"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		spec string
		n, m int
	}{
		{"complete:5", 5, 10},
		{"k:4", 4, 6},
		{"star:6", 6, 5},
		{"triangle", 3, 3},
		{"path:4", 4, 3},
		{"cycle:5", 5, 5},
		{"grid:2x3", 6, 7},
		{"hypercube:3", 8, 12},
		{"clientserver:2x4", 6, 8},
		{"cs:3x3", 6, 9},
		{"tree:2x2", 7, 6},
		{"randtree:9", 9, 8},
		{"randtree:9:seed42", 9, 8},
		{"triangles:2", 6, 6},
		{"figure2b", 11, 16},
		{"figure4", 20, 19},
		{"COMPLETE:3", 3, 3}, // case-insensitive
		{" path:3 ", 3, 2},   // whitespace tolerated
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			g, err := Parse(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != tc.n || g.M() != tc.m {
				t.Fatalf("%q -> n=%d m=%d, want n=%d m=%d", tc.spec, g.N(), g.M(), tc.n, tc.m)
			}
		})
	}
}

func TestParseGnp(t *testing.T) {
	g, err := Parse("gnp:10:0.3:seed7")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || !g.IsConnected() {
		t.Fatalf("gnp: n=%d connected=%v", g.N(), g.IsConnected())
	}
	// Same seed -> same graph.
	g2, err := Parse("gnp:10:0.3:seed7")
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != g2.M() {
		t.Fatal("gnp spec is not deterministic for a fixed seed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"unknown:3",
		"complete",
		"complete:x",
		"complete:-1",
		"star:0",
		"cycle:2",
		"grid:3",
		"grid:ax2",
		"hypercube:99",
		"tree:0x2",
		"gnp:5",
		"gnp:5:1.5",
		"randtree:5:seedX",
	}
	for _, spec := range cases {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestHelpMentionsAllFamilies(t *testing.T) {
	for _, name := range []string{"complete", "star", "triangle", "path", "cycle",
		"grid", "hypercube", "clientserver", "tree", "randtree", "gnp", "triangles",
		"figure2b", "figure4"} {
		if !strings.Contains(Help, name) {
			t.Errorf("Help missing %q", name)
		}
	}
}
