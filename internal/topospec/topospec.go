// Package topospec parses compact textual topology specifications used by
// the command-line tools, e.g. "complete:8", "clientserver:2x10",
// "tree:3x2", "gnp:12:0.3:seed7". It exists so tsgen, tsdecomp, tsstamp and
// paperbench accept the same vocabulary.
package topospec

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"syncstamp/internal/graph"
)

// Help describes the accepted specifications, for tool usage text.
const Help = `topology specs:
  complete:N          fully connected on N processes (Figure 2(a))
  star:N              star on N processes rooted at 0
  triangle            the 3-process triangle
  path:N              path on N processes
  cycle:N             cycle on N processes
  grid:RxC            R x C grid
  hypercube:D         D-dimensional hypercube (2^D processes)
  clientserver:SxC    S servers, C clients, clients talk only to servers
  tree:BxD            complete B-ary tree of depth D
  randtree:N[:seedS]  random tree on N processes
  gnp:N:P[:seedS]     Erdos-Renyi G(N, P), connected up by a random tree
  triangles:T         T disjoint triangles (beta = 2*alpha example)
  figure2b            the 11-process topology of Figures 2(b)/8
  figure4             the 20-process tree of Figure 4`

// Parse builds the graph described by spec.
func Parse(spec string) (*graph.Graph, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	if len(parts) == 0 || parts[0] == "" {
		return nil, fmt.Errorf("topospec: empty spec")
	}
	name := strings.ToLower(parts[0])
	args := parts[1:]

	seed := int64(1)
	// A trailing "seedS" argument selects the RNG seed for random families.
	if len(args) > 0 && strings.HasPrefix(args[len(args)-1], "seed") {
		s, err := strconv.ParseInt(strings.TrimPrefix(args[len(args)-1], "seed"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("topospec: bad seed in %q", spec)
		}
		seed = s
		args = args[:len(args)-1]
	}

	intArg := func(i int) (int, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("topospec: %s needs argument %d", name, i+1)
		}
		v, err := strconv.Atoi(args[i])
		if err != nil || v < 0 {
			return 0, fmt.Errorf("topospec: bad number %q in %q", args[i], spec)
		}
		return v, nil
	}
	pairArg := func(i int) (int, int, error) {
		if i >= len(args) {
			return 0, 0, fmt.Errorf("topospec: %s needs AxB argument", name)
		}
		ab := strings.SplitN(strings.ToLower(args[i]), "x", 2)
		if len(ab) != 2 {
			return 0, 0, fmt.Errorf("topospec: want AxB, got %q", args[i])
		}
		a, err1 := strconv.Atoi(ab[0])
		b, err2 := strconv.Atoi(ab[1])
		if err1 != nil || err2 != nil || a < 0 || b < 0 {
			return 0, 0, fmt.Errorf("topospec: bad pair %q", args[i])
		}
		return a, b, nil
	}

	switch name {
	case "complete", "k":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		return graph.Complete(n), nil
	case "star":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("topospec: star needs at least 1 process")
		}
		return graph.Star(n, 0), nil
	case "triangle":
		return graph.Triangle(), nil
	case "path":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		return graph.Path(n), nil
	case "cycle":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		if n < 3 {
			return nil, fmt.Errorf("topospec: cycle needs at least 3 processes")
		}
		return graph.Cycle(n), nil
	case "grid":
		r, c, err := pairArg(0)
		if err != nil {
			return nil, err
		}
		return graph.Grid(r, c), nil
	case "hypercube":
		d, err := intArg(0)
		if err != nil {
			return nil, err
		}
		if d > 16 {
			return nil, fmt.Errorf("topospec: hypercube dimension %d too large", d)
		}
		return graph.Hypercube(d), nil
	case "clientserver", "cs":
		s, c, err := pairArg(0)
		if err != nil {
			return nil, err
		}
		return graph.ClientServer(s, c, false), nil
	case "tree":
		b, d, err := pairArg(0)
		if err != nil {
			return nil, err
		}
		if b < 1 {
			return nil, fmt.Errorf("topospec: tree branching must be >= 1")
		}
		return graph.BalancedTree(b, d), nil
	case "randtree":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		return graph.RandomTree(n, rand.New(rand.NewSource(seed))), nil
	case "gnp":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("topospec: gnp needs a probability")
		}
		p, err := strconv.ParseFloat(args[1], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("topospec: bad probability %q", args[1])
		}
		return graph.RandomConnected(n, p, rand.New(rand.NewSource(seed))), nil
	case "triangles":
		t, err := intArg(0)
		if err != nil {
			return nil, err
		}
		return graph.DisjointTriangles(t), nil
	case "figure2b":
		return graph.Figure2b(), nil
	case "figure4":
		return graph.Figure4Tree(), nil
	default:
		return nil, fmt.Errorf("topospec: unknown topology %q\n%s", name, Help)
	}
}
