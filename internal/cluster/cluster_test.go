package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
)

func TestNewPartitionValidation(t *testing.T) {
	if _, err := NewPartition([]int{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartition(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartition([]int{0, -1}); err == nil {
		t.Fatal("negative cluster accepted")
	}
	if _, err := NewPartition([]int{0, 2}); err == nil {
		t.Fatal("non-contiguous cluster ids accepted")
	}
}

func TestContiguous(t *testing.T) {
	part, err := Contiguous(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Members) != 3 {
		t.Fatalf("clusters = %d, want 3", len(part.Members))
	}
	if part.ClusterOf[6] != 2 || part.ClusterOf[2] != 0 {
		t.Fatalf("ClusterOf = %v", part.ClusterOf)
	}
	if _, err := Contiguous(5, 0); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestPureIntraClusterTraffic(t *testing.T) {
	// Two clusters of 3; all traffic stays inside clusters: everything is
	// pure and compact stamps have 3 components.
	part, err := Contiguous(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{N: 6}
	for k := 0; k < 10; k++ {
		tr.MustAppend(trace.Message(0, 1))
		tr.MustAppend(trace.Message(1, 2))
		tr.MustAppend(trace.Message(3, 4))
		tr.MustAppend(trace.Message(4, 5))
	}
	res, err := Stamp(tr, part)
	if err != nil {
		t.Fatal(err)
	}
	if res.PureFraction() != 1 {
		t.Fatalf("pure fraction = %v, want 1", res.PureFraction())
	}
	for m, c := range res.Compact {
		if c == nil || len(c) != 3 {
			t.Fatalf("message %d compact stamp = %v", m, c)
		}
	}
	// Cross-cluster pure pairs are concurrent at zero comparison cost.
	ok, cost := res.Precedes(0, 2) // (0,1)-cluster0 vs (3,4)-cluster1
	if ok || cost != 0 {
		t.Fatalf("cross-cluster pure pair: ok=%v cost=%d", ok, cost)
	}
}

func TestImpurityPropagates(t *testing.T) {
	part, err := Contiguous(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{N: 4}
	tr.MustAppend(trace.Message(0, 1)) // pure in cluster 0
	tr.MustAppend(trace.Message(1, 2)) // crosses clusters: impure
	tr.MustAppend(trace.Message(0, 1)) // P1's history is now tainted: impure
	tr.MustAppend(trace.Message(2, 3)) // P2 tainted too: impure
	res, err := Stamp(tr, part)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pure != 1 {
		t.Fatalf("pure = %d, want 1", res.Pure)
	}
	if res.Compact[2] != nil || res.Compact[3] != nil {
		t.Fatal("tainted messages must not get compact stamps")
	}
}

func TestStampPartitionMismatch(t *testing.T) {
	part, err := Contiguous(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stamp(&trace.Trace{N: 5}, part); err == nil {
		t.Fatal("partition size mismatch accepted")
	}
}

func TestPrecedesPanicsOutOfRange(t *testing.T) {
	part, _ := Contiguous(2, 2)
	res, err := Stamp(&trace.Trace{N: 2}, part)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Precedes did not panic")
		}
	}()
	res.Precedes(0, 1)
}

// Property: cluster-scheme Precedes equals the oracle on arbitrary traffic
// and partitions.
func TestQuickPrecedesMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := graph.RandomConnected(n, 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 1 + rng.Intn(40), Hotspot: rng.Float64()}, rng)
		size := 1 + rng.Intn(n)
		part, err := Contiguous(n, size)
		if err != nil {
			return false
		}
		res, err := Stamp(tr, part)
		if err != nil {
			return false
		}
		p := order.MessagePoset(tr)
		for i := 0; i < p.N(); i++ {
			for j := 0; j < p.N(); j++ {
				if i == j {
					continue
				}
				got, _ := res.Precedes(i, j)
				if got != p.Less(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: piggyback bytes never exceed FM's and pure fraction is within
// [0, 1].
func TestQuickPiggybackBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := graph.RandomConnected(n, 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 1 + rng.Intn(30)}, rng)
		part, err := Contiguous(n, 1+rng.Intn(n))
		if err != nil {
			return false
		}
		res, err := Stamp(tr, part)
		if err != nil {
			return false
		}
		fmBytes := 0.0
		for _, s := range res.Full {
			fmBytes += float64(s.EncodedSize())
		}
		fmBytes /= float64(len(res.Full))
		pf := res.PureFraction()
		return res.MeanPiggybackBytes() <= fmBytes+1e-9 && pf >= 0 && pf <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyComputation(t *testing.T) {
	part, _ := Contiguous(3, 2)
	res, err := Stamp(&trace.Trace{N: 3}, part)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPiggybackBytes() != 0 || res.PureFraction() != 0 {
		t.Fatal("empty computation metrics should be zero")
	}
}
