package cluster_test

import (
	"fmt"
	"testing"

	"syncstamp/internal/check"
	"syncstamp/internal/cluster"
	"syncstamp/internal/order"
)

// TestPropClusterExact: the hierarchical cluster scheme must answer every
// precedence query exactly — under the registry's random partition and at
// both degenerate extremes (singleton clusters: nothing is pure; one big
// cluster: everything is pure and the compact stamps carry all queries).
func TestPropClusterExact(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		if err := check.Compare(in, "cluster"); err != nil {
			return err
		}
		p := order.MessagePoset(in.Trace)
		for _, size := range []int{1, in.Trace.N} {
			part, err := cluster.Contiguous(in.Trace.N, size)
			if err != nil {
				return err
			}
			res, err := cluster.Stamp(in.Trace, part)
			if err != nil {
				return err
			}
			if size == in.Trace.N && len(res.Full) > 0 && res.PureFraction() != 1 {
				return fmt.Errorf("one-cluster partition left %v of messages impure", 1-res.PureFraction())
			}
			if err := check.ExactMatch(in.Trace, func(m1, m2 int) bool {
				ok, _ := res.Precedes(m1, m2)
				return ok
			}); err != nil {
				return fmt.Errorf("cluster size %d: %w", size, err)
			}
			_ = p
		}
		return nil
	})
}
