package cluster_test

import (
	"fmt"

	"syncstamp/internal/cluster"
	"syncstamp/internal/trace"
)

// Two 2-process clusters with purely local traffic: every message keeps a
// 2-component cluster stamp, and cross-cluster pure pairs are concurrent at
// zero comparison cost.
func ExampleStamp() {
	part, err := cluster.Contiguous(4, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tr := &trace.Trace{N: 4}
	tr.MustAppend(trace.Message(0, 1)) // cluster 0
	tr.MustAppend(trace.Message(2, 3)) // cluster 1
	tr.MustAppend(trace.Message(0, 1)) // cluster 0 again
	res, err := cluster.Stamp(tr, part)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("pure: %d/%d\n", res.Pure, len(res.Full))
	ordered, cost := res.Precedes(0, 2)
	fmt.Println("m1 ↦ m3:", ordered, "compared", cost, "components")
	ordered, cost = res.Precedes(0, 1)
	fmt.Println("m1 ↦ m2:", ordered, "compared", cost, "components")
	// Output:
	// pure: 3/3
	// m1 ↦ m3: true compared 2 components
	// m1 ↦ m2: false compared 0 components
}
