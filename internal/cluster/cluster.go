// Package cluster implements a hierarchical cluster timestamping scheme in
// the spirit of Ward and Taylor's dynamic centralized clocks (citation [23]
// of the paper, discussed in Section 6). Processes are partitioned into
// clusters; a message whose entire causal history stays inside one cluster
// ("pure") carries only a cluster-local vector of size equal to the cluster,
// while messages with cross-cluster history fall back to full Fidge–Mattern
// vectors. Precedence tests run in O(cluster) for pure same-cluster pairs,
// O(1) for pure pairs of different clusters (they are necessarily
// concurrent), and O(N) otherwise.
//
// The scheme is exact — it never mis-orders — but its savings depend on the
// traffic's locality, which is the contrast the paper draws: its own online
// algorithm gets its small vectors from the topology alone, independent of
// traffic patterns and with no centralized bookkeeping. Experiment E19
// quantifies both sides.
package cluster

import (
	"fmt"

	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// Partition assigns each process to a cluster.
type Partition struct {
	// ClusterOf maps process -> cluster id (0-based, contiguous).
	ClusterOf []int
	// Members lists each cluster's processes in increasing order.
	Members [][]int
	// indexIn maps process -> its index within its cluster.
	indexIn []int
}

// NewPartition validates and indexes a process->cluster assignment.
func NewPartition(clusterOf []int) (*Partition, error) {
	if len(clusterOf) == 0 {
		return &Partition{}, nil
	}
	max := -1
	for p, c := range clusterOf {
		if c < 0 {
			return nil, fmt.Errorf("cluster: process %d has negative cluster %d", p, c)
		}
		if c > max {
			max = c
		}
	}
	members := make([][]int, max+1)
	indexIn := make([]int, len(clusterOf))
	for p, c := range clusterOf {
		indexIn[p] = len(members[c])
		members[c] = append(members[c], p)
	}
	for c, m := range members {
		if len(m) == 0 {
			return nil, fmt.Errorf("cluster: cluster %d is empty (ids must be contiguous)", c)
		}
	}
	return &Partition{
		ClusterOf: append([]int(nil), clusterOf...),
		Members:   members,
		indexIn:   indexIn,
	}, nil
}

// Contiguous partitions n processes into ⌈n/size⌉ clusters of consecutive
// ids.
func Contiguous(n, size int) (*Partition, error) {
	if size < 1 {
		return nil, fmt.Errorf("cluster: size %d < 1", size)
	}
	clusterOf := make([]int, n)
	for p := range clusterOf {
		clusterOf[p] = p / size
	}
	return NewPartition(clusterOf)
}

// historyState tracks what a process's causal history has touched.
const (
	historyUnset  = -1 // nothing yet
	historyImpure = -2 // history crosses clusters
)

// Result holds the stamps of one computation under a partition.
type Result struct {
	part *Partition
	// Full holds the full Fidge–Mattern stamp of every message (the
	// centralized bookkeeping).
	Full []vector.V
	// Compact holds the cluster-local stamp for pure messages, nil for
	// impure ones.
	Compact []vector.V
	// Cluster is the message's cluster for pure messages, historyImpure
	// otherwise.
	Cluster []int
	// Pure counts the messages with compact stamps.
	Pure int
}

// Stamp runs the scheme over a computation.
func Stamp(tr *trace.Trace, part *Partition) (*Result, error) {
	if len(part.ClusterOf) != tr.N {
		return nil, fmt.Errorf("cluster: partition covers %d processes, trace has %d", len(part.ClusterOf), tr.N)
	}
	res := &Result{part: part}

	full := make([]vector.V, tr.N)
	hist := make([]int, tr.N)
	compact := make([]vector.V, tr.N) // cluster-local clock per process
	for p := 0; p < tr.N; p++ {
		full[p] = vector.New(tr.N)
		hist[p] = historyUnset
		compact[p] = vector.New(len(part.Members[part.ClusterOf[p]]))
	}

	for _, op := range tr.Ops {
		if op.Kind != trace.OpMessage {
			continue
		}
		i, j := op.From, op.To
		// Full FM stamp (always maintained).
		full[i][i]++
		full[j][j]++
		full[i].Max(full[j])
		copy(full[j], full[i])
		res.Full = append(res.Full, full[i].Clone())

		ci, cj := part.ClusterOf[i], part.ClusterOf[j]
		pure := ci == cj &&
			(hist[i] == historyUnset || hist[i] == ci) &&
			(hist[j] == historyUnset || hist[j] == cj)
		if pure {
			hist[i], hist[j] = ci, ci
			compact[i][part.indexIn[i]]++
			compact[j][part.indexIn[j]]++
			compact[i].Max(compact[j])
			copy(compact[j], compact[i])
			res.Compact = append(res.Compact, compact[i].Clone())
			res.Cluster = append(res.Cluster, ci)
			res.Pure++
		} else {
			hist[i], hist[j] = historyImpure, historyImpure
			res.Compact = append(res.Compact, nil)
			res.Cluster = append(res.Cluster, historyImpure)
		}
	}
	return res, nil
}

// Precedes reports m1 ↦ m2 and the number of vector components compared —
// the precedence-test cost the hierarchical scheme optimizes for local
// traffic.
func (r *Result) Precedes(m1, m2 int) (bool, int) {
	if m1 < 0 || m1 >= len(r.Full) || m2 < 0 || m2 >= len(r.Full) {
		panic(fmt.Sprintf("cluster: message index out of range: %d, %d (have %d)", m1, m2, len(r.Full)))
	}
	c1, c2 := r.Cluster[m1], r.Cluster[m2]
	switch {
	case c1 >= 0 && c1 == c2:
		// Same-cluster pure pair: the cluster-local restriction is itself a
		// synchronous computation, so its FM stamps are exact.
		return vector.Less(r.Compact[m1], r.Compact[m2]), len(r.Compact[m1])
	case c1 >= 0 && c2 >= 0:
		// Pure messages of different clusters have disjoint causal
		// histories: necessarily concurrent.
		return false, 0
	default:
		return vector.Less(r.Full[m1], r.Full[m2]), len(r.Full[m1])
	}
}

// MeanPiggybackBytes returns the mean varint-encoded bytes a message would
// carry: compact stamps for pure messages, full stamps otherwise.
func (r *Result) MeanPiggybackBytes() float64 {
	if len(r.Full) == 0 {
		return 0
	}
	total := 0
	for m := range r.Full {
		if r.Compact[m] != nil {
			total += r.Compact[m].EncodedSize()
		} else {
			total += r.Full[m].EncodedSize()
		}
	}
	return float64(total) / float64(len(r.Full))
}

// PureFraction returns the fraction of messages that stayed cluster-pure.
func (r *Result) PureFraction() float64 {
	if len(r.Full) == 0 {
		return 0
	}
	return float64(r.Pure) / float64(len(r.Full))
}
