package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vclock"
	"syncstamp/internal/vector"
)

// meanBytes returns the mean varint-encoded piggyback size of the stamps.
func meanBytes(stamps []vector.V) float64 {
	if len(stamps) == 0 {
		return 0
	}
	total := 0
	for _, s := range stamps {
		total += s.EncodedSize()
	}
	return float64(total) / float64(len(stamps))
}

// e13 measures message overhead: components and encoded bytes per message
// for every mechanism, across the paper's motivating topologies. This is
// the scalability claim of Sections 1/3.3 in table form.
func e13() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Message overhead — components and piggyback bytes per mechanism",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(13))
			t := newTable(w)
			t.row("topology", "N", "mechanism", "components", "mean bytes/msg", "exact ↦?")
			cases := []struct {
				name string
				g    *graph.Graph
				dec  func(*graph.Graph) *decomp.Decomposition
			}{
				{"clientserver:2x20", graph.ClientServer(2, 20, false), decomp.Best},
				{"clientserver:2x100", graph.ClientServer(2, 100, false), decomp.Best},
				{"figure4 tree (N=20)", graph.Figure4Tree(), decomp.Best},
				{"complete:16", graph.Complete(16), decomp.Best},
				{"star:50", graph.Star(50, 0), decomp.Best},
			}
			const msgs = 400
			for _, c := range cases {
				tr := trace.Generate(c.g, trace.GenOptions{Messages: msgs}, rng)
				dec := c.dec(c.g)
				online, err := core.StampTrace(tr, dec)
				if err != nil {
					return err
				}
				fm := vclock.FM{}.StampTrace(tr)
				lam := vclock.Lamport{}.StampTrace(tr)
				plaus := vclock.Plausible{R: 4}.StampTrace(tr)
				dd := vclock.NewDirectDep(tr)
				sk := vclock.Simulate(tr)

				t.row(c.name, c.g.N(), "edge-decomp (this paper)", dec.D(),
					fmt.Sprintf("%.1f", meanBytes(online)), "yes")
				t.row("", "", "fidge-mattern", c.g.N(),
					fmt.Sprintf("%.1f", meanBytes(fm)), "yes")
				t.row("", "", "singhal-kshemkalyani", c.g.N(),
					fmt.Sprintf("%.1f (diff)", sk.MeanBytes()), "yes")
				t.row("", "", "lamport", 1,
					fmt.Sprintf("%.1f", meanBytes(lam)), "no")
				t.row("", "", "plausible-R4", 4,
					fmt.Sprintf("%.1f", meanBytes(plaus)), "no")
				t.row("", "", "direct-dependency", dd.PiggybackInts(),
					"~2.0 (ids)", "offline only")
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintln(w, "shape check: edge-decomp bytes stay flat as clients grow while FM grows with N.")
			fmt.Fprintln(w, "note: SK differential piggyback (2 bytes/changed entry) beats full FM only on")
			fmt.Fprintln(w, "repetitive traffic; the uniform workloads above are its worst case:")

			// SK's favorable regime: bursty same-pair traffic, where only the
			// two own components change between consecutive exchanges.
			burst := &trace.Trace{N: 102}
			for c := 2; c < 102; c++ {
				for k := 0; k < 10; k++ {
					burst.MustAppend(trace.Message(c%2, c))
				}
			}
			skBurst := vclock.Simulate(burst)
			fmBurst := vclock.FM{}.StampTrace(burst)
			fmt.Fprintf(w, "  clientserver:2x100, 10-message bursts per client: SK %.1f B/msg vs FM %.1f B/msg\n",
				skBurst.MeanBytes(), meanBytes(fmBurst))
			return nil
		},
	}
}

// e14 validates the distributed implementation: the CSP runtime with real
// goroutines and acknowledgement piggybacking produces exactly the
// sequential algorithm's stamps.
func e14() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "CSP runtime — concurrent goroutine runs match the sequential algorithm",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(14))
			t := newTable(w)
			t.row("topology", "runs", "messages", "stamps match", "Theorem 4 holds", "")
			cases := []struct {
				name string
				g    *graph.Graph
			}{
				{"path:4", graph.Path(4)},
				{"complete:5", graph.Complete(5)},
				{"clientserver:2x6", graph.ClientServer(2, 6, false)},
				{"figure2b", graph.Figure2b()},
			}
			for _, c := range cases {
				dec := decomp.Best(c.g)
				const runs = 5
				match, theorem4 := true, true
				totalMsgs := 0
				for r := 0; r < runs; r++ {
					tr := trace.Generate(c.g, trace.GenOptions{Messages: 40, InternalProb: 0.2}, rng)
					res, err := csp.Run(dec, csp.ReplayPrograms(tr), 30*time.Second)
					if err != nil {
						return err
					}
					totalMsgs += res.Trace.NumMessages()
					seq, err := core.StampTrace(res.Trace, dec)
					if err != nil {
						return err
					}
					for i := range seq {
						if !vector.Eq(seq[i], res.Stamps[i]) {
							match = false
						}
					}
					p := order.MessagePoset(res.Trace)
					for i := range res.Stamps {
						for j := range res.Stamps {
							if i != j && vector.Less(res.Stamps[i], res.Stamps[j]) != p.Less(i, j) {
								theorem4 = false
							}
						}
					}
				}
				t.row(c.name, runs, totalMsgs, match, theorem4, checkMark(match && theorem4))
			}
			return t.flush()
		},
	}
}

// e15 quantifies the Section 6 comparison with plausible clocks: fraction of
// concurrent pairs they falsely order, versus zero for the online algorithm.
func e15() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Plausible clocks — false orderings of concurrent pairs (Section 6)",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(15))
			g := graph.Complete(12)
			dec := decomp.Best(g)
			t := newTable(w)
			t.row("mechanism", "components", "concurrent pairs", "falsely ordered", "rate", "")
			const runs, msgs = 10, 120
			type agg struct {
				conc, false_ int
			}
			mechs := []struct {
				name  string
				comps int
				stamp func(tr *trace.Trace) []vector.V
			}{
				{"edge-decomp (this paper)", dec.D(), func(tr *trace.Trace) []vector.V {
					s, err := core.StampTrace(tr, dec)
					if err != nil {
						panic(err.Error())
					}
					return s
				}},
				{"plausible-R2", 2, vclock.Plausible{R: 2}.StampTrace},
				{"plausible-R4", 4, vclock.Plausible{R: 4}.StampTrace},
				{"plausible-R8", 8, vclock.Plausible{R: 8}.StampTrace},
				{"lamport", 1, vclock.Lamport{}.StampTrace},
				{"fidge-mattern", g.N(), vclock.FM{}.StampTrace},
			}
			results := make([]agg, len(mechs))
			for r := 0; r < runs; r++ {
				tr := trace.Generate(g, trace.GenOptions{Messages: msgs}, rng)
				p := order.MessagePoset(tr)
				for mi, m := range mechs {
					stamps := m.stamp(tr)
					for i := range stamps {
						for j := range stamps {
							if i == j || !p.Concurrent(i, j) {
								continue
							}
							results[mi].conc++
							if vector.Less(stamps[i], stamps[j]) {
								results[mi].false_++
							}
						}
					}
				}
			}
			for mi, m := range mechs {
				rate := float64(results[mi].false_) / float64(results[mi].conc)
				wantZero := m.name == "edge-decomp (this paper)" || m.name == "fidge-mattern"
				ok := !wantZero || results[mi].false_ == 0
				t.row(m.name, m.comps, results[mi].conc, results[mi].false_,
					fmt.Sprintf("%.3f", rate), checkMark(ok))
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintln(w, "plausible clocks never miss a true order but do order concurrent pairs;")
			fmt.Fprintln(w, "the paper's stamps and FM characterize ↦ exactly (rate 0).")
			return nil
		},
	}
}

// e16 demonstrates the tightness of β(G) ≤ 2α(G) on disjoint triangles.
func e16() Experiment {
	return Experiment{
		ID:    "E16",
		Title: "β(G) ≤ 2α(G), tight on t disjoint triangles (Section 3.3)",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("t (triangles)", "α(G)", "β(G)", "β = 2α?", "star-only d", "fig7 d", "")
			for _, tri := range []int{1, 2, 3, 4} {
				g := graph.DisjointTriangles(tri)
				alpha, err := decomp.Alpha(g, 0)
				if err != nil {
					return err
				}
				cover, err := decomp.MinVertexCover(g, 0)
				if err != nil {
					return err
				}
				beta := len(cover)
				starOnly := decomp.StarOnly(g)
				fig7 := decomp.Approximate(g)
				ok := alpha == tri && beta == 2*tri
				t.row(tri, alpha, beta, beta == 2*alpha, starOnly.D(), fig7.D(), checkMark(ok))
			}
			return t.flush()
		},
	}
}
