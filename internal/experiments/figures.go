package experiments

import (
	"fmt"
	"io"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
	"syncstamp/internal/vis"
)

// e1 reproduces Figure 1: the 4-process example computation and every order
// relation the paper states about it.
func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Figure 1 — order relations in the 4-process example",
		Run: func(w io.Writer) error {
			tr := trace.Figure1()
			fmt.Fprint(w, vis.Render(tr, vis.Options{}))
			p := order.MessagePoset(tr)
			t := newTable(w)
			t.row("claim", "paper", "measured", "")
			claims := []struct {
				name  string
				paper string
				got   bool
			}{
				{"m1 ‖ m2", "concurrent", p.Concurrent(0, 1)},
				{"m1 ▷ m3", "direct", order.Directly(tr, 0, 2)},
				{"m2 ↦ m6", "precedes", p.Less(1, 5)},
				{"m3 ↦ m5", "precedes", p.Less(2, 4)},
				{"chain m1→m5 size 4", "m1 ▷ m3 ▷ m4 ▷ m5",
					order.Directly(tr, 0, 2) && order.Directly(tr, 2, 3) && order.Directly(tr, 3, 4)},
			}
			for _, c := range claims {
				t.row(c.name, c.paper, c.got, checkMark(c.got))
			}
			return t.flush()
		},
	}
}

// e2 reproduces Figure 3: the two decompositions of K5 and the Figure 7
// algorithm's result.
func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Figure 3 — edge decompositions of the fully-connected 5-process system",
		Run: func(w io.Writer) error {
			g := graph.Complete(5)
			a := decomp.Figure3a()
			b := decomp.Figure3b()
			fig7 := decomp.Approximate(g)
			t := newTable(w)
			t.row("decomposition", "size", "stars", "triangles", "paper", "")
			t.row("Figure 3(a): 2 stars + 1 triangle", a.D(), a.Stars(), a.Triangles(), 3, checkMark(a.D() == 3 && a.Validate(g) == nil))
			t.row("Figure 3(b): 4 stars", b.D(), b.Stars(), b.Triangles(), 4, checkMark(b.D() == 4 && b.Validate(g) == nil))
			t.row("Figure 7 algorithm", fig7.D(), fig7.Stars(), fig7.Triangles(), 3, checkMark(fig7.D() == 3))
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintf(w, "figure-7 output: %s\n", fig7)
			return nil
		},
	}
}

// e3 reproduces Figure 4: the 20-process tree decomposed into 3 stars.
func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Figure 4 — tree-based system with 20 processes, 3 edge groups",
		Run: func(w io.Writer) error {
			g := graph.Figure4Tree()
			fig7 := decomp.Approximate(g)
			exact, err := decomp.Exact(g, 0)
			if err != nil {
				return err
			}
			t := newTable(w)
			t.row("quantity", "paper", "measured", "")
			t.row("processes", 20, g.N(), checkMark(g.N() == 20))
			t.row("edge groups (Figure 7)", 3, fig7.D(), checkMark(fig7.D() == 3))
			t.row("optimal edge groups", 3, exact.D(), checkMark(exact.D() == 3))
			t.row("all groups are stars", "yes", fig7.Triangles() == 0, checkMark(fig7.Triangles() == 0))
			t.row("FM vector size", 20, 20, "OK")
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintf(w, "decomposition: %s\n", fig7)
			return nil
		},
	}
}

// e4 reproduces Figure 6: the worked 5-process execution and its exact
// timestamps under the Figure 3(a) decomposition.
func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Figure 6 — sample execution with exact timestamps",
		Run: func(w io.Writer) error {
			tr := trace.Figure6()
			dec := decomp.Figure3a()
			stamps, err := core.StampTrace(tr, dec)
			if err != nil {
				return err
			}
			fmt.Fprint(w, vis.Render(tr, vis.Options{}))
			want := []vector.V{
				{1, 0, 0}, {0, 0, 1}, {1, 1, 1}, {2, 0, 1}, {1, 1, 2}, {1, 2, 2},
			}
			t := newTable(w)
			t.row("message", "channel", "group", "expected", "measured", "")
			msgs := tr.Messages()
			for i, m := range msgs {
				gi, _ := dec.GroupOf(m.From, m.To)
				ok := vector.Eq(stamps[i], want[i])
				t.row(fmt.Sprintf("m%d", i+1),
					fmt.Sprintf("P%d->P%d", m.From+1, m.To+1),
					fmt.Sprintf("E%d", gi+1), want[i], stamps[i], checkMark(ok))
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintf(w, "paper narrates m3 = (1,1,1): measured %s\n", stamps[2])
			return nil
		},
	}
}

// e5 reproduces Figure 8: the Figure 7 algorithm's step sequence on the
// Figure 2(b) topology and the optimal decomposition size.
func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Figures 2(b)+8 — algorithm walk-through on the 11-process topology",
		Run: func(w io.Writer) error {
			g := graph.Figure2b()
			d, tr := decomp.ApproximateTraced(g, decomp.ChooseMaxAdjacent)
			exact, err := decomp.Exact(g, 0)
			if err != nil {
				return err
			}
			names := "abcdefghijk"
			fmt.Fprintf(w, "topology: %d processes (a..k), %d channels\n", g.N(), g.M())
			t := newTable(w)
			t.row("output", "step", "group")
			for i, grp := range d.Groups() {
				t.row(fmt.Sprintf("#%d", i+1), tr.Steps[i].String(), renderGroup(grp, names))
			}
			if err := t.flush(); err != nil {
				return err
			}
			wantSteps := []decomp.StepKind{
				decomp.StepPendant, decomp.StepTriangle,
				decomp.StepSplit, decomp.StepSplit, decomp.StepPendant,
			}
			stepsOK := len(tr.Steps) == len(wantSteps)
			if stepsOK {
				for i := range wantSteps {
					stepsOK = stepsOK && tr.Steps[i] == wantSteps[i]
				}
			}
			// The final group must contain the edge (j, k) per the text.
			lastHasJK := false
			for _, e := range d.Groups()[d.D()-1].Edges {
				if e == graph.NewEdge(9, 10) {
					lastHasJK = true
				}
			}
			t2 := newTable(w)
			t2.row("claim", "paper", "measured", "")
			t2.row("step sequence", "1,2,3,3,then loop to 1", fmt.Sprint(tr.Steps), checkMark(stepsOK))
			t2.row("loop-back outputs edge (j,k)", "yes", lastHasJK, checkMark(lastHasJK))
			t2.row("algorithm size", 5, d.D(), checkMark(d.D() == 5))
			t2.row("optimal size (Figure 8(f))", "5 = 4 stars + 1 triangle",
				fmt.Sprintf("%d = %d stars + %d triangle", exact.D(), exact.Stars(), exact.Triangles()),
				checkMark(exact.D() == 5 && exact.Stars() == 4 && exact.Triangles() == 1))
			return t2.flush()
		},
	}
}

// renderGroup pretty-prints a group with letter vertex names.
func renderGroup(g decomp.Group, names string) string {
	nameOf := func(v int) byte { return names[v] }
	s := ""
	switch g.Kind {
	case decomp.KindStar:
		s = fmt.Sprintf("star at %c:", nameOf(g.Root))
	case decomp.KindTriangle:
		s = fmt.Sprintf("triangle (%c,%c,%c):", nameOf(g.Tri[0]), nameOf(g.Tri[1]), nameOf(g.Tri[2]))
	}
	for _, e := range g.Edges {
		s += fmt.Sprintf(" (%c,%c)", nameOf(e.U), nameOf(e.V))
	}
	return s
}
