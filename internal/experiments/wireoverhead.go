package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/trace"
	"syncstamp/internal/wire"
)

// e20 measures the wire protocol's piggyback cost: internal/wire sends each
// SYN/ACK vector either dense or delta-compressed against the per-pair
// baseline (Singhal–Kshemkalyani style), whichever is smaller, and
// wire.CountTrace replays a computation through the real codec to charge
// the exact bytes a distributed internal/node run pays. Because the
// piggybacked vectors of a synchronous computation are
// interleaving-independent, these counts are exact for every real run of
// the same computation, not an estimate.
func e20() Experiment {
	return Experiment{
		ID:    "E20",
		Title: "Wire protocol overhead — dense vs delta-compressed piggyback bytes",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(20))
			t := newTable(w)
			t.row("topology", "N", "d", "messages", "dense B/msg", "wire B/msg", "saved", "delta<dense?")
			cases := []struct {
				name string
				g    *graph.Graph
				// hotspot concentrates traffic on few pairs — the delta
				// codec's favorable regime, mirroring E13's burst note.
				hotspot float64
			}{
				{"clientserver:2x20", graph.ClientServer(2, 20, false), 0.6},
				{"clientserver:2x100", graph.ClientServer(2, 100, false), 0.6},
				{"figure4 tree (N=20)", graph.Figure4Tree(), 0.3},
				{"star:50", graph.Star(50, 0), 0.3},
				{"complete:16", graph.Complete(16), 0},
			}
			const msgs = 400
			allPassed := true
			for _, c := range cases {
				dec := decomp.Best(c.g)
				tr := trace.Generate(c.g, trace.GenOptions{Messages: msgs, Hotspot: c.hotspot}, rng)
				o, err := wire.CountTrace(tr, dec)
				if err != nil {
					return err
				}
				verdict := "ok"
				if o.WireBytes >= o.DenseBytes {
					verdict = "FAIL"
					allPassed = false
				}
				t.row(c.name, c.g.N(), dec.D(), tr.NumMessages(),
					fmt.Sprintf("%.1f", o.MeanDense()),
					fmt.Sprintf("%.1f", o.MeanWire()),
					fmt.Sprintf("%.0f%%", 100*o.Savings()),
					verdict)
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintln(w, "counts are per SYN/ACK frame pair (two vector frames per message), exact for")
			fmt.Fprintln(w, "any node placement that keeps every rendezvous remote.")
			if !allPassed {
				fmt.Fprintln(w, "FAIL: delta encoding did not beat dense on every topology above.")
			}
			return nil
		},
	}
}
