package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
		"E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21",
		"D1", "D2", "D3",
	}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("E4")
	if !ok || e.ID != "E4" {
		t.Fatal("ByID(E4) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID(E99) should fail")
	}
}

// TestAllExperimentsPass runs every experiment and asserts no FAIL row is
// printed — this is the full reproduction check in one test.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var b strings.Builder
			if err := e.Run(&b); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := b.String()
			if strings.Contains(out, "FAIL") {
				t.Fatalf("%s reported FAIL rows:\n%s", e.ID, out)
			}
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunOneAndRunAllHeaders(t *testing.T) {
	e, _ := ByID("E1")
	var b strings.Builder
	if err := RunOne(&b, e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "=== E1:") {
		t.Fatalf("missing header:\n%s", b.String())
	}
}
