package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/offline"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
)

// e6 validates Lemma 1: star/triangle topologies always yield totally
// ordered message sets; every other topology admits a concurrent pair.
func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Lemma 1 — total order iff the topology is a star or a triangle",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(6))
			t := newTable(w)
			t.row("topology", "runs", "property holds", "property checked", "")
			totalOrderAlways := func(g *graph.Graph, runs, msgs int) bool {
				for r := 0; r < runs; r++ {
					tr := trace.Generate(g, trace.GenOptions{Messages: msgs}, rng)
					p := order.MessagePoset(tr)
					for i := 0; i < p.N(); i++ {
						for j := i + 1; j < p.N(); j++ {
							if p.Concurrent(i, j) {
								return false
							}
						}
					}
				}
				return true
			}
			cases := []struct {
				name      string
				g         *graph.Graph
				starOrTri bool
			}{
				{"star:8", graph.Star(8, 0), true},
				{"star:40", graph.Star(40, 3), true},
				{"triangle", graph.Triangle(), true},
				{"path:4", graph.Path(4), false},
				{"cycle:5", graph.Cycle(5), false},
				{"complete:5", graph.Complete(5), false},
				{"clientserver:2x5", graph.ClientServer(2, 5, false), false},
			}
			for _, c := range cases {
				var ok bool
				var expected string
				if c.starOrTri {
					// Forward direction: every computation is totally ordered.
					ok = totalOrderAlways(c.g, 30, 60)
					expected = "always total order"
				} else {
					// Converse: the paper's constructive witness — two
					// vertex-disjoint channels carrying concurrent messages.
					ok = concurrentWitness(c.g)
					expected = "concurrency witness exists"
				}
				t.row(c.name, 30, ok, expected, checkMark(ok))
			}
			return t.flush()
		},
	}
}

// concurrentWitness builds the Lemma 1 converse witness: two vertex-disjoint
// channels carrying concurrent messages.
func concurrentWitness(g *graph.Graph) bool {
	edges := g.Edges()
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			a, b := edges[i], edges[j]
			if a.Has(b.U) || a.Has(b.V) {
				continue
			}
			tr := &trace.Trace{N: g.N()}
			tr.MustAppend(trace.Message(a.U, a.V))
			tr.MustAppend(trace.Message(b.U, b.V))
			return order.MessagePoset(tr).Concurrent(0, 1)
		}
	}
	return false
}

// e7 validates Theorem 4: the online algorithm's stamps encode (M, ↦)
// exactly across random computations and topology families.
func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Theorem 4 — online stamps characterize ↦ exactly",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(7))
			t := newTable(w)
			t.row("topology", "runs", "messages/run", "pairs checked", "mismatches", "")
			families := []struct {
				name string
				g    *graph.Graph
			}{
				{"star:10", graph.Star(10, 0)},
				{"complete:8", graph.Complete(8)},
				{"tree(3,2)", graph.BalancedTree(3, 2)},
				{"clientserver:3x9", graph.ClientServer(3, 9, false)},
				{"cycle:9", graph.Cycle(9)},
				{"figure2b", graph.Figure2b()},
			}
			for _, f := range families {
				dec := decomp.Best(f.g)
				pairs, mismatches := 0, 0
				const runs, msgs = 20, 80
				for r := 0; r < runs; r++ {
					tr := trace.Generate(f.g, trace.GenOptions{Messages: msgs, Hotspot: 0.3}, rng)
					stamps, err := core.StampTrace(tr, dec)
					if err != nil {
						return err
					}
					p := order.MessagePoset(tr)
					for i := range stamps {
						for j := range stamps {
							if i == j {
								continue
							}
							pairs++
							if core.Precedes(stamps[i], stamps[j]) != p.Less(i, j) {
								mismatches++
							}
						}
					}
				}
				t.row(f.name, runs, msgs, pairs, mismatches, checkMark(mismatches == 0))
			}
			return t.flush()
		},
	}
}

// e8 reproduces the Theorem 5 size claim: vector size ≤ min(β(G), N−2),
// with FM's N as the baseline.
func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Theorem 5 — vector size min(β(G), N−2) vs Fidge–Mattern's N",
		Run: func(w io.Writer) error {
			t := newTable(w)
			t.row("topology", "N", "FM size", "d (Figure 7)", "d (best poly)", "d (opt cover)", "min(β,N−2)", "d ≤ bound?", "")
			cases := []struct {
				name string
				g    *graph.Graph
			}{
				{"star:16", graph.Star(16, 0)},
				{"triangle", graph.Triangle()},
				{"complete:8", graph.Complete(8)},
				{"complete:12", graph.Complete(12)},
				{"tree(2,3)", graph.BalancedTree(2, 3)},
				{"figure4 tree", graph.Figure4Tree()},
				{"clientserver:2x10", graph.ClientServer(2, 10, false)},
				{"clientserver:4x16", graph.ClientServer(4, 16, false)},
				{"cycle:10", graph.Cycle(10)},
				{"grid:3x4", graph.Grid(3, 4)},
				{"triangles:4", graph.DisjointTriangles(4)},
			}
			for _, c := range cases {
				fig7 := decomp.Approximate(c.g)
				best := decomp.Best(c.g)
				bound, err := decomp.CoverBound(c.g)
				if err != nil {
					return err
				}
				// Theorem 5's construction: stars rooted at an optimal
				// vertex cover (exponential to find, but the proof object).
				cover, err := decomp.MinVertexCover(c.g, 0)
				if err != nil {
					return err
				}
				fromCover, err := decomp.FromVertexCover(c.g, cover)
				if err != nil {
					return err
				}
				achieved := best.D()
				if fromCover.D() < achieved {
					achieved = fromCover.D()
				}
				ok := achieved <= bound || bound == 0
				t.row(c.name, c.g.N(), c.g.N(), fig7.D(), best.D(), fromCover.D(), bound, ok, checkMark(ok))
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintln(w, "note: Figure 7 is a 2-approximation; the Theorem 5 bound min(β,N−2) is")
			fmt.Fprintln(w, "witnessed by stars rooted at an optimal vertex cover (\"opt cover\").")
			return nil
		},
	}
}

// e9 measures the Theorem 6 approximation ratio against exact optima.
func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Theorem 6 — Figure 7 approximation ratio ≤ 2 (vs branch-and-bound optimum)",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(9))
			t := newTable(w)
			t.row("family", "graphs", "mean ratio", "max ratio", "ratio ≤ 2?", "")
			families := []struct {
				name string
				gen  func() *graph.Graph
			}{
				{"gnp(7,0.3)", func() *graph.Graph { return graph.RandomGnp(7, 0.3, rng) }},
				{"gnp(7,0.6)", func() *graph.Graph { return graph.RandomGnp(7, 0.6, rng) }},
				{"gnp(9,0.25)", func() *graph.Graph { return graph.RandomGnp(9, 0.25, rng) }},
				{"connected(8,0.3)", func() *graph.Graph { return graph.RandomConnected(8, 0.3, rng) }},
				{"trees(10)", func() *graph.Graph { return graph.RandomTree(10, rng) }},
			}
			for _, f := range families {
				const count = 25
				sum, maxR := 0.0, 0.0
				graphs := 0
				for i := 0; i < count; i++ {
					g := f.gen()
					if g.M() == 0 {
						continue
					}
					approx := decomp.Approximate(g)
					exact, err := decomp.Exact(g, 0)
					if err != nil {
						return err
					}
					r := float64(approx.D()) / float64(exact.D())
					sum += r
					if r > maxR {
						maxR = r
					}
					graphs++
				}
				mean := sum / float64(graphs)
				t.row(f.name, graphs, fmt.Sprintf("%.3f", mean), fmt.Sprintf("%.3f", maxR),
					maxR <= 2.0, checkMark(maxR <= 2.0))
			}
			return t.flush()
		},
	}
}

// e10 validates Theorem 7: optimality on acyclic graphs.
func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Theorem 7 — Figure 7 is optimal on acyclic topologies",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(10))
			t := newTable(w)
			t.row("family", "graphs", "optimal matches", "")
			families := []struct {
				name string
				gen  func() *graph.Graph
			}{
				{"random trees n=8", func() *graph.Graph { return graph.RandomTree(8, rng) }},
				{"random trees n=12", func() *graph.Graph { return graph.RandomTree(12, rng) }},
				{"balanced(2,3)", func() *graph.Graph { return graph.BalancedTree(2, 3) }},
				{"balanced(4,2)", func() *graph.Graph { return graph.BalancedTree(4, 2) }},
				{"paths n=9", func() *graph.Graph { return graph.Path(9) }},
				{"figure4", graph.Figure4Tree},
			}
			for _, f := range families {
				const count = 20
				matches := 0
				for i := 0; i < count; i++ {
					g := f.gen()
					approx := decomp.Approximate(g)
					exact, err := decomp.Exact(g, 0)
					if err != nil {
						return err
					}
					if approx.D() == exact.D() {
						matches++
					}
				}
				t.row(f.name, count, matches, checkMark(matches == count))
			}
			return t.flush()
		},
	}
}

// e11 reproduces Theorem 8 + Figure 9: offline widths and vector sizes.
func e11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Theorem 8 + Figure 9 — offline vectors of size width ≤ ⌊N/2⌋",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(11))
			t := newTable(w)
			t.row("topology", "N", "msgs", "width", "⌊N/2⌋", "online d", "exact?", "")
			cases := []struct {
				name string
				g    *graph.Graph
				msgs int
			}{
				{"star:9", graph.Star(9, 0), 60},
				{"complete:6", graph.Complete(6), 60},
				{"complete:10", graph.Complete(10), 80},
				{"clientserver:2x8", graph.ClientServer(2, 8, false), 60},
				{"figure4 tree", graph.Figure4Tree(), 80},
				{"cycle:8", graph.Cycle(8), 60},
				{"figure6", nil, 0}, // fixed computation from the paper
			}
			for _, c := range cases {
				var tr *trace.Trace
				if c.g == nil {
					tr = trace.Figure6()
					c.g = graph.Complete(5)
					c.name = "figure6 (fixed)"
				} else {
					tr = trace.Generate(c.g, trace.GenOptions{Messages: c.msgs}, rng)
				}
				res, err := offline.Stamp(tr)
				if err != nil {
					return err
				}
				exact := true
				for i := range res.Stamps {
					for j := range res.Stamps {
						if i != j && offline.Precedes(res.Stamps[i], res.Stamps[j]) != res.Poset.Less(i, j) {
							exact = false
						}
					}
				}
				d := decomp.Best(c.g).D()
				ok := res.Width <= tr.N/2 && exact
				t.row(c.name, tr.N, tr.NumMessages(), res.Width, tr.N/2, d, exact, checkMark(ok))
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintln(w, "paper: Figure 6's computation needs only 2-dimensional offline vectors.")
			return nil
		},
	}
}

// e12 validates Theorem 9: internal-event stamps capture happened-before.
func e12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Theorem 9 — internal-event stamps (prev, succ, c) capture happened-before",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(12))
			t := newTable(w)
			t.row("topology", "runs", "event pairs", "mismatches", "")
			families := []struct {
				name string
				g    *graph.Graph
			}{
				{"path:4", graph.Path(4)},
				{"complete:5", graph.Complete(5)},
				{"clientserver:2x4", graph.ClientServer(2, 4, false)},
				{"star:7", graph.Star(7, 0)},
			}
			for _, f := range families {
				dec := decomp.Best(f.g)
				pairs, mismatches := 0, 0
				const runs = 15
				for r := 0; r < runs; r++ {
					tr := trace.Generate(f.g, trace.GenOptions{Messages: 30, InternalProb: 0.4}, rng)
					st, err := core.StampAll(tr, dec)
					if err != nil {
						return err
					}
					oracle := order.NewEventOracle(tr)
					evByOp := map[int]int{}
					for k := 0; k < oracle.NumEvents(); k++ {
						if ev := oracle.Event(k); ev.Internal {
							evByOp[ev.Op] = k
						}
					}
					for i := range st.Internal {
						for j := range st.Internal {
							if i == j {
								continue
							}
							pairs++
							a, b := st.Internal[i], st.Internal[j]
							if a.HappenedBefore(b) != oracle.HappenedBefore(evByOp[a.Op], evByOp[b.Op]) {
								mismatches++
							}
						}
					}
				}
				t.row(f.name, runs, pairs, mismatches, checkMark(mismatches == 0))
			}
			return t.flush()
		},
	}
}
