package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
)

// d1 is the DESIGN.md D1 ablation: disable triangles (star-only
// decompositions from vertex covers) and compare sizes with the full
// star+triangle decomposition. Disjoint-triangle topologies show the
// worst-case factor 2; most topologies show little or no difference.
func d1() Experiment {
	return Experiment{
		ID:    "D1",
		Title: "Ablation — star-only vs star+triangle decompositions",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(41))
			t := newTable(w)
			t.row("topology", "star-only d", "star+triangle d", "ratio")
			cases := []struct {
				name string
				g    *graph.Graph
			}{
				{"triangle", graph.Triangle()},
				{"triangles:3", graph.DisjointTriangles(3)},
				{"triangles:5", graph.DisjointTriangles(5)},
				{"complete:6", graph.Complete(6)},
				{"complete:9", graph.Complete(9)},
				{"figure2b", graph.Figure2b()},
				{"figure4 tree", graph.Figure4Tree()},
				{"gnp(10,0.4)", graph.RandomConnected(10, 0.4, rng)},
			}
			for _, c := range cases {
				starOnly := decomp.StarOnly(c.g).D()
				full := decomp.Best(c.g).D()
				t.row(c.name, starOnly, full, fmt.Sprintf("%.2f", float64(starOnly)/float64(full)))
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintln(w, "disjoint triangles realize the worst case: star-only needs 2x the groups.")
			return nil
		},
	}
}

// d2 is the DESIGN.md D2 ablation: the Figure 7 step-3 edge choice. The
// paper picks the edge with the most adjacent edges but proves the ratio
// bound for any choice; this measures how much the heuristic buys.
func d2() Experiment {
	return Experiment{
		ID:    "D2",
		Title: "Ablation — step-3 edge choice: max-adjacent vs first-edge",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(42))
			t := newTable(w)
			t.row("family", "graphs", "mean d (max-adjacent)", "mean d (first)", "max-adj wins", "first wins")
			families := []struct {
				name string
				gen  func() *graph.Graph
			}{
				{"gnp(10,0.3)", func() *graph.Graph { return graph.RandomConnected(10, 0.3, rng) }},
				{"gnp(12,0.5)", func() *graph.Graph { return graph.RandomConnected(12, 0.5, rng) }},
				{"gnp(14,0.2)", func() *graph.Graph { return graph.RandomConnected(14, 0.2, rng) }},
				{"complete:10", func() *graph.Graph { return graph.Complete(10) }},
			}
			for _, f := range families {
				const count = 30
				sumA, sumB, winsA, winsB := 0, 0, 0, 0
				for i := 0; i < count; i++ {
					g := f.gen()
					a, _ := decomp.ApproximateTraced(g, decomp.ChooseMaxAdjacent)
					b, _ := decomp.ApproximateTraced(g, decomp.ChooseFirst)
					sumA += a.D()
					sumB += b.D()
					if a.D() < b.D() {
						winsA++
					}
					if b.D() < a.D() {
						winsB++
					}
				}
				t.row(f.name, count,
					fmt.Sprintf("%.2f", float64(sumA)/count),
					fmt.Sprintf("%.2f", float64(sumB)/count),
					winsA, winsB)
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintln(w, "both choices satisfy the ratio bound (Theorem 6); max-adjacent tends to")
			fmt.Fprintln(w, "delete more edges per step, as the paper anticipates after Theorem 6.")
			return nil
		},
	}
}

// d3 is the multi-start ablation: does re-running Figure 7 under random
// vertex relabelings (exploring different tie-breaks) shrink the
// decomposition?
func d3() Experiment {
	return Experiment{
		ID:    "D3",
		Title: "Ablation — Figure 7 single run vs 12-way multi-start",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(43))
			t := newTable(w)
			t.row("family", "graphs", "mean d (single)", "mean d (multi)", "improved", "mean d (optimal)")
			families := []struct {
				name string
				gen  func() *graph.Graph
			}{
				{"gnp(8,0.35)", func() *graph.Graph { return graph.RandomGnp(8, 0.35, rng) }},
				{"gnp(10,0.3)", func() *graph.Graph { return graph.RandomGnp(10, 0.3, rng) }},
				{"connected(9,0.3)", func() *graph.Graph { return graph.RandomConnected(9, 0.3, rng) }},
			}
			for _, f := range families {
				const count = 20
				sumS, sumM, sumO, improved, graphs := 0, 0, 0, 0, 0
				for i := 0; i < count; i++ {
					g := f.gen()
					if g.M() == 0 {
						continue
					}
					graphs++
					single := decomp.Approximate(g)
					multi := decomp.ApproximateMultiStart(g, 12, rng)
					exact, err := decomp.Exact(g, 0)
					if err != nil {
						return err
					}
					sumS += single.D()
					sumM += multi.D()
					sumO += exact.D()
					if multi.D() < single.D() {
						improved++
					}
				}
				t.row(f.name, graphs,
					fmt.Sprintf("%.2f", float64(sumS)/float64(graphs)),
					fmt.Sprintf("%.2f", float64(sumM)/float64(graphs)),
					improved,
					fmt.Sprintf("%.2f", float64(sumO)/float64(graphs)))
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintln(w, "multi-start closes part of the gap to the optimum at 12x the cost; the")
			fmt.Fprintln(w, "single run is already within the Theorem 6 bound.")
			return nil
		},
	}
}
