package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"syncstamp/internal/chainclock"
	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/offline"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vclock"
	"syncstamp/internal/vector"
)

// e17 compares the timestamp sizes of every mechanism discussed in
// Section 6 on the same computations: the paper's online algorithm
// (topology-bound d), the offline algorithm (computation-bound width),
// centralized chain clocks (arrival-order-bound), Singhal–Kshemkalyani
// differential FM (full N semantics, differential wire cost), and FM.
func e17() Experiment {
	return Experiment{
		ID:    "E17",
		Title: "Section 6 — sizes of all mechanisms on identical computations",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(17))
			t := newTable(w)
			t.row("topology", "N", "msgs", "FM", "online d", "offline width", "chain clocks", "SK entries/msg", "all exact?", "")
			cases := []struct {
				name string
				g    *graph.Graph
				msgs int
			}{
				{"star:12", graph.Star(12, 0), 80},
				{"clientserver:2x10", graph.ClientServer(2, 10, false), 80},
				{"figure4 tree", graph.Figure4Tree(), 100},
				{"complete:8", graph.Complete(8), 80},
				{"cycle:8", graph.Cycle(8), 80},
			}
			for _, c := range cases {
				tr := trace.Generate(c.g, trace.GenOptions{Messages: c.msgs}, rng)
				dec := decomp.Best(c.g)
				online, err := core.StampTrace(tr, dec)
				if err != nil {
					return err
				}
				off, err := offline.Stamp(tr)
				if err != nil {
					return err
				}
				cc := chainclock.StampTrace(tr)
				if err := cc.Verify(); err != nil {
					return err
				}
				sk := vclock.Simulate(tr)

				p := order.MessagePoset(tr)
				exact := true
				for i := 0; i < p.N() && exact; i++ {
					for j := 0; j < p.N(); j++ {
						if i == j {
							continue
						}
						want := p.Less(i, j)
						if vector.Less(online[i], online[j]) != want ||
							vector.Less(off.Stamps[i], off.Stamps[j]) != want ||
							vector.Less(cc.Stamps[i], cc.Stamps[j]) != want ||
							vector.Less(sk.Stamps[i], sk.Stamps[j]) != want {
							exact = false
							break
						}
					}
				}
				t.row(c.name, c.g.N(), c.msgs, c.g.N(), dec.D(), off.Width, cc.Chains,
					fmt.Sprintf("%.2f", sk.MeanEntries()), exact, checkMark(exact))
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintln(w, "online d is topology-bound (constant per system); width and chain count are")
			fmt.Fprintln(w, "computation-bound; chain clocks are centralized and may exceed the width;")
			fmt.Fprintln(w, "SK keeps N-component semantics with differential wire cost.")
			return nil
		},
	}
}
