// Package experiments regenerates every figure and measurable claim of the
// paper as printed tables. Each experiment has an id (E1..E16 map to paper
// artifacts, D1/D2 to the design ablations of DESIGN.md); the paperbench
// command runs them and EXPERIMENTS.md records their output next to what the
// paper states.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the experiment identifier, e.g. "E4".
	ID string
	// Title summarizes the paper artifact being reproduced.
	Title string
	// Run prints the experiment's table to w. It returns an error only on
	// harness failures; reproduction mismatches are printed as FAIL rows.
	Run func(w io.Writer) error
}

// All returns every experiment in run order: E1–E17 map to paper
// artifacts, D1/D2 to the design ablations of DESIGN.md.
func All() []Experiment {
	exps := []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(),
		e9(), e10(), e11(), e12(), e13(), e14(), e15(), e16(), e17(), e18(), e19(), e20(), e21(),
		d1(), d2(), d3(),
	}
	return exps
}

// ByID returns the experiment with the given id (case-sensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment ids in run order.
func IDs() []string {
	exps := All()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// RunAll runs every experiment in order, separated by headers.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		if err := RunOne(w, e); err != nil {
			return err
		}
	}
	return nil
}

// RunOne prints one experiment with its header.
func RunOne(w io.Writer, e Experiment) error {
	if _, err := fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title); err != nil {
		return err
	}
	if err := e.Run(w); err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// table is a small helper around tabwriter for aligned experiment output.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() error { return t.tw.Flush() }

// check renders a claim/measured pair as an OK/FAIL row.
func checkMark(ok bool) string {
	if ok {
		return "OK"
	}
	return "FAIL"
}
