package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"syncstamp/internal/cluster"
	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/trace"
)

// e19 contrasts hierarchical cluster timestamps (Ward–Taylor, Section 6
// citation [23]) with the paper's online algorithm: the cluster scheme's
// savings collapse as traffic crosses clusters, while the edge-decomposition
// vectors depend only on the topology.
func e19() Experiment {
	return Experiment{
		ID:    "E19",
		Title: "Hierarchical cluster clocks vs topology-bound vectors (Sec. 6)",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(19))
			// Two fully-connected clusters of 6 joined by one bridge edge;
			// traffic crosses the bridge with probability pCross.
			const half, n = 6, 12
			g := graph.New(n)
			for c := 0; c < 2; c++ {
				base := c * half
				for a := 0; a < half; a++ {
					for b := a + 1; b < half; b++ {
						g.AddEdge(base+a, base+b)
					}
				}
			}
			g.AddEdge(half-1, half) // bridge
			part, err := cluster.Contiguous(n, half)
			if err != nil {
				return err
			}
			dec := decomp.Best(g)

			intra := make([]graph.Edge, 0, g.M())
			for _, e := range g.Edges() {
				if part.ClusterOf[e.U] == part.ClusterOf[e.V] {
					intra = append(intra, e)
				}
			}
			bridge := graph.NewEdge(half-1, half)

			t := newTable(w)
			t.row("p(cross)", "pure msgs", "cluster B/msg", "FM B/msg", "edge-decomp B/msg", "d")
			const msgs = 400
			for _, pCross := range []float64{0, 0.01, 0.05, 0.2, 0.5} {
				tr := &trace.Trace{N: n}
				for k := 0; k < msgs; k++ {
					var e graph.Edge
					if rng.Float64() < pCross {
						e = bridge
					} else {
						e = intra[rng.Intn(len(intra))]
					}
					from, to := e.U, e.V
					if rng.Intn(2) == 0 {
						from, to = to, from
					}
					tr.MustAppend(trace.Message(from, to))
				}
				res, err := cluster.Stamp(tr, part)
				if err != nil {
					return err
				}
				online, err := core.StampTrace(tr, dec)
				if err != nil {
					return err
				}
				fmBytes, onlineBytes := 0.0, 0.0
				for m := range res.Full {
					fmBytes += float64(res.Full[m].EncodedSize())
					onlineBytes += float64(online[m].EncodedSize())
				}
				fmBytes /= msgs
				onlineBytes /= msgs
				t.row(fmt.Sprintf("%.2f", pCross),
					fmt.Sprintf("%.0f%%", 100*res.PureFraction()),
					fmt.Sprintf("%.1f", res.MeanPiggybackBytes()),
					fmt.Sprintf("%.1f", fmBytes),
					fmt.Sprintf("%.1f", onlineBytes),
					dec.D())
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintln(w, "cluster clocks degrade to full FM as cross-traffic grows; the online")
			fmt.Fprintln(w, "algorithm's size depends only on the topology, not the traffic.")
			return nil
		},
	}
}
