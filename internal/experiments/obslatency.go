package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/node"
	"syncstamp/internal/obs"
	"syncstamp/internal/trace"
	"syncstamp/internal/wire"
)

// e21 exercises the observability layer end to end: for each topology
// family it replays a generated computation over a two-node in-memory Loop
// cluster with tracing enabled (fake clock — no wall time anywhere) and
// summarizes what the obs exports measure. Causal latency — the stamp-sum
// growth a sender observes across one rendezvous — is computed purely from
// vector stamps, so the histograms are identical for every interleaving and
// this experiment is deterministic despite running the full concurrent wire
// protocol. The frame/byte breakdown comes from the same wire.Stats counters
// a tsnode -obs-addr run serves on /metrics.
func e21() Experiment {
	return Experiment{
		ID:    "E21",
		Title: "Observability: causal rendezvous latency and wire frames by topology family",
		Run: func(w io.Writer) error {
			rng := rand.New(rand.NewSource(21))
			cases := []struct {
				name string
				g    *graph.Graph
			}{
				{"path:8", graph.Path(8)},
				{"star:8", graph.Star(8, 0)},
				{"clientserver:2x6", graph.ClientServer(2, 6, false)},
				{"complete:6", graph.Complete(6)},
			}
			const msgs = 120

			type result struct {
				dec    *decomp.Decomposition
				snap   obs.HistogramSnapshot
				frames wire.Stats
			}
			results := make([]result, len(cases))
			for i, c := range cases {
				tr := trace.Generate(c.g, trace.GenOptions{Messages: msgs, InternalProb: 0.1, Hotspot: 0.3}, rng)
				dec := decomp.Best(c.g)
				events, frames, err := runObsCluster(tr, dec)
				if err != nil {
					return fmt.Errorf("%s: %w", c.name, err)
				}
				h := obs.NewHistogram(obs.TickEdges)
				for _, l := range obs.CausalLatencies(events) {
					h.Observe(l)
				}
				results[i] = result{dec: dec, snap: h.Snapshot(), frames: frames}
			}

			t := newTable(w)
			t.row("topology", "N", "d", "sends", "mean", "p50<=", "p90<=", "ticks histogram")
			for i, c := range cases {
				s := results[i].snap
				t.row(c.name, c.g.N(), results[i].dec.D(), s.Count,
					fmt.Sprintf("%.1f", float64(s.Sum)/float64(s.Count)),
					s.Quantile(0.5), s.Quantile(0.9), sketchHistogram(s))
			}
			if err := t.flush(); err != nil {
				return err
			}

			fmt.Fprintln(w)
			t = newTable(w)
			t.row("topology", "hello B", "syn B", "ack B", "bye B", "total frames", "total B")
			for i, c := range cases {
				f := results[i].frames
				frames, bytes := f.Total()
				t.row(c.name,
					f.Bytes[wire.KindHello], f.Bytes[wire.KindSyn],
					f.Bytes[wire.KindAck], f.Bytes[wire.KindBye],
					frames, bytes)
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintln(w, "processes alternate between two Loop nodes (placement i%2), so roughly half")
			fmt.Fprintln(w, "the rendezvous cross the wire; causal latency counts the rendezvous a sender")
			fmt.Fprintln(w, "newly learns of through one exchange, so the tail buckets are exchanges that")
			fmt.Fprintln(w, "flush a backlog of transitively-learned rendezvous — heaviest where news")
			fmt.Fprintln(w, "travels hop by hop (path) or through a hub (star), lighter on complete:6's")
			fmt.Fprintln(w, "direct links over fewer processes.")
			return nil
		},
	}
}

// runObsCluster replays tr over a two-node Loop cluster with per-node
// tracing under a fake clock and returns the merged trace events plus the
// cluster's combined sent-frame accounting.
func runObsCluster(tr *trace.Trace, dec *decomp.Decomposition) ([]obs.Event, wire.Stats, error) {
	placement := make([]int, tr.N)
	for i := range placement {
		placement[i] = i % 2
	}
	programs := replayPrograms(tr)
	l := node.NewLoop(2)
	oses := [2]*obs.Obs{obs.New(), obs.New()}
	for _, o := range oses {
		o.Clock = &obs.Manual{}
	}
	var (
		wg     sync.WaitGroup
		frames [2]wire.Stats
		errs   [2]error
	)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := node.New(node.Config{Node: i, Placement: placement, Dec: dec, Obs: oses[i]}, l.Transport(i))
			if err != nil {
				errs[i] = err
				return
			}
			defer n.Close()
			info, err := n.Run(programs)
			if err != nil {
				errs[i] = err
				return
			}
			frames[i] = info.Frames
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, wire.Stats{}, err
		}
	}
	var events []obs.Event
	var total wire.Stats
	for i, o := range oses {
		events = append(events, o.Tracer.Events()...)
		total.Merge(frames[i])
	}
	obs.SortEvents(events)
	return events, total, nil
}

// replayPrograms turns a trace into per-process replay programs. Receives
// use RecvFrom, which makes replaying the per-process projections of a
// synchronous computation deadlock-free.
func replayPrograms(tr *trace.Trace) map[int]func(*node.Process) error {
	type op struct {
		send, internal bool
		peer           int
	}
	seqs := make([][]op, tr.N)
	for _, o := range tr.Ops {
		switch o.Kind {
		case trace.OpMessage:
			seqs[o.From] = append(seqs[o.From], op{send: true, peer: o.To})
			seqs[o.To] = append(seqs[o.To], op{peer: o.From})
		case trace.OpInternal:
			seqs[o.Proc] = append(seqs[o.Proc], op{internal: true})
		}
	}
	programs := make(map[int]func(*node.Process) error, tr.N)
	for p := 0; p < tr.N; p++ {
		ops := seqs[p]
		programs[p] = func(proc *node.Process) error {
			for _, o := range ops {
				switch {
				case o.internal:
					proc.Internal("replay")
				case o.send:
					if _, err := proc.Send(o.peer); err != nil {
						return err
					}
				default:
					if _, err := proc.RecvFrom(o.peer); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	return programs
}

// sketchHistogram renders the non-empty buckets of a tick histogram as
// "<=edge:count" pairs.
func sketchHistogram(s obs.HistogramSnapshot) string {
	var parts []string
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if i < len(s.Edges) {
			parts = append(parts, fmt.Sprintf("<=%d:%d", s.Edges[i], c))
		} else {
			parts = append(parts, fmt.Sprintf(">%d:%d", s.Edges[len(s.Edges)-1], c))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}
