package experiments

import (
	"fmt"
	"io"
	"time"

	"syncstamp/internal/csp"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// e18 exercises the Section 3.3 scalability remark dynamically: clients
// join a running client-server system one at a time; the vector size stays
// at #servers while FM would need to grow every vector, and all timestamps
// issued across the joins stay mutually comparable and exact.
func e18() Experiment {
	return Experiment{
		ID:    "E18",
		Title: "Dynamic growth — clients join at runtime, d stays constant (Sec. 3.3)",
		Run: func(w io.Writer) error {
			const servers = 2
			dec, err := decomp.FromVertexCover(graph.ClientServer(servers, 1, false), []int{0, 1})
			if err != nil {
				return err
			}
			s := core.NewStamper(dec)
			full := &trace.Trace{N: servers + 1}
			var stamps []vector.V
			stampMsg := func(from, to int) error {
				v, err := s.StampMessage(from, to)
				if err != nil {
					return err
				}
				stamps = append(stamps, v)
				full.Ops = append(full.Ops, trace.Message(from, to))
				return nil
			}

			t := newTable(w)
			t.row("clients", "N", "d (online)", "FM would need", "stamps so far", "exact across joins", "")
			check := func() bool {
				p := order.MessagePoset(full)
				for i := range stamps {
					for j := range stamps {
						if i != j && vector.Less(stamps[i], stamps[j]) != p.Less(i, j) {
							return false
						}
					}
				}
				return true
			}

			if err := stampMsg(2, 0); err != nil {
				return err
			}
			if err := stampMsg(2, 1); err != nil {
				return err
			}
			ok := check()
			t.row(1, dec.N(), s.D(), dec.N(), len(stamps), ok, checkMark(ok))

			for join := 0; join < 6; join++ {
				grown, v, err := dec.GrowStarVertex([]int{0, 1})
				if err != nil {
					return err
				}
				dec = grown
				if err := s.Extend(dec); err != nil {
					return err
				}
				full.N = dec.N()
				if err := stampMsg(v, 0); err != nil {
					return err
				}
				if err := stampMsg(0, 2); err != nil {
					return err
				}
				if err := stampMsg(v, 1); err != nil {
					return err
				}
				ok := check()
				t.row(join+2, dec.N(), s.D(), dec.N(), len(stamps), ok, checkMark(ok))
			}
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintln(w, "every timestamp keeps its original 2 components; FM vectors would have to be")
			fmt.Fprintln(w, "resized (or over-provisioned) at each join.")

			// The same property live: goroutine clients join a running CSP
			// system; clocks rebase lazily and stamps stay exact.
			liveMsgs, liveOK, err := liveJoinDemo()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "live CSP run: 3 clients joined mid-run, %d messages, stamps exact: %v %s\n",
				liveMsgs, liveOK, checkMark(liveOK))
			return nil
		},
	}
}

// liveJoinDemo runs the concurrent counterpart of E18: a 2-server system
// where three clients join while the servers are already receiving.
func liveJoinDemo() (int, bool, error) {
	servers := []int{0, 1}
	base, err := decomp.FromVertexCover(graph.ClientServer(2, 1, false), servers)
	if err != nil {
		return 0, false, err
	}
	sys := csp.NewSystemCap(base, 8)
	const joiners = 3
	serverProg := func(p *csp.Process) error {
		for i := 0; i < 1+joiners; i++ {
			if _, err := p.Recv(); err != nil {
				return err
			}
		}
		return nil
	}
	clientProg := func(p *csp.Process) error {
		if _, err := p.Send(0, p.ID()); err != nil {
			return err
		}
		_, err := p.Send(1, p.ID())
		return err
	}
	if err := sys.Start([]func(*csp.Process) error{serverProg, serverProg, clientProg}); err != nil {
		return 0, false, err
	}
	cur := base
	for j := 0; j < joiners; j++ {
		grown, _, err := cur.GrowStarVertex(servers)
		if err != nil {
			return 0, false, err
		}
		if _, err := sys.Join(grown, clientProg); err != nil {
			return 0, false, err
		}
		cur = grown
	}
	res, err := sys.Wait(30 * time.Second)
	if err != nil {
		return 0, false, err
	}
	p := order.MessagePoset(res.Trace)
	ok := true
	for i := range res.Stamps {
		if len(res.Stamps[i]) != 2 {
			ok = false
		}
		for j := range res.Stamps {
			if i != j && vector.Less(res.Stamps[i], res.Stamps[j]) != p.Less(i, j) {
				ok = false
			}
		}
	}
	return res.Trace.NumMessages(), ok, nil
}
