// Package order derives the paper's order relations from a recorded
// synchronous computation, serving as the ground-truth oracle the
// timestamping algorithms are tested against.
//
// Section 2 defines m1 ▷ m2 to hold when any external event of m1 precedes
// any external event of m2 on a common process; since send and receive of a
// synchronous message share one logical instant, m1 ▷ m2 holds exactly when
// m1 occurs before m2 in the global sequence and the two messages share a
// participant. The synchronously-precedes relation ↦ is the transitive
// closure of ▷.
//
// Section 5's event-level happened-before (which includes acknowledgement
// edges) reduces to the message poset: an event e on process P happened
// before f on a different process Q iff the first message on P at-or-after e
// and the last message on Q at-or-before f are equal or ordered by ↦.
package order

import (
	"fmt"

	"syncstamp/internal/poset"
	"syncstamp/internal/trace"
)

// MessagePoset returns the poset (M, ↦) of the trace's messages; element i
// of the poset is message index i (trace.Msg.Index).
//
// Construction: walk the global sequence keeping the last message seen per
// process; each new message adds a relation from each participant's previous
// message. Transitive closure then recovers all of ▷ (two messages sharing a
// process are linked through the chain of that process's messages) and
// therefore all of ↦.
func MessagePoset(tr *trace.Trace) *poset.Poset {
	p := poset.New(tr.NumMessages())
	last := make([]int, tr.N)
	for i := range last {
		last[i] = -1
	}
	idx := 0
	for _, op := range tr.Ops {
		if op.Kind != trace.OpMessage {
			continue
		}
		for _, proc := range []int{op.From, op.To} {
			if prev := last[proc]; prev != -1 && prev != idx {
				p.AddLess(prev, idx)
			}
		}
		last[op.From] = idx
		last[op.To] = idx
		idx++
	}
	if err := p.Close(); err != nil {
		// Relations always point forward in the sequence, so a cycle is
		// impossible for a well-formed trace.
		panic(fmt.Sprintf("order: message poset cycle: %v", err))
	}
	return p
}

// Directly reports m1 ▷ m2 for message indices in the trace: m1 occurs
// before m2 and they share a participant. It exists to cross-check the
// closure-based MessagePoset in tests.
func Directly(tr *trace.Trace, m1, m2 int) bool {
	msgs := tr.Messages()
	if m1 < 0 || m1 >= len(msgs) || m2 < 0 || m2 >= len(msgs) {
		panic(fmt.Sprintf("order: message index out of range: %d, %d", m1, m2))
	}
	if m1 >= m2 {
		return false
	}
	a, b := msgs[m1], msgs[m2]
	return a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To
}

// Event is one event of the computation, in the sense of Section 5.
type Event struct {
	// Proc is the process the event occurs on.
	Proc int
	// Op is the index into tr.Ops of the underlying operation.
	Op int
	// Msg is the message index for send/receive events, -1 for internal.
	Msg int
	// Internal reports whether this is an internal event.
	Internal bool
}

// Events lists every event of the trace in global order: for each message
// op, one event on the sender and one on the receiver (both at the same
// logical instant); for each internal op, one event on its process.
func Events(tr *trace.Trace) []Event {
	var out []Event
	msgIdx := 0
	for i, op := range tr.Ops {
		switch op.Kind {
		case trace.OpMessage:
			out = append(out, Event{Proc: op.From, Op: i, Msg: msgIdx})
			out = append(out, Event{Proc: op.To, Op: i, Msg: msgIdx})
			msgIdx++
		case trace.OpInternal:
			out = append(out, Event{Proc: op.Proc, Op: i, Msg: -1, Internal: true})
		}
	}
	return out
}

// EventOracle answers happened-before queries over the trace's events,
// including the acknowledgement edges of Section 5 (a process participating
// in a synchronous message is synchronized with its peer in both directions,
// because the sender blocks for the acknowledgement).
type EventOracle struct {
	tr      *trace.Trace
	events  []Event
	msgs    *poset.Poset
	msgList []trace.Msg
	// prevMsg[k] / nextMsg[k]: message index of the last message on
	// events[k].Proc at-or-before k / first at-or-after k; -1 if none.
	prevMsg []int
	nextMsg []int
	// pos[k]: per-process sequence number of event k on its process.
	pos []int
}

// NewEventOracle precomputes the oracle for tr.
func NewEventOracle(tr *trace.Trace) *EventOracle {
	events := Events(tr)
	o := &EventOracle{
		tr:      tr,
		events:  events,
		msgs:    MessagePoset(tr),
		msgList: tr.Messages(),
		prevMsg: make([]int, len(events)),
		nextMsg: make([]int, len(events)),
		pos:     make([]int, len(events)),
	}
	lastMsg := make([]int, tr.N)
	counter := make([]int, tr.N)
	for i := range lastMsg {
		lastMsg[i] = -1
	}
	for k, e := range events {
		// A send event's own message has not yet delivered anything from the
		// peer (the acknowledgement arrives later), so it does not count as
		// an incoming synchronization for the send itself; a receive event's
		// own message does (it carries the sender's knowledge).
		isSend := e.Msg >= 0 && e.Proc == o.msgList[e.Msg].From
		if e.Msg >= 0 && !isSend {
			lastMsg[e.Proc] = e.Msg
		}
		o.prevMsg[k] = lastMsg[e.Proc]
		if isSend {
			lastMsg[e.Proc] = e.Msg
		}
		o.pos[k] = counter[e.Proc]
		counter[e.Proc]++
	}
	nextMsg := make([]int, tr.N)
	for i := range nextMsg {
		nextMsg[i] = -1
	}
	for k := len(events) - 1; k >= 0; k-- {
		e := events[k]
		if e.Msg >= 0 {
			nextMsg[e.Proc] = e.Msg
		}
		o.nextMsg[k] = nextMsg[e.Proc]
	}
	return o
}

// NumEvents returns the number of events.
func (o *EventOracle) NumEvents() int { return len(o.events) }

// Event returns event k.
func (o *EventOracle) Event(k int) Event { return o.events[k] }

// HappenedBefore reports whether event a happened before event b (Lamport's
// → of Section 5, with acknowledgements).
func (o *EventOracle) HappenedBefore(a, b int) bool {
	if a < 0 || a >= len(o.events) || b < 0 || b >= len(o.events) {
		panic(fmt.Sprintf("order: event index out of range: %d, %d (have %d)", a, b, len(o.events)))
	}
	if a == b {
		return false
	}
	ea, eb := o.events[a], o.events[b]
	if ea.Proc == eb.Proc {
		return o.pos[a] < o.pos[b]
	}
	// Cross-process causality flows only through synchronizations: the
	// first message on ea.Proc at-or-after a (whose completion carries a's
	// knowledge outward) must equal or precede the last message on eb.Proc
	// at-or-before b that has delivered peer knowledge (see prevMsg).
	// This also orders a send before its own receive and not conversely.
	ma, mb := o.nextMsg[a], o.prevMsg[b]
	if ma == -1 || mb == -1 {
		return false
	}
	return ma == mb || o.msgs.Less(ma, mb)
}

// Concurrent reports whether events a and b are distinct and unordered.
func (o *EventOracle) Concurrent(a, b int) bool {
	return a != b && !o.HappenedBefore(a, b) && !o.HappenedBefore(b, a)
}

// MessagePosetRef exposes the underlying message poset (shared, do not
// mutate); useful to callers already holding an oracle.
func (o *EventOracle) MessagePosetRef() *poset.Poset { return o.msgs }
