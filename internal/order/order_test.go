package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syncstamp/internal/graph"
	"syncstamp/internal/trace"
)

func TestFigure1Relations(t *testing.T) {
	// E1: every relation the paper states about Figure 1.
	tr := trace.Figure1()
	p := MessagePoset(tr)
	// Paper's m1..m6 are indices 0..5.
	m1, m2, m3, m4, m5, m6 := 0, 1, 2, 3, 4, 5
	if !p.Concurrent(m1, m2) {
		t.Error("want m1 ‖ m2")
	}
	if !Directly(tr, m1, m3) {
		t.Error("want m1 ▷ m3")
	}
	if !p.Less(m2, m6) {
		t.Error("want m2 ↦ m6")
	}
	if !p.Less(m3, m5) {
		t.Error("want m3 ↦ m5")
	}
	// Synchronous chain of size 4 from m1 to m5: m1 ▷ m3 ▷ m4 ▷ m5.
	for _, step := range [][2]int{{m1, m3}, {m3, m4}, {m4, m5}} {
		if !Directly(tr, step[0], step[1]) {
			t.Errorf("chain step %v not a direct relation", step)
		}
	}
}

func TestMessagePosetSimpleChain(t *testing.T) {
	// All messages share process 0: total order.
	tr := &trace.Trace{N: 3}
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Message(0, 2))
	tr.MustAppend(trace.Message(1, 0))
	p := MessagePoset(tr)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if !p.Less(i, j) {
				t.Fatalf("want %d ↦ %d", i, j)
			}
		}
	}
}

func TestMessagePosetDisjoint(t *testing.T) {
	tr := &trace.Trace{N: 4}
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Message(2, 3))
	p := MessagePoset(tr)
	if !p.Concurrent(0, 1) {
		t.Fatal("messages on disjoint processes must be concurrent")
	}
}

func TestMessagePosetIgnoresInternal(t *testing.T) {
	tr := &trace.Trace{N: 3}
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Internal(2))
	tr.MustAppend(trace.Message(1, 2))
	p := MessagePoset(tr)
	if p.N() != 2 {
		t.Fatalf("poset over %d messages, want 2", p.N())
	}
	if !p.Less(0, 1) {
		t.Fatal("want 0 ↦ 1 via process 1")
	}
}

func TestDirectly(t *testing.T) {
	tr := trace.Figure1()
	if Directly(tr, 2, 0) {
		t.Fatal("▷ must respect sequence order")
	}
	if Directly(tr, 0, 0) {
		t.Fatal("▷ is irreflexive")
	}
	if Directly(tr, 0, 1) {
		t.Fatal("m1 and m2 share no process")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Directly out of range did not panic")
		}
	}()
	Directly(tr, 0, 99)
}

// bruteClosure computes ↦ as the explicit transitive closure of ▷.
func bruteClosure(tr *trace.Trace) [][]bool {
	n := tr.NumMessages()
	rel := make([][]bool, n)
	for i := range rel {
		rel[i] = make([]bool, n)
		for j := range rel[i] {
			rel[i][j] = Directly(tr, i, j)
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rel[i][k] && rel[k][j] {
					rel[i][j] = true
				}
			}
		}
	}
	return rel
}

// Property: MessagePoset equals the brute-force closure of ▷.
func TestQuickMessagePosetMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := graph.RandomConnected(2+rng.Intn(8), 0.4, rng)
		tr := trace.Generate(topo, trace.GenOptions{Messages: 1 + rng.Intn(40)}, rng)
		p := MessagePoset(tr)
		brute := bruteClosure(tr)
		for i := 0; i < p.N(); i++ {
			for j := 0; j < p.N(); j++ {
				if i != j && p.Less(i, j) != brute[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEventsStructure(t *testing.T) {
	tr := &trace.Trace{N: 3}
	tr.MustAppend(trace.Message(0, 1)) // events 0 (send@0), 1 (recv@1)
	tr.MustAppend(trace.Internal(2))   // event 2
	tr.MustAppend(trace.Message(2, 0)) // events 3 (send@2), 4 (recv@0)
	evs := Events(tr)
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	if evs[0].Proc != 0 || evs[0].Msg != 0 || evs[0].Internal {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Proc != 1 || evs[1].Msg != 0 {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if !evs[2].Internal || evs[2].Msg != -1 || evs[2].Proc != 2 {
		t.Fatalf("event 2 = %+v", evs[2])
	}
	if evs[3].Proc != 2 || evs[3].Msg != 1 {
		t.Fatalf("event 3 = %+v", evs[3])
	}
}

func TestEventOracleSameProcess(t *testing.T) {
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Internal(0))
	tr.MustAppend(trace.Internal(0))
	tr.MustAppend(trace.Internal(1))
	o := NewEventOracle(tr)
	if !o.HappenedBefore(0, 1) || o.HappenedBefore(1, 0) {
		t.Fatal("same-process order wrong")
	}
	if !o.Concurrent(0, 2) {
		t.Fatal("events on unsynchronized processes must be concurrent")
	}
	if o.HappenedBefore(0, 0) {
		t.Fatal("happened-before is irreflexive")
	}
}

func TestEventOracleSendBeforeReceive(t *testing.T) {
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Message(0, 1))
	o := NewEventOracle(tr)
	// Event 0 is the send on P0, event 1 the receive on P1.
	if !o.HappenedBefore(0, 1) {
		t.Fatal("send must happen before receive")
	}
	if o.HappenedBefore(1, 0) {
		t.Fatal("receive must not happen before send")
	}
}

func TestEventOracleAckEdge(t *testing.T) {
	// P0 sends to P1, then P0 has an internal event e. Because the send
	// blocks for the acknowledgement, the receive happened before e.
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Message(0, 1)) // events 0 (send@0), 1 (recv@1)
	tr.MustAppend(trace.Internal(0))   // event 2
	o := NewEventOracle(tr)
	if !o.HappenedBefore(1, 2) {
		t.Fatal("receive must happen before the sender's next event (ack edge)")
	}
}

func TestEventOracleCrossProcessViaChain(t *testing.T) {
	// P0 -int-> msg(0,1) -> msg(1,2) -> int on P2.
	tr := &trace.Trace{N: 3}
	tr.MustAppend(trace.Internal(0))   // event 0
	tr.MustAppend(trace.Message(0, 1)) // events 1, 2
	tr.MustAppend(trace.Message(1, 2)) // events 3, 4
	tr.MustAppend(trace.Internal(2))   // event 5
	o := NewEventOracle(tr)
	if !o.HappenedBefore(0, 5) {
		t.Fatal("want int@P0 → int@P2 via message chain")
	}
	if o.HappenedBefore(5, 0) {
		t.Fatal("reverse direction must not hold")
	}
}

func TestEventOracleConcurrentBetweenSyncs(t *testing.T) {
	// P0 and P1 sync (m0), both have internal events, then sync again (m1).
	// The two internal events are concurrent.
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Message(0, 1)) // events 0, 1
	tr.MustAppend(trace.Internal(0))   // event 2
	tr.MustAppend(trace.Internal(1))   // event 3
	tr.MustAppend(trace.Message(0, 1)) // events 4, 5
	o := NewEventOracle(tr)
	if !o.Concurrent(2, 3) {
		t.Fatal("internal events between the same two syncs must be concurrent")
	}
	if !o.HappenedBefore(2, 5) {
		t.Fatal("sender-side internal event must precede the next receive")
	}
	// The receiver-side internal event does NOT precede the next send on
	// P0: its information travels on the acknowledgement of the second
	// message, which the sender observes only after initiating the send.
	if o.HappenedBefore(3, 4) {
		t.Fatal("receiver-side internal event must not precede the next send event")
	}
	if !o.HappenedBefore(3, 5) {
		t.Fatal("receiver-side internal event precedes its own next receive")
	}
}

// refOracle computes happened-before by explicit reachability on the event
// graph: process edges, a send→receive edge per message, and an
// acknowledgement edge from each receive to the sender's next event.
func refOracle(tr *trace.Trace) [][]bool {
	evs := Events(tr)
	n := len(evs)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	// Process edges: consecutive events per process.
	lastOnProc := make([]int, tr.N)
	for i := range lastOnProc {
		lastOnProc[i] = -1
	}
	msgs := tr.Messages()
	// sendEvent[m] = event index of m's send.
	sendEvent := make([]int, len(msgs))
	recvEvent := make([]int, len(msgs))
	for k, e := range evs {
		if prev := lastOnProc[e.Proc]; prev != -1 {
			adj[prev][k] = true
		}
		lastOnProc[e.Proc] = k
		if e.Msg >= 0 {
			if e.Proc == msgs[e.Msg].From {
				sendEvent[e.Msg] = k
			} else {
				recvEvent[e.Msg] = k
			}
		}
	}
	// Message edges.
	for m := range msgs {
		adj[sendEvent[m]][recvEvent[m]] = true
	}
	// Ack edges: receive → sender's next event after the send.
	nextOnProc := make([]int, n)
	lastSeen := make([]int, tr.N)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	for k := n - 1; k >= 0; k-- {
		nextOnProc[k] = lastSeen[evs[k].Proc]
		lastSeen[evs[k].Proc] = k
	}
	for m := range msgs {
		if nxt := nextOnProc[sendEvent[m]]; nxt != -1 {
			adj[recvEvent[m]][nxt] = true
		}
	}
	// Transitive closure.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !adj[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if adj[k][j] {
					adj[i][j] = true
				}
			}
		}
	}
	return adj
}

// Property: the oracle's happened-before equals explicit event-graph
// reachability with message and acknowledgement edges.
func TestQuickEventOracleMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := graph.RandomConnected(2+rng.Intn(6), 0.4, rng)
		tr := trace.Generate(topo, trace.GenOptions{
			Messages:     1 + rng.Intn(25),
			InternalProb: 0.3,
		}, rng)
		o := NewEventOracle(tr)
		ref := refOracle(tr)
		for a := 0; a < o.NumEvents(); a++ {
			for b := 0; b < o.NumEvents(); b++ {
				if a != b && o.HappenedBefore(a, b) != ref[a][b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEventOracleOutOfRangePanics(t *testing.T) {
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Internal(0))
	o := NewEventOracle(tr)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range query did not panic")
		}
	}()
	o.HappenedBefore(0, 5)
}

func TestMessagePosetRef(t *testing.T) {
	tr := trace.Figure1()
	o := NewEventOracle(tr)
	if o.MessagePosetRef().N() != 6 {
		t.Fatal("MessagePosetRef wrong size")
	}
}
