package order_test

import (
	"fmt"

	"syncstamp/internal/order"
	"syncstamp/internal/trace"
)

// The ground-truth poset of the paper's Figure 1 computation.
func ExampleMessagePoset() {
	tr := trace.Figure1()
	p := order.MessagePoset(tr)
	fmt.Println("m1 ‖ m2:", p.Concurrent(0, 1))
	fmt.Println("m2 ↦ m6:", p.Less(1, 5))
	fmt.Println("m3 ↦ m5:", p.Less(2, 4))
	// Output:
	// m1 ‖ m2: true
	// m2 ↦ m6: true
	// m3 ↦ m5: true
}

// Event-level happened-before includes acknowledgement edges: the receive
// of a message precedes the sender's next event.
func ExampleEventOracle_HappenedBefore() {
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Message(0, 1)) // events 0 (send@P0), 1 (recv@P1)
	tr.MustAppend(trace.Internal(0))   // event 2: after the ack on P0
	o := order.NewEventOracle(tr)
	fmt.Println("send → recv:", o.HappenedBefore(0, 1))
	fmt.Println("recv → sender's next event (ack):", o.HappenedBefore(1, 2))
	// Output:
	// send → recv: true
	// recv → sender's next event (ack): true
}
