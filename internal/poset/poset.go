// Package poset implements irreflexive partially ordered sets and the
// dimension-theory machinery of Section 4 of the paper:
//
//   - transitive closure and reduction of an order relation;
//   - width and a minimum chain partition via Dilworth's theorem, computed
//     with bipartite matching (internal/bipartite);
//   - a maximum antichain via König's theorem;
//   - linear extensions and a chain realizer of size equal to the width
//     (the construction behind dim(P) ≤ width(P) used by Figure 9's offline
//     timestamping algorithm).
//
// Elements are integers 0..n-1; for the paper's use they index messages of a
// synchronous computation and the order is the synchronously-precedes
// relation ↦.
package poset

import (
	"fmt"
	"sort"

	"syncstamp/internal/bitset"
)

// Poset is a partial order on elements 0..n-1. Relations are added with
// AddLess; queries transparently maintain the transitive closure.
// The zero value is unusable; construct with New.
type Poset struct {
	n     int
	up    []*bitset.Set // up[i] = {j : i < j}, transitively closed when !dirty
	dirty bool
}

// New returns an empty partial order (an antichain) on n elements.
func New(n int) *Poset {
	if n < 0 {
		panic(fmt.Sprintf("poset: negative size %d", n))
	}
	up := make([]*bitset.Set, n)
	for i := range up {
		up[i] = bitset.New(n)
	}
	return &Poset{n: n, up: up}
}

// N returns the number of elements.
func (p *Poset) N() int { return p.n }

func (p *Poset) check(i int) {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("poset: element %d out of range [0,%d)", i, p.n))
	}
}

// AddLess records the relation i < j. Closure is recomputed lazily; if the
// added relations create a cycle, the next query panics via Close. Adding
// i < i panics immediately.
func (p *Poset) AddLess(i, j int) {
	p.check(i)
	p.check(j)
	if i == j {
		panic(fmt.Sprintf("poset: reflexive relation %d < %d", i, j))
	}
	if p.up[i].Has(j) {
		return
	}
	p.up[i].Add(j)
	p.dirty = true
}

// Close computes the transitive closure. It returns an error if the added
// relations are cyclic (and therefore not a partial order). Queries call
// Close automatically and panic on a cycle; call Close explicitly to handle
// cyclic input gracefully.
func (p *Poset) Close() error {
	if !p.dirty {
		return nil
	}
	order, ok := p.topoOrder()
	if !ok {
		return fmt.Errorf("poset: relation contains a cycle")
	}
	// Propagate in reverse topological order: up[i] ∪= up[j] for each direct
	// successor j. Iterating the current successor set is safe because any
	// newly merged successor k of j satisfies i < j < k and is already
	// included by j's (finished) closure.
	for idx := len(order) - 1; idx >= 0; idx-- {
		i := order[idx]
		for _, j := range p.up[i].Slice() {
			p.up[i].Or(p.up[j])
		}
	}
	p.dirty = false
	return nil
}

func (p *Poset) ensureClosed() {
	if err := p.Close(); err != nil {
		panic(err.Error())
	}
}

// topoOrder returns a topological order of the current (possibly unclosed)
// relation, or ok=false if it is cyclic.
func (p *Poset) topoOrder() ([]int, bool) {
	indeg := make([]int, p.n)
	for i := 0; i < p.n; i++ {
		p.up[i].ForEach(func(j int) bool {
			indeg[j]++
			return true
		})
	}
	queue := make([]int, 0, p.n)
	for i := 0; i < p.n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, p.n)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		p.up[i].ForEach(func(j int) bool {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
			return true
		})
	}
	return order, len(order) == p.n
}

// Less reports whether i < j in the order.
func (p *Poset) Less(i, j int) bool {
	p.check(i)
	p.check(j)
	p.ensureClosed()
	return p.up[i].Has(j)
}

// Leq reports whether i ≤ j (i.e. i == j or i < j).
func (p *Poset) Leq(i, j int) bool { return i == j || p.Less(i, j) }

// Comparable reports whether i < j or j < i.
func (p *Poset) Comparable(i, j int) bool { return p.Less(i, j) || p.Less(j, i) }

// Concurrent reports whether i ≠ j and i, j are incomparable (written i‖j in
// the paper).
func (p *Poset) Concurrent(i, j int) bool { return i != j && !p.Comparable(i, j) }

// UpSet returns {j : i < j} as a sorted slice.
func (p *Poset) UpSet(i int) []int {
	p.check(i)
	p.ensureClosed()
	return p.up[i].Slice()
}

// DownSet returns {j : j < i} as a sorted slice.
func (p *Poset) DownSet(i int) []int {
	p.check(i)
	p.ensureClosed()
	var out []int
	for j := 0; j < p.n; j++ {
		if j != i && p.up[j].Has(i) {
			out = append(out, j)
		}
	}
	return out
}

// DownSetSize returns |{j : j < i}|.
func (p *Poset) DownSetSize(i int) int {
	p.check(i)
	p.ensureClosed()
	c := 0
	for j := 0; j < p.n; j++ {
		if j != i && p.up[j].Has(i) {
			c++
		}
	}
	return c
}

// Minimals returns the minimal elements in increasing order. A message m is
// minimal when no m' satisfies m' ↦ m (Section 3.2's induction base).
func (p *Poset) Minimals() []int {
	p.ensureClosed()
	hasPred := make([]bool, p.n)
	for i := 0; i < p.n; i++ {
		p.up[i].ForEach(func(j int) bool {
			hasPred[j] = true
			return true
		})
	}
	var out []int
	for i, h := range hasPred {
		if !h {
			out = append(out, i)
		}
	}
	return out
}

// Maximals returns the maximal elements in increasing order.
func (p *Poset) Maximals() []int {
	p.ensureClosed()
	var out []int
	for i := 0; i < p.n; i++ {
		if !p.up[i].Any() {
			out = append(out, i)
		}
	}
	return out
}

// CoverEdges returns the transitive reduction as (i, j) pairs with i covered
// by j (i < j with no k such that i < k < j), sorted lexicographically.
func (p *Poset) CoverEdges() [][2]int {
	p.ensureClosed()
	var out [][2]int
	for i := 0; i < p.n; i++ {
		p.up[i].ForEach(func(j int) bool {
			isCover := true
			p.up[i].ForEach(func(k int) bool {
				if k != j && p.up[k].Has(j) {
					isCover = false
					return false
				}
				return true
			})
			if isCover {
				out = append(out, [2]int{i, j})
			}
			return true
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// RelationCount returns the number of ordered pairs (i, j) with i < j.
func (p *Poset) RelationCount() int {
	p.ensureClosed()
	c := 0
	for i := 0; i < p.n; i++ {
		c += p.up[i].Count()
	}
	return c
}

// Equal reports whether p and q are the same order on the same element count.
func (p *Poset) Equal(q *Poset) bool {
	if p.n != q.n {
		return false
	}
	p.ensureClosed()
	q.ensureClosed()
	for i := 0; i < p.n; i++ {
		if !p.up[i].Equal(q.up[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of p.
func (p *Poset) Clone() *Poset {
	c := New(p.n)
	for i := 0; i < p.n; i++ {
		c.up[i] = p.up[i].Clone()
	}
	c.dirty = p.dirty
	return c
}

// LinearExtension returns a deterministic linear extension of p: a
// permutation of 0..n-1 in which every relation of p is preserved. Ties are
// broken by smallest element index.
func (p *Poset) LinearExtension() []int {
	p.ensureClosed()
	return p.greedyExtension(func(minimals []int) int { return minimals[0] })
}

// greedyExtension repeatedly removes a minimal element chosen by pick from
// the sorted slice of currently minimal elements.
func (p *Poset) greedyExtension(pick func(minimals []int) int) []int {
	indeg := make([]int, p.n)
	for i := 0; i < p.n; i++ {
		p.up[i].ForEach(func(j int) bool {
			indeg[j]++
			return true
		})
	}
	removed := make([]bool, p.n)
	out := make([]int, 0, p.n)
	for len(out) < p.n {
		var minimals []int
		for i := 0; i < p.n; i++ {
			if !removed[i] && indeg[i] == 0 {
				minimals = append(minimals, i)
			}
		}
		if len(minimals) == 0 {
			panic("poset: no minimal element; relation is cyclic")
		}
		x := pick(minimals)
		removed[x] = true
		out = append(out, x)
		p.up[x].ForEach(func(j int) bool {
			indeg[j]--
			return true
		})
	}
	return out
}

// IsLinearExtension reports whether perm is a permutation of 0..n-1 that
// respects every relation of p.
func (p *Poset) IsLinearExtension(perm []int) bool {
	if len(perm) != p.n {
		return false
	}
	pos := make([]int, p.n)
	seen := make([]bool, p.n)
	for idx, e := range perm {
		if e < 0 || e >= p.n || seen[e] {
			return false
		}
		seen[e] = true
		pos[e] = idx
	}
	p.ensureClosed()
	for i := 0; i < p.n; i++ {
		bad := false
		p.up[i].ForEach(func(j int) bool {
			if pos[i] >= pos[j] {
				bad = true
				return false
			}
			return true
		})
		if bad {
			return false
		}
	}
	return true
}
