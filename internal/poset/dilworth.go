package poset

import (
	"fmt"
	"sort"

	"syncstamp/internal/bipartite"
)

// splitGraph builds the bipartite split graph of the closed order: left and
// right copies of the elements with an edge (i, j) whenever i < j.
func (p *Poset) splitGraph() *bipartite.Graph {
	p.ensureClosed()
	g := bipartite.New(p.n, p.n)
	for i := 0; i < p.n; i++ {
		p.up[i].ForEach(func(j int) bool {
			g.AddEdge(i, j)
			return true
		})
	}
	return g
}

// ChainPartition returns a minimum partition of the elements into chains
// (Dilworth's theorem via maximum bipartite matching on the split graph).
// Each chain is listed bottom-to-top; chains are ordered by their smallest
// first element. The number of chains equals Width().
func (p *Poset) ChainPartition() [][]int {
	m := p.splitGraph().MaxMatching()
	// matchL[i] = j means i is directly followed by j in its chain.
	isHead := make([]bool, p.n)
	for i := range isHead {
		isHead[i] = true
	}
	for _, j := range m.MatchL {
		if j != -1 {
			isHead[j] = false
		}
	}
	var chains [][]int
	for h := 0; h < p.n; h++ {
		if !isHead[h] {
			continue
		}
		chain := []int{h}
		for cur := h; m.MatchL[cur] != -1; cur = m.MatchL[cur] {
			chain = append(chain, m.MatchL[cur])
		}
		chains = append(chains, chain)
	}
	sort.Slice(chains, func(a, b int) bool { return chains[a][0] < chains[b][0] })
	return chains
}

// Width returns the size of the largest antichain, which by Dilworth's
// theorem equals the minimum number of chains covering the poset. For the
// message poset of a synchronous computation on N processes this is at most
// ⌊N/2⌋ (Theorem 8 of the paper).
func (p *Poset) Width() int {
	if p.n == 0 {
		return 0
	}
	return p.n - p.splitGraph().MaxMatching().Size
}

// MaxAntichain returns a maximum antichain in increasing order, derived from
// a König minimum vertex cover of the split graph: an element belongs to the
// antichain when neither of its split copies is in the cover.
func (p *Poset) MaxAntichain() []int {
	if p.n == 0 {
		return nil
	}
	cover, _ := p.splitGraph().MinVertexCover()
	inCover := make([]bool, p.n)
	for _, l := range cover.Left {
		inCover[l] = true
	}
	for _, r := range cover.Right {
		inCover[r] = true
	}
	var anti []int
	for i := 0; i < p.n; i++ {
		if !inCover[i] {
			anti = append(anti, i)
		}
	}
	return anti
}

// Realizer returns a family of linear extensions {L_1, ..., L_w}, one per
// chain of a minimum chain partition, whose intersection is exactly the
// order (a chain realizer in the sense of Section 4.1). Its size equals
// Width() for nonempty posets, witnessing dim(P) ≤ width(P).
//
// Construction (Hiraguchi-style): for each chain C, build a linear extension
// L_C by repeatedly removing a minimal element of the remaining poset,
// preferring elements outside C. For any x ‖ y with y ∈ C this places x
// before y: y is picked only when it is the unique minimal element, at which
// point everything remaining is ≥ y. Hence each incomparable pair {x, y} is
// reversed between L_{chain(x)} and L_{chain(y)}, so ∩L_i adds no false
// orders, and each L_i preserves all true orders by being an extension.
func (p *Poset) Realizer() [][]int {
	chains := p.ChainPartition()
	exts := make([][]int, 0, len(chains))
	for _, chain := range chains {
		inChain := make([]bool, p.n)
		for _, e := range chain {
			inChain[e] = true
		}
		ext := p.greedyExtension(func(minimals []int) int {
			for _, e := range minimals {
				if !inChain[e] {
					return e
				}
			}
			return minimals[0]
		})
		exts = append(exts, ext)
	}
	return exts
}

// VerifyRealizer checks that each extension is a linear extension of p and
// that their intersection is exactly p: every incomparable pair appears in
// both orders across the family. It returns nil on success.
func (p *Poset) VerifyRealizer(exts [][]int) error {
	if p.n > 0 && len(exts) == 0 {
		return fmt.Errorf("poset: empty realizer for nonempty poset")
	}
	positions := make([][]int, len(exts))
	for k, ext := range exts {
		if !p.IsLinearExtension(ext) {
			return fmt.Errorf("poset: extension %d is not a linear extension", k)
		}
		pos := make([]int, p.n)
		for idx, e := range ext {
			pos[e] = idx
		}
		positions[k] = pos
	}
	for i := 0; i < p.n; i++ {
		for j := 0; j < p.n; j++ {
			if i == j {
				continue
			}
			inAll := true
			for _, pos := range positions {
				if pos[i] > pos[j] {
					inAll = false
					break
				}
			}
			if inAll && !p.Less(i, j) {
				return fmt.Errorf("poset: realizer orders incomparable pair (%d,%d)", i, j)
			}
			if p.Less(i, j) && !inAll {
				return fmt.Errorf("poset: realizer misses relation %d < %d", i, j)
			}
		}
	}
	return nil
}
