package poset

import (
	"testing"
)

func TestStandardExampleWidthAndRealizer(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5} {
		s := StandardExample(n)
		if s.N() != 2*n {
			t.Fatalf("S_%d has %d elements", n, s.N())
		}
		wantWidth := n
		if n == 1 {
			wantWidth = 2 // a_1 and b_1 are incomparable singletons
		}
		if w := s.Width(); w != wantWidth {
			t.Fatalf("S_%d width = %d, want %d", n, w, wantWidth)
		}
		r := s.Realizer()
		if err := s.VerifyRealizer(r); err != nil {
			t.Fatalf("S_%d: %v", n, err)
		}
		// The realizer from the chain partition has exactly width members —
		// which for S_n (n ≥ 2) matches its dimension n, the canonical
		// tight case.
		if len(r) != wantWidth {
			t.Fatalf("S_%d realizer size = %d, want %d", n, len(r), wantWidth)
		}
	}
}

func TestStandardExampleRelations(t *testing.T) {
	s := StandardExample(3)
	if s.Less(0, 3) {
		t.Fatal("a_1 < b_1 must not hold")
	}
	if !s.Less(0, 4) || !s.Less(0, 5) {
		t.Fatal("a_1 < b_2, b_3 must hold")
	}
	if !s.Concurrent(0, 1) || !s.Concurrent(3, 4) {
		t.Fatal("the a's and the b's are antichains")
	}
}

func TestBooleanLatticeSperner(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5} {
		b := BooleanLattice(n)
		if got, want := b.Width(), SpernerWidth(n); got != want {
			t.Fatalf("B_%d width = %d, want %d (Sperner)", n, got, want)
		}
	}
}

func TestBooleanLatticeOrderIsInclusion(t *testing.T) {
	b := BooleanLattice(4)
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			want := x != y && x&y == x // strict subset
			if b.Less(x, y) != want {
				t.Fatalf("B_4: Less(%04b, %04b) = %v, want %v", x, y, b.Less(x, y), want)
			}
		}
	}
	// Max antichain must be a middle layer.
	anti := b.MaxAntichain()
	if len(anti) != 6 {
		t.Fatalf("B_4 max antichain size = %d, want 6", len(anti))
	}
	for _, x := range anti {
		if popcount(x) != 2 {
			t.Fatalf("B_4 antichain member %04b not in the middle layer", x)
		}
	}
}

func TestBooleanLatticeRealizer(t *testing.T) {
	b := BooleanLattice(3)
	r := b.Realizer()
	if err := b.VerifyRealizer(r); err != nil {
		t.Fatal(err)
	}
	if len(r) != b.Width() {
		t.Fatalf("realizer size %d != width %d", len(r), b.Width())
	}
}

func TestDivisibility(t *testing.T) {
	d := Divisibility(12)
	cases := []struct {
		a, b int
		want bool
	}{
		{1, 12, true}, {2, 6, true}, {3, 9, true}, {2, 12, true},
		{4, 6, false}, {5, 7, false}, {6, 3, false}, {12, 12, false},
	}
	for _, tc := range cases {
		if got := d.Less(tc.a-1, tc.b-1); got != tc.want {
			t.Fatalf("%d | %d: Less = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	// Width of divisibility on 1..12: the largest antichain is
	// {7, 8, 9, 10, 11, 12}, size 6.
	if w := d.Width(); w != 6 {
		t.Fatalf("divisibility width = %d, want 6", w)
	}
}

func TestStandardPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { StandardExample(0) },
		func() { BooleanLattice(-1) },
		func() { BooleanLattice(17) },
		func() { Divisibility(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBinomial(t *testing.T) {
	cases := [][3]int{{4, 2, 6}, {5, 0, 1}, {5, 5, 1}, {6, 3, 20}, {3, 5, 0}, {3, -1, 0}}
	for _, c := range cases {
		if got := binomial(c[0], c[1]); got != c[2] {
			t.Fatalf("C(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
