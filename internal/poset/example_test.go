package poset_test

import (
	"fmt"

	"syncstamp/internal/poset"
)

// Width and realizer of a diamond: 0 < {1, 2} < 3.
func ExamplePoset_Width() {
	p := poset.New(4)
	p.AddLess(0, 1)
	p.AddLess(0, 2)
	p.AddLess(1, 3)
	p.AddLess(2, 3)
	fmt.Println("width:", p.Width())
	fmt.Println("0 < 3 by transitivity:", p.Less(0, 3))
	fmt.Println("1 ‖ 2:", p.Concurrent(1, 2))
	// Output:
	// width: 2
	// 0 < 3 by transitivity: true
	// 1 ‖ 2: true
}

// A realizer of size width: the offline algorithm's core construction.
func ExamplePoset_Realizer() {
	// Two disjoint chains 0<1 and 2<3: width 2.
	p := poset.New(4)
	p.AddLess(0, 1)
	p.AddLess(2, 3)
	r := p.Realizer()
	fmt.Println("extensions:", len(r))
	fmt.Println("valid:", p.VerifyRealizer(r) == nil)
	// Output:
	// extensions: 2
	// valid: true
}

// The standard example S_3 has width 3 = its order dimension — the witness
// that width-sized realizers are sometimes necessary.
func ExampleStandardExample() {
	s := poset.StandardExample(3)
	fmt.Println("elements:", s.N(), "width:", s.Width())
	// Output:
	// elements: 6 width: 3
}
