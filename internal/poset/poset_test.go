package poset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// random returns a random poset on n elements: each pair (i, j) with i < j
// numerically gets the relation with probability p, then closure is taken.
// Using only numerically increasing raw relations guarantees acyclicity.
func random(n int, p float64, rng *rand.Rand) *Poset {
	ps := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				ps.AddLess(i, j)
			}
		}
	}
	return ps
}

func chainPoset(n int) *Poset {
	p := New(n)
	for i := 0; i+1 < n; i++ {
		p.AddLess(i, i+1)
	}
	return p
}

func TestEmptyAndAntichain(t *testing.T) {
	p := New(0)
	if p.Width() != 0 || len(p.Realizer()) != 0 {
		t.Fatal("empty poset should have width 0 and empty realizer")
	}
	a := New(5)
	if a.Width() != 5 {
		t.Fatalf("antichain width = %d, want 5", a.Width())
	}
	if got := len(a.ChainPartition()); got != 5 {
		t.Fatalf("antichain chain partition size = %d, want 5", got)
	}
	if got := len(a.MaxAntichain()); got != 5 {
		t.Fatalf("antichain max antichain = %d, want 5", got)
	}
}

func TestChain(t *testing.T) {
	p := chainPoset(6)
	if !p.Less(0, 5) {
		t.Fatal("closure missing 0 < 5")
	}
	if p.Less(5, 0) {
		t.Fatal("5 < 0 should not hold")
	}
	if p.Width() != 1 {
		t.Fatalf("chain width = %d, want 1", p.Width())
	}
	chains := p.ChainPartition()
	if len(chains) != 1 || len(chains[0]) != 6 {
		t.Fatalf("chain partition = %v", chains)
	}
	for i, e := range chains[0] {
		if e != i {
			t.Fatalf("chain should be 0..5 in order, got %v", chains[0])
		}
	}
	r := p.Realizer()
	if len(r) != 1 {
		t.Fatalf("realizer size = %d, want 1", len(r))
	}
	if err := p.VerifyRealizer(r); err != nil {
		t.Fatal(err)
	}
}

func TestLeqComparableConcurrent(t *testing.T) {
	p := New(4)
	p.AddLess(0, 1)
	p.AddLess(2, 3)
	if !p.Leq(0, 0) || !p.Leq(0, 1) || p.Leq(1, 0) {
		t.Fatal("Leq wrong")
	}
	if !p.Comparable(0, 1) || p.Comparable(0, 2) {
		t.Fatal("Comparable wrong")
	}
	if !p.Concurrent(0, 2) || p.Concurrent(0, 0) || p.Concurrent(0, 1) {
		t.Fatal("Concurrent wrong")
	}
}

func TestCycleDetection(t *testing.T) {
	p := New(3)
	p.AddLess(0, 1)
	p.AddLess(1, 2)
	p.AddLess(2, 0)
	if err := p.Close(); err == nil {
		t.Fatal("Close accepted a cyclic relation")
	}
}

func TestReflexivePanics(t *testing.T) {
	p := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("AddLess(1,1) did not panic")
		}
	}()
	p.AddLess(1, 1)
}

func TestTransitiveClosureDiamond(t *testing.T) {
	// 0 < 1, 0 < 2, 1 < 3, 2 < 3.
	p := New(4)
	p.AddLess(0, 1)
	p.AddLess(0, 2)
	p.AddLess(1, 3)
	p.AddLess(2, 3)
	if !p.Less(0, 3) {
		t.Fatal("closure missing 0 < 3")
	}
	if !p.Concurrent(1, 2) {
		t.Fatal("1 and 2 should be concurrent")
	}
	if p.Width() != 2 {
		t.Fatalf("diamond width = %d, want 2", p.Width())
	}
	covers := p.CoverEdges()
	want := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
	if len(covers) != len(want) {
		t.Fatalf("covers = %v, want %v", covers, want)
	}
	for i := range want {
		if covers[i] != want[i] {
			t.Fatalf("covers = %v, want %v", covers, want)
		}
	}
}

func TestMinimalsMaximals(t *testing.T) {
	p := New(5)
	p.AddLess(0, 2)
	p.AddLess(1, 2)
	p.AddLess(2, 3)
	mins := p.Minimals()
	if len(mins) != 3 || mins[0] != 0 || mins[1] != 1 || mins[2] != 4 {
		t.Fatalf("Minimals = %v, want [0 1 4]", mins)
	}
	maxs := p.Maximals()
	if len(maxs) != 2 || maxs[0] != 3 || maxs[1] != 4 {
		t.Fatalf("Maximals = %v, want [3 4]", maxs)
	}
}

func TestUpDownSets(t *testing.T) {
	p := chainPoset(5)
	up := p.UpSet(2)
	if len(up) != 2 || up[0] != 3 || up[1] != 4 {
		t.Fatalf("UpSet(2) = %v", up)
	}
	down := p.DownSet(2)
	if len(down) != 2 || down[0] != 0 || down[1] != 1 {
		t.Fatalf("DownSet(2) = %v", down)
	}
	if p.DownSetSize(2) != 2 {
		t.Fatalf("DownSetSize(2) = %d", p.DownSetSize(2))
	}
}

func TestLinearExtensionDeterministic(t *testing.T) {
	p := New(4)
	p.AddLess(2, 0)
	p.AddLess(3, 1)
	ext := p.LinearExtension()
	if !p.IsLinearExtension(ext) {
		t.Fatalf("LinearExtension returned non-extension %v", ext)
	}
	// Smallest-first tie-break: minimals are {2, 3}, so 2 first, then 0 and
	// 3 are minimal -> 0, etc.
	want := []int{2, 0, 3, 1}
	for i := range want {
		if ext[i] != want[i] {
			t.Fatalf("LinearExtension = %v, want %v", ext, want)
		}
	}
}

func TestIsLinearExtensionRejects(t *testing.T) {
	p := chainPoset(3)
	cases := [][]int{
		{2, 1, 0}, // violates order
		{0, 1},    // wrong length
		{0, 1, 1}, // duplicate
		{0, 1, 3}, // out of range
		{0, 2, 1}, // violates 1 < 2
	}
	for _, c := range cases {
		if p.IsLinearExtension(c) {
			t.Fatalf("IsLinearExtension(%v) = true", c)
		}
	}
}

func TestEqualClone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := random(8, 0.3, rng)
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal to original")
	}
	q.AddLess(p.Minimals()[0], p.Maximals()[len(p.Maximals())-1])
	_ = q.Close()
	if p.N() != q.N() {
		t.Fatal("clone changed size")
	}
	if !p.Equal(p) {
		t.Fatal("poset not equal to itself")
	}
	if p.Equal(New(3)) {
		t.Fatal("posets of different sizes equal")
	}
}

func TestWidthKnownPosets(t *testing.T) {
	// Two disjoint chains of length 3: width 2.
	p := New(6)
	for i := 0; i < 2; i++ {
		p.AddLess(3*i, 3*i+1)
		p.AddLess(3*i+1, 3*i+2)
	}
	if p.Width() != 2 {
		t.Fatalf("two chains width = %d, want 2", p.Width())
	}
	anti := p.MaxAntichain()
	if len(anti) != 2 {
		t.Fatalf("max antichain = %v, want size 2", anti)
	}
	for a := 0; a < len(anti); a++ {
		for b := a + 1; b < len(anti); b++ {
			if p.Comparable(anti[a], anti[b]) {
				t.Fatalf("antichain members %d,%d comparable", anti[a], anti[b])
			}
		}
	}
	// Standard example S3: bipartite poset with a_i < b_j for i != j, width 3.
	s := New(6)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				s.AddLess(i, 3+j)
			}
		}
	}
	if s.Width() != 3 {
		t.Fatalf("S3 width = %d, want 3", s.Width())
	}
	r := s.Realizer()
	if err := s.VerifyRealizer(r); err != nil {
		t.Fatal(err)
	}
}

func TestChainPartitionCoversAllOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 30; i++ {
		p := random(1+rng.Intn(20), rng.Float64(), rng)
		chains := p.ChainPartition()
		seen := make([]bool, p.N())
		for _, ch := range chains {
			for k, e := range ch {
				if seen[e] {
					t.Fatalf("element %d in two chains", e)
				}
				seen[e] = true
				if k > 0 && !p.Less(ch[k-1], e) {
					t.Fatalf("chain %v not increasing at %d", ch, k)
				}
			}
		}
		for e, s := range seen {
			if !s {
				t.Fatalf("element %d missing from partition", e)
			}
		}
		if len(chains) != p.Width() {
			t.Fatalf("partition size %d != width %d", len(chains), p.Width())
		}
	}
}

// bruteWidth computes the width by brute force (largest antichain).
func bruteWidth(p *Poset) int {
	n := p.N()
	best := 0
	for mask := 0; mask < 1<<uint(n); mask++ {
		var members []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				members = append(members, i)
			}
		}
		ok := true
		for a := 0; a < len(members) && ok; a++ {
			for b := a + 1; b < len(members); b++ {
				if p.Comparable(members[a], members[b]) {
					ok = false
					break
				}
			}
		}
		if ok && len(members) > best {
			best = len(members)
		}
	}
	return best
}

// Property: matching-based width equals brute-force max antichain size.
func TestQuickWidthMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := random(1+rng.Intn(10), rng.Float64(), rng)
		return p.Width() == bruteWidth(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the realizer has size Width and its intersection is the poset.
func TestQuickRealizerExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := random(1+rng.Intn(16), rng.Float64(), rng)
		r := p.Realizer()
		if len(r) != p.Width() {
			return false
		}
		return p.VerifyRealizer(r) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: closure is transitive — i<j and j<k imply i<k.
func TestQuickClosureTransitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := random(2+rng.Intn(12), 0.4, rng)
		n := p.N()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if i != j && j != k && i != k &&
						p.Less(i, j) && p.Less(j, k) && !p.Less(i, k) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxAntichain is an antichain of size Width.
func TestQuickMaxAntichain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := random(1+rng.Intn(14), rng.Float64(), rng)
		anti := p.MaxAntichain()
		if len(anti) != p.Width() {
			return false
		}
		for a := 0; a < len(anti); a++ {
			for b := a + 1; b < len(anti); b++ {
				if p.Comparable(anti[a], anti[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRealizerRejectsBad(t *testing.T) {
	p := New(3) // antichain, width 3
	// A single extension cannot realize a 3-antichain: it orders pairs.
	bad := [][]int{{0, 1, 2}}
	if err := p.VerifyRealizer(bad); err == nil {
		t.Fatal("VerifyRealizer accepted an insufficient family")
	}
	// Non-extension member.
	q := chainPoset(3)
	if err := q.VerifyRealizer([][]int{{2, 1, 0}}); err == nil {
		t.Fatal("VerifyRealizer accepted a non-extension")
	}
	// Missing relation coverage is impossible for true extensions, but an
	// empty family must be rejected for nonempty posets.
	if err := q.VerifyRealizer(nil); err == nil {
		t.Fatal("VerifyRealizer accepted an empty family")
	}
}

func TestRelationCount(t *testing.T) {
	p := chainPoset(4) // closure has 3+2+1 = 6 pairs
	if got := p.RelationCount(); got != 6 {
		t.Fatalf("RelationCount = %d, want 6", got)
	}
}

func BenchmarkClosure(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N; i++ {
		p := random(200, 0.05, rng)
		_ = p.Close()
	}
}

func BenchmarkWidth200(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := random(200, 0.05, rng)
	_ = p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Width()
	}
}
