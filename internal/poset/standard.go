package poset

import (
	"fmt"
	"math/bits"
)

// StandardExample returns the standard example S_n of dimension theory
// (Dushnik–Miller): elements a_1..a_n (indices 0..n-1) and b_1..b_n
// (indices n..2n-1) with a_i < b_j exactly when i ≠ j. Its width and
// dimension are both n, making it the canonical witness that realizers
// cannot be smaller than the width bound used by the offline algorithm.
func StandardExample(n int) *Poset {
	if n < 1 {
		panic(fmt.Sprintf("poset: standard example needs n >= 1, got %d", n))
	}
	p := New(2 * n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				p.AddLess(i, n+j)
			}
		}
	}
	return p
}

// BooleanLattice returns the subset lattice of {1..n} ordered by strict
// inclusion: element x < y iff bitmask x ⊂ y. Its width is the central
// binomial coefficient C(n, ⌊n/2⌋) (Sperner's theorem), exercised by the
// width machinery's tests.
func BooleanLattice(n int) *Poset {
	if n < 0 || n > 16 {
		panic(fmt.Sprintf("poset: boolean lattice size %d out of [0,16]", n))
	}
	p := New(1 << uint(n))
	for x := 0; x < 1<<uint(n); x++ {
		// Add covers: x < x ∪ {b} for each bit b not in x; closure does the
		// rest.
		for b := 0; b < n; b++ {
			if x&(1<<uint(b)) == 0 {
				p.AddLess(x, x|1<<uint(b))
			}
		}
	}
	return p
}

// Divisibility returns the divisibility order on 1..n (element i-1
// represents the integer i): i < j iff i divides j and i ≠ j.
func Divisibility(n int) *Poset {
	if n < 1 {
		panic(fmt.Sprintf("poset: divisibility order needs n >= 1, got %d", n))
	}
	p := New(n)
	for i := 1; i <= n; i++ {
		for j := 2 * i; j <= n; j += i {
			p.AddLess(i-1, j-1)
		}
	}
	return p
}

// binomial returns C(n, k) for the small arguments used in tests.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}

// SpernerWidth returns the expected width of BooleanLattice(n).
func SpernerWidth(n int) int { return binomial(n, n/2) }

// popcount is exposed for rank-based test assertions on BooleanLattice.
func popcount(x int) int { return bits.OnesCount(uint(x)) }
