package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder is the interprocedural upgrade of lockcheck: it computes a
// global lock-acquisition-order graph across the concurrent packages (csp,
// monitor, node, obs, fault) and reports every cycle as a potential
// deadlock, with the acquisition path of each leg in the diagnostic. A lock
// is a sync.Mutex/RWMutex struct field or package-level variable; an edge
// A -> B means some goroutine may acquire B (directly, or transitively
// through the static call graph) while holding A. Two goroutines taking the
// same pair of locks in opposite orders deadlock under the rendezvous
// protocol exactly like a lost ACK — except no timeout fires.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "global lock-acquisition order across csp, monitor, node, obs, and fault must be acyclic (interprocedural, call-graph based)",
	RunModule: runLockOrder,
}

// heldLock is one lock in a function's held set, with where it was taken.
type heldLock struct {
	v   *types.Var
	pos token.Pos
}

// orderEdge is one direct A-held -> B-acquired observation.
type orderEdge struct {
	from, to       *types.Var
	fromPos, toPos token.Pos
	fn             *types.Func
}

// lockSite is one static call made while holding locks.
type lockSite struct {
	callee *types.Func
	held   []heldLock
	pos    token.Pos
}

// funcLockSummary is the per-function result of the flow walk.
type funcLockSummary struct {
	edges    []orderEdge
	sites    []lockSite
	acquires map[*types.Var]token.Pos // direct acquisitions, first position
}

// acqHop reconstructs interprocedural acquisition paths: a lock reachable
// from a function either is acquired directly there (next == nil, at pos)
// or through a call to next.
type acqHop struct {
	next *types.Func
	pos  token.Pos
}

type lockOrderState struct {
	mp        *ModulePass
	labels    map[*types.Var]string
	summaries map[*types.Func]*funcLockSummary
}

func runLockOrder(mp *ModulePass) {
	st := &lockOrderState{
		mp:        mp,
		labels:    make(map[*types.Var]string),
		summaries: make(map[*types.Func]*funcLockSummary),
	}
	st.indexLockLabels()

	// Phase 1: per-function flow walk over the audited packages. Function
	// literals that leave the synchronous flow — go-launched bodies, callback
	// arguments, stored closures — are walked too (their internal ordering
	// and call sites matter), but into separate async summaries, starting
	// from an empty held set: locks held at the spawn site are the parent's,
	// not theirs, and their acquisitions must not enter the parent's
	// synchronous may-acquire set.
	var asyncSums []*funcLockSummary
	for _, fi := range mp.Graph.Funcs() {
		if !lockAudited(fi.Pkg.Path) || fi.Decl.Body == nil {
			continue
		}
		sum := &funcLockSummary{acquires: make(map[*types.Var]token.Pos)}
		var queue []*ast.BlockStmt
		w := &lockWalker{pkg: fi.Pkg, graph: mp.Graph, fn: fi.Obj, sum: sum, asyncQueue: &queue}
		w.walkStmts(fi.Decl.Body.List, map[*types.Var]token.Pos{})
		st.summaries[fi.Obj] = sum
		for len(queue) > 0 {
			body := queue[0]
			queue = queue[1:]
			as := &funcLockSummary{acquires: make(map[*types.Var]token.Pos)}
			aw := &lockWalker{pkg: fi.Pkg, graph: mp.Graph, fn: fi.Obj, sum: as, asyncQueue: &queue}
			aw.walkStmts(body.List, map[*types.Var]token.Pos{})
			asyncSums = append(asyncSums, as)
		}
	}

	// Phase 2: propagate "may acquire" through the call graph so a lock
	// taken three calls deep still orders against the locks held at the
	// outermost call site.
	seed := make(map[*types.Func]map[*types.Var]acqHop, len(st.summaries))
	for fn, sum := range st.summaries {
		m := make(map[*types.Var]acqHop, len(sum.acquires))
		for v, pos := range sum.acquires {
			m[v] = acqHop{pos: pos}
		}
		seed[fn] = m
	}
	trans := lockOrderFixpoint(mp.Graph, seed)

	// Phase 3: assemble the global edge set.
	type edgeKey struct{ from, to *types.Var }
	type edgeWitness struct {
		fromPos token.Pos
		detail  string // human-readable acquisition path of the B leg
	}
	edges := make(map[edgeKey]edgeWitness)
	addEdge := func(from, to *types.Var, fromPos token.Pos, detail string) {
		k := edgeKey{from, to}
		if _, ok := edges[k]; !ok {
			edges[k] = edgeWitness{fromPos: fromPos, detail: detail}
		}
	}
	addSummary := func(sum *funcLockSummary) {
		for _, e := range sum.edges {
			addEdge(e.from, e.to, e.fromPos, fmt.Sprintf("%s acquired at %s in %s",
				st.label(e.to), st.pos(e.toPos), e.fn.Name()))
		}
		for _, site := range sum.sites {
			if len(site.held) == 0 {
				continue
			}
			acq := trans[site.callee]
			for _, to := range sortedLockVars(acq, st) {
				hop := acq[to]
				chain := st.chain(site.callee, to, trans)
				for _, h := range site.held {
					if h.v == to {
						// Self-deadlock: re-acquiring a held (non-reentrant)
						// mutex through a call chain.
						addEdge(h.v, to, h.pos, fmt.Sprintf("%s re-acquired via %s (call at %s)",
							st.label(to), chain, st.pos(site.pos)))
						continue
					}
					addEdge(h.v, to, h.pos, fmt.Sprintf("%s acquired via %s (call at %s, locked at %s)",
						st.label(to), chain, st.pos(site.pos), st.pos(hop.pos)))
				}
			}
		}
	}
	for _, fi := range mp.Graph.Funcs() {
		if sum := st.summaries[fi.Obj]; sum != nil {
			addSummary(sum)
		}
	}
	for _, sum := range asyncSums {
		addSummary(sum)
	}

	// Phase 4: report every cycle (including self-loops) once, smallest
	// label first, with each leg's acquisition path.
	adj := make(map[*types.Var][]*types.Var)
	for k := range edges {
		adj[k.from] = append(adj[k.from], k.to)
	}
	for v := range adj {
		vs := adj[v]
		sort.Slice(vs, func(i, j int) bool { return st.label(vs[i]) < st.label(vs[j]) })
	}
	var nodes []*types.Var
	for v := range adj {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return st.label(nodes[i]) < st.label(nodes[j]) })

	reported := make(map[string]bool)
	for _, start := range nodes {
		cycle := findCycleFrom(start, adj)
		if cycle == nil {
			continue
		}
		// Canonical form: rotate so the smallest label leads, so the same
		// cycle discovered from different starts reports once.
		cycle = rotateMin(cycle, st)
		key := ""
		for _, v := range cycle {
			key += st.label(v) + "->"
		}
		if reported[key] {
			continue
		}
		reported[key] = true
		var legs []string
		for i, v := range cycle {
			next := cycle[(i+1)%len(cycle)]
			w := edges[edgeKey{v, next}]
			legs = append(legs, fmt.Sprintf("%s (held at %s) -> %s", st.label(v), st.pos(w.fromPos), w.detail))
		}
		first := edges[edgeKey{cycle[0], cycle[(1)%len(cycle)]}]
		mp.Reportf(first.fromPos, "lock-order cycle (potential deadlock): %s", strings.Join(legs, "; "))
	}
}

// lockOrderFixpoint propagates may-acquire facts caller-ward, recording for
// each newly learned lock which callee it was learned from (the next hop of
// the acquisition path). Async call sites do not propagate: what a spawned
// goroutine or stored callback acquires is not acquired in the caller's own
// synchronous flow, so it does not order against locks the caller holds.
func lockOrderFixpoint(g *CallGraph, seed map[*types.Func]map[*types.Var]acqHop) map[*types.Func]map[*types.Var]acqHop {
	out := make(map[*types.Func]map[*types.Var]acqHop, len(seed))
	for fn, m := range seed {
		c := make(map[*types.Var]acqHop, len(m))
		for v, h := range m {
			c[v] = h
		}
		out[fn] = c
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range g.Funcs() {
			for _, cs := range g.CallsFrom(fi.Obj) {
				if cs.Async {
					continue
				}
				src := out[cs.Callee]
				if len(src) == 0 {
					continue
				}
				dst := out[fi.Obj]
				if dst == nil {
					dst = make(map[*types.Var]acqHop)
					out[fi.Obj] = dst
				}
				for v := range src {
					if _, ok := dst[v]; !ok {
						dst[v] = acqHop{next: cs.Callee}
						changed = true
					}
				}
			}
		}
	}
	return out
}

// chain renders the call chain from fn to the direct acquisition of v.
func (st *lockOrderState) chain(fn *types.Func, v *types.Var, trans map[*types.Func]map[*types.Var]acqHop) string {
	var parts []string
	for fn != nil {
		parts = append(parts, fn.Name())
		if len(parts) > 16 { // defensive bound; chains are short in practice
			break
		}
		hop, ok := trans[fn][v]
		if !ok || hop.next == nil {
			break
		}
		fn = hop.next
	}
	return strings.Join(parts, " -> ")
}

// pos renders a position as base-file:line, stable across checkouts.
func (st *lockOrderState) pos(p token.Pos) string {
	position := st.mp.Fset.Position(p)
	return fmt.Sprintf("%s:%d", filepath.Base(position.Filename), position.Line)
}

// label names a lock variable: Pkg.Type.field for struct fields,
// Pkg.var for package-level mutexes.
func (st *lockOrderState) label(v *types.Var) string {
	if l, ok := st.labels[v]; ok {
		return l
	}
	l := v.Name()
	if v.Pkg() != nil {
		l = v.Pkg().Name() + "." + l
	}
	st.labels[v] = l
	return l
}

// indexLockLabels maps every mutex-typed struct field of the module to its
// Pkg.Type.field label.
func (st *lockOrderState) indexLockLabels() {
	for _, pkg := range st.mp.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			s, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < s.NumFields(); i++ {
				f := s.Field(i)
				if isSyncLocker(f.Type()) {
					st.labels[f] = pkg.Types.Name() + "." + tn.Name() + "." + f.Name()
				}
			}
		}
	}
}

func sortedLockVars(m map[*types.Var]acqHop, st *lockOrderState) []*types.Var {
	out := make([]*types.Var, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return st.label(out[i]) < st.label(out[j]) })
	return out
}

// findCycleFrom returns a cycle reachable from start ([a b c] meaning
// a->b->c->a), or nil.
func findCycleFrom(start *types.Var, adj map[*types.Var][]*types.Var) []*types.Var {
	var path []*types.Var
	onPath := make(map[*types.Var]int)
	done := make(map[*types.Var]bool)
	var dfs func(v *types.Var) []*types.Var
	dfs = func(v *types.Var) []*types.Var {
		if i, ok := onPath[v]; ok {
			return append([]*types.Var(nil), path[i:]...)
		}
		if done[v] {
			return nil
		}
		onPath[v] = len(path)
		path = append(path, v)
		for _, w := range adj[v] {
			if c := dfs(w); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		delete(onPath, v)
		done[v] = true
		return nil
	}
	return dfs(start)
}

// rotateMin rotates the cycle so its lexicographically smallest label leads.
func rotateMin(cycle []*types.Var, st *lockOrderState) []*types.Var {
	min := 0
	for i := range cycle {
		if st.label(cycle[i]) < st.label(cycle[min]) {
			min = i
		}
	}
	return append(append([]*types.Var(nil), cycle[min:]...), cycle[:min]...)
}

// lockAudited reports whether pkgPath is one of the concurrency-audited
// packages (shared with lockcheck's pairing scope).
func lockAudited(pkgPath string) bool {
	for _, p := range lockedPaths {
		if pathWithin(pkgPath, p) {
			return true
		}
	}
	return false
}

// lockWalker performs the per-function flow walk: a source-order traversal
// tracking the set of locks held, recording direct ordering edges, direct
// acquisitions, and the held set at every static call site. Function
// literals that escape the synchronous flow are pushed on asyncQueue for the
// driver to walk into separate summaries.
type lockWalker struct {
	pkg        *Package
	graph      *CallGraph
	fn         *types.Func
	sum        *funcLockSummary
	asyncQueue *[]*ast.BlockStmt
}

func (w *lockWalker) enqueueAsync(body *ast.BlockStmt) {
	*w.asyncQueue = append(*w.asyncQueue, body)
}

// walkStmts traverses stmts in order, mutating held.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[*types.Var]token.Pos) {
	for _, st := range stmts {
		w.walkStmt(st, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[*types.Var]token.Pos) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if v, method, ok := w.lockMethod(st.X); ok {
			switch method {
			case "Lock", "RLock":
				for hv, hpos := range held {
					w.sum.edges = append(w.sum.edges, orderEdge{from: hv, to: v, fromPos: hpos, toPos: st.Pos(), fn: w.fn})
				}
				if _, ok := w.sum.acquires[v]; !ok {
					w.sum.acquires[v] = st.Pos()
				}
				held[v] = st.Pos()
			case "Unlock", "RUnlock":
				delete(held, v)
			}
			return
		}
		w.scanExprs(st.X, held)
	case *ast.DeferStmt:
		if _, method, ok := w.lockMethod(st.Call); ok && (method == "Unlock" || method == "RUnlock") {
			// Deferred release: the lock stays held for the remainder of the
			// walk, which is exactly the ordering-relevant window.
			return
		}
		w.scanExprs(st.Call, held)
	case *ast.GoStmt:
		// A spawned goroutine starts with an empty held set: locks held at
		// the spawn site are the parent's, not the child's, and what it
		// acquires is not part of the parent's synchronous flow.
		if lit, ok := unparen(st.Call.Fun).(*ast.FuncLit); ok {
			w.enqueueAsync(lit.Body)
		}
		// The go call's arguments are evaluated synchronously at the spawn
		// site; for a named callee the call itself is not (the async call-
		// graph edge covers reachability, ordering-wise it contributes
		// nothing to the parent).
		for _, arg := range st.Call.Args {
			w.scanExprs(arg, held)
		}
	case *ast.BlockStmt:
		w.walkStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.scanExprs(st.Cond, held)
		w.walkBranch(st.Body.List, held)
		if st.Else != nil {
			w.walkBranch([]ast.Stmt{st.Else}, held)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			w.scanExprs(st.Cond, held)
		}
		w.walkStmts(st.Body.List, held)
		if st.Post != nil {
			w.walkStmt(st.Post, held)
		}
	case *ast.RangeStmt:
		w.scanExprs(st.X, held)
		w.walkStmts(st.Body.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Tag != nil {
			w.scanExprs(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkBranch(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkBranch(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, held)
				}
				w.walkBranch(cc.Body, held)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, held)
	case nil:
	default:
		// Assignments, declarations, returns, sends, increments: no lock
		// structure of their own, but their expressions may call.
		w.scanNode(s, held)
	}
}

// walkBranch walks a conditional branch on a copy of held. When the branch
// falls through (does not end in return/branch), its effects are merged
// back: locks it acquired may be held afterward, locks it released on a
// terminating path are not un-held for the fall-through code.
func (w *lockWalker) walkBranch(stmts []ast.Stmt, held map[*types.Var]token.Pos) {
	branch := copyHeld(held)
	w.walkStmts(stmts, branch)
	if terminates(stmts) {
		return // effects confined to the exiting path
	}
	for v, pos := range branch {
		if _, ok := held[v]; !ok {
			held[v] = pos
		}
	}
	for v := range held {
		if _, ok := branch[v]; !ok {
			delete(held, v)
		}
	}
}

// terminates reports whether the statement list ends by leaving the
// enclosing flow (return, break, continue, goto, panic).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func copyHeld(held map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	c := make(map[*types.Var]token.Pos, len(held))
	for v, p := range held {
		c[v] = p
	}
	return c
}

// scanExprs records call sites (with the current held set) and dispatches
// function literals found inside an expression: an immediately invoked
// literal runs here, under the current held set; a literal passed as a call
// argument (a callback) or stored escapes the flow and is queued for an
// async walk with an empty held set — time.AfterFunc(d, func(){...}) runs
// on the timer goroutine, not under the locks held at registration.
func (w *lockWalker) scanExprs(e ast.Expr, held map[*types.Var]token.Pos) {
	if e == nil {
		return
	}
	w.scanNode(e, held)
}

func (w *lockWalker) scanNode(root ast.Node, held map[*types.Var]token.Pos) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			// Reached outside a call context: stored or returned.
			w.enqueueAsync(nn.Body)
			return false
		case *ast.CallExpr:
			w.recordCall(nn, held)
			if lit, ok := unparen(nn.Fun).(*ast.FuncLit); ok {
				// Immediate invocation: the body runs now, under held.
				w.walkStmts(lit.Body.List, copyHeld(held))
			} else {
				w.scanNode(nn.Fun, held)
			}
			for _, a := range nn.Args {
				if lit, ok := unparen(a).(*ast.FuncLit); ok {
					w.enqueueAsync(lit.Body)
				} else {
					w.scanNode(a, held)
				}
			}
			return false
		}
		return true
	})
}

// recordCall notes a static call to a module function together with the
// locks held around it.
func (w *lockWalker) recordCall(call *ast.CallExpr, held map[*types.Var]token.Pos) {
	callee := staticCallee(w.pkg, call)
	if callee == nil || w.graph.Func(callee) == nil {
		return
	}
	var hs []heldLock
	for v, pos := range held {
		hs = append(hs, heldLock{v: v, pos: pos})
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].pos < hs[j].pos })
	w.sum.sites = append(w.sum.sites, lockSite{callee: callee, held: hs, pos: call.Pos()})
}

// lockMethod matches e as a Lock/RLock/Unlock/RUnlock call on a resolvable
// lock variable (struct field or package-level sync.Mutex/RWMutex).
func (w *lockWalker) lockMethod(e ast.Expr) (*types.Var, string, bool) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil, "", false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	fn, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	v := w.lockVarOf(sel.X)
	if v == nil {
		// Embedded mutex: the method selection path identifies the field.
		if s, ok := w.pkg.Info.Selections[sel]; ok {
			v = embeddedLockField(s)
		}
	}
	if v == nil {
		return nil, "", false
	}
	return v, sel.Sel.Name, true
}

// lockVarOf resolves the mutex expression to its lock variable.
func (w *lockWalker) lockVarOf(e ast.Expr) *types.Var {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		v, ok := w.pkg.Info.Uses[x].(*types.Var)
		if ok && isSyncLocker(derefType(v.Type())) && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.SelectorExpr:
		if s, ok := w.pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			v := s.Obj().(*types.Var)
			if isSyncLocker(derefType(v.Type())) {
				return v
			}
			return nil
		}
		// Qualified package-level var: pkg.Mu.
		if v, ok := w.pkg.Info.Uses[x.Sel].(*types.Var); ok &&
			isSyncLocker(derefType(v.Type())) && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return w.lockVarOf(x.X)
		}
	case *ast.StarExpr:
		return w.lockVarOf(x.X)
	}
	return nil
}

// embeddedLockField walks a method selection's embedding path and returns
// the mutex-typed embedded field it traverses, if any.
func embeddedLockField(s *types.Selection) *types.Var {
	idx := s.Index()
	if len(idx) < 2 {
		return nil
	}
	t := derefType(s.Recv())
	for _, i := range idx[:len(idx)-1] {
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return nil
		}
		f := st.Field(i)
		if isSyncLocker(f.Type()) {
			return f
		}
		t = derefType(f.Type())
	}
	return nil
}

// derefType strips one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
