package lint

// All returns every analyzer tslint ships, in reporting order. Each one
// machine-checks an invariant that a paper-level guarantee or the replay
// discipline depends on; DESIGN.md's "Enforced invariants" section maps
// analyzers to properties.
func All() []*Analyzer {
	return []*Analyzer{
		VectorAlias,
		OrderCmp,
		MapIter,
		LockCheck,
		LockOrder,
		AtomicCheck,
		SpinBound,
		GoroExit,
		DroppedErr,
		ObsDet,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
