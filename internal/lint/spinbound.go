package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpinBound rejects unbounded busy-wait loops: every for loop whose body
// calls runtime.Gosched must have a compile-time-visible iteration bound —
// the flushYields/commitYields pattern (for i := 0; i < constBound; i++).
// The flush-on-idle writer and the group-commit leader both manufacture
// scheduling points by yielding; an unbounded spin in their place livelocks
// a GOMAXPROCS=1 run the moment the condition it polls can only be advanced
// by the goroutine that is spinning. Range loops count as bounded (the
// ranged collection is finite); what is banned is `for { Gosched() }` and
// condition-only spins like `for x.Load() > 0 { Gosched() }`.
var SpinBound = &Analyzer{
	Name: "spinbound",
	Doc:  "every runtime.Gosched busy-wait loop carries a compile-time-visible iteration bound",
	Run:  runSpinBound,
}

func runSpinBound(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		var loops []ast.Node // enclosing for/range stack
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, nn)
				// Walk children, then pop: ast.Inspect gives no post-order
				// hook, so recurse manually over the loop body parts.
				for _, child := range loopChildren(nn) {
					if child != nil {
						ast.Inspect(child, visit)
					}
				}
				loops = loops[:len(loops)-1]
				return false
			case *ast.FuncLit:
				// A literal's body has its own loop context.
				saved := loops
				loops = nil
				ast.Inspect(nn.Body, visit)
				loops = saved
				return false
			case *ast.CallExpr:
				if !isGoschedCall(pass, nn) {
					return true
				}
				if len(loops) == 0 {
					return true // a lone yield is not a spin
				}
				innermost := loops[len(loops)-1]
				if !loopBounded(pass, innermost) {
					pass.Reportf(nn.Pos(), "runtime.Gosched inside an unbounded loop; spin loops must carry a compile-time constant bound (the flushYields pattern: for i := 0; i < constBound; i++)")
				}
				return true
			}
			return true
		}
		ast.Inspect(f, visit)
	}
}

// loopChildren returns the sub-nodes of a for/range statement to search for
// Gosched calls under this loop's context.
func loopChildren(n ast.Node) []ast.Node {
	switch l := n.(type) {
	case *ast.ForStmt:
		out := []ast.Node{}
		if l.Init != nil {
			out = append(out, l.Init)
		}
		if l.Cond != nil {
			out = append(out, l.Cond)
		}
		if l.Post != nil {
			out = append(out, l.Post)
		}
		return append(out, l.Body)
	case *ast.RangeStmt:
		return []ast.Node{l.X, l.Body}
	}
	return nil
}

// isGoschedCall matches a call to runtime.Gosched.
func isGoschedCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Gosched" {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "runtime"
}

// loopBounded reports whether the loop's trip count is visibly bounded at
// compile time: a range loop, or a three-clause for whose condition
// compares the loop variable against a constant (or constant expression).
func loopBounded(pass *Pass, n ast.Node) bool {
	if _, ok := n.(*ast.RangeStmt); ok {
		return true
	}
	l, ok := n.(*ast.ForStmt)
	if !ok {
		return false
	}
	if l.Cond == nil {
		return false // for { ... }
	}
	cmp, ok := unparen(l.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return false
	}
	// One side must be a compile-time constant: the bound.
	return isConstExpr(pass, cmp.X) || isConstExpr(pass, cmp.Y)
}

// isConstExpr reports whether the type checker recorded a constant value
// for e (literals, named constants, constant arithmetic).
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
