package lint

import (
	"go/ast"
	"go/types"
)

// lockedPaths lists the packages whose mutex discipline lockcheck audits for
// Lock/Unlock pairing: csp and node host the concurrent rendezvous runtimes,
// monitor is documented as safe for concurrent readers, and obs's registry
// and tracer are shared by every process goroutine of a run. fault's
// injector serializes per-link state under the same discipline. load's
// workers rendezvous through per-client and per-server mutexes at driver
// scale, where an unpaired Lock stalls every subsequent request on that
// client or server. (Copying a lock by value is checked module-wide.)
var lockedPaths = []string{
	"syncstamp/internal/csp",
	"syncstamp/internal/monitor",
	"syncstamp/internal/node",
	"syncstamp/internal/obs",
	"syncstamp/internal/fault",
	"syncstamp/internal/load",
	"syncstamp/internal/sync",
}

// LockCheck enforces two mutex rules. Module-wide, a sync.Mutex/RWMutex (or
// a struct holding one by value) must never be passed or received by value —
// the copy starts unlocked and guards nothing, and under the rendezvous
// protocol a goroutine blocking on a copied lock deadlocks the exchange. In
// the concurrent packages (csp, monitor), every Lock()/RLock() must be
// released on all return paths: either a defer immediately follows, or the
// matching Unlock appears in the same block with no intervening return.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "no mutexes copied by value; Lock() paired with (deferred) Unlock() on every return path in csp, monitor, node, and obs",
	Run:  runLockCheck,
}

func runLockCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(decl *ast.FuncDecl, ft *ast.FuncType, body *ast.BlockStmt) {
			checkLockCopies(pass, decl, ft)
		})
	}
	audited := false
	for _, p := range lockedPaths {
		if pathWithin(pass.Pkg.Path, p) {
			audited = true
			break
		}
	}
	if !audited {
		return
	}
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(_ *ast.FuncDecl, _ *ast.FuncType, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				if blk, ok := n.(*ast.BlockStmt); ok {
					checkLockPairing(pass, blk)
				}
				return true
			})
		})
	}
}

// checkLockCopies flags by-value parameters and receivers whose type holds a
// lock.
func checkLockCopies(pass *Pass, decl *ast.FuncDecl, ft *ast.FuncType) {
	flag := func(field *ast.Field, what string) {
		t := pass.TypeOf(field.Type)
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if containsLocker(t) {
			pass.Reportf(field.Pos(), "%s copies a sync mutex by value; use a pointer", what)
		}
	}
	if decl != nil && decl.Recv != nil {
		for _, field := range decl.Recv.List {
			flag(field, "value receiver")
		}
	}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			flag(field, "parameter")
		}
	}
}

// lockCall matches an ExprStmt of the form E.Lock / E.RLock / E.Unlock /
// E.RUnlock where E has a sync mutex type (directly or as an embedded
// field), returning the receiver's printed form.
func lockCall(pass *Pass, st ast.Stmt) (recv, method string, ok bool) {
	es, isExpr := st.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	return lockCallExpr(pass, es.X)
}

func lockCallExpr(pass *Pass, e ast.Expr) (recv, method string, ok bool) {
	call, isCall := unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := pass.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// unlockFor maps a locking method to its release.
func unlockFor(method string) string {
	if method == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// checkLockPairing audits one block: each Lock/RLock statement must be
// followed immediately by the matching deferred unlock, or by an explicit
// unlock later in the same block with no return statement in between.
func checkLockPairing(pass *Pass, blk *ast.BlockStmt) {
	for i, st := range blk.List {
		recv, method, ok := lockCall(pass, st)
		if !ok || (method != "Lock" && method != "RLock") {
			continue
		}
		want := unlockFor(method)
		// Case 1: defer recv.Unlock() as the next statement.
		if i+1 < len(blk.List) {
			if def, isDefer := blk.List[i+1].(*ast.DeferStmt); isDefer {
				if r, m, ok := lockCallExpr(pass, def.Call); ok && r == recv && m == want {
					continue
				}
			}
		}
		// Case 2: an explicit unlock later in this block, with no return in
		// between (a return in between leaks the lock on that path).
		released := false
		escapes := false
		for _, later := range blk.List[i+1:] {
			if r, m, ok := lockCall(pass, later); ok && r == recv && m == want {
				released = true
				break
			}
			if stmtReturns(later) {
				escapes = true
				break
			}
		}
		switch {
		case released && !escapes:
			// Straight-line Lock ... Unlock: fine.
		case escapes:
			pass.Reportf(st.Pos(), "%s.%s() not released on a return path; defer %s.%s() immediately after locking", recv, method, recv, want)
		default:
			pass.Reportf(st.Pos(), "%s.%s() has no matching %s() in this block; defer the unlock", recv, method, want)
		}
	}
}

// stmtReturns reports whether st contains a return statement (at any depth
// outside nested function literals).
func stmtReturns(st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
			return false
		}
		return !found
	})
	return found
}
