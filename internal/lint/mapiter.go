package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPaths lists the packages whose outputs must be byte-stable
// across runs: stamping and decomposition feed golden files and the
// SYNCSTAMP_CHECK_SEED replay of the property harness, offline stamping and
// shrinking must reproduce counterexamples verbatim, and vis renderings are
// diffed against recorded figures. Go randomizes map iteration order, so a
// bare `for range m` in these packages is a latent replay-nondeterminism
// bug. The wire codec's frame bytes and the node runtime's rendezvous logs
// feed the same golden and replay machinery, so both are held to the same
// rule, as is internal/obs, whose JSONL and Chrome exports are contractually
// byte-identical across runs, and internal/fault, whose whole contract is
// byte-identical fault schedules under a fixed seed. internal/load promises
// identical logs for identical seeds at workers=1 (tsbench's load arms rely
// on it), so it is held to the same rule.
var deterministicPaths = []string{
	"syncstamp/internal/core",
	"syncstamp/internal/decomp",
	"syncstamp/internal/offline",
	"syncstamp/internal/check",
	"syncstamp/internal/vis",
	"syncstamp/internal/wire",
	"syncstamp/internal/node",
	"syncstamp/internal/obs",
	"syncstamp/internal/fault",
	"syncstamp/internal/load",
	"syncstamp/internal/sync",
}

// MapIter flags map iteration in deterministic paths unless the loop merely
// collects keys for later sorting.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "no map iteration in deterministic paths (core, decomp, offline, check, vis, wire, node, obs, load) unless keys are collected and sorted",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) {
	applies := false
	for _, p := range deterministicPaths {
		if pathWithin(pass.Pkg.Path, p) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(loop.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollectionLoop(pass, loop) {
				return true
			}
			pass.Reportf(loop.Pos(), "map iteration order is randomized; collect keys, sort, then iterate (deterministic path)")
			return true
		})
	}
}

// isKeyCollectionLoop recognizes the one sanctioned map-range shape: a body
// that only appends the range key to a slice, to be sorted before use.
//
//	for k := range m { keys = append(keys, k) }
func isKeyCollectionLoop(pass *Pass, loop *ast.RangeStmt) bool {
	if len(loop.Body.List) != 1 {
		return false
	}
	asg, ok := loop.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.ObjectOf(fun).(*types.Builtin); !isBuiltin {
		return false
	}
	// The appended value must be the range key itself (the order-insensitive
	// part); anything touching the map's values may depend on visit order.
	keyID, ok := loop.Key.(*ast.Ident)
	if !ok {
		return false
	}
	argID, ok := unparen(call.Args[1]).(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := pass.ObjectOf(keyID)
	return keyObj != nil && pass.ObjectOf(argID) == keyObj
}
