// Package lint is a small, dependency-free static-analysis framework plus
// the codebase-specific analyzers that machine-check the clock and
// determinism invariants this repository's correctness rests on (see
// DESIGN.md "Enforced invariants"). It is built on go/parser and go/types
// only — no external analysis libraries — so it works with the module's
// empty dependency set. The cmd/tslint driver runs every analyzer over the
// module and fails the build on findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form, with
// the file path made relative to rel when possible.
func (d Diagnostic) String() string { return d.Rel("") }

// Rel renders the diagnostic with the file path relative to dir (when dir is
// non-empty and the path is inside it).
func (d Diagnostic) Rel(dir string) string {
	file := d.Pos.Filename
	if dir != "" {
		if r, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(r, "..") {
			file = r
		}
	}
	return fmt.Sprintf("%s:%d:%d %s: %s", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single package through
// its Pass and reports findings with Pass.Reportf; RunModule (either may be
// nil) sees every loaded package at once, plus the static call graph, and is
// how the interprocedural analyzers (lock order, atomics discipline,
// goroutine joinability) reason across package boundaries.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //nolint directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
	// RunModule analyzes the whole loaded package set with its call graph.
	RunModule func(*ModulePass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// Analyzer is the analyzer this pass runs.
	Analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the type checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object denoted by id (a use or a definition).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// ModulePass carries one analyzer's view of the entire loaded package set.
// Every package shares the loader's FileSet, so positions from any package
// resolve through Fset.
type ModulePass struct {
	// Pkgs are the packages under analysis, in load (import path) order.
	Pkgs []*Package
	// Graph is the static intra-module call graph over Pkgs.
	Graph *CallGraph
	// Analyzer is the analyzer this pass runs.
	Analyzer *Analyzer
	// Fset positions every node of every package.
	Fset   *token.FileSet
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PassFor returns a per-package Pass view of pkg for this module analyzer,
// sharing the module pass's reporter — the helper per-package utilities
// (TypeOf, ObjectOf) then work unchanged in module analyzers.
func (p *ModulePass) PassFor(pkg *Package) *Pass {
	return &Pass{Pkg: pkg, Analyzer: p.Analyzer, report: p.report}
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. //nolint:<name> suppressions are applied
// here; a suppression without a justification is itself reported under the
// pseudo-analyzer "nolint" (the policy is that every suppression documents
// why the invariant is safe to break at that site).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	// Suppressions are collected module-wide up front: module-level
	// analyzers report across package boundaries, and a //nolint in any
	// package must cover diagnostics landing on its lines regardless of
	// which pass produced them.
	sup := &suppressions{byLine: make(map[string]map[int][]string)}
	for _, pkg := range pkgs {
		collectNolint(pkg, sup)
	}
	report := func(d Diagnostic) {
		if !sup.suppresses(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
			diags = append(diags, d)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Pkg: pkg, Analyzer: a, report: report}
			a.Run(pass)
		}
	}
	var graph *CallGraph
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(pkgs)
		}
		mp := &ModulePass{Pkgs: pkgs, Graph: graph, Analyzer: a, report: report}
		if len(pkgs) > 0 {
			mp.Fset = pkgs[0].Fset
		}
		a.RunModule(mp)
	}
	diags = append(diags, sup.policyDiags...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// nolintRe matches "//nolint:name1,name2 optional justification".
var nolintRe = regexp.MustCompile(`^//nolint:([a-zA-Z0-9_,]+)(.*)$`)

// suppressions indexes //nolint directives by file and the line(s) they
// cover: the directive's own line and, when the directive stands alone on
// its line, the following line.
type suppressions struct {
	byLine      map[string]map[int][]string // file -> line -> analyzer names
	policyDiags []Diagnostic
}

func (s *suppressions) suppresses(file string, line int, analyzer string) bool {
	for _, name := range s.byLine[file][line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}

func collectNolint(pkg *Package, s *suppressions) {
	for _, f := range pkg.Files {
		tokFile := pkg.Fset.File(f.Pos())
		if tokFile == nil {
			continue
		}
		file := tokFile.Name()
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, ok := ParseNolint(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if reason == "" {
					s.policyDiags = append(s.policyDiags, Diagnostic{
						Pos:      pos,
						Analyzer: "nolint",
						Message:  "suppression without justification; write //nolint:<analyzer> <why this site is safe>",
					})
				}
				lines := []int{pos.Line}
				// A directive alone on its line guards the next line.
				if pos.Column == 1 || onlyCommentOnLine(tokFile, f, c) {
					lines = append(lines, pos.Line+1)
				}
				if s.byLine[file] == nil {
					s.byLine[file] = make(map[int][]string)
				}
				for _, ln := range lines {
					s.byLine[file][ln] = append(s.byLine[file][ln], names...)
				}
			}
		}
	}
}

// ParseNolint parses one comment's text as a //nolint directive, returning
// the suppressed analyzer names and the (possibly empty) justification.
// ok is false when the comment is not a nolint directive at all.
func ParseNolint(text string) (names []string, reason string, ok bool) {
	m := nolintRe.FindStringSubmatch(text)
	if m == nil {
		return nil, "", false
	}
	for _, n := range strings.Split(m[1], ",") {
		if n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, "", false
	}
	return names, strings.TrimSpace(m[2]), true
}

// onlyCommentOnLine reports whether c is the only token on its line, i.e.
// no declaration or statement starts on the same line before the comment.
func onlyCommentOnLine(tokFile *token.File, f *ast.File, c *ast.Comment) bool {
	line := tokFile.Line(c.Pos())
	only := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !only {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		if n.End() < c.Pos() && tokFile.Line(n.End()) == line {
			only = false
			return false
		}
		return true
	})
	return only
}
