package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// droppedErrAllowed lists callees whose error results are conventionally
// ignored because they only propagate the writer's error and the writer in
// question cannot fail (in-memory builders) or failure is unreportable
// (stdout/stderr prints on the way out of a command). Everything else must
// be handled or discarded explicitly with `_ =`, which keeps the discard
// visible at the call site.
var droppedErrAllowed = []string{
	"fmt.Print", "fmt.Printf", "fmt.Println",
	"fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln",
	"(*strings.Builder).",
	"(*bytes.Buffer).",
}

// DroppedErr flags statements that silently ignore an error result: a
// stamping pipeline that drops an error keeps running with vectors that no
// longer satisfy Theorem 4's invariant, and a CLI that drops a write error
// reports success on truncated output.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "no silently ignored error results; handle them or discard explicitly with _ =",
	Run:  runDroppedErr,
}

func runDroppedErr(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = unparen(st.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			checkDroppedErr(pass, call)
			return true
		})
	}
}

func checkDroppedErr(pass *Pass, call *ast.CallExpr) {
	t := pass.TypeOf(call)
	if t == nil || !resultHasError(t) {
		return
	}
	name := callName(pass, call)
	for _, allowed := range droppedErrAllowed {
		if name == allowed || (strings.HasSuffix(allowed, ".") && strings.HasPrefix(name, allowed)) {
			return
		}
	}
	if name == "" {
		name = "call"
	}
	pass.Reportf(call.Pos(), "error result of %s is silently dropped; handle it or discard with _ =", name)
}

// resultHasError reports whether a call's result type includes error.
func resultHasError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// callName renders the callee for diagnostics and the allowlist:
// "fmt.Fprintf" for package functions, "(*strings.Builder).WriteString" for
// methods.
func callName(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		return fn.FullName()
	}
	return ""
}
