package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// FuncInfo is one module function or method the call graph knows about: its
// type object, the package it lives in, and its declaration (Body may be
// nil for a declared-but-bodyless function, e.g. assembly stubs).
type FuncInfo struct {
	Obj  *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
}

// CallSite is one static call from inside a module function to another
// module function. Calls through interfaces or function values have no
// static callee and carry no edge; the analyzers built on the graph are
// explicitly "may" analyses over the statically visible structure.
type CallSite struct {
	Caller *types.Func
	Callee *types.Func
	Pos    ast.Node // the call expression, for diagnostics
	// Async marks a call that does not run synchronously in the caller's
	// control flow: the target of a go statement, or any call inside a
	// function literal that is go-launched, passed as a callback argument,
	// or stored (it may run later, on another goroutine, with different
	// locks held). Synchronous-context analyses (lock ordering) skip async
	// edges; pure reachability analyses may keep them.
	Async bool
}

// CallGraph is a lightweight, intra-module static call graph built from
// go/types resolution alone (no x/tools, matching the module's empty
// dependency set). Function literals are attributed to their enclosing
// declared function: a call made inside a closure is an edge from the
// function that contains the closure, which over-approximates "may call"
// exactly the way the interprocedural analyzers need.
type CallGraph struct {
	funcs map[*types.Func]*FuncInfo
	calls map[*types.Func][]CallSite
}

// BuildCallGraph indexes every declared function and method of pkgs and
// records the statically resolvable calls between them.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		funcs: make(map[*types.Func]*FuncInfo),
		calls: make(map[*types.Func][]CallSite),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.funcs[obj] = &FuncInfo{Obj: obj, Pkg: pkg, Decl: fd}
			}
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.collectCalls(pkg, caller, fd.Body, false)
			}
		}
	}
	return g
}

// collectCalls records every static call inside n as edges from caller,
// tracking whether the call runs synchronously in caller's control flow.
// Async contexts are: the call of a go statement, the body of a go-launched
// function literal, and the body of any function literal that escapes the
// current flow (passed as a call argument — a callback — or stored). A
// literal that is invoked on the spot (func(){...}(), including deferred
// ones) stays synchronous.
func (g *CallGraph) collectCalls(pkg *Package, caller *types.Func, n ast.Node, async bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch mm := m.(type) {
		case *ast.GoStmt:
			if lit, ok := unparen(mm.Call.Fun).(*ast.FuncLit); ok {
				g.collectCalls(pkg, caller, lit.Body, true)
			} else {
				g.addCall(pkg, caller, mm.Call, true)
				g.collectCalls(pkg, caller, mm.Call.Fun, async)
			}
			// Arguments of the go call are evaluated synchronously at the
			// spawn site.
			for _, a := range mm.Call.Args {
				g.collectCalls(pkg, caller, a, async)
			}
			return false
		case *ast.CallExpr:
			g.addCall(pkg, caller, mm, async)
			if lit, ok := unparen(mm.Fun).(*ast.FuncLit); ok {
				// Immediate invocation: the body runs here and now.
				g.collectCalls(pkg, caller, lit.Body, async)
			} else {
				g.collectCalls(pkg, caller, mm.Fun, async)
			}
			for _, a := range mm.Args {
				if lit, ok := unparen(a).(*ast.FuncLit); ok {
					// Callback: when (and under which locks) it runs is the
					// callee's business, not this flow's.
					g.collectCalls(pkg, caller, lit.Body, true)
				} else {
					g.collectCalls(pkg, caller, a, async)
				}
			}
			return false
		case *ast.FuncLit:
			// A literal reached outside any call context is stored or
			// returned; it escapes the current flow.
			g.collectCalls(pkg, caller, mm.Body, true)
			return false
		}
		return true
	})
}

func (g *CallGraph) addCall(pkg *Package, caller *types.Func, call *ast.CallExpr, async bool) {
	callee := staticCallee(pkg, call)
	if callee == nil {
		return
	}
	if _, inModule := g.funcs[callee]; !inModule {
		return
	}
	g.calls[caller] = append(g.calls[caller], CallSite{
		Caller: caller,
		Callee: callee,
		Pos:    call,
		Async:  async,
	})
}

// staticCallee resolves the called *types.Func of a call expression when the
// callee is a named function or a method on a concrete receiver; interface
// method calls and calls of function values resolve to nil.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := funcObject(pkg, fun); ok {
			return fn
		}
	case *ast.SelectorExpr:
		// Interface dispatch has no static body to follow.
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		if fn, ok := funcObject(pkg, fun.Sel); ok {
			return fn
		}
	}
	return nil
}

func funcObject(pkg *Package, id *ast.Ident) (*types.Func, bool) {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	fn, ok := obj.(*types.Func)
	return fn, ok
}

// Func returns the module function info for obj, or nil when obj is not a
// module function (stdlib, interface method, nil).
func (g *CallGraph) Func(obj *types.Func) *FuncInfo {
	if obj == nil {
		return nil
	}
	return g.funcs[obj]
}

// CallsFrom returns the static call sites inside fn, in source order.
func (g *CallGraph) CallsFrom(fn *types.Func) []CallSite { return g.calls[fn] }

// Funcs returns every module function in deterministic order (package path,
// then position), so analyses iterating the graph report deterministically.
func (g *CallGraph) Funcs() []*FuncInfo {
	out := make([]*FuncInfo, 0, len(g.funcs))
	for _, fi := range g.funcs {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg.Path != out[j].Pkg.Path {
			return out[i].Pkg.Path < out[j].Pkg.Path
		}
		return out[i].Decl.Pos() < out[j].Decl.Pos()
	})
	return out
}

// PropagateBool computes the transitive closure of a boolean per-function
// fact over the call graph: the result holds true for every function whose
// own seed is true or that may (transitively) synchronously call a function
// whose seed is true. Async edges are skipped — a fact that holds in a
// spawned goroutine or a stored callback does not hold in the caller's own
// flow. The propagation runs to a fixpoint, so recursion and mutual
// recursion are handled.
func PropagateBool(g *CallGraph, seed map[*types.Func]bool) map[*types.Func]bool {
	out := make(map[*types.Func]bool, len(seed))
	for fn, v := range seed {
		if v {
			out[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range g.Funcs() {
			if out[fi.Obj] {
				continue
			}
			for _, cs := range g.calls[fi.Obj] {
				if !cs.Async && out[cs.Callee] {
					out[fi.Obj] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}
