package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AtomicCheck enforces atomics discipline module-wide, in two phases over
// the whole package set: phase 1 collects every struct field that is
// accessed through a sync/atomic function (atomic.AddInt64(&s.n, 1) and
// friends); phase 2 reports every plain read or write of those same fields
// anywhere in the module. Mixing the two access modes is the exact bug
// class the flush-on-idle pending counter and the journal commit leader
// invite: a plain load next to an atomic add is a data race the happens-
// before reasoning of the rendezvous protocol silently builds on. Fields of
// the typed atomic.Int64-style types are safe by construction (their only
// operations are methods) and need no check; vet's copylocks already flags
// copying them.
var AtomicCheck = &Analyzer{
	Name:      "atomiccheck",
	Doc:       "a struct field accessed through sync/atomic is never read or written plainly anywhere in the module",
	RunModule: runAtomicCheck,
}

// atomicFns are the sync/atomic functions whose first argument is the
// address of the atomically accessed word.
var atomicFns = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicCheck(mp *ModulePass) {
	// Phase 1: which struct fields does the module access atomically, and
	// where (the witness position makes the diagnostic actionable).
	atomicFields := make(map[*types.Var]token.Pos)
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if v := atomicArgField(pkg, call); v != nil {
					if _, seen := atomicFields[v]; !seen {
						atomicFields[v] = call.Pos()
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}

	// Phase 2: any plain (non-atomic) read or write of those fields is a
	// mixed-access race.
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			v := &atomicUseVisitor{mp: mp, pkg: pkg, fields: atomicFields}
			ast.Walk(v, f)
		}
	}
}

// atomicArgField returns the struct field whose address is the first
// argument of a sync/atomic call, or nil.
func atomicArgField(pkg *Package, call *ast.CallExpr) *types.Var {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !atomicFns[sel.Sel.Name] {
		return nil
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	addr, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil
	}
	return fieldVarOf(pkg, addr.X)
}

// fieldVarOf resolves e to the struct field it selects, or nil.
func fieldVarOf(pkg *Package, e ast.Expr) *types.Var {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// atomicUseVisitor walks one file and reports plain uses of atomically
// accessed fields, skipping the &f arguments of sync/atomic calls
// themselves.
type atomicUseVisitor struct {
	mp     *ModulePass
	pkg    *Package
	fields map[*types.Var]token.Pos
}

func (v *atomicUseVisitor) Visit(n ast.Node) ast.Visitor {
	call, ok := n.(*ast.CallExpr)
	if ok && atomicArgField(v.pkg, call) != nil {
		// The sanctioned access: skip the address-of argument, but keep
		// checking the remaining arguments (they are plain expressions).
		for _, arg := range call.Args[1:] {
			ast.Walk(v, arg)
		}
		return nil
	}
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return v
	}
	f := fieldVarOf(v.pkg, sel)
	if f == nil {
		return v
	}
	if firstUse, isAtomic := v.fields[f]; isAtomic {
		v.mp.Reportf(sel.Pos(), "plain access to field %s, which is accessed atomically (e.g. at %s); use sync/atomic for every access or a typed atomic field",
			fieldLabel(f), v.shortPos(firstUse))
	}
	return v
}

func (v *atomicUseVisitor) shortPos(p token.Pos) string {
	pos := v.mp.Fset.Position(p)
	base := pos.Filename
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return base + ":" + strconv.Itoa(pos.Line)
}

// fieldLabel names a field as Pkg.field (the owning struct type is not
// recoverable from the Var alone without an index; package + name is
// unambiguous enough for a diagnostic, the position pins it exactly).
func fieldLabel(f *types.Var) string {
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}
