package lint

import (
	"go/ast"
	"go/types"
)

// goroPaths are the packages whose goroutines must be joinable: node and
// csp host the runtime goroutines of a run (readers, accept loops, program
// goroutines, recovery drivers), and a leaked one outlives Run/Wait with a
// live reference to connection or clock state — the class of bug a kill -9
// soak cannot see because the process dies before the leak matters. load's
// workers and the collector-tree leaves hold spill journals and pipe ends,
// so an unjoined one keeps file handles alive past Finish.
var goroPaths = []string{
	"syncstamp/internal/node",
	"syncstamp/internal/csp",
	"syncstamp/internal/load",
	"syncstamp/internal/sync",
}

// GoroExit enforces goroutine joinability in the runtime packages: every
// goroutine launched with a go statement must be visibly joinable from its
// spawn site — the spawned body (or a function it statically calls) must
// either signal a sync.WaitGroup (Done) or signal completion over a channel
// (close or send on a non-local channel). Node.Close and System.Wait are
// the join points of the runtime; a goroutine neither tracked by a
// WaitGroup nor signalling a channel is invisible to both.
var GoroExit = &Analyzer{
	Name:      "goroexit",
	Doc:       "goroutines launched in node and csp are joinable: the spawned body signals a WaitGroup or a completion channel",
	RunModule: runGoroExit,
}

func runGoroExit(mp *ModulePass) {
	// Phase 1: which module functions signal completion, directly?
	signals := make(map[*types.Func]bool)
	for _, fi := range mp.Graph.Funcs() {
		if fi.Decl.Body == nil {
			continue
		}
		if bodySignalsCompletion(fi.Pkg, fi.Decl.Body) {
			signals[fi.Obj] = true
		}
	}
	// Phase 2: propagate through the call graph — a goroutine whose body
	// calls a helper that does the WaitGroup.Done (or closes the done
	// channel) is joinable through that helper.
	signals = PropagateBool(mp.Graph, signals)

	// Phase 3: audit every go statement in the scoped packages.
	for _, pkg := range mp.Pkgs {
		if !goroAudited(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if goStmtJoinable(mp, pkg, g, signals) {
					return true
				}
				mp.Reportf(g.Pos(), "goroutine is not joinable: its body neither signals a sync.WaitGroup nor closes/sends on a completion channel (reachable via static calls); leaked goroutines outlive Close/Wait with live runtime state")
				return true
			})
		}
	}
}

func goroAudited(pkgPath string) bool {
	for _, p := range goroPaths {
		if pathWithin(pkgPath, p) {
			return true
		}
	}
	return false
}

// goStmtJoinable decides one go statement: a function-literal body is
// inspected directly (plus its static callees); a named callee is looked up
// in the propagated signal set.
func goStmtJoinable(mp *ModulePass, pkg *Package, g *ast.GoStmt, signals map[*types.Func]bool) bool {
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if bodySignalsCompletion(pkg, lit.Body) {
			return true
		}
		// The literal may delegate the signalling to a helper it calls.
		joinable := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || joinable {
				return !joinable
			}
			if callee := staticCallee(pkg, call); callee != nil && signals[callee] {
				joinable = true
			}
			return true
		})
		return joinable
	}
	callee := staticCallee(pkg, g.Call)
	return callee != nil && signals[callee]
}

// bodySignalsCompletion reports whether the body visibly signals that the
// goroutine is done: a sync.WaitGroup Done call, a close() of a non-local
// channel, or a send on a non-local channel. Nested function literals
// count (the signal is usually inside a defer).
func bodySignalsCompletion(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.CallExpr:
			// wg.Done()
			if sel, ok := unparen(nn.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					found = true
					return false
				}
			}
			// close(ch) on a shared (non-local) channel
			if id, ok := unparen(nn.Fun).(*ast.Ident); ok && id.Name == "close" && len(nn.Args) == 1 {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && sharedChannel(pkg, nn.Args[0]) {
					found = true
					return false
				}
			}
		case *ast.SendStmt:
			if sharedChannel(pkg, nn.Chan) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sharedChannel reports whether e denotes a channel that outlives the
// goroutine body: a struct field, a package-level variable, or a captured
// variable — anything but a channel created and dropped locally would do,
// and distinguishing captured locals from body-locals statically is not
// worth the precision, so any identifier or selector of channel type
// counts.
func sharedChannel(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	switch unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return true
	}
	return false
}
