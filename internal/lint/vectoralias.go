package lint

import (
	"go/ast"
	"go/types"
)

// VectorAlias enforces the ownership discipline around vector.V values that
// Theorem 4 silently relies on: a vector received as a function parameter is
// on loan from its owner (the peer's clock, a stamp slice, ...), so the
// callee must neither mutate it nor retain an alias past the call. Storing
// it into a field, slice, map, or global without Clone() lets a later Max()
// or increment rewrite an already-issued timestamp; mutating it corrupts the
// caller's clock. Symmetrically, an accessor must not return its receiver's
// internal vector without Clone(), or every caller receives a live alias of
// the clock state.
var VectorAlias = &Analyzer{
	Name: "vectoralias",
	Doc:  "vector.V parameters must not be stored or mutated without Clone(); accessors must not return internal vectors",
	Run:  runVectorAlias,
}

func runVectorAlias(pass *Pass) {
	if pass.Pkg.Path == vectorPkgPath {
		// The vector package itself implements the mutating primitives.
		return
	}
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(decl *ast.FuncDecl, ft *ast.FuncType, body *ast.BlockStmt) {
			checkVectorAliasFunc(pass, decl, ft, body)
		})
	}
}

func checkVectorAliasFunc(pass *Pass, decl *ast.FuncDecl, ft *ast.FuncType, body *ast.BlockStmt) {
	// borrowed is the set of variables holding a loaned vector: the vector.V
	// parameters plus local variables directly assigned from one.
	borrowed := make(map[*types.Var]bool)
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if v, ok := pass.ObjectOf(name).(*types.Var); ok && isVectorV(v.Type()) {
					borrowed[v] = true
				}
			}
		}
	}
	var recv *types.Var
	if decl != nil && decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		recv, _ = pass.ObjectOf(decl.Recv.List[0].Names[0]).(*types.Var)
	}

	borrowedExpr := func(e ast.Expr) (*types.Var, bool) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return nil, false
		}
		v, ok := pass.ObjectOf(id).(*types.Var)
		if !ok || !borrowed[v] {
			return nil, false
		}
		return v, true
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if len(st.Lhs) != len(st.Rhs) {
					break
				}
				v, ok := borrowedExpr(rhs)
				if !ok {
					continue
				}
				switch lhs := unparen(st.Lhs[i]).(type) {
				case *ast.Ident:
					obj, isVar := pass.ObjectOf(lhs).(*types.Var)
					if !isVar {
						continue
					}
					if obj.Parent() == pass.Pkg.Types.Scope() {
						pass.Reportf(st.Pos(), "vector parameter %s stored in package variable %s without Clone()", v.Name(), obj.Name())
						continue
					}
					// A plain local alias propagates the borrow.
					borrowed[obj] = true
				case *ast.SelectorExpr:
					pass.Reportf(st.Pos(), "vector parameter %s stored in field %s without Clone()", v.Name(), lhs.Sel.Name)
				case *ast.IndexExpr:
					pass.Reportf(st.Pos(), "vector parameter %s stored in a slice or map element without Clone()", v.Name())
				}
			}
			// Writing through an element of a borrowed vector mutates the
			// caller's value.
			for _, lhs := range st.Lhs {
				if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
					if v, ok := borrowedExpr(ix.X); ok {
						pass.Reportf(lhs.Pos(), "vector parameter %s mutated by element assignment; Clone() it first", v.Name())
					}
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := unparen(st.X).(*ast.IndexExpr); ok {
				if v, ok := borrowedExpr(ix.X); ok {
					pass.Reportf(st.Pos(), "vector parameter %s mutated by %s on an element; Clone() it first", v.Name(), st.Tok)
				}
			}
		case *ast.CallExpr:
			switch fun := unparen(st.Fun).(type) {
			case *ast.SelectorExpr:
				// v.Max(w) mutates its receiver v.
				if fun.Sel.Name == "Max" && isVectorV(pass.TypeOf(fun.X)) {
					if v, ok := borrowedExpr(fun.X); ok {
						pass.Reportf(st.Pos(), "vector parameter %s mutated by Max(); Clone() it first", v.Name())
					}
				}
			case *ast.Ident:
				// append(s, p) retains the alias when s outlives the call.
				if fun.Name == "append" && len(st.Args) >= 2 {
					if _, isBuiltin := pass.ObjectOf(fun).(*types.Builtin); isBuiltin {
						for _, arg := range st.Args[1:] {
							if v, ok := borrowedExpr(arg); ok {
								pass.Reportf(arg.Pos(), "vector parameter %s appended to a slice without Clone()", v.Name())
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			// Accessor rule: a method returning a vector field of its
			// receiver hands out a live alias of the clock state.
			if recv == nil {
				return true
			}
			for _, res := range st.Results {
				sel, ok := unparen(res).(*ast.SelectorExpr)
				if !ok || !isVectorV(pass.TypeOf(sel)) {
					continue
				}
				base, ok := unparen(sel.X).(*ast.Ident)
				if !ok {
					continue
				}
				if obj, _ := pass.ObjectOf(base).(*types.Var); obj == recv {
					pass.Reportf(res.Pos(), "accessor returns internal vector %s.%s without Clone()", base.Name, sel.Sel.Name)
				}
			}
		}
		return true
	})
}
