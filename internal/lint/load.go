package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory holding the package's files.
	Dir string
	// Fset positions every node of Files.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression and identifier facts.
	Info *types.Info
}

// Loader loads and type-checks packages of a single module using only the
// standard library: module-internal imports are resolved against the module
// directory, everything else (the standard library) is type-checked from
// source via go/importer's "source" compiler, so no compiled export data or
// external tooling is required.
type Loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.ImporterFrom
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader returns a loader for the module whose go.mod lives in dir or one
// of its parents.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImporterFrom")
	}
	return &Loader{
		fset:       fset,
		moduleDir:  root,
		modulePath: modPath,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// ModuleDir returns the module root directory.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// findModule walks upward from dir to the nearest go.mod and parses its
// module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
	}
}

// LoadAll loads every package of the module, in deterministic (import path)
// order. Directories named testdata, hidden directories, and test files are
// skipped, mirroring the go tool's ./... semantics.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.moduleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads the package in dir under its natural module import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.moduleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.moduleDir)
	}
	path := l.modulePath
	if rel != "." {
		path = l.modulePath + "/" + filepath.ToSlash(rel)
	}
	return l.LoadDirAs(abs, path)
}

// LoadDirAs loads the package in dir under an explicit import path. Tests
// use it to load testdata packages as if they lived at a real module path
// (path-scoped analyzers key off the import path).
func (l *Loader) LoadDirAs(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importAdapter{l}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importAdapter routes module-internal imports back through the loader and
// everything else to the source importer.
type importAdapter struct{ l *Loader }

func (a importAdapter) Import(path string) (*types.Package, error) {
	return a.ImportFrom(path, a.l.moduleDir, 0)
}

func (a importAdapter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	l := a.l
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(path, l.modulePath)
		rel = strings.TrimPrefix(rel, "/")
		pkg, err := l.LoadDirAs(filepath.Join(l.moduleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}
