package lint

import (
	"go/ast"
)

// obsDetPaths lists the packages whose exports are contractually byte-stable
// across runs of the same computation: internal/obs's JSONL and Chrome trace
// files must never depend on when the run happened, only on its causal
// structure. A direct wall-clock read anywhere in the package is a latent
// determinism bug — time must flow through the obs.Clock seam, whose single
// sanctioned wall implementation carries the one justified suppression.
var obsDetPaths = []string{
	"syncstamp/internal/obs",
	"syncstamp/internal/fault",
}

// ObsDet forbids direct wall-clock reads in the observability package.
var ObsDet = &Analyzer{
	Name: "obsdet",
	Doc:  "no direct wall-clock reads (time.Now/Since/Until) in internal/obs or internal/fault; take time through obs.Clock so exports and fault schedules stay byte-stable",
	Run:  runObsDet,
}

func runObsDet(pass *Pass) {
	applies := false
	for _, p := range obsDetPaths {
		if pathWithin(pass.Pkg.Path, p) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(), "wall-clock read time.%s in a deterministic export path; route time through obs.Clock", fn.Name())
			}
			return true
		})
	}
}
