package lint

import (
	"strings"
	"testing"
	"unicode"
)

// TestParseNolint pins the parser's contract on the shapes that matter: the
// directive must name at least one analyzer, the justification is whatever
// trails the name list, and near-miss comments are not directives at all.
func TestParseNolint(t *testing.T) {
	cases := []struct {
		in     string
		names  []string
		reason string
		ok     bool
	}{
		{"//nolint:mapiter sorted upstream", []string{"mapiter"}, "sorted upstream", true},
		{"//nolint:mapiter,lockcheck why", []string{"mapiter", "lockcheck"}, "why", true},
		{"//nolint:mapiter", []string{"mapiter"}, "", true},
		{"//nolint:mapiter   padded   ", []string{"mapiter"}, "padded", true},
		{"//nolint:a,,b skip empties", []string{"a", "b"}, "skip empties", true},
		{"//nolint:", nil, "", false},
		{"//nolint:,", nil, "", false},
		{"// nolint:mapiter spaced marker is not a directive", nil, "", false},
		{"//nolint mapiter missing colon", nil, "", false},
		{"plain comment", nil, "", false},
	}
	for _, tc := range cases {
		names, reason, ok := ParseNolint(tc.in)
		if ok != tc.ok || reason != tc.reason || strings.Join(names, ",") != strings.Join(tc.names, ",") {
			t.Errorf("ParseNolint(%q) = (%v, %q, %v), want (%v, %q, %v)",
				tc.in, names, reason, ok, tc.names, tc.reason, tc.ok)
		}
	}
}

// FuzzNolint fuzzes the //nolint directive parser. The suppression machinery
// is itself part of the trusted base — a parser that panics on a weird
// comment takes the whole lint gate down with it, and one that mis-splits
// names silently widens a suppression to analyzers the author never named.
func FuzzNolint(f *testing.F) {
	for _, seed := range []string{
		"//nolint:mapiter sorted upstream",
		"//nolint:mapiter,lockcheck hand-over-hand handoff",
		"//nolint:a,,b reason",
		"//nolint:",
		"//nolint:,,,",
		"//nolint:spinbound",
		"// nolint:mapiter",
		"//nolint:mapiter\ttab reason",
		"//nolint:UPPER_case_09 mixed",
		"//not a directive",
		"//nolint:名前 unicode name",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		names, reason, ok := ParseNolint(text)
		if !ok {
			if len(names) != 0 || reason != "" {
				t.Fatalf("not-ok parse leaked values: (%v, %q)", names, reason)
			}
			return
		}
		if !strings.HasPrefix(text, "//nolint:") {
			t.Fatalf("parsed a directive out of %q", text)
		}
		if len(names) == 0 {
			t.Fatal("ok parse with zero names")
		}
		for _, n := range names {
			if n == "" {
				t.Fatal("ok parse with an empty name")
			}
			for _, r := range n {
				if r != '_' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("name %q contains separator or space %q", n, r)
				}
				if r > unicode.MaxASCII {
					t.Fatalf("name %q contains non-ASCII %q (regex class is ASCII)", n, r)
				}
			}
		}
		if reason != strings.TrimSpace(reason) {
			t.Fatalf("reason %q not trimmed", reason)
		}
		// Canonicalization is a fixpoint: re-rendering the parse must parse
		// back to exactly the same directive.
		canon := "//nolint:" + strings.Join(names, ",")
		if reason != "" {
			canon += " " + reason
		}
		names2, reason2, ok2 := ParseNolint(canon)
		if !ok2 || strings.Join(names2, ",") != strings.Join(names, ",") || reason2 != reason {
			t.Fatalf("canonical form %q re-parsed to (%v, %q, %v)", canon, names2, reason2, ok2)
		}
	})
}
