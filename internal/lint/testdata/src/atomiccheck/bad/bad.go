// Package bad seeds atomiccheck violations: a field accessed through
// sync/atomic in one place and read or written plainly in another — the
// mixed-access data race the analyzer exists to catch.
package bad

import "sync/atomic"

// Counter mixes access modes on hits.
type Counter struct {
	hits  int64
	drops int64
}

// Inc is the sanctioned atomic access that marks hits as an atomic field.
func (c *Counter) Inc() { atomic.AddInt64(&c.hits, 1) }

// Read loads hits plainly: a data race with Inc.
func (c *Counter) Read() int64 { return c.hits } // want: plain access to hits

// Reset writes hits plainly: the write half of the same race.
func (c *Counter) Reset() { c.hits = 0 } // want: plain access to hits

// Drop touches drops, which is never accessed atomically: consistent plain
// access is not a finding.
func (c *Counter) Drop() { c.drops++ }
