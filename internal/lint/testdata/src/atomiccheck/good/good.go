// Package good is the clean twin of atomiccheck/bad: every access mode is
// consistent — fields touched through sync/atomic are touched that way
// everywhere, typed atomics are safe by construction, and mutex-guarded
// plain fields never mix in an atomic call.
package good

import (
	"sync"
	"sync/atomic"
)

// Counter keeps each field in exactly one access discipline.
type Counter struct {
	hits  int64        // always through sync/atomic
	typed atomic.Int64 // methods only: safe by construction
	mu    sync.Mutex
	n     int // guarded by mu, never atomic
}

func (c *Counter) Inc() { atomic.AddInt64(&c.hits, 1) }

func (c *Counter) Read() int64 { return atomic.LoadInt64(&c.hits) }

func (c *Counter) Swap(v int64) int64 { return atomic.SwapInt64(&c.hits, v) }

func (c *Counter) Typed() int64 {
	c.typed.Add(1)
	return c.typed.Load()
}

func (c *Counter) Guarded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}
