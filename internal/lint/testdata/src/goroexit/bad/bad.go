// Package bad seeds goroexit violations: goroutines spawned with no visible
// join — no WaitGroup, no completion channel — that outlive Close/Wait with
// live references to runtime state.
package bad

// Worker spawns drains nobody can wait for.
type Worker struct {
	jobs chan int
	sum  int
}

// Leak spawns a literal that signals nothing.
func (w *Worker) Leak() {
	go func() { // want: not joinable
		for v := range w.jobs {
			w.sum += v
		}
	}()
}

// drain neither touches a WaitGroup nor signals a channel.
func (w *Worker) drain() {
	for v := range w.jobs {
		w.sum += v
	}
}

// LeakNamed spawns a named function that signals nothing either.
func (w *Worker) LeakNamed() {
	go w.drain() // want: not joinable
}
