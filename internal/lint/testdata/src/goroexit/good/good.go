// Package good is the clean twin of goroexit/bad: every spawned goroutine
// is joinable — it signals a WaitGroup, closes or sends on a completion
// channel, or delegates the signal to a helper it statically calls.
package good

import "sync"

type Worker struct {
	wg   sync.WaitGroup
	jobs chan int
	done chan struct{}
}

// Tracked joins through the WaitGroup.
func (w *Worker) Tracked() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for range w.jobs {
		}
	}()
}

// Signalled closes the completion channel on exit.
func (w *Worker) Signalled() {
	go func() {
		defer close(w.done)
		for range w.jobs {
		}
	}()
}

// drain carries the signal itself, so spawning it directly is joinable.
func (w *Worker) drain() {
	defer w.wg.Done()
	for range w.jobs {
	}
}

func (w *Worker) Delegated() {
	w.wg.Add(1)
	go w.drain()
}

// DelegatedLit spawns a literal whose body hands off to the signalling
// helper: the static-call scan finds the join through drain.
func (w *Worker) DelegatedLit() {
	w.wg.Add(1)
	go func() {
		w.drain()
	}()
}

// Result reports completion by sending the answer on a shared channel.
func (w *Worker) Result(out chan int) {
	go func() {
		n := 0
		for v := range w.jobs {
			n += v
		}
		out <- n
	}()
}

func (w *Worker) Wait() { w.wg.Wait() }
