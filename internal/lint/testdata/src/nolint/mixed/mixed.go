// Package mixed exercises the //nolint policy: a justified suppression is
// honored silently, an unjustified one is honored but reported, and an
// unsuppressed violation is reported as usual.
package mixed

// Justified is suppressed with a reason: clean.
func Justified(m map[int]int) int {
	n := 0
	//nolint:mapiter sums are order-insensitive
	for _, v := range m {
		n += v
	}
	return n
}

// Unjustified is suppressed without a reason: the suppression holds but is
// itself flagged.
func Unjustified(m map[int]int) int {
	n := 0
	for _, v := range m { //nolint:mapiter
		n += v
	}
	return n
}

// Unsuppressed is reported as usual.
func Unsuppressed(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
