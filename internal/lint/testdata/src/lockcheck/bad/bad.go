// Package bad seeds lockcheck violations: locks copied by value and
// Lock/Unlock pairs broken across return paths.
package bad

import "sync"

// Guarded holds a mutex by value (fine as a field).
type Guarded struct {
	mu sync.Mutex
	n  int
}

// ByValueReceiver copies the lock with every call.
func (g Guarded) ByValueReceiver() int { // want: value receiver copies mutex
	return g.n
}

// ByValueParam copies the caller's lock.
func ByValueParam(mu sync.Mutex) { // want: parameter copies mutex
	mu.Lock()
	mu.Unlock()
}

// LeakOnReturn holds the lock on the early-return path.
func (g *Guarded) LeakOnReturn(flag bool) int {
	g.mu.Lock() // want: not released on a return path
	if flag {
		return 0
	}
	g.mu.Unlock()
	return g.n
}

// NeverUnlocked takes the lock and forgets it.
func (g *Guarded) NeverUnlocked() {
	g.mu.Lock() // want: no matching Unlock
	g.n++
}

// RW leaks a read lock.
type RW struct {
	mu sync.RWMutex
	n  int
}

// LeakRead has no RUnlock on the early return.
func (r *RW) LeakRead(flag bool) int {
	r.mu.RLock() // want: not released on a return path
	if flag {
		return -1
	}
	r.mu.RUnlock()
	return r.n
}
