// Package good is the clean twin of lockcheck/bad: pointer receivers,
// deferred unlocks, and straight-line critical sections.
package good

import "sync"

// Guarded holds a mutex by value as a field, used through pointers.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Deferred is the canonical shape.
func (g *Guarded) Deferred() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// StraightLine releases in the same block with no return in between.
func (g *Guarded) StraightLine() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// PointerParam shares the caller's lock correctly.
func PointerParam(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// RW pairs read locks correctly.
type RW struct {
	mu sync.RWMutex
	n  int
}

// Read uses a deferred RUnlock.
func (r *RW) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}
