// Package bad seeds lockorder violations: two mutexes acquired in opposite
// orders by different functions, an interprocedural inversion where one leg
// is hidden behind a call, and a self-deadlock re-acquiring a held mutex
// through a helper.
package bad

import "sync"

// Pair holds two locks with no consistent order.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// AB acquires a then b.
func (p *Pair) AB() {
	p.a.Lock() // want: cycle a -> b -> a
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
	p.n++
}

// BA acquires b then a: the opposite order, a deadlock with AB.
func (p *Pair) BA() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	defer p.a.Unlock()
	p.n--
}

// Deep hides one leg of the inversion behind a call.
type Deep struct {
	outer sync.Mutex
	inner sync.Mutex
	state int
}

func (d *Deep) step() {
	d.inner.Lock()
	defer d.inner.Unlock()
	d.state++
}

// Hold orders outer before inner through the call to step.
func (d *Deep) Hold() {
	d.outer.Lock() // want: cycle inner -> outer via step
	defer d.outer.Unlock()
	d.step()
}

// Inverse orders inner before outer directly.
func (d *Deep) Inverse() {
	d.inner.Lock()
	defer d.inner.Unlock()
	d.outer.Lock()
	defer d.outer.Unlock()
}

// Re deadlocks on its own (non-reentrant) mutex through a call chain.
type Re struct {
	mu sync.Mutex
	n  int
}

func (r *Re) locked() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
}

// Reacquire calls locked while already holding mu.
func (r *Re) Reacquire() {
	r.mu.Lock() // want: mu re-acquired via locked
	defer r.mu.Unlock()
	r.locked()
}
