// Package good is the clean twin of lockorder/bad: every multi-lock path
// uses one global order, and the shapes that look like inversions to a
// flow-insensitive checker — goroutine bodies re-acquiring the spawn-site
// lock, callbacks registered under a lock that take it again when they fire,
// hand-over-hand release/re-acquire — are all ordinary.
package good

import "sync"

// Pair always orders a before b.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// Both acquires in the global order.
func (p *Pair) Both() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
	p.n++
}

// AOnly and BOnly each take a single lock: no ordering constraint.
func (p *Pair) AOnly() {
	p.a.Lock()
	defer p.a.Unlock()
	p.n++
}

func (p *Pair) BOnly() {
	p.b.Lock()
	defer p.b.Unlock()
	p.n--
}

// System mirrors the runtime shapes the analyzer must not flag.
type System struct {
	mu      sync.Mutex
	running int
	done    chan struct{}
}

func (s *System) finish() { close(s.done) }

// Launch holds mu while spawning a goroutine whose body re-acquires mu: the
// spawned body is not part of Launch's synchronous flow, so there is no
// self-cycle (the csp.System.launch shape).
func (s *System) Launch(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running++
	go func() {
		f()
		s.mu.Lock()
		defer s.mu.Unlock()
		s.running--
		if s.running == 0 {
			s.finish()
		}
	}()
}

// Register holds mu while handing a callback to an external scheduler; the
// callback re-acquires mu when it later fires on another goroutine (the
// time.AfterFunc shape in fault).
func (s *System) Register(after func(func())) {
	s.mu.Lock()
	defer s.mu.Unlock()
	after(func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.running++
	})
}

// HandOver releases mu before retaking it (the journal group-commit leader
// shape): no ordering edge, the two critical sections are disjoint.
func (s *System) HandOver() {
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	s.mu.Lock()
	s.running--
	s.mu.Unlock()
}

// EarlyOut releases on the early-return path and falls through to a second
// lock otherwise: the branch-sensitive walk must not see mu held at the
// second acquisition.
func (s *System) EarlyOut(p *Pair) {
	s.mu.Lock()
	if s.running == 0 {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	p.a.Lock()
	defer p.a.Unlock()
	p.n++
}
