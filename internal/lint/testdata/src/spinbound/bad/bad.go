// Package bad seeds spinbound violations: runtime.Gosched inside loops with
// no compile-time-visible iteration bound — the spins that livelock a
// GOMAXPROCS=1 run when only the spinning goroutine can advance the
// condition being polled.
package bad

import "runtime"

// Spin polls a condition with no bound.
func Spin(done func() bool) {
	for !done() {
		runtime.Gosched() // want: unbounded spin
	}
}

// SpinBare yields forever.
func SpinBare() {
	for {
		runtime.Gosched() // want: unbounded spin
	}
}

// NestedInner has a bounded outer loop, but the innermost loop enclosing the
// yield is unbounded — the innermost one governs.
func NestedInner(done func() bool) {
	for i := 0; i < 8; i++ {
		for !done() {
			runtime.Gosched() // want: innermost loop unbounded
		}
	}
}

// VariableBound compares against a runtime value, not a constant: the bound
// is not compile-time visible.
func VariableBound(n int) {
	for i := 0; i < n; i++ {
		runtime.Gosched() // want: bound not constant
	}
}
