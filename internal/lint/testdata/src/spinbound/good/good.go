// Package good is the clean twin of spinbound/bad: every Gosched loop
// carries a compile-time constant bound (the flushYields pattern), ranges
// over a finite collection, or is not a spin at all.
package good

import "runtime"

const flushYields = 4

// Bounded spins at most flushYields times before giving up: the sanctioned
// pattern.
func Bounded(idle func() bool) bool {
	for i := 0; i < flushYields; i++ {
		if idle() {
			return true
		}
		runtime.Gosched()
	}
	return false
}

// ConstExpr bounds with constant arithmetic; the type checker still sees a
// constant.
func ConstExpr() {
	for i := 0; i < flushYields*2; i++ {
		runtime.Gosched()
	}
}

// Ranged loops are bounded by the finite collection.
func Ranged(xs []int) {
	for range xs {
		runtime.Gosched()
	}
}

// LoneYield is not a spin: no enclosing loop.
func LoneYield() { runtime.Gosched() }

// Blocking parks on the channel, not the scheduler: an unbounded loop
// without Gosched is fine.
func Blocking(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}
