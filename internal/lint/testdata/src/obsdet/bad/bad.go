// Package bad seeds obsdet violations: direct wall-clock reads in what is
// loaded as internal/obs, whose exports must be byte-stable across runs.
package bad

import "time"

// Stamp records when an event happened — with the wall clock, so two runs of
// the same computation export different bytes.
func Stamp() int64 {
	return time.Now().UnixNano() // want: wall-clock read
}

// Latency measures elapsed wall time directly instead of through the Clock
// seam.
func Latency(start time.Time) time.Duration {
	return time.Since(start) // want: wall-clock read
}

// Remaining is the same mistake through time.Until.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want: wall-clock read
}
