// Package good shows the sanctioned shapes: time reaches the observability
// layer only through an injected clock, and non-reading uses of package time
// (types, constants, timers) are fine.
package good

import "time"

// Clock is the seam wall time must flow through (obs.Clock in the real
// package); deterministic runs inject a fake.
type Clock interface {
	Now() int64
}

// Latency measures elapsed time against the injected clock.
func Latency(c Clock, start int64) int64 {
	return c.Now() - start
}

// Wait uses package time without reading the wall clock.
func Wait(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}
