// Package bad seeds droppederr violations: error results vanishing in
// statement position.
package bad

import "errors"

func fallible() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Sink is a writer-like dependency.
type Sink struct{}

// Close is the classic deferred-and-dropped case.
func (Sink) Close() error { return nil }

// DropDirect discards the only result.
func DropDirect() {
	fallible() // want: dropped error
}

// DropTuple discards an (int, error) pair.
func DropTuple() {
	pair() // want: dropped error
}

// DropDeferred discards a deferred Close error.
func DropDeferred() {
	var s Sink
	defer s.Close() // want: dropped error
}

// DropGo discards the error in a goroutine statement.
func DropGo() {
	go fallible() // want: dropped error
}
