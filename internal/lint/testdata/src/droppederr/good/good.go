// Package good is the clean twin of droppederr/bad: errors handled,
// explicitly discarded, or from conventionally infallible writers.
package good

import (
	"errors"
	"fmt"
	"strings"
)

func fallible() error { return errors.New("boom") }

// Handled propagates the error.
func Handled() error {
	if err := fallible(); err != nil {
		return err
	}
	return nil
}

// ExplicitDiscard makes the drop visible at the call site.
func ExplicitDiscard() {
	_ = fallible()
}

// PrintAllowed uses the fmt print family, whose errors are conventionally
// unreportable on the way out of a command.
func PrintAllowed(w *strings.Builder) {
	fmt.Println("hello")
	fmt.Fprintf(w, "x=%d\n", 1)
	w.WriteString("builder writes cannot fail")
}

// NoError calls a function with no error result.
func NoError() int {
	return len("ok")
}
