// Package good is the clean twin of ordercmp/bad: order queries go through
// the vector package, and the remaining loops are not comparisons.
package good

import "syncstamp/internal/vector"

// Eq uses the package comparator.
func Eq(u, w vector.V) bool { return vector.Eq(u, w) }

// Ordered classifies with Compare.
func Ordered(u, w vector.V) bool { return vector.Compare(u, w) == vector.Before }

// NilCheck is a presence test, not an order comparison.
func NilCheck(v vector.V) bool { return v == nil }

// Sum reads components without comparing two vectors.
func Sum(v vector.V) int {
	n := 0
	for _, x := range v {
		n += x
	}
	return n
}

// MaxComponent compares components of one vector against a scalar.
func MaxComponent(v vector.V) int {
	best := 0
	for k := range v {
		if v[k] > best {
			best = v[k]
		}
	}
	return best
}
