// Package bad seeds ordercmp violations: structural equality and hand-rolled
// loops standing in for the vector order of Equation (2).
package bad

import (
	"reflect"

	"syncstamp/internal/vector"
)

// Stamped wraps a timestamp.
type Stamped struct {
	V vector.V
}

// DeepEqualDirect compares vectors structurally.
func DeepEqualDirect(u, w vector.V) bool {
	return reflect.DeepEqual(u, w) // want: DeepEqual on timestamp
}

// DeepEqualWrapped compares a timestamp-bearing struct structurally.
func DeepEqualWrapped(a, b Stamped) bool {
	return reflect.DeepEqual(a, b) // want: DeepEqual on timestamp-bearing type
}

// HandRolledEq re-implements vector.Eq.
func HandRolledEq(u, w vector.V) bool {
	for k := range u {
		if u[k] != w[k] { // want: hand-rolled comparison
			return false
		}
	}
	return true
}

// HandRolledLeq re-implements vector.Leq.
func HandRolledLeq(u, w vector.V) bool {
	for k := range u {
		if u[k] > w[k] { // want: hand-rolled comparison
			return false
		}
	}
	return true
}
