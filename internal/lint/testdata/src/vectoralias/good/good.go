// Package good is the clean twin of vectoralias/bad: the same operations
// with the ownership discipline observed.
package good

import "syncstamp/internal/vector"

var global vector.V

// Holder stores timestamps it owns.
type Holder struct {
	stamp vector.V
	all   []vector.V
}

// StoreField clones before storing.
func (h *Holder) StoreField(v vector.V) {
	h.stamp = v.Clone()
}

// StoreGlobal clones before storing.
func StoreGlobal(v vector.V) {
	global = v.Clone()
}

// AppendClone clones before retaining.
func (h *Holder) AppendClone(v vector.V) {
	h.all = append(h.all, v.Clone())
}

// MutateOwned clones, then mutates the owned copy.
func MutateOwned(v, w vector.V) vector.V {
	u := v.Clone()
	u.Max(w)
	u[0]++
	return u
}

// ReadOnly reads the loan without retaining it.
func ReadOnly(v vector.V) int {
	sum := 0
	for _, x := range v {
		sum += x
	}
	return sum
}

// Clock mimics core.Clock with the correct accessor.
type Clock struct {
	v vector.V
}

// Current snapshots the internal vector.
func (c *Clock) Current() vector.V {
	return c.v.Clone()
}

// FreshLocal returns a locally built vector; no borrow involved.
func FreshLocal(d int) vector.V {
	v := vector.New(d)
	v[0] = 1
	return v
}
