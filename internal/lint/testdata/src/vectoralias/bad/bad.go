// Package bad seeds vectoralias violations: every way a loaned vector.V can
// leak into long-lived state or be mutated in place.
package bad

import "syncstamp/internal/vector"

// global retains timestamps across calls.
var global vector.V

// Holder stores a timestamp.
type Holder struct {
	stamp vector.V
	all   []vector.V
	byID  map[int]vector.V
}

// StoreField aliases the parameter into a field.
func (h *Holder) StoreField(v vector.V) {
	h.stamp = v // want: stored in field without Clone()
}

// StoreGlobal aliases the parameter into a package variable.
func StoreGlobal(v vector.V) {
	global = v // want: stored in package variable
}

// StoreElems aliases the parameter into slice and map elements.
func (h *Holder) StoreElems(v vector.V) {
	h.all[0] = v  // want: stored in element
	h.byID[7] = v // want: stored in element
}

// AppendAlias retains the alias through append.
func (h *Holder) AppendAlias(v vector.V) {
	h.all = append(h.all, v) // want: appended without Clone()
}

// Mutate writes through the loaned vector.
func Mutate(v vector.V) {
	v[0] = 3 // want: element assignment
	v[1]++   // want: IncDec
}

// MutateViaAlias propagates the borrow through a local alias.
func MutateViaAlias(v vector.V) {
	u := v
	u[0] = 1 // want: element assignment through alias
}

// MergeInPlace mutates the loaned vector with Max.
func MergeInPlace(v, w vector.V) {
	v.Max(w) // want: mutated by Max()
}

// Clock mimics core.Clock.
type Clock struct {
	v vector.V
}

// Current leaks the internal vector.
func (c *Clock) Current() vector.V {
	return c.v // want: accessor returns internal vector
}
