// Package good is the clean twin of mapiter/bad: the sanctioned
// collect-keys-sort-iterate shape, and iteration over ordered containers.
package good

import "sort"

// Render emits entries in sorted key order.
func Render(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var out []int
	for _, k := range keys {
		out = append(out, k, m[k])
	}
	return out
}

// SliceLoop ranges a slice, which is ordered.
func SliceLoop(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
