// Package bad seeds mapiter violations: map iteration whose visit order can
// reach output in a deterministic path.
package bad

import "sort"

// Render emits one line per entry in map order.
func Render(m map[string]int) []string {
	var out []string
	for k, v := range m { // want: map iteration
		out = append(out, k, string(rune('0'+v)))
	}
	return out
}

// FirstMatch returns an arbitrary qualifying key.
func FirstMatch(m map[int]bool) int {
	for k, ok := range m { // want: map iteration
		if ok {
			return k
		}
	}
	return -1
}

// SortedValues collects values (not keys), which still depends on order
// before the sort only by luck of the later sort; the sanctioned shape is
// keys-then-sort, so this is flagged.
func SortedValues(m map[int]int) []int {
	var vals []int
	for _, v := range m { // want: map iteration (appends value, not key)
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}
