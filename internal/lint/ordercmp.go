package lint

import (
	"go/ast"
	"go/token"
)

// OrderCmp enforces that the vector order of Equation (2) is only ever
// evaluated through the vector package's own comparators. reflect.DeepEqual
// and hand-rolled component loops conflate "equal as slices" with "equal in
// the order", ignore the length-incomparability rule, and silently diverge
// from vector.Compare's Incomparable classification — the exact mistakes
// that turn Theorem 4's ⟺ into a one-way implication.
var OrderCmp = &Analyzer{
	Name: "ordercmp",
	Doc:  "compare vector.V with vector.Compare/Eq/Leq, not ==, reflect.DeepEqual, or hand-rolled loops",
	Run:  runOrderCmp,
}

func runOrderCmp(pass *Pass) {
	if pass.Pkg.Path == vectorPkgPath {
		// The comparators themselves live here.
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				// v == nil / v != nil is a presence check, not an order
				// comparison.
				if isUntypedNil(pass, e.X) || isUntypedNil(pass, e.Y) {
					return true
				}
				if isVectorV(pass.TypeOf(e.X)) || isVectorV(pass.TypeOf(e.Y)) {
					pass.Reportf(e.OpPos, "vector.V compared with %s; use vector.Eq (or vector.Compare)", e.Op)
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass, e)
				if fn == nil || fn.FullName() != "reflect.DeepEqual" || len(e.Args) != 2 {
					return true
				}
				for _, arg := range e.Args {
					if containsVector(pass.TypeOf(arg)) {
						pass.Reportf(e.Pos(), "reflect.DeepEqual on a timestamp-bearing type; use vector.Eq/Compare so length rules and ordering semantics apply")
						break
					}
				}
			case *ast.RangeStmt:
				checkHandRolledCompare(pass, e)
			}
			return true
		})
	}
}

// isUntypedNil reports whether e is the predeclared nil.
func isUntypedNil(pass *Pass, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && pass.ObjectOf(id) != nil && pass.ObjectOf(id).Pkg() == nil
}

// checkHandRolledCompare flags a range over a vector.V whose body compares
// components of two vectors — the shape of a re-implemented Compare/Eq/Leq.
func checkHandRolledCompare(pass *Pass, loop *ast.RangeStmt) {
	if !isVectorV(pass.TypeOf(loop.X)) {
		return
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch cmp.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		if indexesVector(pass, cmp.X) && indexesVector(pass, cmp.Y) {
			pass.Reportf(cmp.OpPos, "hand-rolled vector comparison loop; use vector.Compare/Eq/Leq")
			return false
		}
		return true
	})
}

// indexesVector reports whether e is an index expression into a vector.V.
func indexesVector(pass *Pass, e ast.Expr) bool {
	ix, ok := unparen(e).(*ast.IndexExpr)
	return ok && isVectorV(pass.TypeOf(ix.X))
}
