package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden diagnostic files")

// The loader type-checks the standard library from source, so tests share
// one instance to pay that cost once.
var (
	loaderOnce sync.Once
	sharedLd   *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		sharedLd, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedLd
}

// loadTestdata loads testdata/src/<dir> under the fake import path as.
func loadTestdata(t *testing.T, dir, as string) *Package {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := testLoader(t).LoadDirAs(abs, as)
	if err != nil {
		t.Fatalf("loading %s as %s: %v", dir, as, err)
	}
	return pkg
}

// runOn formats the diagnostics of one analyzer over one testdata package,
// with positions relative to the package directory.
func runOn(t *testing.T, a *Analyzer, dir, as string) []string {
	t.Helper()
	pkg := loadTestdata(t, dir, as)
	var out []string
	for _, d := range Run([]*Package{pkg}, []*Analyzer{a}) {
		out = append(out, d.Rel(pkg.Dir))
	}
	return out
}

// TestAnalyzersGolden asserts the exact diagnostics (positions included)
// each analyzer produces on its seeded-violation package, and that each
// clean twin stays silent.
func TestAnalyzersGolden(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *Analyzer
		dir      string
		as       string
		golden   string // empty = must be clean
	}{
		{"vectoralias/bad", VectorAlias, "vectoralias/bad", "syncstamp/internal/tdata/vectoraliasbad", "vectoralias_bad.golden"},
		{"vectoralias/good", VectorAlias, "vectoralias/good", "syncstamp/internal/tdata/vectoraliasgood", ""},
		{"ordercmp/bad", OrderCmp, "ordercmp/bad", "syncstamp/internal/tdata/ordercmpbad", "ordercmp_bad.golden"},
		{"ordercmp/good", OrderCmp, "ordercmp/good", "syncstamp/internal/tdata/ordercmpgood", ""},
		// mapiter is path-scoped: the bad package is loaded as if it lived
		// under internal/core (a deterministic path).
		{"mapiter/bad", MapIter, "mapiter/bad", "syncstamp/internal/core/tdata/mapiterbad", "mapiter_bad.golden"},
		{"mapiter/good", MapIter, "mapiter/good", "syncstamp/internal/core/tdata/mapitergood", ""},
		// The same violations outside a deterministic path are not findings.
		{"mapiter/out-of-scope", MapIter, "mapiter/bad", "syncstamp/internal/experiments/tdata/mapiterbad", ""},
		// internal/obs is a deterministic path too; same violations, same
		// findings (golden shared with the core-scoped case).
		{"mapiter/obs-scope", MapIter, "mapiter/bad", "syncstamp/internal/obs/tdata/mapiterbad", "mapiter_bad.golden"},
		// lockcheck pairing is scoped to csp, monitor, node, and obs.
		{"lockcheck/bad", LockCheck, "lockcheck/bad", "syncstamp/internal/csp/tdata/lockcheckbad", "lockcheck_bad.golden"},
		{"lockcheck/good", LockCheck, "lockcheck/good", "syncstamp/internal/csp/tdata/lockcheckgood", ""},
		{"lockcheck/obs-scope", LockCheck, "lockcheck/bad", "syncstamp/internal/obs/tdata/lockcheckbad", "lockcheck_bad.golden"},
		// lockorder shares lockcheck's audited scope (csp, monitor, node,
		// obs, fault); outside it the same inversions are silent.
		{"lockorder/bad", LockOrder, "lockorder/bad", "syncstamp/internal/csp/tdata/lockorderbad", "lockorder_bad.golden"},
		{"lockorder/good", LockOrder, "lockorder/good", "syncstamp/internal/csp/tdata/lockordergood", ""},
		{"lockorder/node-scope", LockOrder, "lockorder/bad", "syncstamp/internal/node/tdata/lockorderbad", "lockorder_bad.golden"},
		{"lockorder/out-of-scope", LockOrder, "lockorder/bad", "syncstamp/internal/tdata/lockorderbad", ""},
		// atomiccheck is module-wide: mixed access is a race wherever it is.
		{"atomiccheck/bad", AtomicCheck, "atomiccheck/bad", "syncstamp/internal/tdata/atomiccheckbad", "atomiccheck_bad.golden"},
		{"atomiccheck/good", AtomicCheck, "atomiccheck/good", "syncstamp/internal/tdata/atomiccheckgood", ""},
		// spinbound is module-wide too.
		{"spinbound/bad", SpinBound, "spinbound/bad", "syncstamp/internal/tdata/spinboundbad", "spinbound_bad.golden"},
		{"spinbound/good", SpinBound, "spinbound/good", "syncstamp/internal/tdata/spinboundgood", ""},
		// goroexit audits node and csp only.
		{"goroexit/bad", GoroExit, "goroexit/bad", "syncstamp/internal/node/tdata/goroexitbad", "goroexit_bad.golden"},
		{"goroexit/good", GoroExit, "goroexit/good", "syncstamp/internal/node/tdata/goroexitgood", ""},
		{"goroexit/csp-scope", GoroExit, "goroexit/bad", "syncstamp/internal/csp/tdata/goroexitbad", "goroexit_bad.golden"},
		{"goroexit/out-of-scope", GoroExit, "goroexit/bad", "syncstamp/internal/tdata/goroexitbad", ""},
		{"droppederr/bad", DroppedErr, "droppederr/bad", "syncstamp/internal/tdata/droppederrbad", "droppederr_bad.golden"},
		{"droppederr/good", DroppedErr, "droppederr/good", "syncstamp/internal/tdata/droppederrgood", ""},
		// obsdet is scoped to internal/obs: wall-clock reads are findings
		// there and nowhere else.
		{"obsdet/bad", ObsDet, "obsdet/bad", "syncstamp/internal/obs/tdata/obsdetbad", "obsdet_bad.golden"},
		{"obsdet/good", ObsDet, "obsdet/good", "syncstamp/internal/obs/tdata/obsdetgood", ""},
		{"obsdet/out-of-scope", ObsDet, "obsdet/bad", "syncstamp/internal/node/tdata/obsdetbad", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runOn(t, tc.analyzer, tc.dir, tc.as)
			if tc.golden == "" {
				if len(got) != 0 {
					t.Fatalf("expected clean package, got findings:\n%s", strings.Join(got, "\n"))
				}
				return
			}
			compareGolden(t, tc.golden, got)
		})
	}
}

// TestNolintPolicy asserts that justified suppressions are silent, that
// unjustified suppressions still suppress but are flagged, and that
// everything else is reported.
func TestNolintPolicy(t *testing.T) {
	got := runOn(t, MapIter, "nolint/mixed", "syncstamp/internal/core/tdata/nolintmixed")
	compareGolden(t, "nolint_mixed.golden", got)
}

func compareGolden(t *testing.T, name string, got []string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	want := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(want) == 1 && want[0] == "" {
		want = nil
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d\ngot:\n%s\nwant:\n%s",
			len(got), len(want), strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\n got: %s\nwant: %s", i, got[i], want[i])
		}
	}
}

// TestLoadAllModule smoke-tests the module walker: it must find the real
// packages (including this one) and skip testdata.
func TestLoadAllModule(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load skipped in -short mode")
	}
	pkgs, err := testLoader(t).LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	seen := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		seen[p.Path] = true
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("LoadAll descended into testdata: %s", p.Path)
		}
	}
	for _, want := range []string{"syncstamp", "syncstamp/internal/vector", "syncstamp/internal/lint", "syncstamp/cmd/tslint"} {
		if !seen[want] {
			t.Errorf("LoadAll missed %s (got %d packages)", want, len(pkgs))
		}
	}
}
