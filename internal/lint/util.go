package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// vectorPkgPath is the import path of the vector-timestamp package whose
// values the clock analyzers protect.
const vectorPkgPath = "syncstamp/internal/vector"

// isVectorV reports whether t is (an alias of) vector.V.
func isVectorV(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "V" && obj.Pkg() != nil && obj.Pkg().Path() == vectorPkgPath
}

// containsVector reports whether a value of type t contains a vector.V
// anywhere in its representation (directly, in a field, an element, or
// behind a pointer), which makes structural equality on it meaningless for
// timestamp ordering.
func containsVector(t types.Type) bool {
	return containsVectorRec(t, make(map[types.Type]bool))
}

func containsVectorRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isVectorV(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return containsVectorRec(u.Elem(), seen)
	case *types.Array:
		return containsVectorRec(u.Elem(), seen)
	case *types.Pointer:
		return containsVectorRec(u.Elem(), seen)
	case *types.Map:
		return containsVectorRec(u.Key(), seen) || containsVectorRec(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsVectorRec(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	}
	return false
}

// isSyncLocker reports whether t is sync.Mutex or sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// containsLocker reports whether a value of type t holds a sync.Mutex or
// sync.RWMutex by value (not behind a pointer), so that copying the value
// copies the lock.
func containsLocker(t types.Type) bool {
	return containsLockerRec(t, make(map[types.Type]bool))
}

func containsLockerRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isSyncLocker(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockerRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockerRec(u.Elem(), seen)
	}
	return false
}

// pathWithin reports whether pkgPath is path or a subpackage of path.
func pathWithin(pkgPath, path string) bool {
	return pkgPath == path || strings.HasPrefix(pkgPath, path+"/")
}

// funcBodies yields every function body in the file together with its
// declaration context: the FuncDecl when the body belongs to a declared
// function (nil for function literals).
func funcBodies(f *ast.File, visit func(decl *ast.FuncDecl, ft *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn, fn.Type, fn.Body)
			}
		case *ast.FuncLit:
			visit(nil, fn.Type, fn.Body)
		}
		return true
	})
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves the called function object of a call expression, when
// it is a static call to a named function or method.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.ObjectOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.ObjectOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}
