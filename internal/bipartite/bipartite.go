// Package bipartite implements maximum bipartite matching (Hopcroft–Karp)
// and minimum vertex cover via König's theorem. It is the combinatorial
// substrate behind two parts of the paper:
//
//   - Dilworth's theorem (Section 4): the width of the message poset and a
//     minimum chain partition are computed by matching in the split graph of
//     the order relation, giving the offline algorithm its ⌊N/2⌋-size bound.
//   - Vertex covers (Section 3.3, Theorem 5): star-only edge decompositions
//     correspond exactly to vertex covers of the communication topology.
package bipartite

import (
	"fmt"
	"math"
)

// Graph is a bipartite graph with nLeft left vertices and nRight right
// vertices; adjacency is stored left-to-right. Construct with New.
type Graph struct {
	nLeft, nRight int
	adj           [][]int
}

// New returns an empty bipartite graph with the given side sizes.
func New(nLeft, nRight int) *Graph {
	if nLeft < 0 || nRight < 0 {
		panic(fmt.Sprintf("bipartite: negative side size (%d,%d)", nLeft, nRight))
	}
	return &Graph{
		nLeft:  nLeft,
		nRight: nRight,
		adj:    make([][]int, nLeft),
	}
}

// NLeft returns the number of left vertices.
func (g *Graph) NLeft() int { return g.nLeft }

// NRight returns the number of right vertices.
func (g *Graph) NRight() int { return g.nRight }

// AddEdge inserts an edge from left vertex l to right vertex r.
// Duplicate edges are permitted and harmless.
func (g *Graph) AddEdge(l, r int) {
	if l < 0 || l >= g.nLeft {
		panic(fmt.Sprintf("bipartite: left vertex %d out of range [0,%d)", l, g.nLeft))
	}
	if r < 0 || r >= g.nRight {
		panic(fmt.Sprintf("bipartite: right vertex %d out of range [0,%d)", r, g.nRight))
	}
	g.adj[l] = append(g.adj[l], r)
}

// Matching is the result of a maximum-matching computation.
// MatchL[l] is the right vertex matched to left vertex l, or -1.
// MatchR[r] is the left vertex matched to right vertex r, or -1.
type Matching struct {
	MatchL []int
	MatchR []int
	Size   int
}

const inf = math.MaxInt32

// MaxMatching computes a maximum matching with the Hopcroft–Karp algorithm
// in O(E sqrt(V)).
func (g *Graph) MaxMatching() *Matching {
	matchL := make([]int, g.nLeft)
	matchR := make([]int, g.nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, g.nLeft)
	queue := make([]int, 0, g.nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < g.nLeft; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range g.adj[l] {
				nl := matchR[r]
				if nl == -1 {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range g.adj[l] {
			nl := matchR[r]
			if nl == -1 || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	size := 0
	for bfs() {
		for l := 0; l < g.nLeft; l++ {
			if matchL[l] == -1 && dfs(l) {
				size++
			}
		}
	}
	return &Matching{MatchL: matchL, MatchR: matchR, Size: size}
}

// Cover is a vertex cover of a bipartite graph, split by side.
type Cover struct {
	Left  []int
	Right []int
}

// Size returns the total number of cover vertices.
func (c *Cover) Size() int { return len(c.Left) + len(c.Right) }

// MinVertexCover computes a minimum vertex cover from a maximum matching via
// König's theorem: |cover| = |matching|. The complementary independent set
// is a maximum independent set; for split graphs of posets it corresponds to
// a maximum antichain (used by internal/poset).
func (g *Graph) MinVertexCover() (*Cover, *Matching) {
	m := g.MaxMatching()
	// König: start from unmatched left vertices, alternate unmatched/matched
	// edges; cover = (left not visited) ∪ (right visited).
	visitedL := make([]bool, g.nLeft)
	visitedR := make([]bool, g.nRight)
	queue := make([]int, 0, g.nLeft)
	for l := 0; l < g.nLeft; l++ {
		if m.MatchL[l] == -1 {
			visitedL[l] = true
			queue = append(queue, l)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		l := queue[qi]
		for _, r := range g.adj[l] {
			if visitedR[r] {
				continue
			}
			visitedR[r] = true
			if nl := m.MatchR[r]; nl != -1 && !visitedL[nl] {
				visitedL[nl] = true
				queue = append(queue, nl)
			}
		}
	}
	cover := &Cover{}
	for l := 0; l < g.nLeft; l++ {
		if !visitedL[l] {
			cover.Left = append(cover.Left, l)
		}
	}
	for r := 0; r < g.nRight; r++ {
		if visitedR[r] {
			cover.Right = append(cover.Right, r)
		}
	}
	return cover, m
}
