package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New(3, 3)
	m := g.MaxMatching()
	if m.Size != 0 {
		t.Fatalf("empty graph matching size = %d, want 0", m.Size)
	}
	cover, _ := g.MinVertexCover()
	if cover.Size() != 0 {
		t.Fatalf("empty graph cover size = %d, want 0", cover.Size())
	}
}

func TestPerfectMatching(t *testing.T) {
	g := New(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			g.AddEdge(i, j)
		}
	}
	m := g.MaxMatching()
	if m.Size != 3 {
		t.Fatalf("K3,3 matching size = %d, want 3", m.Size)
	}
	validateMatching(t, g, m)
}

func TestSingleEdge(t *testing.T) {
	g := New(1, 1)
	g.AddEdge(0, 0)
	m := g.MaxMatching()
	if m.Size != 1 || m.MatchL[0] != 0 || m.MatchR[0] != 0 {
		t.Fatalf("matching = %+v", m)
	}
}

func TestAugmentingPathNeeded(t *testing.T) {
	// L0-R0, L1-{R0,R1}: greedy can match L0-R0 and then L1 must augment.
	g := New(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	g.AddEdge(1, 1)
	m := g.MaxMatching()
	if m.Size != 2 {
		t.Fatalf("matching size = %d, want 2", m.Size)
	}
	validateMatching(t, g, m)
}

func TestStarGraph(t *testing.T) {
	// One left vertex adjacent to many right vertices: matching is 1.
	g := New(1, 5)
	for r := 0; r < 5; r++ {
		g.AddEdge(0, r)
	}
	if m := g.MaxMatching(); m.Size != 1 {
		t.Fatalf("star matching size = %d, want 1", m.Size)
	}
	// Many left adjacent to one right: still 1.
	g2 := New(5, 1)
	for l := 0; l < 5; l++ {
		g2.AddEdge(l, 0)
	}
	if m := g2.MaxMatching(); m.Size != 1 {
		t.Fatalf("reverse star matching size = %d, want 1", m.Size)
	}
}

func TestDuplicateEdges(t *testing.T) {
	g := New(2, 2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	m := g.MaxMatching()
	if m.Size != 2 {
		t.Fatalf("matching size = %d, want 2", m.Size)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := New(2, 2)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0) },
		func() { g.AddEdge(0, 2) },
		func() { New(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestKonigCoverValid(t *testing.T) {
	g := New(4, 4)
	edges := [][2]int{{0, 0}, {0, 1}, {1, 1}, {2, 1}, {2, 2}, {3, 3}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	cover, m := g.MinVertexCover()
	if cover.Size() != m.Size {
		t.Fatalf("König violated: cover=%d matching=%d", cover.Size(), m.Size)
	}
	assertCovers(t, edges, cover)
}

func validateMatching(t *testing.T, g *Graph, m *Matching) {
	t.Helper()
	seenR := map[int]bool{}
	count := 0
	for l, r := range m.MatchL {
		if r == -1 {
			continue
		}
		count++
		if seenR[r] {
			t.Fatalf("right vertex %d matched twice", r)
		}
		seenR[r] = true
		if m.MatchR[r] != l {
			t.Fatalf("inconsistent matching: MatchL[%d]=%d but MatchR[%d]=%d", l, r, r, m.MatchR[r])
		}
	}
	if count != m.Size {
		t.Fatalf("Size=%d but %d left vertices are matched", m.Size, count)
	}
}

func assertCovers(t *testing.T, edges [][2]int, cover *Cover) {
	t.Helper()
	inL := map[int]bool{}
	inR := map[int]bool{}
	for _, l := range cover.Left {
		inL[l] = true
	}
	for _, r := range cover.Right {
		inR[r] = true
	}
	for _, e := range edges {
		if !inL[e[0]] && !inR[e[1]] {
			t.Fatalf("edge %v not covered by %+v", e, cover)
		}
	}
}

// bruteMaxMatching computes maximum matching by exhaustive search
// (for small graphs only).
func bruteMaxMatching(nLeft int, adj [][]int) int {
	usedR := map[int]bool{}
	var rec func(l int) int
	rec = func(l int) int {
		if l == nLeft {
			return 0
		}
		best := rec(l + 1) // leave l unmatched
		for _, r := range adj[l] {
			if !usedR[r] {
				usedR[r] = true
				if v := 1 + rec(l+1); v > best {
					best = v
				}
				delete(usedR, r)
			}
		}
		return best
	}
	return rec(0)
}

// Property: Hopcroft–Karp size equals brute-force optimum, matching is valid,
// and the König cover is a valid cover of size equal to the matching.
func TestQuickMatchingOptimalAndCoverValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(7), 1+rng.Intn(7)
		g := New(nl, nr)
		var edges [][2]int
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(l, r)
					edges = append(edges, [2]int{l, r})
				}
			}
		}
		m := g.MaxMatching()
		if m.Size != bruteMaxMatching(nl, g.adj) {
			return false
		}
		cover, m2 := g.MinVertexCover()
		if cover.Size() != m2.Size {
			return false
		}
		inL := map[int]bool{}
		inR := map[int]bool{}
		for _, l := range cover.Left {
			inL[l] = true
		}
		for _, r := range cover.Right {
			inR[r] = true
		}
		for _, e := range edges {
			if !inL[e[0]] && !inR[e[1]] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMaxMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := New(200, 200)
	for l := 0; l < 200; l++ {
		for r := 0; r < 200; r++ {
			if rng.Float64() < 0.05 {
				g.AddEdge(l, r)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MaxMatching()
	}
}
