package csp

import (
	"fmt"
	"sort"

	"syncstamp/internal/vector"
)

// Broadcast sends payload synchronously to each peer in increasing id
// order, returning the timestamp of the last delivery. With rendezvous
// semantics this is a sequential fan-out: every receiver must Recv (or
// RecvFrom) once.
func (p *Process) Broadcast(peers []int, payload any) (vector.V, error) {
	ordered := append([]int(nil), peers...)
	sort.Ints(ordered)
	var last vector.V
	for _, q := range ordered {
		v, err := p.Send(q, payload)
		if err != nil {
			return nil, fmt.Errorf("csp: broadcast to %d: %w", q, err)
		}
		last = v
	}
	return last, nil
}

// Gather receives one message from each listed peer (in the given order,
// using RecvFrom so unrelated senders cannot steal the slots) and returns
// the payloads indexed like peers.
func (p *Process) Gather(peers []int) ([]any, error) {
	out := make([]any, len(peers))
	for i, q := range peers {
		msg, err := p.RecvFrom(q)
		if err != nil {
			return nil, fmt.Errorf("csp: gather from %d: %w", q, err)
		}
		out[i] = msg.Payload
	}
	return out, nil
}

// BarrierLeader synchronizes the leader with every listed peer: it gathers
// one arrival from each, then broadcasts a release. After the release, every
// participant's next event happens after every participant's pre-barrier
// events — a full synchronization point whose timestamps prove it.
func (p *Process) BarrierLeader(peers []int) error {
	if _, err := p.Gather(peers); err != nil {
		return err
	}
	if _, err := p.Broadcast(peers, "barrier-release"); err != nil {
		return err
	}
	return nil
}

// BarrierFollower is the counterpart of BarrierLeader: announce arrival,
// then block for the release.
func (p *Process) BarrierFollower(leader int) error {
	if _, err := p.Send(leader, "barrier-arrive"); err != nil {
		return err
	}
	if _, err := p.RecvFrom(leader); err != nil {
		return err
	}
	return nil
}
