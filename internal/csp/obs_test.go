package csp

import (
	"bytes"
	"testing"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
)

// obsTestPrograms is a fixed 3-process computation on a path topology with
// both ordered and concurrent rendezvous plus an internal event.
func obsTestPrograms() (*decomp.Decomposition, []func(*Process) error) {
	dec := decomp.Approximate(graph.Path(3))
	return dec, []func(*Process) error{
		func(p *Process) error {
			if _, err := p.Send(1, "a"); err != nil {
				return err
			}
			_, err := p.RecvFrom(1)
			return err
		},
		func(p *Process) error {
			if _, err := p.RecvFrom(0); err != nil {
				return err
			}
			if _, err := p.RecvFrom(2); err != nil {
				return err
			}
			p.Internal("mid")
			_, err := p.Send(0, "b")
			return err
		},
		func(p *Process) error {
			_, err := p.Send(1, "c")
			return err
		},
	}
}

// TestRunObsDeterministicJSONL pins the tentpole's export contract at the
// runtime level: two separate runs of the same computation (fresh systems,
// fresh goroutine interleavings, fake clocks) produce byte-identical JSONL.
func TestRunObsDeterministicJSONL(t *testing.T) {
	export := func() []byte {
		t.Helper()
		dec, programs := obsTestPrograms()
		o := obs.New()
		o.Clock = &obs.Manual{} // no wall time anywhere near the run
		if _, err := RunObs(dec, programs, testTimeout, o); err != nil {
			t.Fatal(err)
		}
		meta, err := obs.NewMeta(-1, dec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, meta, o.Tracer.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("JSONL differs across two runs:\n%s\n---\n%s", a, b)
	}
}

// TestRunObsMetricsAndOracle checks the metrics a run accumulates and that
// LogsFromEvents closes the loop: the trace alone reconstructs the same
// computation with the same stamps.
func TestRunObsMetricsAndOracle(t *testing.T) {
	dec, programs := obsTestPrograms()
	o := obs.New()
	o.Clock = &obs.Manual{}
	res, err := RunObs(dec, programs, testTimeout, o)
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()
	// 3 messages, each counted once per participating side.
	if got := snap.Counters[obs.MetricRendezvous]; got != 6 {
		t.Errorf("%s = %d, want 6", obs.MetricRendezvous, got)
	}
	if got := snap.Counters[obs.MetricInternalEvents]; got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricInternalEvents, got)
	}
	if got := snap.Histograms[obs.MetricCausalTicks].Count; got != 3 {
		t.Errorf("%s observations = %d, want 3 (one per send)", obs.MetricCausalTicks, got)
	}
	// Process 1 participates in all 3 rendezvous.
	if got := snap.Counters[obs.ProcMetric(obs.MetricRendezvous, 1)]; got != 3 {
		t.Errorf("per-proc counter = %d, want 3", got)
	}

	events := o.Tracer.Events()
	rebuilt, err := Reconstruct(dec, LogsFromEvents(dec.N(), events))
	if err != nil {
		t.Fatalf("reconstructing from trace events: %v", err)
	}
	if rebuilt.Trace.NumMessages() != res.Trace.NumMessages() {
		t.Fatalf("trace rebuild has %d messages, run had %d", rebuilt.Trace.NumMessages(), res.Trace.NumMessages())
	}
	if len(rebuilt.Stamps) != len(res.Stamps) {
		t.Fatalf("trace rebuild has %d stamps, run had %d", len(rebuilt.Stamps), len(res.Stamps))
	}
	for i := range res.Stamps {
		if !vector.Eq(rebuilt.Stamps[i], res.Stamps[i]) {
			t.Errorf("stamp %d: rebuilt %v, run %v", i, rebuilt.Stamps[i], res.Stamps[i])
		}
	}
	if len(rebuilt.Internal) != 1 || rebuilt.Internal[0].Note != "mid" {
		t.Errorf("internal events rebuilt: %+v", rebuilt.Internal)
	}
}

// TestObsDisabledHookAllocs pins the acceptance criterion that a system
// without SetObs pays zero allocations for the instrumentation added to the
// rendezvous paths (the exact call sequence Send/complete/Recv execute).
func TestObsDisabledHookAllocs(t *testing.T) {
	sys := NewSystem(decomp.Approximate(graph.Path(2)))
	stamp := vector.V{1, 2}
	allocs := testing.AllocsPerRun(200, func() {
		sys.obsv.Rendezvous(-1, 0, 1, obs.PhaseSyn, stamp)
		t0 := sys.obsv.Now()
		sys.ins.SendBlockNS.Observe(sys.obsv.Now() - t0)
		sys.ins.SynAckNS.Observe(0)
		sys.ins.RecvBlockNS.Observe(0)
		sys.obsv.Rendezvous(-1, 0, 1, obs.PhaseAdopt, stamp)
		sys.ins.Rendezvous.Add(1)
		sys.ins.Proc(0).Add(1)
		sys.ins.InternalEvents.Add(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled obs hooks allocated %v times per run, want 0", allocs)
	}
}
