package csp

import (
	"fmt"
	"testing"
	"time"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/vector"
)

func TestBroadcastGather(t *testing.T) {
	const n = 5
	dec := decomp.Best(graph.Star(n, 0))
	programs := make([]func(*Process) error, n)
	programs[0] = func(p *Process) error {
		peers := []int{1, 2, 3, 4}
		if _, err := p.Broadcast(peers, "hello"); err != nil {
			return err
		}
		replies, err := p.Gather(peers)
		if err != nil {
			return err
		}
		for i, r := range replies {
			if r != fmt.Sprintf("ack-%d", peers[i]) {
				return fmt.Errorf("reply %d = %v", i, r)
			}
		}
		return nil
	}
	for q := 1; q < n; q++ {
		programs[q] = func(p *Process) error {
			msg, err := p.RecvFrom(0)
			if err != nil {
				return err
			}
			if msg.Payload != "hello" {
				return fmt.Errorf("got %v", msg.Payload)
			}
			_, err = p.Send(0, fmt.Sprintf("ack-%d", p.ID()))
			return err
		}
	}
	res, err := Run(dec, programs, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumMessages() != 8 {
		t.Fatalf("messages = %d, want 8", res.Trace.NumMessages())
	}
}

func TestBroadcastErrorPropagates(t *testing.T) {
	dec := decomp.Best(graph.Path(2))
	_, err := Run(dec, []func(*Process) error{
		func(p *Process) error {
			_, err := p.Broadcast([]int{1, 9}, "x") // 9 out of range
			if err == nil {
				return fmt.Errorf("broadcast to invalid peer succeeded")
			}
			return nil
		},
		func(p *Process) error {
			_, err := p.Recv()
			return err
		},
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Followers record an event before and after the barrier; every
	// pre-barrier event must happen before every post-barrier event.
	const n = 4
	dec := decomp.Best(graph.Star(n, 0))
	programs := make([]func(*Process) error, n)
	programs[0] = func(p *Process) error {
		p.Internal("pre-0")
		if err := p.BarrierLeader([]int{1, 2, 3}); err != nil {
			return err
		}
		p.Internal("post-0")
		return nil
	}
	for q := 1; q < n; q++ {
		programs[q] = func(p *Process) error {
			p.Internal(fmt.Sprintf("pre-%d", p.ID()))
			if err := p.BarrierFollower(0); err != nil {
				return err
			}
			p.Internal(fmt.Sprintf("post-%d", p.ID()))
			return nil
		}
	}
	res, err := Run(dec, programs, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	oracle := order.NewEventOracle(res.Trace)
	// Map internal events back to oracle ids via op index.
	evByOp := map[int]int{}
	for k := 0; k < oracle.NumEvents(); k++ {
		if e := oracle.Event(k); e.Internal {
			evByOp[e.Op] = k
		}
	}
	var pre, post []int
	for _, ev := range res.Internal {
		id, ok := evByOp[ev.Stamp.Op]
		if !ok {
			t.Fatalf("internal event at op %d not found in oracle", ev.Stamp.Op)
		}
		switch note := ev.Note.(string); note[:3] {
		case "pre":
			pre = append(pre, id)
		default:
			post = append(post, id)
		}
	}
	if len(pre) != n || len(post) != n {
		t.Fatalf("pre=%d post=%d, want %d each", len(pre), len(post), n)
	}
	for _, a := range pre {
		for _, b := range post {
			if !oracle.HappenedBefore(a, b) {
				t.Fatalf("pre event %d does not precede post event %d", a, b)
			}
		}
	}
	// And the stamps prove it without the oracle.
	for _, ev := range res.Internal {
		for _, ev2 := range res.Internal {
			n1 := ev.Note.(string)
			n2 := ev2.Note.(string)
			if n1[:3] == "pre" && n2[:3] == "pos" {
				if !ev.Stamp.HappenedBefore(ev2.Stamp) {
					t.Fatalf("stamp of %s does not precede %s", n1, n2)
				}
			}
		}
	}
}

func TestGatherStampsOrdered(t *testing.T) {
	// Gather's deliveries at the leader are totally ordered (same process).
	const n = 4
	dec := decomp.Best(graph.Star(n, 0))
	var stamps []vector.V
	programs := make([]func(*Process) error, n)
	programs[0] = func(p *Process) error {
		for _, q := range []int{3, 1, 2} { // arbitrary order
			msg, err := p.RecvFrom(q)
			if err != nil {
				return err
			}
			stamps = append(stamps, msg.Stamp)
		}
		return nil
	}
	for q := 1; q < n; q++ {
		programs[q] = func(p *Process) error {
			_, err := p.Send(0, nil)
			return err
		}
	}
	if _, err := Run(dec, programs, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(stamps); i++ {
		if !vector.Less(stamps[i-1], stamps[i]) {
			t.Fatalf("gather deliveries not ordered: %v then %v", stamps[i-1], stamps[i])
		}
	}
}
