package csp

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/vector"
)

// clientServerDec builds the one-star-per-server decomposition.
func clientServerDec(t *testing.T, servers, clients int) *decomp.Decomposition {
	t.Helper()
	cover := make([]int, servers)
	for s := range cover {
		cover[s] = s
	}
	d, err := decomp.FromVertexCover(graph.ClientServer(servers, clients, false), cover)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestJoinLive grows a running client-server system: the server blocks for
// messages from a client that does not exist yet at Start time.
func TestJoinLive(t *testing.T) {
	dec := clientServerDec(t, 2, 1)
	sys := NewSystemCap(dec, 8)

	const joiners = 3
	server0 := func(p *Process) error {
		// 1 initial client + 3 joiners, one message each.
		for i := 0; i < 1+joiners; i++ {
			if _, err := p.Recv(); err != nil {
				return err
			}
		}
		return nil
	}
	server1 := func(p *Process) error {
		for i := 0; i < 1+joiners; i++ {
			if _, err := p.Recv(); err != nil {
				return err
			}
		}
		return nil
	}
	client := func(p *Process) error {
		if _, err := p.Send(0, fmt.Sprintf("hello-from-%d", p.ID())); err != nil {
			return err
		}
		_, err := p.Send(1, fmt.Sprintf("hello-from-%d", p.ID()))
		return err
	}
	if err := sys.Start([]func(*Process) error{server0, server1, client}); err != nil {
		t.Fatal(err)
	}
	cur := dec
	for j := 0; j < joiners; j++ {
		grown, _, err := cur.GrowStarVertex([]int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		id, err := sys.Join(grown, client)
		if err != nil {
			t.Fatal(err)
		}
		if id != 3+j {
			t.Fatalf("joiner id = %d, want %d", id, 3+j)
		}
		cur = grown
	}
	res, err := sys.Wait(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (1 + joiners)
	if res.Trace.NumMessages() != want {
		t.Fatalf("messages = %d, want %d", res.Trace.NumMessages(), want)
	}
	if res.Trace.N != 3+joiners {
		t.Fatalf("trace N = %d, want %d", res.Trace.N, 3+joiners)
	}
	// d stays 2 across all joins and Theorem 4 holds on everything.
	p := order.MessagePoset(res.Trace)
	for i := range res.Stamps {
		if len(res.Stamps[i]) != 2 {
			t.Fatalf("stamp %d has %d components, want 2", i, len(res.Stamps[i]))
		}
		for j := range res.Stamps {
			if i != j && vector.Less(res.Stamps[i], res.Stamps[j]) != p.Less(i, j) {
				t.Fatalf("Theorem 4 violated across joins at (%d,%d)", i, j)
			}
		}
	}
}

func TestJoinValidation(t *testing.T) {
	dec := clientServerDec(t, 1, 1)
	sys := NewSystemCap(dec, 3)
	noop := func(p *Process) error { return nil }

	grown, _, err := dec.GrowStarVertex([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Join before Start.
	if _, err := sys.Join(grown, noop); err == nil {
		t.Fatal("Join before Start accepted")
	}
	// Start with a server that waits for the joiner.
	if err := sys.Start([]func(*Process) error{
		func(p *Process) error {
			_, err := p.RecvFrom(2)
			return err
		},
		nil,
	}); err != nil {
		t.Fatal(err)
	}
	// Nil program.
	if _, err := sys.Join(grown, nil); err == nil {
		t.Fatal("nil program accepted")
	}
	// Growth by more than one process.
	grown2, _, err := grown.GrowStarVertex([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Join(grown2, noop); err == nil {
		t.Fatal("growth by two accepted")
	}
	// Valid join unblocks the server.
	if _, err := sys.Join(grown, func(p *Process) error {
		_, err := p.Send(0, "late")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Join after drain.
	if _, err := sys.Join(grown2, noop); err == nil {
		t.Fatal("Join after drain accepted")
	}
}

func TestJoinCapacityExhausted(t *testing.T) {
	dec := clientServerDec(t, 1, 1)
	sys := NewSystemCap(dec, 2) // no room to grow
	if err := sys.Start([]func(*Process) error{
		func(p *Process) error {
			_, err := p.Recv()
			return err
		},
		func(p *Process) error {
			_, err := p.Send(0, "x")
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}
	grown, _, err := dec.GrowStarVertex([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Join(grown, func(p *Process) error { return nil }); err == nil {
		t.Fatal("capacity overflow accepted")
	}
	if _, err := sys.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestStartValidation(t *testing.T) {
	dec := clientServerDec(t, 1, 1)
	sys := NewSystem(dec)
	if err := sys.Start(make([]func(*Process) error, 5)); err == nil {
		t.Fatal("wrong program count accepted")
	}
	if err := sys.Start(make([]func(*Process) error, 2)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(make([]func(*Process) error, 2)); err == nil {
		t.Fatal("double Start accepted")
	}
	// All-nil programs drain immediately.
	if _, err := sys.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestRebaseErrorPathPreserved(t *testing.T) {
	// A genuinely uncovered channel (not a growth artifact) still errors.
	dec := decomp.Approximate(graph.Path(3)) // (0,1), (1,2); no (0,2)
	_, err := Run(dec, []func(*Process) error{
		func(p *Process) error {
			_, err := p.Send(2, nil)
			return err
		},
		nil,
		func(p *Process) error {
			_, err := p.Recv()
			return err
		},
	}, 5*time.Second)
	if err == nil {
		t.Fatal("uncovered channel accepted")
	}
	if errors.Is(err, ErrStopped) {
		t.Fatalf("root cause lost: %v", err)
	}
}
