package csp

import (
	"fmt"

	"syncstamp/internal/trace"
)

// ReplayPrograms builds one program per process that replays the process's
// projection of tr: its messages are sent/received in projection order
// (receives use RecvFrom, making the replay deadlock-free for any valid
// synchronous computation) and its internal ops become Internal events.
// The actual runtime interleaving may differ from tr's linearization, but
// it realizes the same synchronous computation, so the reconstructed trace
// has identical per-process projections and an isomorphic message poset.
func ReplayPrograms(tr *trace.Trace) []func(*Process) error {
	type step struct {
		op   trace.Op
		send bool
	}
	scripts := make([][]step, tr.N)
	for _, op := range tr.Ops {
		switch op.Kind {
		case trace.OpMessage:
			scripts[op.From] = append(scripts[op.From], step{op: op, send: true})
			scripts[op.To] = append(scripts[op.To], step{op: op})
		case trace.OpInternal:
			scripts[op.Proc] = append(scripts[op.Proc], step{op: op})
		}
	}
	programs := make([]func(*Process) error, tr.N)
	for pid := range programs {
		script := scripts[pid]
		programs[pid] = func(p *Process) error {
			for i, st := range script {
				switch {
				case st.op.Kind == trace.OpInternal:
					p.Internal(fmt.Sprintf("replay-int-%d-%d", p.ID(), i))
				case st.send:
					if _, err := p.Send(st.op.To, i); err != nil {
						return fmt.Errorf("replay step %d: %w", i, err)
					}
				default:
					if _, err := p.RecvFrom(st.op.From); err != nil {
						return fmt.Errorf("replay step %d: %w", i, err)
					}
				}
			}
			return nil
		}
	}
	return programs
}

// SameProjections reports whether two traces restrict to identical
// per-process operation sequences (ignoring the global interleaving) —
// the equivalence class that defines a synchronous computation.
func SameProjections(a, b *trace.Trace) bool {
	if a.N != b.N {
		return false
	}
	proj := func(t *trace.Trace) [][]trace.Op {
		out := make([][]trace.Op, t.N)
		for _, op := range t.Ops {
			switch op.Kind {
			case trace.OpMessage:
				out[op.From] = append(out[op.From], op)
				out[op.To] = append(out[op.To], op)
			case trace.OpInternal:
				out[op.Proc] = append(out[op.Proc], op)
			}
		}
		return out
	}
	pa, pb := proj(a), proj(b)
	for p := range pa {
		if len(pa[p]) != len(pb[p]) {
			return false
		}
		for i := range pa[p] {
			if pa[p][i] != pb[p][i] {
				return false
			}
		}
	}
	return true
}
