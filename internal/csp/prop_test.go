package csp_test

import (
	"fmt"
	"testing"
	"time"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// TestPropRuntimeMatchesSequential replays each generated trace's
// per-process projections through the CSP runtime (RecvFrom keeps the
// replay deadlock-free regardless of scheduling) and requires the stamps
// the live processes computed to equal a sequential core.StampTrace over
// the reconstructed interleaving — and to characterize ↦ on it exactly.
func TestPropRuntimeMatchesSequential(t *testing.T) {
	check.Run(t, check.Config{Runs: 12, MaxProcs: 6, MaxMessages: 30}, func(in *check.Input) error {
		tr := in.Trace
		programs := make([]func(*csp.Process) error, tr.N)
		proj := tr.ProcOps()
		for proc := 0; proc < tr.N; proc++ {
			mine := proj[proc]
			me := proc
			programs[proc] = func(p *csp.Process) error {
				for _, k := range mine {
					op := tr.Ops[k]
					switch {
					case op.Kind == trace.OpInternal:
						p.Internal(k)
					case op.From == me:
						if _, err := p.Send(op.To, k); err != nil {
							return err
						}
					default:
						if _, err := p.RecvFrom(op.From); err != nil {
							return err
						}
					}
				}
				return nil
			}
		}
		res, err := csp.Run(in.Dec, programs, 10*time.Second)
		if err != nil {
			return err
		}
		if got, want := res.Trace.NumMessages(), tr.NumMessages(); got != want {
			return fmt.Errorf("runtime reconstructed %d messages, replayed %d", got, want)
		}
		seq, err := core.StampTrace(res.Trace, in.Dec)
		if err != nil {
			return err
		}
		if len(seq) != len(res.Stamps) {
			return fmt.Errorf("runtime produced %d stamps, sequential %d", len(res.Stamps), len(seq))
		}
		for m := range seq {
			if !vector.Eq(seq[m], res.Stamps[m]) {
				return fmt.Errorf("message %d: runtime stamp %v, sequential stamp %v", m, res.Stamps[m], seq[m])
			}
		}
		return check.ExactMatch(res.Trace, func(m1, m2 int) bool {
			return vector.Less(res.Stamps[m1], res.Stamps[m2])
		})
	})
}
