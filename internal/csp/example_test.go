package csp_test

import (
	"fmt"
	"time"

	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/vector"
)

// A request/reply exchange over rendezvous channels: the Figure 5 clocks
// ride on the message and its acknowledgement, and both sides observe the
// same timestamp (the receiver reports its view back in the reply, so all
// printing happens in one goroutine).
func ExampleRun() {
	dec := decomp.Approximate(graph.Path(2))
	res, err := csp.Run(dec, []func(*csp.Process) error{
		func(p *csp.Process) error {
			stamp, err := p.Send(1, "work")
			if err != nil {
				return err
			}
			reply, err := p.Recv()
			if err != nil {
				return err
			}
			fmt.Println("request stamped", stamp)
			fmt.Println("receiver agreed:", vector.Eq(reply.Payload.(vector.V), stamp))
			fmt.Println("reply stamped", reply.Stamp)
			return nil
		},
		func(p *csp.Process) error {
			msg, err := p.Recv()
			if err != nil {
				return err
			}
			_, err = p.Send(0, msg.Stamp) // echo the observed stamp back
			return err
		},
	}, 10*time.Second)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("reconstructed messages:", res.Trace.NumMessages())
	// Output:
	// request stamped (1)
	// receiver agreed: true
	// reply stamped (2)
	// reconstructed messages: 2
}
