// Package csp is a CSP-style synchronous message-passing runtime: processes
// are goroutines, a send blocks until the receiver has delivered the
// message and acknowledged it (the Murty–Garg implementation of synchronous
// ordering the paper assumes in Section 3.2), and the vector clocks of the
// online algorithm (internal/core) ride on the messages and
// acknowledgements exactly as in Figure 5.
//
// The runtime exists to validate the algorithm under real concurrency
// (experiment E14): after a run, the per-process logs are merged back into
// a canonical trace (always possible for a synchronous computation) and the
// observed timestamps are compared against the sequential stamper and the
// ground-truth poset.
//
// # Rendezvous state machine
//
// Both runtimes in this repository — csp over in-process channels and
// internal/node over real transports — implement the same two-phase
// rendezvous, so their logs are interchangeable and Reconstruct serves both:
//
//	sender                          receiver
//	------                          --------
//	SYN: piggyback v_sender  ──►    park until the program receives
//	                                merge: v ← max(v, v_sender); v[g]++
//	park until acknowledged  ◄──    ACK: the merged stamp (= v(m))
//	adopt the stamp: v ← v(m)
//
// In csp the ACK carries the receiver's pre-merge vector and the sender
// merges symmetrically; in node the ACK carries the merged stamp and the
// sender adopts it. The two are equivalent — Figure 5's lines (5)-(6) and
// (9)-(10) compute the same componentwise maximum on both sides — and both
// runtimes log the identical agreed stamp on each side of the exchange,
// which is the invariant Reconstruct's matching relies on.
package csp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/obs"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// ErrStopped is returned by Send/Recv when the run has been aborted (another
// process failed or the deadline expired).
var ErrStopped = errors.New("csp: system stopped")

// Message is a delivered message with its Figure 5 timestamp.
type Message struct {
	From    int
	Payload any
	Stamp   vector.V
}

// envelope travels on a process mailbox; ack carries the receiver's
// pre-merge vector back to the sender (line (4) of Figure 5).
type envelope struct {
	from    int
	payload any
	v       vector.V
	ack     chan vector.V
}

// Process is the handle a program uses to communicate. Each Process is
// owned by exactly one goroutine; its methods must not be called
// concurrently.
type Process struct {
	id    int
	sys   *System
	clock *core.Clock
	log   []Record
	// stash holds envelopes taken off the mailbox while waiting for a
	// specific sender in RecvFrom; their senders stay parked on their acks.
	stash []envelope
}

// ID returns the process index.
func (p *Process) ID() int { return p.id }

// Clock returns a snapshot of the process's current vector.
func (p *Process) Clock() vector.V { return p.clock.Current() }

// Send delivers payload to process q synchronously: it blocks until q has
// received the message and the acknowledgement has come back, then returns
// the message timestamp. Sending on a channel outside the edge
// decomposition, to itself, or after the system stopped is an error.
func (p *Process) Send(q int, payload any) (vector.V, error) {
	if q == p.id {
		return nil, fmt.Errorf("csp: process %d sending to itself", p.id)
	}
	if q < 0 || q >= p.sys.capacity {
		return nil, fmt.Errorf("csp: destination %d out of range [0,%d)", q, p.sys.capacity)
	}
	env := envelope{
		from:    p.id,
		payload: payload,
		v:       p.clock.Current(),
		ack:     make(chan vector.V, 1),
	}
	p.sys.obsv.Rendezvous(-1, p.id, q, obs.PhaseSyn, env.v)
	t0 := p.sys.obsv.Now()
	select {
	case p.sys.mailboxes[q] <- env:
	case <-p.sys.stop:
		return nil, ErrStopped
	}
	t1 := p.sys.obsv.Now()
	p.sys.ins.SendBlockNS.Observe(t1 - t0)
	var peerV vector.V
	select {
	case peerV = <-env.ack:
	case <-p.sys.stop:
		return nil, ErrStopped
	}
	p.sys.ins.SynAckNS.Observe(p.sys.obsv.Now() - t1)
	stamp, err := p.merge(peerV, q)
	if err != nil {
		return nil, err
	}
	p.sys.obsv.Rendezvous(-1, p.id, q, obs.PhaseAdopt, stamp)
	p.sys.ins.Rendezvous.Add(1)
	p.sys.ins.Proc(p.id).Add(1)
	if p.sys.ins.CausalTicks != nil {
		p.sys.ins.CausalTicks.Observe(obs.StampSum(stamp) - obs.StampSum(env.v))
	}
	p.log = append(p.log, Record{Kind: RecordSend, Peer: q, Stamp: stamp})
	return stamp, nil
}

// merge applies lines (5)-(6)/(9)-(10) of Figure 5, lazily rebasing the
// clock when the channel belongs to a decomposition growth this process has
// not observed yet (a peer that joined after the clock's snapshot).
func (p *Process) merge(remote vector.V, peer int) (vector.V, error) {
	stamp, err := p.clock.Merge(remote, peer)
	if err == nil {
		return stamp, nil
	}
	if rb := p.clock.Rebase(p.sys.dec.Load()); rb != nil {
		return nil, err // not a growth issue; report the original error
	}
	return p.clock.Merge(remote, peer)
}

// Recv blocks for the next incoming message from any peer, acknowledges it,
// and returns it with its timestamp. Messages stashed by earlier RecvFrom
// calls are delivered first, in arrival order.
func (p *Process) Recv() (Message, error) {
	var env envelope
	if len(p.stash) > 0 {
		env = p.stash[0]
		copy(p.stash, p.stash[1:])
		p.stash = p.stash[:len(p.stash)-1]
	} else {
		t0 := p.sys.obsv.Now()
		select {
		case env = <-p.sys.mailboxes[p.id]:
		case <-p.sys.stop:
			return Message{}, ErrStopped
		}
		p.sys.ins.RecvBlockNS.Observe(p.sys.obsv.Now() - t0)
	}
	return p.complete(env)
}

// RecvFrom blocks for the next message from the specific process from,
// leaving messages from other senders pending (their senders remain blocked,
// exactly as with one rendezvous channel per process pair). Replaying the
// per-process projections of a synchronous computation with RecvFrom is
// deadlock-free; with the any-source Recv it need not be.
func (p *Process) RecvFrom(from int) (Message, error) {
	for i, env := range p.stash {
		if env.from == from {
			p.stash = append(p.stash[:i], p.stash[i+1:]...)
			return p.complete(env)
		}
	}
	t0 := p.sys.obsv.Now()
	for {
		var env envelope
		select {
		case env = <-p.sys.mailboxes[p.id]:
		case <-p.sys.stop:
			return Message{}, ErrStopped
		}
		if env.from == from {
			p.sys.ins.RecvBlockNS.Observe(p.sys.obsv.Now() - t0)
			return p.complete(env)
		}
		p.stash = append(p.stash, env)
	}
}

// complete performs the receiver's half of the Figure 5 exchange.
func (p *Process) complete(env envelope) (Message, error) {
	// Acknowledge with the pre-merge local vector; the buffered ack channel
	// cannot block (the sender is parked on it).
	cur := p.clock.Current()
	env.ack <- cur
	p.sys.obsv.Rendezvous(-1, p.id, env.from, obs.PhaseAck, cur)
	stamp, err := p.merge(env.v, env.from)
	if err != nil {
		return Message{}, err
	}
	p.sys.obsv.Rendezvous(-1, p.id, env.from, obs.PhaseMerge, stamp)
	p.sys.ins.Rendezvous.Add(1)
	p.sys.ins.Proc(p.id).Add(1)
	p.log = append(p.log, Record{Kind: RecordRecv, Peer: env.from, Stamp: stamp})
	return Message{From: env.from, Payload: env.payload, Stamp: stamp}, nil
}

// Internal records an internal event carrying note (Section 5). Its full
// (prev, succ, c) stamp is resolved when the run completes and the next
// message, if any, is known.
func (p *Process) Internal(note any) {
	p.log = append(p.log, Record{Kind: RecordInternal, Note: note})
	p.sys.ins.InternalEvents.Add(1)
	// The note rendering allocates, so it only happens when tracing is on.
	if o := p.sys.obsv; o != nil && o.Tracer != nil {
		o.Internal(-1, p.id, p.clock.Current(), fmt.Sprint(note))
	}
}

// System runs process programs over a shared edge decomposition. Beyond the
// one-shot Run, it supports processes joining mid-run (the Section 3.3
// scalability property, live): construct with NewSystemCap to reserve
// mailbox capacity, Start the initial programs, Join newcomers with a grown
// decomposition while the run is live, and Wait for the reconstructed
// result.
type System struct {
	capacity  int
	mailboxes []chan envelope
	stop      chan struct{}
	stopOnce  sync.Once

	// dec is the current decomposition; processes rebase to it lazily when
	// they touch a channel their snapshot does not cover.
	dec atomic.Pointer[decomp.Decomposition]

	// obsv and ins are the observability surface and its resolved
	// instruments (SetObs). Both tolerate their zero/nil disabled state on
	// every hot path.
	obsv *obs.Obs
	ins  obs.Instruments

	mu       sync.Mutex
	procs    []*Process
	running  int
	started  bool
	finished bool
	errs     map[int]error
	allDone  chan struct{}
}

// NewSystem prepares a runtime for exactly dec.N() processes.
func NewSystem(dec *decomp.Decomposition) *System {
	return NewSystemCap(dec, dec.N())
}

// NewSystemCap prepares a runtime with room for up to capacity processes,
// of which dec.N() exist initially; the rest may Join later.
func NewSystemCap(dec *decomp.Decomposition, capacity int) *System {
	if capacity < dec.N() {
		capacity = dec.N()
	}
	mbs := make([]chan envelope, capacity)
	for i := range mbs {
		mbs[i] = make(chan envelope) // unbuffered: the rendezvous itself
	}
	s := &System{
		capacity:  capacity,
		mailboxes: mbs,
		stop:      make(chan struct{}),
		errs:      make(map[int]error),
		allDone:   make(chan struct{}),
	}
	s.dec.Store(dec)
	return s
}

// Stop aborts the run; blocked Sends and Recvs return ErrStopped.
func (s *System) Stop() { s.stopOnce.Do(func() { close(s.stop) }) }

// SetObs installs the observability surface. Call before Start: the
// instruments are resolved once here, so afterwards the rendezvous hot
// paths touch only atomics (or, with a nil Obs, nothing at all).
func (s *System) SetObs(o *obs.Obs) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obsv = o
	s.ins = obs.NewInstruments(o.Registry(), s.capacity)
}

// Obs returns the installed observability surface (nil when disabled).
func (s *System) Obs() *obs.Obs { return s.obsv }

// Start launches one program per initial process (nil means "no goroutine;
// immediately done"). It returns an error if already started or if the
// program count does not match the decomposition.
func (s *System) Start(programs []func(*Process) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("csp: system already started")
	}
	dec := s.dec.Load()
	if len(programs) != dec.N() {
		return fmt.Errorf("csp: %d programs for %d processes", len(programs), dec.N())
	}
	s.procs = make([]*Process, dec.N())
	for i := range s.procs {
		s.procs[i] = &Process{id: i, sys: s, clock: core.NewClock(i, dec)}
	}
	s.started = true
	for i, prog := range programs {
		if prog != nil {
			s.launch(s.procs[i], prog)
		}
	}
	if s.running == 0 {
		s.finish()
	}
	return nil
}

// Join adds one new process while the run is live: grown must extend the
// current decomposition by exactly the new process (same d, old channels
// unchanged — decomp.Extends), and must fit the reserved capacity. It
// returns the new process id. Running processes pick up the grown
// decomposition lazily on their next exchange with the newcomer; all
// timestamps remain mutually comparable.
func (s *System) Join(grown *decomp.Decomposition, program func(*Process) error) (int, error) {
	if program == nil {
		return 0, fmt.Errorf("csp: joining process needs a program")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return 0, fmt.Errorf("csp: Join before Start")
	}
	if s.finished {
		return 0, fmt.Errorf("csp: system already drained")
	}
	cur := s.dec.Load()
	if grown.N() != cur.N()+1 {
		return 0, fmt.Errorf("csp: Join adds one process; decomposition grows %d -> %d", cur.N(), grown.N())
	}
	if grown.N() > s.capacity {
		return 0, fmt.Errorf("csp: capacity %d exhausted", s.capacity)
	}
	if err := decomp.Extends(cur, grown); err != nil {
		return 0, fmt.Errorf("csp: %w", err)
	}
	s.dec.Store(grown)
	id := grown.N() - 1
	p := &Process{id: id, sys: s, clock: core.NewClock(id, grown)}
	s.procs = append(s.procs, p)
	s.launch(p, program)
	return id, nil
}

// launch spawns a program goroutine; the caller holds s.mu.
func (s *System) launch(p *Process, prog func(*Process) error) {
	s.running++
	go func() {
		err := prog(p)
		s.mu.Lock()
		defer s.mu.Unlock()
		if err != nil {
			s.errs[p.id] = err
		}
		s.running--
		if s.running == 0 {
			s.finish()
		}
		if err != nil {
			s.Stop()
		}
	}()
}

// finish marks the run drained; the caller holds s.mu.
func (s *System) finish() {
	if !s.finished {
		s.finished = true
		close(s.allDone)
	}
}

// Wait blocks until every launched program has returned (or the timeout
// expires, stopping the system) and reconstructs the computation.
func (s *System) Wait(timeout time.Duration) (*Result, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-s.allDone:
	case <-timer.C:
		s.Stop()
		<-s.allDone
		return nil, fmt.Errorf("csp: run exceeded %v (deadlock or livelock?)", timeout)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Report the root cause: the smallest-id error that is not a mere
	// ErrStopped echo, falling back to any error.
	if len(s.errs) > 0 {
		pick := -1
		for id, err := range s.errs {
			isRoot := !errors.Is(err, ErrStopped)
			if pick == -1 {
				pick = id
				continue
			}
			pickRoot := !errors.Is(s.errs[pick], ErrStopped)
			if (isRoot && !pickRoot) || (isRoot == pickRoot && id < pick) {
				pick = id
			}
		}
		return nil, fmt.Errorf("csp: process %d: %w", pick, s.errs[pick])
	}
	logs := make([][]Record, len(s.procs))
	for i, p := range s.procs {
		logs[i] = p.log
	}
	return Reconstruct(s.dec.Load(), logs)
}

// InternalEvent is an internal event observed in a run, with its Section 5
// stamp.
type InternalEvent struct {
	Note  any
	Stamp core.EventStamp
}

// Result is the outcome of a completed run.
type Result struct {
	// Trace is the reconstructed global computation (a valid linearization
	// of the run).
	Trace *trace.Trace
	// Stamps are the observed message timestamps aligned with
	// Trace.Messages().
	Stamps []vector.V
	// Internal are the observed internal events with resolved stamps, in
	// Trace order.
	Internal []InternalEvent
}

// Run executes one program per process and reconstructs the computation.
// Every process must have a program (nil means "immediately done"). The
// timeout bounds the whole run; on expiry the system stops and Run returns
// an error. Program errors abort the run.
func Run(dec *decomp.Decomposition, programs []func(*Process) error, timeout time.Duration) (*Result, error) {
	return RunObs(dec, programs, timeout, nil)
}

// RunObs is Run with an observability surface attached: the run's rendezvous
// phases and internal events flow into o's tracer and its metrics into o's
// registry. A nil o is exactly Run.
func RunObs(dec *decomp.Decomposition, programs []func(*Process) error, timeout time.Duration, o *obs.Obs) (*Result, error) {
	sys := NewSystem(dec)
	sys.SetObs(o)
	if err := sys.Start(programs); err != nil {
		return nil, err
	}
	return sys.Wait(timeout)
}
