package csp

import "syncstamp/internal/obs"

// LogsFromEvents rebuilds per-process rendezvous logs from an obs trace.
// Only the runtime-independent phases carry log-equivalent information —
// PhaseAdopt is the sender's completed send, PhaseMerge the receiver's
// completed receive, both stamped with the agreed v(m); PhaseInternal is an
// internal event — so a JSONL trace from either runtime feeds Reconstruct
// exactly like the runtime's own logs. This is how tsanalyze trace-report
// oracle-checks a trace: reconstruct the computation from the trace alone
// and compare the stamps it claims against the poset.
func LogsFromEvents(n int, events []obs.Event) [][]Record {
	evs := append([]obs.Event(nil), events...)
	obs.SortEvents(evs)
	logs := make([][]Record, n)
	for _, e := range evs {
		if e.Proc < 0 || e.Proc >= n {
			continue
		}
		switch e.Phase {
		case obs.PhaseAdopt:
			logs[e.Proc] = append(logs[e.Proc], Record{Kind: RecordSend, Peer: e.Peer, Stamp: e.Stamp.Clone()})
		case obs.PhaseMerge:
			logs[e.Proc] = append(logs[e.Proc], Record{Kind: RecordRecv, Peer: e.Peer, Stamp: e.Stamp.Clone()})
		case obs.PhaseInternal:
			logs[e.Proc] = append(logs[e.Proc], Record{Kind: RecordInternal, Note: e.Note})
		}
	}
	return logs
}
