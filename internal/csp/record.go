package csp

import (
	"fmt"
	"sort"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// RecordKind discriminates the operations of a process's rendezvous log.
type RecordKind int

// Record kinds.
const (
	RecordSend RecordKind = iota + 1
	RecordRecv
	RecordInternal
)

// String names the record kind.
func (k RecordKind) String() string {
	switch k {
	case RecordSend:
		return "send"
	case RecordRecv:
		return "recv"
	case RecordInternal:
		return "internal"
	default:
		return fmt.Sprintf("RecordKind(%d)", int(k))
	}
}

// Record is one operation in a process's private rendezvous log, in program
// order. It is the unit both runtimes (internal/csp over channels,
// internal/node over real transports) persist per process: a completed send
// or receive carries the agreed message stamp v(m), an internal event
// carries its note. Per-process logs are all a synchronous computation
// leaves behind, and Reconstruct merges them back into a global trace.
type Record struct {
	// Kind is the operation.
	Kind RecordKind
	// Peer is the other process of a send/recv record.
	Peer int
	// Stamp is the agreed message timestamp of a send/recv record. Both
	// sides of a rendezvous log the identical stamp — that equality is what
	// Reconstruct matches entries by.
	Stamp vector.V
	// Note is the payload of an internal record.
	Note any
}

// Reconstruct merges per-process rendezvous logs (logs[p] is process p's log
// in program order) into a valid global linearization of the synchronous
// computation, under the decomposition the run used. At every step all
// pending internal events are emitted, then some message must have both of
// its log entries at the heads of its participants' logs (the rendezvous
// that completed earliest in real time does); entries are matched by their
// timestamps, which both participants logged identically.
//
// The reconstruction is always possible for logs of a real synchronous run;
// an error indicates logs from different runs, a truncated log, or a
// rendezvous whose two sides disagree on the stamp.
func Reconstruct(dec *decomp.Decomposition, logs [][]Record) (*Result, error) {
	n := len(logs)
	heads := make([]int, n)
	res := &Result{Trace: &trace.Trace{N: n}}

	prev := make([]vector.V, n)
	counter := make([]int, n)
	var pending [][2]int // (process, index into res.Internal) awaiting succ
	zero := vector.New(dec.D())

	remaining := 0
	for _, log := range logs {
		remaining += len(log)
	}
	for remaining > 0 {
		// Emit internal events at any head.
		progress := true
		for progress {
			progress = false
			for pi, log := range logs {
				for heads[pi] < len(log) && log[heads[pi]].Kind == RecordInternal {
					entry := log[heads[pi]]
					pv := zero
					if prev[pi] != nil {
						pv = prev[pi]
					}
					res.Internal = append(res.Internal, InternalEvent{
						Note: entry.Note,
						Stamp: core.EventStamp{
							Proc: pi,
							Op:   len(res.Trace.Ops),
							Prev: pv.Clone(),
							C:    counter[pi],
						},
					})
					pending = append(pending, [2]int{pi, len(res.Internal) - 1})
					counter[pi]++
					res.Trace.MustAppend(trace.Internal(pi))
					heads[pi]++
					remaining--
					progress = true
				}
			}
		}
		if remaining == 0 {
			break
		}
		// Find a matched message at two heads.
		matched := false
		for pi, log := range logs {
			if heads[pi] >= len(log) {
				continue
			}
			entry := log[heads[pi]]
			if entry.Kind != RecordSend {
				continue
			}
			q := entry.Peer
			if q < 0 || q >= n || heads[q] >= len(logs[q]) {
				continue
			}
			peer := logs[q][heads[q]]
			if peer.Kind != RecordRecv || peer.Peer != pi || !vector.Eq(peer.Stamp, entry.Stamp) {
				continue
			}
			// Commit the rendezvous.
			res.Trace.MustAppend(trace.Message(pi, q))
			res.Stamps = append(res.Stamps, entry.Stamp.Clone())
			for _, side := range []int{pi, q} {
				kept := pending[:0]
				for _, pe := range pending {
					if pe[0] == side {
						res.Internal[pe[1]].Stamp.Succ = entry.Stamp.Clone()
					} else {
						kept = append(kept, pe)
					}
				}
				pending = kept
				prev[side] = entry.Stamp
				counter[side] = 0
			}
			heads[pi]++
			heads[q]++
			remaining -= 2
			matched = true
			break
		}
		if !matched {
			return nil, fmt.Errorf("csp: inconsistent logs: no matchable rendezvous among %d remaining entries", remaining)
		}
	}
	// Deterministic ordering of trailing internal events is already given
	// by emission order; events with no later message keep Succ nil (∞).
	sortInternalByOp(res.Internal)
	return res, nil
}

func sortInternalByOp(evs []InternalEvent) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Stamp.Op < evs[j].Stamp.Op })
}
