package csp

import (
	"errors"
	"testing"
	"time"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
)

// TestStopUnblocksRecv: a process parked in Recv with no sender must come
// back with ErrStopped once the system is aborted, not hang.
func TestStopUnblocksRecv(t *testing.T) {
	sys := NewSystem(decomp.Approximate(graph.Path(2)))
	got := make(chan error, 1)
	err := sys.Start([]func(*Process) error{
		func(p *Process) error {
			_, err := p.Recv()
			got <- err
			return err
		},
		nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the receiver park
	sys.Stop()
	select {
	case err := <-got:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("parked Recv returned %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not unblock the parked Recv")
	}
	if _, err := sys.Wait(5 * time.Second); err == nil {
		t.Fatal("aborted run reported success")
	}
}

// TestOpsAfterStop: every blocking primitive must fail fast with ErrStopped
// on an already-aborted system instead of parking forever.
func TestOpsAfterStop(t *testing.T) {
	sys := NewSystem(decomp.Approximate(graph.Complete(3)))
	ops := make(chan error, 3)
	err := sys.Start([]func(*Process) error{
		func(p *Process) error {
			<-p.sys.stop
			_, err := p.Send(1, nil)
			ops <- err
			return err
		},
		func(p *Process) error {
			<-p.sys.stop
			_, err := p.Recv()
			ops <- err
			return err
		},
		func(p *Process) error {
			<-p.sys.stop
			_, err := p.RecvFrom(0)
			ops <- err
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Stop()
	for i := 0; i < 3; i++ {
		select {
		case err := <-ops:
			if !errors.Is(err, ErrStopped) {
				t.Fatalf("op %d after Stop returned %v, want ErrStopped", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("op %d still blocked after Stop", i)
		}
	}
	if _, err := sys.Wait(5 * time.Second); !errors.Is(err, ErrStopped) {
		t.Fatalf("Wait after abort returned %v, want an ErrStopped-rooted error", err)
	}
}

// TestWaitDeadlineStopsParkedSend: an expiring Wait must stop the system so
// that a sender with no matching receiver is released with ErrStopped, and
// Wait itself must report the deadline.
func TestWaitDeadlineStopsParkedSend(t *testing.T) {
	sys := NewSystem(decomp.Approximate(graph.Path(2)))
	got := make(chan error, 1)
	err := sys.Start([]func(*Process) error{
		func(p *Process) error {
			_, err := p.Send(1, "never delivered")
			got <- err
			if errors.Is(err, ErrStopped) {
				return nil // deadline abort, not a program bug
			}
			return err
		},
		nil, // the would-be receiver never runs
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := sys.Wait(100 * time.Millisecond); err == nil {
		t.Fatal("Wait returned success with a parked sender")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline did not fire promptly")
	}
	select {
	case err := <-got:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("parked Send returned %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked Send never released after deadline")
	}
}

// TestRunAfterDrainRejectsJoin: once a run has drained, Join must refuse.
func TestRunAfterDrainRejectsJoin(t *testing.T) {
	dec := decomp.Approximate(graph.Path(2))
	sys := NewSystemCap(dec, 3)
	if err := sys.Start([]func(*Process) error{nil, nil}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	root := dec.Groups()[0].Root
	grown, _, err := dec.GrowStarVertex([]int{root})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Join(grown, func(p *Process) error { return nil }); err == nil {
		t.Fatal("Join accepted after the system drained")
	}
}
