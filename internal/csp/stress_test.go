package csp

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// TestStressRing runs a token around a large ring many times; every message
// shares a process with its predecessor, so the computation is one long
// chain and every stamp must strictly increase.
func TestStressRing(t *testing.T) {
	const n, rounds = 16, 8
	g := graph.Cycle(n)
	dec := decomp.Best(g)
	programs := make([]func(*Process) error, n)
	for i := 0; i < n; i++ {
		programs[i] = func(p *Process) error {
			me := p.ID()
			next := (me + 1) % n
			prev := (me + n - 1) % n
			for r := 0; r < rounds; r++ {
				if me == 0 {
					if r == 0 {
						if _, err := p.Send(next, r); err != nil {
							return err
						}
					}
					if _, err := p.RecvFrom(prev); err != nil {
						return err
					}
					if r+1 < rounds {
						if _, err := p.Send(next, r+1); err != nil {
							return err
						}
					}
				} else {
					if _, err := p.RecvFrom(prev); err != nil {
						return err
					}
					if _, err := p.Send(next, r); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	res, err := Run(dec, programs, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := n * rounds
	if res.Trace.NumMessages() != want {
		t.Fatalf("messages = %d, want %d", res.Trace.NumMessages(), want)
	}
	// A ring token is a total order: stamps must form a chain.
	for i := 1; i < len(res.Stamps); i++ {
		if !vector.Less(res.Stamps[i-1], res.Stamps[i]) {
			t.Fatalf("token chain broken at %d: %v vs %v", i, res.Stamps[i-1], res.Stamps[i])
		}
	}
}

// TestStressManyReplays replays many random computations concurrently sized
// to exercise the scheduler (run under -race in CI).
func TestStressManyReplays(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for round := 0; round < 8; round++ {
		g := graph.RandomConnected(4+rng.Intn(8), 0.4, rng)
		dec := decomp.Best(g)
		tr := trace.Generate(g, trace.GenOptions{Messages: 150, InternalProb: 0.1, Hotspot: 0.5}, rng)
		res, err := Run(dec, ReplayPrograms(tr), 60*time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !SameProjections(tr, res.Trace) {
			t.Fatalf("round %d: different computation reconstructed", round)
		}
		seq, err := core.StampTrace(res.Trace, dec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if !vector.Eq(seq[i], res.Stamps[i]) {
				t.Fatalf("round %d: stamp %d differs", round, i)
			}
		}
	}
}

// TestFailureMidRun injects a failure after some messages; the system must
// abort promptly and report the failing process, and survivors must see
// ErrStopped rather than hanging.
func TestFailureMidRun(t *testing.T) {
	g := graph.Star(4, 0)
	dec := decomp.Best(g)
	boom := errors.New("injected fault")
	programs := []func(*Process) error{
		func(p *Process) error { // hub
			for i := 0; i < 3; i++ {
				if _, err := p.Recv(); err != nil {
					if errors.Is(err, ErrStopped) {
						return nil
					}
					return err
				}
			}
			return nil
		},
		func(p *Process) error {
			_, err := p.Send(0, "ok")
			return err
		},
		func(p *Process) error {
			if _, err := p.Send(0, "ok"); err != nil {
				return err
			}
			return boom
		},
		func(p *Process) error {
			// Deliberately slower so the fault lands first sometimes.
			time.Sleep(10 * time.Millisecond)
			_, err := p.Send(0, "ok")
			if errors.Is(err, ErrStopped) {
				return nil
			}
			return err
		},
	}
	_, err := Run(dec, programs, 10*time.Second)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if !strings.Contains(err.Error(), "process 2") {
		t.Fatalf("error does not identify the failing process: %q", err)
	}
}

// TestStashHeavyFanIn floods one receiver from many senders while it waits
// for a specific late sender; all other envelopes must stash and drain.
func TestStashHeavyFanIn(t *testing.T) {
	const senders = 10
	g := graph.Star(senders+1, senders) // hub is the last process
	dec := decomp.Best(g)
	programs := make([]func(*Process) error, senders+1)
	for i := 0; i < senders; i++ {
		i := i
		programs[i] = func(p *Process) error {
			if i == 0 {
				time.Sleep(30 * time.Millisecond) // the awaited sender is slowest
			}
			_, err := p.Send(senders, i)
			return err
		}
	}
	programs[senders] = func(p *Process) error {
		if _, err := p.RecvFrom(0); err != nil { // forces stashing of others
			return err
		}
		for i := 1; i < senders; i++ {
			if _, err := p.Recv(); err != nil {
				return err
			}
		}
		return nil
	}
	res, err := Run(dec, programs, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumMessages() != senders {
		t.Fatalf("messages = %d, want %d", res.Trace.NumMessages(), senders)
	}
	// Star topology: total order (Lemma 1), and the awaited sender's
	// message must be first.
	p := order.MessagePoset(res.Trace)
	for i := 0; i < p.N(); i++ {
		for j := i + 1; j < p.N(); j++ {
			if p.Concurrent(i, j) {
				t.Fatal("star computation not totally ordered")
			}
		}
	}
	first := res.Trace.Messages()[0]
	if first.From != 0 {
		t.Fatalf("first received message from %d, want 0", first.From)
	}
}
