package csp

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

const testTimeout = 10 * time.Second

func TestPingPong(t *testing.T) {
	dec := decomp.Approximate(graph.Path(2))
	res, err := Run(dec, []func(*Process) error{
		func(p *Process) error {
			if _, err := p.Send(1, "ping"); err != nil {
				return err
			}
			msg, err := p.Recv()
			if err != nil {
				return err
			}
			if msg.Payload != "pong" {
				return fmt.Errorf("got %v", msg.Payload)
			}
			return nil
		},
		func(p *Process) error {
			msg, err := p.Recv()
			if err != nil {
				return err
			}
			if msg.Payload != "ping" {
				return fmt.Errorf("got %v", msg.Payload)
			}
			_, err = p.Send(0, "pong")
			return err
		},
	}, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumMessages() != 2 {
		t.Fatalf("reconstructed %d messages, want 2", res.Trace.NumMessages())
	}
	// Path(2) is a single star: d = 1 and the two messages are ordered.
	if !vector.Eq(res.Stamps[0], vector.V{1}) || !vector.Eq(res.Stamps[1], vector.V{2}) {
		t.Fatalf("stamps = %v", res.Stamps)
	}
}

func TestSenderReceiverAgreeOnStamp(t *testing.T) {
	dec := decomp.Approximate(graph.Path(2))
	var sendStamp, recvStamp vector.V
	_, err := Run(dec, []func(*Process) error{
		func(p *Process) error {
			v, err := p.Send(1, nil)
			sendStamp = v
			return err
		},
		func(p *Process) error {
			msg, err := p.Recv()
			recvStamp = msg.Stamp
			return err
		},
	}, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if !vector.Eq(sendStamp, recvStamp) {
		t.Fatalf("sender stamp %v != receiver stamp %v", sendStamp, recvStamp)
	}
}

func TestSendErrors(t *testing.T) {
	dec := decomp.Approximate(graph.Path(2))
	_, err := Run(dec, []func(*Process) error{
		func(p *Process) error {
			if _, err := p.Send(0, nil); err == nil {
				return errors.New("self-send succeeded")
			}
			if _, err := p.Send(5, nil); err == nil {
				return errors.New("out-of-range send succeeded")
			}
			return nil
		},
		nil,
	}, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUncoveredChannelFails(t *testing.T) {
	// Path(3) decomposition does not cover (0,2).
	dec := decomp.Approximate(graph.Path(3))
	_, err := Run(dec, []func(*Process) error{
		func(p *Process) error {
			_, err := p.Send(2, nil)
			return err
		},
		nil,
		func(p *Process) error {
			_, err := p.Recv()
			return err
		},
	}, testTimeout)
	if err == nil {
		t.Fatal("run with uncovered channel succeeded")
	}
}

func TestProgramErrorAbortsRun(t *testing.T) {
	dec := decomp.Approximate(graph.Path(2))
	boom := errors.New("boom")
	_, err := Run(dec, []func(*Process) error{
		func(p *Process) error { return boom },
		func(p *Process) error {
			_, err := p.Recv() // would block forever without the abort
			if !errors.Is(err, ErrStopped) {
				return fmt.Errorf("expected ErrStopped, got %v", err)
			}
			return nil
		},
	}, testTimeout)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestDeadlockTimesOut(t *testing.T) {
	dec := decomp.Approximate(graph.Path(2))
	start := time.Now()
	_, err := Run(dec, []func(*Process) error{
		func(p *Process) error {
			_, err := p.Send(1, nil)
			if errors.Is(err, ErrStopped) {
				return nil
			}
			return err
		},
		func(p *Process) error {
			_, err := p.Send(0, nil) // both send: classic rendezvous deadlock
			if errors.Is(err, ErrStopped) {
				return nil
			}
			return err
		},
	}, 200*time.Millisecond)
	if err == nil {
		t.Fatal("deadlocked run returned no error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not fire promptly")
	}
}

func TestWrongProgramCount(t *testing.T) {
	dec := decomp.Approximate(graph.Path(3))
	if _, err := Run(dec, make([]func(*Process) error, 2), testTimeout); err == nil {
		t.Fatal("accepted wrong program count")
	}
}

func TestRecvFromStashing(t *testing.T) {
	// P2 waits specifically for P1 while P0's message arrives first; P0's
	// envelope must be stashed and delivered by the later Recv.
	dec := decomp.Approximate(graph.Star(3, 2))
	res, err := Run(dec, []func(*Process) error{
		func(p *Process) error { // P0
			_, err := p.Send(2, "from0")
			return err
		},
		func(p *Process) error { // P1
			time.Sleep(50 * time.Millisecond) // let P0's send arrive first
			_, err := p.Send(2, "from1")
			return err
		},
		func(p *Process) error { // P2
			m1, err := p.RecvFrom(1)
			if err != nil {
				return err
			}
			if m1.From != 1 {
				return fmt.Errorf("RecvFrom(1) delivered from %d", m1.From)
			}
			m0, err := p.Recv()
			if err != nil {
				return err
			}
			if m0.From != 0 {
				return fmt.Errorf("stashed message from %d, want 0", m0.From)
			}
			return nil
		},
	}, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	// P1's message was received first, so it must precede P0's in ↦ (both
	// share P2).
	p := order.MessagePoset(res.Trace)
	msgs := res.Trace.Messages()
	var idx1, idx0 = -1, -1
	for _, m := range msgs {
		if m.From == 1 {
			idx1 = m.Index
		}
		if m.From == 0 {
			idx0 = m.Index
		}
	}
	if !p.Less(idx1, idx0) {
		t.Fatal("stash order not reflected in the reconstructed poset")
	}
}

func TestInternalEventsResolved(t *testing.T) {
	dec := decomp.Approximate(graph.Path(2))
	res, err := Run(dec, []func(*Process) error{
		func(p *Process) error {
			p.Internal("before")
			if _, err := p.Send(1, nil); err != nil {
				return err
			}
			p.Internal("after")
			return nil
		},
		func(p *Process) error {
			_, err := p.Recv()
			return err
		},
	}, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Internal) != 2 {
		t.Fatalf("got %d internal events, want 2", len(res.Internal))
	}
	var before, after *InternalEvent
	for i := range res.Internal {
		switch res.Internal[i].Note {
		case "before":
			before = &res.Internal[i]
		case "after":
			after = &res.Internal[i]
		}
	}
	if before == nil || after == nil {
		t.Fatal("notes lost")
	}
	if before.Stamp.Succ == nil || !vector.Eq(before.Stamp.Succ, res.Stamps[0]) {
		t.Fatalf("before.Succ = %v, want %v", before.Stamp.Succ, res.Stamps[0])
	}
	if after.Stamp.Succ != nil {
		t.Fatal("after the last message Succ must be inf")
	}
	if !before.Stamp.HappenedBefore(after.Stamp) {
		t.Fatal("before → after must hold")
	}
}

// TestE14ReplayMatchesSequential is the E14 integration test: replay random
// computations on the concurrent runtime and verify (1) the reconstructed
// computation is the same synchronous computation, and (2) the concurrent
// stamps equal the sequential stamper's on the reconstructed trace, and (3)
// Theorem 4 holds for the observed stamps against the oracle.
func TestE14ReplayMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 15; round++ {
		g := graph.RandomConnected(2+rng.Intn(6), 0.5, rng)
		dec := decomp.Approximate(g)
		tr := trace.Generate(g, trace.GenOptions{
			Messages:     1 + rng.Intn(40),
			InternalProb: 0.2,
		}, rng)
		res, err := Run(dec, ReplayPrograms(tr), testTimeout)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !SameProjections(tr, res.Trace) {
			t.Fatalf("round %d: reconstructed trace is a different computation", round)
		}
		seq, err := core.StampTrace(res.Trace, dec)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(res.Stamps) {
			t.Fatalf("round %d: %d vs %d stamps", round, len(seq), len(res.Stamps))
		}
		for i := range seq {
			if !vector.Eq(seq[i], res.Stamps[i]) {
				t.Fatalf("round %d msg %d: concurrent stamp %v != sequential %v",
					round, i, res.Stamps[i], seq[i])
			}
		}
		p := order.MessagePoset(res.Trace)
		for i := range res.Stamps {
			for j := range res.Stamps {
				if i != j && vector.Less(res.Stamps[i], res.Stamps[j]) != p.Less(i, j) {
					t.Fatalf("round %d: Theorem 4 violated for (%d,%d)", round, i, j)
				}
			}
		}
	}
}

func TestClientServerConstantVectors(t *testing.T) {
	// Section 3.3's client-server claim: 2 servers, 6 clients, d = 2.
	const servers, clients = 2, 6
	g := graph.ClientServer(servers, clients, false)
	// Section 3.3 decomposes client-server topologies with one star rooted
	// at each server — the vertex-cover construction of Theorem 5.
	dec, err := decomp.FromVertexCover(g, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if dec.D() != servers {
		t.Fatalf("client-server d = %d, want %d", dec.D(), servers)
	}
	programs := make([]func(*Process) error, servers+clients)
	for s := 0; s < servers; s++ {
		programs[s] = func(p *Process) error {
			for i := 0; i < clients; i++ {
				req, err := p.Recv()
				if err != nil {
					return err
				}
				if _, err := p.Send(req.From, "reply"); err != nil {
					return err
				}
			}
			return nil
		}
	}
	for c := 0; c < clients; c++ {
		programs[servers+c] = func(p *Process) error {
			for s := 0; s < servers; s++ {
				if _, err := p.Send(s, "request"); err != nil {
					return err
				}
				if _, err := p.RecvFrom(s); err != nil {
					return err
				}
			}
			return nil
		}
	}
	res, err2 := Run(dec, programs, testTimeout)
	err = err2
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * servers * clients
	if res.Trace.NumMessages() != want {
		t.Fatalf("got %d messages, want %d", res.Trace.NumMessages(), want)
	}
	for _, s := range res.Stamps {
		if len(s) != servers {
			t.Fatalf("stamp %v has %d components, want %d", s, len(s), servers)
		}
	}
	// Cross-check against the oracle.
	p := order.MessagePoset(res.Trace)
	for i := range res.Stamps {
		for j := range res.Stamps {
			if i != j && vector.Less(res.Stamps[i], res.Stamps[j]) != p.Less(i, j) {
				t.Fatalf("Theorem 4 violated for (%d,%d)", i, j)
			}
		}
	}
}

func TestStopIdempotent(t *testing.T) {
	sys := NewSystem(decomp.Approximate(graph.Path(2)))
	sys.Stop()
	sys.Stop() // must not panic
}
