package fault_test

import (
	"math/rand"
	"testing"

	"syncstamp/internal/decomp"
	"syncstamp/internal/fault"
	"syncstamp/internal/graph"
	"syncstamp/internal/node"
	"syncstamp/internal/trace"
)

// FuzzFaultPlan throws arbitrary fault schedules at a fixed-topology run
// over the Loop fabric and requires the invariant the whole subsystem
// rests on: no achievable combination of drops, duplicates, reorders, and
// connection resets may make the recovered run's stamps disagree with the
// ground-truth fault-free replay. Probabilities are capped below 0.5 so
// every schedule keeps at-least-once delivery achievable.
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), byte(0), byte(0), byte(0), uint8(0))
	f.Add(int64(2), byte(64), byte(64), byte(32), uint8(0))
	f.Add(int64(3), byte(120), byte(0), byte(0), uint8(5))
	f.Add(int64(4), byte(0), byte(127), byte(127), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, drop, dup, reorder byte, resetAt uint8) {
		link := fault.LinkFault{
			From:    -1,
			To:      -1,
			Drop:    float64(drop%128) / 256.0,
			Dup:     float64(dup%128) / 256.0,
			Reorder: float64(reorder%128) / 256.0,
		}
		if resetAt > 0 {
			link.ResetAfter = []int{int(resetAt)}
		}
		plan := &fault.Plan{Seed: seed, Links: []fault.LinkFault{link}}
		if err := plan.Validate(); err != nil {
			t.Fatalf("constructed plan invalid: %v", err)
		}

		g := graph.Path(3)
		dec := decomp.Best(g)
		rng := rand.New(rand.NewSource(seed))
		tr := trace.Generate(g, trace.GenOptions{Messages: 10, InternalProb: 0.1}, rng)

		res, results, err := runChaos(dec, plan, chaosRecovery(node.PeerLossWait), projectionPrograms(tr))
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.err != nil {
				t.Fatalf("node %d: %v", i, r.err)
			}
		}
		if err := verifySequential(res, dec, tr.NumMessages()); err != nil {
			t.Fatal(err)
		}
	})
}
