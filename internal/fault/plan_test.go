package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParsePlanRoundTrip(t *testing.T) {
	src := `{
		"seed": 42,
		"links": [
			{"from": -1, "to": 2, "drop": 0.25, "dup": 0.1, "reorder": 0.05,
			 "delayMs": 10, "delayProb": 0.2,
			 "dropFrames": [0, 3, 7], "resetAfter": [5, 12],
			 "partitionAfter": 4, "partitionFrames": 3}
		],
		"crashes": [{"node": 1, "afterFrames": 9}]
	}`
	p, err := ParsePlan([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Links) != 1 || len(p.Crashes) != 1 {
		t.Fatalf("parsed %+v", p)
	}
	l := p.Links[0]
	if l.From != -1 || l.To != 2 || l.Drop != 0.25 || l.DelayMS != 10 {
		t.Fatalf("parsed link %+v", l)
	}
	if got := p.crashAfter(1); got != 9 {
		t.Fatalf("crashAfter(1) = %d, want 9", got)
	}
	if got := p.crashAfter(0); got != 0 {
		t.Fatalf("crashAfter(0) = %d, want 0 (no schedule)", got)
	}
}

func TestParsePlanRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"malformed", `{"seed": `, "parse plan"},
		{"probability", `{"links": [{"from": 0, "to": 1, "drop": 1.5}]}`, "probability"},
		{"endpoint", `{"links": [{"from": -2, "to": 1}]}`, "endpoint"},
		{"delay", `{"links": [{"from": 0, "to": 1, "delayMs": -5}]}`, "delay"},
		{"dropIndex", `{"links": [{"from": 0, "to": 1, "dropFrames": [-1]}]}`, "drop index"},
		{"resets", `{"links": [{"from": 0, "to": 1, "resetAfter": [5, 5]}]}`, "ascending"},
		{"partition", `{"links": [{"from": 0, "to": 1, "partitionFrames": -1}]}`, "partition"},
		{"crash", `{"crashes": [{"node": 0, "afterFrames": 0}]}`, "afterFrames"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParsePlan([]byte(c.src))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("got %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestRuleFirstMatchWins(t *testing.T) {
	p := &Plan{Links: []LinkFault{
		{From: 0, To: 1, Drop: 0.5},
		{From: -1, To: -1, Drop: 0.1},
	}}
	if r := p.rule(0, 1); r == nil || r.Drop != 0.5 {
		t.Fatalf("rule(0,1) = %+v, want the specific link", r)
	}
	if r := p.rule(1, 0); r == nil || r.Drop != 0.1 {
		t.Fatalf("rule(1,0) = %+v, want the wildcard", r)
	}
	empty := &Plan{}
	if r := empty.rule(0, 1); r != nil {
		t.Fatalf("empty plan matched %+v", r)
	}
}

func TestReadPlanFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(path, []byte(`{"seed": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := ReadPlanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 {
		t.Fatalf("seed = %d, want 7", p.Seed)
	}
	if _, err := ReadPlanFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}
