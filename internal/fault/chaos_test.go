package fault_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/fault"
	"syncstamp/internal/graph"
	"syncstamp/internal/node"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// chaosResult is one node's outcome of a faulty cluster run.
type chaosResult struct {
	info  *node.RunInfo
	err   error
	stats fault.Stats
}

// fast recovery tunables for in-memory chaos runs: a dropped frame costs a
// few milliseconds, not the production default's tens.
func chaosRecovery(policy node.PeerLossPolicy) *node.RecoveryConfig {
	return &node.RecoveryConfig{
		OnPeerLoss:      policy,
		RetransmitMin:   2 * time.Millisecond,
		RetransmitMax:   20 * time.Millisecond,
		ReconnectWindow: 5 * time.Second,
	}
}

// runChaos drives a cluster with one process per node over a Loop fabric,
// each node's transport wrapped with the plan's fault schedule, and
// collects the reconstruction on node 0.
func runChaos(dec *decomp.Decomposition, plan *fault.Plan, rec *node.RecoveryConfig,
	programs map[int]func(*node.Process) error) (*csp.Result, []chaosResult, error) {
	nodes := dec.N()
	placement := make([]int, nodes)
	for p := range placement {
		placement[p] = p
	}
	l := node.NewLoop(nodes)
	results := make([]chaosResult, nodes)
	var collected *csp.Result
	var collectErr error
	done := make(chan int, nodes)
	for i := 0; i < nodes; i++ {
		go func(i int) {
			defer func() { done <- i }()
			ft := fault.New(l.Transport(i), plan, i)
			n, err := node.New(node.Config{
				Node:              i,
				Placement:         placement,
				Dec:               dec,
				HandshakeTimeout:  20 * time.Second,
				RendezvousTimeout: 20 * time.Second,
				Recovery:          rec,
			}, ft)
			if err != nil {
				results[i].err = err
				return
			}
			defer n.Close()
			info, err := n.Run(programs)
			results[i] = chaosResult{info: info, err: err, stats: ft.Stats()}
			if err != nil {
				return
			}
			if i == 0 {
				collected, collectErr = n.Collect(info, 20*time.Second)
			} else {
				results[i].err = n.SendReport(0, info)
			}
			results[i].stats = ft.Stats()
		}(i)
	}
	for i := 0; i < nodes; i++ {
		<-done
	}
	return collected, results, collectErr
}

// projectionPrograms replays tr's per-process projections (the prop-test
// idiom: RecvFrom keeps the replay deadlock-free).
func projectionPrograms(tr *trace.Trace) map[int]func(*node.Process) error {
	programs := make(map[int]func(*node.Process) error, tr.N)
	proj := tr.ProcOps()
	for proc := 0; proc < tr.N; proc++ {
		mine := proj[proc]
		me := proc
		programs[proc] = func(p *node.Process) error {
			for _, k := range mine {
				op := tr.Ops[k]
				switch {
				case op.Kind == trace.OpInternal:
					p.Internal(fmt.Sprint(k))
				case op.From == me:
					if _, err := p.Send(op.To); err != nil {
						return err
					}
				default:
					if _, err := p.RecvFrom(op.From); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	return programs
}

// verifySequential checks a reconstructed faulty run against the fault-free
// sequential Figure 5 replay, stamp for stamp, and against Theorem 4.
func verifySequential(res *csp.Result, dec *decomp.Decomposition, wantMessages int) error {
	if got := res.Trace.NumMessages(); got != wantMessages {
		return fmt.Errorf("reconstructed %d messages, want %d (at-least-once delivery leaked a duplicate?)", got, wantMessages)
	}
	seq, err := core.StampTrace(res.Trace, dec)
	if err != nil {
		return err
	}
	for m := range seq {
		if !vector.Eq(seq[m], res.Stamps[m]) {
			return fmt.Errorf("message %d: faulty-run stamp %v, fault-free stamp %v", m, res.Stamps[m], seq[m])
		}
	}
	return check.ExactMatch(res.Trace, func(m1, m2 int) bool {
		return vector.Less(res.Stamps[m1], res.Stamps[m2])
	})
}

// TestChaosMatrixStampsMatchSequential is the tentpole's correctness gate:
// across five topology families and eight seeds each, a computation run
// under an at-least-once fault schedule (drop + duplicate + reorder on
// every link) must produce exactly the stamps of a fault-free sequential
// replay. Retransmission masks the drops, dedup masks the duplicates and
// the retransmissions' own duplicates, and the self-contained codec keeps
// frames decodable out of order.
func TestChaosMatrixStampsMatchSequential(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"path4", graph.Path(4)},
		{"star5", graph.Star(5, 0)},
		{"cycle5", graph.Cycle(5)},
		{"clientserver", graph.ClientServer(2, 3, false)},
		{"complete4", graph.Complete(4)},
	}
	for _, fam := range families {
		for seed := int64(1); seed <= 8; seed++ {
			fam := fam
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", fam.name, seed), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(seed))
				tr := trace.Generate(fam.g, trace.GenOptions{Messages: 18, InternalProb: 0.1}, rng)
				dec := decomp.Best(fam.g)
				plan := &fault.Plan{
					Seed:  seed,
					Links: []fault.LinkFault{{From: -1, To: -1, Drop: 0.15, Dup: 0.15, Reorder: 0.1}},
				}
				res, results, err := runChaos(dec, plan, chaosRecovery(node.PeerLossWait), projectionPrograms(tr))
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range results {
					if r.err != nil {
						t.Fatalf("node %d: %v", i, r.err)
					}
				}
				if err := verifySequential(res, dec, tr.NumMessages()); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestChaosConnectionResetReconnects injects scheduled connection resets
// into a two-node ping-pong and requires the session to resume: the run
// completes, the stamps match the fault-free replay, and the reconnect is
// visible in RunInfo.
func TestChaosConnectionResetReconnects(t *testing.T) {
	g := graph.Path(2)
	dec := decomp.Best(g)
	rounds := 12
	tr := &trace.Trace{N: 2}
	for i := 0; i < rounds; i++ {
		tr.Ops = append(tr.Ops, trace.Message(0, 1), trace.Message(1, 0))
	}
	plan := &fault.Plan{
		Seed:  1,
		Links: []fault.LinkFault{{From: -1, To: -1, ResetAfter: []int{4, 11}}},
	}
	res, results, err := runChaos(dec, plan, chaosRecovery(node.PeerLossWait), projectionPrograms(tr))
	if err != nil {
		t.Fatal(err)
	}
	var reconnects, resets int64
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("node %d: %v", i, r.err)
		}
		reconnects += r.info.Reconnects
		resets += r.stats.Resets
	}
	if resets == 0 {
		t.Fatal("fault plan scheduled resets but none fired")
	}
	if reconnects == 0 {
		t.Fatalf("connections were reset (%d) but no node recorded a reconnect", resets)
	}
	if err := verifySequential(res, dec, tr.NumMessages()); err != nil {
		t.Fatal(err)
	}
}

// TestChaosExcludeKeepsSurvivorsStamping kills one node of a three-node
// run and requires the OnPeerLoss=exclude policy to keep the surviving
// topology stamping: parked rendezvous on the dead peer return ErrPeerLost,
// the survivors' run completes, the victim lands in RunInfo.Excluded, and
// the reconstruction over the surviving logs still matches the sequential
// replay of what was committed.
func TestChaosExcludeKeepsSurvivorsStamping(t *testing.T) {
	g := graph.Complete(3)
	dec := decomp.Best(g)
	victimErr := errors.New("victim dies on schedule")
	programs := map[int]func(*node.Process) error{
		0: func(p *node.Process) error {
			if _, err := p.Send(1); err != nil {
				return err
			}
			if _, err := p.RecvFrom(1); err != nil {
				return err
			}
			// The victim is gone by now (or dies while we are parked); the
			// exclusion broadcast must wake this send with ErrPeerLost.
			if _, err := p.Send(2); !errors.Is(err, node.ErrPeerLost) {
				return fmt.Errorf("send to dead peer: got %v, want ErrPeerLost", err)
			}
			return nil
		},
		1: func(p *node.Process) error {
			if _, err := p.RecvFrom(0); err != nil {
				return err
			}
			if _, err := p.Send(0); err != nil {
				return err
			}
			return nil
		},
		2: func(p *node.Process) error {
			return victimErr
		},
	}
	rec := chaosRecovery(node.PeerLossExclude)
	rec.RetransmitMin = 5 * time.Millisecond
	rec.ReconnectWindow = 200 * time.Millisecond
	res, results, err := runChaos(dec, &fault.Plan{Seed: 1}, rec, programs)
	if err != nil {
		t.Fatal(err)
	}
	if results[2].err == nil || !errors.Is(results[2].err, victimErr) {
		t.Fatalf("victim run: got %v, want %v", results[2].err, victimErr)
	}
	for i := 0; i < 2; i++ {
		if results[i].err != nil {
			t.Fatalf("survivor node %d: %v", i, results[i].err)
		}
		excl := results[i].info.Excluded
		if len(excl) != 1 || excl[0] != 2 {
			t.Fatalf("survivor node %d excluded %v, want [2]", i, excl)
		}
	}
	// Only the 0↔1 round-trip committed; the reconstruction must cover
	// exactly it and stamp it as the fault-free replay would.
	if err := verifySequential(res, dec, 2); err != nil {
		t.Fatal(err)
	}
}

// TestChaosDelayIsMaskedByRetransmission exercises the delay fate: frames
// stall long enough for the sender's backoff to fire, so the same
// rendezvous travels more than once and dedup has to suppress the extras.
func TestChaosDelayIsMaskedByRetransmission(t *testing.T) {
	g := graph.Path(3)
	dec := decomp.Best(g)
	rng := rand.New(rand.NewSource(3))
	tr := trace.Generate(g, trace.GenOptions{Messages: 12}, rng)
	plan := &fault.Plan{
		Seed:  3,
		Links: []fault.LinkFault{{From: -1, To: -1, DelayMS: 15, DelayProb: 0.3}},
	}
	res, results, err := runChaos(dec, plan, chaosRecovery(node.PeerLossWait), projectionPrograms(tr))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("node %d: %v", i, r.err)
		}
	}
	if err := verifySequential(res, dec, tr.NumMessages()); err != nil {
		t.Fatal(err)
	}
}
