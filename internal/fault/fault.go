package fault

import (
	"encoding/binary"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"syncstamp/internal/wire"
)

// Inner is the transport being wrapped. It is structurally identical to the
// node package's Transport interface; declaring it here keeps the injector
// free of a node dependency, so it can wrap any conforming transport.
type Inner interface {
	Dial(node int, deadline time.Time) (net.Conn, error)
	Accept() (net.Conn, error)
	Close() error
}

// reorderFlush bounds how long a reorder-held frame can sit if the link
// goes idle before the next frame arrives to overtake it.
const reorderFlush = 50 * time.Millisecond

// Stats is a snapshot of the fates the injector has applied.
type Stats struct {
	Dropped    int64
	Duplicated int64
	Reordered  int64
	Delayed    int64
	Resets     int64
}

// Transport wraps an Inner transport with the plan's fault schedule. Every
// connection it hands out splits its egress byte stream back into wire
// frames and applies per-link fates to SYN/ACK frames; all other kinds (and
// all report-role connections) pass through verbatim. Link state — frame
// counters, the seeded fate generator, pending resets and partitions — is
// keyed by peer node and shared across reconnects, so a schedule keeps
// advancing through connection churn.
type Transport struct {
	inner Inner
	plan  *Plan
	self  int

	// CrashFn is invoked (outside all injector locks) when this node's
	// scheduled crash threshold is reached. tsnode installs os.Exit; tests
	// install a Stop or a panic. Nil disables scheduled crashes.
	CrashFn func()

	dropped    atomic.Int64
	duplicated atomic.Int64
	reordered  atomic.Int64
	delayed    atomic.Int64
	resets     atomic.Int64

	mu         sync.Mutex
	links      map[int]*link
	sent       int // vector frames sent by this node, for the crash schedule
	crashAfter int
	crashed    bool
}

// New wraps inner with plan's faults, from the point of view of node self.
func New(inner Inner, plan *Plan, self int) *Transport {
	return &Transport{
		inner:      inner,
		plan:       plan,
		self:       self,
		links:      make(map[int]*link),
		crashAfter: plan.crashAfter(self),
	}
}

// Stats snapshots the injector's fate counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Dropped:    t.dropped.Load(),
		Duplicated: t.duplicated.Load(),
		Reordered:  t.reordered.Load(),
		Delayed:    t.delayed.Load(),
		Resets:     t.resets.Load(),
	}
}

// Dial wraps the inner dial; the peer is known immediately.
func (t *Transport) Dial(node int, deadline time.Time) (net.Conn, error) {
	c, err := t.inner.Dial(node, deadline)
	if err != nil {
		return nil, err
	}
	fc := &faultConn{Conn: c, t: t}
	fc.peer.Store(int64(node))
	fc.sniffDone = true // peer known from the dial target
	return fc, nil
}

// Accept wraps the inner accept; the peer is learned by sniffing the
// inbound HELLO.
func (t *Transport) Accept() (net.Conn, error) {
	c, err := t.inner.Accept()
	if err != nil {
		return nil, err
	}
	fc := &faultConn{Conn: c, t: t}
	fc.peer.Store(-1)
	return fc, nil
}

// Close closes the inner transport.
func (t *Transport) Close() error { return t.inner.Close() }

// link returns (creating on first use) the shared fault state for frames
// this node sends toward peer.
func (t *Transport) link(peer int) *link {
	t.mu.Lock()
	defer t.mu.Unlock()
	lk := t.links[peer]
	if lk == nil {
		rule := t.plan.rule(t.self, peer)
		lk = &link{rule: rule}
		if rule != nil {
			// Each directed link gets its own deterministic generator, so
			// fate streams do not depend on how connections interleave.
			seed := t.plan.Seed*1_000_003 + int64(t.self)*8191 + int64(peer)
			lk.rng = rand.New(rand.NewSource(seed))
			lk.drops = make(map[int]bool, len(rule.DropFrames))
			for _, f := range rule.DropFrames {
				lk.drops[f] = true
			}
			lk.resets = append([]int(nil), rule.ResetAfter...)
		}
		t.links[peer] = lk
	}
	return lk
}

// noteSent advances the node-wide frame count for the crash schedule and
// reports whether the scheduled crash fires on this frame.
func (t *Transport) noteSent() bool {
	if t.crashAfter <= 0 {
		return false
	}
	t.mu.Lock()
	t.sent++
	fire := !t.crashed && t.sent >= t.crashAfter
	if fire {
		t.crashed = true
	}
	t.mu.Unlock()
	return fire
}

// link is the per-(self → peer) fault state, shared by every connection to
// that peer across reconnects.
type link struct {
	mu      sync.Mutex
	rule    *LinkFault
	rng     *rand.Rand
	frames  int          // SYN/ACK frames seen on this link
	drops   map[int]bool // deterministic drop indices
	resets  []int        // pending reset thresholds, ascending
	partEnd int          // partition window end (frames < partEnd after start drop)
	held    []byte       // reorder: frame waiting to be overtaken
	heldC   net.Conn     // the raw conn the held frame belongs to
	timer   *time.Timer  // idle flush for the held frame
}

// fate is the decision for one frame, computed under the link lock.
type fate struct {
	drop    bool
	dup     bool
	reorder bool
	delay   time.Duration
	reset   bool
}

// decide draws the frame's fates. Every probabilistic fate draws exactly
// once, in a fixed order, whether or not it applies — the generator stream
// stays aligned with the frame index no matter which fates fire. A jitter
// rule appends its own draw after the four fate draws; because the draw
// happens on every frame of the link, the latency schedule is as replayable
// as the fates (distribution draws may consume a variable number of
// underlying values, but the call sequence per frame index is fixed, which
// is all determinism needs).
func (lk *link) decide() fate {
	r := lk.rule
	idx := lk.frames
	lk.frames++
	pDrop := lk.rng.Float64()
	pDup := lk.rng.Float64()
	pReorder := lk.rng.Float64()
	pDelay := lk.rng.Float64()

	var f fate
	if r.PartitionFrames > 0 && idx >= r.PartitionAfter && idx < r.PartitionAfter+r.PartitionFrames {
		f.drop = true
	} else if lk.drops[idx] {
		f.drop = true
	} else if pDrop < r.Drop {
		f.drop = true
	}
	if !f.drop {
		f.dup = pDup < r.Dup
		f.reorder = pReorder < r.Reorder
	}
	if r.DelayProb > 0 && pDelay < r.DelayProb {
		f.delay = time.Duration(r.DelayMS) * time.Millisecond
	}
	if r.Jitter != nil {
		f.delay += lk.jitter(r.Jitter)
	}
	if len(lk.resets) > 0 && lk.frames >= lk.resets[0] {
		lk.resets = lk.resets[1:]
		f.reset = true
	}
	return f
}

// jitter draws one latency from the rule's distribution, clamped to the cap
// (10·mean when unset). Called with lk.mu held (the rng is lock-guarded
// link state).
func (lk *link) jitter(j *JitterSpec) time.Duration {
	if j.MeanMS <= 0 {
		return 0
	}
	var ms float64
	switch j.Dist {
	case JitterLognormal:
		sigma := j.Sigma
		if sigma == 0 {
			sigma = 0.5
		}
		ms = j.MeanMS * math.Exp(sigma*lk.rng.NormFloat64())
	case JitterPareto:
		alpha := j.Alpha
		if alpha == 0 {
			alpha = 2.5
		}
		// Scale xm so the distribution's mean is MeanMS, then invert the
		// CDF: x = xm / (1-u)^(1/alpha).
		xm := j.MeanMS * (alpha - 1) / alpha
		u := lk.rng.Float64()
		ms = xm / math.Pow(1-u, 1/alpha)
	default: // JitterFixed — still draw nothing; fixed needs no randomness
		ms = j.MeanMS
	}
	cap := j.CapMS
	if cap <= 0 {
		cap = 10 * j.MeanMS
	}
	if ms > cap {
		ms = cap
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// faultConn wraps one stream. Egress writes are reassembled into frames
// and run through the link schedule; ingress reads pass through, with the
// first inbound frame sniffed on accepted connections to learn the peer.
type faultConn struct {
	net.Conn
	t    *Transport
	peer atomic.Int64 // -1 until known

	wmu       sync.Mutex
	wbuf      []byte
	role      byte
	roleKnown bool
	exempt    bool // egress stopped parsing as frames; bytes pass through raw

	rmu       sync.Mutex
	rbuf      []byte
	sniffDone bool
}

// Read passes bytes through, sniffing the first inbound frame on accepted
// connections: a data-role HELLO binds the connection to its peer node (so
// egress injection knows which link schedule applies); a report-role HELLO
// permanently exempts the connection.
func (c *faultConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.rmu.Lock()
		if !c.sniffDone {
			c.sniff(p[:n])
		}
		c.rmu.Unlock()
	}
	return n, err
}

// sniff accumulates inbound bytes until the first frame is complete, then
// parses just enough of it (kind, role, node) to identify the peer.
// Called with rmu held.
func (c *faultConn) sniff(b []byte) {
	c.rbuf = append(c.rbuf, b...)
	size, n := binary.Uvarint(c.rbuf)
	if n <= 0 || size == 0 || size > wire.MaxFrame {
		if n < 0 || size > wire.MaxFrame {
			c.sniffDone = true // malformed; never inject on this conn
		}
		return // need more bytes
	}
	if uint64(len(c.rbuf)-n) < size {
		return // first frame not complete yet
	}
	payload := c.rbuf[n : n+int(size)]
	c.sniffDone = true
	c.rbuf = nil
	if len(payload) < 2 || wire.Kind(payload[0]) != wire.KindHello {
		return // protocol violation; leave the conn exempt
	}
	if payload[1] != wire.RoleData {
		return // report stream: exempt
	}
	node, n2 := binary.Uvarint(payload[2:])
	if n2 <= 0 {
		return
	}
	c.peer.Store(int64(node))
}

// Write reassembles the egress byte stream into frames and applies the
// link schedule to each complete one. One Write may carry many frames — the
// coalescing writer batches a burst of SYNs/ACKs into a single transport
// write — and each gets its own fate draw, so fault semantics stay
// per-frame, not per-write. A Write may equally end mid-frame (a bufio
// buffer spilling); the fragment waits in wbuf for the rest. It always
// reports the full input as written — a dropped frame is "sent" as far as
// the caller can tell, which is exactly the loss model the recovery
// protocol is built for.
func (c *faultConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.exempt {
		if _, err := c.Conn.Write(p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	c.wbuf = append(c.wbuf, p...)
	for len(c.wbuf) > 0 {
		size, n := binary.Uvarint(c.wbuf)
		if n == 0 {
			break // incomplete header; wait for more bytes
		}
		if n < 0 || size == 0 || size > wire.MaxFrame {
			// An implausible header can never resolve into a frame: parsing
			// would otherwise stall (and buffer) this stream forever. Stop
			// injecting and pass everything through raw.
			c.exempt = true
			buffered := c.wbuf
			c.wbuf = nil
			if _, err := c.Conn.Write(buffered); err != nil {
				return 0, err
			}
			return len(p), nil
		}
		if uint64(len(c.wbuf)-n) < size {
			break // incomplete payload; wait for more bytes
		}
		total := n + int(size)
		frame := append([]byte(nil), c.wbuf[:total]...)
		c.wbuf = c.wbuf[total:]
		if err := c.writeFrame(frame); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// writeFrame applies the schedule to one complete egress frame. Called
// with wmu held.
func (c *faultConn) writeFrame(frame []byte) error {
	kind, ok := frameKind(frame)
	if !ok {
		_, err := c.Conn.Write(frame)
		return err
	}
	if !c.roleKnown {
		if kind == wire.KindHello {
			// The first egress frame is always our HELLO; its role byte
			// says whether this stream ever carries injectable traffic.
			c.roleKnown = true
			c.role = roleOf(frame)
		}
		_, err := c.Conn.Write(frame)
		return err
	}
	peer := int(c.peer.Load())
	if c.role != wire.RoleData || peer < 0 || (kind != wire.KindSyn && kind != wire.KindAck) {
		_, err := c.Conn.Write(frame)
		return err
	}

	t := c.t
	lk := t.link(peer)
	crash := t.noteSent()
	if lk.rule == nil {
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
		if crash && t.CrashFn != nil {
			t.CrashFn()
		}
		return nil
	}

	lk.mu.Lock()
	f := lk.decide()
	if f.delay > 0 {
		// Stalling under the link lock stalls everything queued behind this
		// frame on the connection — the intended head-of-line delay.
		t.delayed.Add(1)
		time.Sleep(f.delay)
	}
	var out [][]byte
	if f.drop {
		t.dropped.Add(1)
	} else if lk.held != nil {
		// A frame is waiting to be overtaken: this one goes first.
		out = append(out, frame)
		if f.dup {
			t.duplicated.Add(1)
			out = append(out, frame)
		}
		out = append(out, lk.held)
		lk.held = nil
		if lk.timer != nil {
			lk.timer.Stop()
			lk.timer = nil
		}
	} else if f.reorder {
		t.reordered.Add(1)
		lk.held = frame
		lk.heldC = c.Conn
		lk.timer = time.AfterFunc(reorderFlush, func() { lk.flushHeld() })
		if f.dup {
			// The duplicate travels now; the original arrives late.
			t.duplicated.Add(1)
			out = append(out, frame)
		}
	} else {
		out = append(out, frame)
		if f.dup {
			t.duplicated.Add(1)
			out = append(out, frame)
		}
	}
	var werr error
	for _, b := range out {
		if _, err := c.Conn.Write(b); err != nil {
			werr = err
			break
		}
	}
	lk.mu.Unlock()
	if werr != nil {
		return werr
	}
	if f.reset {
		t.resets.Add(1)
		_ = c.Conn.Close()
	}
	if crash && t.CrashFn != nil {
		t.CrashFn()
	}
	return nil
}

// flushHeld emits a reorder-held frame that was never overtaken (the link
// went idle). A write error here is ignored: the connection is dying, and
// the held frame becomes an ordinary loss for the recovery protocol.
func (lk *link) flushHeld() {
	lk.mu.Lock()
	b, conn := lk.held, lk.heldC
	lk.held = nil
	lk.heldC = nil
	lk.timer = nil
	lk.mu.Unlock()
	if b != nil && conn != nil {
		_, _ = conn.Write(b)
	}
}

// frameKind extracts the wire kind of a complete length-prefixed frame.
func frameKind(frame []byte) (wire.Kind, bool) {
	_, n := binary.Uvarint(frame)
	if n <= 0 || n >= len(frame) {
		return 0, false
	}
	return wire.Kind(frame[n]), true
}

// roleOf extracts the role byte of a complete HELLO frame.
func roleOf(frame []byte) byte {
	_, n := binary.Uvarint(frame)
	if n <= 0 || n+1 >= len(frame) {
		return wire.RoleData
	}
	return frame[n+1]
}
