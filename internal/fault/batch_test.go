package fault_test

import (
	"testing"
	"time"

	"syncstamp/internal/fault"
	"syncstamp/internal/node"
	"syncstamp/internal/vector"
	"syncstamp/internal/wire"
)

// TestBatchedWriteDropsSingleFrame pins the injector's per-frame semantics
// under the coalescing writer: one transport Write carries three SYN frames
// back to back, and the plan drops link frame index 1. The injector must
// split the batch, drop exactly the middle SYN, and deliver the other two
// intact — fates attach to frames, never to writes.
func TestBatchedWriteDropsSingleFrame(t *testing.T) {
	const d = 2
	l := node.NewLoop(2)
	plan := &fault.Plan{
		Seed:  1,
		Links: []fault.LinkFault{{From: 0, To: 1, DropFrames: []int{1}}},
	}
	ft := fault.New(l.Transport(0), plan, 0)

	type got struct {
		frames []*wire.Frame
		err    error
	}
	done := make(chan got, 1)
	go func() {
		c, err := l.Transport(1).Accept()
		if err != nil {
			done <- got{err: err}
			return
		}
		defer c.Close()
		dec := wire.NewDecoder(c, d)
		var frames []*wire.Frame
		for {
			f, err := dec.Decode()
			if err != nil {
				done <- got{frames: frames, err: err}
				return
			}
			frames = append(frames, f)
			if f.Kind == wire.KindBye {
				done <- got{frames: frames}
				return
			}
		}
	}()

	c, err := ft.Dial(1, time.Now().Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	enc := wire.NewEncoder(c, d)
	enc.SetBatch(true)
	// Loss-tolerant streams encode dense, like the runtime does whenever
	// recovery is armed: a dropped delta frame must not desync its
	// successors.
	enc.SelfContained = true

	// The HELLO flushes alone: it binds the connection's role so the SYNs
	// behind it are injectable.
	if err := enc.Encode(&wire.Frame{Kind: wire.KindHello, Role: wire.RoleData, Node: 0, Procs: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	// Three SYNs coalesce into one Write — link frame indices 0, 1, 2.
	for seq := uint64(1); seq <= 3; seq++ {
		v := vector.New(d)
		v[0] = int(seq)
		if err := enc.Encode(&wire.Frame{Kind: wire.KindSyn, From: 0, To: 1, Seq: seq, Vec: v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&wire.Frame{Kind: wire.KindBye}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("far side: %v (frames so far: %d)", res.err, len(res.frames))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var seqs []uint64
	for _, f := range res.frames {
		if f.Kind == wire.KindSyn {
			seqs = append(seqs, f.Seq)
		}
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 3 {
		t.Fatalf("far side saw SYN seqs %v, want [1 3] (middle frame of the batch dropped)", seqs)
	}
	if got := ft.Stats().Dropped; got != 1 {
		t.Fatalf("Stats().Dropped = %d, want 1", got)
	}
}
