// Package fault is the deterministic fault injector for the distributed
// runtime: a seeded wrapper over a node Transport that drops, delays,
// duplicates, and reorders vector frames, resets and partitions links, and
// crashes nodes on schedule — all driven by a declarative Plan, with no
// wall-clock randomness anywhere. Two runs of the same computation under
// the same plan and seed inject the same fates into the same frames, which
// is what makes chaos runs replayable and their traces diffable.
//
// The injector sits below the wire codec and above the transport: it sees
// the length-prefixed frame stream each connection writes, splits it back
// into frames, and applies per-link fates to SYN/ACK frames only. HELLO,
// BYE, and report streams pass through untouched — faults model a lossy
// network during the run, not a corrupted handshake, and the recovery
// protocol under test (retransmission, dedup, reconnection, journals) is
// exactly the machinery that must turn this loss back into the fault-free
// stamps.
package fault

import (
	"encoding/json"
	"fmt"
	"os"
)

// LinkFault describes the fates injected on one directed link (frames sent
// by node From toward node To; -1 is a wildcard). Frame indices count the
// SYN/ACK frames sent on the link, starting at 0; handshake and report
// frames are invisible to the schedule, so indices are stable across runs.
type LinkFault struct {
	From int `json:"from"`
	To   int `json:"to"`

	// Probabilistic fates, drawn from the link's seeded generator: each
	// frame draws once per fate, in a fixed order, so the fate stream is a
	// pure function of (seed, link, frame index).
	Drop    float64 `json:"drop,omitempty"`
	Dup     float64 `json:"dup,omitempty"`
	Reorder float64 `json:"reorder,omitempty"`

	// DelayMS stalls a frame (and everything queued behind it on the
	// connection) when the delay draw fires.
	DelayMS   int     `json:"delayMs,omitempty"`
	DelayProb float64 `json:"delayProb,omitempty"`

	// DropFrames drops exactly these frame indices — the deterministic
	// counterpart of Drop, used where replay must be byte-identical.
	DropFrames []int `json:"dropFrames,omitempty"`

	// ResetAfter closes the link's connection after that many frames have
	// been sent on it; each entry is consumed once, in order, so a
	// reconnected session is not immediately killed again.
	ResetAfter []int `json:"resetAfter,omitempty"`

	// PartitionAfter/PartitionFrames drop every frame in the index window
	// [PartitionAfter, PartitionAfter+PartitionFrames) — a temporary
	// one-way partition measured in traffic, not wall time.
	PartitionAfter  int `json:"partitionAfter,omitempty"`
	PartitionFrames int `json:"partitionFrames,omitempty"`
}

// Crash schedules a node kill: after the node has sent AfterFrames vector
// frames (across all its links), the transport invokes CrashFn — tsnode
// wires os.Exit, tests wire a panic or a Stop.
type Crash struct {
	Node        int `json:"node"`
	AfterFrames int `json:"afterFrames"`
}

// Plan is a declarative fault schedule, JSON-encodable for tsnode
// -fault-plan. The zero plan injects nothing.
type Plan struct {
	// Seed drives every probabilistic fate. Each directed link derives its
	// own generator from (Seed, from, to), so links are independent and a
	// run is replayable regardless of connection interleaving.
	Seed    int64       `json:"seed"`
	Links   []LinkFault `json:"links,omitempty"`
	Crashes []Crash     `json:"crashes,omitempty"`
}

// Validate checks probabilities and indices.
func (p *Plan) Validate() error {
	for i, l := range p.Links {
		for _, pr := range []struct {
			name string
			v    float64
		}{{"drop", l.Drop}, {"dup", l.Dup}, {"reorder", l.Reorder}, {"delayProb", l.DelayProb}} {
			if pr.v < 0 || pr.v > 1 {
				return fmt.Errorf("fault: link %d: %s probability %v outside [0,1]", i, pr.name, pr.v)
			}
		}
		if l.From < -1 || l.To < -1 {
			return fmt.Errorf("fault: link %d: negative endpoint (use -1 for wildcard)", i)
		}
		if l.DelayMS < 0 {
			return fmt.Errorf("fault: link %d: negative delay %dms", i, l.DelayMS)
		}
		for _, f := range l.DropFrames {
			if f < 0 {
				return fmt.Errorf("fault: link %d: negative drop index %d", i, f)
			}
		}
		prev := -1
		for _, r := range l.ResetAfter {
			if r <= prev {
				return fmt.Errorf("fault: link %d: resetAfter must be positive and ascending", i)
			}
			prev = r
		}
		if l.PartitionAfter < 0 || l.PartitionFrames < 0 {
			return fmt.Errorf("fault: link %d: negative partition window", i)
		}
	}
	for i, c := range p.Crashes {
		if c.Node < 0 || c.AfterFrames <= 0 {
			return fmt.Errorf("fault: crash %d: want node >= 0 and afterFrames > 0", i)
		}
	}
	return nil
}

// rule returns the first link fault matching the directed link, or nil.
func (p *Plan) rule(from, to int) *LinkFault {
	for i := range p.Links {
		l := &p.Links[i]
		if (l.From == -1 || l.From == from) && (l.To == -1 || l.To == to) {
			return l
		}
	}
	return nil
}

// crashAfter returns the scheduled crash threshold for a node (0 = none).
func (p *Plan) crashAfter(node int) int {
	for _, c := range p.Crashes {
		if c.Node == node {
			return c.AfterFrames
		}
	}
	return 0
}

// ParsePlan decodes and validates a JSON plan.
func ParsePlan(b []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ReadPlanFile loads a plan from a JSON file (the tsnode -fault-plan
// format).
func ReadPlanFile(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: read plan: %w", err)
	}
	return ParsePlan(b)
}
