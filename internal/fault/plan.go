// Package fault is the deterministic fault injector for the distributed
// runtime: a seeded wrapper over a node Transport that drops, delays,
// duplicates, and reorders vector frames, resets and partitions links, and
// crashes nodes on schedule — all driven by a declarative Plan, with no
// wall-clock randomness anywhere. Two runs of the same computation under
// the same plan and seed inject the same fates into the same frames, which
// is what makes chaos runs replayable and their traces diffable.
//
// The injector sits below the wire codec and above the transport: it sees
// the length-prefixed frame stream each connection writes, splits it back
// into frames, and applies per-link fates to SYN/ACK frames only. HELLO,
// BYE, and report streams pass through untouched — faults model a lossy
// network during the run, not a corrupted handshake, and the recovery
// protocol under test (retransmission, dedup, reconnection, journals) is
// exactly the machinery that must turn this loss back into the fault-free
// stamps.
package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// LinkFault describes the fates injected on one directed link (frames sent
// by node From toward node To; -1 is a wildcard). Frame indices count the
// SYN/ACK frames sent on the link, starting at 0; handshake and report
// frames are invisible to the schedule, so indices are stable across runs.
type LinkFault struct {
	From int `json:"from"`
	To   int `json:"to"`

	// Probabilistic fates, drawn from the link's seeded generator: each
	// frame draws once per fate, in a fixed order, so the fate stream is a
	// pure function of (seed, link, frame index).
	Drop    float64 `json:"drop,omitempty"`
	Dup     float64 `json:"dup,omitempty"`
	Reorder float64 `json:"reorder,omitempty"`

	// DelayMS stalls a frame (and everything queued behind it on the
	// connection) when the delay draw fires.
	DelayMS   int     `json:"delayMs,omitempty"`
	DelayProb float64 `json:"delayProb,omitempty"`

	// DropFrames drops exactly these frame indices — the deterministic
	// counterpart of Drop, used where replay must be byte-identical.
	DropFrames []int `json:"dropFrames,omitempty"`

	// ResetAfter closes the link's connection after that many frames have
	// been sent on it; each entry is consumed once, in order, so a
	// reconnected session is not immediately killed again.
	ResetAfter []int `json:"resetAfter,omitempty"`

	// PartitionAfter/PartitionFrames drop every frame in the index window
	// [PartitionAfter, PartitionAfter+PartitionFrames) — a temporary
	// one-way partition measured in traffic, not wall time.
	PartitionAfter  int `json:"partitionAfter,omitempty"`
	PartitionFrames int `json:"partitionFrames,omitempty"`

	// Jitter, when non-nil, adds a per-frame latency drawn from a
	// distribution — the normal-case network model of the asynchronous
	// substrate, as opposed to DelayMS/DelayProb's occasional fixed stall.
	// Every frame on the link draws one jitter value (under the same
	// fixed-draw-order discipline as the probabilistic fates), so the
	// latency schedule is replayable per seed.
	Jitter *JitterSpec `json:"jitter,omitempty"`
}

// Jitter distribution names.
const (
	JitterFixed     = "fixed"
	JitterLognormal = "lognormal"
	JitterPareto    = "pareto"
)

// JitterSpec describes a per-frame latency distribution. Fixed adds MeanMS
// to every frame; lognormal draws MeanMS·exp(Sigma·N(0,1)) (MeanMS is the
// median — WAN-style body with occasional slow frames); pareto draws from a
// Pareto with shape Alpha scaled so the mean is MeanMS (heavy tail:
// occasional frames many times the mean). Draws are clamped to CapMS
// (default 10·MeanMS), which bounds the head-of-line stall any one frame
// can inflict on the link.
type JitterSpec struct {
	Dist   string  `json:"dist"`
	MeanMS float64 `json:"meanMs"`
	Sigma  float64 `json:"sigma,omitempty"` // lognormal shape; default 0.5
	Alpha  float64 `json:"alpha,omitempty"` // pareto shape; default 2.5, must be > 1
	CapMS  float64 `json:"capMs,omitempty"` // clamp; default 10·MeanMS
}

// Validate checks the spec's distribution and parameters.
func (j *JitterSpec) Validate() error {
	switch j.Dist {
	case JitterFixed, JitterLognormal, JitterPareto:
	default:
		return fmt.Errorf("fault: unknown jitter distribution %q (want fixed, lognormal, or pareto)", j.Dist)
	}
	if j.MeanMS < 0 {
		return fmt.Errorf("fault: negative jitter mean %vms", j.MeanMS)
	}
	if j.Sigma < 0 {
		return fmt.Errorf("fault: negative jitter sigma %v", j.Sigma)
	}
	if j.Dist == JitterPareto && j.Alpha != 0 && j.Alpha <= 1 {
		return fmt.Errorf("fault: pareto alpha %v must exceed 1 (the mean diverges otherwise)", j.Alpha)
	}
	if j.CapMS < 0 {
		return fmt.Errorf("fault: negative jitter cap %vms", j.CapMS)
	}
	return nil
}

// Crash schedules a node kill: after the node has sent AfterFrames vector
// frames (across all its links), the transport invokes CrashFn — tsnode
// wires os.Exit, tests wire a panic or a Stop.
type Crash struct {
	Node        int `json:"node"`
	AfterFrames int `json:"afterFrames"`
}

// Plan is a declarative fault schedule, JSON-encodable for tsnode
// -fault-plan. The zero plan injects nothing.
type Plan struct {
	// Seed drives every probabilistic fate. Each directed link derives its
	// own generator from (Seed, from, to), so links are independent and a
	// run is replayable regardless of connection interleaving.
	Seed    int64       `json:"seed"`
	Links   []LinkFault `json:"links,omitempty"`
	Crashes []Crash     `json:"crashes,omitempty"`
}

// Validate checks probabilities and indices.
func (p *Plan) Validate() error {
	for i, l := range p.Links {
		for _, pr := range []struct {
			name string
			v    float64
		}{{"drop", l.Drop}, {"dup", l.Dup}, {"reorder", l.Reorder}, {"delayProb", l.DelayProb}} {
			if pr.v < 0 || pr.v > 1 {
				return fmt.Errorf("fault: link %d: %s probability %v outside [0,1]", i, pr.name, pr.v)
			}
		}
		if l.From < -1 || l.To < -1 {
			return fmt.Errorf("fault: link %d: negative endpoint (use -1 for wildcard)", i)
		}
		if l.DelayMS < 0 {
			return fmt.Errorf("fault: link %d: negative delay %dms", i, l.DelayMS)
		}
		for _, f := range l.DropFrames {
			if f < 0 {
				return fmt.Errorf("fault: link %d: negative drop index %d", i, f)
			}
		}
		prev := -1
		for _, r := range l.ResetAfter {
			if r <= prev {
				return fmt.Errorf("fault: link %d: resetAfter must be positive and ascending", i)
			}
			prev = r
		}
		if l.PartitionAfter < 0 || l.PartitionFrames < 0 {
			return fmt.Errorf("fault: link %d: negative partition window", i)
		}
		if l.Jitter != nil {
			if err := l.Jitter.Validate(); err != nil {
				return fmt.Errorf("fault: link %d: %w", i, err)
			}
		}
	}
	for i, c := range p.Crashes {
		if c.Node < 0 || c.AfterFrames <= 0 {
			return fmt.Errorf("fault: crash %d: want node >= 0 and afterFrames > 0", i)
		}
	}
	return nil
}

// rule returns the first link fault matching the directed link, or nil.
func (p *Plan) rule(from, to int) *LinkFault {
	for i := range p.Links {
		l := &p.Links[i]
		if (l.From == -1 || l.From == from) && (l.To == -1 || l.To == to) {
			return l
		}
	}
	return nil
}

// crashAfter returns the scheduled crash threshold for a node (0 = none).
func (p *Plan) crashAfter(node int) int {
	for _, c := range p.Crashes {
		if c.Node == node {
			return c.AfterFrames
		}
	}
	return 0
}

// ParsePlan decodes and validates a JSON plan.
func ParsePlan(b []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ReadPlanFile loads a plan from a JSON file (the tsnode -fault-plan
// format).
func ReadPlanFile(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: read plan: %w", err)
	}
	return ParsePlan(b)
}

// ParseJitterProfile parses the tsnode -jitter-profile vocabulary:
// "dist[:meanMs[:shape]]" where dist is fixed, lognormal, or pareto, meanMs
// defaults to 2, and shape is sigma (lognormal) or alpha (pareto).
// Examples: "fixed:1", "lognormal:2:0.5", "pareto:2:2.5".
func ParseJitterProfile(s string) (*JitterSpec, error) {
	parts := strings.Split(s, ":")
	spec := &JitterSpec{Dist: parts[0], MeanMS: 2}
	if len(parts) > 3 {
		return nil, fmt.Errorf("fault: jitter profile %q has %d fields, want dist[:meanMs[:shape]]", s, len(parts))
	}
	if len(parts) >= 2 {
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("fault: jitter profile %q: bad mean: %w", s, err)
		}
		spec.MeanMS = v
	}
	if len(parts) == 3 {
		v, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("fault: jitter profile %q: bad shape: %w", s, err)
		}
		switch spec.Dist {
		case JitterLognormal:
			spec.Sigma = v
		case JitterPareto:
			spec.Alpha = v
		default:
			return nil, fmt.Errorf("fault: jitter profile %q: %s takes no shape parameter", s, spec.Dist)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ApplyJitter imposes a jitter spec on every link of the plan: existing
// rules without jitter gain it, and a wildcard rule is appended so links no
// rule matched are covered too (rule matching is first-match, so appending
// keeps existing fates intact).
func (p *Plan) ApplyJitter(spec *JitterSpec) {
	for i := range p.Links {
		if p.Links[i].Jitter == nil {
			p.Links[i].Jitter = spec
		}
	}
	p.Links = append(p.Links, LinkFault{From: -1, To: -1, Jitter: spec})
}
