package fault_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"syncstamp/internal/check"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/fault"
	"syncstamp/internal/graph"
	"syncstamp/internal/node"
	tssync "syncstamp/internal/sync"
	"syncstamp/internal/trace"
)

// asyncRecovery is chaosRecovery with the α-synchronizer switched on: a
// small initial RTT guess and tight RTO bounds keep in-memory retries at
// millisecond scale, like the fixed chaos backoff they replace.
func asyncRecovery(policy node.PeerLossPolicy, seed int64) *node.RecoveryConfig {
	rec := chaosRecovery(policy)
	rec.Async = &tssync.Config{
		RTTInit: 5 * time.Millisecond,
		RTOMin:  time.Millisecond,
		RTOMax:  100 * time.Millisecond,
		Seed:    seed,
	}
	return rec
}

// asyncMatrixSeeds reports how many seeds per cell the matrix runs: the
// full eight of the acceptance gate under SYNCSTAMP_ASYNC_MATRIX=full (the
// make async-test / CI setting), a fast sample of two otherwise.
func asyncMatrixSeeds() int64 {
	if os.Getenv("SYNCSTAMP_ASYNC_MATRIX") == "full" {
		return 8
	}
	return 2
}

// TestAsyncMatrixStampsMatchSequential is the async tentpole's correctness
// gate: across the topology families, loss rates up to 20%, and the three
// jitter profiles (fixed, lognormal, pareto), a computation run over the
// never-synchronous substrate — adaptive per-peer RTO instead of the fixed
// backoff, safe counters piggybacked on every SYN/ACK — must still produce
// exactly the stamps of a fault-free sequential replay. Latency and loss
// may reshape every schedule; they must never reshape a timestamp.
func TestAsyncMatrixStampsMatchSequential(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"path4", graph.Path(4)},
		{"star5", graph.Star(5, 0)},
		{"cycle5", graph.Cycle(5)},
		{"clientserver", graph.ClientServer(2, 3, false)},
		{"complete4", graph.Complete(4)},
	}
	jitters := []*fault.JitterSpec{
		{Dist: fault.JitterFixed, MeanMS: 1},
		{Dist: fault.JitterLognormal, MeanMS: 1, Sigma: 0.8},
		{Dist: fault.JitterPareto, MeanMS: 1, Alpha: 2.5},
	}
	losses := []float64{0.05, 0.10, 0.20}
	seeds := asyncMatrixSeeds()
	full := seeds > 2
	for _, fam := range families {
		for seed := int64(1); seed <= seeds; seed++ {
			for ji, jit := range jitters {
				for li, loss := range losses {
					// The fast sample pairs loss and jitter diagonally per
					// seed; the full matrix crosses them.
					if !full && li != (ji+int(seed))%len(losses) {
						continue
					}
					fam, seed, jit, loss := fam, seed, jit, loss
					name := fmt.Sprintf("%s/seed%d/%s/loss%d", fam.name, seed, jit.Dist, int(loss*100))
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						rng := rand.New(rand.NewSource(seed))
						tr := trace.Generate(fam.g, trace.GenOptions{Messages: 12, InternalProb: 0.1}, rng)
						dec := decomp.Best(fam.g)
						plan := &fault.Plan{
							Seed:  seed,
							Links: []fault.LinkFault{{From: -1, To: -1, Drop: loss, Dup: loss / 2}},
						}
						plan.ApplyJitter(jit)
						if err := plan.Validate(); err != nil {
							t.Fatal(err)
						}
						res, results, err := runChaos(dec, plan, asyncRecovery(node.PeerLossWait, seed), projectionPrograms(tr))
						if err != nil {
							t.Fatal(err)
						}
						for i, r := range results {
							if r.err != nil {
								t.Fatalf("node %d: %v", i, r.err)
							}
						}
						if err := verifySequential(res, dec, tr.NumMessages()); err != nil {
							t.Fatal(err)
						}
					})
				}
			}
		}
	}
}

// runChaosPlaced is runChaos with an explicit process placement: the
// cluster size is max(placement)+1, and the reconstruction is collected on
// node 0 as usual.
func runChaosPlaced(dec *decomp.Decomposition, placement []int, plan *fault.Plan,
	rec *node.RecoveryConfig, programs map[int]func(*node.Process) error) (*csp.Result, []chaosResult, error) {
	nodes := 0
	for _, host := range placement {
		if host+1 > nodes {
			nodes = host + 1
		}
	}
	l := node.NewLoop(nodes)
	results := make([]chaosResult, nodes)
	var collected *csp.Result
	var collectErr error
	done := make(chan int, nodes)
	for i := 0; i < nodes; i++ {
		go func(i int) {
			defer func() { done <- i }()
			ft := fault.New(l.Transport(i), plan, i)
			n, err := node.New(node.Config{
				Node:              i,
				Placement:         placement,
				Dec:               dec,
				HandshakeTimeout:  20 * time.Second,
				RendezvousTimeout: 20 * time.Second,
				Recovery:          rec,
			}, ft)
			if err != nil {
				results[i].err = err
				return
			}
			defer n.Close()
			info, err := n.Run(programs)
			results[i] = chaosResult{info: info, err: err, stats: ft.Stats()}
			if err != nil {
				return
			}
			if i == 0 {
				collected, collectErr = n.Collect(info, 20*time.Second)
			} else {
				results[i].err = n.SendReport(0, info)
			}
			results[i].stats = ft.Stats()
		}(i)
	}
	for i := 0; i < nodes; i++ {
		<-done
	}
	return collected, results, collectErr
}

// TestAsyncSuspicionExcludesUnresponsivePeer drives the health FSM end to
// end over a connection that never dies: node 2's SYN/ACK traffic toward
// node 0 is blackholed while the connection stays up, so node 0's only
// signal is silence — consecutive retransmission timeouts march the peer
// through degraded and suspect, the reconnect window passes with no
// liveness evidence, and the exclude policy removes the peer exactly as it
// would on a crash. Reconnects must stay zero: this is degradation by
// suspicion, not by connection loss.
func TestAsyncSuspicionExcludesUnresponsivePeer(t *testing.T) {
	g := graph.Complete(3)
	dec := decomp.Best(g)
	victimErr := errors.New("victim held past exclusion")
	release := make(chan struct{})
	programs := map[int]func(*node.Process) error{
		0: func(p *node.Process) error {
			if _, err := p.Send(1); err != nil {
				return err
			}
			if _, err := p.RecvFrom(1); err != nil {
				return err
			}
			// Node 2 answers this rendezvous — but its ACK is blackholed, so
			// from here the peer is indistinguishable from a hung process.
			// Suspicion must mature into exclusion and wake this send.
			if _, err := p.Send(2); !errors.Is(err, node.ErrPeerLost) {
				return fmt.Errorf("send to unresponsive peer: got %v, want ErrPeerLost", err)
			}
			close(release)
			return nil
		},
		1: func(p *node.Process) error {
			if _, err := p.RecvFrom(0); err != nil {
				return err
			}
			if _, err := p.Send(0); err != nil {
				return err
			}
			return nil
		},
		2: func(p *node.Process) error {
			if _, err := p.RecvFrom(0); err != nil {
				return err
			}
			// Hold until node 0 has excluded us; erroring out (instead of
			// returning) keeps our BYE off the wire, so no late liveness
			// evidence races the watchdog.
			select {
			case <-release:
			case <-time.After(15 * time.Second):
			}
			return victimErr
		},
	}
	plan := &fault.Plan{
		Seed:  1,
		Links: []fault.LinkFault{{From: 2, To: 0, Drop: 1.0}},
	}
	rec := asyncRecovery(node.PeerLossExclude, 9)
	rec.ReconnectWindow = 250 * time.Millisecond
	res, results, err := runChaos(dec, plan, rec, programs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results[:2] {
		if r.err != nil {
			t.Fatalf("node %d: %v", i, r.err)
		}
	}
	if !errors.Is(results[2].err, victimErr) {
		t.Fatalf("victim: got %v, want its own scripted error", results[2].err)
	}
	info0 := results[0].info
	if len(info0.Excluded) != 1 || info0.Excluded[0] != 2 {
		t.Fatalf("node 0 excluded %v, want [2]", info0.Excluded)
	}
	if info0.Suspicions == 0 {
		t.Fatal("exclusion happened without a recorded suspicion")
	}
	if info0.PeerHealth[2] != "excluded" {
		t.Fatalf("node 0 sees peer 2 as %q, want excluded", info0.PeerHealth[2])
	}
	if st := info0.PeerHealth[1]; st != "healthy" {
		t.Fatalf("node 0 sees peer 1 as %q, want healthy", st)
	}
	for i, r := range results[:2] {
		if r.info.Reconnects != 0 {
			t.Fatalf("node %d reconnected %d times; suspicion-driven exclusion must not touch the connection", i, r.info.Reconnects)
		}
	}
	// The surviving computation still verifies: two committed messages,
	// stamps equal to their sequential replay, victim components frozen.
	if err := verifySequential(res, dec, 2); err != nil {
		t.Fatal(err)
	}
}

// TestPropAsyncExclusionPreservesFrozenStamps is the property-level version
// of the suspicion test, generalized over check's generated computations:
// any trace, run to completion over the async substrate, then extended by
// one rendezvous into a peer whose replies are blackholed, must (a) exclude
// that peer by suspicion alone and (b) leave the committed computation's
// stamps exactly equal to their sequential replay — the excluded node's
// vector components frozen at zero throughout.
func TestPropAsyncExclusionPreservesFrozenStamps(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node exclusion windows are slow under -short")
	}
	check.Run(t, check.Config{Runs: 5, MaxProcs: 4, MaxMessages: 12}, func(in *check.Input) error {
		tr := in.Trace
		rng := in.Rand()

		// Augment: one new process w, adjacent to process 0, receiving one
		// final message from it. w lives alone on a victim node whose
		// replies toward node 0 are blackholed.
		w := tr.N
		g2 := graph.New(tr.N + 1)
		for _, e := range in.Topo.Edges() {
			g2.AddEdge(e.U, e.V)
		}
		g2.AddEdge(0, w)
		dec := decomp.Best(g2)

		// Scatter the original processes over two survivor nodes (process 0
		// pinned to the collector), compacting away an unused node 1.
		placement := make([]int, tr.N+1)
		survivors := 1
		for p := 1; p < tr.N; p++ {
			placement[p] = rng.Intn(2)
			if placement[p] == 1 {
				survivors = 2
			}
		}
		if survivors == 1 {
			for p := 1; p < tr.N; p++ {
				placement[p] = 0
			}
		}
		victim := survivors
		placement[w] = victim

		victimErr := errors.New("victim held past exclusion")
		release := make(chan struct{})
		programs := make(map[int]func(*node.Process) error, tr.N+1)
		proj := tr.ProcOps()
		for proc := 0; proc < tr.N; proc++ {
			mine := proj[proc]
			me := proc
			programs[proc] = func(p *node.Process) error {
				for _, k := range mine {
					op := tr.Ops[k]
					switch {
					case op.Kind == trace.OpInternal:
						p.Internal(fmt.Sprint(k))
					case op.From == me:
						if _, err := p.Send(op.To); err != nil {
							return err
						}
					default:
						if _, err := p.RecvFrom(op.From); err != nil {
							return err
						}
					}
				}
				if me == 0 {
					if _, err := p.Send(w); !errors.Is(err, node.ErrPeerLost) {
						return fmt.Errorf("send to blackholed peer: got %v, want ErrPeerLost", err)
					}
					close(release)
				}
				return nil
			}
		}
		programs[w] = func(p *node.Process) error {
			if _, err := p.RecvFrom(0); err != nil {
				return err
			}
			select {
			case <-release:
			case <-time.After(15 * time.Second):
			}
			return victimErr
		}

		plan := &fault.Plan{
			Seed:  in.Seed,
			Links: []fault.LinkFault{{From: victim, To: 0, Drop: 1.0}},
		}
		rec := asyncRecovery(node.PeerLossExclude, in.Seed)
		rec.ReconnectWindow = 250 * time.Millisecond
		res, results, err := runChaosPlaced(dec, placement, plan, rec, programs)
		if err != nil {
			return err
		}
		for i, r := range results[:victim] {
			if r.err != nil {
				return fmt.Errorf("node %d: %w", i, r.err)
			}
		}
		if !errors.Is(results[victim].err, victimErr) {
			return fmt.Errorf("victim: got %v, want its own scripted error", results[victim].err)
		}
		info0 := results[0].info
		if len(info0.Excluded) != 1 || info0.Excluded[0] != victim {
			return fmt.Errorf("node 0 excluded %v, want [%d]", info0.Excluded, victim)
		}
		if info0.Suspicions == 0 {
			return errors.New("exclusion happened without a recorded suspicion")
		}
		if info0.Reconnects != 0 {
			return fmt.Errorf("node 0 reconnected %d times during suspicion-driven exclusion", info0.Reconnects)
		}
		// Every committed message is one of the original trace; the extra
		// rendezvous into the victim committed on the victim's side only and
		// must not surface in the surviving reconstruction.
		return verifySequential(res, dec, tr.NumMessages())
	})
}
