package wire

import (
	"bytes"
	"io"
	"testing"

	"syncstamp/internal/vector"
)

// FuzzDecodeFrame feeds arbitrary bytes to the decoder: it must never panic
// or allocate unboundedly, and every frame it accepts must re-encode and
// decode to the same frame (on a fresh codec pair, so baselines restart at
// zero on both sides).
func FuzzDecodeFrame(f *testing.F) {
	seed := func(frames []*Frame, d int) []byte {
		var buf bytes.Buffer
		enc := NewEncoder(&buf, d)
		for _, fr := range frames {
			if err := enc.Encode(fr); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	f.Add([]byte{}, 3)
	f.Add([]byte{0x01, 0x05}, 3)
	f.Add(seed([]*Frame{
		{Kind: KindHello, Role: RoleReport, Node: 1, Procs: []int{0, 2}, Digest: 99, Epoch: 2},
		{Kind: KindSyn, From: 0, To: 2, Seq: 1, Vec: vector.V{1, 0, 4}},
		{Kind: KindAck, From: 2, To: 0, Seq: 1, Vec: vector.V{1, 1, 4}},
		{Kind: KindInternal, Proc: 2, Note: "n"},
		{Kind: KindBye},
	}, 3), 3)
	f.Fuzz(func(t *testing.T, in []byte, d int) {
		if d < 0 || d > 64 || len(in) > 1<<16 {
			return
		}
		dec := NewDecoder(bytes.NewReader(in), d)
		var accepted []*Frame
		for len(accepted) < 64 {
			fr, err := dec.Decode()
			if err != nil {
				break
			}
			accepted = append(accepted, fr)
		}
		if len(accepted) == 0 {
			return
		}
		// Re-encode what was accepted and decode it again: frames must
		// survive unchanged. Fresh codecs are used on both sides, so the
		// delta baselines agree even though the fuzzed input's implicit
		// baselines may have drifted.
		var buf bytes.Buffer
		enc := NewEncoder(&buf, d)
		for _, fr := range accepted {
			if err := enc.Encode(fr); err != nil {
				t.Fatalf("re-encoding accepted frame %+v: %v", fr, err)
			}
		}
		dec2 := NewDecoder(&buf, d)
		for i, want := range accepted {
			got, err := dec2.Decode()
			if err != nil {
				t.Fatalf("re-decoding frame %d: %v", i, err)
			}
			if got.Kind != want.Kind || got.From != want.From || got.To != want.To ||
				got.Node != want.Node || got.Digest != want.Digest || got.Role != want.Role ||
				got.Epoch != want.Epoch || got.Seq != want.Seq ||
				got.Proc != want.Proc || got.Note != want.Note || len(got.Procs) != len(want.Procs) {
				t.Fatalf("frame %d changed: got %+v, want %+v", i, got, want)
			}
			if (got.Kind == KindSyn || got.Kind == KindAck) && !vector.Eq(got.Vec, want.Vec) {
				t.Fatalf("frame %d vector changed: got %v, want %v", i, got.Vec, want.Vec)
			}
		}
		if _, err := dec2.Decode(); err != io.EOF {
			t.Fatalf("trailing data after re-encoded frames: %v", err)
		}
	})
}
