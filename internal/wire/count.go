package wire

import (
	"fmt"
	"hash/fnv"
	"io"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/trace"
)

// Digest fingerprints the shared configuration two nodes must agree on
// before exchanging clock bytes: the edge decomposition (its text encoding
// is deterministic) and the process placement. HELLO carries it; a mismatch
// aborts the handshake, because clocks merged under different decompositions
// silently produce incomparable timestamps.
func Digest(d *decomp.Decomposition, placement []int) uint64 {
	h := fnv.New64a()
	// WriteText cannot fail on a hash.Hash64.
	_ = decomp.WriteText(h, d)
	var buf [10]byte
	for _, n := range placement {
		b := appendUvarint(buf[:0], uint64(n))
		_, _ = h.Write(b)
	}
	return h.Sum64()
}

// CountTrace replays tr sequentially through the live codec and returns the
// exact piggyback accounting a distributed run would pay: one SYN carrying
// the sender's pre-merge clock and one ACK carrying the merged stamp per
// message, delta-compressed against the per-pair baselines.
//
// The simulation is exact, not an estimate: every vector a synchronous run
// piggybacks is determined by the sending process's projection alone (the
// clock before a process's k-th operation equals the stamp of its previous
// rendezvous), so the byte counts are independent of the runtime
// interleaving. It assumes every message crosses the wire — i.e. no two
// communicating processes share a node — which is the paper's distributed
// setting and the upper bound for any placement.
func CountTrace(tr *trace.Trace, dec *decomp.Decomposition) (core.Overhead, error) {
	s := core.NewStamper(dec)
	enc := NewEncoder(io.Discard, dec.D())
	for i, op := range tr.Ops {
		if op.Kind != trace.OpMessage {
			continue
		}
		syn := &Frame{Kind: KindSyn, From: op.From, To: op.To, Vec: s.ClockOf(op.From)}
		if err := enc.Encode(syn); err != nil {
			return core.Overhead{}, fmt.Errorf("wire: op %d: %w", i, err)
		}
		stamp, err := s.StampMessage(op.From, op.To)
		if err != nil {
			return core.Overhead{}, fmt.Errorf("wire: op %d: %w", i, err)
		}
		ack := &Frame{Kind: KindAck, From: op.To, To: op.From, Vec: stamp}
		if err := enc.Encode(ack); err != nil {
			return core.Overhead{}, fmt.Errorf("wire: op %d: %w", i, err)
		}
	}
	return enc.Overhead, nil
}
