package wire

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// pipeRoundTrip encodes the frames into a buffer and decodes them back with
// a fresh Decoder sharing only the dimension.
func pipeRoundTrip(t *testing.T, d int, frames []*Frame) []*Frame {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf, d)
	for i, f := range frames {
		if err := enc.Encode(f); err != nil {
			t.Fatalf("encode frame %d (%v): %v", i, f.Kind, err)
		}
	}
	dec := NewDecoder(&buf, d)
	var out []*Frame
	for {
		f, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decode frame %d: %v", len(out), err)
		}
		out = append(out, f)
	}
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Kind: KindHello, Role: RoleData, Node: 2, Procs: []int{3, 4, 5}, Digest: 0xdeadbeefcafe, Epoch: 3},
		{Kind: KindSyn, From: 3, To: 0, Seq: 1, Vec: vector.V{1, 0, 2}},
		{Kind: KindAck, From: 0, To: 3, Seq: 1, Vec: vector.V{1, 1, 2}},
		{Kind: KindSyn, From: 3, To: 0, Seq: 2, Vec: vector.V{1, 1, 3}},
		{Kind: KindInternal, Proc: 4, Note: "checkpoint #7"},
		{Kind: KindInternal, Proc: 5, Note: ""},
		{Kind: KindBye},
	}
	got := pipeRoundTrip(t, 3, frames)
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		want := *frames[i]
		if want.Kind == KindHello && want.Procs == nil {
			want.Procs = []int{}
		}
		if !reflect.DeepEqual(&want, got[i]) {
			t.Errorf("frame %d: got %+v, want %+v", i, got[i], &want)
		}
	}
}

// TestDeltaBeatsDenseOnRepeatTraffic drives repeated same-pair exchanges —
// the differential codec's favorable regime — and requires actual wire
// bytes strictly below the dense cost, while round-tripping exactly.
func TestDeltaBeatsDenseOnRepeatTraffic(t *testing.T) {
	const d = 16
	var buf bytes.Buffer
	enc := NewEncoder(&buf, d)
	v := vector.New(d)
	var sent []vector.V
	for i := 0; i < 50; i++ {
		v[3]++ // one component advances per exchange, as under Figure 5
		sent = append(sent, v.Clone())
		if err := enc.Encode(&Frame{Kind: KindSyn, From: 1, To: 2, Vec: v.Clone()}); err != nil {
			t.Fatal(err)
		}
	}
	if enc.Overhead.WireBytes >= enc.Overhead.DenseBytes {
		t.Fatalf("delta encoding saved nothing: wire %d, dense %d", enc.Overhead.WireBytes, enc.Overhead.DenseBytes)
	}
	dec := NewDecoder(&buf, d)
	for i, want := range sent {
		f, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !vector.Eq(f.Vec, want) {
			t.Fatalf("frame %d decoded vector %v, want %v", i, f.Vec, want)
		}
	}
}

// TestBaselinesArePerPair interleaves two ordered pairs on one stream and
// checks neither corrupts the other's delta baseline.
func TestBaselinesArePerPair(t *testing.T) {
	const d = 4
	var buf bytes.Buffer
	enc := NewEncoder(&buf, d)
	type step struct {
		from, to int
		vec      vector.V
	}
	steps := []step{
		{1, 2, vector.V{1, 0, 0, 0}},
		{3, 2, vector.V{0, 0, 0, 7}},
		{1, 2, vector.V{2, 0, 0, 0}},
		{3, 2, vector.V{0, 0, 0, 9}},
		{2, 1, vector.V{2, 1, 0, 0}},
	}
	for _, s := range steps {
		if err := enc.Encode(&Frame{Kind: KindSyn, From: s.from, To: s.to, Vec: s.vec.Clone()}); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf, d)
	for i, s := range steps {
		f, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if f.From != s.from || f.To != s.to || !vector.Eq(f.Vec, s.vec) {
			t.Fatalf("frame %d: got (%d->%d) %v, want (%d->%d) %v", i, f.From, f.To, f.Vec, s.from, s.to, s.vec)
		}
	}
}

// TestSelfContainedFramesDecodeInIsolation drives repeated same-pair traffic
// through a SelfContained encoder and decodes each frame with a FRESH decoder
// (zero baselines): every frame must decode to its full vector on its own.
// This is the property recovery mode relies on — a retransmitted, duplicated,
// or reordered frame must not need any earlier frame to be interpretable.
func TestSelfContainedFramesDecodeInIsolation(t *testing.T) {
	const d = 8
	v := vector.New(d)
	for i := 0; i < 20; i++ {
		v[2]++
		var buf bytes.Buffer
		enc := NewEncoder(&buf, d)
		enc.SelfContained = true
		want := v.Clone()
		if err := enc.Encode(&Frame{Kind: KindSyn, From: 1, To: 2, Seq: uint64(i + 1), Vec: want}); err != nil {
			t.Fatal(err)
		}
		if enc.Overhead.WireBytes != enc.Overhead.DenseBytes {
			t.Fatalf("self-contained encoding charged wire %d != dense %d", enc.Overhead.WireBytes, enc.Overhead.DenseBytes)
		}
		f, err := NewDecoder(&buf, d).Decode()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !vector.Eq(f.Vec, want) || f.Seq != uint64(i+1) {
			t.Fatalf("frame %d decoded (seq %d) %v, want (seq %d) %v", i, f.Seq, f.Vec, i+1, want)
		}
	}
}

func TestEncodeRejectsWrongDimension(t *testing.T) {
	enc := NewEncoder(io.Discard, 3)
	if err := enc.Encode(&Frame{Kind: KindSyn, From: 0, To: 1, Vec: vector.V{1, 2}}); err == nil {
		t.Fatal("encoder accepted a vector of the wrong dimension")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{0x01, 0xff},             // unknown kind
		{0x05, 0x02, 0x00, 0x00}, // SYN truncated before vector
		{0x00},                   // zero-length frame
		{0x03, 0x02, 0x00, 0x00}, // SYN with trailing bytes missing vec mode
	}
	for i, c := range cases {
		dec := NewDecoder(bytes.NewReader(c), 2)
		if _, err := dec.Decode(); err == nil {
			t.Errorf("case %d: garbage %v accepted", i, c)
		}
	}
}

func TestDecodeTruncatedMidFrame(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, 2)
	if err := enc.Encode(&Frame{Kind: KindSyn, From: 0, To: 1, Vec: vector.V{5, 6}}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	dec := NewDecoder(bytes.NewReader(whole[:len(whole)-1]), 2)
	if _, err := dec.Decode(); err == nil || err == io.EOF {
		t.Fatalf("truncated frame decoded with err=%v", err)
	}
}

func TestDigestDetectsMismatch(t *testing.T) {
	g := graph.Complete(5)
	d1 := decomp.Best(g)
	d2 := decomp.TrivialStars(g)
	place := []int{0, 1, 2, 0, 1}
	if Digest(d1, place) == Digest(d2, place) {
		t.Fatal("different decompositions share a digest")
	}
	if Digest(d1, place) != Digest(d1, append([]int(nil), place...)) {
		t.Fatal("digest is not deterministic")
	}
	if Digest(d1, place) == Digest(d1, []int{0, 1, 2, 0, 2}) {
		t.Fatal("different placements share a digest")
	}
}

// TestCountTraceMatchesLiveEncoding encodes the same rendezvous sequence by
// hand and checks CountTrace charges exactly those bytes.
func TestCountTraceMatchesLiveEncoding(t *testing.T) {
	g := graph.ClientServer(2, 6, false)
	dec := decomp.Best(g)
	rng := rand.New(rand.NewSource(42))
	tr := trace.Generate(g, trace.GenOptions{Messages: 120, Hotspot: 0.5}, rng)

	got, err := CountTrace(tr, dec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Frames != 2*tr.NumMessages() {
		t.Fatalf("charged %d frames for %d messages", got.Frames, tr.NumMessages())
	}
	if got.WireBytes <= 0 || got.DenseBytes < got.WireBytes {
		t.Fatalf("implausible accounting %+v", got)
	}
	// Determinism: same trace, same bytes.
	again, err := CountTrace(tr, dec)
	if err != nil {
		t.Fatal(err)
	}
	if got != again {
		t.Fatalf("CountTrace not deterministic: %+v vs %+v", got, again)
	}
}

func TestCountTraceRejectsUncoveredChannel(t *testing.T) {
	g := graph.Path(3)
	dec := decomp.Best(g)
	tr := &trace.Trace{N: 3}
	tr.MustAppend(trace.Message(0, 2)) // not an edge of the path
	if _, err := CountTrace(tr, dec); err == nil {
		t.Fatal("uncovered channel accepted")
	}
}

// TestCollectorFrameRoundTrip exercises the collector-tree control frames:
// shard assignment (explicit and modulo form), the leaf summary roll-up with
// its per-group fingerprints, and the root verdict.
func TestCollectorFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Kind: KindShard, Leaf: 2, Leaves: 4, Procs: []int{2, 6, 10}},
		{Kind: KindShard, Leaf: 3, Leaves: 8},
		{Kind: KindSummary, Summary: &ShardSummary{
			Leaf: 2, Procs: 3, Sends: 120, Recvs: 80, Internals: 7,
			Segments: 5, Spilled: 40960,
			Groups: []GroupSummary{
				{Group: 0, SendCount: 60, SendXor: 0xfeedface, RecvCount: 60, RecvXor: 0xfeedface, RootSeq: 60},
				{Group: 3, SendCount: 60, SendXor: 1, RecvCount: 20, RecvXor: 9, RootSeq: -1},
			},
		}},
		{Kind: KindSummary, Summary: &ShardSummary{Leaf: 0, Err: "stamp regression at process 7"}},
		{Kind: KindVerdict, Verdict: &Verdict{OK: true, Shards: 4, Messages: 140, Records: 287}},
		{Kind: KindVerdict, Verdict: &Verdict{Shards: 3, Problems: []string{"shard 2 missing", "group 0: 60 sends vs 59 recvs"}}},
	}
	got := pipeRoundTrip(t, 3, frames)
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !reflect.DeepEqual(frames[i], got[i]) {
			t.Errorf("frame %d: got %+v, want %+v", i, got[i], frames[i])
		}
	}
}

// TestSummaryLimits checks that the decoder limits reject adversarial
// collector frames instead of allocating.
func TestSummaryLimits(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, 3)
	long := make([]byte, MaxNote+1)
	if err := enc.Encode(&Frame{Kind: KindSummary, Summary: &ShardSummary{Err: string(long)}}); err == nil {
		t.Fatal("oversized summary error encoded without error")
	}
	if err := enc.Encode(&Frame{Kind: KindVerdict, Verdict: &Verdict{Problems: make([]string, MaxProblems+1)}}); err == nil {
		t.Fatal("oversized problem list encoded without error")
	}
	if err := enc.Encode(&Frame{Kind: KindSummary}); err == nil {
		t.Fatal("SUMMARY without a payload encoded without error")
	}
	if err := enc.Encode(&Frame{Kind: KindVerdict}); err == nil {
		t.Fatal("VERDICT without a payload encoded without error")
	}
}
