// Package wire is the deterministic binary codec of the rendezvous protocol
// internal/node speaks over real transports. Today "message overhead" is the
// paper's headline number (Section 3.2: d piggybacked components instead of
// Fidge–Mattern's N); this package is where those bytes are actually paid,
// frame by frame, so the claim can be measured on a wire instead of merely
// counted.
//
// # Frames
//
// Every frame is a uvarint length prefix followed by a payload whose first
// byte is the frame kind:
//
//	HELLO     handshake: node id, hosted process ids, a digest of the
//	          decomposition + placement (both ends must agree on the
//	          topology before any clock bytes flow), and a role byte
//	          (data stream vs log-report stream)
//	SYN       rendezvous phase 1, sender → receiver: (from, to) process
//	          pair and the sender's piggybacked vector
//	ACK       rendezvous phase 2, receiver → sender: (from, to) process
//	          pair and the merged stamp v(m) the receiver computed per
//	          Figure 5
//	INTERNAL  an internal-event note (Section 5), used when a node reports
//	          its per-process logs to the collector
//	BYE       clean end of stream; an EOF after BYE is a graceful close,
//	          an EOF without one is a failure
//	SHARD     collector tree, root → leaf: the leaf's index, the tree width,
//	          and the partition of processes the leaf owns (an empty list
//	          means the modulo rule proc % leaves == leaf, the only form
//	          that stays frame-sized at millions of processes)
//	SUMMARY   collector tree, leaf → root: the shard's verified roll-up —
//	          record counts, spill accounting, per-group send/recv
//	          multiset fingerprints and the star root's final sequence
//	          number — everything the root needs to judge the run without
//	          ever seeing the shard's records
//	VERDICT   collector tree, root → leaves: the final verdict (ok flag,
//	          totals, and the problems found, if any)
//	METRICS   a metrics-registry snapshot riding the report/collector path,
//	          leaf/node → root: named counters, gauges, and histograms
//	          (sorted by name), which the root merges into one cluster
//	          rollup — counters and gauges add, histograms merge bucket-wise
//
// # Differential vector encoding
//
// SYN and ACK carry a vector. Consecutive vectors between the same ordered
// process pair share most components — a process's clock changes by one
// merge per rendezvous — so the codec keeps, per ordered (from, to) pair and
// per stream, the last vector carried, and encodes only the components that
// changed since (Singhal–Kshemkalyani differential piggybacking, Section 6
// of the paper; cf. Vaidya & Kulkarni, "Efficient Timestamps for Capturing
// Causality"). Each vector is encoded in whichever of the two forms is
// smaller:
//
//	dense  0x00, then all d components as uvarints
//	delta  0x01, then the change count, then (index, value) uvarint pairs
//
// Both ends start every pair's baseline at the zero vector of length d, and
// both update it on every SYN/ACK they encode or decode, so the streams stay
// in lockstep without negotiation. The encoder charges every vector frame to
// a core.Overhead — the exact dense cost next to the exact bytes sent — which
// is how experiment E20 reports real wire bytes against dense encoding.
package wire

import "fmt"

// Kind discriminates frame types.
type Kind byte

// Frame kinds.
const (
	KindHello Kind = iota + 1
	KindSyn
	KindAck
	KindInternal
	KindBye
	KindShard
	KindSummary
	KindVerdict
	KindMetrics

	// KindMax is one past the highest kind — the size of per-kind arrays.
	KindMax
)

// String names the frame kind.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "HELLO"
	case KindSyn:
		return "SYN"
	case KindAck:
		return "ACK"
	case KindInternal:
		return "INTERNAL"
	case KindBye:
		return "BYE"
	case KindShard:
		return "SHARD"
	case KindSummary:
		return "SUMMARY"
	case KindVerdict:
		return "VERDICT"
	case KindMetrics:
		return "METRICS"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Stream roles carried by HELLO.
const (
	// RoleData is a peer connection carrying live SYN/ACK traffic.
	RoleData byte = 0
	// RoleReport is a log-report connection to the collector node.
	RoleReport byte = 1
)

// Limits enforced by the decoder, so corrupt or adversarial input fails
// with an error instead of an allocation.
const (
	// MaxFrame bounds a frame payload in bytes.
	MaxFrame = 1 << 20
	// MaxNote bounds an INTERNAL note in bytes.
	MaxNote = 1 << 16
	// MaxProcs bounds the process list of a HELLO or SHARD.
	MaxProcs = 1 << 16
	// MaxGroups bounds the group-summary list of a SUMMARY.
	MaxGroups = 1 << 20
	// MaxProblems bounds the problem list of a VERDICT.
	MaxProblems = 1 << 10
	// MaxMetrics bounds each instrument list of a METRICS frame.
	MaxMetrics = 1 << 16
	// MaxEdges bounds a METRICS histogram's bucket-edge list.
	MaxEdges = 1 << 10
)
