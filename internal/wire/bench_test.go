package wire

import (
	"bytes"
	"io"
	"testing"

	"syncstamp/internal/vector"
)

// synFrame builds a warm-path SYN: a d-component vector with a few
// components advanced, the shape a busy channel pair settles into.
func synFrame(d int, tick uint64) *Frame {
	v := vector.New(d)
	v[0] = int(tick)
	v[1] = int(tick / 2)
	v[d-1] = int(tick / 3)
	return &Frame{Kind: KindSyn, From: 0, To: 1, Seq: tick, Vec: v}
}

func BenchmarkEncodeSynDelta(b *testing.B) {
	enc := NewEncoder(io.Discard, 16)
	enc.SetBatch(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(synFrame(16, uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeSynSelfContained(b *testing.B) {
	enc := NewEncoder(io.Discard, 16)
	enc.SetBatch(true)
	enc.SelfContained = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(synFrame(16, uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSyn(b *testing.B) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, 16)
	enc.SetBatch(true)
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(synFrame(16, uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()), 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeZeroAlloc pins the steady-state encode path at zero heap
// allocations per frame: the payload buffer is recycled, the delta is
// computed inline against the pair baseline, and the baseline is updated in
// place. A regression here shows up as a nonzero count and fails `go test`,
// not just a benchmark number drifting.
func TestEncodeZeroAlloc(t *testing.T) {
	enc := NewEncoder(io.Discard, 16)
	enc.SetBatch(true)
	f := synFrame(16, 1)
	// Warm up: first encode of a pair allocates its baseline, and the
	// payload buffer grows to steady-state capacity.
	for i := 0; i < 8; i++ {
		f.Seq = uint64(i + 1)
		f.Vec[0] = int(i + 1)
		if err := enc.Encode(f); err != nil {
			t.Fatal(err)
		}
	}
	tick := uint64(8)
	allocs := testing.AllocsPerRun(100, func() {
		tick++
		f.Seq = tick
		f.Vec[0] = int(tick)
		if err := enc.Encode(f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm SYN encode allocates %.1f objects per frame, want 0", allocs)
	}
}

// TestDecodeAllocsPinned pins the steady-state decode path at its designed
// budget: one Frame and one vector per SYN/ACK, nothing else. The baseline
// is a separate array updated in place, so delta decoding allocates no
// scratch.
func TestDecodeAllocsPinned(t *testing.T) {
	const frames = 256
	var buf bytes.Buffer
	enc := NewEncoder(&buf, 16)
	enc.SetBatch(true)
	for i := 0; i < frames; i++ {
		if err := enc.Encode(synFrame(16, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()), 16)
	// Warm up: baseline and payload buffer allocate on the first frames.
	for i := 0; i < 8; i++ {
		if _, err := dec.Decode(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := dec.Decode(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("warm SYN decode allocates %.1f objects per frame, want <= 2 (Frame + vector)", allocs)
	}
}
