package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"syncstamp/internal/core"
	"syncstamp/internal/vector"
)

// Frame is one decoded protocol frame. Which fields are meaningful depends
// on Kind; the codec ignores the rest.
type Frame struct {
	Kind Kind

	// HELLO fields. Epoch is the connection generation for one (dialer,
	// acceptor) node pair: 0 on a first connection, strictly larger on every
	// reconnect, so an acceptor can tell a session resume from a duplicate.
	Node   int
	Procs  []int
	Digest uint64
	Role   byte
	Epoch  int

	// SYN/ACK fields. Vec is the full piggybacked vector — delta
	// compression is codec-internal and never visible to callers. Seq is the
	// sender process's rendezvous sequence number (starting at 1); an ACK
	// echoes the Seq of the SYN it answers, which is what makes
	// retransmission and dedup possible under loss.
	From, To int
	Seq      uint64
	Vec      vector.V
	// Safe is the synchronizer's cumulative round acknowledgment: the count
	// of rendezvous the sending node has fully committed with the receiving
	// node (asynchronous-substrate mode). It rides SYN/ACK frames as an
	// optional trailing field — encoded only when nonzero, read only when
	// present — so frames from runs without the synchronizer are
	// byte-identical to the pre-Safe wire format, old decoders reject
	// nothing they used to accept, and new decoders accept both.
	Safe uint64

	// INTERNAL fields.
	Proc int
	Note string

	// SHARD fields. Leaf is the leaf collector's index in a tree of Leaves
	// leaf collectors; Procs (shared with HELLO) carries an explicit
	// partition, or stays empty for the implicit proc % Leaves == Leaf rule.
	Leaf, Leaves int

	// SUMMARY payload (leaf → root roll-up).
	Summary *ShardSummary

	// VERDICT payload (root → leaves).
	Verdict *Verdict

	// METRICS payload (node/leaf → root).
	Metrics *Metrics
}

// GroupSummary is one edge group's fingerprint inside a shard summary: the
// multiset of message stamps the shard saw on the group, as a count and an
// order-independent XOR of per-stamp hashes, split by which half (send or
// recv) of the rendezvous the shard's processes logged. Summed across every
// shard, the send multiset and the recv multiset of a consistent run are
// identical — each message contributes one identical stamp to each — which
// is what lets the root judge cross-shard consistency in O(groups) memory.
type GroupSummary struct {
	Group                int
	SendCount, RecvCount uint64
	SendXor, RecvXor     uint64
	// RootSeq is the final group component of the group's star root process,
	// or -1 when this shard does not host that root (or the group is a
	// triangle). The root participates in every message of its group, so its
	// final component equals the group's message count in a correct run.
	RootSeq int64
}

// ShardSummary is the whole roll-up a leaf collector sends its root: counts,
// spill accounting, the per-group fingerprints, and the first verification
// error, if any. It deliberately contains no per-record state.
type ShardSummary struct {
	Leaf      int
	Procs     uint64 // processes that produced at least one record
	Sends     uint64
	Recvs     uint64
	Internals uint64
	Segments  uint64 // spill segments written
	Spilled   uint64 // spill bytes written
	Err       string // first verification or spill failure ("" = clean)
	Groups    []GroupSummary
}

// Verdict is the root's final judgment of a collected run.
type Verdict struct {
	OK       bool
	Shards   int    // summaries received
	Messages uint64 // matched messages across the run
	Records  uint64 // records ingested across the run, internals included
	Problems []string
}

// MetricValue is one named scalar instrument (counter or gauge) inside a
// METRICS frame. Values are zigzag-encoded, so gauges may be negative.
type MetricValue struct {
	Name  string
	Value int64
}

// MetricHistogram is one named histogram inside a METRICS frame: the fixed
// bucket edges, the per-bucket counts (one extra overflow bucket), and the
// observation count and sum.
type MetricHistogram struct {
	Name   string
	Edges  []int64
	Counts []int64
	Count  int64
	Sum    int64
}

// Metrics is one node's (or leaf collector's) registry snapshot, shipped up
// the report/collector path for the root to merge into the cluster rollup.
// Each list is sorted by name; the encoder rejects unsorted input so the
// frame bytes for a given snapshot are deterministic.
type Metrics struct {
	Node       int
	Counters   []MetricValue
	Gauges     []MetricValue
	Histograms []MetricHistogram
}

// pair keys the delta baselines: the ordered (from, to) process pair whose
// frames carry vectors from from to to.
type pair struct{ from, to int }

// Stats is per-kind frame accounting, indexed by Kind. Bytes include the
// length-prefix header, so sums match what the transport actually carried.
type Stats struct {
	Frames [KindMax]int
	Bytes  [KindMax]int
}

// add charges one encoded frame of n wire bytes to its kind.
func (s *Stats) add(k Kind, n int) {
	if int(k) < len(s.Frames) {
		s.Frames[k]++
		s.Bytes[k] += n
	}
}

// Merge folds another account into s.
func (s *Stats) Merge(o Stats) {
	for k := range s.Frames {
		s.Frames[k] += o.Frames[k]
		s.Bytes[k] += o.Bytes[k]
	}
}

// Total sums the account across kinds.
func (s Stats) Total() (frames, bytes int) {
	for k := range s.Frames {
		frames += s.Frames[k]
		bytes += s.Bytes[k]
	}
	return frames, bytes
}

// Kinds lists every frame kind, for iterating a Stats deterministically.
func Kinds() []Kind {
	return []Kind{KindHello, KindSyn, KindAck, KindInternal, KindBye, KindShard, KindSummary, KindVerdict, KindMetrics}
}

// Encoder writes frames to one stream, maintaining the per-pair delta
// baselines and the exact-size overhead accounting. An Encoder is not safe
// for concurrent use; internal/node serializes writes per connection.
//
// The steady-state encode path (SYN/ACK on an already-seen pair) performs
// zero allocations; bench_test.go pins that with AllocsPerRun.
type Encoder struct {
	w     *bufio.Writer
	d     int
	last  map[pair]vector.V
	buf   []byte
	batch bool

	// SelfContained forces every vector into dense form. Delta compression
	// assumes a lossless FIFO stream — encoder and decoder advance their
	// baselines in lockstep, so one dropped, duplicated, or reordered frame
	// corrupts every later vector on the pair. Recovery mode (retransmission
	// over faulty links) therefore trades the Singhal–Kshemkalyani byte
	// savings for frames that decode correctly in isolation.
	SelfContained bool

	// Overhead accumulates the exact piggyback cost of every SYN/ACK
	// encoded: the dense cost it would have paid next to the bytes the
	// chosen encoding actually paid.
	Overhead core.Overhead

	// Stats counts every frame written, by kind, header bytes included.
	Stats Stats
}

// NewEncoder returns an Encoder for vectors of length d.
func NewEncoder(w io.Writer, d int) *Encoder {
	return &Encoder{w: bufio.NewWriter(w), d: d, last: make(map[pair]vector.V)}
}

// SetBatch switches the encoder between flush-per-frame (the default, every
// Encode reaches the transport before returning) and batch mode, where
// frames accumulate in the write buffer until Flush — the coalescing mode
// internal/node drives with its flush-on-idle writer, trading one transport
// write per frame for one per burst.
func (e *Encoder) SetBatch(batch bool) { e.batch = batch }

// Flush forces every encoded frame onto the underlying stream. It is a
// cheap no-op when the buffer is empty.
func (e *Encoder) Flush() error {
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Encode writes one frame; unless the encoder is in batch mode, the frame
// is flushed to the underlying stream before Encode returns.
//
// The payload is built into the recycled buffer after a reserved header
// gap, the length varint is placed right-aligned against the payload, and
// header plus payload go out in one contiguous Write — a stack-local header
// buffer handed to an io.Writer would escape and cost an allocation per
// frame.
func (e *Encoder) Encode(f *Frame) error {
	const maxHdr = binary.MaxVarintLen64
	if cap(e.buf) < maxHdr {
		e.buf = make([]byte, maxHdr)
	}
	full, err := e.appendPayload(e.buf[:maxHdr], f)
	if err != nil {
		return err
	}
	e.buf = full[:0]
	plen := len(full) - maxHdr
	if plen > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", plen, MaxFrame)
	}
	var hdr [maxHdr]byte
	n := binary.PutUvarint(hdr[:], uint64(plen))
	start := maxHdr - n
	copy(full[start:maxHdr], hdr[:n])
	if _, err := e.w.Write(full[start:]); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	if !e.batch {
		if err := e.Flush(); err != nil {
			return err
		}
	}
	e.Stats.add(f.Kind, n+plen)
	return nil
}

func (e *Encoder) appendPayload(dst []byte, f *Frame) ([]byte, error) {
	dst = append(dst, byte(f.Kind))
	switch f.Kind {
	case KindHello:
		dst = append(dst, f.Role)
		dst = appendUvarint(dst, uint64(f.Node))
		dst = appendUvarint(dst, f.Digest)
		dst = appendUvarint(dst, uint64(f.Epoch))
		dst = appendUvarint(dst, uint64(len(f.Procs)))
		for _, p := range f.Procs {
			dst = appendUvarint(dst, uint64(p))
		}
	case KindSyn, KindAck:
		if len(f.Vec) != e.d {
			return nil, fmt.Errorf("wire: %v carries a %d-component vector, codec is configured for d=%d", f.Kind, len(f.Vec), e.d)
		}
		dst = appendUvarint(dst, uint64(f.From))
		dst = appendUvarint(dst, uint64(f.To))
		dst = appendUvarint(dst, f.Seq)
		dst = e.appendVec(dst, f)
		if f.Safe > 0 {
			// Optional trailing field: zero is omitted, keeping frames from
			// synchronizer-free runs byte-identical to the pre-Safe format.
			dst = appendUvarint(dst, f.Safe)
		}
	case KindInternal:
		if len(f.Note) > MaxNote {
			return nil, fmt.Errorf("wire: note of %d bytes exceeds limit %d", len(f.Note), MaxNote)
		}
		dst = appendUvarint(dst, uint64(f.Proc))
		dst = appendUvarint(dst, uint64(len(f.Note)))
		dst = append(dst, f.Note...)
	case KindBye:
		// No payload beyond the kind byte.
	case KindShard:
		if len(f.Procs) > MaxProcs {
			return nil, fmt.Errorf("wire: shard of %d explicit processes exceeds limit %d (use the modulo rule)", len(f.Procs), MaxProcs)
		}
		dst = appendUvarint(dst, uint64(f.Leaf))
		dst = appendUvarint(dst, uint64(f.Leaves))
		dst = appendUvarint(dst, uint64(len(f.Procs)))
		for _, p := range f.Procs {
			dst = appendUvarint(dst, uint64(p))
		}
	case KindSummary:
		s := f.Summary
		if s == nil {
			return nil, fmt.Errorf("wire: SUMMARY frame without a summary")
		}
		if len(s.Err) > MaxNote {
			return nil, fmt.Errorf("wire: summary error of %d bytes exceeds limit %d", len(s.Err), MaxNote)
		}
		if len(s.Groups) > MaxGroups {
			return nil, fmt.Errorf("wire: summary of %d groups exceeds limit %d", len(s.Groups), MaxGroups)
		}
		dst = appendUvarint(dst, uint64(s.Leaf))
		dst = appendUvarint(dst, s.Procs)
		dst = appendUvarint(dst, s.Sends)
		dst = appendUvarint(dst, s.Recvs)
		dst = appendUvarint(dst, s.Internals)
		dst = appendUvarint(dst, s.Segments)
		dst = appendUvarint(dst, s.Spilled)
		dst = appendUvarint(dst, uint64(len(s.Err)))
		dst = append(dst, s.Err...)
		dst = appendUvarint(dst, uint64(len(s.Groups)))
		for _, g := range s.Groups {
			dst = appendUvarint(dst, uint64(g.Group))
			dst = appendUvarint(dst, g.SendCount)
			dst = appendUvarint(dst, g.SendXor)
			dst = appendUvarint(dst, g.RecvCount)
			dst = appendUvarint(dst, g.RecvXor)
			// RootSeq shifted by one so -1 (no root here) encodes as 0.
			dst = appendUvarint(dst, uint64(g.RootSeq+1))
		}
	case KindVerdict:
		v := f.Verdict
		if v == nil {
			return nil, fmt.Errorf("wire: VERDICT frame without a verdict")
		}
		if len(v.Problems) > MaxProblems {
			return nil, fmt.Errorf("wire: verdict of %d problems exceeds limit %d", len(v.Problems), MaxProblems)
		}
		ok := byte(0)
		if v.OK {
			ok = 1
		}
		dst = append(dst, ok)
		dst = appendUvarint(dst, uint64(v.Shards))
		dst = appendUvarint(dst, v.Messages)
		dst = appendUvarint(dst, v.Records)
		dst = appendUvarint(dst, uint64(len(v.Problems)))
		for _, p := range v.Problems {
			if len(p) > MaxNote {
				return nil, fmt.Errorf("wire: verdict problem of %d bytes exceeds limit %d", len(p), MaxNote)
			}
			dst = appendUvarint(dst, uint64(len(p)))
			dst = append(dst, p...)
		}
	case KindMetrics:
		m := f.Metrics
		if m == nil {
			return nil, fmt.Errorf("wire: METRICS frame without a payload")
		}
		dst = appendUvarint(dst, uint64(m.Node))
		var err error
		if dst, err = appendMetricValues(dst, "counter", m.Counters); err != nil {
			return nil, err
		}
		if dst, err = appendMetricValues(dst, "gauge", m.Gauges); err != nil {
			return nil, err
		}
		if len(m.Histograms) > MaxMetrics {
			return nil, fmt.Errorf("wire: %d histograms exceed limit %d", len(m.Histograms), MaxMetrics)
		}
		dst = appendUvarint(dst, uint64(len(m.Histograms)))
		for i, h := range m.Histograms {
			if i > 0 && h.Name <= m.Histograms[i-1].Name {
				return nil, fmt.Errorf("wire: histogram names not strictly sorted at %q", h.Name)
			}
			if len(h.Name) > MaxNote {
				return nil, fmt.Errorf("wire: metric name of %d bytes exceeds limit %d", len(h.Name), MaxNote)
			}
			if len(h.Edges) > MaxEdges {
				return nil, fmt.Errorf("wire: histogram %q has %d edges, limit %d", h.Name, len(h.Edges), MaxEdges)
			}
			if len(h.Counts) != len(h.Edges)+1 {
				return nil, fmt.Errorf("wire: histogram %q has %d counts for %d edges", h.Name, len(h.Counts), len(h.Edges))
			}
			dst = appendUvarint(dst, uint64(len(h.Name)))
			dst = append(dst, h.Name...)
			dst = appendUvarint(dst, uint64(len(h.Edges)))
			for _, e := range h.Edges {
				dst = appendZigzag(dst, e)
			}
			for _, c := range h.Counts {
				dst = appendUvarint(dst, uint64(c))
			}
			dst = appendUvarint(dst, uint64(h.Count))
			dst = appendZigzag(dst, h.Sum)
		}
	default:
		return nil, fmt.Errorf("wire: cannot encode kind %v", f.Kind)
	}
	return dst, nil
}

// appendMetricValues encodes one sorted name/value list of a METRICS frame.
func appendMetricValues(dst []byte, what string, vals []MetricValue) ([]byte, error) {
	if len(vals) > MaxMetrics {
		return nil, fmt.Errorf("wire: %d %ss exceed limit %d", len(vals), what, MaxMetrics)
	}
	dst = appendUvarint(dst, uint64(len(vals)))
	for i, v := range vals {
		if i > 0 && v.Name <= vals[i-1].Name {
			return nil, fmt.Errorf("wire: %s names not strictly sorted at %q", what, v.Name)
		}
		if len(v.Name) > MaxNote {
			return nil, fmt.Errorf("wire: metric name of %d bytes exceeds limit %d", len(v.Name), MaxNote)
		}
		dst = appendUvarint(dst, uint64(len(v.Name)))
		dst = append(dst, v.Name...)
		dst = appendZigzag(dst, v.Value)
	}
	return dst, nil
}

// appendVec encodes f.Vec in whichever of dense/delta form is smaller,
// updates the (From, To) baseline, and charges the overhead account. The
// delta is computed against the baseline inline — no []Change materializes
// and the baseline is overwritten in place — so a warm pair costs no
// allocations.
func (e *Encoder) appendVec(dst []byte, f *Frame) []byte {
	if e.SelfContained {
		dst = append(dst, 0)
		for _, x := range f.Vec {
			dst = appendUvarint(dst, uint64(x))
		}
		size := 1 + denseLen(f.Vec)
		e.Overhead.Add(size, size)
		return dst
	}
	key := pair{f.From, f.To}
	base, ok := e.last[key]
	if !ok {
		base = vector.New(e.d)
		e.last[key] = base
	}
	changed, deltaBody := 0, 0
	for i, x := range f.Vec {
		if x != base[i] {
			changed++
			deltaBody += uvarintLen(uint64(i)) + uvarintLen(uint64(x))
		}
	}

	denseSize := 1 + denseLen(f.Vec)
	deltaSize := 1 + uvarintLen(uint64(changed)) + deltaBody
	if deltaSize < denseSize {
		dst = append(dst, 1)
		dst = appendUvarint(dst, uint64(changed))
		for i, x := range f.Vec {
			if x != base[i] {
				dst = appendUvarint(dst, uint64(i))
				dst = appendUvarint(dst, uint64(x))
			}
		}
		e.Overhead.Add(denseSize, deltaSize)
	} else {
		dst = append(dst, 0)
		for _, x := range f.Vec {
			dst = appendUvarint(dst, uint64(x))
		}
		e.Overhead.Add(denseSize, denseSize)
	}
	copy(base, f.Vec)
	return dst
}

func denseLen(v vector.V) int {
	n := 0
	for _, x := range v {
		n += uvarintLen(uint64(x))
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func appendUvarint(dst []byte, x uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	return append(dst, buf[:n]...)
}

// appendZigzag encodes a signed value as a zigzag uvarint (the encoding
// binary.PutVarint uses), so small negatives stay small on the wire.
func appendZigzag(dst []byte, x int64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], x)
	return append(dst, buf[:n]...)
}

// Decoder reads frames from one stream, mirroring the Encoder's delta
// baselines. A Decoder is not safe for concurrent use.
type Decoder struct {
	r    *bufio.Reader
	d    int
	last map[pair]vector.V
	buf  []byte
}

// NewDecoder returns a Decoder for vectors of length d.
func NewDecoder(r io.Reader, d int) *Decoder {
	return &Decoder{r: bufio.NewReader(r), d: d, last: make(map[pair]vector.V)}
}

// Decode reads the next frame. It returns io.EOF only at a clean frame
// boundary; a stream truncated mid-frame is an ErrUnexpectedEOF-wrapping
// error.
func (d *Decoder) Decode() (*Frame, error) {
	size, err := binary.ReadUvarint(d.r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	if size == 0 || size > MaxFrame {
		return nil, fmt.Errorf("wire: implausible frame size %d", size)
	}
	if cap(d.buf) < int(size) {
		d.buf = make([]byte, size)
	}
	payload := d.buf[:size]
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	return d.parse(payload)
}

// reader walks a payload with bounds checking.
type reader struct {
	b   []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated varint at offset %d", r.off)
	}
	r.off += n
	return x, nil
}

// varint reads one zigzag-encoded signed value.
func (r *reader) varint() (int64, error) {
	x, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated varint at offset %d", r.off)
	}
	r.off += n
	return x, nil
}

func (r *reader) intField(name string, limit uint64) (int, error) {
	x, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if x > limit {
		return 0, fmt.Errorf("wire: %s %d exceeds limit %d", name, x, limit)
	}
	return int(x), nil
}

// str reads a length-prefixed string of at most limit bytes.
func (r *reader) str(name string, limit uint64) (string, error) {
	n, err := r.intField(name+" length", limit)
	if err != nil {
		return "", err
	}
	if r.off+n > len(r.b) {
		return "", fmt.Errorf("wire: %s of %d bytes overruns frame", name, n)
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("wire: truncated frame at offset %d", r.off)
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (d *Decoder) parse(payload []byte) (*Frame, error) {
	r := &reader{b: payload}
	kb, err := r.byte()
	if err != nil {
		return nil, err
	}
	f := &Frame{Kind: Kind(kb)}
	switch f.Kind {
	case KindHello:
		if f.Role, err = r.byte(); err != nil {
			return nil, err
		}
		if f.Node, err = r.intField("node", 1<<31); err != nil {
			return nil, err
		}
		if f.Digest, err = r.uvarint(); err != nil {
			return nil, err
		}
		if f.Epoch, err = r.intField("epoch", 1<<31); err != nil {
			return nil, err
		}
		count, err := r.intField("proc count", MaxProcs)
		if err != nil {
			return nil, err
		}
		f.Procs = make([]int, count)
		for i := range f.Procs {
			if f.Procs[i], err = r.intField("proc", 1<<31); err != nil {
				return nil, err
			}
		}
	case KindSyn, KindAck:
		if f.From, err = r.intField("from", 1<<31); err != nil {
			return nil, err
		}
		if f.To, err = r.intField("to", 1<<31); err != nil {
			return nil, err
		}
		if f.Seq, err = r.uvarint(); err != nil {
			return nil, err
		}
		if f.Vec, err = d.readVec(r, f.From, f.To); err != nil {
			return nil, err
		}
		if r.off < len(r.b) {
			// Version-tolerant decode: a trailing uvarint is the optional
			// Safe field; its absence means zero.
			if f.Safe, err = r.uvarint(); err != nil {
				return nil, err
			}
		}
	case KindInternal:
		if f.Proc, err = r.intField("proc", 1<<31); err != nil {
			return nil, err
		}
		n, err := r.intField("note length", MaxNote)
		if err != nil {
			return nil, err
		}
		if r.off+n > len(r.b) {
			return nil, fmt.Errorf("wire: note of %d bytes overruns frame", n)
		}
		f.Note = string(r.b[r.off : r.off+n])
		r.off += n
	case KindBye:
		// No payload.
	case KindShard:
		if f.Leaf, err = r.intField("leaf", 1<<31); err != nil {
			return nil, err
		}
		if f.Leaves, err = r.intField("leaves", 1<<31); err != nil {
			return nil, err
		}
		count, err := r.intField("proc count", MaxProcs)
		if err != nil {
			return nil, err
		}
		if count > 0 {
			f.Procs = make([]int, count)
			for i := range f.Procs {
				if f.Procs[i], err = r.intField("proc", 1<<31); err != nil {
					return nil, err
				}
			}
		}
	case KindSummary:
		s := &ShardSummary{}
		if s.Leaf, err = r.intField("leaf", 1<<31); err != nil {
			return nil, err
		}
		for _, dst := range []*uint64{&s.Procs, &s.Sends, &s.Recvs, &s.Internals, &s.Segments, &s.Spilled} {
			if *dst, err = r.uvarint(); err != nil {
				return nil, err
			}
		}
		if s.Err, err = r.str("summary error", MaxNote); err != nil {
			return nil, err
		}
		count, err := r.intField("group count", MaxGroups)
		if err != nil {
			return nil, err
		}
		if count > 0 {
			s.Groups = make([]GroupSummary, count)
			for i := range s.Groups {
				g := &s.Groups[i]
				if g.Group, err = r.intField("group", 1<<31); err != nil {
					return nil, err
				}
				for _, dst := range []*uint64{&g.SendCount, &g.SendXor, &g.RecvCount, &g.RecvXor} {
					if *dst, err = r.uvarint(); err != nil {
						return nil, err
					}
				}
				seq, err := r.intField("root seq", 1<<62)
				if err != nil {
					return nil, err
				}
				g.RootSeq = int64(seq) - 1
			}
		}
		f.Summary = s
	case KindVerdict:
		v := &Verdict{}
		ok, err := r.byte()
		if err != nil {
			return nil, err
		}
		v.OK = ok != 0
		if v.Shards, err = r.intField("shards", 1<<31); err != nil {
			return nil, err
		}
		if v.Messages, err = r.uvarint(); err != nil {
			return nil, err
		}
		if v.Records, err = r.uvarint(); err != nil {
			return nil, err
		}
		count, err := r.intField("problem count", MaxProblems)
		if err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			p, err := r.str("problem", MaxNote)
			if err != nil {
				return nil, err
			}
			v.Problems = append(v.Problems, p)
		}
		f.Verdict = v
	case KindMetrics:
		m := &Metrics{}
		if m.Node, err = r.intField("node", 1<<31); err != nil {
			return nil, err
		}
		if m.Counters, err = readMetricValues(r, "counter"); err != nil {
			return nil, err
		}
		if m.Gauges, err = readMetricValues(r, "gauge"); err != nil {
			return nil, err
		}
		count, err := r.intField("histogram count", MaxMetrics)
		if err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			var h MetricHistogram
			if h.Name, err = r.str("metric name", MaxNote); err != nil {
				return nil, err
			}
			if i > 0 && h.Name <= m.Histograms[i-1].Name {
				return nil, fmt.Errorf("wire: histogram names not strictly sorted at %q", h.Name)
			}
			edges, err := r.intField("edge count", MaxEdges)
			if err != nil {
				return nil, err
			}
			if edges > 0 {
				h.Edges = make([]int64, edges)
				for j := range h.Edges {
					if h.Edges[j], err = r.varint(); err != nil {
						return nil, err
					}
				}
			}
			h.Counts = make([]int64, edges+1)
			for j := range h.Counts {
				c, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if c > 1<<62 {
					return nil, fmt.Errorf("wire: implausible bucket count %d", c)
				}
				h.Counts[j] = int64(c)
			}
			cnt, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if cnt > 1<<62 {
				return nil, fmt.Errorf("wire: implausible histogram count %d", cnt)
			}
			h.Count = int64(cnt)
			if h.Sum, err = r.varint(); err != nil {
				return nil, err
			}
			m.Histograms = append(m.Histograms, h)
		}
		f.Metrics = m
	default:
		return nil, fmt.Errorf("wire: unknown frame kind %d", kb)
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %v frame", len(r.b)-r.off, f.Kind)
	}
	return f, nil
}

// readMetricValues decodes one sorted name/value list of a METRICS frame.
func readMetricValues(r *reader, what string) ([]MetricValue, error) {
	count, err := r.intField(what+" count", MaxMetrics)
	if err != nil {
		return nil, err
	}
	var vals []MetricValue
	for i := 0; i < count; i++ {
		var v MetricValue
		if v.Name, err = r.str("metric name", MaxNote); err != nil {
			return nil, err
		}
		if i > 0 && v.Name <= vals[i-1].Name {
			return nil, fmt.Errorf("wire: %s names not strictly sorted at %q", what, v.Name)
		}
		if v.Value, err = r.varint(); err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// readVec decodes a vector and advances the (from, to) baseline exactly as
// the encoder did. The returned vector is a fresh allocation (internal/node
// retains it past the next Decode); the baseline is a separate array
// updated in place, so a warm SYN/ACK decode costs exactly the Frame and
// the vector — bench_test.go pins it.
func (d *Decoder) readVec(r *reader, from, to int) (vector.V, error) {
	mode, err := r.byte()
	if err != nil {
		return nil, err
	}
	key := pair{from, to}
	base, ok := d.last[key]
	if !ok {
		base = vector.New(d.d)
		d.last[key] = base
	}
	v := vector.New(d.d)
	switch mode {
	case 0: // dense
		for k := range v {
			if v[k], err = r.intField("component", 1<<62); err != nil {
				return nil, err
			}
		}
	case 1: // delta against the pair baseline
		count, err := r.intField("delta count", uint64(d.d))
		if err != nil {
			return nil, err
		}
		copy(v, base)
		for i := 0; i < count; i++ {
			idx, err := r.intField("delta index", uint64(d.d))
			if err != nil {
				return nil, err
			}
			val, err := r.intField("delta value", 1<<62)
			if err != nil {
				return nil, err
			}
			if idx >= len(v) {
				return nil, fmt.Errorf("wire: delta index %d out of range [0,%d)", idx, len(v))
			}
			v[idx] = val
		}
	default:
		return nil, fmt.Errorf("wire: unknown vector mode %d", mode)
	}
	copy(base, v)
	return v, nil
}
