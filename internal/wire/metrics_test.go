package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// TestMetricsFrameRoundTrip exercises the cluster-rollup frame: counters,
// gauges (negative deltas included), and full histogram snapshots.
func TestMetricsFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Kind: KindMetrics, Metrics: &Metrics{
			Node: 3,
			Counters: []MetricValue{
				{Name: "frames_total", Value: 1234},
				{Name: "rendezvous_total", Value: 56},
			},
			Gauges: []MetricValue{
				{Name: "clock_skew", Value: -7},
				{Name: "resident_records", Value: 42},
			},
			Histograms: []MetricHistogram{
				{
					Name:   "latency_ns",
					Edges:  []int64{1000, 2000, 5000},
					Counts: []int64{1, 0, 9, 2},
					Count:  12,
					Sum:    48211,
				},
			},
		}},
		{Kind: KindMetrics, Metrics: &Metrics{Node: 0}},
	}
	got := pipeRoundTrip(t, 3, frames)
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !reflect.DeepEqual(frames[i], got[i]) {
			t.Errorf("frame %d: got %+v, want %+v", i, got[i], frames[i])
		}
	}
}

// TestMetricsFrameRejectsMalformed pins the validation: names must arrive
// strictly sorted (the deterministic wire order), histograms must carry
// len(edges)+1 buckets, and a METRICS frame needs its payload.
func TestMetricsFrameRejectsMalformed(t *testing.T) {
	enc := NewEncoder(bytes.NewBuffer(nil), 3)
	if err := enc.Encode(&Frame{Kind: KindMetrics}); err == nil {
		t.Fatal("METRICS without a payload encoded without error")
	}
	if err := enc.Encode(&Frame{Kind: KindMetrics, Metrics: &Metrics{
		Counters: []MetricValue{{Name: "b"}, {Name: "a"}},
	}}); err == nil {
		t.Fatal("unsorted counter names encoded without error")
	}
	if err := enc.Encode(&Frame{Kind: KindMetrics, Metrics: &Metrics{
		Gauges: []MetricValue{{Name: "a"}, {Name: "a"}},
	}}); err == nil {
		t.Fatal("duplicate gauge names encoded without error")
	}
	if err := enc.Encode(&Frame{Kind: KindMetrics, Metrics: &Metrics{
		Histograms: []MetricHistogram{{Name: "h", Edges: []int64{1, 2}, Counts: []int64{1, 2}}},
	}}); err == nil {
		t.Fatal("histogram with wrong bucket count encoded without error")
	}

	// The decoder enforces the same sortedness on the incoming bytes: take a
	// valid frame and swap the two encoded names.
	var buf bytes.Buffer
	enc = NewEncoder(&buf, 3)
	if err := enc.Encode(&Frame{Kind: KindMetrics, Metrics: &Metrics{
		Counters: []MetricValue{{Name: "aa", Value: 1}, {Name: "bb", Value: 2}},
	}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	ai, bi := bytes.Index(raw, []byte("aa")), bytes.Index(raw, []byte("bb"))
	if ai < 0 || bi < 0 {
		t.Fatalf("metric names not found in wire bytes %v", raw)
	}
	copy(raw[ai:], "bb")
	copy(raw[bi:], "aa")
	if _, err := NewDecoder(bytes.NewReader(raw), 3).Decode(); err == nil {
		t.Fatal("decoder accepted unsorted metric names")
	}
}
