package wire

import (
	"bytes"
	"reflect"
	"testing"

	"syncstamp/internal/vector"
)

// TestSafeFieldRoundTrip pins the synchronizer piggyback: nonzero Safe
// survives the round trip on SYN and ACK frames, in delta and
// self-contained modes alike.
func TestSafeFieldRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Kind: KindSyn, From: 0, To: 1, Seq: 1, Vec: vector.V{1, 0}, Safe: 3},
		{Kind: KindAck, From: 1, To: 0, Seq: 1, Vec: vector.V{1, 1}, Safe: 7},
		{Kind: KindSyn, From: 0, To: 1, Seq: 2, Vec: vector.V{2, 1}}, // Safe 0: omitted
		{Kind: KindAck, From: 1, To: 0, Seq: 2, Vec: vector.V{2, 2}, Safe: 1 << 40},
	}
	got := pipeRoundTrip(t, 2, frames)
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !reflect.DeepEqual(frames[i], got[i]) {
			t.Errorf("frame %d: got %+v, want %+v", i, got[i], frames[i])
		}
	}
}

// TestSafeZeroEncodesIdentically is the version-tolerance contract from the
// encoder's side: a frame with Safe == 0 must produce exactly the bytes the
// pre-Safe codec produced, so golden overhead numbers and old decoders see
// nothing new.
func TestSafeZeroEncodesIdentically(t *testing.T) {
	encode := func(f *Frame) []byte {
		var buf bytes.Buffer
		enc := NewEncoder(&buf, 2)
		if err := enc.Encode(f); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := encode(&Frame{Kind: KindSyn, From: 0, To: 1, Seq: 1, Vec: vector.V{1, 0}})
	zeroed := encode(&Frame{Kind: KindSyn, From: 0, To: 1, Seq: 1, Vec: vector.V{1, 0}, Safe: 0})
	if !bytes.Equal(plain, zeroed) {
		t.Fatalf("Safe=0 changed the encoding:\n%x\n%x", plain, zeroed)
	}
	withSafe := encode(&Frame{Kind: KindSyn, From: 0, To: 1, Seq: 1, Vec: vector.V{1, 0}, Safe: 5})
	if len(withSafe) != len(plain)+1 {
		t.Fatalf("small Safe must cost exactly one trailing byte: %d vs %d", len(withSafe), len(plain))
	}
}

// TestSafeDecodeTolerant feeds a new decoder a frame without the trailing
// field and an old-format stream a frame with it, proving both directions
// of version tolerance at the byte level.
func TestSafeDecodeTolerant(t *testing.T) {
	// A pre-Safe frame (no trailing uvarint) decodes with Safe == 0.
	var buf bytes.Buffer
	enc := NewEncoder(&buf, 2)
	if err := enc.Encode(&Frame{Kind: KindAck, From: 1, To: 0, Seq: 4, Vec: vector.V{2, 2}}); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf, 2)
	f, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if f.Safe != 0 {
		t.Fatalf("pre-Safe frame decoded Safe=%d, want 0", f.Safe)
	}

	// A truncated trailing uvarint (continuation bit with no continuation)
	// is a malformed frame, not a silent zero.
	var buf2 bytes.Buffer
	enc2 := NewEncoder(&buf2, 2)
	if err := enc2.Encode(&Frame{Kind: KindSyn, From: 0, To: 1, Seq: 1, Vec: vector.V{1, 0}}); err != nil {
		t.Fatal(err)
	}
	raw := buf2.Bytes()
	// Rewrite the length prefix for one extra payload byte, then append a
	// lone continuation byte as the bogus Safe field.
	if raw[0] != byte(len(raw)-1) {
		t.Skipf("frame length %d not single-byte-prefixed; test assumes small frames", len(raw))
	}
	raw[0]++
	raw = append(raw, 0x80)
	if _, err := NewDecoder(bytes.NewReader(raw), 2).Decode(); err == nil {
		t.Fatal("truncated Safe field decoded without error")
	}
}
