package vclock

import (
	"fmt"

	"syncstamp/internal/trace"
)

// DirectDep implements Fowler–Zwaenepoel direct-dependency tracking for
// synchronous messages. Each message piggybacks only a constant amount of
// data (the peers' current message ids); the full ↦ relation is recovered
// offline by recursively chasing direct dependencies. The paper's Section 6
// notes this suits applications whose precedence tests run offline — the
// tradeoff experiment E13/E15 quantifies the query cost against the online
// algorithm's O(d) piggyback.
type DirectDep struct {
	// deps[m] lists the immediate predecessor message of m on each of its
	// two participants (deduplicated, -1 entries removed).
	deps [][]int
	n    int
}

// NewDirectDep builds the dependency index for a recorded computation.
func NewDirectDep(tr *trace.Trace) *DirectDep {
	last := make([]int, tr.N)
	for i := range last {
		last[i] = -1
	}
	d := &DirectDep{n: tr.NumMessages()}
	d.deps = make([][]int, 0, d.n)
	idx := 0
	for _, op := range tr.Ops {
		if op.Kind != trace.OpMessage {
			continue
		}
		var dep []int
		if p := last[op.From]; p != -1 {
			dep = append(dep, p)
		}
		if p := last[op.To]; p != -1 && (len(dep) == 0 || dep[0] != p) {
			dep = append(dep, p)
		}
		d.deps = append(d.deps, dep)
		last[op.From] = idx
		last[op.To] = idx
		idx++
	}
	return d
}

// NumMessages returns the number of indexed messages.
func (d *DirectDep) NumMessages() int { return d.n }

// Precedes reports m1 ↦ m2 by depth-first search through direct
// dependencies. The second return value is the number of dependency records
// visited — the query-cost metric reported by experiment E13.
func (d *DirectDep) Precedes(m1, m2 int) (bool, int) {
	if m1 < 0 || m1 >= d.n || m2 < 0 || m2 >= d.n {
		panic(fmt.Sprintf("vclock: message index out of range: %d, %d (have %d)", m1, m2, d.n))
	}
	if m1 >= m2 {
		return false, 0
	}
	visited := make(map[int]bool, 8)
	cost := 0
	var dfs func(m int) bool
	dfs = func(m int) bool {
		cost++
		if m == m1 {
			return true
		}
		if m < m1 || visited[m] {
			return false
		}
		visited[m] = true
		for _, p := range d.deps[m] {
			if dfs(p) {
				return true
			}
		}
		return false
	}
	found := false
	for _, p := range d.deps[m2] {
		if dfs(p) {
			found = true
			break
		}
	}
	return found, cost
}

// PiggybackInts returns the number of integers a message carries under
// direct-dependency tracking: one message id per participant (constant 2),
// independent of N — the piggyback-size metric of experiment E13.
func (d *DirectDep) PiggybackInts() int { return 2 }
