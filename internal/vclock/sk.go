package vclock

import (
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// SK simulates the Singhal–Kshemkalyani differential implementation of
// vector clocks (Section 6 of the paper): a process sends a peer only the
// components that changed since their last exchange, as (index, value)
// pairs, trading per-process storage (one shadow vector per peer) for
// smaller piggybacks. The resulting timestamps are identical to FM's; what
// differs is the wire cost, which SKResult records per message so
// experiment E13 can compare it against the online algorithm's flat O(d).
type SK struct{}

// Name implements Stamper.
func (SK) Name() string { return "singhal-kshemkalyani" }

// SKResult is the outcome of a differential-piggyback simulation.
type SKResult struct {
	// Stamps are the message timestamps (identical to FM's).
	Stamps []vector.V
	// EntriesPerMsg is the number of (index, value) pairs carried by each
	// message plus its acknowledgement.
	EntriesPerMsg []int
	// TotalEntries is the sum of EntriesPerMsg.
	TotalEntries int
}

// MeanEntries returns the mean pairs carried per message.
func (r *SKResult) MeanEntries() float64 {
	if len(r.EntriesPerMsg) == 0 {
		return 0
	}
	return float64(r.TotalEntries) / float64(len(r.EntriesPerMsg))
}

// MeanBytes estimates the mean piggyback bytes per message: each
// differential entry carries an index and a value, roughly one varint byte
// apiece at the experiment scales.
func (r *SKResult) MeanBytes() float64 { return 2 * r.MeanEntries() }

// StampTrace implements Stamper (returning FM-identical stamps).
func (SK) StampTrace(tr *trace.Trace) []vector.V {
	return Simulate(tr).Stamps
}

// Simulate runs the differential protocol over a recorded computation.
func Simulate(tr *trace.Trace) *SKResult {
	clocks := make([]vector.V, tr.N)
	for i := range clocks {
		clocks[i] = vector.New(tr.N)
	}
	// lastExchanged[i][j] is i's record of the vector state both sides
	// agreed on after their last exchange (nil until they first talk).
	lastExchanged := make([][]vector.V, tr.N)
	for i := range lastExchanged {
		lastExchanged[i] = make([]vector.V, tr.N)
	}

	res := &SKResult{}
	diffCount := func(cur, base vector.V) int {
		if base == nil {
			// First contact: every nonzero component is news.
			n := 0
			for _, x := range cur {
				if x != 0 {
					n++
				}
			}
			return n
		}
		return vector.Diff(cur, base)
	}

	for _, op := range tr.Ops {
		if op.Kind != trace.OpMessage {
			continue
		}
		i, j := op.From, op.To
		clocks[i][i]++
		clocks[j][j]++
		entries := diffCount(clocks[i], lastExchanged[i][j]) +
			diffCount(clocks[j], lastExchanged[j][i])
		clocks[i].Max(clocks[j])
		copy(clocks[j], clocks[i])
		merged := clocks[i].Clone()
		lastExchanged[i][j] = merged
		lastExchanged[j][i] = merged
		res.Stamps = append(res.Stamps, merged)
		res.EntriesPerMsg = append(res.EntriesPerMsg, entries)
		res.TotalEntries += entries
	}
	return res
}

var _ Stamper = SK{}
