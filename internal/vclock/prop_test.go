package vclock_test

import (
	"testing"

	"syncstamp/internal/check"
)

// TestPropBaselinesExact: Fidge–Mattern vectors and Fowler–Zwaenepoel
// direct-dependency queries must characterize ↦ exactly on every generated
// computation.
func TestPropBaselinesExact(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		return check.Compare(in, "fm", "directdep")
	})
}

// TestPropPlausibleSound: Lamport scalars and Torres-Rojas/Ahamad plausible
// clocks may order concurrent pairs, but must report every true ordering in
// the right direction — no false concurrency, no inversions.
func TestPropPlausibleSound(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		return check.Compare(in, "lamport", "plausible")
	})
}
