package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

func genTrace(seed int64, maxN, maxMsgs int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(2+rng.Intn(maxN-1), 0.4, rng)
	return trace.Generate(g, trace.GenOptions{Messages: 1 + rng.Intn(maxMsgs)}, rng)
}

func TestFMName(t *testing.T) {
	if (FM{}).Name() != "fidge-mattern" {
		t.Fatal("FM name wrong")
	}
	if (Lamport{}).Name() != "lamport" {
		t.Fatal("Lamport name wrong")
	}
	if (Plausible{R: 3}).Name() != "plausible-R3" {
		t.Fatal("Plausible name wrong")
	}
}

// Property: FM timestamps characterize ↦ exactly (the classical result the
// paper improves on for synchronous computations).
func TestQuickFMCharacterizesOrder(t *testing.T) {
	f := func(seed int64) bool {
		tr := genTrace(seed, 8, 50)
		stamps := FM{}.StampTrace(tr)
		p := order.MessagePoset(tr)
		for i := range stamps {
			if len(stamps[i]) != tr.N {
				return false
			}
			for j := range stamps {
				if i != j && vector.Less(stamps[i], stamps[j]) != p.Less(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFMSimpleChain(t *testing.T) {
	tr := &trace.Trace{N: 3}
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Message(1, 2))
	stamps := FM{}.StampTrace(tr)
	want0 := vector.V{1, 1, 0}
	want1 := vector.V{1, 2, 1}
	if !vector.Eq(stamps[0], want0) || !vector.Eq(stamps[1], want1) {
		t.Fatalf("stamps = %v, want [%v %v]", stamps, want0, want1)
	}
}

// Property: Lamport clocks preserve ↦ (m1 ↦ m2 ⇒ L1 < L2) and are totally
// ordered per process sequence.
func TestQuickLamportPreservesOrder(t *testing.T) {
	f := func(seed int64) bool {
		tr := genTrace(seed, 8, 50)
		stamps := Lamport{}.StampTrace(tr)
		p := order.MessagePoset(tr)
		for i := range stamps {
			for j := range stamps {
				if i != j && p.Less(i, j) && stamps[i][0] >= stamps[j][0] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: plausible clocks are plausible — m1 ↦ m2 ⇒ v1 < v2, hence
// incomparable stamps imply true concurrency. With R = N they reduce to an
// exact characterization on these traces.
func TestQuickPlausiblePlausibility(t *testing.T) {
	f := func(seed int64, rRaw uint8) bool {
		tr := genTrace(seed, 8, 40)
		r := 1 + int(rRaw)%tr.N
		stamps := Plausible{R: r}.StampTrace(tr)
		p := order.MessagePoset(tr)
		for i := range stamps {
			for j := range stamps {
				if i == j {
					continue
				}
				if p.Less(i, j) && !vector.Less(stamps[i], stamps[j]) {
					return false
				}
				if vector.Concurrent(stamps[i], stamps[j]) && !p.Concurrent(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPlausibleFalseOrderingsExist(t *testing.T) {
	// With R=1 every pair is ordered, so any concurrent pair is falsely
	// ordered: two disjoint messages.
	tr := &trace.Trace{N: 4}
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Message(2, 3))
	stamps := Plausible{R: 1}.StampTrace(tr)
	if vector.Concurrent(stamps[0], stamps[1]) {
		t.Fatal("R=1 plausible clock cannot represent concurrency")
	}
}

func TestPlausibleBadRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("R=0 did not panic")
		}
	}()
	Plausible{}.StampTrace(&trace.Trace{N: 2})
}

func TestDirectDepKnown(t *testing.T) {
	// Chain 0 -> 1 -> 2 via shared processes, and 3 disjoint... build:
	// m0=(0,1), m1=(1,2), m2=(2,3), m3=(4,5) on 6 processes.
	tr := &trace.Trace{N: 6}
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Message(1, 2))
	tr.MustAppend(trace.Message(2, 3))
	tr.MustAppend(trace.Message(4, 5))
	d := NewDirectDep(tr)
	if d.NumMessages() != 4 {
		t.Fatalf("NumMessages = %d", d.NumMessages())
	}
	if ok, _ := d.Precedes(0, 2); !ok {
		t.Fatal("want 0 ↦ 2 via recursion")
	}
	if ok, _ := d.Precedes(0, 3); ok {
		t.Fatal("0 and 3 are concurrent")
	}
	if ok, _ := d.Precedes(2, 0); ok {
		t.Fatal("↦ respects sequence order")
	}
	if ok, _ := d.Precedes(1, 1); ok {
		t.Fatal("↦ is irreflexive")
	}
	if d.PiggybackInts() != 2 {
		t.Fatal("direct dependency piggyback must be constant")
	}
}

func TestDirectDepPanicsOutOfRange(t *testing.T) {
	d := NewDirectDep(&trace.Trace{N: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("out of range did not panic")
		}
	}()
	d.Precedes(0, 1)
}

// Property: DirectDep.Precedes equals the message poset oracle.
func TestQuickDirectDepMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		tr := genTrace(seed, 7, 40)
		d := NewDirectDep(tr)
		p := order.MessagePoset(tr)
		for i := 0; i < d.NumMessages(); i++ {
			for j := 0; j < d.NumMessages(); j++ {
				if i == j {
					continue
				}
				got, cost := d.Precedes(i, j)
				if got != p.Less(i, j) {
					return false
				}
				if got && cost == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: FM stamps are distinct across messages (plausible clocks, by
// contrast, may assign equal stamps to concurrent messages whose
// participants collide under mod R — part of their imprecision).
func TestQuickStampsDistinct(t *testing.T) {
	f := func(seed int64) bool {
		tr := genTrace(seed, 8, 40)
		stamps := FM{}.StampTrace(tr)
		for i := range stamps {
			for j := range stamps {
				if i != j && vector.Eq(stamps[i], stamps[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFMStampTraceN64(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Complete(64)
	tr := trace.Generate(g, trace.GenOptions{Messages: 1000}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FM{}.StampTrace(tr)
	}
}
