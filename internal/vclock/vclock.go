// Package vclock implements the timestamping baselines the paper compares
// against (Sections 1 and 6), adapted to synchronous computations so that
// each message receives one timestamp shared by its send and receive:
//
//   - Fidge–Mattern vector clocks (one component per process);
//   - Lamport scalar clocks (order-preserving but not order-characterizing);
//   - Torres-Rojas/Ahamad plausible clocks (fixed R components, may order
//     concurrent messages);
//   - Fowler–Zwaenepoel direct-dependency tracking (constant piggyback,
//     recursive offline precedence test).
//
// All stampers implement the Stamper interface so the benchmark harness can
// sweep them uniformly against the paper's online algorithm.
package vclock

import (
	"fmt"

	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// Stamper timestamps the messages of a synchronous computation in trace
// order. Implementations are deterministic.
type Stamper interface {
	// Name identifies the mechanism in benchmark tables.
	Name() string
	// StampTrace returns one vector per message, by message index.
	StampTrace(tr *trace.Trace) []vector.V
}

// FM is the Fidge–Mattern vector clock baseline. Every process keeps an
// N-vector; a synchronous exchange increments each participant's own
// component and merges both sides (the rendezvous makes the merged vector
// common to send and receive, which is what makes FM timestamps of
// synchronous messages well defined).
type FM struct{}

// Name implements Stamper.
func (FM) Name() string { return "fidge-mattern" }

// StampTrace implements Stamper.
func (FM) StampTrace(tr *trace.Trace) []vector.V {
	clocks := make([]vector.V, tr.N)
	for i := range clocks {
		clocks[i] = vector.New(tr.N)
	}
	out := make([]vector.V, 0, tr.NumMessages())
	for _, op := range tr.Ops {
		if op.Kind != trace.OpMessage {
			continue
		}
		i, j := op.From, op.To
		clocks[i][i]++
		clocks[j][j]++
		clocks[i].Max(clocks[j])
		copy(clocks[j], clocks[i])
		out = append(out, clocks[i].Clone())
	}
	return out
}

// Lamport is the scalar logical clock baseline. Its stamps are returned as
// 1-vectors so they fit the common interface; they preserve ↦ but cannot
// detect concurrency (every pair is ordered).
type Lamport struct{}

// Name implements Stamper.
func (Lamport) Name() string { return "lamport" }

// StampTrace implements Stamper.
func (Lamport) StampTrace(tr *trace.Trace) []vector.V {
	clocks := make([]int, tr.N)
	out := make([]vector.V, 0, tr.NumMessages())
	for _, op := range tr.Ops {
		if op.Kind != trace.OpMessage {
			continue
		}
		t := clocks[op.From]
		if clocks[op.To] > t {
			t = clocks[op.To]
		}
		t++
		clocks[op.From] = t
		clocks[op.To] = t
		out = append(out, vector.V{t})
	}
	return out
}

// Plausible is a Torres-Rojas/Ahamad plausible clock with R entries using
// the comb mapping proc → proc mod R. It guarantees m1 ↦ m2 ⇒ v(m1) <
// v(m2); with R < N it may also order concurrent messages (never the
// reverse), which experiment E15 quantifies.
type Plausible struct {
	// R is the number of vector entries; must be ≥ 1.
	R int
}

// Name implements Stamper.
func (p Plausible) Name() string { return fmt.Sprintf("plausible-R%d", p.R) }

// StampTrace implements Stamper.
func (p Plausible) StampTrace(tr *trace.Trace) []vector.V {
	if p.R < 1 {
		panic(fmt.Sprintf("vclock: plausible clock needs R ≥ 1, got %d", p.R))
	}
	clocks := make([]vector.V, tr.N)
	for i := range clocks {
		clocks[i] = vector.New(p.R)
	}
	out := make([]vector.V, 0, tr.NumMessages())
	for _, op := range tr.Ops {
		if op.Kind != trace.OpMessage {
			continue
		}
		// The rendezvous is one event at each participant: each increments
		// its own comb entry (both increments land on one entry when the
		// participants collide under mod R).
		i, j := op.From, op.To
		clocks[i][i%p.R]++
		clocks[j][j%p.R]++
		clocks[i].Max(clocks[j])
		copy(clocks[j], clocks[i])
		out = append(out, clocks[i].Clone())
	}
	return out
}

var (
	_ Stamper = FM{}
	_ Stamper = Lamport{}
	_ Stamper = Plausible{}
)
