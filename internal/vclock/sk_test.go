package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syncstamp/internal/graph"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

func TestSKName(t *testing.T) {
	if (SK{}).Name() != "singhal-kshemkalyani" {
		t.Fatal("SK name wrong")
	}
}

// Property: SK's stamps are bit-identical to FM's — the differential wire
// format changes cost, not meaning.
func TestQuickSKEqualsFM(t *testing.T) {
	f := func(seed int64) bool {
		tr := genTrace(seed, 8, 60)
		sk := SK{}.StampTrace(tr)
		fm := FM{}.StampTrace(tr)
		if len(sk) != len(fm) {
			return false
		}
		for i := range fm {
			if !vector.Eq(sk[i], fm[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: differential entries never exceed 2N (full vectors both ways)
// and are at least 2 after the first exchange on a channel (the two own
// components always change).
func TestQuickSKEntryBounds(t *testing.T) {
	f := func(seed int64) bool {
		tr := genTrace(seed, 8, 60)
		res := Simulate(tr)
		for _, n := range res.EntriesPerMsg {
			if n < 1 || n > 2*tr.N {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSKRepeatedPairIsCheap(t *testing.T) {
	// Two processes talking only to each other: after the first exchange,
	// each message changes exactly the two own-components, so every later
	// message carries exactly 2 differential entries even though N = 50.
	tr := &trace.Trace{N: 50}
	for k := 0; k < 20; k++ {
		tr.MustAppend(trace.Message(0, 1))
	}
	res := Simulate(tr)
	for i, n := range res.EntriesPerMsg {
		if i == 0 {
			if n != 2 {
				t.Fatalf("first exchange entries = %d, want 2 (both fresh components)", n)
			}
			continue
		}
		if n != 2 {
			t.Fatalf("message %d entries = %d, want 2", i, n)
		}
	}
	if res.MeanEntries() != 2 {
		t.Fatalf("mean entries = %v", res.MeanEntries())
	}
	if res.MeanBytes() != 4 {
		t.Fatalf("mean bytes = %v", res.MeanBytes())
	}
}

func TestSKCrossTrafficCostsMore(t *testing.T) {
	// A relay pattern forces third-party components across: P0<->P1 and
	// P1<->P2 alternating makes P1 carry P2's (resp. P0's) news to the
	// other side.
	tr := &trace.Trace{N: 3}
	for k := 0; k < 10; k++ {
		tr.MustAppend(trace.Message(0, 1))
		tr.MustAppend(trace.Message(1, 2))
	}
	res := Simulate(tr)
	// Later messages must carry 3 entries (two own + the relayed one).
	if res.EntriesPerMsg[len(res.EntriesPerMsg)-1] < 3 {
		t.Fatalf("relay entries = %v", res.EntriesPerMsg)
	}
}

func TestSKEmpty(t *testing.T) {
	res := Simulate(&trace.Trace{N: 3})
	if res.TotalEntries != 0 || res.MeanEntries() != 0 || len(res.Stamps) != 0 {
		t.Fatal("empty trace should cost nothing")
	}
}

func BenchmarkSKSimulate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := trace.Generate(graph.ClientServer(2, 50, false), trace.GenOptions{Messages: 1000}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(tr)
	}
}
