package vclock_test

import (
	"fmt"

	"syncstamp/internal/trace"
	"syncstamp/internal/vclock"
	"syncstamp/internal/vector"
)

// Fidge–Mattern vector clocks adapted to synchronous messages: one
// component per process, merged at each rendezvous.
func ExampleFM_StampTrace() {
	tr := &trace.Trace{N: 3}
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Message(1, 2))
	stamps := vclock.FM{}.StampTrace(tr)
	fmt.Println("m1:", stamps[0])
	fmt.Println("m2:", stamps[1])
	fmt.Println("m1 ↦ m2:", vector.Less(stamps[0], stamps[1]))
	// Output:
	// m1: (1,1,0)
	// m2: (1,2,1)
	// m1 ↦ m2: true
}

// Plausible clocks fold processes into R entries, so concurrent messages
// can come out ordered (or even equal); exact clocks keep them concurrent.
func ExamplePlausible_StampTrace() {
	tr := &trace.Trace{N: 4}
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Message(2, 3)) // concurrent with both of the above
	stamps := vclock.Plausible{R: 1}.StampTrace(tr)
	fmt.Println("m3 falsely before m2:", vector.Less(stamps[2], stamps[1]))
	full := vclock.FM{}.StampTrace(tr)
	fmt.Println("FM keeps them concurrent:", vector.Concurrent(full[2], full[1]))
	// Output:
	// m3 falsely before m2: true
	// FM keeps them concurrent: true
}

// The Singhal–Kshemkalyani simulation reports how many differential
// entries each message carries; repeated same-pair traffic is its best
// case.
func ExampleSimulate() {
	tr := &trace.Trace{N: 10}
	for k := 0; k < 5; k++ {
		tr.MustAppend(trace.Message(0, 1))
	}
	res := vclock.Simulate(tr)
	fmt.Println("entries per message:", res.EntriesPerMsg)
	fmt.Println("stamps equal FM:", vector.Eq(res.Stamps[4], vclock.FM{}.StampTrace(tr)[4]))
	// Output:
	// entries per message: [2 2 2 2 2]
	// stamps equal FM: true
}
