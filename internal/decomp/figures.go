package decomp

import "syncstamp/internal/graph"

// Figure3a returns the Figure 3(a) decomposition of the fully-connected
// 5-process system: two stars and one triangle. E1 is the star at P1
// (vertex 0), E2 the star at P2 (vertex 1), E3 the triangle (P3, P4, P5) =
// vertices (2, 3, 4). This is the decomposition the Figure 6 worked example
// runs under.
func Figure3a() *Decomposition {
	return MustNew(5, []Group{
		starGroup(0, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}}),
		starGroup(1, []graph.Edge{{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 4}}),
		triangleGroup(2, 3, 4),
	})
}

// Figure3b returns the Figure 3(b) decomposition of the fully-connected
// 5-process system: four stars (the trivial star decomposition).
func Figure3b() *Decomposition {
	return TrivialStars(graph.Complete(5))
}
