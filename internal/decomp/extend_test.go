package decomp

import (
	"testing"

	"syncstamp/internal/graph"
)

func clientServerDecomp(t *testing.T, servers, clients int) *Decomposition {
	t.Helper()
	g := graph.ClientServer(servers, clients, false)
	cover := make([]int, servers)
	for s := range cover {
		cover[s] = s
	}
	d, err := FromVertexCover(g, cover)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGrowStarVertexKeepsD(t *testing.T) {
	d := clientServerDecomp(t, 2, 3)
	if d.D() != 2 {
		t.Fatalf("d = %d", d.D())
	}
	grown, v, err := d.GrowStarVertex([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("new vertex = %d, want 5", v)
	}
	if grown.D() != 2 || grown.N() != 6 {
		t.Fatalf("grown d=%d n=%d", grown.D(), grown.N())
	}
	for _, root := range []int{0, 1} {
		gi, ok := grown.GroupOf(root, v)
		if !ok {
			t.Fatalf("new channel (%d,%d) uncovered", root, v)
		}
		if grown.Groups()[gi].Root != root {
			t.Fatalf("channel (%d,%d) in group rooted at %d", root, v, grown.Groups()[gi].Root)
		}
	}
	// Original decomposition untouched.
	if d.N() != 5 || d.D() != 2 {
		t.Fatal("GrowStarVertex mutated the receiver")
	}
	if _, ok := d.GroupOf(0, 5); ok {
		t.Fatal("receiver gained the new edge")
	}
}

func TestGrowStarVertexRepeated(t *testing.T) {
	d := clientServerDecomp(t, 3, 1)
	for k := 0; k < 10; k++ {
		var err error
		d, _, err = d.GrowStarVertex([]int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	if d.D() != 3 || d.N() != 14 {
		t.Fatalf("after 10 joins: d=%d n=%d", d.D(), d.N())
	}
	g := graph.ClientServer(3, 11, false)
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestGrowStarVertexNoSuchRoot(t *testing.T) {
	d := clientServerDecomp(t, 2, 2)
	if _, _, err := d.GrowStarVertex([]int{3}); err == nil {
		t.Fatal("grew onto a non-root")
	}
}

func TestExtendErrors(t *testing.T) {
	d := clientServerDecomp(t, 2, 2)
	tri := MustNew(3, []Group{triangleGroup(0, 1, 2)})
	cases := []struct {
		name   string
		d      *Decomposition
		n      int
		assign map[graph.Edge]int
	}{
		{"shrink", d, 2, nil},
		{"edge out of range", d, 5, map[graph.Edge]int{graph.NewEdge(0, 9): 0}},
		{"bad group index", d, 5, map[graph.Edge]int{graph.NewEdge(0, 4): 7}},
		{"edge misses root", d, 5, map[graph.Edge]int{graph.NewEdge(2, 4): 0}},
		{"triangle cannot grow", tri, 4, map[graph.Edge]int{graph.NewEdge(0, 3): 0}},
		{"duplicate edge", d, 4, map[graph.Edge]int{graph.NewEdge(0, 2): 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.d.Extend(tc.n, tc.assign); err == nil {
				t.Fatal("Extend accepted invalid growth")
			}
		})
	}
}

func TestExtendSameSizeAddsChannel(t *testing.T) {
	// Growing without adding a vertex: a new channel between an existing
	// client and a server joins the server's star.
	g := graph.New(4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	d, err := FromVertexCover(g, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := d.Extend(4, map[graph.Edge]int{graph.NewEdge(0, 3): 0})
	if err != nil {
		t.Fatal(err)
	}
	if grown.D() != 2 {
		t.Fatalf("d = %d", grown.D())
	}
	if _, ok := grown.GroupOf(0, 3); !ok {
		t.Fatal("new channel uncovered")
	}
}
