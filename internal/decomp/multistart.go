package decomp

import (
	"math/rand"

	"syncstamp/internal/graph"
)

// ApproximateMultiStart runs the Figure 7 algorithm restarts times under
// random vertex relabelings and returns the smallest decomposition found
// (mapped back to the original labels). The paper proves the ratio bound
// independent of the algorithm's tie-breaking choices; different vertex
// orders explore different tie-breaks, so multi-start can only improve on a
// single run — the D3 ablation quantifies by how much. With restarts ≤ 1
// this is exactly Approximate.
func ApproximateMultiStart(g *graph.Graph, restarts int, rng *rand.Rand) *Decomposition {
	best := Approximate(g)
	if restarts <= 1 || g.M() == 0 {
		return best
	}
	n := g.N()
	perm := make([]int, n)
	inv := make([]int, n)
	for r := 1; r < restarts; r++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for i, p := range perm {
			inv[p] = i
		}
		relabeled := graph.New(n)
		for _, e := range g.Edges() {
			relabeled.AddEdge(perm[e.U], perm[e.V])
		}
		cand := Approximate(relabeled)
		if cand.D() >= best.D() {
			continue
		}
		// Map the winning decomposition back to the original labels.
		groups := make([]Group, 0, cand.D())
		for _, grp := range cand.Groups() {
			edges := make([]graph.Edge, len(grp.Edges))
			for i, e := range grp.Edges {
				edges[i] = graph.NewEdge(inv[e.U], inv[e.V])
			}
			switch grp.Kind {
			case KindStar:
				groups = append(groups, starGroup(inv[grp.Root], edges))
			case KindTriangle:
				groups = append(groups, triangleGroup(inv[grp.Tri[0]], inv[grp.Tri[1]], inv[grp.Tri[2]]))
			}
		}
		best = MustNew(n, groups)
	}
	return best
}
