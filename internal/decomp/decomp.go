// Package decomp implements edge decompositions of communication topologies
// (Definition 2 of the paper): partitions of the edge set into groups, each
// of which is a star or a triangle. The size d of the decomposition is the
// vector-clock length used by the online timestamping algorithm
// (internal/core), so the package's job is to make d small:
//
//   - Trivial decompositions (N−1 stars; N−3 stars + 1 triangle for graphs
//     containing a triangle on the last vertices).
//   - Vertex-cover-based star decompositions (Theorem 5: d ≤ β(G)).
//   - The Figure 7 approximation algorithm (Theorem 6: ratio bound 2;
//     Theorem 7: optimal on acyclic graphs).
//   - An exact branch-and-bound optimum for small graphs, used to measure
//     the approximation ratio experimentally.
package decomp

import (
	"fmt"
	"sort"
	"strings"

	"syncstamp/internal/graph"
)

// Kind discriminates the two permitted group shapes.
type Kind int

// Group kinds. Stars have a root vertex; triangles have three vertices.
const (
	KindStar Kind = iota + 1
	KindTriangle
)

// String returns "star" or "triangle".
func (k Kind) String() string {
	switch k {
	case KindStar:
		return "star"
	case KindTriangle:
		return "triangle"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Group is one edge group E_i of a decomposition.
type Group struct {
	Kind Kind
	// Root is the star's root vertex; meaningful only for KindStar.
	Root int
	// Tri lists the triangle's vertices in increasing order; meaningful only
	// for KindTriangle.
	Tri [3]int
	// Edges are the member edges in sorted order.
	Edges []graph.Edge
}

// String renders the group as "star@3{(1,3) (3,5)}" or
// "triangle(1,2,4){...}".
func (g Group) String() string {
	var b strings.Builder
	switch g.Kind {
	case KindStar:
		fmt.Fprintf(&b, "star@%d{", g.Root)
	case KindTriangle:
		fmt.Fprintf(&b, "triangle(%d,%d,%d){", g.Tri[0], g.Tri[1], g.Tri[2])
	default:
		fmt.Fprintf(&b, "%v{", g.Kind)
	}
	for i, e := range g.Edges {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(e.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Decomposition is an edge decomposition {E_1, ..., E_d}. Construct with
// New; the index of each group is the vector-clock component assigned to its
// edges by the online algorithm.
type Decomposition struct {
	groups    []Group
	edgeGroup map[graph.Edge]int
	n         int
}

// New assembles a Decomposition over a topology with n vertices from its
// groups. It returns an error if any group's edges do not form the claimed
// star or triangle, or if an edge appears in more than one group.
// Empty groups are rejected.
func New(n int, groups []Group) (*Decomposition, error) {
	d := &Decomposition{
		groups:    make([]Group, 0, len(groups)),
		edgeGroup: make(map[graph.Edge]int),
		n:         n,
	}
	for gi, grp := range groups {
		if len(grp.Edges) == 0 {
			return nil, fmt.Errorf("decomp: group %d is empty", gi)
		}
		sub := graph.New(n)
		for _, e := range grp.Edges {
			if e.V >= n {
				return nil, fmt.Errorf("decomp: group %d edge %v out of range for n=%d", gi, e, n)
			}
			if prev, dup := d.edgeGroup[e]; dup {
				return nil, fmt.Errorf("decomp: edge %v in groups %d and %d", e, prev, gi)
			}
			sub.AddEdge(e.U, e.V)
		}
		if sub.M() != len(grp.Edges) {
			return nil, fmt.Errorf("decomp: group %d contains duplicate edges", gi)
		}
		norm := grp
		norm.Edges = sub.Edges()
		switch grp.Kind {
		case KindStar:
			root, ok := sub.IsStar()
			if !ok {
				return nil, fmt.Errorf("decomp: group %d is not a star: %v", gi, grp.Edges)
			}
			// Honor a declared root when it is valid; otherwise adopt the
			// detected one.
			valid := true
			for _, e := range grp.Edges {
				if !e.Has(grp.Root) {
					valid = false
					break
				}
			}
			if !valid {
				norm.Root = root
			}
		case KindTriangle:
			tri, ok := sub.IsTriangle()
			if !ok {
				return nil, fmt.Errorf("decomp: group %d is not a triangle: %v", gi, grp.Edges)
			}
			norm.Tri = tri
		default:
			return nil, fmt.Errorf("decomp: group %d has invalid kind %v", gi, grp.Kind)
		}
		idx := len(d.groups)
		d.groups = append(d.groups, norm)
		for _, e := range norm.Edges {
			d.edgeGroup[e] = idx
		}
	}
	return d, nil
}

// MustNew is New but panics on error; intended for decompositions built by
// the algorithms in this package, which construct valid groups.
func MustNew(n int, groups []Group) *Decomposition {
	d, err := New(n, groups)
	if err != nil {
		panic(err.Error())
	}
	return d
}

// D returns the number of edge groups — the vector-clock size of the online
// algorithm.
func (d *Decomposition) D() int { return len(d.groups) }

// N returns the vertex count of the underlying topology.
func (d *Decomposition) N() int { return d.n }

// Groups returns the groups in index order. The returned slice is shared;
// callers must not modify it.
func (d *Decomposition) Groups() []Group { return d.groups }

// GroupOf returns the index g such that the channel (a, b) belongs to edge
// group E_g (the e(m) of Section 3.2), and whether the edge is covered at
// all.
func (d *Decomposition) GroupOf(a, b int) (int, bool) {
	gi, ok := d.edgeGroup[graph.NewEdge(a, b)]
	return gi, ok
}

// Covers reports whether every edge of g belongs to some group.
func (d *Decomposition) Covers(g *graph.Graph) bool {
	for _, e := range g.Edges() {
		if _, ok := d.edgeGroup[e]; !ok {
			return false
		}
	}
	return true
}

// Validate checks that d is an edge decomposition of g per Definition 2:
// the groups partition exactly the edge set of g and every group is a star
// or a triangle (already enforced by New).
func (d *Decomposition) Validate(g *graph.Graph) error {
	if g.N() != d.n {
		return fmt.Errorf("decomp: vertex count mismatch: graph %d vs decomposition %d", g.N(), d.n)
	}
	covered := 0
	for _, grp := range d.groups {
		for _, e := range grp.Edges {
			if !g.HasEdge(e.U, e.V) {
				return fmt.Errorf("decomp: edge %v not in graph", e)
			}
			covered++
		}
	}
	if covered != g.M() {
		return fmt.Errorf("decomp: groups cover %d edges, graph has %d", covered, g.M())
	}
	return nil
}

// Stars returns the number of star groups.
func (d *Decomposition) Stars() int {
	c := 0
	for _, g := range d.groups {
		if g.Kind == KindStar {
			c++
		}
	}
	return c
}

// Triangles returns the number of triangle groups.
func (d *Decomposition) Triangles() int { return len(d.groups) - d.Stars() }

// String renders the decomposition as "E1=star@0{...} E2=triangle(..){...}".
func (d *Decomposition) String() string {
	var b strings.Builder
	for i, g := range d.groups {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "E%d=%s", i+1, g.String())
	}
	return b.String()
}

// starGroup builds a star group rooted at root from edges, sorting them.
func starGroup(root int, edges []graph.Edge) Group {
	sorted := append([]graph.Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].U != sorted[j].U {
			return sorted[i].U < sorted[j].U
		}
		return sorted[i].V < sorted[j].V
	})
	return Group{Kind: KindStar, Root: root, Edges: sorted}
}

// triangleGroup builds a triangle group on vertices x, y, z.
func triangleGroup(x, y, z int) Group {
	vs := []int{x, y, z}
	sort.Ints(vs)
	return Group{
		Kind: KindTriangle,
		Tri:  [3]int{vs[0], vs[1], vs[2]},
		Edges: []graph.Edge{
			graph.NewEdge(vs[0], vs[1]),
			graph.NewEdge(vs[0], vs[2]),
			graph.NewEdge(vs[1], vs[2]),
		},
	}
}
