package decomp

import (
	"fmt"
	"sort"

	"syncstamp/internal/graph"
)

// Extend returns a copy of d over a (possibly larger) vertex count with new
// edges attached to existing star groups: assign maps each new edge to the
// index of the group that absorbs it. Each assigned edge must be incident
// to its star group's root; triangle groups cannot absorb edges (a triangle
// is exactly its three edges).
//
// This realizes the paper's scalability remark (Section 3.3): when the
// system grows without changing the size of its edge decomposition — a new
// client connecting to existing servers, a new leaf under an existing tree
// root — the vector-clock size d stays constant, and timestamps issued
// before the growth remain valid and comparable with those issued after.
func (d *Decomposition) Extend(n int, assign map[graph.Edge]int) (*Decomposition, error) {
	if n < d.n {
		return nil, fmt.Errorf("decomp: cannot shrink from %d to %d vertices", d.n, n)
	}
	groups := make([]Group, len(d.groups))
	for i, g := range d.groups {
		groups[i] = Group{
			Kind:  g.Kind,
			Root:  g.Root,
			Tri:   g.Tri,
			Edges: append([]graph.Edge(nil), g.Edges...),
		}
	}
	// Iterate the assignment in sorted edge order: the appended edge order
	// (and the edge blamed when several are invalid) must not depend on map
	// iteration order, or replays stop being byte-identical.
	newEdges := make([]graph.Edge, 0, len(assign))
	for e := range assign {
		newEdges = append(newEdges, e)
	}
	sort.Slice(newEdges, func(i, j int) bool {
		if newEdges[i].U != newEdges[j].U {
			return newEdges[i].U < newEdges[j].U
		}
		return newEdges[i].V < newEdges[j].V
	})
	for _, e := range newEdges {
		gi := assign[e]
		if e.V >= n || e.U < 0 {
			return nil, fmt.Errorf("decomp: new edge %v out of range for n=%d", e, n)
		}
		if gi < 0 || gi >= len(groups) {
			return nil, fmt.Errorf("decomp: edge %v assigned to invalid group %d", e, gi)
		}
		g := &groups[gi]
		if g.Kind != KindStar {
			return nil, fmt.Errorf("decomp: group %d is a triangle and cannot grow", gi)
		}
		if !e.Has(g.Root) {
			return nil, fmt.Errorf("decomp: edge %v does not touch group %d's root %d", e, gi, g.Root)
		}
		g.Edges = append(g.Edges, e)
	}
	return New(n, groups)
}

// GrowStarVertex is the common special case of Extend: a new process joins
// the system and connects to the given existing star roots (e.g. a new
// client connecting to every server). The decomposition keeps its size d.
func (d *Decomposition) GrowStarVertex(roots []int) (*Decomposition, int, error) {
	v := d.n
	assign := make(map[graph.Edge]int, len(roots))
	for _, root := range roots {
		gi, ok := d.rootGroup(root)
		if !ok {
			return nil, 0, fmt.Errorf("decomp: no star group rooted at %d", root)
		}
		assign[graph.NewEdge(root, v)] = gi
	}
	nd, err := d.Extend(v+1, assign)
	if err != nil {
		return nil, 0, err
	}
	return nd, v, nil
}

// rootGroup finds a star group rooted at the given vertex.
func (d *Decomposition) rootGroup(root int) (int, bool) {
	for gi, g := range d.groups {
		if g.Kind == KindStar && g.Root == root {
			return gi, true
		}
	}
	return 0, false
}

// Extends checks that next is a valid growth of prev: the same number of
// edge groups (so vectors stay comparable), at least as many processes, and
// every channel of prev still assigned to the same group. Clocks and
// stampers may switch from prev to next mid-computation exactly when this
// returns nil.
func Extends(prev, next *Decomposition) error {
	if next.D() != prev.D() {
		return fmt.Errorf("decomp: growth changes d from %d to %d; timestamps would be incomparable", prev.D(), next.D())
	}
	if next.N() < prev.N() {
		return fmt.Errorf("decomp: growth shrinks the system from %d to %d processes", prev.N(), next.N())
	}
	for _, grp := range prev.Groups() {
		for _, e := range grp.Edges {
			oldG, _ := prev.GroupOf(e.U, e.V)
			newG, ok := next.GroupOf(e.U, e.V)
			if !ok || newG != oldG {
				return fmt.Errorf("decomp: growth moves channel %v to a different group", e)
			}
		}
	}
	return nil
}
