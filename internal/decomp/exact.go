package decomp

import (
	"fmt"
	"sort"

	"syncstamp/internal/graph"
)

// Exact computes a minimum edge decomposition α(G) by branch and bound.
// It is exponential and guarded by maxEdges (pass 0 for the default of 40
// edges); it exists to measure the Figure 7 algorithm's approximation ratio
// (experiment E9), not for production use.
//
// The search uses the observation that some minimum decomposition consists
// of "shapes" — star roots and full triangles — such that every edge is
// incident to a chosen root or belongs to a chosen triangle: given such a
// cover of size d, assigning every edge to one covering shape yields a valid
// decomposition of at most d groups (a nonempty subset of a star is a star;
// a subset of a triangle's edges is a triangle or a star). Conversely every
// decomposition induces such a cover of equal size, so the minimum cover
// size equals α(G).
func Exact(g *graph.Graph, maxEdges int) (*Decomposition, error) {
	if maxEdges <= 0 {
		maxEdges = 40
	}
	if g.M() > maxEdges {
		return nil, fmt.Errorf("decomp: graph with %d edges exceeds exact limit %d", g.M(), maxEdges)
	}
	if g.M() == 0 {
		return MustNew(g.N(), nil), nil
	}

	edges := g.Edges()
	edgeIdx := make(map[graph.Edge]int, len(edges))
	for i, e := range edges {
		edgeIdx[e] = i
	}
	triangles := g.Triangles()

	// shape is a candidate group: a star root or a triangle, with the
	// bitmask (as []uint64 words) of edges it can absorb.
	type shape struct {
		isTriangle bool
		root       int
		tri        [3]int
		mask       []uint64
	}
	words := (len(edges) + 63) / 64
	newMask := func() []uint64 { return make([]uint64, words) }
	setBit := func(m []uint64, i int) { m[i/64] |= 1 << uint(i%64) }

	var shapes []shape
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			continue
		}
		m := newMask()
		for _, u := range g.Neighbors(v) {
			setBit(m, edgeIdx[graph.NewEdge(v, u)])
		}
		shapes = append(shapes, shape{root: v, mask: m})
	}
	for _, t := range triangles {
		m := newMask()
		setBit(m, edgeIdx[graph.NewEdge(t[0], t[1])])
		setBit(m, edgeIdx[graph.NewEdge(t[0], t[2])])
		setBit(m, edgeIdx[graph.NewEdge(t[1], t[2])])
		shapes = append(shapes, shape{isTriangle: true, tri: t, mask: m})
	}

	// shapesForEdge[i] lists the shapes that can absorb edge i.
	shapesForEdge := make([][]int, len(edges))
	for si, s := range shapes {
		for i := range edges {
			if s.mask[i/64]&(1<<uint(i%64)) != 0 {
				shapesForEdge[i] = append(shapesForEdge[i], si)
			}
		}
	}

	full := newMask()
	for i := range edges {
		setBit(full, i)
	}
	allCovered := func(cov []uint64) bool {
		for w := range cov {
			if cov[w] != full[w] {
				return false
			}
		}
		return true
	}

	// Lower bound: a greedy matching of uncovered edges; any shape absorbs
	// at most one edge of a matching (stars share the root vertex, triangle
	// edges pairwise intersect), so #shapes needed ≥ matching size.
	lowerBound := func(cov []uint64) int {
		used := make([]bool, g.N())
		lb := 0
		for i, e := range edges {
			if cov[i/64]&(1<<uint(i%64)) != 0 {
				continue
			}
			if used[e.U] || used[e.V] {
				continue
			}
			used[e.U] = true
			used[e.V] = true
			lb++
		}
		return lb
	}

	// Start from the best polynomial answer as the incumbent.
	incumbent := Best(g)
	bestCount := incumbent.D()
	var bestPick []int

	var cur []int
	var dfs func(cov []uint64)
	dfs = func(cov []uint64) {
		if allCovered(cov) {
			if len(cur) < bestCount {
				bestCount = len(cur)
				bestPick = append([]int(nil), cur...)
			}
			return
		}
		if len(cur)+lowerBound(cov) >= bestCount {
			return
		}
		// Branch on the first uncovered edge.
		first := -1
		for i := range edges {
			if cov[i/64]&(1<<uint(i%64)) == 0 {
				first = i
				break
			}
		}
		for _, si := range shapesForEdge[first] {
			next := make([]uint64, words)
			copy(next, cov)
			for w := range next {
				next[w] |= shapes[si].mask[w]
			}
			cur = append(cur, si)
			dfs(next)
			cur = cur[:len(cur)-1]
		}
	}
	dfs(newMask())

	if bestPick == nil {
		// The polynomial incumbent was already optimal.
		return incumbent, nil
	}

	// Convert the chosen shapes into a partition: each edge goes to the
	// first chosen shape that can absorb it.
	assigned := make([][]graph.Edge, len(bestPick))
	for i, e := range edges {
		for k, si := range bestPick {
			if shapes[si].mask[i/64]&(1<<uint(i%64)) != 0 {
				assigned[k] = append(assigned[k], e)
				break
			}
		}
	}
	var groups []Group
	for k, si := range bestPick {
		if len(assigned[k]) == 0 {
			continue
		}
		s := shapes[si]
		if s.isTriangle && len(assigned[k]) == 3 {
			groups = append(groups, triangleGroup(s.tri[0], s.tri[1], s.tri[2]))
			continue
		}
		if s.isTriangle {
			// A strict subset of a triangle's edges is a star; root it at a
			// shared vertex.
			root := sharedVertex(assigned[k])
			groups = append(groups, starGroup(root, assigned[k]))
			continue
		}
		groups = append(groups, starGroup(s.root, assigned[k]))
	}
	return New(g.N(), groups)
}

// sharedVertex returns a vertex incident to every edge in edges (edges must
// permit one, e.g. a subset of a triangle's edge set).
func sharedVertex(edges []graph.Edge) int {
	if len(edges) == 1 {
		return edges[0].U
	}
	counts := map[int]int{}
	for _, e := range edges {
		counts[e.U]++
		counts[e.V]++
	}
	// Visit candidates in sorted order so the chosen root is the smallest
	// shared vertex regardless of map iteration order.
	verts := make([]int, 0, len(counts))
	for v := range counts {
		verts = append(verts, v)
	}
	sort.Ints(verts)
	for _, v := range verts {
		if counts[v] == len(edges) {
			return v
		}
	}
	panic(fmt.Sprintf("decomp: edges %v share no vertex", edges))
}

// Alpha returns α(G), the size of a minimum edge decomposition, for small
// graphs (see Exact for limits).
func Alpha(g *graph.Graph, maxEdges int) (int, error) {
	d, err := Exact(g, maxEdges)
	if err != nil {
		return 0, err
	}
	return d.D(), nil
}
