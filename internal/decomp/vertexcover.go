package decomp

import (
	"fmt"
	"sort"

	"syncstamp/internal/graph"
)

// FromVertexCover builds a star-only decomposition from a vertex cover of g
// (proof of Theorem 5): each edge is assigned to one of its endpoints in
// the cover (the smaller-indexed one when both are covered), and each cover
// vertex with assigned edges becomes a star root. The result has at most
// len(cover) groups. It returns an error if cover is not a vertex cover.
func FromVertexCover(g *graph.Graph, cover []int) (*Decomposition, error) {
	inCover := make([]bool, g.N())
	for _, v := range cover {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("decomp: cover vertex %d out of range [0,%d)", v, g.N())
		}
		inCover[v] = true
	}
	assigned := make(map[int][]graph.Edge)
	for _, e := range g.Edges() {
		switch {
		case inCover[e.U]:
			assigned[e.U] = append(assigned[e.U], e)
		case inCover[e.V]:
			assigned[e.V] = append(assigned[e.V], e)
		default:
			return nil, fmt.Errorf("decomp: edge %v not covered", e)
		}
	}
	roots := make([]int, 0, len(assigned))
	for r := range assigned {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	groups := make([]Group, 0, len(roots))
	for _, r := range roots {
		groups = append(groups, starGroup(r, assigned[r]))
	}
	return New(g.N(), groups)
}

// GreedyVertexCover returns a vertex cover of size at most 2β(G), computed
// from a maximal matching: both endpoints of each matched edge enter the
// cover. The result is sorted.
func GreedyVertexCover(g *graph.Graph) []int {
	covered := make([]bool, g.N())
	var cover []int
	for _, e := range g.Edges() {
		if covered[e.U] || covered[e.V] {
			continue
		}
		covered[e.U] = true
		covered[e.V] = true
		cover = append(cover, e.U, e.V)
	}
	sort.Ints(cover)
	return cover
}

// MinVertexCover returns an optimal vertex cover β(G) by branch and bound.
// It is exponential in the worst case and intended for the modest graph
// sizes of the experiments; maxN guards against misuse (pass 0 for the
// default of 64 vertices).
func MinVertexCover(g *graph.Graph, maxN int) ([]int, error) {
	if maxN <= 0 {
		maxN = 64
	}
	if g.N() > maxN {
		return nil, fmt.Errorf("decomp: graph with %d vertices exceeds exact cover limit %d", g.N(), maxN)
	}
	work := g.Clone()
	best := GreedyVertexCover(g)
	var cur []int

	var solve func()
	solve = func() {
		if len(cur) >= len(best) {
			return
		}
		// Find any remaining edge; if none, record the solution.
		edges := work.Edges()
		if len(edges) == 0 {
			best = append([]int(nil), cur...)
			return
		}
		// Pick the edge whose endpoints have maximum combined degree to
		// shrink the search tree.
		pick := edges[0]
		bestDeg := -1
		for _, e := range edges {
			if d := work.Degree(e.U) + work.Degree(e.V); d > bestDeg {
				bestDeg = d
				pick = e
			}
		}
		for _, v := range []int{pick.U, pick.V} {
			removed := make([]graph.Edge, 0, work.Degree(v))
			for _, u := range work.Neighbors(v) {
				removed = append(removed, graph.NewEdge(v, u))
			}
			for _, e := range removed {
				work.RemoveEdge(e.U, e.V)
			}
			cur = append(cur, v)
			solve()
			cur = cur[:len(cur)-1]
			for _, e := range removed {
				work.AddEdge(e.U, e.V)
			}
		}
	}
	solve()
	sort.Ints(best)
	return best, nil
}

// CoverBound returns min(β(G), N−2), the vector-clock size bound of
// Theorem 5, using the exact minimum vertex cover (so it is limited to
// small graphs; see MinVertexCover).
func CoverBound(g *graph.Graph) (int, error) {
	cover, err := MinVertexCover(g, 0)
	if err != nil {
		return 0, err
	}
	beta := len(cover)
	bound := g.N() - 2
	if bound < 0 {
		bound = 0
	}
	if beta < bound || g.N() < 3 {
		bound = beta
	}
	return bound, nil
}
