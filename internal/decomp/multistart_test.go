package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syncstamp/internal/graph"
)

func TestMultiStartNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 25; i++ {
		g := graph.RandomGnp(4+rng.Intn(9), 0.4, rng)
		single := Approximate(g)
		multi := ApproximateMultiStart(g, 8, rng)
		if err := multi.Validate(g); err != nil {
			t.Fatal(err)
		}
		if multi.D() > single.D() {
			t.Fatalf("multi-start %d worse than single run %d", multi.D(), single.D())
		}
	}
}

func TestMultiStartDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Complete(5)
	if d := ApproximateMultiStart(g, 0, rng); d.D() != Approximate(g).D() {
		t.Fatal("restarts<=1 must equal Approximate")
	}
	empty := graph.New(4)
	if d := ApproximateMultiStart(empty, 5, rng); d.D() != 0 {
		t.Fatal("empty graph must yield empty decomposition")
	}
}

// Property: multi-start results remain valid decompositions respecting the
// ratio bound against the exact optimum.
func TestQuickMultiStartValidAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGnp(4+rng.Intn(6), 0.5, rng)
		if g.M() == 0 {
			return true
		}
		multi := ApproximateMultiStart(g, 6, rng)
		if multi.Validate(g) != nil {
			return false
		}
		exact, err := Exact(g, 0)
		if err != nil {
			return false
		}
		return multi.D() >= exact.D() && multi.D() <= 2*exact.D()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiStartCanImprove(t *testing.T) {
	// Find at least one graph where multi-start beats the single run —
	// documenting that tie-breaking matters in practice.
	rng := rand.New(rand.NewSource(8))
	improved := false
	for i := 0; i < 200 && !improved; i++ {
		g := graph.RandomGnp(8+rng.Intn(5), 0.35, rng)
		if g.M() == 0 {
			continue
		}
		single := Approximate(g)
		multi := ApproximateMultiStart(g, 12, rng)
		if multi.D() < single.D() {
			improved = true
		}
	}
	if !improved {
		t.Skip("no improving instance found in this sample")
	}
}
