package decomp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"syncstamp/internal/graph"
)

// WriteText serializes a decomposition in a line-oriented format:
//
//	n <vertices>
//	star <root> <u1> <v1> <u2> <v2> ...
//	triangle <x> <y> <z>
//
// Lines beginning with '#' are comments.
func WriteText(w io.Writer, d *Decomposition) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", d.N()); err != nil {
		return err
	}
	for _, g := range d.Groups() {
		switch g.Kind {
		case KindStar:
			if _, err := fmt.Fprintf(bw, "star %d", g.Root); err != nil {
				return err
			}
			for _, e := range g.Edges {
				if _, err := fmt.Fprintf(bw, " %d %d", e.U, e.V); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(bw); err != nil {
				return err
			}
		case KindTriangle:
			if _, err := fmt.Fprintf(bw, "triangle %d %d %d\n", g.Tri[0], g.Tri[1], g.Tri[2]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("decomp: cannot encode group kind %v", g.Kind)
		}
	}
	return bw.Flush()
}

// ReadText parses the format produced by WriteText.
func ReadText(r io.Reader) (*Decomposition, error) {
	sc := bufio.NewScanner(r)
	n := -1
	var groups []Group
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "n":
			if n >= 0 {
				return nil, fmt.Errorf("decomp: line %d: duplicate n line", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("decomp: line %d: want \"n <count>\"", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("decomp: line %d: bad vertex count %q", line, fields[1])
			}
			n = v
		case "star":
			if n < 0 {
				return nil, fmt.Errorf("decomp: line %d: group before n line", line)
			}
			if len(fields) < 4 || len(fields)%2 != 0 {
				return nil, fmt.Errorf("decomp: line %d: want \"star <root> <u> <v> ...\"", line)
			}
			nums, err := atoiAll(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("decomp: line %d: %w", line, err)
			}
			root := nums[0]
			var edges []graph.Edge
			for i := 1; i+1 < len(nums); i += 2 {
				edges = append(edges, graph.NewEdge(nums[i], nums[i+1]))
			}
			groups = append(groups, Group{Kind: KindStar, Root: root, Edges: edges})
		case "triangle":
			if n < 0 {
				return nil, fmt.Errorf("decomp: line %d: group before n line", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("decomp: line %d: want \"triangle <x> <y> <z>\"", line)
			}
			nums, err := atoiAll(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("decomp: line %d: %w", line, err)
			}
			groups = append(groups, triangleGroup(nums[0], nums[1], nums[2]))
		default:
			return nil, fmt.Errorf("decomp: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("decomp: read: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("decomp: missing n line")
	}
	return New(n, groups)
}

func atoiAll(fields []string) ([]int, error) {
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out[i] = v
	}
	return out, nil
}
