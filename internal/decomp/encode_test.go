package decomp

import (
	"math/rand"
	"strings"
	"testing"

	"syncstamp/internal/graph"
)

func TestEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		g := graph.RandomGnp(2+rng.Intn(10), 0.6, rng)
		d := Approximate(g)
		var b strings.Builder
		if err := WriteText(&b, d); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		got, err := ReadText(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("ReadText: %v\ninput:\n%s", err, b.String())
		}
		if got.D() != d.D() || got.N() != d.N() {
			t.Fatalf("round trip d=%d n=%d, want d=%d n=%d", got.D(), got.N(), d.D(), d.N())
		}
		for gi, grp := range d.Groups() {
			for _, e := range grp.Edges {
				gotGi, ok := got.GroupOf(e.U, e.V)
				if !ok || gotGi != gi {
					t.Fatalf("edge %v: group %d,%v, want %d", e, gotGi, ok, gi)
				}
			}
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"missing n", "star 0 0 1\n"},
		{"duplicate n", "n 3\nn 3\n"},
		{"bad n", "n x\n"},
		{"group before n", "star 0 0 1\nn 3\n"},
		{"star arity", "n 3\nstar 0 1\n"},
		{"star bad number", "n 3\nstar 0 0 z\n"},
		{"triangle arity", "n 3\ntriangle 0 1\n"},
		{"triangle bad number", "n 3\ntriangle 0 1 q\n"},
		{"unknown directive", "n 3\nblob 1\n"},
		{"invalid star shape", "n 4\nstar 0 0 1 2 3\n"},
		{"empty", "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("ReadText(%q) succeeded", tc.in)
			}
		})
	}
}

func TestReadTextTriangle(t *testing.T) {
	d, err := ReadText(strings.NewReader("# K3\nn 3\ntriangle 2 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.D() != 1 || d.Triangles() != 1 {
		t.Fatalf("d=%d triangles=%d", d.D(), d.Triangles())
	}
	if d.Groups()[0].Tri != [3]int{0, 1, 2} {
		t.Fatalf("Tri = %v, want normalized (0,1,2)", d.Groups()[0].Tri)
	}
}

func TestStringRendering(t *testing.T) {
	d := MustNew(4, []Group{
		starGroup(0, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}}),
		triangleGroup(1, 2, 3),
	})
	s := d.String()
	for _, want := range []string{"E1=star@0{(0,1) (0,2)}", "E2=triangle(1,2,3)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if KindStar.String() != "star" || KindTriangle.String() != "triangle" {
		t.Fatal("Kind.String wrong")
	}
	if StepPendant.String() != "step1" || StepTriangle.String() != "step2" || StepSplit.String() != "step3" {
		t.Fatal("StepKind.String wrong")
	}
}
