package decomp

import (
	"fmt"

	"syncstamp/internal/graph"
)

// StepKind identifies which step of the Figure 7 algorithm produced a group;
// exposed so experiments (E5) can check the paper's narrated step sequence.
type StepKind int

// The three steps of the Figure 7 algorithm.
const (
	StepPendant  StepKind = iota + 1 // first step: degree-1 vertex
	StepTriangle                     // second step: isolated triangle
	StepSplit                        // third step: double star at a busy edge
)

// String names the step as in the paper ("step1".."step3").
func (s StepKind) String() string {
	switch s {
	case StepPendant:
		return "step1"
	case StepTriangle:
		return "step2"
	case StepSplit:
		return "step3"
	default:
		return fmt.Sprintf("StepKind(%d)", int(s))
	}
}

// Trace records the provenance of each output group for one run of the
// Figure 7 algorithm: Steps[i] is the step that produced Groups()[i].
type Trace struct {
	Steps []StepKind
}

// EdgeChoice selects the step-3 edge. The paper picks an edge with the
// largest number of adjacent edges but notes (after Theorem 6) that
// correctness and the ratio bound are independent of the choice; the two
// strategies below are the D2 ablation of DESIGN.md.
type EdgeChoice int

// Step-3 edge-selection strategies.
const (
	// ChooseMaxAdjacent picks the edge with the largest number of adjacent
	// edges, as in line (12) of Figure 7. Ties break lexicographically.
	ChooseMaxAdjacent EdgeChoice = iota + 1
	// ChooseFirst picks the lexicographically first remaining edge.
	ChooseFirst
)

// Approximate runs the Figure 7 approximation algorithm with the paper's
// max-adjacent step-3 choice. The result is an edge decomposition of size at
// most twice the optimum (Theorem 6) and exactly the optimum when g is
// acyclic (Theorem 7).
func Approximate(g *graph.Graph) *Decomposition {
	d, _ := ApproximateTraced(g, ChooseMaxAdjacent)
	return d
}

// ApproximateTraced is Approximate with a configurable step-3 strategy and a
// per-group step trace.
func ApproximateTraced(g *graph.Graph, choice EdgeChoice) (*Decomposition, *Trace) {
	f := g.Clone() // F := E, consumed as groups are output
	var groups []Group
	tr := &Trace{}

	outputStar := func(root int, exclude graph.Edge, hasExclude bool, step StepKind) {
		var edges []graph.Edge
		for _, u := range f.Neighbors(root) {
			e := graph.NewEdge(root, u)
			if hasExclude && e == exclude {
				continue
			}
			edges = append(edges, e)
		}
		if len(edges) == 0 {
			return
		}
		groups = append(groups, starGroup(root, edges))
		tr.Steps = append(tr.Steps, step)
		for _, e := range edges {
			f.RemoveEdge(e.U, e.V)
		}
	}

	for f.M() > 0 {
		// First step: while some vertex x has degree 1, output the star at
		// its unique neighbor y (with all of y's incident edges).
		for {
			x := -1
			for v := 0; v < f.N(); v++ {
				if f.Degree(v) == 1 {
					x = v
					break
				}
			}
			if x == -1 {
				break
			}
			y := f.Neighbors(x)[0]
			outputStar(y, graph.Edge{}, false, StepPendant)
		}

		// Second step: while some triangle (x, y, z) has degree(x) =
		// degree(y) = 2 (their only edges are the triangle's), output it.
		for {
			found := false
			for _, t := range f.Triangles() {
				deg2 := 0
				for _, v := range t {
					if f.Degree(v) == 2 {
						deg2++
					}
				}
				if deg2 >= 2 {
					groups = append(groups, triangleGroup(t[0], t[1], t[2]))
					tr.Steps = append(tr.Steps, StepTriangle)
					f.RemoveEdge(t[0], t[1])
					f.RemoveEdge(t[0], t[2])
					f.RemoveEdge(t[1], t[2])
					found = true
					break
				}
			}
			if !found {
				break
			}
		}

		if f.M() == 0 {
			break
		}

		// Third step: choose an edge (x, y) (strategy per choice), output a
		// star rooted at y with all its incident edges, then a star rooted
		// at x with its remaining incident edges.
		pick := chooseEdge(f, choice)
		x, y := pick.U, pick.V
		outputStar(y, graph.Edge{}, false, StepSplit)
		outputStar(x, pick, true, StepSplit)
	}
	return MustNew(g.N(), groups), tr
}

// chooseEdge implements line (12) of Figure 7 for the given strategy.
// f must have at least one edge.
func chooseEdge(f *graph.Graph, choice EdgeChoice) graph.Edge {
	edges := f.Edges()
	if choice == ChooseFirst {
		return edges[0]
	}
	best := edges[0]
	bestAdj := -1
	for _, e := range edges {
		// Edges adjacent to e: all other edges sharing an endpoint.
		adj := f.Degree(e.U) + f.Degree(e.V) - 2
		if adj > bestAdj {
			bestAdj = adj
			best = e
		}
	}
	return best
}

// StarOnly returns the star-only decomposition built from the greedy
// (maximal-matching) vertex cover: d ≤ 2β(G) groups with no triangles.
// This is the D1 ablation baseline: triangles disabled entirely.
func StarOnly(g *graph.Graph) *Decomposition {
	d, err := FromVertexCover(g, GreedyVertexCover(g))
	if err != nil {
		// GreedyVertexCover always returns a valid cover of g.
		panic(fmt.Sprintf("decomp: greedy cover rejected: %v", err))
	}
	return d
}

// Best returns the smallest decomposition among the polynomial strategies
// implemented here: Figure 7 (both step-3 choices), the star decomposition
// from the greedy vertex cover, and the trivial decompositions. Ties prefer
// the Figure 7 result.
func Best(g *graph.Graph) *Decomposition {
	if g.M() == 0 {
		return MustNew(g.N(), nil)
	}
	fig7, _ := ApproximateTraced(g, ChooseMaxAdjacent)
	candidates := []*Decomposition{fig7}
	if alt, _ := ApproximateTraced(g, ChooseFirst); alt.D() < fig7.D() {
		candidates = append(candidates, alt)
	}
	candidates = append(candidates, StarOnly(g), TrivialWithTriangle(g), TrivialStars(g))
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.D() < best.D() {
			best = c
		}
	}
	return best
}
