package decomp_test

import (
	"fmt"
	"testing"

	"syncstamp/internal/check"
	"syncstamp/internal/decomp"
)

// TestPropStrategiesValidAndBounded: every polynomial strategy yields a
// valid decomposition of the generated topology, none beats the exact
// optimum α(G), and Figure 7 stays within its factor-2 guarantee.
func TestPropStrategiesValidAndBounded(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		g := in.Topo
		exact, err := decomp.Exact(g, 0)
		if err != nil {
			return err
		}
		alpha := exact.D()
		strategies := map[string]*decomp.Decomposition{
			"exact":            exact,
			"fig7":             decomp.Approximate(g),
			"best":             decomp.Best(g),
			"star-only":        decomp.StarOnly(g),
			"trivial-stars":    decomp.TrivialStars(g),
			"trivial-triangle": decomp.TrivialWithTriangle(g),
		}
		for name, d := range strategies {
			if err := d.Validate(g); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			if d.D() < alpha {
				return fmt.Errorf("%s produced %d groups below exact optimum %d", name, d.D(), alpha)
			}
		}
		if fig7 := strategies["fig7"]; g.M() > 0 && fig7.D() > 2*alpha {
			return fmt.Errorf("Figure 7 used %d groups, over twice the optimum %d", fig7.D(), alpha)
		}
		if best := strategies["best"]; best.D() > strategies["fig7"].D() {
			return fmt.Errorf("Best (%d groups) worse than Figure 7 (%d)", best.D(), strategies["fig7"].D())
		}
		return nil
	})
}

// TestPropTheorem5CoverBound: some polynomial strategy meets Theorem 5's
// min(β(G), N−2) vector-size bound — stars rooted at an optimal vertex
// cover when β ≤ N−2, the trailing-triangle decomposition otherwise.
func TestPropTheorem5CoverBound(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		g := in.Topo
		bound, err := decomp.CoverBound(g)
		if err != nil {
			return err
		}
		cover, err := decomp.MinVertexCover(g, 0)
		if err != nil {
			return err
		}
		fromCover, err := decomp.FromVertexCover(g, cover)
		if err != nil {
			return err
		}
		if err := fromCover.Validate(g); err != nil {
			return fmt.Errorf("opt-cover stars: %w", err)
		}
		achieved := decomp.Best(g).D()
		if fromCover.D() < achieved {
			achieved = fromCover.D()
		}
		if bound > 0 && achieved > bound {
			return fmt.Errorf("no strategy met Theorem 5: achieved %d, bound min(β,N−2) = %d", achieved, bound)
		}
		return nil
	})
}

// TestPropGreedyCoverIsCover: the greedy 2-approximate cover really covers
// every edge, on generated topologies and on their edge-deleted mutants.
func TestPropGreedyCoverIsCover(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		g := in.Topo
		inCover := make(map[int]bool)
		for _, v := range decomp.GreedyVertexCover(g) {
			inCover[v] = true
		}
		for _, e := range g.Edges() {
			if !inCover[e.U] && !inCover[e.V] {
				return fmt.Errorf("edge %d-%d not covered by greedy cover", e.U, e.V)
			}
		}
		if _, err := decomp.FromVertexCover(g, decomp.GreedyVertexCover(g)); err != nil && g.M() > 0 {
			return err
		}
		return nil
	})
}
