package decomp

import (
	"syncstamp/internal/graph"
)

// TrivialStars returns the decomposition that roots one star at every vertex
// i, containing the edges (i, j) with j > i. For the complete graph K_N this
// is the N−1 star decomposition of Figure 3(b); for sparser graphs empty
// stars are dropped, so the size is the number of vertices that are the
// lower endpoint of some edge (at most N−1).
func TrivialStars(g *graph.Graph) *Decomposition {
	var groups []Group
	for v := 0; v < g.N(); v++ {
		var edges []graph.Edge
		for _, u := range g.Neighbors(v) {
			if u > v {
				edges = append(edges, graph.NewEdge(v, u))
			}
		}
		if len(edges) > 0 {
			groups = append(groups, starGroup(v, edges))
		}
	}
	return MustNew(g.N(), groups)
}

// TrivialWithTriangle returns the N−3 stars + 1 triangle decomposition of
// Figure 3(a) when the last three vertices induce a triangle: stars rooted
// at vertices 0..N−4 take all their edges to higher-numbered vertices, and
// the triangle on {N−3, N−2, N−1} takes the rest. When the final three
// vertices do not induce a triangle the leftover edges become stars, so the
// result is never larger than TrivialStars.
func TrivialWithTriangle(g *graph.Graph) *Decomposition {
	n := g.N()
	if n < 3 {
		return TrivialStars(g)
	}
	var groups []Group
	for v := 0; v < n-3; v++ {
		var edges []graph.Edge
		for _, u := range g.Neighbors(v) {
			if u > v {
				edges = append(edges, graph.NewEdge(v, u))
			}
		}
		if len(edges) > 0 {
			groups = append(groups, starGroup(v, edges))
		}
	}
	x, y, z := n-3, n-2, n-1
	if g.HasEdge(x, y) && g.HasEdge(x, z) && g.HasEdge(y, z) {
		groups = append(groups, triangleGroup(x, y, z))
	} else {
		for _, v := range []int{x, y} {
			var edges []graph.Edge
			for _, u := range g.Neighbors(v) {
				if u > v {
					edges = append(edges, graph.NewEdge(v, u))
				}
			}
			if len(edges) > 0 {
				groups = append(groups, starGroup(v, edges))
			}
		}
	}
	return MustNew(n, groups)
}
