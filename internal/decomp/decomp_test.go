package decomp

import (
	"math/rand"
	"testing"

	"syncstamp/internal/graph"
)

func TestNewValidStar(t *testing.T) {
	groups := []Group{
		{Kind: KindStar, Root: 0, Edges: []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}}},
	}
	d, err := New(3, groups)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if d.D() != 1 || d.Stars() != 1 || d.Triangles() != 0 {
		t.Fatalf("d=%d stars=%d triangles=%d", d.D(), d.Stars(), d.Triangles())
	}
	gi, ok := d.GroupOf(1, 0)
	if !ok || gi != 0 {
		t.Fatalf("GroupOf(1,0) = %d, %v", gi, ok)
	}
	if _, ok := d.GroupOf(1, 2); ok {
		t.Fatal("GroupOf(1,2) should be uncovered")
	}
}

func TestNewRejectsBadGroups(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		groups []Group
	}{
		{"empty group", 3, []Group{{Kind: KindStar, Root: 0}}},
		{"not a star", 4, []Group{{Kind: KindStar, Root: 0, Edges: []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}}}},
		{"not a triangle", 4, []Group{{Kind: KindTriangle, Edges: []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}}}},
		{"duplicate edge across groups", 3, []Group{
			{Kind: KindStar, Root: 0, Edges: []graph.Edge{{U: 0, V: 1}}},
			{Kind: KindStar, Root: 1, Edges: []graph.Edge{{U: 0, V: 1}}},
		}},
		{"edge out of range", 2, []Group{{Kind: KindStar, Root: 0, Edges: []graph.Edge{{U: 0, V: 5}}}}},
		{"bad kind", 3, []Group{{Kind: Kind(9), Edges: []graph.Edge{{U: 0, V: 1}}}}},
		{"duplicate edge within group", 3, []Group{{Kind: KindStar, Root: 0, Edges: []graph.Edge{{U: 0, V: 1}, {U: 0, V: 1}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.n, tc.groups); err == nil {
				t.Fatal("New accepted invalid groups")
			}
		})
	}
}

func TestNewFixesWrongRoot(t *testing.T) {
	// Declared root 2 is not incident to all edges; New should adopt a
	// valid root instead.
	groups := []Group{
		{Kind: KindStar, Root: 2, Edges: []graph.Edge{{U: 0, V: 1}, {U: 0, V: 3}}},
	}
	d, err := New(4, groups)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if d.Groups()[0].Root != 0 {
		t.Fatalf("root = %d, want 0", d.Groups()[0].Root)
	}
}

func TestTrivialStarsComplete(t *testing.T) {
	g := graph.Complete(5)
	d := TrivialStars(g)
	if d.D() != 4 {
		t.Fatalf("K5 trivial stars size = %d, want 4 (Figure 3(b))", d.D())
	}
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestTrivialWithTriangleComplete(t *testing.T) {
	g := graph.Complete(5)
	d := TrivialWithTriangle(g)
	if d.D() != 3 {
		t.Fatalf("K5 trivial+triangle size = %d, want 3 (Figure 3(a))", d.D())
	}
	if d.Stars() != 2 || d.Triangles() != 1 {
		t.Fatalf("stars=%d triangles=%d, want 2 and 1", d.Stars(), d.Triangles())
	}
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestTrivialWithTriangleNoTriangle(t *testing.T) {
	// Path graph: last three vertices do not induce a triangle.
	g := graph.Path(6)
	d := TrivialWithTriangle(g)
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
	if d.Triangles() != 0 {
		t.Fatal("path cannot contain a triangle group")
	}
}

func TestTrivialSmallGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		g := graph.Complete(n)
		for _, d := range []*Decomposition{TrivialStars(g), TrivialWithTriangle(g)} {
			if err := d.Validate(g); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	}
}

func TestFromVertexCover(t *testing.T) {
	g := graph.ClientServer(2, 5, false)
	d, err := FromVertexCover(g, []int{0, 1})
	if err != nil {
		t.Fatalf("FromVertexCover: %v", err)
	}
	if d.D() != 2 {
		t.Fatalf("client-server cover decomposition size = %d, want 2", d.D())
	}
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestFromVertexCoverRejects(t *testing.T) {
	g := graph.Path(4)
	if _, err := FromVertexCover(g, []int{0}); err == nil {
		t.Fatal("accepted a non-cover")
	}
	if _, err := FromVertexCover(g, []int{0, 9}); err == nil {
		t.Fatal("accepted an out-of-range vertex")
	}
}

func TestGreedyVertexCoverIsCover(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		g := graph.RandomGnp(2+rng.Intn(15), rng.Float64(), rng)
		cover := GreedyVertexCover(g)
		in := map[int]bool{}
		for _, v := range cover {
			in[v] = true
		}
		for _, e := range g.Edges() {
			if !in[e.U] && !in[e.V] {
				t.Fatalf("edge %v uncovered by %v", e, cover)
			}
		}
	}
}

func TestMinVertexCoverKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K5", graph.Complete(5), 4},
		{"star7", graph.Star(7, 3), 1},
		{"path4", graph.Path(4), 2},
		{"path5", graph.Path(5), 2},
		{"cycle5", graph.Cycle(5), 3},
		{"triangle", graph.Triangle(), 2},
		{"clientserver 3x6", graph.ClientServer(3, 6, false), 3},
		{"disjoint triangles 3", graph.DisjointTriangles(3), 6},
		{"empty", graph.New(4), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cover, err := MinVertexCover(tc.g, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(cover) != tc.want {
				t.Fatalf("β = %d, want %d (cover %v)", len(cover), tc.want, cover)
			}
		})
	}
}

func TestMinVertexCoverGreedyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 25; i++ {
		g := graph.RandomGnp(3+rng.Intn(10), rng.Float64(), rng)
		exact, err := MinVertexCover(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		greedy := GreedyVertexCover(g)
		if len(greedy) > 2*len(exact) {
			t.Fatalf("greedy %d > 2x optimal %d", len(greedy), len(exact))
		}
	}
}

func TestMinVertexCoverLimit(t *testing.T) {
	if _, err := MinVertexCover(graph.Complete(80), 10); err == nil {
		t.Fatal("MinVertexCover accepted a graph above the limit")
	}
}

func TestCoverBound(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K5: min(4, 3) = 3", graph.Complete(5), 3},
		{"star: min(1, 4) = 1", graph.Star(6, 0), 1},
		{"triangle: min(2, 1) = 1", graph.Triangle(), 1},
		{"single edge", graph.Path(2), 1},
		{"clientserver 2x6: 2", graph.ClientServer(2, 6, false), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := CoverBound(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("CoverBound = %d, want %d", got, tc.want)
			}
		})
	}
}
