package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syncstamp/internal/graph"
)

func TestApproximateValidOnFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.New(4)},
		{"single edge", graph.Path(2)},
		{"triangle", graph.Triangle()},
		{"star9", graph.Star(9, 0)},
		{"path7", graph.Path(7)},
		{"cycle6", graph.Cycle(6)},
		{"K5", graph.Complete(5)},
		{"K7", graph.Complete(7)},
		{"grid 3x3", graph.Grid(3, 3)},
		{"hypercube3", graph.Hypercube(3)},
		{"clientserver", graph.ClientServer(3, 8, true)},
		{"tree", graph.BalancedTree(3, 3)},
		{"figure4", graph.Figure4Tree()},
		{"figure2b", graph.Figure2b()},
		{"disjoint triangles", graph.DisjointTriangles(4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, choice := range []EdgeChoice{ChooseMaxAdjacent, ChooseFirst} {
				d, tr := ApproximateTraced(tc.g, choice)
				if err := d.Validate(tc.g); err != nil {
					t.Fatalf("choice %v: %v", choice, err)
				}
				if len(tr.Steps) != d.D() {
					t.Fatalf("trace has %d steps for %d groups", len(tr.Steps), d.D())
				}
			}
		})
	}
}

func TestApproximateStarAndTriangleTopologies(t *testing.T) {
	// Lemma 1 topologies need exactly one group.
	if d := Approximate(graph.Star(10, 4)); d.D() != 1 {
		t.Fatalf("star decomposition size = %d, want 1", d.D())
	}
	d := Approximate(graph.Triangle())
	if d.D() != 1 {
		t.Fatalf("triangle decomposition size = %d, want 1", d.D())
	}
	if d.Triangles() != 1 {
		t.Fatal("triangle topology should decompose into one triangle group")
	}
}

func TestApproximateK5MatchesFigure3a(t *testing.T) {
	// The Figure 7 algorithm on K5: step 3 removes two stars, leaving a
	// triangle for step 2 — total 3 groups as in Figure 3(a).
	d := Approximate(graph.Complete(5))
	if d.D() != 3 {
		t.Fatalf("K5 size = %d, want 3", d.D())
	}
	if d.Stars() != 2 || d.Triangles() != 1 {
		t.Fatalf("K5 decomposition = %v, want 2 stars + 1 triangle", d)
	}
}

func TestApproximateFigure4TreeThreeStars(t *testing.T) {
	g := graph.Figure4Tree()
	d := Approximate(g)
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
	if d.D() != 3 {
		t.Fatalf("Figure 4 tree size = %d, want 3", d.D())
	}
	if d.Triangles() != 0 {
		t.Fatal("tree decomposition cannot contain triangles")
	}
}

func TestApproximateOptimalOnTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		g := graph.RandomTree(2+rng.Intn(12), rng)
		approx := Approximate(g)
		exact, err := Exact(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if approx.D() != exact.D() {
			t.Fatalf("tree %v: approx %d != optimal %d", g, approx.D(), exact.D())
		}
	}
}

func TestApproximateRatioBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 25; i++ {
		g := graph.RandomGnp(4+rng.Intn(6), 0.5, rng)
		if g.M() == 0 {
			continue
		}
		approx := Approximate(g)
		exact, err := Exact(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if approx.D() > 2*exact.D() {
			t.Fatalf("graph %v: approx %d > 2x optimal %d", g, approx.D(), exact.D())
		}
		if exact.D() > approx.D() {
			t.Fatalf("graph %v: exact %d worse than approx %d", g, exact.D(), approx.D())
		}
	}
}

func TestStepTraceOnPendantGraph(t *testing.T) {
	// A path 0-1-2: degree-1 vertex 0 exists, so step 1 fires first and the
	// single output star covers everything.
	d, tr := ApproximateTraced(graph.Path(3), ChooseMaxAdjacent)
	if d.D() != 1 || tr.Steps[0] != StepPendant {
		t.Fatalf("path3: d=%d steps=%v", d.D(), tr.Steps)
	}
	// Disjoint triangles have no degree-1 vertices; step 2 fires.
	d, tr = ApproximateTraced(graph.DisjointTriangles(2), ChooseMaxAdjacent)
	if d.D() != 2 {
		t.Fatalf("2 triangles: d=%d", d.D())
	}
	for _, s := range tr.Steps {
		if s != StepTriangle {
			t.Fatalf("steps = %v, want all step2", tr.Steps)
		}
	}
	// Cycle C6 has no pendant vertex and no triangle; step 3 fires first.
	_, tr = ApproximateTraced(graph.Cycle(6), ChooseMaxAdjacent)
	if tr.Steps[0] != StepSplit {
		t.Fatalf("C6 first step = %v, want step3", tr.Steps[0])
	}
}

func TestStarOnlyNoTriangles(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20; i++ {
		g := graph.RandomGnp(3+rng.Intn(10), 0.5, rng)
		d := StarOnly(g)
		if err := d.Validate(g); err != nil {
			t.Fatal(err)
		}
		if d.Triangles() != 0 {
			t.Fatal("StarOnly produced a triangle group")
		}
	}
}

func TestBestNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20; i++ {
		g := graph.RandomGnp(3+rng.Intn(10), 0.5, rng)
		best := Best(g)
		if err := best.Validate(g); err != nil {
			t.Fatal(err)
		}
		fig7 := Approximate(g)
		if best.D() > fig7.D() {
			t.Fatalf("Best %d worse than Figure 7 %d", best.D(), fig7.D())
		}
	}
	if Best(graph.New(5)).D() != 0 {
		t.Fatal("Best of empty graph should be empty")
	}
}

func TestBetaAtMostTwiceAlpha(t *testing.T) {
	// β(G) ≤ 2α(G); tight for disjoint triangles (Section 3.3, E16).
	g := graph.DisjointTriangles(3)
	alpha, err := Alpha(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := MinVertexCover(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if alpha != 3 || len(beta) != 6 {
		t.Fatalf("alpha=%d beta=%d, want 3 and 6", alpha, len(beta))
	}
}

func TestExactSmallKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.New(3), 0},
		{"edge", graph.Path(2), 1},
		{"triangle", graph.Triangle(), 1},
		{"star", graph.Star(8, 0), 1},
		{"K4", graph.Complete(4), 2},
		{"K5", graph.Complete(5), 3},
		{"path5", graph.Path(5), 2},
		{"cycle4", graph.Cycle(4), 2},
		{"cycle6", graph.Cycle(6), 3},
		{"figure4tree", graph.Figure4Tree(), 3},
		{"two disjoint edges", func() *graph.Graph {
			g := graph.New(4)
			g.AddEdge(0, 1)
			g.AddEdge(2, 3)
			return g
		}(), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Exact(tc.g, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(tc.g); err != nil {
				t.Fatal(err)
			}
			if d.D() != tc.want {
				t.Fatalf("α = %d, want %d (%v)", d.D(), tc.want, d)
			}
		})
	}
}

func TestExactLimit(t *testing.T) {
	if _, err := Exact(graph.Complete(12), 10); err == nil {
		t.Fatal("Exact accepted a graph above the edge limit")
	}
}

// Property: the Figure 7 algorithm always yields a valid decomposition, with
// both step-3 strategies, on arbitrary random graphs.
func TestQuickApproximateValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGnp(1+rng.Intn(14), rng.Float64(), rng)
		for _, choice := range []EdgeChoice{ChooseMaxAdjacent, ChooseFirst} {
			d, _ := ApproximateTraced(g, choice)
			if d.Validate(g) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: every edge of the input is assigned to exactly one group and
// GroupOf agrees with the group listing.
func TestQuickGroupOfConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGnp(2+rng.Intn(10), 0.6, rng)
		d := Approximate(g)
		for gi, grp := range d.Groups() {
			for _, e := range grp.Edges {
				got, ok := d.GroupOf(e.U, e.V)
				if !ok || got != gi {
					return false
				}
			}
		}
		count := 0
		for _, grp := range d.Groups() {
			count += len(grp.Edges)
		}
		return count == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkApproximateK20(b *testing.B) {
	g := graph.Complete(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Approximate(g)
	}
}

func BenchmarkApproximateTree1000(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomTree(1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Approximate(g)
	}
}
