package decomp

import (
	"math/rand"
	"testing"

	"syncstamp/internal/graph"
)

// bruteMinPartition finds the minimum star/triangle edge partition by
// exhaustive enumeration of set partitions (restricted-growth strings) —
// an oracle fully independent of Exact's shape-cover branch and bound.
// Only feasible for a handful of edges.
func bruteMinPartition(t *testing.T, g *graph.Graph) int {
	t.Helper()
	edges := g.Edges()
	m := len(edges)
	if m == 0 {
		return 0
	}
	if m > 8 {
		t.Fatalf("bruteMinPartition limited to 8 edges, got %d", m)
	}
	assign := make([]int, m)
	best := m + 1
	var rec func(i, maxUsed int)
	validPart := func(members []graph.Edge) bool {
		sub := g.Subgraph(members)
		if _, ok := sub.IsStar(); ok {
			return true
		}
		_, ok := sub.IsTriangle()
		return ok
	}
	rec = func(i, maxUsed int) {
		if maxUsed+1 >= best {
			return // cannot beat the incumbent
		}
		if i == m {
			parts := make([][]graph.Edge, maxUsed+1)
			for k, a := range assign {
				parts[a] = append(parts[a], edges[k])
			}
			for _, p := range parts {
				if !validPart(p) {
					return
				}
			}
			if maxUsed+1 < best {
				best = maxUsed + 1
			}
			return
		}
		for a := 0; a <= maxUsed+1; a++ {
			assign[i] = a
			next := maxUsed
			if a > maxUsed {
				next = a
			}
			rec(i+1, next)
		}
	}
	rec(0, -1)
	return best
}

// TestExactMatchesPartitionEnumeration cross-checks the branch-and-bound
// optimum against full partition enumeration on small graphs.
func TestExactMatchesPartitionEnumeration(t *testing.T) {
	fixed := []*graph.Graph{
		graph.Triangle(),
		graph.Path(5),
		graph.Star(6, 0),
		graph.Cycle(4),
		graph.Cycle(5),
		graph.Complete(4),
		graph.DisjointTriangles(2),
	}
	for _, g := range fixed {
		if g.M() > 8 {
			continue
		}
		want := bruteMinPartition(t, g)
		d, err := Exact(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d.D() != want {
			t.Fatalf("graph %v: Exact %d != enumeration %d", g, d.D(), want)
		}
	}
	rng := rand.New(rand.NewSource(44))
	checked := 0
	for i := 0; i < 200 && checked < 25; i++ {
		g := graph.RandomGnp(6, 0.35, rng)
		if g.M() == 0 || g.M() > 8 {
			continue
		}
		checked++
		want := bruteMinPartition(t, g)
		d, err := Exact(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d.D() != want {
			t.Fatalf("graph %v: Exact %d != enumeration %d", g, d.D(), want)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d random graphs checked", checked)
	}
}
