package decomp_test

import (
	"fmt"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
)

// The Figure 7 algorithm on the fully-connected 5-process system finds the
// Figure 3(a) decomposition: two stars and one triangle.
func ExampleApproximate() {
	d := decomp.Approximate(graph.Complete(5))
	fmt.Println("groups:", d.D())
	fmt.Println("stars:", d.Stars(), "triangles:", d.Triangles())
	// Output:
	// groups: 3
	// stars: 2 triangles: 1
}

// A client-server topology decomposes into one star per server (Theorem 5's
// vertex-cover construction), so timestamps need one integer per server.
func ExampleFromVertexCover() {
	g := graph.ClientServer(3, 50, false)
	d, err := decomp.FromVertexCover(g, []int{0, 1, 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("N=%d channels=%d d=%d\n", g.N(), g.M(), d.D())
	// Output:
	// N=53 channels=150 d=3
}

// GroupOf answers "which vector component tracks this channel" — the e(m)
// lookup of the online algorithm.
func ExampleDecomposition_GroupOf() {
	d := decomp.Figure3a() // E1, E2 stars + E3 triangle on K5
	g, ok := d.GroupOf(1, 2)
	fmt.Println("channel P2-P3 in group:", g+1, ok)
	g, ok = d.GroupOf(3, 4)
	fmt.Println("channel P4-P5 in group:", g+1, ok)
	// Output:
	// channel P2-P3 in group: 2 true
	// channel P4-P5 in group: 3 true
}
