package chainclock_test

import (
	"fmt"

	"syncstamp/internal/chainclock"
	"syncstamp/internal/trace"
)

// Chain clocks on two interleaved but independent conversations: two
// chains, and the stamps characterize ↦ exactly.
func ExampleStampTrace() {
	tr := &trace.Trace{N: 4}
	tr.MustAppend(trace.Message(0, 1)) // conversation A
	tr.MustAppend(trace.Message(2, 3)) // conversation B
	tr.MustAppend(trace.Message(1, 0)) // A again
	tr.MustAppend(trace.Message(3, 2)) // B again
	r := chainclock.StampTrace(tr)
	fmt.Println("chains:", r.Chains)
	fmt.Println("m1:", r.Stamps[0], "m2:", r.Stamps[1])
	fmt.Println("m1 ↦ m3:", chainclock.Precedes(r.Stamps[0], r.Stamps[2]))
	fmt.Println("m1 ‖ m2:", !chainclock.Precedes(r.Stamps[0], r.Stamps[1]) &&
		!chainclock.Precedes(r.Stamps[1], r.Stamps[0]))
	// Output:
	// chains: 2
	// m1: (1,0) m2: (0,1)
	// m1 ↦ m3: true
	// m1 ‖ m2: true
}
