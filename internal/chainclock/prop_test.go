package chainclock_test

import (
	"fmt"
	"testing"

	"syncstamp/internal/chainclock"
	"syncstamp/internal/check"
	"syncstamp/internal/order"
)

// TestPropChainClockExact: the centralized chain-partition stamps must
// characterize ↦ exactly, pass their internal consistency check, and use at
// least width(P) chains (any chain partition does, by Dilworth) but never
// more than one per message.
func TestPropChainClockExact(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		res := chainclock.StampTrace(in.Trace)
		if err := res.Verify(); err != nil {
			return err
		}
		m := in.Trace.NumMessages()
		if res.Chains > m {
			return fmt.Errorf("%d chains for %d messages", res.Chains, m)
		}
		if w := order.MessagePoset(in.Trace).Width(); res.Chains < w {
			return fmt.Errorf("%d chains below poset width %d: not a chain partition", res.Chains, w)
		}
		return check.Compare(in, "chainclock")
	})
}
