// Package chainclock implements a centralized, online chain-partition
// timestamping scheme for message posets — the family of "dimension-bounded"
// mechanisms the paper contrasts itself with in Section 6 (Ward's framework
// algorithm and the Ward–Taylor hierarchical clocks). Messages are assigned,
// in arrival order, to chains of the poset (M, ↦); the timestamp of a
// message is the vector whose c-th component counts the elements of chain c
// below-or-equal to it. Such vectors characterize ↦ exactly:
//
//	m1 ↦ m2 ⟺ v(m1) < v(m2)
//
// because component chain(m1) compares m1's position against how much of
// that chain m2 dominates.
//
// The contrasts the paper draws hold structurally here:
//
//   - the scheme is centralized: it needs the arrival order and the chain
//     table, where the paper's online algorithm is fully distributed;
//   - the number of chains (the final vector size) depends on the
//     computation and the arrival order, not just the topology, and can
//     exceed the poset width (first-fit online chain partitioning is not
//     optimal); stamps issued before a chain existed are implicitly padded
//     with zeros, so early stamps are "short" until finalized.
//
// Experiment E17 compares the resulting sizes against the online
// algorithm's d and the offline width.
package chainclock

import (
	"fmt"

	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// Result is the outcome of chain-clock stamping.
type Result struct {
	// Chains is the number of chains used — the final vector size.
	Chains int
	// Stamps are the message timestamps, padded to Chains components.
	Stamps []vector.V
	// ChainOf maps each message to its chain.
	ChainOf []int
}

// StampTrace assigns chain-clock timestamps to every message of tr.
// Messages are processed in trace order (a linear extension of ↦), each
// appended to an existing chain whose whole content it dominates —
// preferring a predecessor's chain, then first fit — or to a fresh chain.
func StampTrace(tr *trace.Trace) *Result {
	res := &Result{}
	last := make([]int, tr.N) // last message per process, -1 if none
	for i := range last {
		last[i] = -1
	}
	var chainLen []int // current length of each chain

	idx := 0
	for _, op := range tr.Ops {
		if op.Kind != trace.OpMessage {
			continue
		}
		// v = componentwise max over predecessors' stamps (padded).
		v := vector.New(len(chainLen))
		var preds []int
		for _, proc := range []int{op.From, op.To} {
			if p := last[proc]; p != -1 {
				preds = append(preds, p)
				// Predecessor stamps may be shorter than the current chain
				// count; MaxTrunc pads them into v.
				v.MaxTrunc(res.Stamps[p])
			}
		}
		// A chain c can host the new message iff the message dominates all
		// of c: v[c] == len(c). Prefer a predecessor's chain.
		chain := -1
		for _, p := range preds {
			c := res.ChainOf[p]
			if v[c] == chainLen[c] {
				chain = c
				break
			}
		}
		if chain == -1 {
			for c := range chainLen {
				if v[c] == chainLen[c] {
					chain = c
					break
				}
			}
		}
		if chain == -1 {
			chain = len(chainLen)
			chainLen = append(chainLen, 0)
			v = append(v, 0)
		}
		chainLen[chain]++
		v[chain] = chainLen[chain]

		res.Stamps = append(res.Stamps, v)
		res.ChainOf = append(res.ChainOf, chain)
		last[op.From] = idx
		last[op.To] = idx
		idx++
	}
	res.Chains = len(chainLen)
	// Pad early stamps: components for chains created later are zero
	// (everything in those chains arrived later in a linear extension, so
	// none of it is below an earlier message).
	for i, s := range res.Stamps {
		if len(s) < res.Chains {
			padded := vector.New(res.Chains)
			copy(padded, s)
			res.Stamps[i] = padded
		}
	}
	return res
}

// Precedes reports m1 ↦ m2 from two (finalized) chain-clock stamps.
func Precedes(v1, v2 vector.V) bool { return vector.Less(v1, v2) }

// Verify checks internal consistency: every stamp has Chains components and
// each message's own-chain component equals its position in the chain.
func (r *Result) Verify() error {
	pos := make([]int, r.Chains)
	for i, s := range r.Stamps {
		if len(s) != r.Chains {
			return fmt.Errorf("chainclock: stamp %d has %d components, want %d", i, len(s), r.Chains)
		}
		c := r.ChainOf[i]
		pos[c]++
		if s[c] != pos[c] {
			return fmt.Errorf("chainclock: stamp %d own-chain component %d != position %d", i, s[c], pos[c])
		}
	}
	return nil
}
