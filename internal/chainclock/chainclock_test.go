package chainclock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

func TestEmptyTrace(t *testing.T) {
	r := StampTrace(&trace.Trace{N: 4})
	if r.Chains != 0 || len(r.Stamps) != 0 {
		t.Fatalf("empty: %+v", r)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTotallyOrderedSingleChain(t *testing.T) {
	// Star topology: messages totally ordered, so one chain suffices and
	// the predecessor-preference heuristic must find it.
	rng := rand.New(rand.NewSource(1))
	tr := trace.Generate(graph.Star(8, 0), trace.GenOptions{Messages: 40}, rng)
	r := StampTrace(tr)
	if r.Chains != 1 {
		t.Fatalf("star computation chains = %d, want 1", r.Chains)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	for i, s := range r.Stamps {
		if s[0] != i+1 {
			t.Fatalf("stamp %d = %v", i, s)
		}
	}
}

func TestDisjointPairsTwoChains(t *testing.T) {
	tr := &trace.Trace{N: 4}
	for k := 0; k < 5; k++ {
		tr.MustAppend(trace.Message(0, 1))
		tr.MustAppend(trace.Message(2, 3))
	}
	r := StampTrace(tr)
	if r.Chains != 2 {
		t.Fatalf("chains = %d, want 2", r.Chains)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPaddingEarlyStamps(t *testing.T) {
	tr := &trace.Trace{N: 4}
	tr.MustAppend(trace.Message(0, 1)) // chain 0
	tr.MustAppend(trace.Message(2, 3)) // chain 1 created later
	r := StampTrace(tr)
	if len(r.Stamps[0]) != 2 {
		t.Fatalf("early stamp not padded: %v", r.Stamps[0])
	}
	if r.Stamps[0][1] != 0 {
		t.Fatalf("pad component must be 0: %v", r.Stamps[0])
	}
}

// Property: chain-clock stamps characterize ↦ exactly and use at least
// width-many chains.
func TestQuickCharacterizesOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(8), 0.4, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 1 + rng.Intn(50)}, rng)
		r := StampTrace(tr)
		if r.Verify() != nil {
			return false
		}
		p := order.MessagePoset(tr)
		if r.Chains < p.Width() {
			return false // a chain partition can never beat the width
		}
		for i := range r.Stamps {
			for j := range r.Stamps {
				if i != j && Precedes(r.Stamps[i], r.Stamps[j]) != p.Less(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: stamps are pairwise distinct and the own-chain component equals
// the chain position (checked by Verify).
func TestQuickStampsDistinct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(6), 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 1 + rng.Intn(40)}, rng)
		r := StampTrace(tr)
		for i := range r.Stamps {
			for j := range r.Stamps {
				if i != j && vector.Eq(r.Stamps[i], r.Stamps[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestChainsCanExceedWidth(t *testing.T) {
	// First-fit online chain partitioning is not optimal: build an arrival
	// order that forces more chains than the width. Known adversarial
	// pattern for width 2: two incomparable messages, then elements that
	// dominate the "wrong" prefixes. We accept any example where chains >
	// width to document the contrast with the offline algorithm.
	found := false
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300 && !found; i++ {
		g := graph.RandomConnected(4+rng.Intn(5), 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 20}, rng)
		r := StampTrace(tr)
		w := order.MessagePoset(tr).Width()
		if r.Chains > w {
			found = true
		}
	}
	if !found {
		t.Skip("no width-exceeding example found in this sample (heuristic too good)")
	}
}

func BenchmarkStampTrace1000(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := trace.Generate(graph.Complete(10), trace.GenOptions{Messages: 1000}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StampTrace(tr)
	}
}
