package vector

import "testing"

func TestMaxTrunc(t *testing.T) {
	cases := []struct {
		name string
		v, w V
		want V
	}{
		{"equal-length", V{1, 5, 2}, V{3, 4, 2}, V{3, 5, 2}},
		{"shorter-arg", V{1, 5, 2}, V{4}, V{4, 5, 2}},
		{"longer-arg", V{1, 5}, V{0, 9, 7, 8}, V{1, 9}},
		{"empty-receiver", V{}, V{3, 1}, V{}},
		{"empty-arg", V{2, 2}, V{}, V{2, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.v.Clone()
			got.MaxTrunc(tc.w)
			if !Eq(got, tc.want) {
				t.Fatalf("(%s).MaxTrunc(%s) = %s, want %s", tc.v, tc.w, got, tc.want)
			}
		})
	}
}

func TestMaxTruncLeavesArgument(t *testing.T) {
	w := V{9, 9, 9}
	v := V{1, 2, 3}
	v.MaxTrunc(w)
	if !Eq(w, V{9, 9, 9}) {
		t.Fatalf("MaxTrunc mutated its argument: %s", w)
	}
}

func TestDiff(t *testing.T) {
	cases := []struct {
		name string
		u, w V
		want int
	}{
		{"identical", V{1, 2, 3}, V{1, 2, 3}, 0},
		{"all-differ", V{1, 2}, V{2, 1}, 2},
		{"some-differ", V{1, 2, 3, 4}, V{1, 0, 3, 0}, 2},
		{"empty", V{}, V{}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Diff(tc.u, tc.w); got != tc.want {
				t.Fatalf("Diff(%s, %s) = %d, want %d", tc.u, tc.w, got, tc.want)
			}
		})
	}
}

func TestDiffLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Diff on mismatched lengths did not panic")
		}
	}()
	Diff(V{1}, V{1, 2})
}
