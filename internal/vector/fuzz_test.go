package vector

import (
	"bytes"
	"testing"
)

// FuzzDecode checks the vector codec never panics on arbitrary bytes and
// that anything it accepts re-encodes to the consumed prefix.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{3, 1, 2, 3})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})
	f.Add((V{1, 0, 1 << 30}).Encode(nil))
	f.Fuzz(func(t *testing.T, in []byte) {
		v, n, err := Decode(in)
		if err != nil {
			return
		}
		if n <= 0 || n > len(in) {
			t.Fatalf("consumed %d of %d bytes", n, len(in))
		}
		re := v.Encode(nil)
		back, n2, err := Decode(re)
		if err != nil || n2 != len(re) || !Eq(back, v) {
			t.Fatalf("re-encode round trip failed: %v %d %v", err, n2, back)
		}
	})
}

// FuzzCompare checks comparison laws hold for arbitrary component values:
// antisymmetry of Before/After and consistency of the predicate helpers.
func FuzzCompare(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{5}, []byte{5})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		if len(a) > 16 || len(b) > 16 {
			return
		}
		u := make(V, len(a))
		for i, x := range a {
			u[i] = int(x)
		}
		w := make(V, len(b))
		for i, x := range b {
			w[i] = int(x)
		}
		cu, cw := Compare(u, w), Compare(w, u)
		okSym := (cu == Before && cw == After) ||
			(cu == After && cw == Before) ||
			(cu == Equal && cw == Equal) ||
			(cu == Incomparable && cw == Incomparable)
		if !okSym {
			t.Fatalf("asymmetry violated: %v vs %v", cu, cw)
		}
		if Less(u, w) != (cu == Before) || Leq(u, w) != (cu == Before || cu == Equal) {
			t.Fatal("predicate helpers disagree with Compare")
		}
		if len(a) == len(b) && bytes.Equal(a, b) && cu != Equal {
			t.Fatal("equal byte vectors compare unequal")
		}
	})
}
