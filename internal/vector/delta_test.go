package vector

import "testing"

func TestDeltaSinceBasic(t *testing.T) {
	prev := V{1, 2, 3, 0}
	cur := V{1, 5, 3, 4}
	got := cur.DeltaSince(prev)
	want := []Change{{Index: 1, Value: 5}, {Index: 3, Value: 4}}
	if len(got) != len(want) {
		t.Fatalf("delta = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delta[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDeltaSinceIdentical(t *testing.T) {
	v := V{4, 4, 4}
	if d := v.DeltaSince(v.Clone()); d != nil {
		t.Fatalf("identical vectors have delta %v, want nil", d)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	cases := []struct{ prev, cur V }{
		{V{}, V{}},
		{V{0, 0, 0}, V{1, 0, 2}},
		{V{7, 7}, V{7, 7}},
		{V{1, 2, 3, 4, 5}, V{5, 4, 3, 2, 1}},
		{New(6), V{0, 0, 0, 0, 0, 9}},
	}
	for _, c := range cases {
		got := c.prev.Clone()
		if err := got.ApplyDelta(c.cur.DeltaSince(c.prev)); err != nil {
			t.Fatalf("ApplyDelta(%v -> %v): %v", c.prev, c.cur, err)
		}
		if !Eq(got, c.cur) {
			t.Fatalf("round trip %v -> %v produced %v", c.prev, c.cur, got)
		}
	}
}

func TestApplyDeltaOutOfRange(t *testing.T) {
	v := V{1, 2}
	if err := v.ApplyDelta([]Change{{Index: 2, Value: 9}}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := v.ApplyDelta([]Change{{Index: -1, Value: 9}}); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestDeltaSinceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	(V{1, 2}).DeltaSince(V{1})
}

// FuzzVectorDelta round-trips the differential codec: for arbitrary prev and
// cur of the same length, applying cur.DeltaSince(prev) to prev reconstructs
// cur exactly, and an empty delta means the vectors were already equal.
func FuzzVectorDelta(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{1, 9, 3})
	f.Add([]byte{0, 0}, []byte{255, 255})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		if len(a) > 32 || len(b) > 32 {
			return
		}
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		prev := make(V, n)
		cur := make(V, n)
		for i := 0; i < n; i++ {
			prev[i] = int(a[i])
			cur[i] = int(b[i])
		}
		delta := cur.DeltaSince(prev)
		if len(delta) != Diff(cur, prev) {
			t.Fatalf("delta has %d entries, Diff reports %d", len(delta), Diff(cur, prev))
		}
		got := prev.Clone()
		if err := got.ApplyDelta(delta); err != nil {
			t.Fatalf("ApplyDelta: %v", err)
		}
		if !Eq(got, cur) {
			t.Fatalf("round trip %v -> %v produced %v", prev, cur, got)
		}
		if len(delta) == 0 && !Eq(prev, cur) {
			t.Fatalf("empty delta for unequal vectors %v vs %v", prev, cur)
		}
	})
}
