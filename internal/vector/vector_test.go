package vector

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZero(t *testing.T) {
	v := New(4)
	if len(v) != 4 {
		t.Fatalf("len = %d", len(v))
	}
	for _, x := range v {
		if x != 0 {
			t.Fatal("New must return a zero vector")
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestCompareCases(t *testing.T) {
	cases := []struct {
		name string
		u, w V
		want Ordering
	}{
		{"equal", V{1, 2}, V{1, 2}, Equal},
		{"before strict all", V{0, 1}, V{1, 2}, Before},
		{"before one equal", V{1, 1}, V{1, 2}, Before},
		{"after", V{3, 2}, V{1, 2}, After},
		{"incomparable", V{1, 0}, V{0, 1}, Incomparable},
		{"length mismatch", V{1}, V{1, 2}, Incomparable},
		{"empty equal", V{}, V{}, Equal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Compare(tc.u, tc.w); got != tc.want {
				t.Fatalf("Compare = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPredicateHelpers(t *testing.T) {
	u, w := V{1, 1}, V{1, 2}
	if !Less(u, w) || Less(w, u) || Less(u, u) {
		t.Fatal("Less wrong")
	}
	if !Leq(u, w) || !Leq(u, u) || Leq(w, u) {
		t.Fatal("Leq wrong")
	}
	if !Concurrent(V{1, 0}, V{0, 1}) || Concurrent(u, w) {
		t.Fatal("Concurrent wrong")
	}
	if !Eq(u, u.Clone()) || Eq(u, w) {
		t.Fatal("Eq wrong")
	}
}

func TestMax(t *testing.T) {
	v := V{1, 5, 0}
	v.Max(V{3, 2, 0})
	want := V{3, 5, 0}
	for k := range want {
		if v[k] != want[k] {
			t.Fatalf("Max = %v, want %v", v, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Max with mismatched lengths did not panic")
		}
	}()
	v.Max(V{1})
}

func TestCloneIndependent(t *testing.T) {
	v := V{1, 2}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		v := New(rng.Intn(10))
		for k := range v {
			v[k] = rng.Intn(1 << 20)
		}
		buf := v.Encode(nil)
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(buf))
		}
		if !Eq(got, v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) succeeded")
	}
	// Length prefix says 3 but only one component follows.
	buf := V{7}.Encode(nil)
	buf[0] = 3
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("Decode of truncated input succeeded")
	}
	// Implausible dimension.
	huge := make([]byte, 10)
	huge[0] = 0xff
	huge[1] = 0xff
	huge[2] = 0xff
	huge[3] = 0x7f
	if _, _, err := Decode(huge); err == nil {
		t.Fatal("Decode of implausible dimension succeeded")
	}
}

func TestEncodedSizeGrowsWithValues(t *testing.T) {
	small := V{1, 1, 1}
	big := V{1 << 20, 1 << 20, 1 << 20}
	if small.EncodedSize() >= big.EncodedSize() {
		t.Fatal("EncodedSize should grow with component magnitude")
	}
	if New(0).EncodedSize() != 0 {
		t.Fatal("empty vector should have size 0")
	}
}

func TestString(t *testing.T) {
	if got := (V{1, 0, 2}).String(); got != "(1,0,2)" {
		t.Fatalf("String = %q", got)
	}
	if got := (V{}).String(); got != "()" {
		t.Fatalf("String = %q", got)
	}
	if Before.String() != "before" || Incomparable.String() != "incomparable" ||
		After.String() != "after" || Equal.String() != "equal" {
		t.Fatal("Ordering.String wrong")
	}
}

// Property: Compare is antisymmetric (Before/After swap under argument
// swap) and Max produces an upper bound of both arguments.
func TestQuickCompareMaxLaws(t *testing.T) {
	gen := func(rng *rand.Rand, d int) V {
		v := New(d)
		for k := range v {
			v[k] = rng.Intn(5)
		}
		return v
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(6)
		u, w := gen(rng, d), gen(rng, d)
		cu, cw := Compare(u, w), Compare(w, u)
		okSym := (cu == Before && cw == After) ||
			(cu == After && cw == Before) ||
			(cu == Equal && cw == Equal) ||
			(cu == Incomparable && cw == Incomparable)
		if !okSym {
			return false
		}
		m := u.Clone()
		m.Max(w)
		return Leq(u, m) && Leq(w, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode round-trips and encoded size matches
// EncodedSize plus the length prefix.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := New(rng.Intn(8))
		for k := range v {
			v[k] = rng.Intn(1 << 16)
		}
		buf := v.Encode(nil)
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return Eq(got, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
