package vector

import "fmt"

// Change is one differential-piggyback entry in the Singhal–Kshemkalyani
// style: component Index now holds Value. A frame that carries only the
// components changed since the last exchange with the same peer transmits a
// []Change instead of the full vector (internal/wire encodes it).
type Change struct {
	Index int
	Value int
}

// DeltaSince returns the components of v that differ from prev, in index
// order. Applying the result to a clone of prev (ApplyDelta) reconstructs v
// exactly. The lengths must match; vectors of different generations have no
// meaningful delta.
func (v V) DeltaSince(prev V) []Change {
	if len(v) != len(prev) {
		panic(fmt.Sprintf("vector: length mismatch %d vs %d", len(v), len(prev)))
	}
	var out []Change
	for k := range v {
		if v[k] != prev[k] {
			out = append(out, Change{Index: k, Value: v[k]})
		}
	}
	return out
}

// ApplyDelta overwrites the changed components of v in place. It is the
// inverse of DeltaSince: prev.ApplyDelta(cur.DeltaSince(prev)) makes prev
// equal cur. Out-of-range indices are an error (a corrupt or truncated
// frame), leaving v partially updated.
func (v V) ApplyDelta(delta []Change) error {
	for _, ch := range delta {
		if ch.Index < 0 || ch.Index >= len(v) {
			return fmt.Errorf("vector: delta index %d out of range [0,%d)", ch.Index, len(v))
		}
		v[ch.Index] = ch.Value
	}
	return nil
}
