// Package vector implements the integer vectors and the vector order of
// Equation (2) of the paper:
//
//	u < v  ⟺  (∀k: u[k] ≤ v[k]) ∧ (∃j: u[j] < v[j])
//
// Vectors of different lengths are never comparable; all algorithms in this
// repository produce fixed-length vectors per computation (a property the
// paper highlights against variable-length schemes in Section 6).
package vector

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// V is a logical-clock vector. Components count messages, so int is ample.
type V []int

// New returns a zero vector with d components.
func New(d int) V {
	if d < 0 {
		panic(fmt.Sprintf("vector: negative dimension %d", d))
	}
	return make(V, d)
}

// Clone returns an independent copy of v.
func (v V) Clone() V {
	c := make(V, len(v))
	copy(c, v)
	return c
}

// Ordering is the result of comparing two vectors.
type Ordering int

// Comparison outcomes. Incomparable corresponds to concurrency (‖).
const (
	Equal Ordering = iota
	Before
	After
	Incomparable
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Incomparable:
		return "incomparable"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Compare classifies u against w. Vectors of different lengths are
// Incomparable by definition.
func Compare(u, w V) Ordering {
	if len(u) != len(w) {
		return Incomparable
	}
	less, greater := false, false
	for k := range u {
		switch {
		case u[k] < w[k]:
			less = true
		case u[k] > w[k]:
			greater = true
		}
		if less && greater {
			return Incomparable
		}
	}
	switch {
	case less && !greater:
		return Before
	case greater && !less:
		return After
	default:
		return Equal
	}
}

// Less reports u < w in the vector order of Equation (2).
func Less(u, w V) bool { return Compare(u, w) == Before }

// Leq reports u ≤ w (componentwise ≤, equality allowed).
func Leq(u, w V) bool {
	c := Compare(u, w)
	return c == Before || c == Equal
}

// Concurrent reports that u and w are incomparable (u ‖ w).
func Concurrent(u, w V) bool { return Compare(u, w) == Incomparable }

// Eq reports componentwise equality.
func Eq(u, w V) bool { return Compare(u, w) == Equal }

// Max sets v to the componentwise maximum of v and w (line (5)/(9) of the
// online algorithm). The lengths must match.
func (v V) Max(w V) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vector: length mismatch %d vs %d", len(v), len(w)))
	}
	for k := range v {
		if w[k] > v[k] {
			v[k] = w[k]
		}
	}
}

// MaxTrunc sets v[k] to the maximum of v[k] and w[k] on the components the
// two vectors share (k < min(len(v), len(w))), leaving the rest of v
// untouched. It is the merge for vectors of different generations — e.g. a
// chain clock padding a predecessor's shorter stamp into a wider current
// vector — where Max's equal-length contract does not apply.
func (v V) MaxTrunc(w V) {
	n := len(v)
	if len(w) < n {
		n = len(w)
	}
	for k := 0; k < n; k++ {
		if w[k] > v[k] {
			v[k] = w[k]
		}
	}
}

// Diff returns the number of components in which u and w differ — the entry
// count a Singhal–Kshemkalyani differential piggyback would carry. The
// lengths must match.
func Diff(u, w V) int {
	if len(u) != len(w) {
		panic(fmt.Sprintf("vector: length mismatch %d vs %d", len(u), len(w)))
	}
	n := 0
	for k := range u {
		if u[k] != w[k] {
			n++
		}
	}
	return n
}

// EncodedSize returns the number of bytes needed to piggyback v using
// unsigned varints — the message-overhead metric of experiment E13.
func (v V) EncodedSize() int {
	var buf [binary.MaxVarintLen64]byte
	n := 0
	for _, x := range v {
		n += binary.PutUvarint(buf[:], uint64(x))
	}
	return n
}

// Encode appends a varint encoding of v (length prefix then components).
func (v V) Encode(dst []byte) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(v)))
	dst = append(dst, buf[:n]...)
	for _, x := range v {
		n = binary.PutUvarint(buf[:], uint64(x))
		dst = append(dst, buf[:n]...)
	}
	return dst
}

// Decode parses a vector encoded by Encode, returning the vector and the
// number of bytes consumed.
func Decode(src []byte) (V, int, error) {
	d, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, 0, fmt.Errorf("vector: bad length prefix")
	}
	if d > 1<<20 {
		return nil, 0, fmt.Errorf("vector: implausible dimension %d", d)
	}
	v := make(V, d)
	off := n
	for k := range v {
		x, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("vector: truncated component %d", k)
		}
		v[k] = int(x)
		off += n
	}
	return v, off, nil
}

// String renders the vector as "(1,0,2)".
func (v V) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for k, x := range v {
		if k > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte(')')
	return b.String()
}
