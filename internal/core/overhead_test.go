package core

import "testing"

func TestOverheadAccounting(t *testing.T) {
	var o Overhead
	if o.MeanDense() != 0 || o.MeanWire() != 0 || o.Savings() != 0 {
		t.Fatal("zero Overhead must report zero means and savings")
	}
	o.Add(10, 4)
	o.Add(10, 10)
	if o.Frames != 2 || o.DenseBytes != 20 || o.WireBytes != 14 {
		t.Fatalf("totals = %+v", o)
	}
	if got := o.MeanDense(); got != 10 {
		t.Fatalf("MeanDense = %v", got)
	}
	if got := o.MeanWire(); got != 7 {
		t.Fatalf("MeanWire = %v", got)
	}
	if got := o.Savings(); got < 0.299 || got > 0.301 {
		t.Fatalf("Savings = %v", got)
	}

	var sum Overhead
	sum.Merge(o)
	sum.Merge(o)
	if sum.Frames != 4 || sum.DenseBytes != 40 || sum.WireBytes != 28 {
		t.Fatalf("merged totals = %+v", sum)
	}
}
