package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

func TestStampAllFigure6WithInternals(t *testing.T) {
	// Interleave internal events into the Figure 6 computation and verify
	// prev/succ/counter bookkeeping.
	tr := &trace.Trace{N: 5}
	tr.MustAppend(trace.Internal(1))   // e0: before any message on P2
	tr.MustAppend(trace.Message(0, 1)) // m0 = (1,0,0)
	tr.MustAppend(trace.Internal(1))   // e1: between m0 and m2 on P2
	tr.MustAppend(trace.Internal(1))   // e2: same interval, c=1
	tr.MustAppend(trace.Message(3, 2)) // m1 = (0,0,1)
	tr.MustAppend(trace.Message(1, 2)) // m2 = (1,1,1)
	tr.MustAppend(trace.Internal(2))   // e3: after m2 on P3, no later message -> inf

	st, err := StampAll(tr, decomp.Figure3a())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Messages) != 3 || len(st.Internal) != 4 {
		t.Fatalf("messages=%d internal=%d", len(st.Messages), len(st.Internal))
	}
	e0, e1, e2, e3 := st.Internal[0], st.Internal[1], st.Internal[2], st.Internal[3]

	if !vector.Eq(e0.Prev, vector.V{0, 0, 0}) || !vector.Eq(e0.Succ, vector.V{1, 0, 0}) || e0.C != 0 {
		t.Fatalf("e0 = %v", e0)
	}
	if !vector.Eq(e1.Prev, vector.V{1, 0, 0}) || !vector.Eq(e1.Succ, vector.V{1, 1, 1}) || e1.C != 0 {
		t.Fatalf("e1 = %v", e1)
	}
	if e2.C != 1 || !vector.Eq(e2.Prev, e1.Prev) || !vector.Eq(e2.Succ, e1.Succ) {
		t.Fatalf("e2 = %v", e2)
	}
	if e3.Succ != nil || !vector.Eq(e3.Prev, vector.V{1, 1, 1}) {
		t.Fatalf("e3 = %v", e3)
	}

	// Orders: e0 → e1 (same process, different interval); e1 → e2 (counter);
	// e0 → e3 (cross-process via m2); e3 → nothing (succ = inf).
	if !e0.HappenedBefore(e1) || e1.HappenedBefore(e0) {
		t.Fatal("e0 → e1 wrong")
	}
	if !e1.HappenedBefore(e2) || e2.HappenedBefore(e1) {
		t.Fatal("counter ordering wrong")
	}
	if !e0.HappenedBefore(e3) {
		t.Fatal("e0 → e3 via message chain")
	}
	if e3.HappenedBefore(e0) || e3.HappenedBefore(e1) {
		t.Fatal("inf succ must never happen before anything")
	}
}

func TestEventStampString(t *testing.T) {
	e := EventStamp{Proc: 2, Prev: vector.V{1, 0}, Succ: nil, C: 3}
	s := e.String()
	for _, want := range []string{"inf", "c=3", "@P2", "(1,0)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestCrossProcessSameIntervalConcurrent(t *testing.T) {
	// P0 and P1 sync, both have internal events, sync again: the internal
	// events have identical prev/succ but different processes — concurrent.
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Internal(0))
	tr.MustAppend(trace.Internal(1))
	tr.MustAppend(trace.Message(0, 1))
	st, err := StampAll(tr, decomp.Approximate(graph.Path(2)))
	if err != nil {
		t.Fatal(err)
	}
	a, b := st.Internal[0], st.Internal[1]
	if !vector.Eq(a.Prev, b.Prev) || !vector.Eq(a.Succ, b.Succ) {
		t.Fatalf("expected identical intervals: %v vs %v", a, b)
	}
	if !a.ConcurrentWith(b) {
		t.Fatal("cross-process same-interval events must be concurrent")
	}
}

func TestProcessWithoutMessages(t *testing.T) {
	tr := &trace.Trace{N: 3}
	tr.MustAppend(trace.Internal(2))
	tr.MustAppend(trace.Internal(2))
	tr.MustAppend(trace.Message(0, 1))
	st, err := StampAll(tr, decomp.Approximate(graph.Complete(3)))
	if err != nil {
		t.Fatal(err)
	}
	a, b := st.Internal[0], st.Internal[1]
	if a.Succ != nil || b.Succ != nil {
		t.Fatal("events on a message-less process must have inf succ")
	}
	if !a.HappenedBefore(b) || b.HappenedBefore(a) {
		t.Fatal("counter must order a message-less process's events")
	}
}

func TestStampAllErrors(t *testing.T) {
	tr := &trace.Trace{N: 4}
	if _, err := StampAll(tr, decomp.Figure3a()); err == nil {
		t.Fatal("StampAll accepted mismatched N")
	}
	bad := &trace.Trace{N: 3, Ops: []trace.Op{{Kind: trace.OpKind(9)}}}
	if _, err := StampAll(bad, decomp.Approximate(graph.Complete(3))); err == nil {
		t.Fatal("StampAll accepted an invalid op kind")
	}
	off := &trace.Trace{N: 3}
	off.MustAppend(trace.Message(0, 2))
	if _, err := StampAll(off, decomp.Approximate(graph.Path(3))); err == nil {
		t.Fatal("StampAll accepted an uncovered channel")
	}
}

// Property (E12, Theorem 9): the event stamps order internal events exactly
// as the happened-before oracle does.
func TestQuickTheorem9InternalEvents(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(6), 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{
			Messages:     1 + rng.Intn(30),
			InternalProb: 0.4,
		}, rng)
		st, err := StampAll(tr, decomp.Approximate(g))
		if err != nil {
			return false
		}
		oracle := order.NewEventOracle(tr)
		// Map internal stamps to oracle event indices via op index.
		evByOp := map[int]int{}
		for k := 0; k < oracle.NumEvents(); k++ {
			if e := oracle.Event(k); e.Internal {
				evByOp[e.Op] = k
			}
		}
		for i := range st.Internal {
			for j := range st.Internal {
				if i == j {
					continue
				}
				a, b := st.Internal[i], st.Internal[j]
				want := oracle.HappenedBefore(evByOp[a.Op], evByOp[b.Op])
				if a.HappenedBefore(b) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: StampAll's message stamps equal StampTrace's.
func TestQuickStampAllConsistentWithStampTrace(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(6), 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 1 + rng.Intn(30), InternalProb: 0.3}, rng)
		dec := decomp.Approximate(g)
		st, err := StampAll(tr, dec)
		if err != nil {
			return false
		}
		direct, err := StampTrace(tr, dec)
		if err != nil {
			return false
		}
		if len(st.Messages) != len(direct) {
			return false
		}
		for i := range direct {
			if !vector.Eq(st.Messages[i], direct[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
