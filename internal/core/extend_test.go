package core

import (
	"testing"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// TestStamperExtendDynamicClients plays the paper's scalability story end to
// end: clients join a running client-server system one by one, the vector
// size stays at #servers, and timestamps issued before and after every join
// remain mutually comparable and exact.
func TestStamperExtendDynamicClients(t *testing.T) {
	const servers = 2
	dec, err := decomp.FromVertexCover(graph.ClientServer(servers, 1, false), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStamper(dec)

	full := &trace.Trace{N: servers + 1}
	var stamps []vector.V
	stamp := func(from, to int) {
		t.Helper()
		v, err := s.StampMessage(from, to)
		if err != nil {
			t.Fatal(err)
		}
		stamps = append(stamps, v)
		full.Ops = append(full.Ops, trace.Message(from, to))
	}

	// Initial client 2 talks to both servers.
	stamp(2, 0)
	stamp(2, 1)

	// Three more clients join, one at a time, mid-computation.
	for join := 0; join < 3; join++ {
		grown, v, err := dec.GrowStarVertex([]int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		dec = grown
		if err := s.Extend(dec); err != nil {
			t.Fatal(err)
		}
		full.N = dec.N()
		stamp(v, 0)
		stamp(0, 2) // old client keeps talking too
		stamp(v, 1)
	}

	if s.D() != servers {
		t.Fatalf("d grew to %d", s.D())
	}
	// All stamps — spanning every join — must encode ↦ exactly.
	p := order.MessagePoset(full)
	for i := range stamps {
		if len(stamps[i]) != servers {
			t.Fatalf("stamp %d has %d components", i, len(stamps[i]))
		}
		for j := range stamps {
			if i != j && vector.Less(stamps[i], stamps[j]) != p.Less(i, j) {
				t.Fatalf("Theorem 4 violated across joins at (%d,%d)", i, j)
			}
		}
	}
}

func TestStamperExtendRejectsDifferentD(t *testing.T) {
	s := NewStamper(decomp.Approximate(graph.Star(4, 0)))
	other := decomp.Approximate(graph.Complete(5))
	if err := s.Extend(other); err == nil {
		t.Fatal("Extend accepted a different d")
	}
}

func TestStamperExtendRejectsShrink(t *testing.T) {
	big, err := decomp.FromVertexCover(graph.ClientServer(1, 3, false), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	small, err := decomp.FromVertexCover(graph.ClientServer(1, 1, false), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStamper(big)
	if err := s.Extend(small); err == nil {
		t.Fatal("Extend accepted a shrink")
	}
}

func TestStamperExtendRejectsRegrouping(t *testing.T) {
	// Same d and N, but a channel moved to a different group: previously
	// issued stamps would become wrong.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	a, err := decomp.New(3, []decomp.Group{
		{Kind: decomp.KindStar, Root: 1, Edges: []graph.Edge{{U: 0, V: 1}}},
		{Kind: decomp.KindStar, Root: 1, Edges: []graph.Edge{{U: 1, V: 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := decomp.New(3, []decomp.Group{
		{Kind: decomp.KindStar, Root: 1, Edges: []graph.Edge{{U: 1, V: 2}}},
		{Kind: decomp.KindStar, Root: 1, Edges: []graph.Edge{{U: 0, V: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStamper(a)
	if err := s.Extend(b); err == nil {
		t.Fatal("Extend accepted a regrouping")
	}
}
