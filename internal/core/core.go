// Package core implements the paper's primary contribution: the online
// algorithm of Figure 5 for timestamping messages in synchronous
// computations, and its Section 5 extension to internal events.
//
// Unlike Fidge–Mattern vector clocks, which dedicate one vector component
// per process, the online algorithm dedicates one component per edge group
// of an edge decomposition of the communication topology (internal/decomp).
// Each process Pi maintains a vector v_i of size d (the decomposition
// size), initially zero. For a message from Pi to Pj on a channel in edge
// group E_g:
//
//	(1) Pi piggybacks v_i on the message;
//	(2) Pj piggybacks v_j on the acknowledgement;
//	(3) both sides set their vector to the componentwise maximum and then
//	    increment component g;
//	(4) the resulting (identical) vector is the message's timestamp.
//
// Theorem 4: m1 ↦ m2 ⟺ v(m1) < v(m2) in the vector order of Equation (2).
package core

import (
	"fmt"

	"syncstamp/internal/decomp"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// Clock is the per-process state of the online algorithm: the local vector
// v_i and the shared edge decomposition. It is the component a process
// embeds into its messaging runtime (internal/csp drives Clocks from real
// goroutines). Clock is not safe for concurrent use; each process owns one.
type Clock struct {
	proc int
	dec  *decomp.Decomposition
	v    vector.V
}

// NewClock returns the initial clock of process proc (all components zero).
func NewClock(proc int, dec *decomp.Decomposition) *Clock {
	if proc < 0 || proc >= dec.N() {
		panic(fmt.Sprintf("core: process %d out of range [0,%d)", proc, dec.N()))
	}
	return &Clock{proc: proc, dec: dec, v: vector.New(dec.D())}
}

// Proc returns the owning process index.
func (c *Clock) Proc() int { return c.proc }

// Current returns a snapshot of the local vector — the value piggybacked on
// an outgoing message (line (2) of Figure 5) or on an acknowledgement
// (line (4)).
func (c *Clock) Current() vector.V { return c.v.Clone() }

// Rebase switches the clock to a grown decomposition (same d; every channel
// of the current decomposition keeps its group — see decomp.Extends). The
// local vector is untouched, so all earlier timestamps stay valid. Rebase
// must only be called by the clock's owning goroutine.
func (c *Clock) Rebase(dec *decomp.Decomposition) error {
	if err := decomp.Extends(c.dec, dec); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	c.dec = dec
	return nil
}

// Merge implements lines (5)–(6) / (9)–(10) of Figure 5: componentwise
// maximum with the peer's piggybacked vector, then increment the component
// of the edge group containing the channel to peer. It returns the message
// timestamp (a copy). Merge fails if the channel (proc, peer) is not
// covered by the decomposition.
func (c *Clock) Merge(remote vector.V, peer int) (vector.V, error) {
	g, ok := c.dec.GroupOf(c.proc, peer)
	if !ok {
		return nil, fmt.Errorf("core: channel (%d,%d) not covered by the edge decomposition", c.proc, peer)
	}
	c.v.Max(remote)
	c.v[g]++
	return c.v.Clone(), nil
}

// Adopt sets the clock to the agreed stamp of a rendezvous with peer that
// the other side computed (the ACK of the internal/node wire protocol
// carries the merged stamp rather than the pre-merge vector). Adopting is
// equivalent to the symmetric merge of Figure 5: the stamp is
// max(v_self, v_peer) with the channel's component incremented, so it
// dominates the local vector componentwise — Adopt rejects a stamp that
// does not, since that indicates a protocol error or a corrupt frame.
func (c *Clock) Adopt(stamp vector.V, peer int) error {
	if _, ok := c.dec.GroupOf(c.proc, peer); !ok {
		return fmt.Errorf("core: channel (%d,%d) not covered by the edge decomposition", c.proc, peer)
	}
	if len(stamp) != len(c.v) {
		return fmt.Errorf("core: stamp has %d components, clock has %d", len(stamp), len(c.v))
	}
	if !vector.Leq(c.v, stamp) {
		return fmt.Errorf("core: stamp %v does not dominate local vector %v", stamp, c.v)
	}
	c.v = stamp.Clone()
	return nil
}

// Stamper runs the online algorithm sequentially over a recorded
// computation, exploiting the equivalence of synchronous computations with
// instantaneous-message sequences: processing the global message sequence in
// order performs exactly the exchanges the distributed algorithm performs.
type Stamper struct {
	dec    *decomp.Decomposition
	clocks []vector.V
}

// NewStamper returns a Stamper for n processes under the given
// decomposition (n must equal dec.N()).
func NewStamper(dec *decomp.Decomposition) *Stamper {
	clocks := make([]vector.V, dec.N())
	for i := range clocks {
		clocks[i] = vector.New(dec.D())
	}
	return &Stamper{dec: dec, clocks: clocks}
}

// D returns the vector size in use (the decomposition size).
func (s *Stamper) D() int { return s.dec.D() }

// StampMessage performs the rendezvous of one message from one process to
// another and returns its timestamp.
func (s *Stamper) StampMessage(from, to int) (vector.V, error) {
	if from < 0 || from >= len(s.clocks) || to < 0 || to >= len(s.clocks) || from == to {
		return nil, fmt.Errorf("core: invalid message %d->%d for %d processes", from, to, len(s.clocks))
	}
	g, ok := s.dec.GroupOf(from, to)
	if !ok {
		return nil, fmt.Errorf("core: channel (%d,%d) not covered by the edge decomposition", from, to)
	}
	// Exchange: both sides converge to max(v_from, v_to), then both
	// increment component g, yielding equal vectors on both sides.
	s.clocks[from].Max(s.clocks[to])
	s.clocks[from][g]++
	copy(s.clocks[to], s.clocks[from])
	return s.clocks[from].Clone(), nil
}

// ClockOf returns a snapshot of the current vector of process p.
func (s *Stamper) ClockOf(p int) vector.V { return s.clocks[p].Clone() }

// Extend switches the stamper to a grown decomposition (same d, same or
// larger N — see decomp.Extends): new processes start with zero clocks and
// every previously issued timestamp remains valid. This is the paper's
// Section 3.3 scalability property in executable form.
func (s *Stamper) Extend(dec *decomp.Decomposition) error {
	if err := decomp.Extends(s.dec, dec); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	for p := len(s.clocks); p < dec.N(); p++ {
		s.clocks = append(s.clocks, vector.New(dec.D()))
	}
	s.dec = dec
	return nil
}

// StampTrace timestamps every message of tr with the online algorithm under
// dec and returns the timestamps indexed by message index.
func StampTrace(tr *trace.Trace, dec *decomp.Decomposition) ([]vector.V, error) {
	if tr.N != dec.N() {
		return nil, fmt.Errorf("core: trace has %d processes, decomposition %d", tr.N, dec.N())
	}
	s := NewStamper(dec)
	out := make([]vector.V, 0, tr.NumMessages())
	for i, op := range tr.Ops {
		if op.Kind != trace.OpMessage {
			continue
		}
		v, err := s.StampMessage(op.From, op.To)
		if err != nil {
			return nil, fmt.Errorf("core: op %d: %w", i, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Precedes reports m1 ↦ m2 from the two message timestamps (Theorem 4).
func Precedes(v1, v2 vector.V) bool { return vector.Less(v1, v2) }

// Concurrent reports m1 ‖ m2 from the two message timestamps.
func Concurrent(v1, v2 vector.V) bool { return vector.Concurrent(v1, v2) }
