package core

import (
	"testing"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/vector"
)

// TestAdoptEquivalentToMerge checks the wire protocol's sender path: the
// receiver merges and the sender adopts the resulting stamp, ending in
// exactly the state the symmetric Figure 5 merge would produce.
func TestAdoptEquivalentToMerge(t *testing.T) {
	g := graph.Path(3)
	dec := decomp.Best(g)

	// Reference: both sides merge symmetrically (csp semantics).
	ref0, ref1 := NewClock(0, dec), NewClock(1, dec)
	refStamp, err := ref1.Merge(ref0.Current(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref0.Merge(vector.New(dec.D()), 1); err != nil {
		t.Fatal(err)
	}

	// Wire path: receiver merges, sender adopts the ACK'd stamp.
	s, r := NewClock(0, dec), NewClock(1, dec)
	stamp, err := r.Merge(s.Current(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Adopt(stamp, 1); err != nil {
		t.Fatal(err)
	}
	if !vector.Eq(stamp, refStamp) {
		t.Fatalf("wire stamp %v, reference stamp %v", stamp, refStamp)
	}
	if !vector.Eq(s.Current(), ref0.Current()) {
		t.Fatalf("sender clock %v after Adopt, reference %v", s.Current(), ref0.Current())
	}
}

func TestAdoptRejections(t *testing.T) {
	g := graph.Path(3)
	dec := decomp.Best(g)
	c := NewClock(1, dec)
	if _, err := c.Merge(vector.New(dec.D()), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Adopt(vector.New(dec.D()), 0); err == nil {
		t.Fatal("accepted a stamp that does not dominate the clock")
	}
	if err := c.Adopt(vector.New(dec.D()+1), 0); err == nil {
		t.Fatal("accepted a stamp of the wrong length")
	}
	big := vector.New(dec.D())
	for k := range big {
		big[k] = 99
	}
	// Path(3) has edges (0,1) and (1,2) only; (0,2) is not covered, and
	// process 0 adopting over that channel must fail.
	if err := NewClock(0, dec).Adopt(big, 2); err == nil {
		t.Fatal("accepted a stamp over an uncovered channel")
	}
}
