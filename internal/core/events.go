package core

import (
	"fmt"

	"syncstamp/internal/decomp"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// EventStamp is the Section 5 timestamp of an internal event e: the triple
// (prev(e), succ(e), c(e)).
//
//   - Prev is the timestamp of the message immediately prior to e on its
//     process; a zero vector if there is none.
//   - Succ is the timestamp of the message immediately after e; nil encodes
//     the all-∞ vector of the paper (no later message).
//   - C is the per-interval counter: reset at each external event,
//     incremented per internal event, disambiguating multiple internal
//     events between the same two messages.
//
// Proc and Op tie the stamp back to its event; Proc also scopes the counter
// comparison (see HappenedBefore).
type EventStamp struct {
	Proc int
	// Op is the index of the event's operation in the source trace.
	Op   int
	Prev vector.V
	Succ vector.V
	C    int
}

// succLeqPrev reports succ(e) ≤ prev(f) under the ∞ convention: an ∞ Succ
// is never ≤ anything, and a zero Prev only dominates a zero Succ (which
// cannot occur for real message stamps).
func succLeqPrev(e, f EventStamp) bool {
	if e.Succ == nil {
		return false
	}
	return vector.Leq(e.Succ, f.Prev)
}

// sameInterval reports that e and f lie between the same two external
// events: equal Prev and equal Succ (including both-∞).
func sameInterval(e, f EventStamp) bool {
	if (e.Succ == nil) != (f.Succ == nil) {
		return false
	}
	if !vector.Eq(e.Prev, f.Prev) {
		return false
	}
	return e.Succ == nil || vector.Eq(e.Succ, f.Succ)
}

// HappenedBefore reports e → f (Lamport's happened-before, Theorem 9).
// For events on different processes this is succ(e) ≤ prev(f); for events
// on the same process the counter breaks ties within one interval. The
// counter is deliberately not consulted across processes: two internal
// events on different processes between the same two synchronizations are
// concurrent regardless of their counters.
func (e EventStamp) HappenedBefore(f EventStamp) bool {
	if e.Proc == f.Proc {
		if sameInterval(e, f) {
			return e.C < f.C
		}
		return succLeqPrev(e, f)
	}
	return succLeqPrev(e, f)
}

// ConcurrentWith reports that neither e → f nor f → e.
func (e EventStamp) ConcurrentWith(f EventStamp) bool {
	return !e.HappenedBefore(f) && !f.HappenedBefore(e)
}

// String renders the stamp as "(prev=(1,0), succ=(2,0), c=1)@P3"; an ∞
// Succ prints as "inf".
func (e EventStamp) String() string {
	succ := "inf"
	if e.Succ != nil {
		succ = e.Succ.String()
	}
	return fmt.Sprintf("(prev=%s, succ=%s, c=%d)@P%d", e.Prev, succ, e.C, e.Proc)
}

// StampedTrace holds the result of stamping a full computation: message
// timestamps (Figure 5) and internal-event stamps (Section 5).
type StampedTrace struct {
	// Messages holds the timestamp of each message, by message index.
	Messages []vector.V
	// Internal holds one stamp per internal op, in trace order.
	Internal []EventStamp
	// D is the vector size used.
	D int
}

// StampAll runs the online algorithm over tr and assigns both message and
// internal-event timestamps. Internal-event stamps become available only
// once the following message is known (as the paper notes, an internal
// event is timestamped after the process knows the timestamp of the message
// after it); this offline-completion pass fills the Succ of trailing events
// with ∞.
func StampAll(tr *trace.Trace, dec *decomp.Decomposition) (*StampedTrace, error) {
	if tr.N != dec.N() {
		return nil, fmt.Errorf("core: trace has %d processes, decomposition %d", tr.N, dec.N())
	}
	s := NewStamper(dec)
	st := &StampedTrace{D: dec.D()}

	prev := make([]vector.V, tr.N) // last message stamp per process; nil = none
	counter := make([]int, tr.N)
	// pending[p] indexes into st.Internal of events awaiting their Succ.
	pending := make([][]int, tr.N)

	zero := vector.New(dec.D())
	for i, op := range tr.Ops {
		switch op.Kind {
		case trace.OpInternal:
			p := op.Proc
			pv := zero
			if prev[p] != nil {
				pv = prev[p]
			}
			st.Internal = append(st.Internal, EventStamp{
				Proc: p,
				Op:   i,
				Prev: pv.Clone(),
				C:    counter[p],
			})
			pending[p] = append(pending[p], len(st.Internal)-1)
			counter[p]++
		case trace.OpMessage:
			v, err := s.StampMessage(op.From, op.To)
			if err != nil {
				return nil, fmt.Errorf("core: op %d: %w", i, err)
			}
			st.Messages = append(st.Messages, v)
			for _, p := range []int{op.From, op.To} {
				for _, k := range pending[p] {
					st.Internal[k].Succ = v.Clone()
				}
				pending[p] = pending[p][:0]
				prev[p] = v
				counter[p] = 0
			}
		default:
			return nil, fmt.Errorf("core: op %d: invalid kind %d", i, int(op.Kind))
		}
	}
	// Events with no later message keep Succ == nil (the ∞ vector).
	return st, nil
}
