package core

import (
	"strings"
	"testing"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/vector"
)

// Star rooted at 0 over a path 0-1, grown by one extra vertex on the same
// root: the canonical legal Rebase.
func rebaseFixture(t *testing.T) (*decomp.Decomposition, *decomp.Decomposition) {
	t.Helper()
	dec := decomp.TrivialStars(graph.Path(2))
	grown, newID, err := dec.GrowStarVertex([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if newID != 2 {
		t.Fatalf("new vertex id %d, want 2", newID)
	}
	return dec, grown
}

func TestClockRebaseSuccess(t *testing.T) {
	dec, grown := rebaseFixture(t)
	c := NewClock(0, dec)
	if _, err := c.Merge(vector.New(dec.D()), 1); err != nil {
		t.Fatal(err)
	}
	before := c.Current()
	if err := c.Rebase(grown); err != nil {
		t.Fatalf("legal growth rejected: %v", err)
	}
	if !vector.Eq(c.Current(), before) {
		t.Fatalf("Rebase disturbed the local vector: %v → %v", before, c.Current())
	}
	// The channel to the new process is only covered by the grown
	// decomposition; a Merge on it must now succeed.
	if _, err := c.Merge(vector.New(grown.D()), 2); err != nil {
		t.Fatalf("Merge on grown channel failed after Rebase: %v", err)
	}
}

func TestClockRebaseRejectsDifferentD(t *testing.T) {
	dec, _ := rebaseFixture(t)
	c := NewClock(0, dec)
	bigger := decomp.TrivialStars(graph.Path(3)) // d = 2
	err := c.Rebase(bigger)
	if err == nil {
		t.Fatal("Rebase accepted a decomposition with a different d")
	}
	if !strings.Contains(err.Error(), "incomparable") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// The failed Rebase must leave the clock on its old decomposition:
	// the old channel still works, the new one still doesn't.
	if _, err := c.Merge(vector.New(dec.D()), 1); err != nil {
		t.Fatalf("old channel broken after failed Rebase: %v", err)
	}
	if _, err := c.Merge(vector.New(dec.D()), 2); err == nil {
		t.Fatal("uncovered channel accepted after failed Rebase")
	}
}

func TestClockRebaseRejectsRegrouping(t *testing.T) {
	dec := decomp.MustNew(3, []decomp.Group{
		{Kind: decomp.KindStar, Root: 0, Edges: []graph.Edge{graph.NewEdge(0, 1)}},
		{Kind: decomp.KindStar, Root: 2, Edges: []graph.Edge{graph.NewEdge(1, 2)}},
	})
	regrouped := decomp.MustNew(3, []decomp.Group{
		{Kind: decomp.KindStar, Root: 2, Edges: []graph.Edge{graph.NewEdge(1, 2)}},
		{Kind: decomp.KindStar, Root: 0, Edges: []graph.Edge{graph.NewEdge(0, 1)}},
	})
	c := NewClock(1, dec)
	if err := c.Rebase(regrouped); err == nil {
		t.Fatal("Rebase accepted a growth that moves channels between groups")
	}
}

func TestClockRebaseRejectsShrink(t *testing.T) {
	dec := decomp.MustNew(4, []decomp.Group{
		{Kind: decomp.KindStar, Root: 0, Edges: []graph.Edge{graph.NewEdge(0, 1)}},
		{Kind: decomp.KindStar, Root: 2, Edges: []graph.Edge{graph.NewEdge(2, 3)}},
	})
	shrunk := decomp.MustNew(3, []decomp.Group{
		{Kind: decomp.KindStar, Root: 0, Edges: []graph.Edge{graph.NewEdge(0, 1)}},
		{Kind: decomp.KindStar, Root: 2, Edges: []graph.Edge{graph.NewEdge(1, 2)}},
	})
	c := NewClock(0, dec)
	if err := c.Rebase(shrunk); err == nil {
		t.Fatal("Rebase accepted a shrinking growth")
	}
}
