package core_test

import (
	"strings"
	"testing"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/trace"
	"syncstamp/internal/vclock"
	"syncstamp/internal/vector"
)

// FuzzStampTrace feeds arbitrary text through the trace decoder and, for
// every input that parses into a valid computation, stamps it with the
// online algorithm over the trivial star decomposition of its own topology
// and differentially checks the stamps against the ground-truth poset and
// the Fidge–Mattern baseline. Nothing a parser accepts may crash the
// stamper or break Theorem 4.
func FuzzStampTrace(f *testing.F) {
	f.Add("n 3\nm 0 1\nm 1 2\nm 0 1\n")
	f.Add("n 2\nm 0 1\ni 0\nm 1 0\n")
	f.Add("n 5\nm 0 4\nm 1 4\nm 2 4\nm 3 4\ni 4\n")
	f.Add("n 4\n# ring\nm 0 1\nm 1 2\nm 2 3\nm 3 0\nm 0 2\n")
	f.Add("n 1\ni 0\ni 0\n")
	f.Add("n 6\nm 0 1\nm 2 3\nm 4 5\nm 1 2\nm 3 4\nm 5 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := trace.ReadText(strings.NewReader(input))
		if err != nil {
			t.Skip()
		}
		if tr.N < 1 || tr.N > 128 || len(tr.Ops) > 1024 {
			t.Skip()
		}
		topo := tr.Topology()
		if err := tr.Validate(topo); err != nil {
			t.Skip()
		}
		dec := decomp.TrivialStars(topo)
		if err := dec.Validate(topo); err != nil {
			t.Fatalf("trivial stars invalid on own topology: %v", err)
		}
		stamps, err := core.StampTrace(tr, dec)
		if err != nil {
			t.Fatalf("StampTrace rejected a valid trace: %v", err)
		}
		if len(stamps) != tr.NumMessages() {
			t.Fatalf("stamped %d of %d messages", len(stamps), tr.NumMessages())
		}
		// Differential oracles get expensive on giant inputs; the poset
		// check is quadratic and FM is linear, both fine at these bounds.
		if tr.NumMessages() > 200 {
			t.Skip()
		}
		if err := check.ExactMatch(tr, func(m1, m2 int) bool {
			return vector.Less(stamps[m1], stamps[m2])
		}); err != nil {
			t.Fatalf("online stamps diverge from poset: %v", err)
		}
		fm := vclock.FM{}.StampTrace(tr)
		for i := range stamps {
			for j := range stamps {
				if i != j && vector.Less(stamps[i], stamps[j]) != vector.Less(fm[i], fm[j]) {
					t.Fatalf("online and Fidge–Mattern disagree on (%d,%d)", i, j)
				}
			}
		}
	})
}
