package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/order"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

func TestE4Figure6ExactTimestamps(t *testing.T) {
	// E4: the worked example of Figure 6 under the Figure 3(a)
	// decomposition must produce exactly the narrated vectors.
	tr := trace.Figure6()
	dec := decomp.Figure3a()
	got, err := StampTrace(tr, dec)
	if err != nil {
		t.Fatal(err)
	}
	want := []vector.V{
		{1, 0, 0}, // P1 -> P2 on E1
		{0, 0, 1}, // P4 -> P3 on E3
		{1, 1, 1}, // P2 -> P3 on E2 (the paper's narrated example)
		{2, 0, 1}, // P1 -> P4 on E1
		{1, 1, 2}, // P5 -> P3 on E3
		{1, 2, 2}, // P2 -> P5 on E2
	}
	if len(got) != len(want) {
		t.Fatalf("got %d stamps, want %d", len(got), len(want))
	}
	for i := range want {
		if !vector.Eq(got[i], want[i]) {
			t.Errorf("message %d: stamp %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStamperMatchesClockProtocol(t *testing.T) {
	// The sequential Stamper must agree with the message+ack Clock protocol:
	// sender piggybacks Current, receiver Merges, acks with the pre-merge
	// snapshot... the distributed exchange is symmetric, so simulate it
	// exactly as Figure 5 writes it and compare.
	topo := graph.Complete(4)
	dec := decomp.Approximate(topo)
	rng := rand.New(rand.NewSource(9))
	tr := trace.Generate(topo, trace.GenOptions{Messages: 60}, rng)

	s := NewStamper(dec)
	clocks := make([]*Clock, 4)
	for i := range clocks {
		clocks[i] = NewClock(i, dec)
	}
	for _, op := range tr.Ops {
		want, err := s.StampMessage(op.From, op.To)
		if err != nil {
			t.Fatal(err)
		}
		// Figure 5: sender sends v_i; receiver acks with its pre-merge v_j,
		// then merges; sender merges the ack.
		sender, receiver := clocks[op.From], clocks[op.To]
		piggyback := sender.Current()
		ack := receiver.Current()
		recvStamp, err := receiver.Merge(piggyback, op.From)
		if err != nil {
			t.Fatal(err)
		}
		sendStamp, err := sender.Merge(ack, op.To)
		if err != nil {
			t.Fatal(err)
		}
		if !vector.Eq(recvStamp, sendStamp) {
			t.Fatalf("sender and receiver disagree: %v vs %v", sendStamp, recvStamp)
		}
		if !vector.Eq(want, sendStamp) {
			t.Fatalf("clock protocol %v != sequential stamper %v", sendStamp, want)
		}
	}
}

func TestClockErrors(t *testing.T) {
	dec := decomp.Figure3a()
	c := NewClock(0, dec)
	if c.Proc() != 0 {
		t.Fatal("Proc wrong")
	}
	// K5 is fully covered, so use a sparse decomposition for the error.
	sparse := decomp.Approximate(graph.Path(3))
	c2 := NewClock(0, sparse)
	if _, err := c2.Merge(vector.New(sparse.D()), 2); err == nil {
		t.Fatal("Merge accepted an uncovered channel")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock out of range did not panic")
		}
	}()
	NewClock(9, dec)
}

func TestStamperErrors(t *testing.T) {
	dec := decomp.Approximate(graph.Path(3))
	s := NewStamper(dec)
	cases := [][2]int{{0, 0}, {-1, 1}, {0, 3}, {0, 2}} // last: uncovered channel
	for _, c := range cases {
		if _, err := s.StampMessage(c[0], c[1]); err != nil {
			continue
		}
		t.Fatalf("StampMessage(%d,%d) succeeded", c[0], c[1])
	}
}

func TestStampTraceMismatchedN(t *testing.T) {
	tr := &trace.Trace{N: 4}
	if _, err := StampTrace(tr, decomp.Figure3a()); err == nil {
		t.Fatal("StampTrace accepted mismatched process counts")
	}
}

func TestStampTraceOffTopology(t *testing.T) {
	tr := &trace.Trace{N: 3}
	tr.MustAppend(trace.Message(0, 2))
	dec := decomp.Approximate(graph.Path(3)) // covers (0,1) and (1,2) only
	if _, err := StampTrace(tr, dec); err == nil {
		t.Fatal("StampTrace accepted an uncovered message")
	}
}

func TestClockOf(t *testing.T) {
	dec := decomp.Figure3a()
	s := NewStamper(dec)
	if _, err := s.StampMessage(0, 1); err != nil {
		t.Fatal(err)
	}
	v := s.ClockOf(0)
	if !vector.Eq(v, vector.V{1, 0, 0}) {
		t.Fatalf("ClockOf(0) = %v", v)
	}
	v[0] = 99
	if s.ClockOf(0)[0] == 99 {
		t.Fatal("ClockOf must return a snapshot")
	}
}

// decompositions returns a variety of valid decompositions for a topology,
// exercising Theorem 4's independence from the particular decomposition.
func decompositions(g *graph.Graph) []*decomp.Decomposition {
	return []*decomp.Decomposition{
		decomp.Approximate(g),
		decomp.StarOnly(g),
		decomp.TrivialStars(g),
		decomp.TrivialWithTriangle(g),
	}
}

// TestTheorem4KnownTopologies drives the Theorem 4 equivalence on fixed
// topology families with a long random computation each.
func TestTheorem4KnownTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	topologies := []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(6, 0)},
		{"triangle", graph.Triangle()},
		{"path", graph.Path(5)},
		{"cycle", graph.Cycle(6)},
		{"complete", graph.Complete(5)},
		{"clientserver", graph.ClientServer(2, 6, false)},
		{"tree", graph.Figure4Tree()},
		{"figure2b", graph.Figure2b()},
	}
	for _, tc := range topologies {
		t.Run(tc.name, func(t *testing.T) {
			tr := trace.Generate(tc.g, trace.GenOptions{Messages: 120, Hotspot: 0.4}, rng)
			p := order.MessagePoset(tr)
			for _, dec := range decompositions(tc.g) {
				stamps, err := StampTrace(tr, dec)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < len(stamps); i++ {
					for j := 0; j < len(stamps); j++ {
						if i == j {
							continue
						}
						if got, want := Precedes(stamps[i], stamps[j]), p.Less(i, j); got != want {
							t.Fatalf("d=%d messages %d,%d: precedes=%v want %v (%v vs %v)",
								dec.D(), i, j, got, want, stamps[i], stamps[j])
						}
					}
				}
			}
		})
	}
}

// Property (E7): for random connected topologies, random computations and
// the Figure 7 decomposition, vector order equals ↦ exactly (Theorem 4).
func TestQuickTheorem4(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(8), 0.4, rng)
		dec := decomp.Approximate(g)
		tr := trace.Generate(g, trace.GenOptions{
			Messages: 1 + rng.Intn(60),
			Hotspot:  rng.Float64(),
		}, rng)
		stamps, err := StampTrace(tr, dec)
		if err != nil {
			return false
		}
		p := order.MessagePoset(tr)
		for i := range stamps {
			for j := range stamps {
				if i == j {
					continue
				}
				if Precedes(stamps[i], stamps[j]) != p.Less(i, j) {
					return false
				}
				if Concurrent(stamps[i], stamps[j]) != p.Concurrent(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: message timestamps never shrink along a process and the g-th
// component is strictly incremented at each message (Equation (3)).
func TestQuickStampMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(6), 0.5, rng)
		dec := decomp.Approximate(g)
		s := NewStamper(dec)
		tr := trace.Generate(g, trace.GenOptions{Messages: 40}, rng)
		prev := make(map[int]vector.V)
		for _, op := range tr.Ops {
			stamp, err := s.StampMessage(op.From, op.To)
			if err != nil {
				return false
			}
			for _, p := range []int{op.From, op.To} {
				if old, ok := prev[p]; ok && !vector.Less(old, stamp) {
					return false
				}
				prev[p] = stamp
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStampMessageClientServer(b *testing.B) {
	g := graph.ClientServer(4, 100, false)
	dec := decomp.Approximate(g)
	s := NewStamper(dec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.StampMessage(0, 4+(i%100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStampMessageComplete64(b *testing.B) {
	g := graph.Complete(64)
	dec := decomp.Approximate(g)
	s := NewStamper(dec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.StampMessage(i%64, (i+1)%64); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: the order induced by the stamps is independent of which valid
// decomposition is used — different d, same relation (Theorem 4 is per
// decomposition, so any two must agree with the oracle and hence each
// other).
func TestQuickDecompositionIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(7), 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 1 + rng.Intn(40)}, rng)
		a, err := StampTrace(tr, decomp.Approximate(g))
		if err != nil {
			return false
		}
		b, err := StampTrace(tr, decomp.TrivialStars(g))
		if err != nil {
			return false
		}
		for i := range a {
			for j := range a {
				if i != j && Precedes(a[i], a[j]) != Precedes(b[i], b[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
