package core_test

import (
	"fmt"
	"testing"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/order"
)

// TestPropTheorem4Online: the paper's central claim, differentially against
// the ground-truth poset on random topologies, decompositions, and traces —
// m1 ↦ m2 ⟺ v(m1) < v(m2) for the Figure 5 online algorithm.
func TestPropTheorem4Online(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		return check.Compare(in, "online")
	})
}

// TestPropTheorem9EventStamps: Section 5 internal-event stamps answer
// happened-before exactly like the event-level oracle (which derives →,
// acknowledgement edges included, from the trace combinatorially).
func TestPropTheorem9EventStamps(t *testing.T) {
	check.Run(t, check.Config{MaxProcs: 6, MaxMessages: 25}, func(in *check.Input) error {
		st, err := core.StampAll(in.Trace, in.Dec)
		if err != nil {
			return err
		}
		o := order.NewEventOracle(in.Trace)
		var internals []int // oracle event index of each internal op, in trace order
		for k := 0; k < o.NumEvents(); k++ {
			if o.Event(k).Internal {
				internals = append(internals, k)
			}
		}
		if len(internals) != len(st.Internal) {
			return fmt.Errorf("StampAll stamped %d internal events, oracle sees %d", len(st.Internal), len(internals))
		}
		for a := range st.Internal {
			for b := range st.Internal {
				if a == b {
					continue
				}
				got := st.Internal[a].HappenedBefore(st.Internal[b])
				want := o.HappenedBefore(internals[a], internals[b])
				if got != want {
					return fmt.Errorf("internal events %d (op %d) vs %d (op %d): stamp says %v, oracle says %v",
						a, st.Internal[a].Op, b, st.Internal[b].Op, got, want)
				}
			}
		}
		return nil
	})
}
