package core_test

import (
	"fmt"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/trace"
)

// Stamping the paper's Figure 6 computation reproduces the narrated
// timestamp (1,1,1) for the message from P2 to P3.
func ExampleStampTrace() {
	stamps, err := core.StampTrace(trace.Figure6(), decomp.Figure3a())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("m3 =", stamps[2])
	fmt.Println("m1 ↦ m3:", core.Precedes(stamps[0], stamps[2]))
	fmt.Println("m1 ‖ m2:", core.Concurrent(stamps[0], stamps[1]))
	// Output:
	// m3 = (1,1,1)
	// m1 ↦ m3: true
	// m1 ‖ m2: true
}

// Internal events carry (prev, succ, c) stamps; happened-before follows
// from two vector comparisons (Theorem 9).
func ExampleStampAll() {
	tr := &trace.Trace{N: 5}
	tr.MustAppend(trace.Internal(0))   // e1 on P1
	tr.MustAppend(trace.Message(0, 1)) // P1 -> P2
	tr.MustAppend(trace.Internal(1))   // e2 on P2
	st, err := core.StampAll(tr, decomp.Figure3a())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	e1, e2 := st.Internal[0], st.Internal[1]
	fmt.Println("e1:", e1)
	fmt.Println("e2:", e2)
	fmt.Println("e1 → e2:", e1.HappenedBefore(e2))
	// Output:
	// e1: (prev=(0,0,0), succ=(1,0,0), c=0)@P0
	// e2: (prev=(1,0,0), succ=inf, c=0)@P1
	// e1 → e2: true
}
