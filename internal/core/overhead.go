package core

// Overhead accounts for the piggyback bytes a run actually pays. The paper's
// overhead claim (Section 3.2) is stated in vector components; the wire
// subsystem (internal/wire, internal/node) makes it concrete by charging
// every SYN and ACK frame its exact encoded size. DenseBytes is what a full
// d-component varint vector would have cost on the same frames; WireBytes is
// what the chosen encoding (differential when smaller, dense otherwise)
// cost. The two coincide only when the delta codec never wins.
type Overhead struct {
	// Frames counts vector-carrying frames (one SYN plus one ACK per
	// message rendezvous).
	Frames int
	// DenseBytes is the total piggyback cost with dense encoding.
	DenseBytes int
	// WireBytes is the total piggyback cost actually paid.
	WireBytes int
}

// Add charges one vector-carrying frame.
func (o *Overhead) Add(dense, wire int) {
	o.Frames++
	o.DenseBytes += dense
	o.WireBytes += wire
}

// Merge accumulates another accounting into o.
func (o *Overhead) Merge(other Overhead) {
	o.Frames += other.Frames
	o.DenseBytes += other.DenseBytes
	o.WireBytes += other.WireBytes
}

// MeanDense returns the mean dense piggyback bytes per frame.
func (o Overhead) MeanDense() float64 {
	if o.Frames == 0 {
		return 0
	}
	return float64(o.DenseBytes) / float64(o.Frames)
}

// MeanWire returns the mean actual piggyback bytes per frame.
func (o Overhead) MeanWire() float64 {
	if o.Frames == 0 {
		return 0
	}
	return float64(o.WireBytes) / float64(o.Frames)
}

// Savings returns the fraction of dense bytes the delta codec saved, in
// [0, 1]; zero when nothing was sent.
func (o Overhead) Savings() float64 {
	if o.DenseBytes == 0 {
		return 0
	}
	return 1 - float64(o.WireBytes)/float64(o.DenseBytes)
}
