package offline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

func TestStampEmptyTrace(t *testing.T) {
	r, err := Stamp(&trace.Trace{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Width != 0 || len(r.Stamps) != 0 {
		t.Fatalf("empty computation: width=%d stamps=%d", r.Width, len(r.Stamps))
	}
}

func TestStampRejectsCorruptTrace(t *testing.T) {
	bad := &trace.Trace{N: 2, Ops: []trace.Op{{Kind: trace.OpMessage, From: 0, To: 0}}}
	if _, err := Stamp(bad); err == nil {
		t.Fatal("Stamp accepted a corrupt trace")
	}
}

func TestFigure6TwoDimensional(t *testing.T) {
	// Section 4: "if we use offline algorithm to timestamp messages in the
	// computation shown in Figure 6, 2-dimensional vectors are sufficient".
	r, err := Stamp(trace.Figure6())
	if err != nil {
		t.Fatal(err)
	}
	if r.Width != 2 {
		t.Fatalf("Figure 6 width = %d, want 2", r.Width)
	}
	for _, s := range r.Stamps {
		if len(s) != 2 {
			t.Fatalf("stamp %v is not 2-dimensional", s)
		}
	}
	assertCharacterizes(t, r)
}

func TestFigure1Width(t *testing.T) {
	r, err := Stamp(trace.Figure1())
	if err != nil {
		t.Fatal(err)
	}
	if r.Width > 2 { // ⌊4/2⌋
		t.Fatalf("Figure 1 width = %d > ⌊N/2⌋", r.Width)
	}
	assertCharacterizes(t, r)
}

func TestTotalOrderWidthOne(t *testing.T) {
	// A star topology yields totally ordered messages (Lemma 1): width 1.
	rng := rand.New(rand.NewSource(2))
	tr := trace.Generate(graph.Star(7, 0), trace.GenOptions{Messages: 30}, rng)
	r, err := Stamp(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Width != 1 {
		t.Fatalf("star computation width = %d, want 1", r.Width)
	}
	if len(r.Realizer) != 1 {
		t.Fatalf("realizer size = %d, want 1", len(r.Realizer))
	}
}

func assertCharacterizes(t *testing.T, r *Result) {
	t.Helper()
	for i := range r.Stamps {
		for j := range r.Stamps {
			if i == j {
				continue
			}
			if got, want := Precedes(r.Stamps[i], r.Stamps[j]), r.Poset.Less(i, j); got != want {
				t.Fatalf("messages %d,%d: precedes=%v want %v (%v vs %v)",
					i, j, got, want, r.Stamps[i], r.Stamps[j])
			}
			if got, want := Concurrent(r.Stamps[i], r.Stamps[j]), r.Poset.Concurrent(i, j); got != want {
				t.Fatalf("messages %d,%d: concurrent=%v want %v", i, j, got, want)
			}
		}
	}
}

// Property (E11): offline stamps characterize ↦, widths respect Theorem 8,
// and the realizer verifies.
func TestQuickOfflineCharacterizes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(9), 0.4, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 1 + rng.Intn(40), InternalProb: 0.2}, rng)
		r, err := Stamp(tr)
		if err != nil {
			return false
		}
		if r.Width > tr.N/2 {
			return false
		}
		if len(r.Realizer) != r.Width {
			return false
		}
		if err := r.Poset.VerifyRealizer(r.Realizer); err != nil {
			return false
		}
		for i := range r.Stamps {
			for j := range r.Stamps {
				if i != j && Precedes(r.Stamps[i], r.Stamps[j]) != r.Poset.Less(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property (D4): the offline vector size (width) can beat the online size d
// on sequentialized computations, and both characterize the same order.
func TestQuickOfflineVsOnlineAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(7), 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 1 + rng.Intn(30)}, rng)
		off, err := Stamp(tr)
		if err != nil {
			return false
		}
		dec := decomp.Approximate(g)
		on, err := core.StampTrace(tr, dec)
		if err != nil {
			return false
		}
		for i := range off.Stamps {
			for j := range off.Stamps {
				if i == j {
					continue
				}
				if Precedes(off.Stamps[i], off.Stamps[j]) != vector.Less(on[i], on[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOfflineStamp500(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Complete(12)
	tr := trace.Generate(g, trace.GenOptions{Messages: 500}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Stamp(tr); err != nil {
			b.Fatal(err)
		}
	}
}
