// Package offline implements the paper's Section 4 offline timestamping
// algorithm (Figure 9). Given a completed synchronous computation it builds
// the message poset (M, ↦), computes its width w — at most ⌊N/2⌋ by
// Theorem 8, because any ⌊N/2⌋+1 messages must share a process — constructs
// a chain realizer {L_1, ..., L_w}, and stamps each message m with the
// vector of its positions: V_m[i] = |{m' : m' <_{L_i} m}|.
//
// The resulting vectors characterize ↦ exactly: since positions within one
// linear extension are distinct, V_m1 < V_m2 in the vector order of
// Equation (2) iff m1 precedes m2 in every extension, i.e. iff m1 ↦ m2.
// Unlike the online algorithm the vector size depends on the computation
// (its width), not the topology; experiments E11/E8 quantify the gap.
package offline

import (
	"fmt"

	"syncstamp/internal/order"
	"syncstamp/internal/poset"
	"syncstamp/internal/trace"
	"syncstamp/internal/vector"
)

// Result is the output of the offline algorithm.
type Result struct {
	// Width is the poset width w = the vector size.
	Width int
	// Stamps holds the position vector of each message, by message index.
	Stamps []vector.V
	// Realizer holds the w linear extensions used (message indices).
	Realizer [][]int
	// Poset is the message poset the stamps encode.
	Poset *poset.Poset
}

// Stamp runs the offline algorithm on a completed computation.
func Stamp(tr *trace.Trace) (*Result, error) {
	if err := tr.Validate(nil); err != nil {
		return nil, fmt.Errorf("offline: %w", err)
	}
	p := order.MessagePoset(tr)
	w := p.Width()
	if bound := tr.N / 2; p.N() > 0 && w > bound {
		// Theorem 8 guarantees this cannot happen for a valid synchronous
		// computation; reaching it means the trace is corrupt.
		return nil, fmt.Errorf("offline: width %d exceeds ⌊N/2⌋ = %d", w, bound)
	}
	realizer := p.Realizer()
	stamps := make([]vector.V, p.N())
	for m := range stamps {
		stamps[m] = vector.New(len(realizer))
	}
	for i, ext := range realizer {
		for pos, m := range ext {
			stamps[m][i] = pos
		}
	}
	return &Result{Width: w, Stamps: stamps, Realizer: realizer, Poset: p}, nil
}

// Precedes reports m1 ↦ m2 from two offline stamps.
func Precedes(v1, v2 vector.V) bool { return vector.Less(v1, v2) }

// Concurrent reports m1 ‖ m2 from two offline stamps.
func Concurrent(v1, v2 vector.V) bool { return vector.Concurrent(v1, v2) }
