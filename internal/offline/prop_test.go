package offline_test

import (
	"fmt"
	"testing"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/offline"
	"syncstamp/internal/vector"
)

// TestPropOfflineExact: Figure 9 stamps characterize ↦ exactly, the vector
// size equals the poset width and respects Theorem 8's ⌊N/2⌋ bound, and the
// realizer the stamps are read off is a genuine realizer of the poset.
func TestPropOfflineExact(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		res, err := offline.Stamp(in.Trace)
		if err != nil {
			return err
		}
		if res.Width > in.Trace.N/2 && res.Poset.N() > 0 {
			return fmt.Errorf("width %d exceeds Theorem 8's ⌊N/2⌋ = %d", res.Width, in.Trace.N/2)
		}
		if len(res.Realizer) != res.Width {
			return fmt.Errorf("realizer has %d extensions, width is %d", len(res.Realizer), res.Width)
		}
		for m, s := range res.Stamps {
			if len(s) != res.Width {
				return fmt.Errorf("stamp %d has %d components, want width %d", m, len(s), res.Width)
			}
		}
		if err := res.Poset.VerifyRealizer(res.Realizer); err != nil {
			return err
		}
		return check.Compare(in, "offline")
	})
}

// TestPropOfflineAgreesWithOnline is the direct cross-clock differential:
// the topology-sized online vectors and the width-sized offline vectors
// must answer every precedence query identically, with no poset in between.
func TestPropOfflineAgreesWithOnline(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		on, err := core.StampTrace(in.Trace, in.Dec)
		if err != nil {
			return err
		}
		off, err := offline.Stamp(in.Trace)
		if err != nil {
			return err
		}
		if len(on) != len(off.Stamps) {
			return fmt.Errorf("online stamped %d messages, offline %d", len(on), len(off.Stamps))
		}
		for i := range on {
			for j := range on {
				if i == j {
					continue
				}
				if o1, o2 := vector.Less(on[i], on[j]), vector.Less(off.Stamps[i], off.Stamps[j]); o1 != o2 {
					return fmt.Errorf("m%d vs m%d: online precedes=%v, offline precedes=%v", i, j, o1, o2)
				}
			}
		}
		return nil
	})
}
