package offline_test

import (
	"fmt"

	"syncstamp/internal/offline"
	"syncstamp/internal/trace"
)

// The offline algorithm needs only 2-dimensional vectors for the paper's
// Figure 6 computation, as Section 4 notes.
func ExampleStamp() {
	res, err := offline.Stamp(trace.Figure6())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("width:", res.Width)
	fmt.Println("m1 ↦ m3:", offline.Precedes(res.Stamps[0], res.Stamps[2]))
	fmt.Println("m1 ‖ m2:", offline.Concurrent(res.Stamps[0], res.Stamps[1]))
	// Output:
	// width: 2
	// m1 ↦ m3: true
	// m1 ‖ m2: true
}
