package sync

import (
	stdsync "sync"
)

// State is a peer's position in the health FSM. The order is meaningful:
// states only worsen under consecutive timeouts and only heal to Healthy
// (from anything short of Excluded) on liveness evidence.
type State int

const (
	// Healthy: the peer is answering within the estimator's expectations.
	Healthy State = iota
	// Degraded: DegradeAfter consecutive retransmission intervals expired
	// unanswered. The rendezvous keeps retrying; the state is a visible
	// early warning, not a behavior change.
	Degraded
	// Suspect: SuspectAfter consecutive intervals expired. The degradation
	// policy (node.OnPeerLoss) now has jurisdiction: a peer that stays
	// suspect for the reconnect window is excluded or fails the run,
	// connection liveness notwithstanding.
	Suspect
	// Excluded is terminal: the peer was removed from the run.
	Excluded
)

// String names the state (RunInfo and /metrics vocabulary).
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Suspect:
		return "suspect"
	case Excluded:
		return "excluded"
	default:
		return "unknown"
	}
}

// Monitor is the per-peer health FSM, driven by consecutive timeouts and
// healed by evidence. Safe for concurrent use: timeouts arrive from parked
// senders, evidence from the connection's read loop.
type Monitor struct {
	mu           stdsync.Mutex
	state        State
	consecutive  int // timeouts since the last evidence
	degradeAfter int
	suspectAfter int
	suspicions   int64 // transitions into Suspect
	recoveries   int64 // Suspect/Degraded healed by evidence
}

// NewMonitor returns a Healthy monitor with the given consecutive-timeout
// thresholds (degradeAfter < suspectAfter; NewCoordinator normalizes).
func NewMonitor(degradeAfter, suspectAfter int) *Monitor {
	return &Monitor{degradeAfter: degradeAfter, suspectAfter: suspectAfter}
}

// Timeout records one retransmission interval that expired unanswered and
// returns the state plus whether this timeout changed it.
func (m *Monitor) Timeout() (State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == Excluded {
		return m.state, false
	}
	m.consecutive++
	next := m.state
	switch {
	case m.consecutive >= m.suspectAfter:
		next = Suspect
	case m.consecutive >= m.degradeAfter:
		next = Degraded
	}
	changed := next != m.state
	if changed {
		m.state = next
		if next == Suspect {
			m.suspicions++
		}
	}
	return m.state, changed
}

// Evidence records proof the peer is alive — a frame received from it, its
// safe counter advancing, a late ACK — and heals Degraded/Suspect back to
// Healthy. Excluded is terminal; evidence cannot resurrect an excluded
// peer (its components are already frozen in every surviving clock).
func (m *Monitor) Evidence() (State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == Excluded {
		return m.state, false
	}
	m.consecutive = 0
	changed := m.state != Healthy
	if changed {
		m.state = Healthy
		m.recoveries++
	}
	return m.state, changed
}

// Exclude pins the FSM at Excluded.
func (m *Monitor) Exclude() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state = Excluded
}

// State returns the current state.
func (m *Monitor) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// HealthStats is a point-in-time view of a monitor.
type HealthStats struct {
	State       State
	Consecutive int
	Suspicions  int64
	Recoveries  int64
}

// Stats snapshots the monitor.
func (m *Monitor) Stats() HealthStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return HealthStats{State: m.state, Consecutive: m.consecutive, Suspicions: m.suspicions, Recoveries: m.recoveries}
}
