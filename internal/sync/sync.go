// Package sync is the α-style synchronizer for the asynchronous-substrate
// mode of the node runtime: the machinery that lets the Figure 5 rendezvous
// run over links that are lossy, jittery, and never synchronous, while the
// collected trace stays byte-identical to the synchronous oracle's.
//
// The synchronizer (after Awerbuch's α synchronizer; Ghaffari–Trygub is the
// modern treatment) rests on "safe" acknowledgments: a process is safe in a
// round once every message it sent in that round has been acknowledged. The
// runtime's rendezvous protocol already acknowledges every message
// individually (the ACK of the SYN/ACK exchange), so the synchronizer layers
// a cumulative per-peer safe counter on top: each node piggybacks, on every
// SYN and ACK toward a peer, the count of rendezvous it has fully committed
// with that peer. An advancing counter is the peer's proof of progress —
// the liveness evidence the health monitor feeds on — and a frozen one is
// how an unresponsive peer is told apart from a quiet link.
//
// Three mechanisms live here, combined per peer by a Coordinator:
//
//   - Estimator: a Jacobson-style RTT estimator (EWMA smoothed RTT plus
//     mean deviation) that adapts the retransmission timeout to the link
//     instead of the fixed min/max backoff of plain recovery mode. Karn's
//     rule keeps ambiguous (retransmitted) exchanges out of the estimate,
//     and Eifel-style spurious-retransmit detection feeds the estimate back
//     down when a retransmission is proven unnecessary.
//
//   - Backoff: capped exponential backoff with deterministic seeded jitter,
//     so retransmit (and dial) storms desynchronize without wall-clock
//     randomness — two runs with the same seed jitter identically.
//
//   - Monitor: the per-peer health FSM healthy → degraded → suspect →
//     excluded, driven by consecutive timeouts and healed by any liveness
//     evidence. Degradation policies (node.OnPeerLoss) act on suspicion,
//     not on hard connection loss: a peer can be excluded while its TCP
//     connection is still nominally alive.
//
// Everything here is wall-clock-free except the durations callers feed in:
// the package computes with time.Duration values but never reads a clock,
// which keeps it trivially testable and keeps the determinism contract of
// the trace pipeline out of its hands.
package sync

import (
	"fmt"
	"time"
)

// Defaults applied when Config leaves fields zero.
const (
	DefaultRTTInit = 50 * time.Millisecond
	DefaultRTOMin  = 2 * time.Millisecond
	DefaultRTOMax  = 2 * time.Second
	// DefaultDegradeAfter and DefaultSuspectAfter are the consecutive-timeout
	// thresholds of the health FSM: two unanswered retransmission intervals
	// mark a peer degraded, five mark it suspect.
	DefaultDegradeAfter = 2
	DefaultSuspectAfter = 5
)

// Config tunes the synchronizer. The zero value is usable: every field has
// a documented default.
type Config struct {
	// RTTInit seeds each peer's smoothed RTT before the first sample. Zero
	// means DefaultRTTInit.
	RTTInit time.Duration
	// RTOMin and RTOMax clamp the retransmission timeout the estimator
	// produces. Zero means the defaults.
	RTOMin time.Duration
	RTOMax time.Duration
	// Seed drives the deterministic backoff jitter. Each peer derives its
	// own stream from (Seed, peer), so jitter is independent per link and
	// replayable per run.
	Seed int64
	// DegradeAfter and SuspectAfter are the consecutive-timeout thresholds
	// of the health FSM. Zero means the defaults.
	DegradeAfter int
	SuspectAfter int
}

// withDefaults returns cfg with zero fields filled in.
func (c Config) withDefaults() Config {
	if c.RTTInit <= 0 {
		c.RTTInit = DefaultRTTInit
	}
	if c.RTOMin <= 0 {
		c.RTOMin = DefaultRTOMin
	}
	if c.RTOMax < c.RTOMin {
		c.RTOMax = DefaultRTOMax
	}
	if c.RTOMax < c.RTOMin {
		c.RTOMax = c.RTOMin
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = DefaultDegradeAfter
	}
	if c.SuspectAfter <= c.DegradeAfter {
		c.SuspectAfter = c.DegradeAfter + DefaultSuspectAfter - DefaultDegradeAfter
	}
	return c
}

// Validate rejects configurations the defaults cannot repair.
func (c Config) Validate() error {
	if c.RTTInit < 0 || c.RTOMin < 0 || c.RTOMax < 0 {
		return fmt.Errorf("sync: negative duration in config %+v", c)
	}
	if c.DegradeAfter < 0 || c.SuspectAfter < 0 {
		return fmt.Errorf("sync: negative health threshold in config %+v", c)
	}
	return nil
}

// Coordinator is one node's synchronizer state: a Peer per other node,
// created eagerly so access is lock-free.
type Coordinator struct {
	cfg   Config
	peers []*Peer
}

// NewCoordinator builds the synchronizer for a node among `nodes` nodes.
// The self entry exists but is never used (a node has no link to itself).
func NewCoordinator(cfg Config, nodes, self int) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{cfg: cfg, peers: make([]*Peer, nodes)}
	for j := range c.peers {
		if j == self {
			continue
		}
		c.peers[j] = &Peer{
			est: NewEstimator(cfg.RTTInit, cfg.RTOMin, cfg.RTOMax),
			bo:  NewBackoff(cfg.RTOMin, cfg.RTOMax, cfg.Seed*31+int64(j)),
			mon: NewMonitor(cfg.DegradeAfter, cfg.SuspectAfter),
		}
	}
	return c
}

// Config returns the normalized configuration.
func (c *Coordinator) Config() Config { return c.cfg }

// Peer returns the synchronizer state for peer node j (nil for self or out
// of range, which no caller should ever ask for).
func (c *Coordinator) Peer(j int) *Peer {
	if j < 0 || j >= len(c.peers) {
		return nil
	}
	return c.peers[j]
}

// Peer combines the three per-link mechanisms. All methods are safe for
// concurrent use: several local processes may be mid-rendezvous with the
// same peer node at once.
type Peer struct {
	est *Estimator
	bo  *Backoff
	mon *Monitor
}

// RetryIn returns the jittered retransmission delay for the given attempt
// (0 = the initial wait for the first transmission's ACK): the estimator's
// current RTO, doubled per attempt, capped, and jittered into [d/2, d).
func (p *Peer) RetryIn(attempt int) time.Duration {
	return p.bo.Jitter(scale(p.est.RTO(), attempt, p.bo.max))
}

// OnAck records the outcome of an acknowledged exchange. sinceFirst is the
// elapsed time since the first transmission, sinceLast since the most
// recent (re)transmission, retransmits how many retransmissions the
// exchange needed. It reports whether an RTT sample was accepted and
// whether the exchange was classified a spurious retransmit.
//
// Karn's rule: a retransmitted exchange is ambiguous — the ACK may answer
// any copy — so it normally contributes no sample. The Eifel-style escape:
// an ACK arriving within half the smoothed RTT of the last retransmission
// cannot plausibly answer that copy, so it answers an earlier one; the
// retransmission was spurious, the full first-transmission time is a valid
// sample, and feeding it in pulls an over-inflated estimate back down.
func (p *Peer) OnAck(sinceFirst, sinceLast time.Duration, retransmits int) (sampled, spurious bool) {
	if retransmits == 0 {
		p.est.Observe(sinceFirst)
		return true, false
	}
	if sinceLast < p.est.SRTT()/2 {
		p.est.Observe(sinceFirst)
		p.est.noteSpurious()
		return true, true
	}
	return false, false
}

// OnTimeout records one expired retransmission interval with no ACK and
// advances the health FSM. It returns the (possibly new) state and whether
// this timeout changed it.
func (p *Peer) OnTimeout() (State, bool) { return p.mon.Timeout() }

// OnEvidence records liveness evidence — any frame received from the peer,
// or its safe counter advancing — and heals the FSM (suspect or degraded →
// healthy). It returns the state and whether the evidence changed it.
func (p *Peer) OnEvidence() (State, bool) { return p.mon.Evidence() }

// Exclude pins the FSM at Excluded (terminal).
func (p *Peer) Exclude() { p.mon.Exclude() }

// State returns the current health state.
func (p *Peer) State() State { return p.mon.State() }

// Estimator exposes the peer's RTT estimator (stats surfaces read it).
func (p *Peer) Estimator() *Estimator { return p.est }

// Monitor exposes the peer's health monitor.
func (p *Peer) Monitor() *Monitor { return p.mon }

// scale doubles d attempt times, saturating at cap.
func scale(d time.Duration, attempt int, cap time.Duration) time.Duration {
	for i := 0; i < attempt; i++ {
		if d >= cap/2 {
			return cap
		}
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}
