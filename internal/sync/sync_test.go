package sync

import (
	"testing"
	"time"
)

func TestEstimatorFirstSampleReplacesGuess(t *testing.T) {
	e := NewEstimator(50*time.Millisecond, time.Millisecond, time.Second)
	if got := e.SRTT(); got != 50*time.Millisecond {
		t.Fatalf("initial SRTT = %v, want the 50ms guess", got)
	}
	e.Observe(8 * time.Millisecond)
	s := e.Stats()
	if s.SRTT != 8*time.Millisecond || s.RTTVar != 4*time.Millisecond {
		t.Fatalf("after first sample: srtt=%v rttvar=%v, want 8ms/4ms", s.SRTT, s.RTTVar)
	}
	if s.Samples != 1 {
		t.Fatalf("samples = %d, want 1", s.Samples)
	}
}

func TestEstimatorJacobsonUpdate(t *testing.T) {
	e := NewEstimator(0, time.Millisecond, time.Second)
	e.Observe(80 * time.Millisecond) // primes: srtt=80ms, rttvar=40ms
	e.Observe(40 * time.Millisecond)
	s := e.Stats()
	// rttvar += (|40-80| - 40)/4 = 0 → 40ms; srtt += (40-80)/8 = -5ms → 75ms.
	if s.SRTT != 75*time.Millisecond {
		t.Errorf("srtt = %v, want 75ms", s.SRTT)
	}
	if s.RTTVar != 40*time.Millisecond {
		t.Errorf("rttvar = %v, want 40ms", s.RTTVar)
	}
	if want := 75*time.Millisecond + 4*40*time.Millisecond; s.RTO != want {
		t.Errorf("RTO = %v, want %v", s.RTO, want)
	}
}

func TestEstimatorRTOClamped(t *testing.T) {
	e := NewEstimator(0, 10*time.Millisecond, 100*time.Millisecond)
	e.Observe(time.Microsecond)
	if got := e.RTO(); got != 10*time.Millisecond {
		t.Errorf("tiny samples: RTO = %v, want the 10ms floor", got)
	}
	for i := 0; i < 20; i++ {
		e.Observe(5 * time.Second)
	}
	if got := e.RTO(); got != 100*time.Millisecond {
		t.Errorf("huge samples: RTO = %v, want the 100ms cap", got)
	}
}

func TestEstimatorConvergesDownAfterSpike(t *testing.T) {
	e := NewEstimator(0, time.Millisecond, 10*time.Second)
	e.Observe(time.Second)
	for i := 0; i < 200; i++ {
		e.Observe(2 * time.Millisecond)
	}
	if got := e.SRTT(); got > 5*time.Millisecond {
		t.Errorf("after 200 fast samples SRTT = %v, estimator failed to converge down", got)
	}
}

func TestEstimatorNegativeSampleIgnored(t *testing.T) {
	e := NewEstimator(50*time.Millisecond, time.Millisecond, time.Second)
	e.Observe(-time.Second)
	if s := e.Stats(); s.Samples != 0 || s.SRTT != 50*time.Millisecond {
		t.Errorf("negative sample was not ignored: %+v", s)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	mkSeq := func(seed int64) []time.Duration {
		b := NewBackoff(2*time.Millisecond, 100*time.Millisecond, seed)
		var out []time.Duration
		for a := 0; a < 8; a++ {
			out = append(out, b.Delay(a))
		}
		return out
	}
	s1, s2 := mkSeq(7), mkSeq(7)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("attempt %d: same seed yields %v then %v", i, s1[i], s2[i])
		}
	}
	diff := false
	for i, d := range mkSeq(8) {
		if d != s1[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 7 and 8 produced identical jitter streams")
	}
}

func TestBackoffDelayRangeAndCap(t *testing.T) {
	b := NewBackoff(4*time.Millisecond, 32*time.Millisecond, 1)
	for a := 0; a < 12; a++ {
		nominal := scale(4*time.Millisecond, a, 32*time.Millisecond)
		d := b.Delay(a)
		if d < nominal/2 || d >= nominal {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", a, d, nominal/2, nominal)
		}
	}
	if got := scale(4*time.Millisecond, 30, 32*time.Millisecond); got != 32*time.Millisecond {
		t.Errorf("scale saturates at %v, want the 32ms cap", got)
	}
}

// TestMonitorEveryTransition walks the FSM through all its edges:
// healthy → degraded → suspect on consecutive timeouts, suspect → healthy
// on late evidence (the late-ACK recovery), degraded → healthy likewise,
// and excluded as a terminal state that neither timeouts nor evidence move.
func TestMonitorEveryTransition(t *testing.T) {
	m := NewMonitor(2, 4)
	if m.State() != Healthy {
		t.Fatalf("initial state %v, want healthy", m.State())
	}
	if st, changed := m.Timeout(); st != Healthy || changed {
		t.Fatalf("timeout 1: (%v, %v), want (healthy, false)", st, changed)
	}
	if st, changed := m.Timeout(); st != Degraded || !changed {
		t.Fatalf("timeout 2: (%v, %v), want (degraded, true)", st, changed)
	}
	if st, changed := m.Timeout(); st != Degraded || changed {
		t.Fatalf("timeout 3: (%v, %v), want (degraded, false)", st, changed)
	}
	if st, changed := m.Timeout(); st != Suspect || !changed {
		t.Fatalf("timeout 4: (%v, %v), want (suspect, true)", st, changed)
	}
	// Late ACK: suspect heals to healthy and the counter resets — the next
	// timeout starts a fresh streak.
	if st, changed := m.Evidence(); st != Healthy || !changed {
		t.Fatalf("evidence on suspect: (%v, %v), want (healthy, true)", st, changed)
	}
	if st, changed := m.Timeout(); st != Healthy || changed {
		t.Fatalf("timeout after recovery: (%v, %v), want (healthy, false) — streak must reset", st, changed)
	}
	// Degraded → healthy.
	m.Timeout()
	if m.State() != Degraded {
		t.Fatalf("state %v, want degraded", m.State())
	}
	if st, changed := m.Evidence(); st != Healthy || !changed {
		t.Fatalf("evidence on degraded: (%v, %v), want (healthy, true)", st, changed)
	}
	// Evidence on healthy is a no-op transition.
	if st, changed := m.Evidence(); st != Healthy || changed {
		t.Fatalf("evidence on healthy: (%v, %v), want (healthy, false)", st, changed)
	}
	// Excluded is terminal.
	m.Exclude()
	if st, changed := m.Timeout(); st != Excluded || changed {
		t.Fatalf("timeout on excluded: (%v, %v), want (excluded, false)", st, changed)
	}
	if st, changed := m.Evidence(); st != Excluded || changed {
		t.Fatalf("evidence on excluded: (%v, %v), want (excluded, false)", st, changed)
	}
	s := m.Stats()
	if s.Suspicions != 1 || s.Recoveries != 2 {
		t.Errorf("suspicions=%d recoveries=%d, want 1 and 2", s.Suspicions, s.Recoveries)
	}
}

func TestPeerOnAckKarnAndSpurious(t *testing.T) {
	c := NewCoordinator(Config{RTTInit: 40 * time.Millisecond, RTOMin: time.Millisecond, RTOMax: time.Second}, 2, 0)
	p := c.Peer(1)
	if c.Peer(0) != nil {
		t.Fatal("self peer must be nil")
	}
	// Clean exchange: sampled, not spurious.
	if sampled, spurious := p.OnAck(10*time.Millisecond, 10*time.Millisecond, 0); !sampled || spurious {
		t.Fatalf("clean exchange: sampled=%v spurious=%v", sampled, spurious)
	}
	if got := p.Estimator().SRTT(); got != 10*time.Millisecond {
		t.Fatalf("SRTT = %v, want 10ms", got)
	}
	// Retransmitted, ACK well after the retransmission: Karn — no sample.
	if sampled, spurious := p.OnAck(30*time.Millisecond, 9*time.Millisecond, 1); sampled || spurious {
		t.Fatalf("ambiguous exchange: sampled=%v spurious=%v, want neither", sampled, spurious)
	}
	if got := p.Estimator().Stats().Samples; got != 1 {
		t.Fatalf("samples = %d, Karn's rule must have discarded the ambiguous one", got)
	}
	// Retransmitted, but the ACK landed < SRTT/2 after the retransmission:
	// it answers an earlier copy — spurious, and the full time is sampled.
	if sampled, spurious := p.OnAck(12*time.Millisecond, time.Millisecond, 1); !sampled || !spurious {
		t.Fatalf("spurious exchange: sampled=%v spurious=%v, want both", sampled, spurious)
	}
	s := p.Estimator().Stats()
	if s.Samples != 2 || s.Spurious != 1 {
		t.Fatalf("samples=%d spurious=%d, want 2 and 1", s.Samples, s.Spurious)
	}
}

func TestPeerRetryInGrowsAndCaps(t *testing.T) {
	c := NewCoordinator(Config{RTTInit: 10 * time.Millisecond, RTOMin: time.Millisecond, RTOMax: 80 * time.Millisecond, Seed: 3}, 3, 1)
	p := c.Peer(2)
	rto := p.Estimator().RTO() // 10ms + 4·5ms = 30ms
	if rto != 30*time.Millisecond {
		t.Fatalf("initial RTO = %v, want 30ms", rto)
	}
	d0 := p.RetryIn(0)
	if d0 < rto/2 || d0 >= rto {
		t.Errorf("attempt 0 delay %v outside [%v, %v)", d0, rto/2, rto)
	}
	d3 := p.RetryIn(3)
	if d3 < 40*time.Millisecond || d3 >= 80*time.Millisecond {
		t.Errorf("attempt 3 delay %v outside the capped [40ms, 80ms)", d3)
	}
}

func TestConfigDefaultsAndValidate(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.RTTInit != DefaultRTTInit || cfg.RTOMin != DefaultRTOMin || cfg.RTOMax != DefaultRTOMax {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.DegradeAfter != DefaultDegradeAfter || cfg.SuspectAfter != DefaultSuspectAfter {
		t.Errorf("health defaults not applied: %+v", cfg)
	}
	if cfg.SuspectAfter <= cfg.DegradeAfter {
		t.Errorf("suspectAfter %d must exceed degradeAfter %d", cfg.SuspectAfter, cfg.DegradeAfter)
	}
	if err := (Config{RTTInit: -time.Second}).Validate(); err == nil {
		t.Error("negative RTTInit validated")
	}
	if err := (Config{DegradeAfter: -1}).Validate(); err == nil {
		t.Error("negative threshold validated")
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestStateStrings(t *testing.T) {
	for st, s := range []string{"healthy", "degraded", "suspect", "excluded"} {
		if State(st).String() != s {
			t.Errorf("State(%d) = %q, want %q", st, State(st), s)
		}
	}
	if State(99).String() != "unknown" {
		t.Errorf("State(99) = %q, want unknown", State(99))
	}
}
