package sync

import (
	"math/rand"
	stdsync "sync"
	"time"
)

// Backoff produces capped exponential delays with deterministic seeded
// jitter. Jitter matters twice over: it desynchronizes retransmit and dial
// storms (every sender backing off by exactly the same schedule re-collides
// on every attempt), and because it is drawn from a seeded generator rather
// than the wall clock, a chaos run's delay schedule is a pure function of
// (seed, call sequence) — replayable, like everything else in the fault
// pipeline.
type Backoff struct {
	min, max time.Duration

	mu  stdsync.Mutex
	rng *rand.Rand
}

// NewBackoff returns a backoff with delays clamped to [min, max] and a
// jitter stream derived from seed.
func NewBackoff(min, max time.Duration, seed int64) *Backoff {
	if min <= 0 {
		min = time.Millisecond
	}
	if max < min {
		max = min
	}
	return &Backoff{min: min, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the jittered delay for the given attempt (0-based): min
// doubled per attempt, capped at max, then jittered into [d/2, d).
func (b *Backoff) Delay(attempt int) time.Duration {
	return b.Jitter(scale(b.min, attempt, b.max))
}

// Jitter maps a nominal delay into [d/2, d) using the seeded stream. The
// lower half is kept so a jittered delay never collapses to zero (a zero
// retransmission interval is a tight loop).
func (b *Backoff) Jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	half := int64(d) / 2
	return time.Duration(half + b.rng.Int63n(half))
}
