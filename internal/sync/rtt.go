package sync

import (
	stdsync "sync"
	"time"
)

// Jacobson/Karn smoothing parameters, as shift counts: srtt gains 1/8 of
// each error, rttvar 1/4 of each deviation, and the RTO is srtt + 4·rttvar.
const (
	srttShift   = 3 // alpha = 1/8
	rttvarShift = 2 // beta = 1/4
	rttvarMult  = 4
)

// Estimator is a per-peer Jacobson RTT estimator: an exponentially weighted
// moving average of the round-trip time plus a smoothed mean deviation,
// combined into an adaptive retransmission timeout clamped to [min, max].
// Safe for concurrent use — every local process mid-rendezvous with the
// peer shares one estimator, so they all benefit from each other's samples.
type Estimator struct {
	mu       stdsync.Mutex
	srtt     time.Duration
	rttvar   time.Duration
	primed   bool // first real sample replaces the configured initial guess
	min, max time.Duration
	samples  int64
	spurious int64
}

// NewEstimator returns an estimator seeded with an initial RTT guess and
// RTO clamp bounds. Until the first sample arrives the guess acts as the
// smoothed RTT with a variance of half itself (the TCP convention for a
// connection with no samples yet).
func NewEstimator(init, min, max time.Duration) *Estimator {
	return &Estimator{srtt: init, rttvar: init / 2, min: min, max: max}
}

// Observe feeds one RTT sample. The first sample replaces the initial
// guess outright (srtt = sample, rttvar = sample/2); later samples apply
// the Jacobson update.
func (e *Estimator) Observe(sample time.Duration) {
	if sample < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.samples++
	if !e.primed {
		e.primed = true
		e.srtt = sample
		e.rttvar = sample / 2
		return
	}
	err := sample - e.srtt
	if err < 0 {
		err = -err
	}
	e.rttvar += (err - e.rttvar) >> rttvarShift
	e.srtt += (sample - e.srtt) >> srttShift
}

// noteSpurious counts one exchange classified as a spurious retransmit.
func (e *Estimator) noteSpurious() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.spurious++
}

// RTO returns the current retransmission timeout: srtt + 4·rttvar, clamped
// to [min, max].
func (e *Estimator) RTO() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	rto := e.srtt + rttvarMult*e.rttvar
	if rto < e.min {
		rto = e.min
	}
	if rto > e.max {
		rto = e.max
	}
	return rto
}

// SRTT returns the smoothed RTT.
func (e *Estimator) SRTT() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srtt
}

// RTTStats is a point-in-time view of an estimator.
type RTTStats struct {
	SRTT     time.Duration
	RTTVar   time.Duration
	RTO      time.Duration
	Samples  int64
	Spurious int64
}

// Stats snapshots the estimator.
func (e *Estimator) Stats() RTTStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	rto := e.srtt + rttvarMult*e.rttvar
	if rto < e.min {
		rto = e.min
	}
	if rto > e.max {
		rto = e.max
	}
	return RTTStats{SRTT: e.srtt, RTTVar: e.rttvar, RTO: rto, Samples: e.samples, Spurious: e.spurious}
}
