package trace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"syncstamp/internal/graph"
)

func TestOpConstructorsAndString(t *testing.T) {
	m := Message(2, 5)
	if m.Kind != OpMessage || m.From != 2 || m.To != 5 {
		t.Fatalf("Message = %+v", m)
	}
	if m.String() != "2->5" {
		t.Fatalf("String = %q", m.String())
	}
	i := Internal(3)
	if i.Kind != OpInternal || i.Proc != 3 {
		t.Fatalf("Internal = %+v", i)
	}
	if i.String() != "int@3" {
		t.Fatalf("String = %q", i.String())
	}
}

func TestAppendValidation(t *testing.T) {
	tr := &Trace{N: 3}
	if err := tr.Append(Message(0, 1)); err != nil {
		t.Fatal(err)
	}
	cases := []Op{
		Message(0, 3),
		Message(-1, 1),
		Message(1, 1),
		Internal(3),
		Internal(-1),
		{Kind: OpKind(7)},
	}
	for _, op := range cases {
		if err := tr.Append(op); err == nil {
			t.Fatalf("Append(%v) succeeded, want error", op)
		}
	}
	if len(tr.Ops) != 1 {
		t.Fatalf("failed appends modified the trace: %v", tr.Ops)
	}
}

func TestCountsAndMessages(t *testing.T) {
	tr := &Trace{N: 4}
	tr.MustAppend(Internal(0))
	tr.MustAppend(Message(0, 1))
	tr.MustAppend(Internal(2))
	tr.MustAppend(Message(2, 3))
	tr.MustAppend(Message(1, 2))
	if tr.NumMessages() != 3 || tr.NumInternal() != 2 {
		t.Fatalf("messages=%d internal=%d", tr.NumMessages(), tr.NumInternal())
	}
	msgs := tr.Messages()
	if len(msgs) != 3 {
		t.Fatalf("Messages() = %v", msgs)
	}
	for i, m := range msgs {
		if m.Index != i {
			t.Fatalf("message %d has index %d", i, m.Index)
		}
	}
	if msgs[1].From != 2 || msgs[1].To != 3 {
		t.Fatalf("msgs[1] = %+v", msgs[1])
	}
	if msgs[1].Edge() != graph.NewEdge(2, 3) {
		t.Fatalf("Edge() = %v", msgs[1].Edge())
	}
}

func TestValidateAgainstTopology(t *testing.T) {
	topo := graph.Path(3) // edges (0,1), (1,2)
	good := &Trace{N: 3}
	good.MustAppend(Message(0, 1))
	good.MustAppend(Message(2, 1))
	if err := good.Validate(topo); err != nil {
		t.Fatal(err)
	}
	bad := &Trace{N: 3}
	bad.MustAppend(Message(0, 2)) // not a topology edge
	if err := bad.Validate(topo); err == nil {
		t.Fatal("Validate accepted an off-topology message")
	}
	mismatch := &Trace{N: 4}
	if err := mismatch.Validate(topo); err == nil {
		t.Fatal("Validate accepted a process-count mismatch")
	}
	// Corrupt ops are caught even without a topology.
	corrupt := &Trace{N: 3, Ops: []Op{{Kind: OpMessage, From: 0, To: 0}}}
	if err := corrupt.Validate(nil); err == nil {
		t.Fatal("Validate accepted a self-message")
	}
	corrupt2 := &Trace{N: 3, Ops: []Op{{Kind: OpKind(9)}}}
	if err := corrupt2.Validate(nil); err == nil {
		t.Fatal("Validate accepted an invalid kind")
	}
}

func TestTopologyExtraction(t *testing.T) {
	tr := &Trace{N: 5}
	tr.MustAppend(Message(0, 1))
	tr.MustAppend(Message(1, 0)) // same channel, other direction
	tr.MustAppend(Message(3, 4))
	g := tr.Topology()
	if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(3, 4) {
		t.Fatalf("Topology = %v", g)
	}
}

func TestProcOps(t *testing.T) {
	tr := &Trace{N: 3}
	tr.MustAppend(Message(0, 1)) // op 0
	tr.MustAppend(Internal(1))   // op 1
	tr.MustAppend(Message(1, 2)) // op 2
	po := tr.ProcOps()
	assertInts(t, po[0], []int{0})
	assertInts(t, po[1], []int{0, 1, 2})
	assertInts(t, po[2], []int{2})
}

func assertInts(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestGenerateRespectsTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	topo := graph.ClientServer(2, 6, false)
	tr := Generate(topo, GenOptions{Messages: 200, InternalProb: 0.3, Hotspot: 0.5}, rng)
	if err := tr.Validate(topo); err != nil {
		t.Fatal(err)
	}
	if tr.NumMessages() != 200 {
		t.Fatalf("generated %d messages, want 200", tr.NumMessages())
	}
	if tr.NumInternal() == 0 {
		t.Fatal("InternalProb 0.3 over 200 messages generated no internal events")
	}
}

func TestGenerateNoEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate on edgeless topology did not panic")
		}
	}()
	Generate(graph.New(3), GenOptions{Messages: 1}, rand.New(rand.NewSource(1)))
}

func TestGenerateBadInternalProbPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with InternalProb=1 did not panic")
		}
	}()
	Generate(graph.Path(3), GenOptions{Messages: 1, InternalProb: 1}, rand.New(rand.NewSource(1)))
}

func TestGenerateZeroMessages(t *testing.T) {
	tr := Generate(graph.New(3), GenOptions{}, rand.New(rand.NewSource(1)))
	if len(tr.Ops) != 0 || tr.N != 3 {
		t.Fatalf("Generate zero = %+v", tr)
	}
}

func TestFigure1Shape(t *testing.T) {
	tr := Figure1()
	if tr.N != 4 || tr.NumMessages() != 6 {
		t.Fatalf("Figure1: N=%d messages=%d", tr.N, tr.NumMessages())
	}
	if err := tr.Validate(nil); err != nil {
		t.Fatal(err)
	}
}

func TestFigure6Shape(t *testing.T) {
	tr := Figure6()
	if tr.N != 5 || tr.NumMessages() != 6 {
		t.Fatalf("Figure6: N=%d messages=%d", tr.N, tr.NumMessages())
	}
	if err := tr.Validate(graph.Complete(5)); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ {
		topo := graph.RandomConnected(2+rng.Intn(8), 0.3, rng)
		tr := Generate(topo, GenOptions{Messages: rng.Intn(50), InternalProb: 0.2}, rng)
		var b strings.Builder
		if err := WriteText(&b, tr); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		got, err := ReadText(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("ReadText: %v", err)
		}
		if got.N != tr.N || len(got.Ops) != len(tr.Ops) {
			t.Fatalf("round trip N=%d ops=%d, want N=%d ops=%d", got.N, len(got.Ops), tr.N, len(tr.Ops))
		}
		for j := range tr.Ops {
			if got.Ops[j] != tr.Ops[j] {
				t.Fatalf("op %d: got %v, want %v", j, got.Ops[j], tr.Ops[j])
			}
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"missing n", "m 0 1\n"},
		{"duplicate n", "n 2\nn 2\n"},
		{"bad n", "n -1\n"},
		{"empty", "# c\n"},
		{"m arity", "n 3\nm 1\n"},
		{"m bad", "n 3\nm a b\n"},
		{"m out of range", "n 3\nm 0 4\n"},
		{"i arity", "n 3\ni\n"},
		{"i bad", "n 3\ni x\n"},
		{"i out of range", "n 3\ni 3\n"},
		{"unknown", "n 3\nq 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("ReadText(%q) succeeded", tc.in)
			}
		})
	}
}

// Property: Generate always produces traces that validate against their
// topology, and Topology() is a subgraph of the generator topology.
func TestQuickGenerateValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := graph.RandomConnected(2+rng.Intn(10), rng.Float64(), rng)
		tr := Generate(topo, GenOptions{
			Messages:     rng.Intn(80),
			InternalProb: rng.Float64() * 0.5,
			Hotspot:      rng.Float64(),
		}, rng)
		if tr.Validate(topo) != nil {
			return false
		}
		used := tr.Topology()
		for _, e := range used.Edges() {
			if !topo.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
