package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText serializes a trace in a line-oriented format:
//
//	n <processes>
//	m <from> <to>
//	i <proc>
//
// Lines beginning with '#' are comments.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", t.N); err != nil {
		return err
	}
	for _, op := range t.Ops {
		var err error
		switch op.Kind {
		case OpMessage:
			_, err = fmt.Fprintf(bw, "m %d %d\n", op.From, op.To)
		case OpInternal:
			_, err = fmt.Fprintf(bw, "i %d\n", op.Proc)
		default:
			err = fmt.Errorf("trace: cannot encode op kind %d", int(op.Kind))
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the format produced by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var tr *Trace
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "n":
			if tr != nil {
				return nil, fmt.Errorf("trace: line %d: duplicate n line", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: want \"n <count>\"", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("trace: line %d: bad process count %q", line, fields[1])
			}
			tr = &Trace{N: n}
		case "m":
			if tr == nil {
				return nil, fmt.Errorf("trace: line %d: op before n line", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: want \"m <from> <to>\"", line)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("trace: line %d: bad message %q", line, text)
			}
			if err := tr.Append(Message(from, to)); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
		case "i":
			if tr == nil {
				return nil, fmt.Errorf("trace: line %d: op before n line", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: want \"i <proc>\"", line)
			}
			proc, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad process %q", line, fields[1])
			}
			if err := tr.Append(Internal(proc)); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("trace: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if tr == nil {
		return nil, fmt.Errorf("trace: missing n line")
	}
	return tr, nil
}
