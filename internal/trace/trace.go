// Package trace represents synchronous computations. Because every
// computation built from synchronous messages is logically equivalent to one
// in which all messages are instantaneous (Charron-Bost et al.; Section 1 of
// the paper — time diagrams with vertical arrows), a computation is recorded
// as a single global sequence of operations: message exchanges between two
// processes and internal events on one process. All order relations of the
// paper (the message poset ↦ of Section 2 and the event-level happened-before
// of Section 5) are derivable from this sequence; internal/order implements
// the derivations.
package trace

import (
	"fmt"
	"math/rand"

	"syncstamp/internal/graph"
)

// OpKind discriminates trace operations.
type OpKind int

// Operation kinds.
const (
	// OpMessage is a synchronous message exchange: the sender blocks until
	// the receiver delivers (send and receive share one logical instant).
	OpMessage OpKind = iota + 1
	// OpInternal is an internal event on a single process.
	OpInternal
)

// Op is one operation of a synchronous computation.
type Op struct {
	Kind OpKind
	// From and To are the sender and receiver of a message op.
	From, To int
	// Proc is the process of an internal op.
	Proc int
}

// Message returns a message op from sender to receiver.
func Message(from, to int) Op { return Op{Kind: OpMessage, From: from, To: to} }

// Internal returns an internal op on proc.
func Internal(proc int) Op { return Op{Kind: OpInternal, Proc: proc} }

// String renders the op as "2->5" or "int@3".
func (o Op) String() string {
	switch o.Kind {
	case OpMessage:
		return fmt.Sprintf("%d->%d", o.From, o.To)
	case OpInternal:
		return fmt.Sprintf("int@%d", o.Proc)
	default:
		return fmt.Sprintf("Op(kind=%d)", int(o.Kind))
	}
}

// Msg identifies one message of a computation along with its channel.
type Msg struct {
	// Index is the message's position among the message ops (0-based).
	Index int
	// From and To are the sender and receiver processes.
	From, To int
}

// Edge returns the channel the message travels on.
func (m Msg) Edge() graph.Edge { return graph.NewEdge(m.From, m.To) }

// Trace is a synchronous computation on processes 0..N-1.
type Trace struct {
	// N is the number of processes.
	N int
	// Ops is the global operation sequence.
	Ops []Op
}

// NumMessages returns the number of message ops.
func (t *Trace) NumMessages() int {
	c := 0
	for _, op := range t.Ops {
		if op.Kind == OpMessage {
			c++
		}
	}
	return c
}

// NumInternal returns the number of internal ops.
func (t *Trace) NumInternal() int {
	c := 0
	for _, op := range t.Ops {
		if op.Kind == OpInternal {
			c++
		}
	}
	return c
}

// Messages returns the message list in order of occurrence.
func (t *Trace) Messages() []Msg {
	out := make([]Msg, 0, t.NumMessages())
	for _, op := range t.Ops {
		if op.Kind == OpMessage {
			out = append(out, Msg{Index: len(out), From: op.From, To: op.To})
		}
	}
	return out
}

// Append adds an op to the trace after validating process indices.
func (t *Trace) Append(op Op) error {
	switch op.Kind {
	case OpMessage:
		if op.From < 0 || op.From >= t.N || op.To < 0 || op.To >= t.N {
			return fmt.Errorf("trace: message %v out of range for N=%d", op, t.N)
		}
		if op.From == op.To {
			return fmt.Errorf("trace: self-message on process %d", op.From)
		}
	case OpInternal:
		if op.Proc < 0 || op.Proc >= t.N {
			return fmt.Errorf("trace: internal op on process %d out of range for N=%d", op.Proc, t.N)
		}
	default:
		return fmt.Errorf("trace: invalid op kind %d", int(op.Kind))
	}
	t.Ops = append(t.Ops, op)
	return nil
}

// MustAppend is Append but panics on error; for hand-built test traces.
func (t *Trace) MustAppend(op Op) {
	if err := t.Append(op); err != nil {
		panic(err.Error())
	}
}

// Validate checks every op's process indices, and, when topo is non-nil,
// that every message travels on an edge of the topology.
func (t *Trace) Validate(topo *graph.Graph) error {
	if topo != nil && topo.N() != t.N {
		return fmt.Errorf("trace: N=%d but topology has %d vertices", t.N, topo.N())
	}
	for i, op := range t.Ops {
		switch op.Kind {
		case OpMessage:
			if op.From < 0 || op.From >= t.N || op.To < 0 || op.To >= t.N || op.From == op.To {
				return fmt.Errorf("trace: op %d: invalid message %v", i, op)
			}
			if topo != nil && !topo.HasEdge(op.From, op.To) {
				return fmt.Errorf("trace: op %d: message %v not on a topology edge", i, op)
			}
		case OpInternal:
			if op.Proc < 0 || op.Proc >= t.N {
				return fmt.Errorf("trace: op %d: invalid internal %v", i, op)
			}
		default:
			return fmt.Errorf("trace: op %d: invalid kind %d", i, int(op.Kind))
		}
	}
	return nil
}

// Topology returns the communication topology actually used by the trace:
// the graph whose edges are exactly the channels that carry some message.
func (t *Trace) Topology() *graph.Graph {
	g := graph.New(t.N)
	for _, op := range t.Ops {
		if op.Kind == OpMessage {
			g.AddEdge(op.From, op.To)
		}
	}
	return g
}

// ProcOps returns, for each process, the indices into Ops of the operations
// it participates in (messages as sender or receiver, and its internal ops).
func (t *Trace) ProcOps() [][]int {
	out := make([][]int, t.N)
	for i, op := range t.Ops {
		switch op.Kind {
		case OpMessage:
			out[op.From] = append(out[op.From], i)
			out[op.To] = append(out[op.To], i)
		case OpInternal:
			out[op.Proc] = append(out[op.Proc], i)
		}
	}
	return out
}

// GenOptions configures random computation generation.
type GenOptions struct {
	// Messages is the number of message ops to generate.
	Messages int
	// InternalProb is the probability, before each message, of inserting an
	// internal event on a uniformly random process (repeatedly, until the
	// coin fails), in [0, 1).
	InternalProb float64
	// Hotspot, when in (0, 1], biases channel selection: with this
	// probability the next message reuses a process of the previous one,
	// producing longer synchronous chains than uniform selection.
	Hotspot float64
}

// Generate builds a random synchronous computation over the channels of
// topo. Messages are uniform over edges (optionally biased by Hotspot);
// the result is always a valid trace of topo. It panics if topo has no
// edges but Messages > 0.
func Generate(topo *graph.Graph, opts GenOptions, rng *rand.Rand) *Trace {
	edges := topo.Edges()
	if len(edges) == 0 && opts.Messages > 0 {
		panic("trace: cannot generate messages on an edgeless topology")
	}
	if opts.InternalProb < 0 || opts.InternalProb >= 1 {
		if opts.InternalProb != 0 {
			panic(fmt.Sprintf("trace: InternalProb %v out of [0,1)", opts.InternalProb))
		}
	}
	tr := &Trace{N: topo.N()}
	var prev graph.Edge
	havePrev := false
	for m := 0; m < opts.Messages; m++ {
		for opts.InternalProb > 0 && rng.Float64() < opts.InternalProb {
			tr.MustAppend(Internal(rng.Intn(topo.N())))
		}
		e := edges[rng.Intn(len(edges))]
		if havePrev && opts.Hotspot > 0 && rng.Float64() < opts.Hotspot {
			// Prefer an edge sharing a vertex with the previous message.
			var candidates []graph.Edge
			for _, v := range []int{prev.U, prev.V} {
				for _, u := range topo.Neighbors(v) {
					candidates = append(candidates, graph.NewEdge(v, u))
				}
			}
			if len(candidates) > 0 {
				e = candidates[rng.Intn(len(candidates))]
			}
		}
		// Random direction.
		from, to := e.U, e.V
		if rng.Intn(2) == 0 {
			from, to = to, from
		}
		tr.MustAppend(Message(from, to))
		prev = e
		havePrev = true
	}
	for opts.InternalProb > 0 && rng.Float64() < opts.InternalProb {
		tr.MustAppend(Internal(rng.Intn(topo.N())))
	}
	return tr
}
