package trace

import (
	"fmt"
	"math/rand"
)

// RPCWorkload builds a synchronous client-server computation over the
// graph.ClientServer(servers, clients, false) topology: every client issues
// rpcs request/reply pairs to each server, interleaved round-robin across
// clients (the paper's Section 3.3 motivating workload).
func RPCWorkload(servers, clients, rpcs int) *Trace {
	if servers < 1 || clients < 0 || rpcs < 0 {
		panic(fmt.Sprintf("trace: invalid RPC workload %dx%dx%d", servers, clients, rpcs))
	}
	tr := &Trace{N: servers + clients}
	for r := 0; r < rpcs; r++ {
		for c := 0; c < clients; c++ {
			client := servers + c
			for s := 0; s < servers; s++ {
				tr.MustAppend(Message(client, s)) // request
				tr.MustAppend(Message(s, client)) // reply
			}
		}
	}
	return tr
}

// RingToken builds a token circulating rounds times around a ring of n
// processes (cycle topology): one long synchronous chain.
func RingToken(n, rounds int) *Trace {
	if n < 3 {
		panic(fmt.Sprintf("trace: ring needs at least 3 processes, got %d", n))
	}
	tr := &Trace{N: n}
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			tr.MustAppend(Message(i, (i+1)%n))
		}
	}
	return tr
}

// TreeGatherScatter builds rounds of leaf-to-root aggregation followed by
// root-to-leaf broadcast over the graph.BalancedTree(branching, depth)
// topology — the tree workload behind Figure 4's motivation.
func TreeGatherScatter(branching, depth, rounds int) *Trace {
	if branching < 1 || depth < 0 {
		panic(fmt.Sprintf("trace: invalid tree %dx%d", branching, depth))
	}
	n := 1
	level := 1
	for d := 0; d < depth; d++ {
		level *= branching
		n += level
	}
	tr := &Trace{N: n}
	parent := func(v int) int { return (v - 1) / branching }
	for r := 0; r < rounds; r++ {
		// Gather: children report upward, deepest first.
		for v := n - 1; v >= 1; v-- {
			tr.MustAppend(Message(v, parent(v)))
		}
		// Scatter: parents push downward.
		for v := 1; v < n; v++ {
			tr.MustAppend(Message(parent(v), v))
		}
	}
	return tr
}

// Pipeline builds a staged pipeline: items flow through processes
// 0 → 1 → ... → n-1, with items entering back-to-back so different stages
// work on different items concurrently.
func Pipeline(n, items int) *Trace {
	if n < 2 {
		panic(fmt.Sprintf("trace: pipeline needs at least 2 stages, got %d", n))
	}
	tr := &Trace{N: n}
	// Schedule by anti-diagonals: step t moves item i across stage s where
	// s = t - i, giving maximal overlap.
	for t := 0; t < items+n-2; t++ {
		for i := 0; i < items; i++ {
			s := t - i
			if s >= 0 && s < n-1 {
				tr.MustAppend(Message(s, s+1))
			}
		}
	}
	return tr
}

// Mixed interleaves a base workload with background noise: random messages
// over the given extra channels and internal events, for stress scenarios.
func Mixed(base *Trace, extra []Msg, internalPerOp float64, rng *rand.Rand) *Trace {
	tr := &Trace{N: base.N}
	for _, op := range base.Ops {
		if internalPerOp > 0 && rng.Float64() < internalPerOp {
			tr.MustAppend(Internal(rng.Intn(base.N)))
		}
		if len(extra) > 0 && rng.Float64() < 0.25 {
			e := extra[rng.Intn(len(extra))]
			tr.MustAppend(Message(e.From, e.To))
		}
		tr.MustAppend(op)
	}
	return tr
}
