package trace

import (
	"strings"
	"testing"
)

// FuzzReadText checks the trace parser never panics and that anything it
// accepts round-trips through WriteText.
func FuzzReadText(f *testing.F) {
	f.Add("n 3\nm 0 1\ni 2\nm 1 2\n")
	f.Add("n 0\n")
	f.Add("# comment\n\nn 2\nm 1 0\n")
	f.Add("n 2\nm 0 1")
	f.Add("m 0 1\nn 2\n")
	f.Add("n -1\n")
	f.Add("n 2\nm 0 0\n")
	f.Add("n 2\nq\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadText(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Validate(nil); err != nil {
			t.Fatalf("parser accepted an invalid trace: %v", err)
		}
		var b strings.Builder
		if err := WriteText(&b, tr); err != nil {
			t.Fatalf("WriteText of accepted trace failed: %v", err)
		}
		back, err := ReadText(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N != tr.N || len(back.Ops) != len(tr.Ops) {
			t.Fatal("round trip changed the trace")
		}
		for i := range tr.Ops {
			if back.Ops[i] != tr.Ops[i] {
				t.Fatalf("op %d changed: %v -> %v", i, tr.Ops[i], back.Ops[i])
			}
		}
	})
}
