package trace

import (
	"math/rand"
	"testing"

	"syncstamp/internal/graph"
)

func TestRPCWorkloadShape(t *testing.T) {
	tr := RPCWorkload(2, 3, 4)
	if tr.N != 5 {
		t.Fatalf("N = %d", tr.N)
	}
	want := 2 * 2 * 3 * 4 // 2 msgs per RPC x servers x clients x rpcs
	if tr.NumMessages() != want {
		t.Fatalf("messages = %d, want %d", tr.NumMessages(), want)
	}
	if err := tr.Validate(graph.ClientServer(2, 3, false)); err != nil {
		t.Fatal(err)
	}
}

func TestRPCWorkloadEmptyAndPanics(t *testing.T) {
	if tr := RPCWorkload(1, 0, 5); tr.NumMessages() != 0 {
		t.Fatal("no clients must yield no messages")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RPCWorkload(0,...) did not panic")
		}
	}()
	RPCWorkload(0, 1, 1)
}

func TestRingTokenChain(t *testing.T) {
	tr := RingToken(5, 3)
	if tr.NumMessages() != 15 {
		t.Fatalf("messages = %d", tr.NumMessages())
	}
	if err := tr.Validate(graph.Cycle(5)); err != nil {
		t.Fatal(err)
	}
	// Consecutive messages share a process: the whole computation is a
	// single chain.
	msgs := tr.Messages()
	for i := 1; i < len(msgs); i++ {
		a, b := msgs[i-1], msgs[i]
		share := a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To
		if !share {
			t.Fatalf("ring token broke the chain at %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RingToken(2,...) did not panic")
		}
	}()
	RingToken(2, 1)
}

func TestTreeGatherScatter(t *testing.T) {
	tr := TreeGatherScatter(2, 2, 3) // 7 processes, 6 edges
	if tr.N != 7 {
		t.Fatalf("N = %d", tr.N)
	}
	if tr.NumMessages() != 3*2*6 {
		t.Fatalf("messages = %d, want %d", tr.NumMessages(), 3*2*6)
	}
	if err := tr.Validate(graph.BalancedTree(2, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineOverlap(t *testing.T) {
	tr := Pipeline(4, 3)
	// Each of the 3 items crosses 3 stage boundaries.
	if tr.NumMessages() != 9 {
		t.Fatalf("messages = %d, want 9", tr.NumMessages())
	}
	if err := tr.Validate(graph.Path(4)); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Pipeline(1,...) did not panic")
		}
	}()
	Pipeline(1, 1)
}

func TestMixedPreservesBase(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := RingToken(4, 2)
	extra := []Msg{{From: 0, To: 2}}
	tr := Mixed(base, extra, 0.5, rng)
	if tr.N != base.N {
		t.Fatalf("N changed: %d", tr.N)
	}
	// Base messages appear in order as a subsequence.
	var baseOps []Op
	for _, op := range base.Ops {
		baseOps = append(baseOps, op)
	}
	k := 0
	for _, op := range tr.Ops {
		if k < len(baseOps) && op == baseOps[k] {
			k++
		}
	}
	if k != len(baseOps) {
		t.Fatalf("base ops not a subsequence: matched %d of %d", k, len(baseOps))
	}
	if tr.NumInternal() == 0 {
		t.Fatal("expected injected internal events")
	}
}
