package trace

// Figure1 returns a 4-process synchronous computation with six messages
// m1..m6 realizing every relation the paper states about its Figure 1:
// m1‖m2, m1 ▷ m3, m2 ↦ m6, m3 ↦ m5, and a synchronous chain of size 4 from
// m1 to m5 (m1 ▷ m3 ▷ m4 ▷ m5). The paper draws the computation without
// listing the exact channels; this reconstruction is checked against each
// stated relation by experiment E1. Message index i corresponds to m(i+1).
func Figure1() *Trace {
	tr := &Trace{N: 4}
	tr.MustAppend(Message(0, 1)) // m1: P1 -> P2
	tr.MustAppend(Message(2, 3)) // m2: P3 -> P4 (concurrent with m1)
	tr.MustAppend(Message(1, 2)) // m3: P2 -> P3 (after m1 via P2, after m2 via P3)
	tr.MustAppend(Message(2, 3)) // m4: P3 -> P4
	tr.MustAppend(Message(3, 0)) // m5: P4 -> P1 (chain m1,m3,m4,m5)
	tr.MustAppend(Message(0, 1)) // m6: P1 -> P2 (m2 ↦ m4 ↦ m5 ↦ m6)
	return tr
}

// Figure6 returns the 5-process computation of the paper's Figure 6 worked
// example, played over the complete topology K5 with the Figure 3(a)
// decomposition (see decomp.Figure3a): E1 = star at P1, E2 = star at P2,
// E3 = triangle (P3, P4, P5). The third message (P2 -> P3) must be
// timestamped (1,1,1) exactly as the paper narrates. Processes P1..P5 map
// to 0..4.
func Figure6() *Trace {
	tr := &Trace{N: 5}
	tr.MustAppend(Message(0, 1)) // P1 -> P2 on E1: both reach (1,0,0)
	tr.MustAppend(Message(3, 2)) // P4 -> P3 on E3: both reach (0,0,1)
	tr.MustAppend(Message(1, 2)) // P2 -> P3 on E2: max then inc -> (1,1,1)
	tr.MustAppend(Message(0, 3)) // P1 -> P4 on E1: max((1,0,0),(0,0,1)) inc -> (2,0,1)
	tr.MustAppend(Message(4, 2)) // P5 -> P3 on E3: max((0,0,0),(1,1,1)) inc -> (1,1,2)
	tr.MustAppend(Message(1, 4)) // P2 -> P5 on E2: max((1,1,1),(1,1,2)) inc -> (1,2,2)
	return tr
}
