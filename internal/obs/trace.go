package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"syncstamp/internal/core"
	"syncstamp/internal/decomp"
	"syncstamp/internal/vector"
)

// Phase identifies one step of the two-phase rendezvous (see the state
// machine in package csp's doc) or an internal event.
type Phase uint8

// Rendezvous phases, in protocol order.
const (
	// PhaseSyn: the sender dispatched its pre-merge vector.
	PhaseSyn Phase = iota + 1
	// PhaseMerge: the receiver performed the Figure 5 merge; the event
	// carries the agreed stamp v(m).
	PhaseMerge
	// PhaseAck: the receiver answered the sender (in internal/node the ACK
	// carries the merged stamp; in internal/csp the ack precedes the merge
	// and carries the receiver's pre-merge vector).
	PhaseAck
	// PhaseAdopt: the sender adopted the agreed stamp; the rendezvous is
	// complete on its side.
	PhaseAdopt
	// PhaseInternal: a Section 5 internal event with a note.
	PhaseInternal
)

// String names the phase as it appears in JSONL.
func (p Phase) String() string {
	switch p {
	case PhaseSyn:
		return "syn"
	case PhaseMerge:
		return "merge"
	case PhaseAck:
		return "ack"
	case PhaseAdopt:
		return "adopt"
	case PhaseInternal:
		return "internal"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// ParsePhase inverts Phase.String.
func ParsePhase(s string) (Phase, error) {
	switch s {
	case "syn":
		return PhaseSyn, nil
	case "merge":
		return PhaseMerge, nil
	case "ack":
		return PhaseAck, nil
	case "adopt":
		return PhaseAdopt, nil
	case "internal":
		return PhaseInternal, nil
	default:
		return 0, fmt.Errorf("obs: unknown phase %q", s)
	}
}

// Event is one structured trace record. Events of one process form a
// per-process total order (Seq); cross-process order is recovered from the
// Stamps, never from wall clocks.
type Event struct {
	// Node is the hosting node, or -1 for the in-process csp runtime.
	Node int
	// Proc is the acting process.
	Proc int
	// Peer is the rendezvous partner, or -1 for internal events.
	Peer int
	// Seq numbers the process's events in emission order, from 0.
	Seq int
	// Phase is the protocol step this event records.
	Phase Phase
	// Stamp is the vector the phase established: the pre-merge vector for
	// PhaseSyn (and csp's PhaseAck), the agreed stamp v(m) for
	// PhaseMerge/PhaseAdopt, the process's current vector for PhaseInternal.
	Stamp vector.V
	// Note carries the internal event's payload.
	Note string
}

// Tracer collects events from concurrently running processes. Emit is safe
// for concurrent use; a nil *Tracer no-ops.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	seq    map[int]int
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{seq: make(map[int]int)}
}

// Emit records one event, assigning its per-process sequence number and
// cloning the stamp (callers may reuse the backing array).
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	e.Stamp = e.Stamp.Clone()
	t.mu.Lock()
	defer t.mu.Unlock()
	e.Seq = t.seq[e.Proc]
	t.seq[e.Proc] = e.Seq + 1
	t.events = append(t.events, e)
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in the canonical
// deterministic order: by process, then per-process sequence. Because each
// process's event sequence is interleaving-independent for a synchronous
// computation, this order — and everything exported from it — is
// byte-stable across runs.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	evs := append([]Event(nil), t.events...)
	t.mu.Unlock()
	SortEvents(evs)
	return evs
}

// SortEvents sorts events into the canonical (proc, seq) order.
func SortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Proc != evs[j].Proc {
			return evs[i].Proc < evs[j].Proc
		}
		return evs[i].Seq < evs[j].Seq
	})
}

// FrameStats is one frame kind's share of a node's wire traffic.
type FrameStats struct {
	Frames int `json:"frames"`
	Bytes  int `json:"bytes"`
}

// Meta is the JSONL header record: the topology context needed to interpret
// and verify the event stream, plus the emitting node's wire accounting.
type Meta struct {
	Version int `json:"version"`
	// Node is the emitting node, or -1 for the in-process runtime.
	Node int `json:"node"`
	// N and D are the process count and decomposition size.
	N int `json:"n"`
	D int `json:"d"`
	// Dec is the edge decomposition in decomp.WriteText form.
	Dec string `json:"dec"`
	// Frames breaks the node's sent wire traffic down by frame kind.
	Frames map[string]FrameStats `json:"frames,omitempty"`
	// Overhead is the node's piggyback accounting (core.Overhead).
	Overhead *core.Overhead `json:"overhead,omitempty"`
}

// MetaVersion is the JSONL schema version this package writes.
const MetaVersion = 1

// NewMeta builds the header record for a run under dec on the given node.
func NewMeta(node int, dec *decomp.Decomposition) (Meta, error) {
	var b strings.Builder
	if err := decomp.WriteText(&b, dec); err != nil {
		return Meta{}, fmt.Errorf("obs: encoding decomposition: %w", err)
	}
	return Meta{Version: MetaVersion, Node: node, N: dec.N(), D: dec.D(), Dec: b.String()}, nil
}

// Decomposition parses the meta's embedded decomposition.
func (m Meta) Decomposition() (*decomp.Decomposition, error) {
	dec, err := decomp.ReadText(strings.NewReader(m.Dec))
	if err != nil {
		return nil, fmt.Errorf("obs: meta decomposition: %w", err)
	}
	return dec, nil
}

// metaJSON and evJSON are the two on-disk record shapes, discriminated by
// the leading "k" field. Field order is fixed by these declarations, which
// is part of the byte-stability contract.
type metaJSON struct {
	K        string                `json:"k"` // "meta"
	Version  int                   `json:"version"`
	Node     int                   `json:"node"`
	N        int                   `json:"n"`
	D        int                   `json:"d"`
	Dec      string                `json:"dec"`
	Frames   map[string]FrameStats `json:"frames,omitempty"`
	Overhead *core.Overhead        `json:"overhead,omitempty"`
}

// evJSON's T is the record's logical time: its position in the canonical
// (proc, seq) event order. Wall clocks never appear in JSONL.
type evJSON struct {
	K     string `json:"k"` // "ev"
	T     int    `json:"t"`
	Node  int    `json:"node"`
	Proc  int    `json:"proc"`
	Seq   int    `json:"seq"`
	Phase string `json:"phase"`
	Peer  int    `json:"peer"`
	Stamp []int  `json:"stamp"`
	Note  string `json:"note,omitempty"`
}

// WriteJSONL writes the deterministic JSONL export: the meta header, then
// every event in canonical (proc, seq) order with logical timestamps. Two
// runs of the same computation produce byte-identical output.
func WriteJSONL(w io.Writer, meta Meta, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(metaJSON{
		K: "meta", Version: meta.Version, Node: meta.Node, N: meta.N, D: meta.D,
		Dec: meta.Dec, Frames: meta.Frames, Overhead: meta.Overhead,
	}); err != nil {
		return fmt.Errorf("obs: writing meta: %w", err)
	}
	evs := append([]Event(nil), events...)
	SortEvents(evs)
	for t, e := range evs {
		stamp := make([]int, len(e.Stamp))
		copy(stamp, e.Stamp)
		if err := enc.Encode(evJSON{
			K: "ev", T: t, Node: e.Node, Proc: e.Proc, Seq: e.Seq,
			Phase: e.Phase.String(), Peer: e.Peer, Stamp: stamp, Note: e.Note,
		}); err != nil {
			return fmt.Errorf("obs: writing event %d: %w", t, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses one JSONL export: the meta header followed by events.
func ReadJSONL(r io.Reader) (Meta, []Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var meta Meta
	var events []Event
	sawMeta := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var kind struct {
			K string `json:"k"`
		}
		if err := json.Unmarshal([]byte(text), &kind); err != nil {
			return Meta{}, nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		switch kind.K {
		case "meta":
			if sawMeta {
				return Meta{}, nil, fmt.Errorf("obs: jsonl line %d: duplicate meta record", line)
			}
			var rec metaJSON
			if err := json.Unmarshal([]byte(text), &rec); err != nil {
				return Meta{}, nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
			}
			sawMeta = true
			meta = Meta{Version: rec.Version, Node: rec.Node, N: rec.N, D: rec.D,
				Dec: rec.Dec, Frames: rec.Frames, Overhead: rec.Overhead}
		case "ev":
			if !sawMeta {
				return Meta{}, nil, fmt.Errorf("obs: jsonl line %d: event before meta record", line)
			}
			var rec evJSON
			if err := json.Unmarshal([]byte(text), &rec); err != nil {
				return Meta{}, nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
			}
			ph, err := ParsePhase(rec.Phase)
			if err != nil {
				return Meta{}, nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
			}
			if rec.Proc < 0 || rec.Proc >= meta.N {
				return Meta{}, nil, fmt.Errorf("obs: jsonl line %d: process %d out of range [0,%d)", line, rec.Proc, meta.N)
			}
			e := Event{Node: rec.Node, Proc: rec.Proc, Peer: rec.Peer, Seq: rec.Seq, Phase: ph, Note: rec.Note}
			if rec.Stamp != nil {
				e.Stamp = make(vector.V, len(rec.Stamp))
				copy(e.Stamp, rec.Stamp)
			}
			events = append(events, e)
		default:
			return Meta{}, nil, fmt.Errorf("obs: jsonl line %d: unknown record kind %q", line, kind.K)
		}
	}
	if err := sc.Err(); err != nil {
		return Meta{}, nil, fmt.Errorf("obs: reading jsonl: %w", err)
	}
	if !sawMeta {
		return Meta{}, nil, fmt.Errorf("obs: jsonl stream has no meta record")
	}
	return meta, events, nil
}

// CausalLatencies computes each completed send's causal latency — the
// growth sum(v(m)) − sum(v_sender) between the SYN's pre-merge vector and
// the adopted stamp, i.e. how many rendezvous the sender newly learned of
// through the exchange (its own included). Computed purely from stamps, it
// is identical for every interleaving of the same computation. Latencies
// are returned in canonical event order.
func CausalLatencies(events []Event) []int64 {
	evs := append([]Event(nil), events...)
	SortEvents(evs)
	var out []int64
	pendingSyn := make(map[int]int64) // proc -> sum at last unmatched SYN
	sum := func(v vector.V) int64 {
		var s int64
		for _, x := range v {
			s += int64(x)
		}
		return s
	}
	for _, e := range evs {
		switch e.Phase {
		case PhaseSyn:
			pendingSyn[e.Proc] = sum(e.Stamp)
		case PhaseAdopt:
			if at, ok := pendingSyn[e.Proc]; ok {
				out = append(out, sum(e.Stamp)-at)
				delete(pendingSyn, e.Proc)
			}
		}
	}
	return out
}
