// Package obs is the observability layer of the two runtimes: a metrics
// registry (counters, gauges, bounded histograms) and a structured event
// tracer that both internal/csp and internal/node feed, plus the exporters —
// a deterministic JSONL sink, a Chrome trace_event file, and the /metrics,
// /healthz, and pprof HTTP endpoints cmd/tsnode serves.
//
// The design dogfoods the paper: every trace event carries the event's
// vector stamp, and cross-process ordering in the exported views is derived
// by topologically sorting on vector.Less (Theorem 4: v(m1) < v(m2) ⟺
// m1 ↦ m2) rather than on wall clocks. That makes the trace viewer itself an
// application of the timestamps it displays — and it makes the exports
// reproducible, because the stamps of a synchronous computation are
// interleaving-independent.
//
// # Determinism rules
//
//  1. Deterministic sinks (JSONL, Chrome) never contain wall-clock values:
//     JSONL timestamps are logical positions in the canonical (proc, seq)
//     order, Chrome timestamps are topological ranks of the stamps.
//  2. time.Now() is forbidden in this package (enforced by the obsdet
//     analyzer of cmd/tslint) except for the single Wall clock below, which
//     only ever feeds in-memory latency metrics, never an exported file.
//  3. Histogram bucket edges are fixed at construction, so two runs of the
//     same computation bucket identically.
//
// # Cost when disabled
//
// A nil *Obs (and nil *Counter, *Gauge, *Histogram, *Tracer) is the
// disabled state: every method is a no-op that performs zero allocations,
// so the runtimes call the hooks unconditionally on their hot paths.
package obs

import (
	"sync/atomic"
	"time"

	"syncstamp/internal/vector"
)

// Clock supplies timestamps for latency measurements. Production uses Wall;
// tests and deterministic experiments inject a Manual clock.
type Clock interface {
	// Now returns the current time in nanoseconds (or fake ticks).
	Now() int64
}

type wallClock struct{}

func (wallClock) Now() int64 {
	//nolint:obsdet Wall is the one sanctioned wall-clock source; it feeds only in-memory latency metrics, never a deterministic sink.
	return time.Now().UnixNano()
}

// Wall returns the real-time clock.
func Wall() Clock { return wallClock{} }

// Manual is a settable fake clock for deterministic tests and experiments.
// The zero value reads 0 until advanced.
type Manual struct {
	t atomic.Int64
}

// Now returns the current fake time.
func (m *Manual) Now() int64 { return m.t.Load() }

// Set moves the clock to t.
func (m *Manual) Set(t int64) { m.t.Store(t) }

// Advance moves the clock forward by d ticks and returns the new time.
func (m *Manual) Advance(d int64) int64 { return m.t.Add(d) }

// Obs bundles one run's observability surface: metrics, tracing, and the
// clock latency measurements are taken on. A nil *Obs is fully disabled.
type Obs struct {
	// Metrics is the run's registry; nil disables metrics.
	Metrics *Registry
	// Tracer records structured events; nil disables tracing.
	Tracer *Tracer
	// Flight is the always-on ring of recent events, dumped on crash,
	// peer loss, or an explicit trigger; nil disables it.
	Flight *Flight
	// Clock times latency observations. Nil falls back to Wall.
	Clock Clock
}

// New returns an enabled Obs with a fresh registry, a fresh tracer, and the
// wall clock.
func New() *Obs {
	return &Obs{Metrics: NewRegistry(), Tracer: NewTracer(), Clock: Wall()}
}

// Registry returns the metrics registry; nil when disabled, which the
// registry's own methods tolerate.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Now reads the clock; 0 when disabled.
func (o *Obs) Now() int64 {
	if o == nil {
		return 0
	}
	if o.Clock == nil {
		return Wall().Now()
	}
	return o.Clock.Now()
}

// Rendezvous records one rendezvous phase of process proc with peer,
// carrying the vector the phase established (the pre-merge vector for
// PhaseSyn, the agreed stamp for PhaseMerge/PhaseAck/PhaseAdopt). node is
// the hosting node, or -1 for the in-process runtime.
func (o *Obs) Rendezvous(node, proc, peer int, ph Phase, stamp vector.V) {
	if o == nil || (o.Tracer == nil && o.Flight == nil) {
		return
	}
	e := Event{Node: node, Proc: proc, Peer: peer, Phase: ph, Stamp: stamp}
	o.Tracer.Emit(e)
	o.Flight.Record(e)
}

// Internal records an internal event with the process's current vector.
func (o *Obs) Internal(node, proc int, stamp vector.V, note string) {
	if o == nil || (o.Tracer == nil && o.Flight == nil) {
		return
	}
	e := Event{Node: node, Proc: proc, Peer: -1, Phase: PhaseInternal, Stamp: stamp, Note: note}
	o.Tracer.Emit(e)
	o.Flight.Record(e)
}
