package obs

import (
	"encoding/json"
	"testing"
)

// TestHistogramMerge: merging a snapshot must equal having observed the
// union of samples on one histogram.
func TestHistogramMerge(t *testing.T) {
	edges := []int64{1, 10, 100}
	a, b, union := NewHistogram(edges), NewHistogram(edges), NewHistogram(edges)
	for _, v := range []int64{0, 5, 50, 500} {
		a.Observe(v)
		union.Observe(v)
	}
	for _, v := range []int64{1, 10, 1000} {
		b.Observe(v)
		union.Observe(v)
	}
	if err := a.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got, want := a.Snapshot(), union.Snapshot()
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Fatalf("merged snapshot %s, want %s", gj, wj)
	}

	// Merging an empty snapshot (e.g. a disabled peer) is a no-op.
	if err := a.Merge(HistogramSnapshot{}); err != nil {
		t.Fatalf("empty snapshot merge: %v", err)
	}

	// Mismatched edges must be rejected, not silently mixed.
	other := NewHistogram([]int64{1, 2})
	other.Observe(1)
	if err := a.Merge(other.Snapshot()); err == nil {
		t.Fatal("merging mismatched edges must error")
	}
	odd := NewHistogram(edges)
	odd.Observe(1)
	s := odd.Snapshot()
	s.Edges = []int64{2, 20, 200}
	if err := a.Merge(s); err == nil {
		t.Fatal("merging different edge values must error")
	}
}

// TestRegistryMergeCommutativeAssociative: rollups arrive from leaves and
// remote nodes in arbitrary order, so Merge must be order-insensitive. We
// compare snapshot JSON, which is itself deterministic.
func TestRegistryMergeCommutativeAssociative(t *testing.T) {
	mk := func(seed int64) Snapshot {
		r := NewRegistry()
		r.Counter("frames_total").Add(3 + seed)
		r.Counter("c_only_" + string(rune('a'+seed))).Add(seed + 1)
		r.Gauge("resident").Set(10 * seed)
		h := r.Histogram("latency", []int64{1, 10})
		h.Observe(seed)
		h.Observe(100 * seed)
		return r.Snapshot()
	}
	snaps := []Snapshot{mk(0), mk(1), mk(2)}

	merged := func(order []int) string {
		r := NewRegistry()
		for _, i := range order {
			if err := r.Merge(snaps[i]); err != nil {
				t.Fatal(err)
			}
		}
		j, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}
	want := merged([]int{0, 1, 2})
	for _, order := range [][]int{{0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		if got := merged(order); got != want {
			t.Fatalf("merge order %v yields %s, want %s", order, got, want)
		}
	}

	// Associativity: (A+B)+C == A+(B+C).
	left := NewRegistry()
	if err := left.Merge(snaps[0]); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(snaps[1]); err != nil {
		t.Fatal(err)
	}
	ab := NewRegistry()
	if err := ab.Merge(snaps[1]); err != nil {
		t.Fatal(err)
	}
	if err := ab.Merge(snaps[2]); err != nil {
		t.Fatal(err)
	}
	right := NewRegistry()
	if err := right.Merge(snaps[0]); err != nil {
		t.Fatal(err)
	}
	if err := right.Merge(ab.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(snaps[2]); err != nil {
		t.Fatal(err)
	}
	lj, _ := json.Marshal(left.Snapshot())
	rj, _ := json.Marshal(right.Snapshot())
	if string(lj) != string(rj) {
		t.Fatalf("associativity: %s vs %s", lj, rj)
	}

	// Exactness: merged counters are the integer sums of the inputs.
	sum := NewRegistry()
	for _, s := range snaps {
		if err := sum.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	snap := sum.Snapshot()
	if got := snap.Counters["frames_total"]; got != 3+4+5 {
		t.Fatalf("frames_total = %d, want 12", got)
	}
	if got := snap.Gauges["resident"]; got != 0+10+20 {
		t.Fatalf("resident = %d, want 30", got)
	}
	if got := snap.Histograms["latency"].Count; got != 6 {
		t.Fatalf("latency count = %d, want 6", got)
	}

	// Nil-receiver and nil-merge stay inert.
	var nilr *Registry
	if err := nilr.Merge(snaps[0]); err != nil {
		t.Fatalf("nil registry merge: %v", err)
	}
}
