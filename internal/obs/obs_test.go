package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"syncstamp/internal/decomp"
	"syncstamp/internal/vector"
)

// TestDisabledZeroAlloc pins the package's core promise: with observability
// disabled (nil receivers everywhere), every hook is allocation-free.
func TestDisabledZeroAlloc(t *testing.T) {
	stamp := vector.V{1, 2, 3}
	var o *Obs
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var r *Registry
	ev := Event{Proc: 1, Peer: 2, Phase: PhaseSyn, Stamp: stamp}
	allocs := testing.AllocsPerRun(200, func() {
		o.Rendezvous(0, 1, 2, PhaseSyn, stamp)
		o.Internal(0, 1, stamp, "note")
		_ = o.Now()
		c.Add(1)
		g.Set(7)
		h.Observe(42)
		tr.Emit(ev)
		_ = c.Value()
		_ = g.Value()
		_ = tr.Len()
		r.Counter("x").Add(1) // nil registry → nil counter → no-op
	})
	if allocs != 0 {
		t.Fatalf("disabled hooks allocated %v times per run, want 0", allocs)
	}
}

// TestEnabledInstrumentsZeroAlloc: once resolved, the hot-path instrument
// operations themselves are allocation-free too.
func TestEnabledInstrumentsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", TickEdges)
	allocs := testing.AllocsPerRun(200, func() {
		c.Add(1)
		g.Set(3)
		h.Observe(9)
	})
	if allocs != 0 {
		t.Fatalf("enabled instruments allocated %v times per run, want 0", allocs)
	}
}

func TestNilRegistryReturnsNilInstruments(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", TickEdges) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40})
	for _, v := range []int64{1, 10, 11, 20, 39, 40, 41, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 2, 2} // ≤10, ≤20, ≤40, overflow
	if len(s.Counts) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(want))
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Errorf("bucket %d: got %d, want %d", i, s.Counts[i], want[i])
		}
	}
	if s.Count != 8 || s.Sum != 1+10+11+20+39+40+41+1000 {
		t.Errorf("count/sum: got %d/%d", s.Count, s.Sum)
	}
	if q := s.Quantile(0); q != 10 {
		t.Errorf("p0: got %d, want 10", q)
	}
	if q := s.Quantile(0.5); q != 40 {
		t.Errorf("p50: got %d, want 40", q)
	}
	if q := s.Quantile(1); q != 41 {
		t.Errorf("p100 (overflow bucket): got %d, want 41", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile: got %d, want 0", q)
	}
}

func TestHistogramBadEdgesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending edges must panic")
		}
	}()
	NewHistogram([]int64{5, 5})
}

func TestRegistryFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", []int64{1, 2})
	h2 := r.Histogram("h", []int64{100})
	if h1 != h2 {
		t.Fatal("same name must return same histogram")
	}
	if got := h1.Snapshot().Edges; len(got) != 2 {
		t.Fatalf("edges overwritten: %v", got)
	}
	if r.Counter("c") != r.Counter("c") {
		t.Fatal("same name must return same counter")
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zz", "aa", "mm"} {
		r.Counter(name).Add(1)
		r.Gauge(name).Set(2)
		r.Histogram(name, TickEdges).Observe(3)
	}
	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot JSON not stable:\n%s\n%s", a, b)
	}
}

func TestManualClock(t *testing.T) {
	var m Manual
	o := &Obs{Clock: &m}
	if o.Now() != 0 {
		t.Fatal("fresh manual clock must read 0")
	}
	m.Advance(5)
	m.Set(42)
	if o.Now() != 42 {
		t.Fatalf("got %d, want 42", o.Now())
	}
}

func TestTracerSeqPerProcess(t *testing.T) {
	tr := NewTracer()
	tr.Emit(Event{Proc: 1, Phase: PhaseSyn, Stamp: vector.V{1, 0}})
	tr.Emit(Event{Proc: 0, Phase: PhaseMerge, Stamp: vector.V{1, 1}})
	tr.Emit(Event{Proc: 1, Phase: PhaseAdopt, Stamp: vector.V{1, 1}})
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	// Canonical order: proc 0 first, then proc 1's two events in seq order.
	if evs[0].Proc != 0 || evs[0].Seq != 0 {
		t.Errorf("event 0: %+v", evs[0])
	}
	if evs[1].Proc != 1 || evs[1].Seq != 0 || evs[1].Phase != PhaseSyn {
		t.Errorf("event 1: %+v", evs[1])
	}
	if evs[2].Proc != 1 || evs[2].Seq != 1 || evs[2].Phase != PhaseAdopt {
		t.Errorf("event 2: %+v", evs[2])
	}
}

func TestTracerClonesStamp(t *testing.T) {
	tr := NewTracer()
	stamp := vector.V{1, 0}
	tr.Emit(Event{Proc: 0, Phase: PhaseSyn, Stamp: stamp})
	stamp[0] = 99
	if got := tr.Events()[0].Stamp[0]; got != 1 {
		t.Fatalf("stamp not cloned: got %d", got)
	}
}

// sampleTrace emits one two-process rendezvous plus an internal event into
// two tracers with different interleavings; both must export identically.
func sampleTrace() (*Tracer, *Tracer) {
	a := []Event{
		{Node: 0, Proc: 0, Peer: 1, Phase: PhaseSyn, Stamp: vector.V{1, 0}},
		{Node: 0, Proc: 0, Peer: 1, Phase: PhaseAdopt, Stamp: vector.V{1, 1}},
		{Node: 0, Proc: 0, Peer: -1, Phase: PhaseInternal, Stamp: vector.V{1, 1}, Note: "done"},
	}
	b := []Event{
		{Node: 1, Proc: 1, Peer: 0, Phase: PhaseMerge, Stamp: vector.V{1, 1}},
		{Node: 1, Proc: 1, Peer: 0, Phase: PhaseAck, Stamp: vector.V{1, 1}},
	}
	t1, t2 := NewTracer(), NewTracer()
	// Interleaving 1: all of proc 0, then proc 1.
	for _, e := range a {
		t1.Emit(e)
	}
	for _, e := range b {
		t1.Emit(e)
	}
	// Interleaving 2: alternating.
	t2.Emit(a[0])
	t2.Emit(b[0])
	t2.Emit(a[1])
	t2.Emit(b[1])
	t2.Emit(a[2])
	return t1, t2
}

func TestJSONLByteIdenticalAcrossInterleavings(t *testing.T) {
	meta, err := NewMeta(-1, decomp.Figure3a())
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := sampleTrace()
	var b1, b2 bytes.Buffer
	if err := WriteJSONL(&b1, meta, t1.Events()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b2, meta, t2.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("JSONL not byte-identical across interleavings:\n%s\n---\n%s", b1.String(), b2.String())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	dec := decomp.Figure3a()
	meta, err := NewMeta(2, dec)
	if err != nil {
		t.Fatal(err)
	}
	meta.Frames = map[string]FrameStats{"syn": {Frames: 3, Bytes: 120}}
	tr, _ := sampleTrace()
	want := tr.Events()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, meta, want); err != nil {
		t.Fatal(err)
	}
	gotMeta, got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Version != MetaVersion || gotMeta.Node != 2 || gotMeta.N != dec.N() || gotMeta.D != dec.D() {
		t.Fatalf("meta mismatch: %+v", gotMeta)
	}
	if gotMeta.Frames["syn"] != (FrameStats{Frames: 3, Bytes: 120}) {
		t.Fatalf("frames mismatch: %+v", gotMeta.Frames)
	}
	rt, err := gotMeta.Decomposition()
	if err != nil {
		t.Fatal(err)
	}
	if rt.N() != dec.N() || rt.D() != dec.D() {
		t.Fatalf("decomposition round trip: n=%d d=%d", rt.N(), rt.D())
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Node != w.Node || g.Proc != w.Proc || g.Peer != w.Peer || g.Seq != w.Seq ||
			g.Phase != w.Phase || g.Note != w.Note || !vector.Eq(g.Stamp, w.Stamp) {
			t.Errorf("event %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	metaLine := `{"k":"meta","version":1,"node":0,"n":2,"d":2,"dec":""}`
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "no meta record"},
		{"event-first", `{"k":"ev","t":0,"node":0,"proc":0,"seq":0,"phase":"syn","peer":1,"stamp":[1,0]}`, "event before meta"},
		{"duplicate-meta", metaLine + "\n" + metaLine, "duplicate meta"},
		{"unknown-kind", metaLine + "\n" + `{"k":"wat"}`, "unknown record kind"},
		{"bad-phase", metaLine + "\n" + `{"k":"ev","t":0,"node":0,"proc":0,"seq":0,"phase":"nope","peer":1,"stamp":[1,0]}`, "unknown phase"},
		{"proc-range", metaLine + "\n" + `{"k":"ev","t":0,"node":0,"proc":9,"seq":0,"phase":"syn","peer":1,"stamp":[1,0]}`, "out of range"},
		{"bad-json", "not json", "jsonl line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadJSONL(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestCausalLatencies(t *testing.T) {
	evs := []Event{
		{Proc: 0, Seq: 0, Phase: PhaseSyn, Stamp: vector.V{1, 0}},   // sum 1
		{Proc: 0, Seq: 1, Phase: PhaseAdopt, Stamp: vector.V{2, 3}}, // sum 5 → 4
		{Proc: 1, Seq: 0, Phase: PhaseSyn, Stamp: vector.V{0, 1}},   // unmatched
		{Proc: 0, Seq: 2, Phase: PhaseSyn, Stamp: vector.V{3, 3}},   // sum 6
		{Proc: 0, Seq: 3, Phase: PhaseAdopt, Stamp: vector.V{4, 3}}, // sum 7 → 1
	}
	got := CausalLatencies(evs)
	want := []int64{4, 1}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestStampRanksRespectCausality(t *testing.T) {
	evs := []Event{
		{Proc: 0, Seq: 0, Phase: PhaseSyn, Stamp: vector.V{1, 0, 0}},
		{Proc: 1, Seq: 0, Phase: PhaseMerge, Stamp: vector.V{1, 1, 0}},
		{Proc: 2, Seq: 0, Phase: PhaseInternal, Stamp: vector.V{0, 0, 1}}, // concurrent with both
		{Proc: 1, Seq: 1, Phase: PhaseAck, Stamp: vector.V{1, 2, 1}},
	}
	ranks := stampRanks(evs)
	stamps := []vector.V{{1, 0, 0}, {1, 1, 0}, {0, 0, 1}, {1, 2, 1}}
	for _, u := range stamps {
		for _, w := range stamps {
			if vector.Less(u, w) && ranks[u.String()] >= ranks[w.String()] {
				t.Errorf("rank order violates causality: %v (rank %d) !< %v (rank %d)",
					u, ranks[u.String()], w, ranks[w.String()])
			}
		}
	}
}

func TestChromeExportDeterministicAndOrdered(t *testing.T) {
	t1, t2 := sampleTrace()
	var b1, b2 bytes.Buffer
	if err := WriteChrome(&b1, t1.Events()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b2, t2.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("chrome export not byte-identical:\n%s\n---\n%s", b1.String(), b2.String())
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b1.Bytes(), &file); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var send, recv *int64
	for i := range file.TraceEvents {
		e := file.TraceEvents[i]
		if strings.HasPrefix(e.Name, "send") {
			send = &file.TraceEvents[i].TS
		}
		if strings.HasPrefix(e.Name, "recv") {
			recv = &file.TraceEvents[i].TS
		}
	}
	if send == nil || recv == nil {
		t.Fatalf("missing spans in export:\n%s", b1.String())
	}
	// The send span starts at the SYN's pre-merge stamp (1,0), causally
	// before the receive's merged stamp (1,1).
	if *send >= *recv {
		t.Errorf("send span ts %d not before recv span ts %d", *send, *recv)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	o := New()
	o.Metrics.Counter("rendezvous_total").Add(7)
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v\n%s", err, body)
	}
	if snap.Counters["rendezvous_total"] != 7 {
		t.Errorf("/metrics counter: got %d, want 7", snap.Counters["rendezvous_total"])
	}

	code, body = get("/healthz")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("/healthz: status %d body %q", code, body)
	}

	code, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/: status %d", code)
	}
}

func TestPhaseRoundTrip(t *testing.T) {
	for _, ph := range []Phase{PhaseSyn, PhaseMerge, PhaseAck, PhaseAdopt, PhaseInternal} {
		got, err := ParsePhase(ph.String())
		if err != nil || got != ph {
			t.Errorf("round trip %v: got %v, %v", ph, got, err)
		}
	}
	if _, err := ParsePhase("bogus"); err == nil {
		t.Error("ParsePhase must reject unknown names")
	}
}
