package obs

import (
	"sort"
	"sync"
)

// Flight is the always-on flight recorder: a fixed-size ring of the most
// recent trace events, cheap enough to leave enabled in production runs.
// Unlike the Tracer, which accumulates every event for a post-run export,
// the ring bounds memory and is meant to be dumped at the moment something
// goes wrong — a crash, a lost peer, a SIGQUIT — as a causal post-mortem of
// the run's recent past.
//
// A nil *Flight is the disabled state: Record is a zero-allocation no-op.
// Enabled, Record takes one short mutex hold and at most one allocation
// (the stamp clone; slot stamps are reused once the ring has wrapped and
// the capacities match).
type Flight struct {
	mu   sync.Mutex
	buf  []Event
	n    uint64      // total events ever recorded
	seq  map[int]int // next per-process sequence number
	dump func()      // optional hook fired by RequestDump
}

// NewFlight returns a flight recorder holding the last capacity events.
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		return nil
	}
	return &Flight{buf: make([]Event, capacity), seq: make(map[int]int)}
}

// Record stores one event, overwriting the oldest once the ring is full.
// The stamp is cloned into the slot (reusing the slot's previous stamp
// storage when it fits), so callers may keep mutating their vector.
func (f *Flight) Record(e Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	slot := &f.buf[f.n%uint64(len(f.buf))]
	old := slot.Stamp
	*slot = e
	if cap(old) >= len(e.Stamp) {
		slot.Stamp = old[:len(e.Stamp)]
		copy(slot.Stamp, e.Stamp)
	} else {
		slot.Stamp = e.Stamp.Clone()
	}
	slot.Seq = f.seq[e.Proc]
	f.seq[e.Proc]++
	f.n++
	f.mu.Unlock()
}

// Len returns how many events the ring currently holds.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n < uint64(len(f.buf)) {
		return int(f.n)
	}
	return len(f.buf)
}

// Recorded returns the total number of events ever recorded, including
// those the ring has since overwritten.
func (f *Flight) Recorded() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Events returns the surviving ring contents in the deterministic dump
// order: ascending stamp sum first — a linearization consistent with
// happens-before, since along any causal chain the component sum strictly
// grows — with ties broken by the canonical (proc, seq) order. Two runs of
// the same computation whose rings saw the same events dump identically,
// whatever the arrival interleaving was. Stamps are cloned out.
func (f *Flight) Events() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	n := len(f.buf)
	if f.n < uint64(n) {
		n = int(f.n)
	}
	out := make([]Event, n)
	copy(out, f.buf[:n])
	for i := range out {
		out[i].Stamp = out[i].Stamp.Clone()
	}
	f.mu.Unlock()
	SortFlight(out)
	return out
}

// SortFlight sorts events into the flight-dump order: stamp sum, then the
// canonical (proc, seq) order.
func SortFlight(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		si, sj := StampSum(events[i].Stamp), StampSum(events[j].Stamp)
		if si != sj {
			return si < sj
		}
		if events[i].Proc != events[j].Proc {
			return events[i].Proc < events[j].Proc
		}
		return events[i].Seq < events[j].Seq
	})
}

// SetDumpHook installs the callback RequestDump fires — the runtime's
// dump-to-disk path, so external triggers (SIGQUIT, /debug/flight with
// ?dump=1) reach it without the HTTP layer knowing about journals.
func (f *Flight) SetDumpHook(fn func()) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.dump = fn
	f.mu.Unlock()
}

// RequestDump fires the installed dump hook, if any, and reports whether
// one was installed.
func (f *Flight) RequestDump() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	fn := f.dump
	f.mu.Unlock()
	if fn == nil {
		return false
	}
	fn()
	return true
}
