package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"syncstamp/internal/vector"
)

// TestFlightWraparound pins the ring discipline: a full ring overwrites the
// oldest events, the accounting distinguishes held from recorded, and the
// dump holds exactly the newest events in the deterministic stamp order.
func TestFlightWraparound(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Record(Event{Proc: 0, Peer: 1, Phase: PhaseAdopt, Stamp: vector.V{i + 1, 0}})
	}
	if got := f.Recorded(); got != 10 {
		t.Fatalf("recorded %d, want 10", got)
	}
	if got := f.Len(); got != 4 {
		t.Fatalf("ring holds %d, want 4", got)
	}
	events := f.Events()
	if len(events) != 4 {
		t.Fatalf("dump holds %d events, want 4", len(events))
	}
	// The survivors are the newest four (stamps 7..10), in ascending stamp
	// sum — the oldest six were overwritten.
	for i, e := range events {
		if want := i + 7; e.Stamp[0] != want {
			t.Errorf("dump[%d] stamp %v, want [%d 0]", i, e.Stamp, want)
		}
		if want := i + 6; e.Seq != want {
			t.Errorf("dump[%d] seq %d, want %d", i, e.Seq, want)
		}
	}
}

// TestFlightDumpDeterministicAcrossInterleavings: two rings fed the same
// per-process event sequences under different global interleavings dump
// identically — the dump order depends only on the computation.
func TestFlightDumpDeterministicAcrossInterleavings(t *testing.T) {
	a := []Event{
		{Proc: 0, Peer: 1, Phase: PhaseAdopt, Stamp: vector.V{1, 1}},
		{Proc: 0, Peer: -1, Phase: PhaseInternal, Stamp: vector.V{1, 1}, Note: "x"},
	}
	b := []Event{
		{Proc: 1, Peer: 0, Phase: PhaseMerge, Stamp: vector.V{1, 1}},
		{Proc: 1, Peer: 0, Phase: PhaseMerge, Stamp: vector.V{2, 2}},
	}
	f1, f2 := NewFlight(8), NewFlight(8)
	for _, e := range a {
		f1.Record(e)
	}
	for _, e := range b {
		f1.Record(e)
	}
	f2.Record(b[0])
	f2.Record(a[0])
	f2.Record(b[1])
	f2.Record(a[1])
	e1, e2 := f1.Events(), f2.Events()
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("dumps differ across interleavings:\n%v\n%v", e1, e2)
	}
}

// TestFlightRecordAllocs pins the record path's cost: zero allocations
// disabled, at most one (the stamp clone) enabled — and amortized below
// that once the ring wraps and slot stamp storage is reused.
func TestFlightRecordAllocs(t *testing.T) {
	stamp := vector.V{1, 2, 3}
	var disabled *Flight
	if allocs := testing.AllocsPerRun(200, func() {
		disabled.Record(Event{Proc: 1, Phase: PhaseAdopt, Stamp: stamp})
	}); allocs != 0 {
		t.Fatalf("disabled Record allocated %v times per run, want 0", allocs)
	}
	f := NewFlight(64)
	if allocs := testing.AllocsPerRun(200, func() {
		f.Record(Event{Proc: 1, Phase: PhaseAdopt, Stamp: stamp})
	}); allocs > 1 {
		t.Fatalf("enabled Record allocated %v times per run, want <= 1", allocs)
	}
	// After wraparound every slot holds same-capacity stamp storage, so the
	// steady state reuses it: no allocations at all.
	if allocs := testing.AllocsPerRun(200, func() {
		f.Record(Event{Proc: 1, Phase: PhaseAdopt, Stamp: stamp})
	}); allocs != 0 {
		t.Fatalf("steady-state Record allocated %v times per run, want 0", allocs)
	}
}

func TestFlightDumpHook(t *testing.T) {
	f := NewFlight(2)
	if f.RequestDump() {
		t.Fatal("RequestDump with no hook must report false")
	}
	fired := 0
	f.SetDumpHook(func() { fired++ })
	if !f.RequestDump() || fired != 1 {
		t.Fatalf("RequestDump: fired=%d", fired)
	}
	var nilf *Flight
	nilf.SetDumpHook(func() {})
	if nilf.RequestDump() {
		t.Fatal("nil flight must not fire dumps")
	}
}

// TestServeConcurrentScrape hammers the HTTP endpoints while the runtime
// mutates the registry and the flight recorder — the lock discipline must
// hold under the race detector.
func TestServeConcurrentScrape(t *testing.T) {
	o := New()
	o.Flight = NewFlight(32)
	o.Flight.SetDumpHook(func() {})
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				o.Metrics.Counter("rendezvous_total").Add(1)
				o.Metrics.Gauge(fmt.Sprintf("g%d", i%7)).Set(int64(i))
				o.Metrics.Histogram("h", TickEdges).Observe(int64(i))
				o.Rendezvous(0, w, 1-w, PhaseAdopt, vector.V{i, w})
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for _, path := range []string{"/metrics", "/debug/flight", "/debug/flight?dump=1"} {
					resp, err := http.Get(base + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: status %d", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestFlightHTTP pins the /debug/flight response shape and the 404 when the
// recorder is disabled.
func TestFlightHTTP(t *testing.T) {
	o := New()
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled recorder: status %d, want 404", resp.StatusCode)
	}

	o.Flight = NewFlight(8)
	dumped := false
	o.Flight.SetDumpHook(func() { dumped = true })
	o.Rendezvous(2, 0, 1, PhaseAdopt, vector.V{1, 1})
	resp, err = http.Get("http://" + srv.Addr() + "/debug/flight?dump=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight: status %d", resp.StatusCode)
	}
	var out struct {
		Recorded uint64 `json:"recorded"`
		Held     int    `json:"held"`
		Dumped   bool   `json:"dumped"`
		Events   []struct {
			Proc  int    `json:"proc"`
			Phase string `json:"phase"`
			Stamp []int  `json:"stamp"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("/debug/flight is not valid JSON: %v\n%s", err, body)
	}
	if out.Recorded != 1 || out.Held != 1 || !out.Dumped || len(out.Events) != 1 {
		t.Fatalf("unexpected response: %+v", out)
	}
	if !dumped {
		t.Fatal("?dump=1 did not fire the dump hook")
	}
	if out.Events[0].Phase != "adopt" || out.Events[0].Stamp[0] != 1 {
		t.Fatalf("event shape: %+v", out.Events[0])
	}
}
