package obs

import "fmt"

// Canonical metric names shared by the two runtimes, so /metrics output and
// tooling (tsanalyze trace-report, experiments) agree on the vocabulary.
const (
	// MetricRendezvous counts completed rendezvous halves: each participant
	// (sender on adopt, receiver on merge) contributes one.
	MetricRendezvous = "rendezvous_total"
	// MetricInternalEvents counts Section 5 internal events.
	MetricInternalEvents = "internal_events_total"
	// MetricSynAckNS is the sender-side SYN→ACK wait (LatencyEdges).
	MetricSynAckNS = "syn_ack_latency_ns"
	// MetricSendBlockNS is the sender's wait to hand a rendezvous request to
	// the receiver's mailbox (LatencyEdges).
	MetricSendBlockNS = "send_blocking_ns"
	// MetricRecvBlockNS is the receiver's wait for an incoming rendezvous
	// (LatencyEdges).
	MetricRecvBlockNS = "recv_blocking_ns"
	// MetricCausalTicks is the causal latency of completed sends — the stamp
	// growth sum(v(m)) − sum(v_sender) — bucketed on TickEdges. Unlike the
	// wall-clock histograms it is deterministic across interleavings.
	MetricCausalTicks = "causal_latency_ticks"
	// MetricDialRetries counts failed transport dial attempts that were
	// retried.
	MetricDialRetries = "dial_retries_total"
	// MetricDroppedFrames counts frames a node's read loops discarded (late
	// ACKs after a rendezvous timeout, unexpected kinds on a data stream).
	MetricDroppedFrames = "dropped_frames_total"
	// MetricRetransmits counts SYN frames re-sent by a parked sender whose
	// ACK had not arrived within the current backoff interval.
	MetricRetransmits = "retransmits_total"
	// MetricReconnects counts data connections re-established after a peer
	// loss (session resume via a higher HELLO epoch).
	MetricReconnects = "reconnects_total"
	// MetricDedupFrames counts duplicate SYN frames suppressed by the
	// receiver's idempotent dedup (re-ACKed from the merge cache or dropped).
	MetricDedupFrames = "dedup_frames_total"
	// MetricBackoffNS is the retransmission backoff chosen after each resend
	// (LatencyEdges). Deterministic: the sequence of values depends only on
	// how many resends a rendezvous needed, not on wall-clock time.
	MetricBackoffNS = "retransmit_backoff_ns"
	// MetricSpuriousRetransmits counts retransmissions proven unnecessary:
	// the ACK arrived so soon after the retransmission that it must answer
	// an earlier copy (async mode's Eifel-style detection). High values mean
	// the RTT estimator is timing out too eagerly.
	MetricSpuriousRetransmits = "spurious_retransmits_total"
	// MetricSuspicions counts transitions of a peer's health FSM into the
	// suspect state (async mode). Each suspicion arms the degradation
	// policy; a recovery (evidence before the window expires) disarms it.
	MetricSuspicions = "peer_suspicions_total"
	// MetricPeerRTTNS is the per-peer round-trip-time histogram of accepted
	// RTT samples (LatencyEdges), registered per peer node via PeerMetric.
	// Its quantiles are the RunInfo p50/p99 source.
	MetricPeerRTTNS = "peer_rtt_ns"
	// MetricPeerHealth gauges a peer's final health FSM state, registered
	// per peer node via PeerMetric: 0 healthy, 1 degraded, 2 suspect, 3
	// excluded.
	MetricPeerHealth = "peer_health_state"
	// MetricJournalAppends gauges the crash-recovery journal's committed
	// record count at end of run (recovery mode with a journal only).
	MetricJournalAppends = "journal_appends_total"
	// MetricJournalSyncs gauges the fsync batches that made those records
	// durable. Syncs well below appends is group commit at work; equal
	// counts mean fsync-per-record (the -journal-sync=each baseline).
	MetricJournalSyncs = "journal_syncs_total"
	// MetricSegmentsSpilled gauges the verified segments a sharded
	// collector tree spilled to disk over a run (CollectTree only).
	MetricSegmentsSpilled = "collector_segments_spilled_total"
	// MetricSpillBytes gauges the byte volume of those spilled segments.
	MetricSpillBytes = "collector_spill_bytes_total"
	// MetricShardsVerified gauges the shard summaries that reached the
	// collector tree's root — equal to the tree width on a healthy run.
	MetricShardsVerified = "collector_shards_verified_total"
	// MetricShardRecords, MetricShardSegments, and MetricShardSpillBytes
	// are a collector-tree leaf's shard counters: records ingested,
	// segments spilled, and spill bytes written. Each leaf counts into its
	// own registry and ships the snapshot to the root on a METRICS frame,
	// so the root's rollup totals are exactly the leaf sums.
	MetricShardRecords    = "shard_records_total"
	MetricShardSegments   = "shard_segments_total"
	MetricShardSpillBytes = "shard_spill_bytes_total"
	// MetricLoadOffered and MetricLoadAchieved count the messages a load
	// driver scheduled versus the messages it completed; their per-second
	// rates over the run window are the open-loop offered-vs-achieved
	// comparison.
	MetricLoadOffered  = "load_offered_msgs_total"
	MetricLoadAchieved = "load_achieved_msgs_total"
	// MetricLoadLatencyNS is a load driver's per-request latency histogram
	// (LatencyEdges), the SLO percentile source.
	MetricLoadLatencyNS = "load_request_latency_ns"
)

// ProcMetric derives the per-process variant of a metric name.
func ProcMetric(name string, proc int) string {
	return fmt.Sprintf("%s_p%d", name, proc)
}

// PeerMetric derives the per-peer-node variant of a metric name.
func PeerMetric(name string, node int) string {
	return fmt.Sprintf("%s_n%d", name, node)
}

// FrameMetrics derives the per-frame-kind wire traffic counter names.
func FrameMetrics(kind string) (frames, bytes string) {
	return "wire_frames_" + kind, "wire_bytes_" + kind
}

// Instruments is a runtime's set of resolved instruments. Resolution
// (NewInstruments) happens once at startup; afterwards the hot paths touch
// only the atomic instruments. Resolving against a nil registry yields nil
// instruments throughout, so a disabled runtime pays nothing.
type Instruments struct {
	Rendezvous     *Counter
	InternalEvents *Counter
	DialRetries    *Counter
	DroppedFrames  *Counter
	Retransmits    *Counter
	Reconnects     *Counter
	DedupFrames    *Counter
	Spurious       *Counter
	Suspicions     *Counter
	SynAckNS       *Histogram
	SendBlockNS    *Histogram
	RecvBlockNS    *Histogram
	CausalTicks    *Histogram
	BackoffNS      *Histogram

	// procRendezvous is indexed by process id; nil entries no-op.
	procRendezvous []*Counter
}

// NewInstruments resolves the canonical instruments against r, registering
// per-process rendezvous counters for n processes.
func NewInstruments(r *Registry, n int) Instruments {
	ins := Instruments{
		Rendezvous:     r.Counter(MetricRendezvous),
		InternalEvents: r.Counter(MetricInternalEvents),
		DialRetries:    r.Counter(MetricDialRetries),
		DroppedFrames:  r.Counter(MetricDroppedFrames),
		Retransmits:    r.Counter(MetricRetransmits),
		Reconnects:     r.Counter(MetricReconnects),
		DedupFrames:    r.Counter(MetricDedupFrames),
		Spurious:       r.Counter(MetricSpuriousRetransmits),
		Suspicions:     r.Counter(MetricSuspicions),
		SynAckNS:       r.Histogram(MetricSynAckNS, LatencyEdges),
		SendBlockNS:    r.Histogram(MetricSendBlockNS, LatencyEdges),
		RecvBlockNS:    r.Histogram(MetricRecvBlockNS, LatencyEdges),
		CausalTicks:    r.Histogram(MetricCausalTicks, TickEdges),
		BackoffNS:      r.Histogram(MetricBackoffNS, LatencyEdges),
	}
	if r != nil {
		ins.procRendezvous = make([]*Counter, n)
		for i := range ins.procRendezvous {
			ins.procRendezvous[i] = r.Counter(ProcMetric(MetricRendezvous, i))
		}
	}
	return ins
}

// Proc returns process p's rendezvous counter (nil, hence no-op, when
// disabled or out of range).
func (i *Instruments) Proc(p int) *Counter {
	if p < 0 || p >= len(i.procRendezvous) {
		return nil
	}
	return i.procRendezvous[p]
}

// StampSum is the component sum of a stamp — the causal-latency coordinate.
func StampSum(v []int) int64 {
	var s int64
	for _, x := range v {
		s += int64(x)
	}
	return s
}
