package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. A nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 when nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last set value; 0 when nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded histogram with bucket edges fixed at construction
// (upper bounds, ascending; one implicit overflow bucket above the last
// edge). Fixed edges keep two runs of the same computation bucketing
// identically — a determinism rule of this package. A nil *Histogram is a
// no-op.
type Histogram struct {
	edges      []int64
	buckets    []atomic.Int64 // len(edges)+1; buckets[i] counts v <= edges[i], last is overflow
	count, sum atomic.Int64
}

// NewHistogram returns a histogram with the given ascending upper-bound
// edges. Typically obtained through Registry.Histogram instead.
func NewHistogram(edges []int64) *Histogram {
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic(fmt.Sprintf("obs: histogram edges not ascending at %d: %v", i, edges))
		}
	}
	h := &Histogram{edges: append([]int64(nil), edges...)}
	h.buckets = make([]atomic.Int64, len(edges)+1)
	return h
}

// Observe records one value. Allocation-free.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.edges) && v > h.edges[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Edges are the bucket upper bounds; Counts has one extra final entry
	// for observations above the last edge.
	Edges  []int64 `json:"edges"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Edges:  append([]int64(nil), h.edges...),
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the edge
// of the bucket the quantile falls in, or the last edge + 1 for the
// overflow bucket. Zero observations yield 0.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen > rank {
			if i < len(s.Edges) {
				return s.Edges[i]
			}
			return s.Edges[len(s.Edges)-1] + 1
		}
	}
	return s.Edges[len(s.Edges)-1] + 1
}

// Default bucket edges.
var (
	// LatencyEdges buckets wall-clock latencies in nanoseconds, 1µs–10s,
	// on a log-spaced 1-2-5 ladder. Decade-only buckets made p50 and p99
	// quantize to the same edge on any workload whose latencies span less
	// than 10x (visible in early BENCH_loop.json artifacts); three edges
	// per decade keeps the quantile bound within a factor ~2.5 of the
	// true value while the scan stays a couple dozen compares.
	LatencyEdges = []int64{
		1e3, 2e3, 5e3,
		1e4, 2e4, 5e4,
		1e5, 2e5, 5e5,
		1e6, 2e6, 5e6,
		1e7, 2e7, 5e7,
		1e8, 2e8, 5e8,
		1e9, 2e9, 5e9,
		1e10,
	}
	// TickEdges buckets logical (causal) latencies in ticks.
	TickEdges = []int64{1, 2, 4, 8, 16, 32, 64, 128}
)

// Merge folds a snapshot's observations into the live histogram. The
// snapshot must have the same edges (the cluster rollup only ever merges
// instruments registered under the same name, which fixes the edges);
// mismatched edges are an error, not a silent re-bucketing.
func (h *Histogram) Merge(s HistogramSnapshot) error {
	if h == nil {
		return nil
	}
	if len(s.Edges) == 0 && s.Count == 0 {
		return nil // empty snapshot (e.g. from a nil histogram)
	}
	if len(s.Edges) != len(h.edges) {
		return fmt.Errorf("obs: merging histogram with %d edges into %d", len(s.Edges), len(h.edges))
	}
	for i := range h.edges {
		if s.Edges[i] != h.edges[i] {
			return fmt.Errorf("obs: merging histogram with edge %d=%d into %d", i, s.Edges[i], h.edges[i])
		}
	}
	if len(s.Counts) != len(h.buckets) {
		return fmt.Errorf("obs: histogram snapshot has %d counts for %d buckets", len(s.Counts), len(h.buckets))
	}
	for i, c := range s.Counts {
		h.buckets[i].Add(c)
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	return nil
}

// Registry holds a run's named metrics. Registration (Counter, Gauge,
// Histogram) locks and may allocate — runtimes resolve their instruments
// once at startup; the instruments themselves are then lock- and
// allocation-free. A nil *Registry returns nil instruments, which no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given edges
// on first use. Later calls ignore edges (the first registration wins).
func (r *Registry) Histogram(name string, edges []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(edges)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry, JSON-marshalable with
// deterministic (sorted) key order.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Merge folds a snapshot into the registry: counters and gauges add (the
// rollup semantics — a cluster total is the sum of its nodes), histograms
// merge bucket-wise. Missing instruments are created, histograms with the
// snapshot's own edges, so merging into an empty registry reproduces the
// snapshot exactly. Merge is commutative and associative over snapshots,
// which is what lets the collector tree roll registries up in any leaf
// order.
func (r *Registry) Merge(s Snapshot) error {
	if r == nil {
		return nil
	}
	var names []string
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r.Counter(name).Add(s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := r.Gauge(name)
		g.Set(g.Value() + s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hs := s.Histograms[name]
		if len(hs.Edges) == 0 {
			continue // snapshot of a nil/empty histogram carries nothing
		}
		if err := r.Histogram(name, hs.Edges).Merge(hs); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

// Snapshot copies every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Counters[name] = r.counters[name].Value()
	}
	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Gauges[name] = r.gauges[name].Value()
	}
	names = names[:0]
	for name := range r.histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Histograms[name] = r.histograms[name].Snapshot()
	}
	return s
}
