package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"syncstamp/internal/vector"
)

// This file is the causal critical-path profiler: given the recorded events
// of a run (one node's trace or several merged), it reconstructs the
// happens-before DAG of the completed work from the stamps alone —
// Theorem 4 again: vector.Less IS the causal order — and extracts the
// longest weighted causal chain, per-process and per-link slack, and a
// ranked blame table of rendezvous links.
//
// Weights are causal ticks (stamp-sum growth), not wall clocks: the
// deterministic sinks of this package never carry wall time, so the report
// is byte-identical across runs of the same computation — the property
// every other obs artifact has, and the one that makes a profile diffable
// across PRs. A step's "+ticks" is how much of the final clock the step
// accounts for beyond its critical predecessor; the end-to-end length is
// the total causal work the slowest chain had to serialize.

// CritStep is one step of the critical path.
type CritStep struct {
	// Phase is PhaseAdopt for a rendezvous step, PhaseInternal for an
	// internal event riding the path.
	Phase Phase
	// Proc and Peer are the sender and receiver for a rendezvous step
	// (Peer is -1 for internal events).
	Proc, Peer int
	// Stamp is the step's agreed stamp.
	Stamp vector.V
	// Ticks is the causal-tick growth this step contributes along the
	// path: StampSum(Stamp) minus the previous step's sum.
	Ticks int64
}

// ProcSlack is one process's distance off the critical path.
type ProcSlack struct {
	Proc int
	// EndSum is the stamp sum of the process's causally latest event —
	// its causal-tick span.
	EndSum int64
	// Slack is Length − EndSum; 0 means the process ends on the critical
	// path.
	Slack int64
}

// LinkBlame is one directed rendezvous link's share of the critical path.
type LinkBlame struct {
	// From and To are the sender and receiver processes.
	From, To int
	// Msgs is how many messages the link carried in total.
	Msgs int
	// PathSteps and PathTicks are the link's steps on the critical path
	// and the causal ticks those steps contributed.
	PathSteps int
	PathTicks int64
	// Slack is Length minus the largest stamp sum the link reached; 0
	// means the link's latest message sits at the end of the critical
	// path.
	Slack int64
}

// CritPath is the full critical-path analysis of a run.
type CritPath struct {
	// Length is the end-to-end critical-path length in causal ticks — the
	// maximum stamp sum any event reached. It is ≥ every process's
	// causal-tick span by construction (a process's own program order is
	// one causal chain).
	Length int64
	// Steps is the critical path itself, causally ordered.
	Steps []CritStep
	// Procs is the per-process slack table, by process id.
	Procs []ProcSlack
	// Links is the blame table: every rendezvous link, ranked by path
	// ticks (descending), then slack (ascending), then link id.
	Links []LinkBlame
}

// critNode is one distinct completed-work stamp in the happens-before DAG.
type critNode struct {
	stamp vector.V
	sum   int64
	key   string
	// phase is PhaseAdopt for a rendezvous, PhaseInternal otherwise.
	phase Phase
	// from/to are sender→receiver for a rendezvous; proc/-1 for internal.
	from, to int
}

// CriticalPath analyzes the completed work of the given events (merged from
// one or more traces; any order). Only completed-work phases — adopt,
// merge, internal — define DAG nodes; SYN/ACK pre-merge vectors are
// protocol intermediates, not work. The result is identical for every
// interleaving of the same computation.
func CriticalPath(events []Event) *CritPath {
	evs := append([]Event(nil), events...)
	SortEvents(evs)

	// Collect the distinct completed-work stamps, remembering each one's
	// classification and endpoints. A rendezvous stamp may also carry
	// later internal events (internal events do not advance the clock);
	// the rendezvous wins the classification.
	index := make(map[string]int)
	var nodes []critNode
	procEnd := make(map[int]int64) // proc -> max stamp sum it reached
	linkMsgs := make(map[[2]int]int)
	linkEnd := make(map[[2]int]int64)
	note := func(proc int, sum int64) {
		if sum > procEnd[proc] {
			procEnd[proc] = sum
		}
	}
	for _, e := range evs {
		if e.Phase != PhaseAdopt && e.Phase != PhaseMerge && e.Phase != PhaseInternal {
			continue
		}
		sum := StampSum(e.Stamp)
		note(e.Proc, sum)
		k := e.Stamp.String()
		i, ok := index[k]
		if !ok {
			i = len(nodes)
			index[k] = i
			nodes = append(nodes, critNode{
				stamp: e.Stamp, sum: sum, key: k,
				phase: PhaseInternal, from: e.Proc, to: -1,
			})
		}
		if e.Phase == PhaseAdopt || e.Phase == PhaseMerge {
			from, to := e.Proc, e.Peer
			if e.Phase == PhaseMerge {
				from, to = e.Peer, e.Proc
			}
			if nodes[i].phase != PhaseAdopt {
				nodes[i].phase = PhaseAdopt
				nodes[i].from, nodes[i].to = from, to
			}
		}
	}
	cp := &CritPath{}
	if len(nodes) == 0 {
		return cp
	}

	// Per-link totals over all messages (each message = one distinct
	// rendezvous stamp).
	for _, nd := range nodes {
		if nd.phase != PhaseAdopt {
			continue
		}
		l := [2]int{nd.from, nd.to}
		linkMsgs[l]++
		if nd.sum > linkEnd[l] {
			linkEnd[l] = nd.sum
		}
	}

	// The path's sink: the maximum stamp sum (ties broken by smallest
	// key — the stampRanks convention). Along any causal chain the sum
	// strictly grows, so the sink's sum is the end-to-end length and no
	// chain can exceed it.
	sink := 0
	for i := 1; i < len(nodes); i++ {
		if nodes[i].sum > nodes[sink].sum ||
			(nodes[i].sum == nodes[sink].sum && nodes[i].key < nodes[sink].key) {
			sink = i
		}
	}
	cp.Length = nodes[sink].sum

	// Walk the chain backwards: from each node, its critical predecessor
	// is the causally-preceding node with the largest sum (smallest key on
	// ties) — the tightest dependency, which attributes the smallest tick
	// delta to each step and so yields the longest chain realizing the
	// sink's clock.
	var chain []int
	for cur := sink; ; {
		chain = append(chain, cur)
		pred := -1
		for j := range nodes {
			if j == cur || !vector.Less(nodes[j].stamp, nodes[cur].stamp) {
				continue
			}
			if pred < 0 || nodes[j].sum > nodes[pred].sum ||
				(nodes[j].sum == nodes[pred].sum && nodes[j].key < nodes[pred].key) {
				pred = j
			}
		}
		if pred < 0 {
			break
		}
		cur = pred
	}
	// chain is sink→source; reverse it and compute the tick deltas.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	linkPathSteps := make(map[[2]int]int)
	linkPathTicks := make(map[[2]int]int64)
	var prevSum int64
	for _, i := range chain {
		nd := nodes[i]
		step := CritStep{
			Phase: nd.phase, Proc: nd.from, Peer: nd.to,
			Stamp: nd.stamp, Ticks: nd.sum - prevSum,
		}
		prevSum = nd.sum
		cp.Steps = append(cp.Steps, step)
		if nd.phase == PhaseAdopt {
			l := [2]int{nd.from, nd.to}
			linkPathSteps[l]++
			linkPathTicks[l] += step.Ticks
		}
	}

	// Per-process slack, ordered by process id.
	var procs []int
	for p := range procEnd {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		cp.Procs = append(cp.Procs, ProcSlack{Proc: p, EndSum: procEnd[p], Slack: cp.Length - procEnd[p]})
	}

	// Blame table: every link, ranked by path ticks desc, slack asc, link.
	var links [][2]int
	for l := range linkMsgs {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	for _, l := range links {
		cp.Links = append(cp.Links, LinkBlame{
			From: l[0], To: l[1], Msgs: linkMsgs[l],
			PathSteps: linkPathSteps[l], PathTicks: linkPathTicks[l],
			Slack: cp.Length - linkEnd[l],
		})
	}
	sort.SliceStable(cp.Links, func(i, j int) bool {
		a, b := cp.Links[i], cp.Links[j]
		if a.PathTicks != b.PathTicks {
			return a.PathTicks > b.PathTicks
		}
		if a.Slack != b.Slack {
			return a.Slack < b.Slack
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return cp
}

// WriteReport renders the analysis as the deterministic text report
// `tsanalyze critical-path` prints: same events in, same bytes out.
func (c *CritPath) WriteReport(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "critical path: %d causal ticks end-to-end over %d steps\n", c.Length, len(c.Steps))
	for i, s := range c.Steps {
		what := fmt.Sprintf("internal P%d", s.Proc)
		if s.Phase == PhaseAdopt {
			what = fmt.Sprintf("m P%d→P%d", s.Proc, s.Peer)
		}
		fmt.Fprintf(bw, "  %3d  +%-4d %-16s %v\n", i+1, s.Ticks, what, s.Stamp)
	}
	fmt.Fprintln(bw, "per-process slack:")
	fmt.Fprintln(bw, "  proc   end-sum   slack")
	for _, p := range c.Procs {
		fmt.Fprintf(bw, "  P%-5d %-9d %d\n", p.Proc, p.EndSum, p.Slack)
	}
	fmt.Fprintln(bw, "rendezvous-link blame (ranked by critical-path ticks):")
	fmt.Fprintln(bw, "  link       msgs   path-steps   path-ticks   slack")
	for _, l := range c.Links {
		fmt.Fprintf(bw, "  P%d→P%-5d %-6d %-12d %-12d %d\n",
			l.From, l.To, l.Msgs, l.PathSteps, l.PathTicks, l.Slack)
	}
	return bw.Flush()
}
