package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the run's observability endpoints:
//
//	/metrics        JSON snapshot of the metrics registry (expvar-style)
//	/healthz        liveness probe
//	/debug/pprof/*  the standard pprof profiles
//
// The pprof handlers are registered on this mux explicitly rather than
// relying on net/http/pprof's DefaultServeMux side effects.
func Handler(o *Obs) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var snap Snapshot
		if o != nil {
			snap = o.Metrics.Snapshot()
		} else {
			snap = (*Registry)(nil).Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoints on addr (e.g. "127.0.0.1:0") and
// returns immediately; requests are handled until Close.
func Serve(addr string, o *Obs) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(o)}}
	go func() {
		// Serve returns http.ErrServerClosed after Close; nothing to do.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address, useful with ":0" listeners.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
