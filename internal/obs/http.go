package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the run's observability endpoints:
//
//	/metrics        JSON snapshot of the metrics registry (expvar-style)
//	/healthz        liveness probe
//	/debug/flight   the flight recorder's ring, stamp-sorted JSON; ?dump=1
//	                additionally triggers the runtime's dump-to-disk hook
//	/debug/pprof/*  the standard pprof profiles
//
// The pprof handlers are registered on this mux explicitly rather than
// relying on net/http/pprof's DefaultServeMux side effects.
func Handler(o *Obs) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var snap Snapshot
		if o != nil {
			snap = o.Metrics.Snapshot()
		} else {
			snap = (*Registry)(nil).Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		var fl *Flight
		if o != nil {
			fl = o.Flight
		}
		if fl == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		dumped := false
		if r.URL.Query().Get("dump") == "1" {
			dumped = fl.RequestDump()
		}
		events := fl.Events()
		out := flightJSON{
			Recorded: fl.Recorded(),
			Held:     len(events),
			Dumped:   dumped,
			Events:   make([]evJSON, 0, len(events)),
		}
		for t, e := range events {
			stamp := make([]int, len(e.Stamp))
			copy(stamp, e.Stamp)
			out.Events = append(out.Events, evJSON{
				K: "ev", T: t, Node: e.Node, Proc: e.Proc, Seq: e.Seq,
				Phase: e.Phase.String(), Peer: e.Peer, Stamp: stamp, Note: e.Note,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// flightJSON is the /debug/flight response shape: the ring's accounting
// plus its surviving events in the deterministic flight-dump order, each in
// the same record shape JSONL uses.
type flightJSON struct {
	Recorded uint64   `json:"recorded"`
	Held     int      `json:"held"`
	Dumped   bool     `json:"dumped,omitempty"`
	Events   []evJSON `json:"events"`
}

// Server is a running observability HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoints on addr (e.g. "127.0.0.1:0") and
// returns immediately; requests are handled until Close.
func Serve(addr string, o *Obs) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(o)}}
	go func() {
		// Serve returns http.ErrServerClosed after Close; nothing to do.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address, useful with ":0" listeners.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
