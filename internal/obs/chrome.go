package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"syncstamp/internal/vector"
)

// chromeEvent is one record of the Chrome trace_event format (the JSON
// object flavor with a top-level traceEvents array). Field order is fixed.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// stampRanks topologically sorts the distinct stamps of the events on
// vector.Less (Theorem 4: the vector order IS the causal order ↦, so any
// linear extension of it is a valid display timeline) and returns each
// stamp's rank. Kahn's algorithm with a deterministic tie-break — smallest
// component sum first, then lexicographically smallest rendering — makes the
// ranking, and hence the export, identical across runs.
func stampRanks(events []Event) map[string]int {
	var stamps []vector.V
	var keys []string
	index := make(map[string]int)
	for _, e := range events {
		k := e.Stamp.String()
		if _, ok := index[k]; !ok {
			index[k] = len(stamps)
			stamps = append(stamps, e.Stamp)
			keys = append(keys, k)
		}
	}
	n := len(stamps)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && vector.Less(stamps[i], stamps[j]) {
				succ[i] = append(succ[i], j)
				indeg[j]++
			}
		}
	}
	sum := func(i int) int {
		s := 0
		for _, x := range stamps[i] {
			s += x
		}
		return s
	}
	before := func(i, j int) bool {
		si, sj := sum(i), sum(j)
		if si != sj {
			return si < sj
		}
		return keys[i] < keys[j]
	}
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	ranks := make(map[string]int, n)
	for rank := 0; rank < n; rank++ {
		best := 0
		for i := 1; i < len(ready); i++ {
			if before(ready[i], ready[best]) {
				best = i
			}
		}
		cur := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		ranks[keys[cur]] = rank
		for _, s := range succ[cur] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return ranks
}

// tickUS spaces topological ranks out on the Chrome timeline so spans have
// visible width.
const tickUS = 10

// WriteChrome writes the events as a Chrome trace_event JSON file
// (chrome://tracing, Perfetto). Timestamps are topological ranks of the
// vector stamps, not wall clocks: causally ordered work is ordered on the
// timeline, concurrent work overlaps, and the file is byte-identical across
// runs. Each process is a thread; completed sends render as one span from
// SYN to adopt, receives as one span from merge to ACK, internal events as
// instants.
func WriteChrome(w io.Writer, events []Event) error {
	evs := append([]Event(nil), events...)
	SortEvents(evs)
	ranks := stampRanks(evs)
	ts := func(e Event) int64 { return int64(ranks[e.Stamp.String()]) * tickUS }

	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	span := func(name string, a, b Event) {
		start, end := ts(a), ts(b)
		if end < start {
			start, end = end, start
		}
		dur := end - start
		if dur == 0 {
			dur = tickUS / 2
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: name, Cat: "rendezvous", Ph: "X", TS: start, Dur: dur,
			PID: a.Node, TID: a.Proc,
			Args: map[string]string{"stamp": b.Stamp.String()},
		})
	}

	// Pair each process's phases in sequence order: a send is SYN…adopt, a
	// receive is the merge/ACK pair (either order — the two runtimes differ).
	pendingSend := make(map[int]*Event)
	pendingRecv := make(map[int]*Event)
	for i := range evs {
		e := evs[i]
		switch e.Phase {
		case PhaseSyn:
			pendingSend[e.Proc] = &evs[i]
		case PhaseAdopt:
			if s := pendingSend[e.Proc]; s != nil {
				span(fmt.Sprintf("send P%d→P%d", e.Proc, e.Peer), *s, e)
				delete(pendingSend, e.Proc)
			}
		case PhaseMerge, PhaseAck:
			if r := pendingRecv[e.Proc]; r != nil {
				span(fmt.Sprintf("recv P%d←P%d", e.Proc, e.Peer), *r, e)
				delete(pendingRecv, e.Proc)
			} else {
				pendingRecv[e.Proc] = &evs[i]
			}
		case PhaseInternal:
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "internal", Cat: "internal", Ph: "i", TS: ts(e),
				PID: e.Node, TID: e.Proc, S: "t",
				Args: map[string]string{"stamp": e.Stamp.String(), "note": e.Note},
			})
		}
	}
	// Unpaired halves (e.g. a run cut off mid-rendezvous) surface as instants
	// rather than vanishing.
	leftover := make([]Event, 0, len(pendingSend)+len(pendingRecv))
	var procs []int
	for p := range pendingSend {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		leftover = append(leftover, *pendingSend[p])
	}
	procs = procs[:0]
	for p := range pendingRecv {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		leftover = append(leftover, *pendingRecv[p])
	}
	SortEvents(leftover)
	for _, e := range leftover {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("unpaired %s P%d⇄P%d", e.Phase, e.Proc, e.Peer),
			Cat:  "rendezvous", Ph: "i", TS: ts(e), PID: e.Node, TID: e.Proc, S: "t",
			Args: map[string]string{"stamp": e.Stamp.String()},
		})
	}

	sort.SliceStable(file.TraceEvents, func(i, j int) bool {
		return file.TraceEvents[i].TS < file.TraceEvents[j].TS
	})
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(file); err != nil {
		return fmt.Errorf("obs: writing chrome trace: %w", err)
	}
	return bw.Flush()
}
