package obs

import (
	"bytes"
	"strings"
	"testing"

	"syncstamp/internal/vector"
)

// critSample is a three-process computation seen from both rendezvous ends:
// m1 P0→P1 at {1,1}, m2 P1→P0 at {2,2}, and an internal event on P2 that
// stays off the critical path.
func critSample() []Event {
	return []Event{
		{Node: 0, Proc: 0, Peer: 1, Seq: 0, Phase: PhaseSyn, Stamp: vector.V{1, 0}},
		{Node: 0, Proc: 0, Peer: 1, Seq: 1, Phase: PhaseAdopt, Stamp: vector.V{1, 1}},
		{Node: 1, Proc: 1, Peer: 0, Seq: 0, Phase: PhaseMerge, Stamp: vector.V{1, 1}},
		{Node: 1, Proc: 1, Peer: 0, Seq: 1, Phase: PhaseAdopt, Stamp: vector.V{2, 2}},
		{Node: 0, Proc: 0, Peer: 1, Seq: 2, Phase: PhaseMerge, Stamp: vector.V{2, 2}},
		{Node: 2, Proc: 2, Peer: -1, Seq: 0, Phase: PhaseInternal, Stamp: vector.V{1, 0}, Note: "idle"},
	}
}

func TestCriticalPathLengthAndSlack(t *testing.T) {
	cp := CriticalPath(critSample())
	// Length is the maximum stamp sum any event reached.
	if cp.Length != 4 {
		t.Fatalf("length %d, want 4", cp.Length)
	}
	// The end-to-end length dominates every process's own causal-tick span.
	for _, p := range cp.Procs {
		if p.EndSum > cp.Length {
			t.Errorf("P%d end-sum %d exceeds path length %d", p.Proc, p.EndSum, cp.Length)
		}
		if p.Slack != cp.Length-p.EndSum {
			t.Errorf("P%d slack %d, want %d", p.Proc, p.Slack, cp.Length-p.EndSum)
		}
	}
	if len(cp.Procs) != 3 {
		t.Fatalf("proc table %+v, want 3 processes", cp.Procs)
	}
	if cp.Procs[0].Slack != 0 || cp.Procs[1].Slack != 0 {
		t.Errorf("P0/P1 end on the path, want slack 0: %+v", cp.Procs[:2])
	}
	if cp.Procs[2].Slack != 3 {
		t.Errorf("P2 slack %d, want 3", cp.Procs[2].Slack)
	}
	// The step ticks telescope to the full length.
	var sum int64
	for _, s := range cp.Steps {
		sum += s.Ticks
	}
	if sum != cp.Length {
		t.Fatalf("step ticks sum to %d, want %d", sum, cp.Length)
	}
	// The last step is m2, the sink rendezvous P1→P0.
	last := cp.Steps[len(cp.Steps)-1]
	if last.Phase != PhaseAdopt || last.Proc != 1 || last.Peer != 0 {
		t.Fatalf("sink step %+v, want m P1→P0", last)
	}
	// Blame table: both links carried one message; the deeper one ranks first.
	if len(cp.Links) != 2 {
		t.Fatalf("links %+v, want 2", cp.Links)
	}
	if cp.Links[0].From != 1 || cp.Links[0].To != 0 || cp.Links[0].Slack != 0 {
		t.Errorf("top blame %+v, want P1→P0 with slack 0", cp.Links[0])
	}
}

// TestCriticalPathDeterministic: the analysis and its report depend only on
// the computation, not on the interleaving the events arrived in.
func TestCriticalPathDeterministic(t *testing.T) {
	evs := critSample()
	rev := make([]Event, len(evs))
	for i, e := range evs {
		rev[len(evs)-1-i] = e
	}
	var b1, b2 bytes.Buffer
	if err := CriticalPath(evs).WriteReport(&b1); err != nil {
		t.Fatal(err)
	}
	if err := CriticalPath(rev).WriteReport(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("report not byte-identical across interleavings:\n%s\n---\n%s", b1.String(), b2.String())
	}
	for _, want := range []string{
		"critical path: 4 causal ticks end-to-end",
		"m P0→P1",
		"m P1→P0",
		"per-process slack:",
		"rendezvous-link blame",
	} {
		if !strings.Contains(b1.String(), want) {
			t.Errorf("report missing %q:\n%s", want, b1.String())
		}
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	cp := CriticalPath(nil)
	if cp.Length != 0 || len(cp.Steps) != 0 || len(cp.Procs) != 0 || len(cp.Links) != 0 {
		t.Fatalf("empty analysis: %+v", cp)
	}
	var buf bytes.Buffer
	if err := cp.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "critical path: 0 causal ticks end-to-end over 0 steps") {
		t.Fatalf("empty report:\n%s", buf.String())
	}
}
