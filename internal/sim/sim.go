// Package sim schedules a synchronous computation in (virtual) time: every
// rendezvous occupies both participants for its duration, and an operation
// starts as soon as all of its participants are free. The resulting makespan
// equals the longest weighted chain through the computation's ▷ structure —
// the timed counterpart of the logical critical path monitoring tools derive
// from timestamps (monitor.CriticalPath). The paper itself is untimed; this
// package is the profiling application its introduction motivates.
package sim

import (
	"fmt"

	"syncstamp/internal/trace"
)

// Durations assigns virtual-time costs to operations.
type Durations struct {
	// Message returns the rendezvous duration of a message (both
	// participants are busy for it).
	Message func(m trace.Msg) int
	// Internal returns the duration of an internal event on proc.
	Internal func(proc int) int
}

// Uniform charges every message d ticks and every internal event dInt.
func Uniform(d, dInt int) Durations {
	return Durations{
		Message:  func(trace.Msg) int { return d },
		Internal: func(int) int { return dInt },
	}
}

// Result is an ASAP (as-soon-as-possible) schedule of a computation.
type Result struct {
	// Start and Finish are indexed by op position in the trace.
	Start, Finish []int
	// Makespan is the completion time of the whole computation.
	Makespan int
	// Busy is the total working time per process.
	Busy []int
	// SerialTime is the sum of all durations (the 1-processor baseline,
	// counting a rendezvous once).
	SerialTime int
}

// Parallelism returns the achieved speedup SerialTime/Makespan.
func (r *Result) Parallelism() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.SerialTime) / float64(r.Makespan)
}

// Schedule computes the ASAP schedule. Because a trace is a linear
// extension of each process's operation order, a single pass assigns each
// op the earliest start compatible with its participants' availability;
// this is optimal for rendezvous scheduling without artificial delays (no
// op could start earlier without violating a per-process order).
func Schedule(tr *trace.Trace, dur Durations) (*Result, error) {
	if dur.Message == nil || dur.Internal == nil {
		return nil, fmt.Errorf("sim: both duration functions are required")
	}
	res := &Result{
		Start:  make([]int, len(tr.Ops)),
		Finish: make([]int, len(tr.Ops)),
		Busy:   make([]int, tr.N),
	}
	free := make([]int, tr.N)
	msgIdx := 0
	for i, op := range tr.Ops {
		switch op.Kind {
		case trace.OpMessage:
			m := trace.Msg{Index: msgIdx, From: op.From, To: op.To}
			msgIdx++
			d := dur.Message(m)
			if d < 0 {
				return nil, fmt.Errorf("sim: negative duration for message %d", m.Index)
			}
			start := free[op.From]
			if free[op.To] > start {
				start = free[op.To]
			}
			res.Start[i] = start
			res.Finish[i] = start + d
			free[op.From] = start + d
			free[op.To] = start + d
			res.Busy[op.From] += d
			res.Busy[op.To] += d
			res.SerialTime += d
		case trace.OpInternal:
			d := dur.Internal(op.Proc)
			if d < 0 {
				return nil, fmt.Errorf("sim: negative duration for internal op %d", i)
			}
			res.Start[i] = free[op.Proc]
			res.Finish[i] = free[op.Proc] + d
			free[op.Proc] += d
			res.Busy[op.Proc] += d
			res.SerialTime += d
		default:
			return nil, fmt.Errorf("sim: op %d has invalid kind %d", i, int(op.Kind))
		}
		if res.Finish[i] > res.Makespan {
			res.Makespan = res.Finish[i]
		}
	}
	return res, nil
}
