package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syncstamp/internal/graph"
	"syncstamp/internal/trace"
)

func TestRingIsFullySerial(t *testing.T) {
	tr := trace.RingToken(5, 3)
	res, err := Schedule(tr, Uniform(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	// A circulating token is one chain: no overlap at all.
	if res.Makespan != res.SerialTime {
		t.Fatalf("makespan %d != serial %d for a pure chain", res.Makespan, res.SerialTime)
	}
	if res.Parallelism() != 1 {
		t.Fatalf("parallelism = %v, want 1", res.Parallelism())
	}
}

func TestDisjointPairsFullyParallel(t *testing.T) {
	tr := &trace.Trace{N: 4}
	for k := 0; k < 6; k++ {
		tr.MustAppend(trace.Message(0, 1))
		tr.MustAppend(trace.Message(2, 3))
	}
	res, err := Schedule(tr, Uniform(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 18 { // 6 rendezvous of 3 per pair, in parallel
		t.Fatalf("makespan = %d, want 18", res.Makespan)
	}
	if res.Parallelism() != 2 {
		t.Fatalf("parallelism = %v, want 2", res.Parallelism())
	}
}

func TestInternalEventsDelayOwner(t *testing.T) {
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Internal(0))   // 5 ticks on P0
	tr.MustAppend(trace.Message(0, 1)) // must wait for it
	res, err := Schedule(tr, Uniform(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Start[1] != 5 || res.Finish[1] != 6 {
		t.Fatalf("message start=%d finish=%d", res.Start[1], res.Finish[1])
	}
	if res.Busy[0] != 6 || res.Busy[1] != 1 {
		t.Fatalf("busy = %v", res.Busy)
	}
}

func TestScheduleErrors(t *testing.T) {
	tr := &trace.Trace{N: 2}
	tr.MustAppend(trace.Message(0, 1))
	if _, err := Schedule(tr, Durations{}); err == nil {
		t.Fatal("missing duration functions accepted")
	}
	negMsg := Durations{
		Message:  func(trace.Msg) int { return -1 },
		Internal: func(int) int { return 0 },
	}
	if _, err := Schedule(tr, negMsg); err == nil {
		t.Fatal("negative message duration accepted")
	}
	trI := &trace.Trace{N: 2}
	trI.MustAppend(trace.Internal(0))
	negInt := Durations{
		Message:  func(trace.Msg) int { return 1 },
		Internal: func(int) int { return -2 },
	}
	if _, err := Schedule(trI, negInt); err == nil {
		t.Fatal("negative internal duration accepted")
	}
	bad := &trace.Trace{N: 2, Ops: []trace.Op{{Kind: trace.OpKind(9)}}}
	if _, err := Schedule(bad, Uniform(1, 1)); err == nil {
		t.Fatal("invalid op kind accepted")
	}
}

func TestEmptySchedule(t *testing.T) {
	res, err := Schedule(&trace.Trace{N: 3}, Uniform(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || res.Parallelism() != 0 {
		t.Fatalf("empty schedule: %+v", res)
	}
}

// bruteLongestPath builds the dependency DAG explicitly (edges from each
// op to the next op of every participant) and computes the weighted longest
// path by memoized DFS — an independent check of the ASAP makespan.
func bruteLongestPath(tr *trace.Trace, dur Durations) int {
	n := len(tr.Ops)
	weight := make([]int, n)
	adj := make([][]int, n)
	lastOf := make([]int, tr.N)
	for p := range lastOf {
		lastOf[p] = -1
	}
	msgIdx := 0
	for i, op := range tr.Ops {
		var procs []int
		switch op.Kind {
		case trace.OpMessage:
			weight[i] = dur.Message(trace.Msg{Index: msgIdx, From: op.From, To: op.To})
			msgIdx++
			procs = []int{op.From, op.To}
		case trace.OpInternal:
			weight[i] = dur.Internal(op.Proc)
			procs = []int{op.Proc}
		}
		for _, p := range procs {
			if prev := lastOf[p]; prev != -1 {
				adj[prev] = append(adj[prev], i)
			}
			lastOf[p] = i
		}
	}
	memo := make([]int, n)
	for i := range memo {
		memo[i] = -1
	}
	var dfs func(i int) int
	dfs = func(i int) int {
		if memo[i] >= 0 {
			return memo[i]
		}
		best := 0
		for _, j := range adj[i] {
			if v := dfs(j); v > best {
				best = v
			}
		}
		memo[i] = weight[i] + best
		return memo[i]
	}
	best := 0
	for i := 0; i < n; i++ {
		if v := dfs(i); v > best {
			best = v
		}
	}
	return best
}

// Property: the ASAP makespan equals the weighted longest path of the
// dependency DAG, and basic bounds hold.
func TestQuickMakespanEqualsLongestPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(7), 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{
			Messages:     1 + rng.Intn(40),
			InternalProb: 0.3,
		}, rng)
		dur := Durations{
			Message:  func(m trace.Msg) int { return 1 + (m.From+m.To)%5 },
			Internal: func(p int) int { return p % 3 },
		}
		res, err := Schedule(tr, dur)
		if err != nil {
			return false
		}
		if res.Makespan != bruteLongestPath(tr, dur) {
			return false
		}
		for _, b := range res.Busy {
			if b > res.Makespan {
				return false
			}
		}
		for i := range res.Start {
			if res.Start[i] > res.Finish[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the schedule is linearization-independent — replaying the same
// computation in a different valid order yields the same makespan.
func TestQuickLinearizationIndependent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(3+rng.Intn(5), 0.5, rng)
		tr := trace.Generate(g, trace.GenOptions{Messages: 1 + rng.Intn(25)}, rng)
		dur := Uniform(2, 1)
		a, err := Schedule(tr, dur)
		if err != nil {
			return false
		}
		// Build another linearization by repeatedly emitting any op whose
		// per-process predecessors are all emitted (greedy from the back of
		// the ready set for variety).
		alt := relinearize(tr, rng)
		b, err := Schedule(alt, dur)
		if err != nil {
			return false
		}
		return a.Makespan == b.Makespan && a.SerialTime == b.SerialTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// relinearize produces a different valid global order of the same
// computation (same per-process projections).
func relinearize(tr *trace.Trace, rng *rand.Rand) *trace.Trace {
	// Per-process queues of op indices.
	queues := make([][]int, tr.N)
	for i, op := range tr.Ops {
		switch op.Kind {
		case trace.OpMessage:
			queues[op.From] = append(queues[op.From], i)
			queues[op.To] = append(queues[op.To], i)
		case trace.OpInternal:
			queues[op.Proc] = append(queues[op.Proc], i)
		}
	}
	heads := make([]int, tr.N)
	out := &trace.Trace{N: tr.N}
	emitted := 0
	for emitted < len(tr.Ops) {
		// Collect ready ops: at the head of every participant's queue.
		var ready []int
		seen := map[int]bool{}
		for p := 0; p < tr.N; p++ {
			if heads[p] >= len(queues[p]) {
				continue
			}
			i := queues[p][heads[p]]
			if seen[i] {
				continue
			}
			seen[i] = true
			op := tr.Ops[i]
			ok := true
			if op.Kind == trace.OpMessage {
				other := op.From
				if other == p {
					other = op.To
				}
				ok = heads[other] < len(queues[other]) && queues[other][heads[other]] == i
			}
			if ok {
				ready = append(ready, i)
			}
		}
		pick := ready[rng.Intn(len(ready))]
		op := tr.Ops[pick]
		out.MustAppend(op)
		switch op.Kind {
		case trace.OpMessage:
			heads[op.From]++
			heads[op.To]++
		case trace.OpInternal:
			heads[op.Proc]++
		}
		emitted++
	}
	return out
}
