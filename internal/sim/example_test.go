package sim_test

import (
	"fmt"

	"syncstamp/internal/sim"
	"syncstamp/internal/trace"
)

// A 4-stage pipeline with 2 items: boundaries 0-1 and 2-3 share no stage,
// so different items overlap and the makespan beats the serial time.
func ExampleSchedule() {
	tr := trace.Pipeline(4, 2)
	res, err := sim.Schedule(tr, sim.Uniform(10, 0))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("hand-offs:", len(res.Start))
	fmt.Println("serial time:", res.SerialTime)
	fmt.Println("makespan:", res.Makespan)
	fmt.Printf("speedup: %.2fx\n", res.Parallelism())
	// Output:
	// hand-offs: 6
	// serial time: 60
	// makespan: 50
	// speedup: 1.20x
}
