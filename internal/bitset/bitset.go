// Package bitset provides a dense, fixed-capacity bitset used by the poset
// machinery to store transitive-closure rows compactly. It is a substrate
// package: the offline algorithm (Section 4 of the paper) computes widths and
// realizers of message posets whose order relation is held in bitset rows.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitset. The zero value is an empty set of
// capacity 0; use New to create a set with room for n bits.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty Set with capacity for bits 0..n-1.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clear removes every bit.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

func (s *Set) sameCap(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}

// Or sets s to the union of s and o.
func (s *Set) Or(o *Set) {
	s.sameCap(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// And sets s to the intersection of s and o.
func (s *Set) And(o *Set) {
	s.sameCap(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// AndNot removes from s every bit set in o.
func (s *Set) AndNot(o *Set) {
	s.sameCap(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Intersects reports whether s and o share a set bit.
func (s *Set) Intersects(o *Set) bool {
	s.sameCap(o)
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o have the same capacity and set bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range o.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// IsSubset reports whether every bit of s is also set in o.
func (s *Set) IsSubset(o *Set) bool {
	s.sameCap(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn with the index of every set bit in increasing order.
// It stops early if fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the indices of all set bits in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as "{1, 4, 7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
