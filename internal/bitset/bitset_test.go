package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len() = %d, want 130", s.Len())
	}
	if s.Any() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", s.Count())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddHasRemove(t *testing.T) {
	s := New(200)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range idx {
		s.Add(i)
	}
	for _, i := range idx {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false after Add", i)
		}
	}
	if s.Count() != len(idx) {
		t.Fatalf("Count() = %d, want %d", s.Count(), len(idx))
	}
	for _, i := range idx {
		s.Remove(i)
		if s.Has(i) {
			t.Errorf("Has(%d) = true after Remove", i)
		}
	}
	if s.Any() {
		t.Fatal("set should be empty after removals")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", i)
				}
			}()
			s.Add(i)
		}()
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched capacity did not panic")
		}
	}()
	a.Or(b)
}

func TestSetOps(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i)
	}

	union := a.Clone()
	union.Or(b)
	inter := a.Clone()
	inter.And(b)
	diff := a.Clone()
	diff.AndNot(b)

	for i := 0; i < 100; i++ {
		inA, inB := i%2 == 0, i%3 == 0
		if union.Has(i) != (inA || inB) {
			t.Errorf("union.Has(%d) = %v", i, union.Has(i))
		}
		if inter.Has(i) != (inA && inB) {
			t.Errorf("inter.Has(%d) = %v", i, inter.Has(i))
		}
		if diff.Has(i) != (inA && !inB) {
			t.Errorf("diff.Has(%d) = %v", i, diff.Has(i))
		}
	}
	if !a.Intersects(b) {
		t.Fatal("a and b share bit 0, Intersects = false")
	}
	if !inter.IsSubset(a) || !inter.IsSubset(b) {
		t.Fatal("intersection must be a subset of both operands")
	}
}

func TestIntersectsDisjoint(t *testing.T) {
	a, b := New(128), New(128)
	a.Add(1)
	b.Add(2)
	if a.Intersects(b) {
		t.Fatal("disjoint sets reported as intersecting")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(70), New(70)
	a.Add(69)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	b.Add(69)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	if a.Equal(New(71)) {
		t.Fatal("sets of different capacity reported equal")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Add(5)
	c := a.Clone()
	c.Add(6)
	if a.Has(6) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Has(5) {
		t.Fatal("clone lost original bit")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := New(300)
	want := []int{3, 64, 65, 190, 299}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order got %v, want %v", got, want)
		}
	}

	var visited int
	s.ForEach(func(int) bool {
		visited++
		return visited < 2
	})
	if visited != 2 {
		t.Fatalf("early stop visited %d, want 2", visited)
	}
}

func TestSliceAndString(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(4)
	s.Add(7)
	got := s.Slice()
	want := []int{1, 4, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice() = %v, want %v", got, want)
		}
	}
	if s.String() != "{1, 4, 7}" {
		t.Fatalf("String() = %q", s.String())
	}
	if New(5).String() != "{}" {
		t.Fatalf("empty String() = %q", New(5).String())
	}
}

func TestClear(t *testing.T) {
	s := New(128)
	for i := 0; i < 128; i++ {
		s.Add(i)
	}
	s.Clear()
	if s.Any() || s.Count() != 0 {
		t.Fatal("Clear left bits behind")
	}
}

// Property: for random membership vectors, Count equals the number of Has
// hits and Slice round-trips through Add.
func TestQuickCountMatchesMembership(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		rng := rand.New(rand.NewSource(seed))
		s := New(n)
		member := make(map[int]bool)
		for k := 0; k < n; k++ {
			if rng.Intn(2) == 0 {
				i := rng.Intn(n)
				s.Add(i)
				member[i] = true
			}
		}
		if s.Count() != len(member) {
			return false
		}
		for _, i := range s.Slice() {
			if !member[i] {
				return false
			}
		}
		rebuilt := New(n)
		for _, i := range s.Slice() {
			rebuilt.Add(i)
		}
		return rebuilt.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity — (a ∪ b) \ b ⊆ a and a \ b disjoint from b.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 150
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
			}
		}
		u := a.Clone()
		u.Or(b)
		u.AndNot(b)
		if !u.IsSubset(a) {
			return false
		}
		d := a.Clone()
		d.AndNot(b)
		return !d.Intersects(b) || !d.Any()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
