// Package load is the open-loop workload driver behind cmd/tsload: it
// simulates large client populations timestamping rendezvous against a
// server pool and streams every logged record through the sharded collector
// tree, so a run's verdict and its resource counters come out of the same
// machinery a distributed deployment uses.
//
// The driver is open-loop: arrivals follow a seeded schedule fixed before
// the run (Poisson or uniform inter-arrival times, Zipf-skewed server
// popularity), so a slow system cannot push back on its own offered load —
// the gap between offered and achieved rate, and the latency percentiles
// measured from each request's scheduled due time, are the signal.
//
// Clients are state, not goroutines: a client is a vector clock, a mutex,
// and a position in its schedule, so millions fit where millions of
// goroutines would not. A fixed pool of workers drives the schedules;
// clients are partitioned across workers (client mod workers), which
// preserves each client's program order without cross-worker coordination,
// and servers are shared under their own locks. Workers = 1 is fully
// deterministic: same config, same logs, same verdict.
package load

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/node"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
)

// Arrival selects the inter-arrival time distribution of a client's
// schedule.
type Arrival string

const (
	// ArrivalPoisson draws exponential inter-arrival times — the classic
	// open-loop arrival process.
	ArrivalPoisson Arrival = "poisson"
	// ArrivalUniform draws uniform inter-arrival times in [0, 2·mean).
	ArrivalUniform Arrival = "uniform"
)

// Config shapes one load run.
type Config struct {
	// Servers and Clients size the client-server topology: processes
	// 0..Servers-1 are servers, the rest clients (graph.ClientServer's
	// numbering). Every client-server channel belongs to the star group
	// rooted at its server, so the vector dimension is Servers.
	Servers int
	Clients int
	// MessagesPerClient is each client's schedule length.
	MessagesPerClient int
	// RatePerSec paces the run: the aggregate offered rate in messages per
	// second. 0 runs unpaced (as fast as the workers go), which measures
	// throughput rather than SLO latency.
	RatePerSec float64
	// Arrival is the inter-arrival distribution (default ArrivalPoisson).
	Arrival Arrival
	// ZipfTheta skews server popularity: 0 uniform, about 1 classic Zipf.
	ZipfTheta float64
	// Seed makes schedules deterministic; runs with equal seeds offer
	// identical workloads.
	Seed int64
	// Workers is the driver goroutine count (default 1, the deterministic
	// mode; raise it to drive the collector tree concurrently).
	Workers int

	// Tree configures the collector the run streams into. Leaves defaults
	// to 1; SpillDir/SegmentRecords/KeepLogs pass through.
	Tree node.TreeConfig

	// Registry, when non-nil, receives the offered/achieved counters and
	// the request latency histogram under the obs.MetricLoad* names.
	Registry *obs.Registry
}

// Result is a load run's outcome.
type Result struct {
	Servers, Clients int
	// Messages is the number of rendezvous completed (= scheduled; the
	// driver always drains its schedule).
	Messages int64
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// OfferedPerSec is the configured offered rate (0 when unpaced);
	// AchievedPerSec is Messages/Elapsed. Achieved tracking offered is a
	// healthy system; achieved pinned below offered is saturation.
	OfferedPerSec  float64
	AchievedPerSec float64
	// Latency is the per-request latency histogram: paced runs measure
	// from each request's scheduled due time (queueing included — the
	// open-loop SLO number), unpaced runs from request start.
	Latency obs.HistogramSnapshot
	// Verdict is the collector tree's judgment of the run's stamps.
	Verdict *node.TreeVerdict
	// Logs and Dec are set when cfg.Tree.KeepLogs was on: the per-process
	// records and the decomposition to replay them under — the control-run
	// inputs for cross-checking the streaming verdict against the
	// sequential oracle.
	Logs [][]csp.Record
	Dec  *decomp.Decomposition
}

// P50 and P99 are the latency percentiles in nanoseconds.
func (r *Result) P50() int64 { return r.Latency.Quantile(0.50) }
func (r *Result) P99() int64 { return r.Latency.Quantile(0.99) }

// Topology is the analytic client-server topology: group s is the star of
// server s, rooted there, covering its client channels. No edge map is
// materialized, so verification state stays flat as clients scale to
// millions.
type Topology struct {
	servers, clients int
}

// NewTopology returns the analytic topology for a server pool.
func NewTopology(servers, clients int) *Topology {
	return &Topology{servers: servers, clients: clients}
}

// N is the process count, servers first.
func (t *Topology) N() int { return t.servers + t.clients }

// D is the group count — one star per server.
func (t *Topology) D() int { return t.servers }

// GroupOf maps a client-server channel to the server's star group.
func (t *Topology) GroupOf(a, b int) (int, bool) {
	if a > b {
		a, b = b, a
	}
	// A channel exists between a server and a client, nothing else.
	if a < 0 || a >= t.servers || b < t.servers || b >= t.N() {
		return 0, false
	}
	return a, true
}

// StarRoot is group g's server.
func (t *Topology) StarRoot(g int) int { return g }

// Decomposition materializes the same star decomposition explicitly, for
// control runs that cross-check the streaming verdict against the
// whole-trace replay oracle. O(clients·servers) — small runs only.
func (t *Topology) Decomposition() *decomp.Decomposition {
	groups := make([]decomp.Group, t.servers)
	for s := 0; s < t.servers; s++ {
		g := decomp.Group{Kind: decomp.KindStar, Root: s}
		for c := t.servers; c < t.N(); c++ {
			g.Edges = append(g.Edges, graph.NewEdge(s, c))
		}
		groups[s] = g
	}
	return decomp.MustNew(t.N(), groups)
}

// event is one scheduled request: client sends to server at virtual time
// due (in mean-think-time units from run start).
type event struct {
	due    float64
	client int
	server int
}

// clientState is a client's whole footprint: its clock, its lock, and its
// log sequence. The lock order is always client before server, so the two
// lock classes cannot deadlock.
type clientState struct {
	mu sync.Mutex
	v  vector.V
}

// serverState is a server's footprint; its clock advances under its own
// lock while the owning client's lock is held.
type serverState struct {
	mu sync.Mutex
	v  vector.V
}

// schedules builds each worker's event list: every client's arrivals in
// program order, merged across the worker's clients by due time. Merging
// keeps pacing honest (the worker sleeps toward the earliest due event)
// while client order is preserved because sort is stable and a client's
// own due times are nondecreasing.
func schedules(cfg Config) [][]event {
	skew := graph.NewSkew(cfg.Servers, cfg.ZipfTheta)
	perWorker := make([][]event, cfg.Workers)
	for c := 0; c < cfg.Clients; c++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*2654435761))
		w := c % cfg.Workers
		at := 0.0
		for i := 0; i < cfg.MessagesPerClient; i++ {
			switch cfg.Arrival {
			case ArrivalUniform:
				at += 2 * rng.Float64()
			default:
				at += rng.ExpFloat64()
			}
			perWorker[w] = append(perWorker[w], event{
				due:    at,
				client: cfg.Servers + c,
				server: skew.Pick(rng.Float64()),
			})
		}
	}
	for _, evs := range perWorker {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].due < evs[j].due })
	}
	return perWorker
}

// Run drives the configured workload through the collector tree and
// returns the combined result. A failed verdict is a result, not an error;
// errors are configuration or spill failures.
func Run(cfg Config) (*Result, error) {
	if cfg.Servers <= 0 || cfg.Clients <= 0 || cfg.MessagesPerClient <= 0 {
		return nil, fmt.Errorf("load: need servers, clients, and messages per client, got %d/%d/%d",
			cfg.Servers, cfg.Clients, cfg.MessagesPerClient)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	topo := NewTopology(cfg.Servers, cfg.Clients)
	tree, err := node.NewCollectorTree(topo, cfg.Tree)
	if err != nil {
		return nil, err
	}

	clients := make([]clientState, cfg.Clients)
	servers := make([]serverState, cfg.Servers)
	for i := range clients {
		clients[i].v = vector.New(topo.D())
	}
	for i := range servers {
		servers[i].v = vector.New(topo.D())
	}

	var offered, achieved *obs.Counter
	latency := obs.NewHistogram(obs.LatencyEdges)
	if cfg.Registry != nil {
		offered = cfg.Registry.Counter(obs.MetricLoadOffered)
		achieved = cfg.Registry.Counter(obs.MetricLoadAchieved)
		latency = cfg.Registry.Histogram(obs.MetricLoadLatencyNS, obs.LatencyEdges)
	}

	perWorker := schedules(cfg)
	total := int64(cfg.Clients) * int64(cfg.MessagesPerClient)
	offered.Add(total)

	// Pacing: virtual due times have mean-1 units; RatePerSec fixes the
	// wall length of one unit so the aggregate arrival rate matches.
	var unit time.Duration
	if cfg.RatePerSec > 0 {
		// Each of C clients offers MessagesPerClient arrivals with mean
		// spacing of one unit, so aggregate rate = Clients/unit.
		unit = time.Duration(float64(cfg.Clients) / cfg.RatePerSec * float64(time.Second))
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(evs []event) {
			defer wg.Done()
			for _, e := range evs {
				var due time.Time
				if unit > 0 {
					due = start.Add(time.Duration(e.due * float64(unit)))
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				} else {
					due = time.Now()
				}
				rendezvous(topo, &clients[e.client-cfg.Servers], &servers[e.server], tree, e)
				latency.Observe(time.Since(due).Nanoseconds())
				achieved.Add(1)
			}
		}(perWorker[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	verdict, err := tree.Finish()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Servers:        cfg.Servers,
		Clients:        cfg.Clients,
		Messages:       total,
		Elapsed:        elapsed,
		OfferedPerSec:  cfg.RatePerSec,
		AchievedPerSec: float64(total) / elapsed.Seconds(),
		Latency:        latency.Snapshot(),
		Verdict:        verdict,
	}
	if cfg.Tree.KeepLogs {
		res.Logs = tree.Logs()
		res.Dec = topo.Decomposition()
	}
	return res, nil
}

// rendezvous performs one Figure 5 exchange between a client and a server
// and streams both halves into the tree. The client's lock is held across
// the whole rendezvous (its program order), the server's only across the
// clock merge and its own record (its program order is its lock order).
func rendezvous(topo *Topology, c *clientState, s *serverState, tree *node.CollectorTree, e event) {
	g := e.server // the channel's group is the server's star
	c.mu.Lock()
	s.mu.Lock()
	stamp := c.v.Clone()
	stamp.Max(s.v)
	stamp[g]++
	copy(c.v, stamp)
	copy(s.v, stamp)
	// The server's receive half is ingested under its lock so the tree
	// sees the server's records in the order its clock advanced.
	_ = tree.Ingest(e.server, csp.Record{Kind: csp.RecordRecv, Peer: e.client, Stamp: stamp})
	s.mu.Unlock()
	_ = tree.Ingest(e.client, csp.Record{Kind: csp.RecordSend, Peer: e.server, Stamp: stamp})
	c.mu.Unlock()
}
