package load

import (
	"fmt"
	"math/rand"
	"time"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/node"
	"syncstamp/internal/obs"
)

// GnpConfig shapes a random-topology load run: Messages rendezvous drawn
// uniformly over the edges of a seeded G(n,p) graph, decomposed by the
// Figure 7 heuristic and stamped by the sequential online engine.
// Irregular topologies exercise triangle groups and skewed star sizes the
// client-server workload cannot.
type GnpConfig struct {
	N        int
	P        float64
	Messages int
	Seed     int64
	Tree     node.TreeConfig
	Registry *obs.Registry
}

// RunGnp streams the random workload through the collector tree. The
// engine is sequential (one global rendezvous order), so a run is fully
// deterministic in its seed.
func RunGnp(cfg GnpConfig) (*Result, error) {
	if cfg.N < 2 || cfg.Messages <= 0 {
		return nil, fmt.Errorf("load: gnp needs at least 2 processes and 1 message, got n=%d messages=%d", cfg.N, cfg.Messages)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.RandomConnected(cfg.N, cfg.P, rng)
	dec := decomp.Best(g)
	edges := g.Edges()
	topo := check.NewDecompTopology(dec)
	tree, err := node.NewCollectorTree(topo, cfg.Tree)
	if err != nil {
		return nil, err
	}
	var offered, achieved *obs.Counter
	latency := obs.NewHistogram(obs.LatencyEdges)
	if cfg.Registry != nil {
		offered = cfg.Registry.Counter(obs.MetricLoadOffered)
		achieved = cfg.Registry.Counter(obs.MetricLoadAchieved)
		latency = cfg.Registry.Histogram(obs.MetricLoadLatencyNS, obs.LatencyEdges)
	}
	offered.Add(int64(cfg.Messages))
	st := core.NewStamper(dec)
	start := time.Now()
	for i := 0; i < cfg.Messages; i++ {
		e := edges[rng.Intn(len(edges))]
		from, to := e.U, e.V
		if rng.Intn(2) == 1 {
			from, to = to, from
		}
		t0 := time.Now()
		stamp, err := st.StampMessage(from, to)
		if err != nil {
			return nil, err
		}
		_ = tree.Ingest(from, csp.Record{Kind: csp.RecordSend, Peer: to, Stamp: stamp})
		_ = tree.Ingest(to, csp.Record{Kind: csp.RecordRecv, Peer: from, Stamp: stamp})
		latency.Observe(time.Since(t0).Nanoseconds())
		achieved.Add(1)
	}
	elapsed := time.Since(start)
	verdict, err := tree.Finish()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Servers:        0,
		Clients:        cfg.N,
		Messages:       int64(cfg.Messages),
		Elapsed:        elapsed,
		AchievedPerSec: float64(cfg.Messages) / elapsed.Seconds(),
		Latency:        latency.Snapshot(),
		Verdict:        verdict,
	}
	if cfg.Tree.KeepLogs {
		res.Logs = tree.Logs()
		res.Dec = dec
	}
	return res, nil
}
