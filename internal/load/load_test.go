package load

import (
	"testing"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/node"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
)

// controlCrossCheck replays a KeepLogs run against the sequential replay
// oracle — the whole-trace ground truth the streaming verdict must agree
// with.
func controlCrossCheck(t *testing.T, topo *Topology, res *Result) {
	t.Helper()
	dec := topo.Decomposition()
	r, err := csp.Reconstruct(dec, res.Logs)
	if err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	if int64(r.Trace.NumMessages()) != res.Messages {
		t.Fatalf("reconstructed %d messages, drove %d", r.Trace.NumMessages(), res.Messages)
	}
	seq, err := core.StampTrace(r.Trace, dec)
	if err != nil {
		t.Fatal(err)
	}
	for m := range seq {
		if !vector.Eq(seq[m], r.Stamps[m]) {
			t.Fatalf("message %d: driven stamp %v, sequential stamp %v", m, r.Stamps[m], seq[m])
		}
	}
	if err := check.ExactMatch(r.Trace, func(m1, m2 int) bool {
		return vector.Less(r.Stamps[m1], r.Stamps[m2])
	}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

// TestLoadControlRun is the control experiment: a small deterministic run
// whose streaming verdict must agree with the whole-trace replay, with
// spill engaged and bounded resident memory.
func TestLoadControlRun(t *testing.T) {
	cfg := Config{
		Servers:           4,
		Clients:           50,
		MessagesPerClient: 6,
		ZipfTheta:         0.8,
		Seed:              42,
		Workers:           1,
		Tree: node.TreeConfig{
			Leaves:         3,
			SpillDir:       t.TempDir(),
			SegmentRecords: 16,
			KeepLogs:       true,
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK {
		t.Fatalf("clean run rejected: %v", res.Verdict.Problems)
	}
	if res.Verdict.Messages != 300 {
		t.Fatalf("verdict counts %d messages, drove 300", res.Verdict.Messages)
	}
	if res.Verdict.SegmentsSpilled == 0 {
		t.Fatal("spill never engaged")
	}
	if res.Verdict.MaxResident > 16 {
		t.Fatalf("a leaf held %d records resident, segment size is 16", res.Verdict.MaxResident)
	}
	controlCrossCheck(t, NewTopology(cfg.Servers, cfg.Clients), res)
}

// TestLoadDeterministic: one worker and one seed must reproduce the run
// record for record.
func TestLoadDeterministic(t *testing.T) {
	cfg := Config{
		Servers: 3, Clients: 20, MessagesPerClient: 5,
		ZipfTheta: 1, Seed: 7, Workers: 1,
		Tree: node.TreeConfig{KeepLogs: true},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Logs) != len(b.Logs) {
		t.Fatalf("log shapes differ: %d vs %d", len(a.Logs), len(b.Logs))
	}
	for p := range a.Logs {
		if len(a.Logs[p]) != len(b.Logs[p]) {
			t.Fatalf("process %d: %d vs %d records", p, len(a.Logs[p]), len(b.Logs[p]))
		}
		for i := range a.Logs[p] {
			x, y := a.Logs[p][i], b.Logs[p][i]
			if x.Kind != y.Kind || x.Peer != y.Peer || !vector.Eq(x.Stamp, y.Stamp) {
				t.Fatalf("process %d record %d: %+v vs %+v", p, i, x, y)
			}
		}
	}
}

// TestLoadConcurrentWorkers drives the same workload with a worker pool:
// interleavings vary, but every stamp must still verify.
func TestLoadConcurrentWorkers(t *testing.T) {
	res, err := Run(Config{
		Servers: 4, Clients: 40, MessagesPerClient: 10,
		ZipfTheta: 0.5, Seed: 3, Workers: 8,
		Tree: node.TreeConfig{Leaves: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK {
		t.Fatalf("concurrent run rejected: %v", res.Verdict.Problems)
	}
	if res.Verdict.Messages != 400 {
		t.Fatalf("verdict counts %d messages, drove 400", res.Verdict.Messages)
	}
}

// TestLoadPacedRun: a paced run must finish near its offered horizon and
// record a latency sample per request.
func TestLoadPacedRun(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := Run(Config{
		Servers: 2, Clients: 10, MessagesPerClient: 4,
		RatePerSec: 2000, Arrival: ArrivalUniform, Seed: 9, Workers: 2,
		Tree:     node.TreeConfig{Leaves: 2},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK {
		t.Fatalf("paced run rejected: %v", res.Verdict.Problems)
	}
	if res.OfferedPerSec != 2000 {
		t.Fatalf("offered rate %v, configured 2000", res.OfferedPerSec)
	}
	if res.Latency.Count != 40 {
		t.Fatalf("latency histogram holds %d samples, drove 40", res.Latency.Count)
	}
	if got := reg.Counter(obs.MetricLoadOffered).Value(); got != 40 {
		t.Fatalf("offered counter %d, want 40", got)
	}
	if got := reg.Counter(obs.MetricLoadAchieved).Value(); got != 40 {
		t.Fatalf("achieved counter %d, want 40", got)
	}
	if res.P99() < res.P50() {
		t.Fatalf("p99 %d below p50 %d", res.P99(), res.P50())
	}
}

// TestLoadGnpControl: the random-topology engine must verify and agree
// with the whole-trace replay under its own decomposition.
func TestLoadGnpControl(t *testing.T) {
	res, err := RunGnp(GnpConfig{
		N: 12, P: 0.3, Messages: 400, Seed: 5,
		Tree: node.TreeConfig{Leaves: 3, KeepLogs: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK {
		t.Fatalf("gnp run rejected: %v", res.Verdict.Problems)
	}
	if res.Verdict.Messages != 400 {
		t.Fatalf("verdict counts %d messages, drove 400", res.Verdict.Messages)
	}
}

// TestLoadTopologyGroups pins the analytic topology to the modulo-free
// star mapping the driver depends on.
func TestLoadTopologyGroups(t *testing.T) {
	topo := NewTopology(3, 5)
	if topo.N() != 8 || topo.D() != 3 {
		t.Fatalf("N=%d D=%d, want 8 and 3", topo.N(), topo.D())
	}
	for s := 0; s < 3; s++ {
		for c := 3; c < 8; c++ {
			if g, ok := topo.GroupOf(c, s); !ok || g != s {
				t.Fatalf("GroupOf(%d,%d) = %d,%v, want %d", c, s, g, ok, s)
			}
		}
		if topo.StarRoot(s) != s {
			t.Fatalf("StarRoot(%d) = %d", s, topo.StarRoot(s))
		}
	}
	if _, ok := topo.GroupOf(0, 1); ok {
		t.Fatal("server-server channel claimed by the analytic topology")
	}
	if _, ok := topo.GroupOf(3, 4); ok {
		t.Fatal("client-client channel claimed by the analytic topology")
	}
	// The materialized control decomposition agrees everywhere.
	dec := topo.Decomposition()
	if dec.D() != topo.D() || dec.N() != topo.N() {
		t.Fatalf("control decomposition %d/%d, analytic %d/%d", dec.N(), dec.D(), topo.N(), topo.D())
	}
	for s := 0; s < 3; s++ {
		for c := 3; c < 8; c++ {
			g, ok := dec.GroupOf(s, c)
			ag, aok := topo.GroupOf(s, c)
			if g != ag || ok != aok {
				t.Fatalf("channel (%d,%d): control %d,%v analytic %d,%v", s, c, g, ok, ag, aok)
			}
		}
	}
}

// TestLoadHundredThousandClients is the scale acceptance run: 100k clients
// through a 2-level tree with spill engaged on every shard, memory bounded
// by the segment size.
func TestLoadHundredThousandClients(t *testing.T) {
	if testing.Short() {
		t.Skip("scale run skipped in -short")
	}
	dir := t.TempDir()
	const leaves = 4
	res, err := Run(Config{
		Servers:           16,
		Clients:           100_000,
		MessagesPerClient: 1,
		ZipfTheta:         0.9,
		Seed:              1,
		Workers:           4,
		Tree: node.TreeConfig{
			Leaves:         leaves,
			SpillDir:       dir,
			SegmentRecords: 4096,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK {
		t.Fatalf("scale run rejected: %v", res.Verdict.Problems)
	}
	if res.Verdict.Messages != 100_000 {
		t.Fatalf("verdict counts %d messages, drove 100000", res.Verdict.Messages)
	}
	if res.Verdict.Shards != leaves {
		t.Fatalf("%d shards verified, tree has %d", res.Verdict.Shards, leaves)
	}
	if res.Verdict.SegmentsSpilled < leaves {
		t.Fatalf("only %d segments spilled across %d leaves", res.Verdict.SegmentsSpilled, leaves)
	}
	if res.Verdict.MaxResident > 4096 {
		t.Fatalf("a leaf held %d records resident, segment size is 4096", res.Verdict.MaxResident)
	}
}
