package check_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"syncstamp/internal/check"
	"syncstamp/internal/trace"
	"syncstamp/internal/vclock"
)

// recorder captures the engine's failure report instead of failing the test.
type recorder struct {
	failed bool
	msg    string
}

func (r *recorder) Helper()      {}
func (r *recorder) Name() string { return "TestRecorded" }
func (r *recorder) Fatalf(format string, args ...any) {
	r.failed = true
	r.msg = fmt.Sprintf(format, args...)
}

// RunRecorded is exported for tests via the internal bridge below.

func TestGenInputDeterministic(t *testing.T) {
	cfg := check.Config{}
	for seed := int64(1); seed < 30; seed++ {
		a := check.GenInput(seed, cfg)
		b := check.GenInput(seed, cfg)
		if a.Topo.String() != b.Topo.String() {
			t.Fatalf("seed %d: topologies differ:\n%v\n%v", seed, a.Topo, b.Topo)
		}
		if a.Dec.String() != b.Dec.String() || a.DecAlgo != b.DecAlgo {
			t.Fatalf("seed %d: decompositions differ", seed)
		}
		if len(a.Trace.Ops) != len(b.Trace.Ops) {
			t.Fatalf("seed %d: traces differ", seed)
		}
		for i := range a.Trace.Ops {
			if a.Trace.Ops[i] != b.Trace.Ops[i] {
				t.Fatalf("seed %d: op %d differs: %v vs %v", seed, i, a.Trace.Ops[i], b.Trace.Ops[i])
			}
		}
	}
}

func TestGenInputValid(t *testing.T) {
	cfg := check.Config{}
	for seed := int64(0); seed < 200; seed++ {
		in := check.GenInput(seed, cfg)
		if err := in.Trace.Validate(in.Topo); err != nil {
			t.Fatalf("seed %d: invalid trace: %v", seed, err)
		}
		if err := in.Dec.Validate(in.Topo); err != nil {
			t.Fatalf("seed %d: decomposition [%s] invalid: %v", seed, in.DecAlgo, err)
		}
	}
}

func TestInputRandDeterministic(t *testing.T) {
	in := check.GenInput(7, check.Config{})
	a, b := in.Rand(), in.Rand()
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("Input.Rand not deterministic across calls")
		}
	}
}

// TestAllOraclesAgree is the harness-wide differential property: every
// clock implementation against the ground-truth poset on every generated
// computation.
func TestAllOraclesAgree(t *testing.T) {
	check.Run(t, check.Config{}, func(in *check.Input) error {
		return check.Compare(in)
	})
}

// TestMinimizeFindsMinimalCounterexample shrinks against a property that
// fails on any trace with at least two messages; the minimum is exactly two
// messages, no internal ops, and no untouched processes.
func TestMinimizeFindsMinimalCounterexample(t *testing.T) {
	prop := func(in *check.Input) error {
		if in.Trace.NumMessages() >= 2 {
			return errors.New("two messages exist")
		}
		return nil
	}
	found := false
	for seed := int64(0); seed < 50; seed++ {
		in := check.GenInput(seed, check.Config{})
		if check.Eval(prop, in) == nil {
			continue
		}
		found = true
		min, err := check.Minimize(prop, in, 0)
		if err == nil {
			t.Fatalf("seed %d: minimized input no longer fails", seed)
		}
		if got := min.Trace.NumMessages(); got != 2 {
			t.Fatalf("seed %d: minimal counterexample has %d messages, want 2", seed, got)
		}
		if got := min.Trace.NumInternal(); got != 0 {
			t.Fatalf("seed %d: minimal counterexample kept %d internal ops", seed, got)
		}
		if min.Trace.N > 4 {
			t.Fatalf("seed %d: minimal counterexample kept %d processes, want ≤ 4", seed, min.Trace.N)
		}
		if err := min.Trace.Validate(min.Topo); err != nil {
			t.Fatalf("seed %d: shrunk trace invalid: %v", seed, err)
		}
		if err := min.Dec.Validate(min.Topo); err != nil {
			t.Fatalf("seed %d: shrunk decomposition invalid: %v", seed, err)
		}
	}
	if !found {
		t.Fatal("no generated input had two messages; generator too weak")
	}
}

// TestBrokenComparisonCaught sabotages a clock the way a regression would —
// two distinct messages end up with identical stamps — and demands the
// engine catch it, shrink it, and report a replayable seed.
func TestBrokenComparisonCaught(t *testing.T) {
	prop := func(in *check.Input) error {
		stamps := vclock.FM{}.StampTrace(in.Trace)
		if len(stamps) >= 2 {
			stamps[1] = stamps[0].Clone() // deliberate corruption
		}
		return check.ExactMatch(in.Trace, check.VectorPrecedes(stamps))
	}
	rec := &recorder{}
	check.RunForTest(rec, check.Config{}, prop)
	if !rec.failed {
		t.Fatal("engine did not catch the corrupted comparison")
	}
	for _, want := range []string{"shrunk counterexample", "replay:", check.SeedEnv + "=", "trace:", "decomposition"} {
		if !strings.Contains(rec.msg, want) {
			t.Fatalf("failure report missing %q:\n%s", want, rec.msg)
		}
	}
	// The minimal trace for "stamp of m1 copied onto m0's" is two messages
	// sharing a process: check the shrinker got it down to 2 or 3 ops.
	if !strings.Contains(rec.msg, "2 messages") {
		t.Fatalf("expected a 2-message shrunk counterexample:\n%s", rec.msg)
	}
}

// TestSeedReplay re-runs a failing property with SYNCSTAMP_CHECK_SEED and
// expects the identical counterexample to surface.
func TestSeedReplay(t *testing.T) {
	prop := func(in *check.Input) error {
		if in.Trace.NumMessages() >= 3 {
			return errors.New("three messages exist")
		}
		return nil
	}
	rec := &recorder{}
	check.RunForTest(rec, check.Config{}, prop)
	if !rec.failed {
		t.Fatal("property did not fail on the default sweep")
	}
	var seed int64
	if _, err := fmt.Sscanf(rec.msg[strings.Index(rec.msg, "seed="):], "seed=%d", &seed); err != nil {
		t.Fatalf("cannot parse seed from report: %v\n%s", err, rec.msg)
	}
	t.Setenv(check.SeedEnv, fmt.Sprint(seed))
	rec2 := &recorder{}
	check.RunForTest(rec2, check.Config{}, prop)
	if !rec2.failed {
		t.Fatalf("replay with seed %d did not fail", seed)
	}
	if !strings.Contains(rec2.msg, fmt.Sprintf("seed=%d", seed)) {
		t.Fatalf("replay reported a different seed:\n%s", rec2.msg)
	}
}

// TestPanicBecomesFailure: a panicking property must be reported (and
// shrunk), not crash the test binary.
func TestPanicBecomesFailure(t *testing.T) {
	prop := func(in *check.Input) error {
		if in.Trace.NumMessages() >= 1 {
			panic("comparison exploded")
		}
		return nil
	}
	rec := &recorder{}
	check.RunForTest(rec, check.Config{}, prop)
	if !rec.failed || !strings.Contains(rec.msg, "comparison exploded") {
		t.Fatalf("panic not converted to failure report: %v\n%s", rec.failed, rec.msg)
	}
}

func TestSoundMatchAllowsExtraOrder(t *testing.T) {
	// Two concurrent messages: (0,1) then (2,3). A "clock" ordering them is
	// sound but not exact.
	tr := &trace.Trace{N: 4}
	tr.MustAppend(trace.Message(0, 1))
	tr.MustAppend(trace.Message(2, 3))
	always := func(m1, m2 int) bool { return m1 < m2 }
	if err := check.SoundMatch(tr, always); err != nil {
		t.Fatalf("SoundMatch rejected allowed extra ordering: %v", err)
	}
	if err := check.ExactMatch(tr, always); err == nil {
		t.Fatal("ExactMatch accepted a falsely ordered concurrent pair")
	}
	// Missing a true ordering is unsound.
	tr2 := &trace.Trace{N: 2}
	tr2.MustAppend(trace.Message(0, 1))
	tr2.MustAppend(trace.Message(1, 0))
	never := func(m1, m2 int) bool { return false }
	if err := check.SoundMatch(tr2, never); err == nil {
		t.Fatal("SoundMatch accepted a missed true ordering")
	}
}

func TestCompareUnknownOracle(t *testing.T) {
	in := check.GenInput(1, check.Config{})
	if err := check.Compare(in, "no-such-clock"); err == nil {
		t.Fatal("Compare accepted an unknown oracle name")
	}
}
