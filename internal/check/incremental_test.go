package check

import (
	"strings"
	"testing"

	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/trace"
	"syncstamp/internal/wire"
)

// logsFromTrace builds per-process rendezvous logs carrying the sequential
// replay oracle's own stamps — exactly what a correct distributed run
// delivers to a collector.
func logsFromTrace(t *testing.T, in *Input) [][]csp.Record {
	t.Helper()
	stamps, err := core.StampTrace(in.Trace, in.Dec)
	if err != nil {
		t.Fatalf("seed %d: StampTrace: %v", in.Seed, err)
	}
	logs := make([][]csp.Record, in.Topo.N())
	mi := 0
	for _, op := range in.Trace.Ops {
		switch op.Kind {
		case trace.OpMessage:
			s := stamps[mi]
			mi++
			logs[op.From] = append(logs[op.From], csp.Record{Kind: csp.RecordSend, Peer: op.To, Stamp: s})
			logs[op.To] = append(logs[op.To], csp.Record{Kind: csp.RecordRecv, Peer: op.From, Stamp: s})
		case trace.OpInternal:
			logs[op.Proc] = append(logs[op.Proc], csp.Record{Kind: csp.RecordInternal, Note: "tick"})
		}
	}
	return logs
}

// treeVerdict shards the logs proc % leaves, streams each shard through its
// own verifier, and combines the summaries at the root.
func treeVerdict(topo Topology, leaves int, logs [][]csp.Record) *wire.Verdict {
	vers := make([]*ShardVerifier, leaves)
	for i := range vers {
		vers[i] = NewShardVerifier(topo, i)
	}
	for p, log := range logs {
		v := vers[p%leaves]
		for _, rec := range log {
			_ = v.Ingest(p, rec)
		}
	}
	sums := make([]*wire.ShardSummary, leaves)
	for i, v := range vers {
		sums[i] = v.Summary()
	}
	return CombineSummaries(topo, leaves, sums)
}

// TestIncrementalMatchesSequentialReplay sweeps generated computations: a
// shard-verified collector tree must pass exactly the runs the sequential
// replay stamps, with matching message totals, at several tree widths.
func TestIncrementalMatchesSequentialReplay(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		in := GenInput(seed, Config{})
		logs := logsFromTrace(t, in)
		topo := NewDecompTopology(in.Dec)
		for _, leaves := range []int{1, 2, 5} {
			v := treeVerdict(topo, leaves, logs)
			if !v.OK {
				t.Fatalf("seed %d leaves %d: clean run rejected: %v", seed, leaves, v.Problems)
			}
			if int(v.Messages) != in.Trace.NumMessages() {
				t.Fatalf("seed %d leaves %d: verdict counts %d messages, trace has %d", seed, leaves, v.Messages, in.Trace.NumMessages())
			}
			wantRecords := uint64(2*in.Trace.NumMessages() + in.Trace.NumInternal())
			if v.Records != wantRecords {
				t.Fatalf("seed %d leaves %d: verdict counts %d records, want %d", seed, leaves, v.Records, wantRecords)
			}
		}
	}
}

// pickStarMessage finds a log position holding a send on a star group, so
// mutations can target records the density invariant guards.
func pickStarMessage(topo Topology, logs [][]csp.Record) (proc, idx int, ok bool) {
	for p, log := range logs {
		for i, rec := range log {
			if rec.Kind != csp.RecordSend {
				continue
			}
			g, covered := topo.GroupOf(p, rec.Peer)
			if covered && topo.StarRoot(g) >= 0 {
				return p, i, true
			}
		}
	}
	return 0, 0, false
}

// cloneLogs deep-copies logs so a mutation cannot leak through the shared
// stamp slices both halves of a rendezvous carry.
func cloneLogs(logs [][]csp.Record) [][]csp.Record {
	out := make([][]csp.Record, len(logs))
	for p, log := range logs {
		out[p] = make([]csp.Record, len(log))
		for i, rec := range log {
			out[p][i] = rec
			if rec.Stamp != nil {
				out[p][i].Stamp = rec.Stamp.Clone()
			}
		}
	}
	return out
}

// TestIncrementalDetectsCorruption flips the verdict with three targeted
// mutations of otherwise-correct logs: a corrupted stamp half, a dropped
// receive half, and a message erased from both sides of a star group.
func TestIncrementalDetectsCorruption(t *testing.T) {
	found := 0
	for seed := int64(0); seed < 200 && found < 10; seed++ {
		in := GenInput(seed, Config{})
		if in.Trace.NumMessages() == 0 {
			continue
		}
		logs := logsFromTrace(t, in)
		topo := NewDecompTopology(in.Dec)
		p, i, ok := pickStarMessage(topo, logs)
		if !ok {
			continue
		}
		found++

		corrupt := cloneLogs(logs)
		corrupt[p][i].Stamp[len(corrupt[p][i].Stamp)-1] += 3
		if v := treeVerdict(topo, 3, corrupt); v.OK {
			t.Fatalf("seed %d: corrupted stamp half accepted", seed)
		}

		peer := logs[p][i].Peer
		stamp := logs[p][i].Stamp
		dropRecv := cloneLogs(logs)
		for j, rec := range dropRecv[peer] {
			if rec.Kind == csp.RecordRecv && rec.Peer == p && vectorEq(rec.Stamp, stamp) {
				dropRecv[peer] = append(dropRecv[peer][:j], dropRecv[peer][j+1:]...)
				break
			}
		}
		if v := treeVerdict(topo, 3, dropRecv); v.OK {
			t.Fatalf("seed %d: dropped receive half accepted", seed)
		}

		dropBoth := cloneLogs(logs)
		dropBoth[p] = append(dropBoth[p][:i], dropBoth[p][i+1:]...)
		for j, rec := range dropBoth[peer] {
			if rec.Kind == csp.RecordRecv && rec.Peer == p && vectorEq(rec.Stamp, stamp) {
				dropBoth[peer] = append(dropBoth[peer][:j], dropBoth[peer][j+1:]...)
				break
			}
		}
		if v := treeVerdict(topo, 3, dropBoth); v.OK {
			t.Fatalf("seed %d: star-group message erased from both sides accepted", seed)
		}
	}
	if found == 0 {
		t.Fatal("sweep produced no star-group messages to mutate")
	}
}

func vectorEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCombineNamesMissingShard drops one leaf's summary entirely — the
// crashed-leaf case — and requires the root to name the missing shard.
func TestCombineNamesMissingShard(t *testing.T) {
	in := GenInput(7, Config{})
	logs := logsFromTrace(t, in)
	topo := NewDecompTopology(in.Dec)
	const leaves = 4
	vers := make([]*ShardVerifier, leaves)
	for i := range vers {
		vers[i] = NewShardVerifier(topo, i)
	}
	for p, log := range logs {
		for _, rec := range log {
			_ = vers[p%leaves].Ingest(p, rec)
		}
	}
	sums := make([]*wire.ShardSummary, leaves)
	for i, v := range vers {
		if i == 2 {
			continue // leaf 2 crashed before its roll-up
		}
		sums[i] = v.Summary()
	}
	v := CombineSummaries(topo, leaves, sums)
	if v.OK {
		t.Fatal("verdict OK despite a missing shard")
	}
	hit := false
	for _, p := range v.Problems {
		if strings.Contains(p, "shard 2 missing") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no problem names the missing shard: %v", v.Problems)
	}
}

// TestShardVerifierChainChecks drives the verifier directly through its
// per-record invariants: stamp regression, stalled group component, and
// star-root jumps all fail at ingest with the first error held.
func TestShardVerifierChainChecks(t *testing.T) {
	// A fresh verifier starts every process at the zero vector, so the
	// probe record must come from a non-root process (a root's first stamp
	// on its group is pinned to component 1 by density).
	var topo *DecompTopology
	var logs [][]csp.Record
	p, i, g := 0, 0, 0
	ok := false
	for seed := int64(0); seed < 100 && !ok; seed++ {
		in := GenInput(seed, Config{})
		logs = logsFromTrace(t, in)
		topo = NewDecompTopology(in.Dec)
		for lp, log := range logs {
			for li, rec := range log {
				if rec.Kind != csp.RecordSend {
					continue
				}
				lg, covered := topo.GroupOf(lp, rec.Peer)
				if covered && topo.StarRoot(lg) >= 0 && topo.StarRoot(lg) != lp && rec.Stamp[lg] > 1 {
					p, i, g, ok = lp, li, lg, true
				}
			}
		}
	}
	if !ok {
		t.Fatal("sweep produced no non-root star sender to probe")
	}
	rec := logs[p][i]

	v := NewShardVerifier(topo, 0)
	if err := v.Ingest(p, rec); err != nil {
		t.Fatalf("first ingest: %v", err)
	}
	// The same stamp again: the group component must strictly advance.
	if err := v.Ingest(p, rec); err == nil {
		t.Fatal("repeated stamp accepted")
	}
	if v.Err() == nil {
		t.Fatal("error not sticky")
	}

	v = NewShardVerifier(topo, 0)
	high := rec.Stamp.Clone()
	high[g] += 5
	if err := v.Ingest(p, csp.Record{Kind: csp.RecordSend, Peer: rec.Peer, Stamp: high}); err != nil {
		t.Fatalf("ingest high stamp: %v", err)
	}
	if err := v.Ingest(p, rec); err == nil {
		t.Fatal("stamp regression accepted")
	}

	// A root jumping its own group's component is a density violation even
	// though the component advances.
	root, rootIdx, okRoot := 0, 0, false
	for rp, log := range logs {
		for ri, r := range log {
			if r.Kind == csp.RecordInternal {
				continue
			}
			if rg, covered := topo.GroupOf(rp, r.Peer); covered && topo.StarRoot(rg) == rp {
				root, rootIdx, okRoot = rp, ri, true
			}
		}
	}
	if okRoot {
		r := logs[root][rootIdx]
		jump := r.Stamp.Clone()
		rg, _ := topo.GroupOf(root, r.Peer)
		jump[rg] += 7
		v = NewShardVerifier(topo, 0)
		if err := v.Ingest(root, csp.Record{Kind: r.Kind, Peer: r.Peer, Stamp: jump}); err == nil || !strings.Contains(err.Error(), "densely") {
			t.Fatalf("root jump not caught as density violation: %v", err)
		}
	}
}
