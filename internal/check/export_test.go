package check

// RunForTest exposes the engine loop to the package's own tests with a
// fake failer, so failure reports can be asserted on instead of failing
// the test binary.
func RunForTest(t failer, cfg Config, prop Property) {
	run(t, cfg, prop)
}
