package check

import (
	"fmt"
	"sort"

	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/vector"
	"syncstamp/internal/wire"
)

// This file is the streaming entry into the oracle hierarchy: the
// incremental per-shard verification a collector tree runs as logs stream
// in, in O(shard) memory, instead of reconstructing the whole trace and
// replaying it sequentially at the end.
//
// The sequential-replay oracle (core.StampTrace + ExactMatch) characterizes
// a correct Figure 5 run by three facts, each of which has a local,
// streaming form:
//
//  1. Chain monotonicity. A process's consecutive message stamps are its
//     clock values after each merge, so each stamp componentwise dominates
//     the previous one, and the component of the message's own edge group
//     strictly advances.
//  2. Star-root density. The root of a star group participates in every
//     message of the group, so its group component counts the group's
//     messages exactly: it advances by precisely one per message it logs on
//     the group, and its final value equals the group's message count.
//  3. Rendezvous agreement. Both halves of a message log the identical
//     stamp, so across the whole run the multiset of stamps logged by
//     senders on a group equals the multiset logged by receivers. Shards
//     see disjoint process sets, hence disjoint halves; the root compares
//     the summed multisets via counts and an order-independent XOR of
//     per-stamp hashes in O(groups) memory.
//
// (1) and (2) are checked by the shard that owns the process as its log
// streams in; (3) is judged at the root from the shard summaries.
// check_test.go's incremental properties tie the verdict to the sequential
// oracle: on generated traces the verdict is clean exactly when the replay
// is, and corrupting any stamp flips it.

// Topology is the slice of a decomposition the incremental verifier needs.
// decomp.Decomposition satisfies it via DecompTopology; workload drivers
// with an analytic topology (client-server at million scale) implement it
// directly so verification never materializes an edge map.
type Topology interface {
	// N is the process count.
	N() int
	// D is the number of edge groups (the vector dimension).
	D() int
	// GroupOf maps a channel to its edge group.
	GroupOf(a, b int) (int, bool)
	// StarRoot is the root process of star group g, or -1 for a triangle.
	StarRoot(g int) int
}

// DecompTopology adapts a decomposition to the Topology interface,
// precomputing the star roots.
type DecompTopology struct {
	Dec   *decomp.Decomposition
	roots []int
}

// NewDecompTopology wraps dec for incremental verification.
func NewDecompTopology(dec *decomp.Decomposition) *DecompTopology {
	roots := make([]int, dec.D())
	for i, g := range dec.Groups() {
		if g.Kind == decomp.KindStar {
			roots[i] = g.Root
		} else {
			roots[i] = -1
		}
	}
	return &DecompTopology{Dec: dec, roots: roots}
}

// N is the process count.
func (t *DecompTopology) N() int { return t.Dec.N() }

// D is the group count.
func (t *DecompTopology) D() int { return t.Dec.D() }

// GroupOf maps a channel to its edge group.
func (t *DecompTopology) GroupOf(a, b int) (int, bool) { return t.Dec.GroupOf(a, b) }

// StarRoot is star group g's root, or -1 for a triangle.
func (t *DecompTopology) StarRoot(g int) int { return t.roots[g] }

// groupAcc accumulates one group's fingerprint inside a shard.
type groupAcc struct {
	sendCount, recvCount uint64
	sendXor, recvXor     uint64
	rootSeq              int64 // -1 until the group's star root logs here
}

// ShardVerifier checks one shard's slice of a run as records stream in.
// Records must arrive in per-process program order; processes may
// interleave arbitrarily. The verifier's memory is O(|shard| · d + groups
// touched) and never grows with the record count. It is not safe for
// concurrent use; a collector tree runs one per leaf goroutine.
type ShardVerifier struct {
	topo Topology
	leaf int
	prev map[int]vector.V
	acc  map[int]*groupAcc

	sends, recvs, internals uint64
	err                     error
}

// NewShardVerifier returns a verifier for leaf's shard.
func NewShardVerifier(topo Topology, leaf int) *ShardVerifier {
	return &ShardVerifier{
		topo: topo,
		leaf: leaf,
		prev: make(map[int]vector.V),
		acc:  make(map[int]*groupAcc),
	}
}

// Err returns the first verification failure, or nil.
func (v *ShardVerifier) Err() error { return v.err }

// fail records the first failure; later records still count but no longer
// judge, so a broken shard reports one crisp error instead of a cascade.
func (v *ShardVerifier) fail(format string, args ...any) error {
	err := fmt.Errorf(format, args...)
	if v.err == nil {
		v.err = err
	}
	return err
}

// Ingest feeds process proc's next record, in program order, and checks the
// streaming invariants. The first violation is returned and remembered; the
// record is still counted so summaries stay honest about volume.
func (v *ShardVerifier) Ingest(proc int, rec csp.Record) error {
	switch rec.Kind {
	case csp.RecordInternal:
		v.internals++
		return v.err
	case csp.RecordSend:
		v.sends++
	case csp.RecordRecv:
		v.recvs++
	default:
		return v.fail("shard %d: process %d logs unknown record kind %v", v.leaf, proc, rec.Kind)
	}
	g, ok := v.topo.GroupOf(proc, rec.Peer)
	if !ok {
		return v.fail("shard %d: no edge group covers channel (%d,%d)", v.leaf, proc, rec.Peer)
	}
	s := rec.Stamp
	if len(s) != v.topo.D() {
		return v.fail("shard %d: process %d stamp has %d components, want %d", v.leaf, proc, len(s), v.topo.D())
	}
	prev := v.prev[proc]
	prevG := 0
	if prev != nil {
		if !vector.Leq(prev, s) {
			return v.fail("shard %d: process %d stamp %v does not dominate its previous stamp %v", v.leaf, proc, s, prev)
		}
		prevG = prev[g]
	}
	root := v.topo.StarRoot(g)
	if s[g] < prevG+1 {
		return v.fail("shard %d: process %d stamp %v does not advance group %d past %d", v.leaf, proc, s, g, prevG)
	}
	if root == proc && s[g] != prevG+1 {
		return v.fail("shard %d: star root %d jumps group %d from %d to %d (a root sequences its group densely)", v.leaf, proc, g, prevG, s[g])
	}
	a := v.acc[g]
	if a == nil {
		a = &groupAcc{rootSeq: -1}
		v.acc[g] = a
	}
	h := stampHash(g, s)
	if rec.Kind == csp.RecordSend {
		a.sendCount++
		a.sendXor ^= h
	} else {
		a.recvCount++
		a.recvXor ^= h
	}
	if root == proc {
		a.rootSeq = int64(s[g])
	}
	if prev == nil {
		prev = vector.New(v.topo.D())
		v.prev[proc] = prev
	}
	copy(prev, s)
	return v.err
}

// Summary rolls the shard up into the wire form the leaf sends its root.
func (v *ShardVerifier) Summary() *wire.ShardSummary {
	s := &wire.ShardSummary{
		Leaf:      v.leaf,
		Procs:     uint64(len(v.prev)),
		Sends:     v.sends,
		Recvs:     v.recvs,
		Internals: v.internals,
	}
	if v.err != nil {
		s.Err = v.err.Error()
	}
	groups := make([]int, 0, len(v.acc))
	for g := range v.acc {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, g := range groups {
		a := v.acc[g]
		s.Groups = append(s.Groups, wire.GroupSummary{
			Group:     g,
			SendCount: a.sendCount,
			SendXor:   a.sendXor,
			RecvCount: a.recvCount,
			RecvXor:   a.recvXor,
			RootSeq:   a.rootSeq,
		})
	}
	return s
}

// stampHash is an FNV-64a over the group index and the stamp components —
// the per-message fingerprint whose XOR forms a shard's multiset signature.
func stampHash(group int, v vector.V) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	mix(uint64(group))
	mix(uint64(len(v)))
	for _, c := range v {
		mix(uint64(c))
	}
	return h
}

// CombineSummaries is the root of the collector tree: given the summaries
// of a want-leaf tree (nil entries for shards that never reported), it
// judges the run. A clean verdict requires every shard present and
// error-free, every group's send multiset equal to its recv multiset, and
// every star root's final sequence number equal to its group's message
// count.
func CombineSummaries(topo Topology, want int, sums []*wire.ShardSummary) *wire.Verdict {
	v := &wire.Verdict{}
	problem := func(format string, args ...any) {
		v.Problems = append(v.Problems, fmt.Sprintf(format, args...))
	}
	byLeaf := make([]*wire.ShardSummary, want)
	for _, s := range sums {
		if s == nil {
			continue
		}
		if s.Leaf < 0 || s.Leaf >= want {
			problem("summary names shard %d, tree has %d", s.Leaf, want)
			continue
		}
		if byLeaf[s.Leaf] != nil {
			problem("shard %d reported twice", s.Leaf)
			continue
		}
		byLeaf[s.Leaf] = s
		v.Shards++
	}
	type groupTotal struct {
		sendCount, recvCount uint64
		sendXor, recvXor     uint64
		rootSeq              int64
		rootShard            int
	}
	totals := make(map[int]*groupTotal)
	for leaf := 0; leaf < want; leaf++ {
		s := byLeaf[leaf]
		if s == nil {
			problem("shard %d missing: no summary reached the root", leaf)
			continue
		}
		if s.Err != "" {
			problem("shard %d failed: %s", leaf, s.Err)
		}
		v.Records += s.Sends + s.Recvs + s.Internals
		for _, g := range s.Groups {
			tot := totals[g.Group]
			if tot == nil {
				tot = &groupTotal{rootSeq: -1, rootShard: -1}
				totals[g.Group] = tot
			}
			tot.sendCount += g.SendCount
			tot.recvCount += g.RecvCount
			tot.sendXor ^= g.SendXor
			tot.recvXor ^= g.RecvXor
			if g.RootSeq >= 0 {
				if tot.rootSeq >= 0 {
					problem("group %d: star root claimed by shards %d and %d", g.Group, tot.rootShard, leaf)
				}
				tot.rootSeq = g.RootSeq
				tot.rootShard = leaf
			}
		}
	}
	groups := make([]int, 0, len(totals))
	for g := range totals {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, g := range groups {
		tot := totals[g]
		v.Messages += tot.sendCount
		if tot.sendCount != tot.recvCount {
			problem("group %d: %d send halves vs %d recv halves", g, tot.sendCount, tot.recvCount)
		} else if tot.sendXor != tot.recvXor {
			problem("group %d: send and recv stamp multisets differ", g)
		}
		if root := topo.StarRoot(g); root >= 0 {
			switch {
			case tot.rootSeq >= 0 && tot.rootSeq != int64(tot.sendCount):
				problem("group %d: star root %d ends at sequence %d, group carried %d messages", g, root, tot.rootSeq, tot.sendCount)
			case tot.rootSeq < 0 && tot.sendCount > 0 && v.Shards == want:
				// The root participates in every message of its star, so when
				// every shard reported, a group with traffic but no root claim
				// means the root's log lost records. (With a shard missing,
				// the missing shard is already the reported problem.)
				problem("group %d: carried %d messages but star root %d logged none", g, tot.sendCount, root)
			}
		}
	}
	v.OK = len(v.Problems) == 0
	return v
}
