package check

import (
	"fmt"

	"syncstamp/internal/chainclock"
	"syncstamp/internal/cluster"
	"syncstamp/internal/core"
	"syncstamp/internal/offline"
	"syncstamp/internal/order"
	"syncstamp/internal/poset"
	"syncstamp/internal/trace"
	"syncstamp/internal/vclock"
	"syncstamp/internal/vector"
)

// PrecedesFunc answers m1 ↦ m2 for message indices of one trace.
type PrecedesFunc func(m1, m2 int) bool

// Oracle is one timestamping mechanism under differential test.
//
// The oracle hierarchy has three levels: the ground truth is the message
// poset derived combinatorially from the trace (order.MessagePoset — no
// clocks involved); Exact oracles must reproduce it verbatim (Theorem 4
// and its per-mechanism analogues); the remaining "plausible" oracles
// (Lamport, Torres-Rojas/Ahamad) are only required never to contradict it —
// they must report every true ordering with the right direction, and any
// concurrency they claim must be real, but they may order truly concurrent
// pairs.
type Oracle struct {
	// Name identifies the mechanism in Compare calls and failure reports.
	Name string
	// Exact oracles must match the poset exactly; non-exact (plausible)
	// oracles must merely never contradict it.
	Exact bool
	// Stamp builds the mechanism's precedence answerer for the input.
	Stamp func(in *Input) (PrecedesFunc, error)
}

// VectorPrecedes adapts a stamp slice to a PrecedesFunc via the vector
// order of Equation (2).
func VectorPrecedes(stamps []vector.V) PrecedesFunc {
	return func(m1, m2 int) bool { return vector.Less(stamps[m1], stamps[m2]) }
}

// Oracles returns the full registry: every clock implementation in the
// repo, each adapted to a common precedence interface.
func Oracles() []Oracle {
	return []Oracle{
		{Name: "online", Exact: true, Stamp: func(in *Input) (PrecedesFunc, error) {
			stamps, err := core.StampTrace(in.Trace, in.Dec)
			if err != nil {
				return nil, err
			}
			return VectorPrecedes(stamps), nil
		}},
		{Name: "offline", Exact: true, Stamp: func(in *Input) (PrecedesFunc, error) {
			res, err := offline.Stamp(in.Trace)
			if err != nil {
				return nil, err
			}
			return VectorPrecedes(res.Stamps), nil
		}},
		{Name: "fm", Exact: true, Stamp: func(in *Input) (PrecedesFunc, error) {
			return VectorPrecedes(vclock.FM{}.StampTrace(in.Trace)), nil
		}},
		{Name: "chainclock", Exact: true, Stamp: func(in *Input) (PrecedesFunc, error) {
			res := chainclock.StampTrace(in.Trace)
			if err := res.Verify(); err != nil {
				return nil, err
			}
			return VectorPrecedes(res.Stamps), nil
		}},
		{Name: "cluster", Exact: true, Stamp: func(in *Input) (PrecedesFunc, error) {
			rng := in.Rand()
			part, err := cluster.Contiguous(in.Trace.N, 1+rng.Intn(in.Trace.N))
			if err != nil {
				return nil, err
			}
			res, err := cluster.Stamp(in.Trace, part)
			if err != nil {
				return nil, err
			}
			return func(m1, m2 int) bool {
				ok, _ := res.Precedes(m1, m2)
				return ok
			}, nil
		}},
		{Name: "directdep", Exact: true, Stamp: func(in *Input) (PrecedesFunc, error) {
			dd := vclock.NewDirectDep(in.Trace)
			return func(m1, m2 int) bool {
				ok, _ := dd.Precedes(m1, m2)
				return ok
			}, nil
		}},
		{Name: "lamport", Exact: false, Stamp: func(in *Input) (PrecedesFunc, error) {
			return VectorPrecedes(vclock.Lamport{}.StampTrace(in.Trace)), nil
		}},
		{Name: "plausible", Exact: false, Stamp: func(in *Input) (PrecedesFunc, error) {
			rng := in.Rand()
			p := vclock.Plausible{R: 1 + rng.Intn(in.Trace.N)}
			return VectorPrecedes(p.StampTrace(in.Trace)), nil
		}},
	}
}

// Compare differentially tests the named oracles (all of them when names is
// empty) against the ground-truth poset of the input's trace.
func Compare(in *Input, names ...string) error {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	seen := 0
	p := order.MessagePoset(in.Trace)
	for _, o := range Oracles() {
		if len(names) > 0 && !want[o.Name] {
			continue
		}
		seen++
		pre, err := o.Stamp(in)
		if err != nil {
			return fmt.Errorf("oracle %s: %w", o.Name, err)
		}
		var cmpErr error
		if o.Exact {
			cmpErr = exactMatch(in.Trace, p, pre)
		} else {
			cmpErr = soundMatch(in.Trace, p, pre)
		}
		if cmpErr != nil {
			return fmt.Errorf("oracle %s: %w", o.Name, cmpErr)
		}
	}
	if len(names) > 0 && seen != len(want) {
		return fmt.Errorf("check: unknown oracle in %v", names)
	}
	return nil
}

// ExactMatch checks that precedes characterizes the trace's ↦ exactly:
// precedes(i, j) ⟺ i ↦ j for every ordered message pair, which also makes
// claimed concurrency coincide with real concurrency.
func ExactMatch(tr *trace.Trace, precedes PrecedesFunc) error {
	return exactMatch(tr, order.MessagePoset(tr), precedes)
}

// SoundMatch checks that precedes never contradicts ↦: every true ordering
// is reported in the right direction (so no false concurrency on ordered
// pairs), and no reported ordering inverts a true one. Ordering truly
// concurrent pairs is allowed — the defining slack of plausible clocks.
func SoundMatch(tr *trace.Trace, precedes PrecedesFunc) error {
	return soundMatch(tr, order.MessagePoset(tr), precedes)
}

func exactMatch(tr *trace.Trace, p *poset.Poset, precedes PrecedesFunc) error {
	msgs := tr.Messages()
	for i := range msgs {
		for j := range msgs {
			if i == j {
				continue
			}
			got, want := precedes(i, j), p.Less(i, j)
			if got == want {
				continue
			}
			if want {
				return fmt.Errorf("m%d %v ↦ m%d %v but the clock misses the ordering", i, msgs[i].Edge(), j, msgs[j].Edge())
			}
			rel := "concurrent with"
			if p.Less(j, i) {
				rel = "AFTER"
			}
			return fmt.Errorf("clock claims m%d %v ↦ m%d %v but m%d is %s m%d", i, msgs[i].Edge(), j, msgs[j].Edge(), i, rel, j)
		}
	}
	return nil
}

func soundMatch(tr *trace.Trace, p *poset.Poset, precedes PrecedesFunc) error {
	msgs := tr.Messages()
	for i := range msgs {
		for j := range msgs {
			if i == j {
				continue
			}
			got := precedes(i, j)
			switch {
			case p.Less(i, j) && !got:
				return fmt.Errorf("m%d %v ↦ m%d %v but the clock misses the ordering (false concurrency)", i, msgs[i].Edge(), j, msgs[j].Edge())
			case got && p.Less(j, i):
				return fmt.Errorf("clock claims m%d %v ↦ m%d %v but the true order is the reverse", i, msgs[i].Edge(), j, msgs[j].Edge())
			}
		}
	}
	return nil
}
