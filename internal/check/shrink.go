package check

import (
	"syncstamp/internal/graph"
	"syncstamp/internal/trace"
)

// Minimize greedily shrinks a failing input while the property keeps
// failing: it deletes operation windows (halving chunk sizes down to single
// ops), drops processes no remaining op touches, and trims the topology to
// the channels the trace actually uses (rebuilding the decomposition with
// the input's own strategy). budget caps the number of property
// evaluations. It returns the minimal input and the error it still fails
// with.
func Minimize(prop Property, in *Input, budget int) (*Input, error) {
	if budget <= 0 {
		budget = 4000
	}
	fails := func(c *Input) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return Eval(prop, c) != nil
	}
	cur := in
	for {
		next, ok := shrinkStep(cur, fails)
		if !ok {
			break
		}
		cur = next
	}
	return cur, Eval(prop, cur)
}

// shrinkStep returns the first smaller failing candidate, or ok=false when
// no candidate fails (a local minimum).
func shrinkStep(in *Input, fails func(*Input) bool) (*Input, bool) {
	ops := in.Trace.Ops
	// 1. Delete op windows, largest first (ddmin-style).
	for size := len(ops) / 2; size >= 1; size /= 2 {
		for start := 0; start+size <= len(ops); start += size {
			cand := in.withOps(append(append([]trace.Op(nil), ops[:start]...), ops[start+size:]...))
			if fails(cand) {
				return cand, true
			}
		}
	}
	// 2. Drop processes no op touches, renumbering the rest.
	if cand := in.withoutIdleProcs(); cand != nil && fails(cand) {
		return cand, true
	}
	// 3. Trim the topology to the channels the trace uses.
	if used := in.Trace.Topology(); used.M() < in.Topo.M() {
		cand := in.withTopology(used)
		if fails(cand) {
			return cand, true
		}
	}
	return nil, false
}

// withOps returns a copy of the input with a different op sequence; the
// topology and decomposition carry over (any op subset stays valid).
func (in *Input) withOps(ops []trace.Op) *Input {
	c := *in
	c.Trace = &trace.Trace{N: in.Trace.N, Ops: ops}
	return &c
}

// withTopology returns a copy over a reduced topology of the same vertex
// count, rebuilding the decomposition with the input's strategy.
func (in *Input) withTopology(topo *graph.Graph) *Input {
	c := *in
	c.Topo = topo
	c.Dec = in.decFn(topo)
	return &c
}

// withoutIdleProcs removes processes that participate in no op and
// renumbers the remainder, or returns nil when every process is used.
func (in *Input) withoutIdleProcs() *Input {
	used := make([]bool, in.Trace.N)
	for _, op := range in.Trace.Ops {
		switch op.Kind {
		case trace.OpMessage:
			used[op.From] = true
			used[op.To] = true
		case trace.OpInternal:
			used[op.Proc] = true
		}
	}
	remap := make([]int, in.Trace.N)
	kept := 0
	for p, u := range used {
		if u {
			remap[p] = kept
			kept++
		} else {
			remap[p] = -1
		}
	}
	if kept == in.Trace.N || kept == 0 {
		return nil
	}
	topo := graph.New(kept)
	for _, e := range in.Topo.Edges() {
		if remap[e.U] >= 0 && remap[e.V] >= 0 {
			topo.AddEdge(remap[e.U], remap[e.V])
		}
	}
	tr := &trace.Trace{N: kept}
	for _, op := range in.Trace.Ops {
		switch op.Kind {
		case trace.OpMessage:
			tr.MustAppend(trace.Message(remap[op.From], remap[op.To]))
		case trace.OpInternal:
			tr.MustAppend(trace.Internal(remap[op.Proc]))
		}
	}
	c := *in
	c.Topo = topo
	c.Trace = tr
	c.Dec = in.decFn(topo)
	return &c
}
