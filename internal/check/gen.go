package check

import (
	"math/rand"

	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/trace"
)

// Input is one generated test case: a topology, an edge decomposition of
// it, and a synchronous computation over its channels. Every message of
// Trace travels on an edge of Topo, and Dec covers every edge of Topo, so
// all clock implementations accept the trace.
type Input struct {
	// Seed regenerates this input via GenInput (before any shrinking).
	Seed int64
	// Topo is the communication topology.
	Topo *graph.Graph
	// Dec is an edge decomposition of Topo, produced by the algorithm
	// named by DecAlgo.
	Dec *decomp.Decomposition
	// DecAlgo names the decomposition strategy, for failure reports.
	DecAlgo string
	// Trace is the generated computation.
	Trace *trace.Trace

	// decFn rebuilds the decomposition after a structural shrink (process
	// removal or edge trimming) with the same strategy.
	decFn func(*graph.Graph) *decomp.Decomposition
}

// Rand returns a fresh deterministic source derived from the input's seed.
// Properties needing extra random choices (a cluster partition, a plausible
// clock size) must draw them from here so that re-evaluating the property
// during shrinking stays deterministic.
func (in *Input) Rand() *rand.Rand {
	return rand.New(rand.NewSource(in.Seed ^ 0x5ca1ab1e))
}

// GenInput builds the input for a seed under cfg. The same (seed, cfg)
// always yields the same input — the replay contract of the harness.
func GenInput(seed int64, cfg Config) *Input {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	topo := randomTopology(rng, cfg.MaxProcs)
	mutateTopology(rng, topo)
	algo, decFn := randomDecomposer(rng, seed)
	dec := decFn(topo)

	msgs := 0
	if topo.M() > 0 {
		msgs = rng.Intn(cfg.MaxMessages + 1)
	}
	opts := trace.GenOptions{
		Messages:     msgs,
		InternalProb: []float64{0, 0.2, 0.4}[rng.Intn(3)],
		Hotspot:      []float64{0, 0.3, 0.7}[rng.Intn(3)],
	}
	tr := trace.Generate(topo, opts, rng)
	return &Input{Seed: seed, Topo: topo, Dec: dec, DecAlgo: algo, Trace: tr, decFn: decFn}
}

// randomTopology draws from every generator family the repo ships, so the
// sweep exercises stars, trees, meshes, bipartite client-server graphs and
// arbitrary G(n,p) graphs. Some families round the vertex count up a little.
func randomTopology(rng *rand.Rand, maxProcs int) *graph.Graph {
	n := 2 + rng.Intn(maxProcs-1)
	switch rng.Intn(10) {
	case 0:
		return graph.Complete(n)
	case 1:
		return graph.Star(n, rng.Intn(n))
	case 2:
		return graph.Path(n)
	case 3:
		if n < 3 {
			n = 3
		}
		return graph.Cycle(n)
	case 4:
		return graph.RandomTree(n, rng)
	case 5:
		return graph.RandomGnp(n, 0.2+0.6*rng.Float64(), rng)
	case 6:
		if n < 2 {
			n = 2
		}
		servers := 1 + rng.Intn(n/2+1)
		clients := n - servers
		if clients < 1 {
			clients = 1
		}
		return graph.ClientServer(servers, clients, rng.Intn(2) == 0)
	case 7:
		rows := 1 + rng.Intn(3)
		cols := (n + rows - 1) / rows
		if cols < 1 {
			cols = 1
		}
		return graph.Grid(rows, cols)
	case 8:
		return graph.BalancedTree(1+rng.Intn(3), 1+rng.Intn(2))
	default:
		return graph.DisjointTriangles(1 + rng.Intn(2))
	}
}

// mutateTopology randomly perturbs the generated family — adding and
// removing a few edges — so the sweep also covers graphs no generator emits.
func mutateTopology(rng *rand.Rand, g *graph.Graph) {
	if g.N() < 2 || rng.Intn(2) == 0 {
		return
	}
	for k := rng.Intn(3); k > 0; k-- {
		a, b := rng.Intn(g.N()), rng.Intn(g.N())
		if a == b {
			continue
		}
		if rng.Intn(3) == 0 {
			g.RemoveEdge(a, b)
		} else {
			g.AddEdge(a, b)
		}
	}
}

// randomDecomposer picks one decomposition strategy. Every strategy covers
// the full edge set, so any trace over the topology can be stamped under it.
func randomDecomposer(rng *rand.Rand, seed int64) (string, func(*graph.Graph) *decomp.Decomposition) {
	guard := func(fn func(*graph.Graph) *decomp.Decomposition) func(*graph.Graph) *decomp.Decomposition {
		return func(g *graph.Graph) *decomp.Decomposition {
			if g.M() == 0 {
				return decomp.MustNew(g.N(), nil)
			}
			return fn(g)
		}
	}
	strategies := []struct {
		name string
		fn   func(*graph.Graph) *decomp.Decomposition
	}{
		{"best", decomp.Best},
		{"fig7-maxadj", decomp.Approximate},
		{"fig7-first", func(g *graph.Graph) *decomp.Decomposition {
			d, _ := decomp.ApproximateTraced(g, decomp.ChooseFirst)
			return d
		}},
		{"trivial-stars", decomp.TrivialStars},
		{"trivial-triangle", decomp.TrivialWithTriangle},
		{"greedy-cover", decomp.StarOnly},
		{"multistart", func(g *graph.Graph) *decomp.Decomposition {
			return decomp.ApproximateMultiStart(g, 4, rand.New(rand.NewSource(seed^0x0ddba11)))
		}},
	}
	s := strategies[rng.Intn(len(strategies))]
	return s.name, guard(s.fn)
}
