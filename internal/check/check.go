// Package check is a property-based differential-testing harness for the
// timestamping algorithms. It generates seeded random inputs — a topology,
// an edge decomposition of it, and a synchronous computation over it — and
// runs properties against them; on failure it greedily shrinks the
// counterexample (deleting operations, idle processes, and unused channels
// while the property still fails) and reports a minimal, replayable case.
//
// The harness exists because the repo's correctness story rests on
// Theorem 4 (m1 ↦ m2 ⟺ v(m1) < v(m2)) holding for every clock
// implementation on every topology: hand-written traces spot-check single
// points of that space, while the oracle registry (oracle.go) differentially
// compares every mechanism against the ground-truth poset on thousands of
// generated computations. Properties live in the test files of the packages
// they guard (core, offline, decomp, vclock, chainclock, cluster, csp, and
// the syncstamp façade).
//
// Replay: every failure report names the seed that generated the failing
// input. Re-running the test with SYNCSTAMP_CHECK_SEED=<seed> regenerates
// exactly that input (with the same Config) and skips the random sweep.
package check

import (
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"

	"syncstamp/internal/trace"
)

// SeedEnv is the environment variable that pins a single replay seed.
const SeedEnv = "SYNCSTAMP_CHECK_SEED"

// Property is a predicate over a generated input; nil means "holds".
type Property func(in *Input) error

// Config bounds the generated inputs. The zero value selects defaults.
type Config struct {
	// Runs is the number of random inputs to try (default 40; quartered
	// under -short).
	Runs int
	// MaxProcs bounds the process count of generated topologies (default 8;
	// some families round up slightly, e.g. grids).
	MaxProcs int
	// MaxMessages bounds the message count of generated traces (default 60).
	MaxMessages int
	// Seed is the base seed of the sweep (default 0x5eed). Each run derives
	// its own input seed from it, so failures are replayable per run.
	Seed int64
	// ShrinkBudget caps the number of candidate evaluations during
	// shrinking (default 4000).
	ShrinkBudget int
}

func (c Config) withDefaults() Config {
	if c.Runs == 0 {
		c.Runs = 40
		if testing.Short() {
			c.Runs = 10
		}
	}
	if c.MaxProcs == 0 {
		c.MaxProcs = 8
	}
	if c.MaxMessages == 0 {
		c.MaxMessages = 60
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	if c.ShrinkBudget == 0 {
		c.ShrinkBudget = 4000
	}
	return c
}

// failer is the slice of *testing.T the engine needs; the indirection lets
// the engine's own tests observe failure reports.
type failer interface {
	Helper()
	Name() string
	Fatalf(format string, args ...any)
}

// Run sweeps the property over cfg.Runs seeded random inputs, shrinking and
// reporting the first failure. With SYNCSTAMP_CHECK_SEED set it replays
// that single seed instead.
func Run(t *testing.T, cfg Config, prop Property) {
	t.Helper()
	run(t, cfg, prop)
}

func run(t failer, cfg Config, prop Property) {
	t.Helper()
	cfg = cfg.withDefaults()
	if env := os.Getenv(SeedEnv); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("check: bad %s=%q: %v", SeedEnv, env, err)
			return
		}
		in := GenInput(seed, cfg)
		if err := Eval(prop, in); err != nil {
			fail(t, cfg, in, err, prop)
		}
		return
	}
	for i := 0; i < cfg.Runs; i++ {
		in := GenInput(runSeed(cfg.Seed, i), cfg)
		if err := Eval(prop, in); err != nil {
			fail(t, cfg, in, err, prop)
			return
		}
	}
}

// runSeed derives the i-th input seed from the base seed (splitmix64, so
// neighbouring runs are uncorrelated).
func runSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Eval runs the property, converting panics into errors so that a crashing
// comparison shrinks like any other failure.
func Eval(prop Property, in *Input) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return prop(in)
}

// fail shrinks the counterexample and reports it with replay instructions.
func fail(t failer, cfg Config, in *Input, firstErr error, prop Property) {
	t.Helper()
	min, minErr := Minimize(prop, in, cfg.ShrinkBudget)
	t.Fatalf("check: property %s failed (seed=%d, decomposition=%s):\n  %v\n\n%s\nreplay: %s=%d go test -run '%s' (same Config required)",
		t.Name(), in.Seed, in.DecAlgo, firstErr, renderCounterexample(min, minErr), SeedEnv, in.Seed, t.Name())
}

// renderCounterexample formats the shrunk input so it can be rebuilt by hand.
func renderCounterexample(in *Input, err error) string {
	var b strings.Builder
	fmt.Fprintf(&b, "shrunk counterexample (%d ops, %d messages, %d processes):\n",
		len(in.Trace.Ops), in.Trace.NumMessages(), in.Trace.N)
	fmt.Fprintf(&b, "  error: %v\n", err)
	fmt.Fprintf(&b, "  topology: %v\n", in.Topo)
	fmt.Fprintf(&b, "  decomposition [%s]: %v\n", in.DecAlgo, in.Dec)
	b.WriteString("  trace:\n")
	var tb strings.Builder
	if werr := trace.WriteText(&tb, in.Trace); werr != nil {
		fmt.Fprintf(&b, "    <unencodable: %v>\n", werr)
	} else {
		for _, line := range strings.Split(strings.TrimRight(tb.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
