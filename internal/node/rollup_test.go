package node

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"syncstamp/internal/check"
	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/graph"
	"syncstamp/internal/obs"
	tssync "syncstamp/internal/sync"
	"syncstamp/internal/vector"
)

// TestCollectorTreeRollupEqualsLeafTotals pins the rollup acceptance
// criterion at the tree level: the root's merged registry must equal the sum
// of the per-leaf shard registries — which count exactly what the verdict
// counts, so equality is checkable without trusting the rollup path itself.
func TestCollectorTreeRollupEqualsLeafTotals(t *testing.T) {
	in := genSeed(t)
	logs := oracleLogs(t, in)
	records := 0
	for _, l := range logs {
		records += len(l)
	}
	dir := t.TempDir()
	tree, err := NewCollectorTree(check.NewDecompTopology(in.Dec),
		TreeConfig{Leaves: 3, SpillDir: dir, SegmentRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	feedTree(tree, logs)
	v, err := tree.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatalf("clean run rejected: %v", v.Problems)
	}
	roll := tree.Rollup()
	if got := roll.Counters[obs.MetricShardRecords]; got != int64(records) {
		t.Errorf("%s = %d, want %d (every ingested record, summed over leaves)",
			obs.MetricShardRecords, got, records)
	}
	if got := roll.Counters[obs.MetricShardSegments]; got != v.SegmentsSpilled {
		t.Errorf("%s = %d, verdict counts %d", obs.MetricShardSegments, got, v.SegmentsSpilled)
	}
	if got := roll.Counters[obs.MetricShardSpillBytes]; got != v.SpillBytes {
		t.Errorf("%s = %d, verdict counts %d", obs.MetricShardSpillBytes, got, v.SpillBytes)
	}
}

// TestCollectTreeClusterRollup runs a real 2-node cluster: node 1's METRICS
// report and the collector leaves' shard registries must all land in node
// 0's rollup, with exact counter sums, merged histograms, and the node's own
// live registry (its /metrics view) equal to RunInfo.Rollup.
func TestCollectTreeClusterRollup(t *testing.T) {
	leakCheck(t)
	g := graph.Path(2)
	dec := decomp.Best(g)
	dir := t.TempDir()
	transports := loopTransports(2)
	edges := []int64{10, 100}
	regs := []*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	for i, r := range regs {
		r.Counter("rollup_test_total").Add(int64(5 + 2*i)) // 5 and 7
		h := r.Histogram("rollup_test_lat", edges)
		h.Observe(int64(i))              // bucket <=10 on both nodes
		h.Observe(int64(1000 * (i + 1))) // overflow bucket on both
	}

	var verdict *TreeVerdict
	var info0 *RunInfo
	var collectErr error
	results := make([]clusterResult, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Node: i, Placement: []int{0, 1}, Dec: dec, Obs: &obs.Obs{Metrics: regs[i]}}
			n, err := New(cfg, transports[i])
			if err != nil {
				results[i].err = err
				return
			}
			defer n.Close()
			info, err := n.Run(pingPong(10))
			results[i] = clusterResult{info: info, err: err}
			if err != nil {
				return
			}
			if i == 0 {
				info0 = info
				verdict, collectErr = n.CollectTree(info, 10*time.Second, TreeConfig{
					Leaves: 2, SpillDir: dir, SegmentRecords: 8,
				})
			} else {
				results[i].err = n.SendReport(0, info)
			}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("node %d: %v", i, r.err)
		}
	}
	if collectErr != nil {
		t.Fatal(collectErr)
	}
	if !verdict.OK {
		t.Fatalf("cluster run rejected: %v", verdict.Problems)
	}
	if info0.Rollup == nil {
		t.Fatal("RunInfo.Rollup not populated by CollectTree")
	}
	roll := *info0.Rollup

	// Exact counter equality: the custom counter sums across nodes, and the
	// leaf shard counters sum to the verdict's totals.
	if got := roll.Counters["rollup_test_total"]; got != 12 {
		t.Errorf("rollup_test_total = %d, want 12 (5 from node 0 + 7 from node 1)", got)
	}
	if got := roll.Counters[obs.MetricShardRecords]; got != verdict.Records {
		t.Errorf("%s = %d, verdict counts %d", obs.MetricShardRecords, got, verdict.Records)
	}
	if got := roll.Counters[obs.MetricShardSegments]; got != verdict.SegmentsSpilled {
		t.Errorf("%s = %d, verdict counts %d", obs.MetricShardSegments, got, verdict.SegmentsSpilled)
	}
	if got := roll.Counters[obs.MetricShardSpillBytes]; got != verdict.SpillBytes {
		t.Errorf("%s = %d, verdict counts %d", obs.MetricShardSpillBytes, got, verdict.SpillBytes)
	}
	// Both nodes ran the same program halves, so the per-node frame counters
	// merged into a cluster total that covers every message twice (each
	// rendezvous is observed by its sender and its receiver).
	if got := roll.Counters[obs.MetricRendezvous]; got != 2*verdict.Messages {
		t.Errorf("%s = %d, want %d (both ends of %d messages)",
			obs.MetricRendezvous, got, 2*verdict.Messages, verdict.Messages)
	}

	// Merged histogram: bucket-wise sums of the two nodes' observations.
	h, ok := roll.Histograms["rollup_test_lat"]
	if !ok {
		t.Fatal("rollup_test_lat missing from the rollup")
	}
	if h.Count != 4 || h.Sum != 0+1+1000+2000 {
		t.Errorf("merged histogram count=%d sum=%d, want count=4 sum=3001", h.Count, h.Sum)
	}
	if want := []int64{2, 0, 2}; !reflect.DeepEqual(h.Counts, want) {
		t.Errorf("merged histogram buckets %v, want %v", h.Counts, want)
	}

	// The rollup was folded into node 0's live registry, so its /metrics
	// endpoint now serves the identical cluster view.
	if live := regs[0].Snapshot(); !reflect.DeepEqual(live, roll) {
		t.Errorf("node 0's live registry diverges from RunInfo.Rollup:\n%+v\n%+v", live, roll)
	}
}

// TestAsyncClusterRollup runs a 2-node async-mode cluster and pins the
// synchronizer's observability contract: the spurious-retransmit counter in
// the root rollup is exactly the sum over the nodes' registries, each
// per-peer RTT histogram lands in the rollup with precisely the sample
// count its owner's estimator accepted (so RunInfo p50/p99 and /metrics
// quantiles come from the same data), and the health gauges report every
// peer healthy after a clean run.
func TestAsyncClusterRollup(t *testing.T) {
	leakCheck(t)
	g := graph.Path(2)
	dec := decomp.Best(g)
	transports := loopTransports(2)
	regs := []*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	rec := &RecoveryConfig{
		OnPeerLoss:      PeerLossWait,
		RetransmitMin:   2 * time.Millisecond,
		RetransmitMax:   20 * time.Millisecond,
		ReconnectWindow: 5 * time.Second,
		Async:           &tssync.Config{Seed: 7},
	}
	var info0 *RunInfo
	var collectErr error
	results := make([]clusterResult, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Node: i, Placement: []int{0, 1}, Dec: dec,
				Recovery: rec, Obs: &obs.Obs{Metrics: regs[i]}}
			n, err := New(cfg, transports[i])
			if err != nil {
				results[i].err = err
				return
			}
			defer n.Close()
			info, err := n.Run(pingPong(10))
			results[i] = clusterResult{info: info, err: err}
			if err != nil {
				return
			}
			if i == 0 {
				info0 = info
				_, collectErr = n.Collect(info, 10*time.Second)
			} else {
				results[i].err = n.SendReport(0, info)
			}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("node %d: %v", i, r.err)
		}
	}
	if collectErr != nil {
		t.Fatal(collectErr)
	}
	if info0.Rollup == nil {
		t.Fatal("RunInfo.Rollup not populated by Collect")
	}
	roll := *info0.Rollup

	info1 := results[1].info
	// Root rollup == Σ leaf registries, exactly — for the async counters too.
	if got, want := roll.Counters[obs.MetricSpuriousRetransmits], info0.Spurious+info1.Spurious; got != want {
		t.Errorf("%s = %d in the rollup, RunInfos sum to %d", obs.MetricSpuriousRetransmits, got, want)
	}
	if got, want := roll.Counters[obs.MetricSuspicions], info0.Suspicions+info1.Suspicions; got != want {
		t.Errorf("%s = %d in the rollup, RunInfos sum to %d", obs.MetricSuspicions, got, want)
	}
	// Each node owns one per-peer RTT histogram (node 0 watches peer 1 and
	// vice versa); the rollup must carry each with exactly the accepted
	// sample count its estimator reports.
	for i, info := range []*RunInfo{info0, info1} {
		peer := 1 - i
		st, ok := info.PeerRTT[peer]
		if !ok {
			t.Fatalf("node %d RunInfo has no RTT stats for peer %d", i, peer)
		}
		if st.Samples == 0 {
			t.Fatalf("node %d accepted no RTT samples over 20 rendezvous", i)
		}
		if st.SRTTNS <= 0 || st.RTONS <= 0 || st.P50NS <= 0 || st.P99NS <= 0 {
			t.Fatalf("node %d peer %d RTT stats not populated: %+v", i, peer, st)
		}
		h, ok := roll.Histograms[obs.PeerMetric(obs.MetricPeerRTTNS, peer)]
		if !ok {
			t.Fatalf("rollup lacks %s", obs.PeerMetric(obs.MetricPeerRTTNS, peer))
		}
		if h.Count != st.Samples {
			t.Errorf("rollup %s count = %d, node %d estimator accepted %d samples",
				obs.PeerMetric(obs.MetricPeerRTTNS, peer), h.Count, i, st.Samples)
		}
		if got := info.PeerHealth[peer]; got != "healthy" {
			t.Errorf("node %d sees peer %d as %q after a clean run", i, peer, got)
		}
		if gauge, ok := roll.Gauges[obs.PeerMetric(obs.MetricPeerHealth, peer)]; !ok || gauge != 0 {
			t.Errorf("rollup health gauge for peer %d = %d (present=%v), want 0/healthy", peer, gauge, ok)
		}
	}
	// The rollup was folded into node 0's live registry: /metrics serves the
	// same async totals.
	if live := regs[0].Snapshot(); !reflect.DeepEqual(live, roll) {
		t.Errorf("node 0's live registry diverges from RunInfo.Rollup")
	}
}

// TestFlightDumpRoundTrip pins the dump file format: write, read, equal —
// node ids, notes, and seqs included.
func TestFlightDumpRoundTrip(t *testing.T) {
	events := []obs.Event{
		{Node: 0, Proc: 0, Peer: 1, Seq: 0, Phase: obs.PhaseAdopt, Stamp: vector.V{1, 1}},
		{Node: 1, Proc: 1, Peer: 0, Seq: 0, Phase: obs.PhaseMerge, Stamp: vector.V{1, 1}},
		{Node: 1, Proc: 1, Peer: -1, Seq: 1, Phase: obs.PhaseInternal, Stamp: vector.V{1, 1}, Note: "checkpoint"},
		{Node: 0, Proc: 0, Peer: 1, Seq: 1, Phase: obs.PhaseSyn, Stamp: vector.V{2, 1}},
	}
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	if err := WriteFlightDump(path, events); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file survived the publish: %v", err)
	}
	got, err := ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip:\n%+v\n%+v", got, events)
	}
}

// TestRunWritesFlightDumpAndReplays drives a 2-node cluster with the flight
// recorder on: every node must publish its end-of-run dump, and the merged
// dumps must replay-verify against the sequential oracle — the flight
// recorder is a faithful (bounded) record of the computation, not just a
// debugging convenience.
func TestRunWritesFlightDumpAndReplays(t *testing.T) {
	leakCheck(t)
	g := graph.Path(2)
	dec := decomp.Best(g)
	dir := t.TempDir()
	transports := loopTransports(2)
	results := make([]clusterResult, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{
				Node: i, Placement: []int{0, 1}, Dec: dec,
				FlightRecorder: 256,
				FlightDump:     filepath.Join(dir, "flight"+string(rune('0'+i))+".jsonl"),
			}
			n, err := New(cfg, transports[i])
			if err != nil {
				results[i].err = err
				return
			}
			defer n.Close()
			info, err := n.Run(pingPong(5))
			results[i] = clusterResult{info: info, err: err}
		}(i)
	}
	wg.Wait()
	var merged []obs.Event
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("node %d: %v", i, r.err)
		}
		events, err := ReadFlightDump(filepath.Join(dir, "flight"+string(rune('0'+i))+".jsonl"))
		if err != nil {
			t.Fatalf("node %d dump: %v", i, err)
		}
		if len(events) == 0 {
			t.Fatalf("node %d published an empty dump", i)
		}
		merged = append(merged, events...)
	}
	res, err := csp.Reconstruct(dec, csp.LogsFromEvents(dec.N(), merged))
	if err != nil {
		t.Fatalf("reconstructing from flight dumps: %v", err)
	}
	if res.Trace.NumMessages() != 10 {
		t.Fatalf("dumps reconstruct %d messages, run carried 10", res.Trace.NumMessages())
	}
	seq, err := core.StampTrace(res.Trace, dec)
	if err != nil {
		t.Fatal(err)
	}
	for m := range seq {
		if !vector.Eq(seq[m], res.Stamps[m]) {
			t.Fatalf("message %d: flight stamp %v, sequential stamp %v", m, res.Stamps[m], seq[m])
		}
	}
}
