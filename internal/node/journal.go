package node

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
)

// Journal record kinds.
const (
	journalSend     = "send"
	journalRecv     = "recv"
	journalInternal = "internal"
	journalRestart  = "restart"
)

// JournalRecord is one committed operation in the crash-recovery journal:
// a rendezvous half (send = the sender's adopt, recv = the receiver's
// merge) or an internal event. The write-ahead discipline — a receiver
// journals before its ACK leaves the node, a sender after its adopt — plus
// the idempotent dedup/re-ACK protocol make every crash window safe: an
// operation is either in the journal (skipped on resume, its ACK
// re-answered from the dedup cache) or not (replayed from scratch, the
// peer's retransmission completing it deterministically).
type JournalRecord struct {
	Kind  string   `json:"kind"`
	Proc  int      `json:"proc"`
	Peer  int      `json:"peer,omitempty"`
	Seq   uint64   `json:"seq,omitempty"`
	Stamp vector.V `json:"stamp,omitempty"`
	Note  string   `json:"note,omitempty"`
	// Node is the hosting node, recorded by flight dumps (which may be
	// merged across nodes); the crash-recovery journal leaves it zero —
	// a journal file is per-node by construction.
	Node int `json:"node,omitempty"`
}

// Journal is an append-only JSONL file of committed operations, safe for
// concurrent use by a node's process goroutines.
//
// Commits are group-committed by default: concurrent Appends pool their
// records and a single leader writes and fsyncs the whole batch, so one
// fsync covers every rendezvous that reached the journal while the previous
// fsync was in flight. The durability contract is unchanged — Append
// returns only after the fsync covering its record has completed — which is
// what preserves the write-ahead invariant (a merge's journal entry is
// durable before its ACK leaves the node). SetSyncEach(true) restores
// fsync-per-record commits, the baseline arm of cmd/tsbench.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	restarts int
	each     bool // fsync per record instead of per batch

	// Group-commit state, guarded by mu. Records queue as complete
	// newline-terminated JSONL lines in buf; a crash mid-batch therefore
	// tears at most the batch's last line, which replay already truncates.
	buf       []byte
	spare     []byte        // recycled batch buffer
	leader    bool          // a goroutine is mid write+fsync
	batch     int64         // batch number queued records will join
	committed int64         // highest batch number made durable
	done      chan struct{} // closed and remade after every commit
	err       error         // sticky commit failure; the journal is dead

	appends int64
	syncs   int64
}

// commitYields is how many times a group-commit leader yields the scheduler
// before taking its batch. A blocking fsync freezes the calling OS thread —
// and on a single-CPU GOMAXPROCS=1 runtime that freezes every goroutine in
// the process until the runtime's monitor rescues the P, so appends that
// would have queued behind the leader never get to run and every batch
// degenerates to size 1. Yielding first lets every runnable goroutine
// advance (senders park on ACKs, receivers merge and append), so the work
// in flight joins the batch before the world stops for the fsync. On an
// idle system Gosched returns immediately, so an uncontended Append pays
// nanoseconds, not a latency window.
const commitYields = 8

// JournalStats counts a journal's committed records and the fsyncs that
// made them durable.
type JournalStats struct {
	Appends int64 `json:"appends"`
	Syncs   int64 `json:"syncs"`
}

// SetSyncEach switches the journal to fsync-per-record commits (true) or
// back to group commit (false, the default). Call before the run starts;
// it is not synchronized against in-flight Appends.
func (j *Journal) SetSyncEach(each bool) { j.each = each }

// Stats snapshots the journal's commit accounting.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{Appends: j.appends, Syncs: j.syncs}
}

// OpenJournal opens (creating if absent) a journal and replays it: it
// returns the committed operation records in file order, truncates a
// partial trailing line (a crash mid-append leaves at most one), and — if
// the file held any prior content — appends a restart marker so Restarts
// counts this incarnation.
func OpenJournal(path string) (*Journal, []JournalRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("node: open journal: %w", err)
	}
	recs, restarts, good, prior, err := replayJournal(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	// Drop the partial trailing line, if any, so appends start at a record
	// boundary.
	if err := f.Truncate(good); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("node: truncate journal: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("node: seek journal: %w", err)
	}
	// Batch numbering starts at 1 so the zero value of committed means
	// "nothing durable yet".
	j := &Journal{f: f, restarts: restarts, batch: 1, done: make(chan struct{})}
	if prior {
		j.restarts++
		if err := j.Append(JournalRecord{Kind: journalRestart}); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
	}
	return j, recs, nil
}

// replayJournal scans the file, returning the operation records, the
// restart-marker count, the offset of the last complete record, and
// whether the file held any prior content.
func replayJournal(f *os.File) (recs []JournalRecord, restarts int, good int64, prior bool, err error) {
	r := bufio.NewReader(f)
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil {
			// A trailing fragment without '\n' is an interrupted append:
			// ignore it (it was never committed).
			if rerr == io.EOF {
				return recs, restarts, good, prior, nil
			}
			return nil, 0, 0, false, fmt.Errorf("node: read journal: %w", rerr)
		}
		var rec JournalRecord
		if json.Unmarshal(line, &rec) != nil {
			// A corrupt line means everything after it is untrustworthy;
			// stop replay at the last good record.
			return recs, restarts, good, prior, nil
		}
		good += int64(len(line))
		prior = true
		if rec.Kind == journalRestart {
			restarts++
			continue
		}
		recs = append(recs, rec)
	}
}

// Append commits one record. The record is durable when Append returns:
// either this goroutine wrote and fsynced it (fsync-per-record mode, or as
// the batch leader), or it waited for the leader whose batch carried it.
func (j *Journal) Append(rec JournalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("node: journal encode: %w", err)
	}
	return j.commit(append(b, '\n'), 1)
}

// AppendBatch commits records as one segment: all lines in one Write, made
// durable by the same group-commit machinery (one fsync covers the whole
// segment — the collector tree's spill path). It returns the bytes
// appended. A crash tears at most the segment's trailing line, which replay
// truncates, so a restored spill file is always a complete record prefix.
func (j *Journal) AppendBatch(recs []JournalRecord) (int, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	var buf []byte
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			return 0, fmt.Errorf("node: journal encode: %w", err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	return len(buf), j.commit(buf, int64(len(recs)))
}

// commit makes one pre-marshaled run of complete JSONL lines durable,
// counting it as count records.
func (j *Journal) commit(b []byte, count int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.appends += count
	if j.each {
		j.syncs++
		if _, err := j.f.Write(b); err != nil {
			return fmt.Errorf("node: journal append: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("node: journal sync: %w", err)
		}
		return nil
	}

	j.buf = append(j.buf, b...)
	mine := j.batch
	for j.committed < mine && j.err == nil {
		if !j.leader {
			// Become the leader: let the in-flight work land (see
			// commitYields), then take everything queued — our record
			// included, possibly many more — and commit it with one fsync.
			// Records arriving during the Write/Sync queue for the next batch.
			j.leader = true
			j.mu.Unlock()
			for y := 0; y < commitYields; y++ {
				runtime.Gosched()
			}
			j.mu.Lock()
			taking := j.batch
			out := j.buf
			j.buf = j.spare[:0]
			j.spare = nil
			j.batch++
			j.syncs++
			j.mu.Unlock()
			_, werr := j.f.Write(out)
			if werr == nil {
				werr = j.f.Sync()
			}
			//nolint:lockcheck hand-over-hand re-lock after the off-lock commit; released by the deferred Unlock at the top of commit
			j.mu.Lock()
			j.leader = false
			j.committed = taking
			j.spare = out[:0]
			if werr != nil && j.err == nil {
				j.err = fmt.Errorf("node: journal commit: %w", werr)
			}
			close(j.done)
			j.done = make(chan struct{})
			continue
		}
		// A leader is mid-commit; wait for it, then re-check whether its
		// batch (or a successor's) covered us.
		ch := j.done
		j.mu.Unlock()
		<-ch
		//nolint:lockcheck hand-over-hand re-lock after waiting out a leader; released by the deferred Unlock at the top of commit
		j.mu.Lock()
	}
	// A sticky error is returned even to appenders whose own batch committed
	// just before the journal died: over-reporting failure only aborts the
	// run early, never violates the durability contract.
	return j.err
}

// Restarts counts this journal's restart markers — how many times the node
// has been restarted over this journal file (0 for a fresh run).
func (j *Journal) Restarts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.restarts
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// resumeState is a hosted process's state rebuilt from the journal.
type resumeState struct {
	clock *core.Clock
	log   []csp.Record
	seq   uint64
	ops   int
}

// journalCommit appends one record under recovery, failing the run if the
// journal cannot be made durable (continuing would break the write-ahead
// guarantee).
func (n *Node) journalCommit(rec JournalRecord) error {
	if n.rec == nil || n.rec.Journal == nil {
		return nil
	}
	if err := n.rec.Journal.Append(rec); err != nil {
		n.fail(err)
		return err
	}
	return nil
}

// Restore rebuilds hosted-process state from a replayed journal before Run:
// per-process clocks (each committed stamp re-adopted in order, which also
// validates the journal's causal integrity), rendezvous logs, send
// sequence counters, and the receive-side dedup cache (so a peer
// retransmitting a rendezvous this node committed just before crashing is
// re-ACKed instead of merged twice). It also re-emits the committed
// operations' obs trace events, so a post-crash JSONL trace still carries
// the full per-process history the tsanalyze oracle needs. It returns the
// number of committed operations per hosted process — the prefix of each
// program a resuming caller must skip.
func (n *Node) Restore(recs []JournalRecord) (map[int]int, error) {
	if n.rec == nil || n.rec.Journal == nil {
		return nil, errors.New("node: Restore requires Config.Recovery with a Journal")
	}
	counts := make(map[int]int)
	for _, rec := range recs {
		if rec.Kind == journalRestart {
			continue
		}
		p := rec.Proc
		if p < 0 || p >= len(n.cfg.Placement) || n.cfg.Placement[p] != n.cfg.Node {
			return nil, fmt.Errorf("node %d: journal holds process %d, not hosted here", n.cfg.Node, p)
		}
		st := n.restored[p]
		if st == nil {
			st = &resumeState{clock: core.NewClock(p, n.cfg.Dec)}
			n.restored[p] = st
		}
		switch rec.Kind {
		case journalSend:
			if err := st.clock.Adopt(rec.Stamp, rec.Peer); err != nil {
				return nil, fmt.Errorf("node %d: journal replay, process %d send to %d: %w", n.cfg.Node, p, rec.Peer, err)
			}
			st.log = append(st.log, csp.Record{Kind: csp.RecordSend, Peer: rec.Peer, Stamp: rec.Stamp})
			if rec.Seq > st.seq {
				st.seq = rec.Seq
			}
			n.obsv.Rendezvous(n.cfg.Node, p, rec.Peer, obs.PhaseAdopt, rec.Stamp)
		case journalRecv:
			if err := st.clock.Adopt(rec.Stamp, rec.Peer); err != nil {
				return nil, fmt.Errorf("node %d: journal replay, process %d recv from %d: %w", n.cfg.Node, p, rec.Peer, err)
			}
			st.log = append(st.log, csp.Record{Kind: csp.RecordRecv, Peer: rec.Peer, Stamp: rec.Stamp})
			if rec.Peer >= 0 && rec.Peer < len(n.cfg.Placement) && n.cfg.Placement[rec.Peer] != n.cfg.Node {
				n.noteMerged(rec.Peer, rec.Seq, p, rec.Stamp)
			}
			n.obsv.Rendezvous(n.cfg.Node, p, rec.Peer, obs.PhaseMerge, rec.Stamp)
		case journalInternal:
			st.log = append(st.log, csp.Record{Kind: csp.RecordInternal, Note: rec.Note})
			if o := n.obsv; o != nil && o.Tracer != nil {
				o.Internal(n.cfg.Node, p, st.clock.Current(), rec.Note)
			}
		default:
			return nil, fmt.Errorf("node %d: journal holds unknown record kind %q", n.cfg.Node, rec.Kind)
		}
		st.ops++
		counts[p] = st.ops
	}
	// Session resume: our dial epochs must exceed anything the previous
	// incarnation used. Each incarnation gets a wide stride so redials
	// within a life never collide with the next life's base.
	n.mu.Lock()
	n.baseEpoch = n.rec.Journal.Restarts() << 16
	for j := range n.epochs {
		n.epochs[j] = n.baseEpoch
	}
	n.mu.Unlock()
	return counts, nil
}
