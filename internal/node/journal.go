package node

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
)

// Journal record kinds.
const (
	journalSend     = "send"
	journalRecv     = "recv"
	journalInternal = "internal"
	journalRestart  = "restart"
)

// JournalRecord is one committed operation in the crash-recovery journal:
// a rendezvous half (send = the sender's adopt, recv = the receiver's
// merge) or an internal event. The write-ahead discipline — a receiver
// journals before its ACK leaves the node, a sender after its adopt — plus
// the idempotent dedup/re-ACK protocol make every crash window safe: an
// operation is either in the journal (skipped on resume, its ACK
// re-answered from the dedup cache) or not (replayed from scratch, the
// peer's retransmission completing it deterministically).
type JournalRecord struct {
	Kind  string   `json:"kind"`
	Proc  int      `json:"proc"`
	Peer  int      `json:"peer,omitempty"`
	Seq   uint64   `json:"seq,omitempty"`
	Stamp vector.V `json:"stamp,omitempty"`
	Note  string   `json:"note,omitempty"`
}

// Journal is an append-only, fsync-per-record JSONL file of committed
// operations. Safe for concurrent use by a node's process goroutines.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	restarts int
}

// OpenJournal opens (creating if absent) a journal and replays it: it
// returns the committed operation records in file order, truncates a
// partial trailing line (a crash mid-append leaves at most one), and — if
// the file held any prior content — appends a restart marker so Restarts
// counts this incarnation.
func OpenJournal(path string) (*Journal, []JournalRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("node: open journal: %w", err)
	}
	recs, restarts, good, prior, err := replayJournal(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	// Drop the partial trailing line, if any, so appends start at a record
	// boundary.
	if err := f.Truncate(good); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("node: truncate journal: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("node: seek journal: %w", err)
	}
	j := &Journal{f: f, restarts: restarts}
	if prior {
		j.restarts++
		if err := j.Append(JournalRecord{Kind: journalRestart}); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
	}
	return j, recs, nil
}

// replayJournal scans the file, returning the operation records, the
// restart-marker count, the offset of the last complete record, and
// whether the file held any prior content.
func replayJournal(f *os.File) (recs []JournalRecord, restarts int, good int64, prior bool, err error) {
	r := bufio.NewReader(f)
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil {
			// A trailing fragment without '\n' is an interrupted append:
			// ignore it (it was never committed).
			if rerr == io.EOF {
				return recs, restarts, good, prior, nil
			}
			return nil, 0, 0, false, fmt.Errorf("node: read journal: %w", rerr)
		}
		var rec JournalRecord
		if json.Unmarshal(line, &rec) != nil {
			// A corrupt line means everything after it is untrustworthy;
			// stop replay at the last good record.
			return recs, restarts, good, prior, nil
		}
		good += int64(len(line))
		prior = true
		if rec.Kind == journalRestart {
			restarts++
			continue
		}
		recs = append(recs, rec)
	}
}

// Append commits one record: marshal, write, fsync. The record is durable
// when Append returns.
func (j *Journal) Append(rec JournalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("node: journal encode: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("node: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("node: journal sync: %w", err)
	}
	return nil
}

// Restarts counts this journal's restart markers — how many times the node
// has been restarted over this journal file (0 for a fresh run).
func (j *Journal) Restarts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.restarts
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// resumeState is a hosted process's state rebuilt from the journal.
type resumeState struct {
	clock *core.Clock
	log   []csp.Record
	seq   uint64
	ops   int
}

// journalCommit appends one record under recovery, failing the run if the
// journal cannot be made durable (continuing would break the write-ahead
// guarantee).
func (n *Node) journalCommit(rec JournalRecord) error {
	if n.rec == nil || n.rec.Journal == nil {
		return nil
	}
	if err := n.rec.Journal.Append(rec); err != nil {
		n.fail(err)
		return err
	}
	return nil
}

// Restore rebuilds hosted-process state from a replayed journal before Run:
// per-process clocks (each committed stamp re-adopted in order, which also
// validates the journal's causal integrity), rendezvous logs, send
// sequence counters, and the receive-side dedup cache (so a peer
// retransmitting a rendezvous this node committed just before crashing is
// re-ACKed instead of merged twice). It also re-emits the committed
// operations' obs trace events, so a post-crash JSONL trace still carries
// the full per-process history the tsanalyze oracle needs. It returns the
// number of committed operations per hosted process — the prefix of each
// program a resuming caller must skip.
func (n *Node) Restore(recs []JournalRecord) (map[int]int, error) {
	if n.rec == nil || n.rec.Journal == nil {
		return nil, errors.New("node: Restore requires Config.Recovery with a Journal")
	}
	counts := make(map[int]int)
	for _, rec := range recs {
		if rec.Kind == journalRestart {
			continue
		}
		p := rec.Proc
		if p < 0 || p >= len(n.cfg.Placement) || n.cfg.Placement[p] != n.cfg.Node {
			return nil, fmt.Errorf("node %d: journal holds process %d, not hosted here", n.cfg.Node, p)
		}
		st := n.restored[p]
		if st == nil {
			st = &resumeState{clock: core.NewClock(p, n.cfg.Dec)}
			n.restored[p] = st
		}
		switch rec.Kind {
		case journalSend:
			if err := st.clock.Adopt(rec.Stamp, rec.Peer); err != nil {
				return nil, fmt.Errorf("node %d: journal replay, process %d send to %d: %w", n.cfg.Node, p, rec.Peer, err)
			}
			st.log = append(st.log, csp.Record{Kind: csp.RecordSend, Peer: rec.Peer, Stamp: rec.Stamp})
			if rec.Seq > st.seq {
				st.seq = rec.Seq
			}
			n.obsv.Rendezvous(n.cfg.Node, p, rec.Peer, obs.PhaseAdopt, rec.Stamp)
		case journalRecv:
			if err := st.clock.Adopt(rec.Stamp, rec.Peer); err != nil {
				return nil, fmt.Errorf("node %d: journal replay, process %d recv from %d: %w", n.cfg.Node, p, rec.Peer, err)
			}
			st.log = append(st.log, csp.Record{Kind: csp.RecordRecv, Peer: rec.Peer, Stamp: rec.Stamp})
			if rec.Peer >= 0 && rec.Peer < len(n.cfg.Placement) && n.cfg.Placement[rec.Peer] != n.cfg.Node {
				n.noteMerged(rec.Peer, rec.Seq, p, rec.Stamp)
			}
			n.obsv.Rendezvous(n.cfg.Node, p, rec.Peer, obs.PhaseMerge, rec.Stamp)
		case journalInternal:
			st.log = append(st.log, csp.Record{Kind: csp.RecordInternal, Note: rec.Note})
			if o := n.obsv; o != nil && o.Tracer != nil {
				o.Internal(n.cfg.Node, p, st.clock.Current(), rec.Note)
			}
		default:
			return nil, fmt.Errorf("node %d: journal holds unknown record kind %q", n.cfg.Node, rec.Kind)
		}
		st.ops++
		counts[p] = st.ops
	}
	// Session resume: our dial epochs must exceed anything the previous
	// incarnation used. Each incarnation gets a wide stride so redials
	// within a life never collide with the next life's base.
	n.mu.Lock()
	n.baseEpoch = n.rec.Journal.Restarts() << 16
	for j := range n.epochs {
		n.epochs[j] = n.baseEpoch
	}
	n.mu.Unlock()
	return counts, nil
}
