// Package node hosts processes of a synchronous computation behind a real
// transport, speaking the internal/wire rendezvous protocol between nodes.
// It is the distributed counterpart of internal/csp: the same program shape
// (func(*Process) error), the same Figure 5 clock discipline, the same
// per-process rendezvous logs — but processes are placed on nodes, nodes
// exchange length-prefixed frames over a Transport (TCP in production, an
// in-memory loop in tests), and the piggybacked vectors travel
// delta-compressed with exact overhead accounting.
//
// # Rendezvous over the wire
//
// A send to a process on another node is a two-phase exchange:
//
//	(1) the sender piggybacks its current vector on a SYN frame;
//	(2) the receiving process performs the Figure 5 merge (componentwise
//	    max, increment the channel's group component), which yields the
//	    message timestamp;
//	(3) the receiver returns the agreed stamp on an ACK frame and the
//	    sender adopts it (core.Clock.Adopt) — equivalent to the symmetric
//	    merge, since the stamp dominates the sender's vector.
//
// A send to a process on the same node takes the identical path over an
// in-memory reply channel, so local and remote rendezvous are
// indistinguishable to programs.
//
// # Topology of a run
//
// Placement maps every process to its node. Nodes form a full data mesh:
// the higher-numbered node dials the lower, and each connection opens with
// a HELLO handshake carrying the node id, its hosted processes, and a
// digest of the edge decomposition plus placement — nodes configured with
// different topologies refuse to talk. After its programs finish, a node
// streams its rendezvous logs to a collector node, which reconstructs the
// global computation with csp.Reconstruct.
package node

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/obs"
	tssync "syncstamp/internal/sync"
	"syncstamp/internal/vector"
	"syncstamp/internal/wire"
)

// ErrStopped is returned by Send/Recv when the node has been stopped or the
// run aborted (a peer failure, a deadline, or an explicit Stop).
var ErrStopped = errors.New("node: stopped")

// Default timeouts applied when Config leaves them zero.
const (
	DefaultHandshakeTimeout  = 10 * time.Second
	DefaultRendezvousTimeout = 10 * time.Second
)

// Config describes one node's slice of a distributed run. All nodes of a
// run must agree on Placement and Dec — the HELLO digest enforces it.
type Config struct {
	// Node is this node's index in [0, nodes).
	Node int
	// Placement maps each process to the node hosting it. Its length must
	// equal Dec.N(), and every node index up to the maximum must host at
	// least one process.
	Placement []int
	// Dec is the edge decomposition all clocks run under.
	Dec *decomp.Decomposition
	// HandshakeTimeout bounds connection establishment (dial retries
	// included) and the HELLO exchange. Zero means the default.
	HandshakeTimeout time.Duration
	// RendezvousTimeout bounds how long a Send waits for its ACK (or local
	// reply). Exceeding it aborts the run: a synchronous computation cannot
	// proceed past a lost rendezvous partner. Zero means the default.
	RendezvousTimeout time.Duration
	// Obs is the node's observability surface. Nil disables it; the
	// rendezvous hot paths then cost nothing extra.
	Obs *obs.Obs
	// FlightRecorder, when positive, turns on the always-on flight
	// recorder: a fixed ring of that many recent rendezvous/internal
	// events, recorded on the same obs hooks the tracer uses but bounded,
	// so it is cheap enough to leave on in production. The ring is dumped
	// to FlightDump on the first failure, on a peer loss, at end of run,
	// and on demand (SIGQUIT / the /debug/flight?dump=1 endpoint). When
	// Obs is nil a minimal surface is created to host the ring.
	FlightRecorder int
	// FlightDump is the file the flight recorder dumps to — a journal-style
	// JSONL of the ring's events in deterministic stamp order, written
	// atomically (temp file, fsync, rename) so a reader never sees a torn
	// dump. Empty keeps the ring in memory only (still served over
	// /debug/flight).
	FlightDump string
	// NoCoalesce disables frame coalescing on data connections: every frame
	// is flushed to the transport individually, one write per frame, as the
	// pre-batching runtime did. It is the baseline arm of cmd/tsbench and a
	// debugging aid; the default (false) lets concurrent senders share
	// transport writes via the flush-on-idle writer.
	NoCoalesce bool
	// Recovery, when non-nil, enables the loss-tolerant protocol:
	// retransmission, dedup, reconnection, degradation policy, and
	// (optionally) crash-recovery journaling. Nil keeps the original
	// fail-stop semantics: any connection error aborts the run.
	Recovery *RecoveryConfig
}

// inbound is one rendezvous request parked in a process's mailbox: the
// sender's pre-merge vector, awaiting the receiver's merge. A local sender
// parks on reply; a remote sender parks on the ACK frame the receiver's
// node sends back.
type inbound struct {
	from  int
	seq   uint64
	vec   vector.V
	reply chan vector.V // nil for remote senders
}

// peerConn is one established data connection to a peer node. The encoder
// is shared by every local process sending toward that node, serialized by
// mu; the decoder is owned by the connection's single reader goroutine.
type peerConn struct {
	n     *Node
	node  int
	epoch int // HELLO epoch; reconnects carry strictly larger ones
	c     net.Conn
	dec   *wire.Decoder

	// pending counts senders that have committed to encoding a frame but
	// not yet finished: the one that decrements it to zero flushes the
	// write buffer. That is the whole flush-on-idle discipline — a burst of
	// concurrent SYNs/ACKs from independent channel pairs shares one
	// transport write, while a lone frame still reaches the wire before its
	// send returns (the final decrement happens under mu, after the last
	// encode, so no frame is ever stranded unflushed).
	pending atomic.Int64

	mu  sync.Mutex
	enc *wire.Encoder
}

// flushYields is how many times the would-be flusher yields the scheduler
// before writing the batch to the transport. Transport writes on a socket
// never block (the kernel buffers them), so on a single CPU a sender runs
// its whole send without ever handing the processor to a concurrent sender —
// pending would stay at 1 and every frame would get its own transport
// write. Yielding first lets other runnable senders encode into the batch;
// whoever decrements pending to zero last inherits the flush. With nothing
// else runnable a yield returns immediately, so a lone send pays
// nanoseconds.
const flushYields = 4

// send encodes one frame, serializing concurrent senders, and charges the
// owning node's live wire-traffic counters (no-ops with obs disabled).
// With coalescing enabled the encoder runs in batch mode and the last
// concurrent sender out flushes for everyone; send may return with its
// frame still in the write buffer only when a later sender has already
// committed to encoding — that sender (or its successor) flushes it.
func (pc *peerConn) send(f *wire.Frame) error {
	if pc.n.asyncOn() && (f.Kind == wire.KindSyn || f.Kind == wire.KindAck) {
		// Async mode piggybacks the synchronizer's cumulative safe counter on
		// every rendezvous frame toward this peer; retransmissions carry the
		// freshest value automatically because it is read per encode.
		f.Safe = pc.n.safeFor(pc.node)
	}
	pc.pending.Add(1)
	//nolint:lockcheck released early on every branch below: the flush-on-idle protocol must drop the lock before yielding so later senders can encode
	pc.mu.Lock()
	k := int(f.Kind)
	before := 0
	if k < len(pc.n.wireBytes) {
		before = pc.enc.Stats.Bytes[k]
	}
	err := pc.enc.Encode(f)
	if err == nil && k < len(pc.n.wireBytes) {
		pc.n.wireFrames[k].Add(1)
		pc.n.wireBytes[k].Add(int64(pc.enc.Stats.Bytes[k] - before))
	}
	if pc.pending.Add(-1) > 0 {
		// A later sender is already committed to encoding; the flush is its
		// (or its successor's) responsibility.
		pc.mu.Unlock()
		return err
	}
	pc.mu.Unlock()
	if pc.n.cfg.NoCoalesce {
		return err // Encode flushed itself
	}
	for y := 0; y < flushYields; y++ {
		runtime.Gosched()
		if pc.pending.Load() > 0 {
			return err // a new sender arrived; it inherits the flush
		}
	}
	pc.mu.Lock()
	// Recheck under the lock: a sender that slipped in after the last yield
	// holds or awaits mu, and pending covers it either way.
	if pc.pending.Load() == 0 {
		if ferr := pc.enc.Flush(); err == nil {
			err = ferr
		}
	}
	pc.mu.Unlock()
	return err
}

// overhead snapshots the encoder's piggyback accounting.
func (pc *peerConn) overhead() core.Overhead {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.enc.Overhead
}

// stats snapshots the encoder's per-kind frame accounting.
func (pc *peerConn) stats() wire.Stats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.enc.Stats
}

// reportConn is an inbound log-report stream awaiting Collect.
type reportConn struct {
	node  int
	procs []int
	c     net.Conn
	dec   *wire.Decoder
}

// Node hosts the processes placed on one node and the connections to its
// peers. Create with New, drive with Run, and release with Close.
type Node struct {
	cfg    Config
	nodes  int
	local  []int // processes hosted here, ascending
	digest uint64
	tr     Transport

	stop     chan struct{}
	stopOnce sync.Once

	failMu  sync.Mutex
	failErr error

	mu         sync.Mutex
	conns      []*peerConn     // indexed by peer node; nil until connected
	waiters    []chan vector.V // indexed by local sender process; nil unless a send is parked
	waiterSeq  []uint64        // sequence number each parked sender expects its ACK to echo
	retired    []*peerConn     // replaced or dead connections, kept for accounting
	epochs     []int           // highest HELLO epoch used/seen per peer
	excluded   []bool          // peers removed from the run (PeerLossExclude)
	byeSeen    []bool          // peers that announced completion
	byeFailed  []bool          // peers our own BYE provably did not reach
	recovering []bool          // peers with a recoverPeer goroutine in flight
	byeSent    bool            // this node announced completion
	exclCh     chan struct{}   // closed+replaced on each exclusion (broadcast)

	mailboxes []chan inbound // indexed by process; nil for remote processes

	// Recovery state (rec nil means fail-stop).
	rec        *RecoveryConfig
	dedup      []dedupEntry // per sender process, guarded by mu
	restored   map[int]*resumeState
	baseEpoch  int
	peerEvent  chan struct{}
	recoveryWG sync.WaitGroup

	// Asynchronous-substrate state (coord nil means the synchronizer is
	// off; see async.go). safeTx counts committed rendezvous toward each
	// peer node (piggybacked on outgoing SYN/ACK); safeRx (guarded by mu)
	// is the highest safe counter seen from each peer; suspectWatch
	// (guarded by mu) marks peers with a suspicion watchdog in flight.
	coord        *tssync.Coordinator
	safeTx       []atomic.Uint64
	safeRx       []uint64
	suspectWatch []bool
	peerRTT      []*obs.Histogram
	peerHealth   []*obs.Gauge

	retransmits atomic.Int64
	reconnects  atomic.Int64
	deduped     atomic.Int64
	spurious    atomic.Int64
	suspicions  atomic.Int64

	reports   chan *reportConn
	regCh     chan int      // handshake completions from the accept loop
	connDone  chan struct{} // closed once the connect phase stops counting
	acceptWG  sync.WaitGroup
	readersWG sync.WaitGroup
	startOnce sync.Once

	// Observability: the surface, its resolved instruments, the per-kind
	// wire-traffic counters, and the dropped-frame count (kept even with
	// obs disabled, so RunInfo can always report it).
	obsv       *obs.Obs
	ins        obs.Instruments
	wireFrames [wire.KindMax]*obs.Counter
	wireBytes  [wire.KindMax]*obs.Counter
	dropped    atomic.Int64

	// rollup accumulates peer nodes' METRICS snapshots during a collect
	// (created lazily, guarded by mu); dumpMu serializes flight dumps.
	rollup *obs.Registry
	dumpMu sync.Mutex
}

// New validates the configuration and returns an idle node. The transport
// is adopted: Close closes it.
func New(cfg Config, tr Transport) (*Node, error) {
	if cfg.Dec == nil {
		return nil, errors.New("node: nil decomposition")
	}
	if len(cfg.Placement) != cfg.Dec.N() {
		return nil, fmt.Errorf("node: placement covers %d processes, decomposition has %d", len(cfg.Placement), cfg.Dec.N())
	}
	nodes := cfg.Node + 1
	for p, host := range cfg.Placement {
		if host < 0 {
			return nil, fmt.Errorf("node: process %d placed on negative node %d", p, host)
		}
		if host+1 > nodes {
			nodes = host + 1
		}
	}
	if cfg.Node < 0 {
		return nil, fmt.Errorf("node: negative node index %d", cfg.Node)
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if cfg.RendezvousTimeout <= 0 {
		cfg.RendezvousTimeout = DefaultRendezvousTimeout
	}
	if cfg.Recovery != nil {
		rc := *cfg.Recovery // normalized copy; the caller's struct stays untouched
		if rc.RetransmitMin <= 0 {
			rc.RetransmitMin = DefaultRetransmitMin
		}
		if rc.RetransmitMax < rc.RetransmitMin {
			rc.RetransmitMax = DefaultRetransmitMax
		}
		if rc.RetransmitMax < rc.RetransmitMin {
			rc.RetransmitMax = rc.RetransmitMin
		}
		if rc.ReconnectWindow <= 0 {
			rc.ReconnectWindow = cfg.HandshakeTimeout
		}
		if rc.Async != nil {
			ac := *rc.Async
			if err := ac.Validate(); err != nil {
				return nil, fmt.Errorf("node: %w", err)
			}
			rc.Async = &ac
		}
		cfg.Recovery = &rc
	}
	n := &Node{
		cfg:        cfg,
		nodes:      nodes,
		digest:     wire.Digest(cfg.Dec, cfg.Placement),
		tr:         tr,
		stop:       make(chan struct{}),
		conns:      make([]*peerConn, nodes),
		waiters:    make([]chan vector.V, cfg.Dec.N()),
		waiterSeq:  make([]uint64, cfg.Dec.N()),
		epochs:     make([]int, nodes),
		excluded:   make([]bool, nodes),
		byeSeen:    make([]bool, nodes),
		byeFailed:  make([]bool, nodes),
		recovering: make([]bool, nodes),
		exclCh:     make(chan struct{}),
		mailboxes:  make([]chan inbound, cfg.Dec.N()),
		reports:    make(chan *reportConn, nodes),
		regCh:      make(chan int, nodes),
		connDone:   make(chan struct{}),
		rec:        cfg.Recovery,
		dedup:      make([]dedupEntry, cfg.Dec.N()),
		restored:   make(map[int]*resumeState),
		peerEvent:  make(chan struct{}, 1),
	}
	for p, host := range cfg.Placement {
		if host == cfg.Node {
			n.local = append(n.local, p)
			// One slot per potential sender keeps any valid computation's
			// senders from blocking on mailbox insertion.
			n.mailboxes[p] = make(chan inbound, cfg.Dec.N())
		}
	}
	n.obsv = cfg.Obs
	if cfg.FlightRecorder > 0 {
		if n.obsv == nil {
			// A minimal surface: no metrics, no tracer — just the ring.
			n.obsv = &obs.Obs{}
			n.cfg.Obs = n.obsv
		}
		if n.obsv.Flight == nil {
			n.obsv.Flight = obs.NewFlight(cfg.FlightRecorder)
		}
		n.obsv.Flight.SetDumpHook(func() { n.DumpFlight() })
	}
	n.ins = obs.NewInstruments(n.cfg.Obs.Registry(), cfg.Dec.N())
	if r := n.cfg.Obs.Registry(); r != nil {
		for _, k := range wire.Kinds() {
			fn, bn := obs.FrameMetrics(k.String())
			n.wireFrames[k] = r.Counter(fn)
			n.wireBytes[k] = r.Counter(bn)
		}
	}
	if n.rec != nil && n.rec.Async != nil {
		n.initAsync()
	}
	return n, nil
}

// Local returns the processes hosted on this node, ascending.
func (n *Node) Local() []int { return append([]int(nil), n.local...) }

// Stop aborts the run: parked Sends and Recvs return ErrStopped, readers
// and the accept loop unblock. Idempotent.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		_ = n.tr.Close()
		n.mu.Lock()
		conns := append([]*peerConn(nil), n.conns...)
		n.mu.Unlock()
		for _, pc := range conns {
			if pc != nil {
				_ = pc.c.Close()
			}
		}
	})
}

// Close stops the node and waits for its goroutines to drain.
func (n *Node) Close() {
	n.Stop()
	n.acceptWG.Wait()
	n.recoveryWG.Wait()
	n.readersWG.Wait()
}

// fail records the first abort cause and stops the node. The first failure
// also dumps the flight recorder — the post-mortem is written while the
// evidence is fresh, before teardown races can rotate events out of the
// ring.
func (n *Node) fail(err error) {
	n.failMu.Lock()
	first := n.failErr == nil
	if first {
		n.failErr = err
	}
	n.failMu.Unlock()
	if first {
		n.DumpFlight()
	}
	n.Stop()
}

func (n *Node) failure() error {
	n.failMu.Lock()
	defer n.failMu.Unlock()
	return n.failErr
}

func (n *Node) stopped() bool {
	select {
	case <-n.stop:
		return true
	default:
		return false
	}
}

// start launches the accept loop (first Run or Collect does it).
func (n *Node) start() {
	n.startOnce.Do(func() {
		n.acceptWG.Add(1)
		go n.acceptLoop()
	})
}

// acceptLoop owns Transport.Accept, performing the HELLO handshake inline
// and dispatching each stream by role: data connections get a reader
// goroutine, report streams are parked for Collect.
func (n *Node) acceptLoop() {
	defer n.acceptWG.Done()
	for {
		c, err := n.tr.Accept()
		if err != nil {
			return // transport closed (Stop or Close)
		}
		if err := n.handleAccept(c); err != nil {
			_ = c.Close()
			if !n.stopped() {
				n.fail(err)
			}
			return
		}
	}
}

// handleAccept completes the server side of the HELLO handshake.
func (n *Node) handleAccept(c net.Conn) error {
	_ = c.SetDeadline(time.Now().Add(n.cfg.HandshakeTimeout))
	dec := wire.NewDecoder(c, n.cfg.Dec.D())
	f, err := dec.Decode()
	if err != nil {
		return fmt.Errorf("node %d: handshake read: %w", n.cfg.Node, err)
	}
	if f.Kind != wire.KindHello {
		return fmt.Errorf("node %d: handshake opened with %v, want HELLO", n.cfg.Node, f.Kind)
	}
	if f.Digest != n.digest {
		return fmt.Errorf("node %d: node %d has topology digest %#x, ours is %#x (mismatched decomposition or placement)", n.cfg.Node, f.Node, f.Digest, n.digest)
	}
	if f.Node < 0 || f.Node >= n.nodes || f.Node == n.cfg.Node {
		return fmt.Errorf("node %d: handshake from implausible node %d", n.cfg.Node, f.Node)
	}
	switch f.Role {
	case wire.RoleData:
		enc := wire.NewEncoder(c, n.cfg.Dec.D())
		enc.SelfContained = n.rec != nil
		hello := &wire.Frame{Kind: wire.KindHello, Role: wire.RoleData, Node: n.cfg.Node, Procs: n.local, Digest: n.digest, Epoch: f.Epoch}
		if err := enc.Encode(hello); err != nil {
			return fmt.Errorf("node %d: handshake reply to node %d: %w", n.cfg.Node, f.Node, err)
		}
		_ = c.SetDeadline(time.Time{})
		// The HELLO above flushed itself; from here the stream carries data
		// frames, which coalesce under the flush-on-idle writer.
		enc.SetBatch(!n.cfg.NoCoalesce)
		pc := &peerConn{n: n, node: f.Node, epoch: f.Epoch, c: c, enc: enc, dec: dec}
		if err := n.register(pc); err != nil {
			return err
		}
		// Announce to the connect phase if it is still counting peers; a
		// reconnect accepted after the mesh is up has no one to tell.
		select {
		case n.regCh <- f.Node:
		case <-n.connDone:
		case <-n.stop:
		}
		return nil
	case wire.RoleReport:
		_ = c.SetDeadline(time.Time{})
		select {
		case n.reports <- &reportConn{node: f.Node, procs: f.Procs, c: c, dec: dec}:
			return nil
		case <-n.stop:
			return ErrStopped
		}
	default:
		return fmt.Errorf("node %d: handshake with unknown role %d", n.cfg.Node, f.Role)
	}
}

// register records an established data connection and starts its reader. A
// connection with a strictly higher HELLO epoch replaces the existing one
// (session resume after a peer loss this side has not noticed yet); equal
// or lower epochs are duplicates and refused.
func (n *Node) register(pc *peerConn) error {
	n.mu.Lock()
	old := n.conns[pc.node]
	dup := old != nil && pc.epoch <= old.epoch
	var announce bool
	if !dup {
		n.conns[pc.node] = pc
		if pc.epoch > n.epochs[pc.node] {
			n.epochs[pc.node] = pc.epoch
		}
		if old != nil {
			n.retired = append(n.retired, old)
		}
		announce = n.byeSent
	}
	n.mu.Unlock()
	if dup {
		return fmt.Errorf("node %d: duplicate connection from node %d", n.cfg.Node, pc.node)
	}
	if old != nil {
		_ = old.c.Close()
	}
	if pc.epoch > 0 {
		n.reconnects.Add(1)
		n.ins.Reconnects.Add(1)
	}
	n.readersWG.Add(1)
	go n.readLoop(pc)
	if announce {
		// Our run already finished; the resumed session must still learn it
		// (and a BYE the dead session swallowed is re-announced here, which
		// settles the debt holding our own end-of-run barrier open).
		if err := pc.send(&wire.Frame{Kind: wire.KindBye}); err == nil {
			n.mu.Lock()
			n.byeFailed[pc.node] = false
			n.mu.Unlock()
			n.notePeerEvent()
		} else {
			n.noteByeFailed(pc.node)
		}
	}
	return nil
}

// dialPeer completes the client side of the HELLO handshake with a
// lower-numbered node. epoch 0 is a first connection; reconnects carry
// strictly larger epochs so the acceptor can replace a stale session.
func (n *Node) dialPeer(j, epoch int) error {
	deadline := time.Now().Add(n.cfg.HandshakeTimeout)
	c, err := n.tr.Dial(j, deadline)
	if err != nil {
		return fmt.Errorf("node %d: %w", n.cfg.Node, err)
	}
	_ = c.SetDeadline(deadline)
	enc := wire.NewEncoder(c, n.cfg.Dec.D())
	enc.SelfContained = n.rec != nil
	hello := &wire.Frame{Kind: wire.KindHello, Role: wire.RoleData, Node: n.cfg.Node, Procs: n.local, Digest: n.digest, Epoch: epoch}
	if err := enc.Encode(hello); err != nil {
		_ = c.Close()
		return fmt.Errorf("node %d: handshake with node %d: %w", n.cfg.Node, j, err)
	}
	dec := wire.NewDecoder(c, n.cfg.Dec.D())
	f, err := dec.Decode()
	if err != nil {
		_ = c.Close()
		return fmt.Errorf("node %d: handshake reply from node %d: %w", n.cfg.Node, j, err)
	}
	if f.Kind != wire.KindHello || f.Node != j {
		_ = c.Close()
		return fmt.Errorf("node %d: handshake reply from node %d carried %v/node %d", n.cfg.Node, j, f.Kind, f.Node)
	}
	if f.Digest != n.digest {
		_ = c.Close()
		return fmt.Errorf("node %d: node %d has topology digest %#x, ours is %#x (mismatched decomposition or placement)", n.cfg.Node, j, f.Digest, n.digest)
	}
	_ = c.SetDeadline(time.Time{})
	enc.SetBatch(!n.cfg.NoCoalesce)
	return n.register(&peerConn{n: n, node: j, epoch: epoch, c: c, enc: enc, dec: dec})
}

// connect establishes the full data mesh: dial every lower node, await a
// dial from every higher one.
func (n *Node) connect() error {
	n.start()
	n.mu.Lock()
	epoch := n.baseEpoch // 0, or the restart stride after a journal Restore
	n.mu.Unlock()
	for j := 0; j < n.cfg.Node; j++ {
		if err := n.dialPeer(j, epoch); err != nil {
			return err
		}
	}
	want := n.nodes - 1 - n.cfg.Node
	timer := time.NewTimer(n.cfg.HandshakeTimeout)
	defer timer.Stop()
	for have := 0; have < want; {
		select {
		case <-n.regCh:
			have++
		case <-n.stop:
			if err := n.failure(); err != nil {
				return err
			}
			return ErrStopped
		case <-timer.C:
			return fmt.Errorf("node %d: %d of %d higher peers connected within %v", n.cfg.Node, have, want, n.cfg.HandshakeTimeout)
		}
	}
	close(n.connDone)
	return nil
}

// readLoop demultiplexes one data connection: SYNs go to the target
// process's mailbox, ACKs release the parked sender, BYE announces the
// peer's clean completion. Any protocol violation or transport error while
// the run is live aborts the node.
func (n *Node) readLoop(pc *peerConn) {
	defer n.readersWG.Done()
	for {
		f, err := pc.dec.Decode()
		if err != nil {
			if n.stopped() {
				return
			}
			if n.rec != nil {
				// Loss-tolerant mode: the connection died, the run need not.
				n.peerLost(pc, err)
				return
			}
			n.fail(fmt.Errorf("node %d: connection to node %d: %w", n.cfg.Node, pc.node, err))
			return
		}
		n.noteAlive(pc.node, f)
		switch f.Kind {
		case wire.KindSyn:
			if f.To < 0 || f.To >= len(n.mailboxes) || n.mailboxes[f.To] == nil {
				n.fail(fmt.Errorf("node %d: SYN from node %d targets process %d, not hosted here", n.cfg.Node, pc.node, f.To))
				return
			}
			if n.rec != nil {
				reack, deliver := n.dedupCheck(f)
				if !deliver {
					if reack != nil {
						// The merge committed but its ACK was lost: answer
						// the retransmission from the cache, idempotently.
						// Asynchronously — the read loop is this connection's
						// only drain, and two nodes re-ACKing each other over
						// unbuffered streams would deadlock if either blocked
						// here. The goroutine unblocks when the peer reads or
						// the connection dies; readersWG makes it joinable at
						// Close, which closes the conn first so send cannot
						// block forever.
						n.readersWG.Add(1)
						go func() {
							defer n.readersWG.Done()
							_ = pc.send(reack)
						}()
					}
					continue
				}
			}
			select {
			case n.mailboxes[f.To] <- inbound{from: f.From, seq: f.Seq, vec: f.Vec}:
			case <-n.stop:
				return
			}
		case wire.KindAck:
			n.mu.Lock()
			var w chan vector.V
			if f.To >= 0 && f.To < len(n.waiters) && n.waiterSeq[f.To] == f.Seq {
				w = n.waiters[f.To]
				n.waiters[f.To] = nil
			}
			n.mu.Unlock()
			if w == nil {
				// A sender whose rendezvous deadline expired has already
				// cleared its waiter, and a duplicate ACK's sender has moved
				// on to another sequence number — both are legitimate races,
				// not protocol violations: count and keep reading.
				n.noteDropped()
				continue
			}
			w <- f.Vec // buffered; the sender may have timed out, never blocks
		case wire.KindBye:
			n.mu.Lock()
			n.byeSeen[pc.node] = true
			n.mu.Unlock()
			n.notePeerEvent()
			if n.rec != nil {
				// Keep draining: at-least-once delivery means retransmissions,
				// duplicates, and reorder stragglers can trail the peer's BYE,
				// and a parked writer on the far side needs them consumed (and
				// lost-ACK retransmissions still answered from the dedup
				// cache). The loop ends when the connection is torn down.
				continue
			}
			return
		default:
			// HELLO or INTERNAL frames do not belong on an established data
			// stream; count and drop them rather than killing the run.
			n.noteDropped()
		}
	}
}

// noteDropped records one discarded frame, both for RunInfo and /metrics.
func (n *Node) noteDropped() {
	n.dropped.Add(1)
	n.ins.DroppedFrames.Add(1)
}

// DroppedFrames reports how many frames the read loops have discarded so
// far (late ACKs after a rendezvous timeout, unexpected kinds).
func (n *Node) DroppedFrames() int64 { return n.dropped.Load() }

// registerWaiter parks a sender: the next ACK addressed to proc and
// echoing seq lands on the returned channel. Must be called before the SYN
// is written, or the ACK could race past.
func (n *Node) registerWaiter(proc int, seq uint64) chan vector.V {
	ch := make(chan vector.V, 1)
	n.mu.Lock()
	n.waiters[proc] = ch
	n.waiterSeq[proc] = seq
	n.mu.Unlock()
	return ch
}

func (n *Node) clearWaiter(proc int) {
	n.mu.Lock()
	n.waiters[proc] = nil
	n.mu.Unlock()
}

// connTo returns the data connection to a peer node.
func (n *Node) connTo(node int) (*peerConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node < 0 || node >= len(n.conns) || n.conns[node] == nil {
		return nil, fmt.Errorf("node %d: no connection to node %d", n.cfg.Node, node)
	}
	return n.conns[node], nil
}

// RunInfo is the local outcome of a completed run.
type RunInfo struct {
	// Logs holds each hosted process's rendezvous log, keyed by process.
	Logs map[int][]csp.Record
	// Overhead is the exact piggyback accounting over this node's data
	// connections (local rendezvous cost no wire bytes and are excluded).
	Overhead core.Overhead
	// Frames is the node's sent wire traffic by frame kind, header bytes
	// included.
	Frames wire.Stats
	// Dropped counts frames the read loops discarded: late ACKs arriving
	// after a rendezvous timeout and frame kinds unexpected on a data
	// connection.
	Dropped int64
	// Retransmits counts SYN frames re-sent after a backoff interval
	// expired without the ACK (recovery mode only).
	Retransmits int64
	// Reconnects counts data connections re-established after a peer loss.
	Reconnects int64
	// Deduped counts duplicate SYN frames the receive path suppressed.
	Deduped int64
	// Excluded lists the peer nodes removed from the run under
	// PeerLossExclude, ascending. Empty on a fully healthy run.
	Excluded []int
	// JournalAppends and JournalSyncs count committed journal records and
	// the fsync batches that made them durable (recovery mode with a
	// journal only; both zero otherwise). Syncs well below Appends is group
	// commit doing its job.
	JournalAppends int64
	JournalSyncs   int64
	// SegmentsSpilled, SpillBytes, and ShardsVerified account the sharded
	// collector tree (CollectTree only; all zero after a plain Collect):
	// verified segments spilled to disk, their byte volume, and the shard
	// summaries that reached the root.
	SegmentsSpilled int64
	SpillBytes      int64
	ShardsVerified  int64
	// Rollup is the cluster-wide metrics view the collector assembled
	// (Collect/CollectTree on the collector node only; nil elsewhere):
	// every reporting node's registry snapshot and every collector-tree
	// leaf's shard registry, merged into this node's own metrics — counters
	// and gauges add, histograms merge bucket-wise. The same totals are
	// folded into the node's live registry, so /metrics serves the merged
	// cluster view.
	Rollup *obs.Snapshot
	// Spurious and Suspicions are async-mode totals (zero otherwise):
	// retransmissions the Eifel-style detector proved unnecessary, and
	// transitions of any peer's health FSM into the suspect state.
	Spurious   int64
	Suspicions int64
	// PeerRTT and PeerHealth are async mode's per-peer synchronizer view,
	// keyed by peer node id: the RTT estimator and histogram quantiles, and
	// the health FSM's final state name. Nil outside async mode.
	PeerRTT    map[int]RTTStats
	PeerHealth map[int]string
}

// FrameMap renders a wire accounting as the obs.Meta frame table, omitting
// kinds that never appeared.
func FrameMap(s wire.Stats) map[string]obs.FrameStats {
	m := make(map[string]obs.FrameStats)
	for _, k := range wire.Kinds() {
		if s.Frames[k] == 0 {
			continue
		}
		m[k.String()] = obs.FrameStats{Frames: s.Frames[k], Bytes: s.Bytes[k]}
	}
	return m
}

// Run connects the data mesh, executes one program per hosted process (a
// missing or nil entry means "immediately done"), and waits for every
// hosted program and every peer node to finish. It returns the hosted
// processes' rendezvous logs and the wire-overhead account. Any program
// error, peer failure, or deadline aborts the whole run.
func (n *Node) Run(programs map[int]func(*Process) error) (*RunInfo, error) {
	if err := n.connect(); err != nil {
		n.fail(err)
		return nil, err
	}
	procs := make([]*Process, len(n.local))
	errs := make([]error, len(n.local))
	var wg sync.WaitGroup
	for i, p := range n.local {
		if st := n.restored[p]; st != nil {
			// Resume from the journal: the clock, log, and send sequence
			// counter continue where the previous incarnation committed.
			procs[i] = &Process{id: p, n: n, clock: st.clock, log: st.log, seq: st.seq}
		} else {
			procs[i] = &Process{id: p, n: n, clock: core.NewClock(p, n.cfg.Dec)}
		}
		prog := programs[p]
		if prog == nil {
			continue
		}
		wg.Add(1)
		go func(i int, proc *Process, prog func(*Process) error) {
			defer wg.Done()
			if err := prog(proc); err != nil {
				errs[i] = err
				n.fail(fmt.Errorf("node %d: process %d: %w", n.cfg.Node, proc.id, err))
			}
		}(i, procs[i], prog)
	}
	wg.Wait()

	// Announce completion; peers' readers exit on our BYE, ours exit on
	// theirs. Without recovery, waiting for the readers is the run's global
	// barrier; with it, readers die and are replaced across reconnects, so
	// the barrier is instead "every peer said BYE or was excluded" (a
	// reconnect registered after this point re-announces, see register).
	if !n.stopped() {
		n.mu.Lock()
		n.byeSent = true
		conns := append([]*peerConn(nil), n.conns...)
		n.mu.Unlock()
		for j, pc := range conns {
			if j == n.cfg.Node {
				continue
			}
			if pc == nil {
				if n.rec != nil {
					// The peer is mid-reconnect: our BYE has no connection to
					// travel on. Recovery re-announces it on the resumed
					// session; until then the peer may be parked on our BYE.
					n.noteByeFailed(j)
				}
				continue
			}
			if err := pc.send(&wire.Frame{Kind: wire.KindBye}); err != nil && !n.stopped() {
				if n.rec == nil {
					n.fail(fmt.Errorf("node %d: closing connection to node %d: %w", n.cfg.Node, pc.node, err))
					continue
				}
				// The connection died under our BYE; the peer never saw it
				// and its end-of-run barrier is now waiting on us. Mark the
				// debt so our own barrier holds until a resumed session
				// re-announces (register clears the debt).
				n.noteByeFailed(j)
			}
		}
	}
	if n.rec != nil {
		n.awaitPeersDone()
	} else {
		n.readersWG.Wait()
	}

	info := &RunInfo{Logs: make(map[int][]csp.Record, len(n.local))}
	n.mu.Lock()
	conns := append(append([]*peerConn(nil), n.conns...), n.retired...)
	n.mu.Unlock()
	for _, pc := range conns {
		if pc == nil {
			continue
		}
		info.Overhead.Merge(pc.overhead())
		info.Frames.Merge(pc.stats())
		_ = pc.c.Close()
	}
	info.Dropped = n.dropped.Load()
	info.Retransmits = n.retransmits.Load()
	info.Reconnects = n.reconnects.Load()
	info.Deduped = n.deduped.Load()
	info.Excluded = n.excludedList()
	n.asyncInfo(info)
	if n.rec != nil && n.rec.Journal != nil {
		js := n.rec.Journal.Stats()
		info.JournalAppends = js.Appends
		info.JournalSyncs = js.Syncs
		if r := n.cfg.Obs.Registry(); r != nil {
			r.Gauge(obs.MetricJournalAppends).Set(js.Appends)
			r.Gauge(obs.MetricJournalSyncs).Set(js.Syncs)
		}
	}
	for i, p := range n.local {
		info.Logs[p] = procs[i].log
	}
	// End-of-run dump: after a journal Restore re-primed the ring, this
	// dump holds the incarnation's complete committed history — the
	// post-mortem a kill -9'd predecessor could never write.
	n.DumpFlight()

	// Root cause: prefer a program's own error over the ErrStopped echoes
	// of its neighbors, mirroring csp.Wait.
	pick := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if pick == -1 || (errors.Is(errs[pick], ErrStopped) && !errors.Is(err, ErrStopped)) {
			pick = i
		}
	}
	if pick >= 0 && !errors.Is(errs[pick], ErrStopped) {
		return info, fmt.Errorf("node %d: process %d: %w", n.cfg.Node, n.local[pick], errs[pick])
	}
	if err := n.failure(); err != nil {
		return info, err
	}
	if pick >= 0 {
		return info, fmt.Errorf("node %d: process %d: %w", n.cfg.Node, n.local[pick], errs[pick])
	}
	return info, nil
}
