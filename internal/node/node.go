// Package node hosts processes of a synchronous computation behind a real
// transport, speaking the internal/wire rendezvous protocol between nodes.
// It is the distributed counterpart of internal/csp: the same program shape
// (func(*Process) error), the same Figure 5 clock discipline, the same
// per-process rendezvous logs — but processes are placed on nodes, nodes
// exchange length-prefixed frames over a Transport (TCP in production, an
// in-memory loop in tests), and the piggybacked vectors travel
// delta-compressed with exact overhead accounting.
//
// # Rendezvous over the wire
//
// A send to a process on another node is a two-phase exchange:
//
//	(1) the sender piggybacks its current vector on a SYN frame;
//	(2) the receiving process performs the Figure 5 merge (componentwise
//	    max, increment the channel's group component), which yields the
//	    message timestamp;
//	(3) the receiver returns the agreed stamp on an ACK frame and the
//	    sender adopts it (core.Clock.Adopt) — equivalent to the symmetric
//	    merge, since the stamp dominates the sender's vector.
//
// A send to a process on the same node takes the identical path over an
// in-memory reply channel, so local and remote rendezvous are
// indistinguishable to programs.
//
// # Topology of a run
//
// Placement maps every process to its node. Nodes form a full data mesh:
// the higher-numbered node dials the lower, and each connection opens with
// a HELLO handshake carrying the node id, its hosted processes, and a
// digest of the edge decomposition plus placement — nodes configured with
// different topologies refuse to talk. After its programs finish, a node
// streams its rendezvous logs to a collector node, which reconstructs the
// global computation with csp.Reconstruct.
package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"syncstamp/internal/core"
	"syncstamp/internal/csp"
	"syncstamp/internal/decomp"
	"syncstamp/internal/obs"
	"syncstamp/internal/vector"
	"syncstamp/internal/wire"
)

// ErrStopped is returned by Send/Recv when the node has been stopped or the
// run aborted (a peer failure, a deadline, or an explicit Stop).
var ErrStopped = errors.New("node: stopped")

// Default timeouts applied when Config leaves them zero.
const (
	DefaultHandshakeTimeout  = 10 * time.Second
	DefaultRendezvousTimeout = 10 * time.Second
)

// Config describes one node's slice of a distributed run. All nodes of a
// run must agree on Placement and Dec — the HELLO digest enforces it.
type Config struct {
	// Node is this node's index in [0, nodes).
	Node int
	// Placement maps each process to the node hosting it. Its length must
	// equal Dec.N(), and every node index up to the maximum must host at
	// least one process.
	Placement []int
	// Dec is the edge decomposition all clocks run under.
	Dec *decomp.Decomposition
	// HandshakeTimeout bounds connection establishment (dial retries
	// included) and the HELLO exchange. Zero means the default.
	HandshakeTimeout time.Duration
	// RendezvousTimeout bounds how long a Send waits for its ACK (or local
	// reply). Exceeding it aborts the run: a synchronous computation cannot
	// proceed past a lost rendezvous partner. Zero means the default.
	RendezvousTimeout time.Duration
	// Obs is the node's observability surface. Nil disables it; the
	// rendezvous hot paths then cost nothing extra.
	Obs *obs.Obs
}

// inbound is one rendezvous request parked in a process's mailbox: the
// sender's pre-merge vector, awaiting the receiver's merge. A local sender
// parks on reply; a remote sender parks on the ACK frame the receiver's
// node sends back.
type inbound struct {
	from  int
	vec   vector.V
	reply chan vector.V // nil for remote senders
}

// peerConn is one established data connection to a peer node. The encoder
// is shared by every local process sending toward that node, serialized by
// mu; the decoder is owned by the connection's single reader goroutine.
type peerConn struct {
	n    *Node
	node int
	c    net.Conn
	dec  *wire.Decoder

	mu  sync.Mutex
	enc *wire.Encoder
}

// send encodes one frame, serializing concurrent senders, and charges the
// owning node's live wire-traffic counters (no-ops with obs disabled).
func (pc *peerConn) send(f *wire.Frame) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	k := int(f.Kind)
	before := 0
	if k < len(pc.n.wireBytes) {
		before = pc.enc.Stats.Bytes[k]
	}
	if err := pc.enc.Encode(f); err != nil {
		return err
	}
	if k < len(pc.n.wireBytes) {
		pc.n.wireFrames[k].Add(1)
		pc.n.wireBytes[k].Add(int64(pc.enc.Stats.Bytes[k] - before))
	}
	return nil
}

// overhead snapshots the encoder's piggyback accounting.
func (pc *peerConn) overhead() core.Overhead {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.enc.Overhead
}

// stats snapshots the encoder's per-kind frame accounting.
func (pc *peerConn) stats() wire.Stats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.enc.Stats
}

// reportConn is an inbound log-report stream awaiting Collect.
type reportConn struct {
	node  int
	procs []int
	c     net.Conn
	dec   *wire.Decoder
}

// Node hosts the processes placed on one node and the connections to its
// peers. Create with New, drive with Run, and release with Close.
type Node struct {
	cfg    Config
	nodes  int
	local  []int // processes hosted here, ascending
	digest uint64
	tr     Transport

	stop     chan struct{}
	stopOnce sync.Once

	failMu  sync.Mutex
	failErr error

	mu      sync.Mutex
	conns   []*peerConn     // indexed by peer node; nil until connected
	waiters []chan vector.V // indexed by local sender process; nil unless a send is parked

	mailboxes []chan inbound // indexed by process; nil for remote processes

	reports   chan *reportConn
	regCh     chan int // handshake completions from the accept loop
	acceptWG  sync.WaitGroup
	readersWG sync.WaitGroup
	startOnce sync.Once

	// Observability: the surface, its resolved instruments, the per-kind
	// wire-traffic counters, and the dropped-frame count (kept even with
	// obs disabled, so RunInfo can always report it).
	obsv       *obs.Obs
	ins        obs.Instruments
	wireFrames [wire.KindBye + 1]*obs.Counter
	wireBytes  [wire.KindBye + 1]*obs.Counter
	dropped    atomic.Int64
}

// New validates the configuration and returns an idle node. The transport
// is adopted: Close closes it.
func New(cfg Config, tr Transport) (*Node, error) {
	if cfg.Dec == nil {
		return nil, errors.New("node: nil decomposition")
	}
	if len(cfg.Placement) != cfg.Dec.N() {
		return nil, fmt.Errorf("node: placement covers %d processes, decomposition has %d", len(cfg.Placement), cfg.Dec.N())
	}
	nodes := cfg.Node + 1
	for p, host := range cfg.Placement {
		if host < 0 {
			return nil, fmt.Errorf("node: process %d placed on negative node %d", p, host)
		}
		if host+1 > nodes {
			nodes = host + 1
		}
	}
	if cfg.Node < 0 {
		return nil, fmt.Errorf("node: negative node index %d", cfg.Node)
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if cfg.RendezvousTimeout <= 0 {
		cfg.RendezvousTimeout = DefaultRendezvousTimeout
	}
	n := &Node{
		cfg:       cfg,
		nodes:     nodes,
		digest:    wire.Digest(cfg.Dec, cfg.Placement),
		tr:        tr,
		stop:      make(chan struct{}),
		conns:     make([]*peerConn, nodes),
		waiters:   make([]chan vector.V, cfg.Dec.N()),
		mailboxes: make([]chan inbound, cfg.Dec.N()),
		reports:   make(chan *reportConn, nodes),
		regCh:     make(chan int, nodes),
	}
	for p, host := range cfg.Placement {
		if host == cfg.Node {
			n.local = append(n.local, p)
			// One slot per potential sender keeps any valid computation's
			// senders from blocking on mailbox insertion.
			n.mailboxes[p] = make(chan inbound, cfg.Dec.N())
		}
	}
	n.obsv = cfg.Obs
	n.ins = obs.NewInstruments(cfg.Obs.Registry(), cfg.Dec.N())
	if r := cfg.Obs.Registry(); r != nil {
		for _, k := range wire.Kinds() {
			fn, bn := obs.FrameMetrics(k.String())
			n.wireFrames[k] = r.Counter(fn)
			n.wireBytes[k] = r.Counter(bn)
		}
	}
	return n, nil
}

// Local returns the processes hosted on this node, ascending.
func (n *Node) Local() []int { return append([]int(nil), n.local...) }

// Stop aborts the run: parked Sends and Recvs return ErrStopped, readers
// and the accept loop unblock. Idempotent.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		_ = n.tr.Close()
		n.mu.Lock()
		conns := append([]*peerConn(nil), n.conns...)
		n.mu.Unlock()
		for _, pc := range conns {
			if pc != nil {
				_ = pc.c.Close()
			}
		}
	})
}

// Close stops the node and waits for its goroutines to drain.
func (n *Node) Close() {
	n.Stop()
	n.acceptWG.Wait()
	n.readersWG.Wait()
}

// fail records the first abort cause and stops the node.
func (n *Node) fail(err error) {
	n.failMu.Lock()
	if n.failErr == nil {
		n.failErr = err
	}
	n.failMu.Unlock()
	n.Stop()
}

func (n *Node) failure() error {
	n.failMu.Lock()
	defer n.failMu.Unlock()
	return n.failErr
}

func (n *Node) stopped() bool {
	select {
	case <-n.stop:
		return true
	default:
		return false
	}
}

// start launches the accept loop (first Run or Collect does it).
func (n *Node) start() {
	n.startOnce.Do(func() {
		n.acceptWG.Add(1)
		go n.acceptLoop()
	})
}

// acceptLoop owns Transport.Accept, performing the HELLO handshake inline
// and dispatching each stream by role: data connections get a reader
// goroutine, report streams are parked for Collect.
func (n *Node) acceptLoop() {
	defer n.acceptWG.Done()
	for {
		c, err := n.tr.Accept()
		if err != nil {
			return // transport closed (Stop or Close)
		}
		if err := n.handleAccept(c); err != nil {
			_ = c.Close()
			if !n.stopped() {
				n.fail(err)
			}
			return
		}
	}
}

// handleAccept completes the server side of the HELLO handshake.
func (n *Node) handleAccept(c net.Conn) error {
	_ = c.SetDeadline(time.Now().Add(n.cfg.HandshakeTimeout))
	dec := wire.NewDecoder(c, n.cfg.Dec.D())
	f, err := dec.Decode()
	if err != nil {
		return fmt.Errorf("node %d: handshake read: %w", n.cfg.Node, err)
	}
	if f.Kind != wire.KindHello {
		return fmt.Errorf("node %d: handshake opened with %v, want HELLO", n.cfg.Node, f.Kind)
	}
	if f.Digest != n.digest {
		return fmt.Errorf("node %d: node %d has topology digest %#x, ours is %#x (mismatched decomposition or placement)", n.cfg.Node, f.Node, f.Digest, n.digest)
	}
	if f.Node < 0 || f.Node >= n.nodes || f.Node == n.cfg.Node {
		return fmt.Errorf("node %d: handshake from implausible node %d", n.cfg.Node, f.Node)
	}
	switch f.Role {
	case wire.RoleData:
		enc := wire.NewEncoder(c, n.cfg.Dec.D())
		hello := &wire.Frame{Kind: wire.KindHello, Role: wire.RoleData, Node: n.cfg.Node, Procs: n.local, Digest: n.digest}
		if err := enc.Encode(hello); err != nil {
			return fmt.Errorf("node %d: handshake reply to node %d: %w", n.cfg.Node, f.Node, err)
		}
		_ = c.SetDeadline(time.Time{})
		pc := &peerConn{n: n, node: f.Node, c: c, enc: enc, dec: dec}
		if err := n.register(pc); err != nil {
			return err
		}
		n.regCh <- f.Node
		return nil
	case wire.RoleReport:
		_ = c.SetDeadline(time.Time{})
		select {
		case n.reports <- &reportConn{node: f.Node, procs: f.Procs, c: c, dec: dec}:
			return nil
		case <-n.stop:
			return ErrStopped
		}
	default:
		return fmt.Errorf("node %d: handshake with unknown role %d", n.cfg.Node, f.Role)
	}
}

// register records an established data connection and starts its reader.
func (n *Node) register(pc *peerConn) error {
	n.mu.Lock()
	dup := n.conns[pc.node] != nil
	if !dup {
		n.conns[pc.node] = pc
	}
	n.mu.Unlock()
	if dup {
		return fmt.Errorf("node %d: duplicate connection from node %d", n.cfg.Node, pc.node)
	}
	n.readersWG.Add(1)
	go n.readLoop(pc)
	return nil
}

// dialPeer completes the client side of the HELLO handshake with a
// lower-numbered node.
func (n *Node) dialPeer(j int) error {
	deadline := time.Now().Add(n.cfg.HandshakeTimeout)
	c, err := n.tr.Dial(j, deadline)
	if err != nil {
		return fmt.Errorf("node %d: %w", n.cfg.Node, err)
	}
	_ = c.SetDeadline(deadline)
	enc := wire.NewEncoder(c, n.cfg.Dec.D())
	hello := &wire.Frame{Kind: wire.KindHello, Role: wire.RoleData, Node: n.cfg.Node, Procs: n.local, Digest: n.digest}
	if err := enc.Encode(hello); err != nil {
		_ = c.Close()
		return fmt.Errorf("node %d: handshake with node %d: %w", n.cfg.Node, j, err)
	}
	dec := wire.NewDecoder(c, n.cfg.Dec.D())
	f, err := dec.Decode()
	if err != nil {
		_ = c.Close()
		return fmt.Errorf("node %d: handshake reply from node %d: %w", n.cfg.Node, j, err)
	}
	if f.Kind != wire.KindHello || f.Node != j {
		_ = c.Close()
		return fmt.Errorf("node %d: handshake reply from node %d carried %v/node %d", n.cfg.Node, j, f.Kind, f.Node)
	}
	if f.Digest != n.digest {
		_ = c.Close()
		return fmt.Errorf("node %d: node %d has topology digest %#x, ours is %#x (mismatched decomposition or placement)", n.cfg.Node, j, f.Digest, n.digest)
	}
	_ = c.SetDeadline(time.Time{})
	return n.register(&peerConn{n: n, node: j, c: c, enc: enc, dec: dec})
}

// connect establishes the full data mesh: dial every lower node, await a
// dial from every higher one.
func (n *Node) connect() error {
	n.start()
	for j := 0; j < n.cfg.Node; j++ {
		if err := n.dialPeer(j); err != nil {
			return err
		}
	}
	want := n.nodes - 1 - n.cfg.Node
	timer := time.NewTimer(n.cfg.HandshakeTimeout)
	defer timer.Stop()
	for have := 0; have < want; {
		select {
		case <-n.regCh:
			have++
		case <-n.stop:
			if err := n.failure(); err != nil {
				return err
			}
			return ErrStopped
		case <-timer.C:
			return fmt.Errorf("node %d: %d of %d higher peers connected within %v", n.cfg.Node, have, want, n.cfg.HandshakeTimeout)
		}
	}
	return nil
}

// readLoop demultiplexes one data connection: SYNs go to the target
// process's mailbox, ACKs release the parked sender, BYE announces the
// peer's clean completion. Any protocol violation or transport error while
// the run is live aborts the node.
func (n *Node) readLoop(pc *peerConn) {
	defer n.readersWG.Done()
	for {
		f, err := pc.dec.Decode()
		if err != nil {
			if !n.stopped() {
				n.fail(fmt.Errorf("node %d: connection to node %d: %w", n.cfg.Node, pc.node, err))
			}
			return
		}
		switch f.Kind {
		case wire.KindSyn:
			if f.To < 0 || f.To >= len(n.mailboxes) || n.mailboxes[f.To] == nil {
				n.fail(fmt.Errorf("node %d: SYN from node %d targets process %d, not hosted here", n.cfg.Node, pc.node, f.To))
				return
			}
			select {
			case n.mailboxes[f.To] <- inbound{from: f.From, vec: f.Vec}:
			case <-n.stop:
				return
			}
		case wire.KindAck:
			n.mu.Lock()
			var w chan vector.V
			if f.To >= 0 && f.To < len(n.waiters) {
				w = n.waiters[f.To]
				n.waiters[f.To] = nil
			}
			n.mu.Unlock()
			if w == nil {
				// A sender whose rendezvous deadline expired has already
				// cleared its waiter, so a late ACK is a legitimate race,
				// not a protocol violation: count it and keep reading.
				n.noteDropped()
				continue
			}
			w <- f.Vec // buffered; the sender may have timed out, never blocks
		case wire.KindBye:
			return
		default:
			// HELLO or INTERNAL frames do not belong on an established data
			// stream; count and drop them rather than killing the run.
			n.noteDropped()
		}
	}
}

// noteDropped records one discarded frame, both for RunInfo and /metrics.
func (n *Node) noteDropped() {
	n.dropped.Add(1)
	n.ins.DroppedFrames.Add(1)
}

// DroppedFrames reports how many frames the read loops have discarded so
// far (late ACKs after a rendezvous timeout, unexpected kinds).
func (n *Node) DroppedFrames() int64 { return n.dropped.Load() }

// registerWaiter parks a sender: the next ACK addressed to proc lands on
// the returned channel. Must be called before the SYN is written, or the
// ACK could race past.
func (n *Node) registerWaiter(proc int) chan vector.V {
	ch := make(chan vector.V, 1)
	n.mu.Lock()
	n.waiters[proc] = ch
	n.mu.Unlock()
	return ch
}

func (n *Node) clearWaiter(proc int) {
	n.mu.Lock()
	n.waiters[proc] = nil
	n.mu.Unlock()
}

// connTo returns the data connection to a peer node.
func (n *Node) connTo(node int) (*peerConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node < 0 || node >= len(n.conns) || n.conns[node] == nil {
		return nil, fmt.Errorf("node %d: no connection to node %d", n.cfg.Node, node)
	}
	return n.conns[node], nil
}

// RunInfo is the local outcome of a completed run.
type RunInfo struct {
	// Logs holds each hosted process's rendezvous log, keyed by process.
	Logs map[int][]csp.Record
	// Overhead is the exact piggyback accounting over this node's data
	// connections (local rendezvous cost no wire bytes and are excluded).
	Overhead core.Overhead
	// Frames is the node's sent wire traffic by frame kind, header bytes
	// included.
	Frames wire.Stats
	// Dropped counts frames the read loops discarded: late ACKs arriving
	// after a rendezvous timeout and frame kinds unexpected on a data
	// connection.
	Dropped int64
}

// FrameMap renders a wire accounting as the obs.Meta frame table, omitting
// kinds that never appeared.
func FrameMap(s wire.Stats) map[string]obs.FrameStats {
	m := make(map[string]obs.FrameStats)
	for _, k := range wire.Kinds() {
		if s.Frames[k] == 0 {
			continue
		}
		m[k.String()] = obs.FrameStats{Frames: s.Frames[k], Bytes: s.Bytes[k]}
	}
	return m
}

// Run connects the data mesh, executes one program per hosted process (a
// missing or nil entry means "immediately done"), and waits for every
// hosted program and every peer node to finish. It returns the hosted
// processes' rendezvous logs and the wire-overhead account. Any program
// error, peer failure, or deadline aborts the whole run.
func (n *Node) Run(programs map[int]func(*Process) error) (*RunInfo, error) {
	if err := n.connect(); err != nil {
		n.fail(err)
		return nil, err
	}
	procs := make([]*Process, len(n.local))
	errs := make([]error, len(n.local))
	var wg sync.WaitGroup
	for i, p := range n.local {
		procs[i] = &Process{id: p, n: n, clock: core.NewClock(p, n.cfg.Dec)}
		prog := programs[p]
		if prog == nil {
			continue
		}
		wg.Add(1)
		go func(i int, proc *Process, prog func(*Process) error) {
			defer wg.Done()
			if err := prog(proc); err != nil {
				errs[i] = err
				n.fail(fmt.Errorf("node %d: process %d: %w", n.cfg.Node, proc.id, err))
			}
		}(i, procs[i], prog)
	}
	wg.Wait()

	// Announce completion; peers' readers exit on our BYE, ours exit on
	// theirs, so waiting for the readers is the run's global barrier.
	if !n.stopped() {
		n.mu.Lock()
		conns := append([]*peerConn(nil), n.conns...)
		n.mu.Unlock()
		for _, pc := range conns {
			if pc == nil {
				continue
			}
			if err := pc.send(&wire.Frame{Kind: wire.KindBye}); err != nil && !n.stopped() {
				n.fail(fmt.Errorf("node %d: closing connection to node %d: %w", n.cfg.Node, pc.node, err))
			}
		}
	}
	n.readersWG.Wait()

	info := &RunInfo{Logs: make(map[int][]csp.Record, len(n.local))}
	n.mu.Lock()
	conns := append([]*peerConn(nil), n.conns...)
	n.mu.Unlock()
	for _, pc := range conns {
		if pc == nil {
			continue
		}
		info.Overhead.Merge(pc.overhead())
		info.Frames.Merge(pc.stats())
		_ = pc.c.Close()
	}
	info.Dropped = n.dropped.Load()
	for i, p := range n.local {
		info.Logs[p] = procs[i].log
	}

	// Root cause: prefer a program's own error over the ErrStopped echoes
	// of its neighbors, mirroring csp.Wait.
	pick := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if pick == -1 || (errors.Is(errs[pick], ErrStopped) && !errors.Is(err, ErrStopped)) {
			pick = i
		}
	}
	if pick >= 0 && !errors.Is(errs[pick], ErrStopped) {
		return info, fmt.Errorf("node %d: process %d: %w", n.cfg.Node, n.local[pick], errs[pick])
	}
	if err := n.failure(); err != nil {
		return info, err
	}
	if pick >= 0 {
		return info, fmt.Errorf("node %d: process %d: %w", n.cfg.Node, n.local[pick], errs[pick])
	}
	return info, nil
}
